/// Quickstart: the multi-tenant selector behind ease.ml in ~60 lines.
///
/// Two tenants share one training device. Each has four candidate models
/// with different costs; the selector decides, step by step, which
/// (tenant, model) to train next. Here "training" is a table lookup — in a
/// real deployment you would launch an actual training job.
///
/// Build & run:
///   cmake -B build -G Ninja && cmake --build build
///   ./build/examples/quickstart
#include <cstdio>

#include "core/multi_tenant_selector.h"

using easeml::core::MultiTenantSelector;
using easeml::core::SelectorOptions;

int main() {
  // Ground truth the selector does not know: accuracy of each model on
  // each tenant's task, and per-model training costs.
  const double kAccuracy[2][4] = {{0.72, 0.90, 0.85, 0.64},
                                  {0.55, 0.61, 0.80, 0.78}};
  const std::vector<double> kCosts = {1.0, 6.0, 3.0, 0.5};

  SelectorOptions options;
  options.cost_aware = true;  // prefer cheap models, all else being equal
  auto selector = MultiTenantSelector::Create(options);
  if (!selector.ok()) {
    std::fprintf(stderr, "%s\n", selector.status().ToString().c_str());
    return 1;
  }

  // Register two tenants with an uninformative prior. With production
  // logs you would pass a GP prior built from other tenants' history
  // (see image_classification_service.cpp).
  for (int tenant = 0; tenant < 2; ++tenant) {
    auto id = selector->AddTenantWithDefaultPrior(4, kCosts);
    if (!id.ok()) {
      std::fprintf(stderr, "%s\n", id.status().ToString().c_str());
      return 1;
    }
  }

  std::printf("step | tenant | model | accuracy | best so far\n");
  int step = 0;
  while (!selector->Exhausted()) {
    auto assignment = selector->Next();
    if (!assignment.ok()) break;
    const double accuracy =
        kAccuracy[assignment->tenant][assignment->model];
    if (!selector->Report(*assignment, accuracy).ok()) break;
    std::printf("%4d | %6d | %5d | %8.2f | tenant0=%.2f tenant1=%.2f\n",
                ++step, assignment->tenant, assignment->model, accuracy,
                selector->BestAccuracy(0).value_or(0.0),
                selector->BestAccuracy(1).value_or(0.0));
  }

  for (int tenant = 0; tenant < 2; ++tenant) {
    auto best = selector->BestModel(tenant);
    std::printf("tenant %d: best model = %d (accuracy %.2f)\n", tenant,
                best.value_or(-1),
                selector->BestAccuracy(tenant).value_or(0.0));
  }
  return 0;
}
