/// A research-style experiment campaign on synthetic workloads: generates a
/// SYN(sigma_M, alpha) dataset (Section 5.1), runs the four scheduling
/// strategies under the paper's protocol, and prints the comparison — the
/// programmatic counterpart of the bench/ binaries, showing how to use
/// `RunProtocol` for custom studies.
///
///   ./build/examples/synthetic_campaign
#include <cstdio>

#include "core/experiment_runner.h"
#include "data/synthetic_generator.h"
#include "sim/metrics.h"

using easeml::core::ProtocolOptions;
using easeml::core::RunProtocol;
using easeml::core::StrategyKind;

int main() {
  easeml::data::SimpleSynOptions gen;
  gen.num_users = 80;
  gen.num_models = 40;
  gen.sigma_m = 0.5;  // strong model correlation
  gen.alpha = 0.5;
  gen.seed = 11;
  auto dataset = easeml::data::GenerateSimpleSyn(gen);
  if (!dataset.ok()) {
    std::fprintf(stderr, "%s\n", dataset.status().ToString().c_str());
    return 1;
  }
  std::printf("dataset %s: %d users x %d models\n", dataset->name.c_str(),
              dataset->num_users(), dataset->num_models());

  ProtocolOptions options;
  options.num_test_users = 10;
  options.num_reps = 15;
  options.budget_fraction = 0.5;
  options.cost_aware_budget = true;
  options.cost_aware_policy = true;
  options.seed = 99;

  std::printf("\n%-12s %12s %12s %12s\n", "strategy", "loss@25%",
              "loss@50%", "loss@100%");
  const StrategyKind strategies[] = {
      StrategyKind::kEaseMl, StrategyKind::kGreedy,
      StrategyKind::kRoundRobin, StrategyKind::kRandom};
  double easeml_auc = 0.0, random_auc = 0.0;
  for (StrategyKind kind : strategies) {
    auto result = RunProtocol(*dataset, kind, options);
    if (!result.ok()) {
      std::fprintf(stderr, "%s\n", result.status().ToString().c_str());
      return 1;
    }
    const auto& mean = result->curves.mean;
    const size_t n = mean.size();
    std::printf("%-12s %12.4f %12.4f %12.4f\n",
                result->strategy_name.c_str(), mean[n / 4], mean[n / 2],
                mean[n - 1]);
    if (kind == StrategyKind::kEaseMl) easeml_auc = result->mean_auc;
    if (kind == StrategyKind::kRandom) random_auc = result->mean_auc;
  }
  std::printf("\narea under the mean loss curve: ease.ml %.4f vs random "
              "%.4f (%.1fx better)\n",
              easeml_auc, random_auc, random_auc / easeml_auc);
  return 0;
}
