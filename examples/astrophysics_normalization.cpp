/// The astrophysics scenario from Section 2.1 / Figure 5: inputs whose
/// dynamic range spans ten orders of magnitude (galaxy snapshots) are
/// useless when treated as images directly. ease.ml's automatic
/// normalization expands every consistent model with the family
/// f_k(x) = -x^{2k} + x^k, and the scheduler discovers which k works.
///
///   ./build/examples/astrophysics_normalization
#include <cstdio>

#include "platform/normalization.h"
#include "platform/service.h"

using easeml::platform::EaseMlService;
using easeml::platform::NormalizationFunction;

int main() {
  // Part 1: the normalization family itself, applied to a synthetic
  // galaxy-like intensity profile spanning 10 orders of magnitude.
  std::printf("Normalization family f_k(x) = -x^{2k} + x^k (scaled):\n");
  const std::vector<double> intensities = {1.0,  3e2, 1e4, 7e5,
                                           2e7,  5e8, 1e10};
  for (double k : easeml::platform::DefaultNormalizationGrid()) {
    auto f = NormalizationFunction::Create(k);
    if (!f.ok()) return 1;
    std::printf("  k=%.1f (peak at x=%.3f):", k, f->PeakLocation());
    for (double v : f->NormalizeVector(intensities)) {
      std::printf(" %.3f", v);
    }
    std::printf("\n");
  }

  // Part 2: submit the astrophysics job. The wide dynamic range triggers
  // candidate expansion: each CNN appears raw and once per k.
  EaseMlService::Options options;
  options.seed = 7;
  auto service = EaseMlService::Create(options);
  if (!service.ok()) return 1;
  auto job = service->SubmitJob(
      "{input: {[Tensor[424,424,3]], []}, output: {[Tensor[5]], []}}",
      /*dynamic_range=*/1e10);
  if (!job.ok()) {
    std::fprintf(stderr, "%s\n", job.status().ToString().c_str());
    return 1;
  }
  if (!service->Feed(*job, 1800).ok()) return 1;
  auto candidates = service->Candidates(*job);
  std::printf("\nastrophysics job: %zu candidates (8 CNNs x (1 raw + 4 "
              "normalizations))\n", candidates->size());

  // Explore; the best model should end up being a normalized variant.
  int steps = 0;
  while (!service->Exhausted() && steps < 25) {
    auto task = service->Step();
    if (!task.ok()) break;
    ++steps;
    if (steps % 5 == 0) {
      auto report = service->Infer(*job);
      if (report.ok()) {
        std::printf("  after %2d runs: best = %-28s accuracy %.3f\n", steps,
                    report->model_name.c_str(), report->accuracy);
      }
    }
  }
  auto report = service->Infer(*job);
  if (report.ok()) {
    std::printf("\nFinal best model: %s (accuracy %.3f)\n",
                report->model_name.c_str(), report->accuracy);
    std::printf("Raw (un-normalized) models lose ~0.2 accuracy on this "
                "dynamic range; the scheduler found a normalized variant "
                "without being told.\n");
  }
  return 0;
}
