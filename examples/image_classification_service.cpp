/// The full ease.ml service loop on the paper's flagship workload: image
/// classification with deep neural networks (Sections 2 and 5.2).
///
/// Three research groups submit declarative jobs through the Figure-2 DSL;
/// the service matches templates to candidate CNNs, the users feed
/// supervision, and the multi-tenant scheduler drives the (simulated) GPU
/// cluster. One user then cleans noisy labels with `refine` — the Figure-3
/// walkthrough, end to end.
///
///   ./build/examples/image_classification_service
#include <cstdio>

#include "platform/service.h"

using easeml::platform::EaseMlService;

namespace {

void PrintInfer(EaseMlService& service, int job, const char* who) {
  auto report = service.Infer(job);
  if (report.ok()) {
    std::printf("  %-12s best model: %-24s accuracy %.3f (after %d runs)\n",
                who, report->model_name.c_str(), report->accuracy,
                report->rounds_served);
  } else {
    std::printf("  %-12s no model trained yet\n", who);
  }
}

}  // namespace

int main() {
  EaseMlService::Options options;
  options.seed = 2024;
  options.noisy_label_fraction = 0.15;
  auto service = EaseMlService::Create(options);
  if (!service.ok()) {
    std::fprintf(stderr, "%s\n", service.status().ToString().c_str());
    return 1;
  }

  // Three tenants with image-shaped schemas of different sizes/classes.
  struct JobSpec {
    const char* who;
    const char* program;
    int examples;
  };
  const JobSpec specs[] = {
      {"biology", "{input: {[Tensor[256,256,3]], []}, "
                  "output: {[Tensor[3]], []}}", 900},
      {"meteorology", "{input: {[Tensor[128,128,3]], []}, "
                      "output: {[Tensor[10]], []}}", 2500},
      {"sociology", "{input: {[Tensor[64,64,3]], []}, "
                    "output: {[Tensor[2]], []}}", 400},
  };

  std::printf("Submitting jobs via the declarative DSL:\n");
  for (const auto& spec : specs) {
    auto job = service->SubmitJob(spec.program);
    if (!job.ok()) {
      std::fprintf(stderr, "%s\n", job.status().ToString().c_str());
      return 1;
    }
    if (!service->Feed(*job, spec.examples).ok()) return 1;
    auto candidates = service->Candidates(*job);
    std::printf("  %-12s job %d: %zu candidate models, %d examples fed\n",
                spec.who, *job, candidates->size(), spec.examples);
  }

  // Drive the shared cluster; report what `infer` would serve as the best
  // models evolve (the user only ever sees the best-so-far view).
  for (int phase = 1; phase <= 4; ++phase) {
    auto taken = service->RunSteps(6);
    if (!taken.ok()) return 1;
    std::printf("\nAfter %d more training runs (cluster time %.0f):\n",
                *taken, service->ClusterTime());
    for (int j = 0; j < 3; ++j) PrintInfer(*service, j, specs[j].who);
    if (service->Exhausted()) break;
  }

  // Supervision engineering: sociology reviews its examples and disables
  // the noisy labels (`refine`, Figure 3e).
  auto examples = service->ListExamples(2);
  int disabled = 0;
  for (const auto& e : *examples) {
    if (e.noisy && service->Refine(2, e.index, false).ok()) ++disabled;
  }
  std::printf("\nsociology refined its training set: disabled %d noisy "
              "labels out of %zu examples\n",
              disabled, examples->size());

  while (!service->Exhausted()) {
    if (!service->RunSteps(8).ok()) break;
  }
  std::printf("\nFinal state (all candidates explored):\n");
  for (int j = 0; j < 3; ++j) PrintInfer(*service, j, specs[j].who);
  return 0;
}
