#include "obs/snapshot.h"

#include <algorithm>

#include "common/logging.h"

namespace easeml::obs {

ShardAggregates FleetSnapshot::Totals() const {
  ShardAggregates total;
  for (const auto& s : shards) {
    if (s == nullptr) continue;
    total.tenants += s->agg.tenants;
    total.retired += s->agg.retired;
    total.schedulable += s->agg.schedulable;
    total.uninitialized += s->agg.uninitialized;
    total.in_flight += s->agg.in_flight;
    total.rounds += s->agg.rounds;
  }
  return total;
}

/// Writer-side per-shard state. Everything above the publication point is
/// owned by the shard's worker thread (or the quiesced coordinator — the
/// engines' barriers order the hand-offs); only `published` is shared with
/// readers, behind its leaf mutex.
struct SnapshotPlane::Slot {
  std::shared_ptr<const std::vector<int>> ids =
      std::make_shared<const std::vector<int>>();
  std::vector<uint8_t> chunk_dirty;  // one flag per kChunk positions
  uint64_t events = 0;               // monotone; block epoch source
  int since_publish = 0;
  ShardAggregates agg;
  std::shared_ptr<const ShardBlock> last;  // writer's copy of `published`

  // Publication point: the ONLY slot state readers touch.
  mutable Mutex pub_mu;
  std::shared_ptr<const ShardBlock> published EASEML_GUARDED_BY(pub_mu);
};

namespace {

/// Per-tenant contribution to the integer aggregates; `Apply` diffs two of
/// these, placement rebuilds sum them.
ShardAggregates Contribution(const core::TenantObservation& o) {
  ShardAggregates c;
  c.tenants = 1;
  c.retired = o.retired ? 1 : 0;
  c.schedulable = o.schedulable ? 1 : 0;
  c.uninitialized = o.uninitialized ? 1 : 0;
  c.in_flight = o.in_flight;
  c.rounds = o.rounds_served;
  return c;
}

void AddInPlace(ShardAggregates& agg, const ShardAggregates& c, int sign) {
  agg.tenants += sign * c.tenants;
  agg.retired += sign * c.retired;
  agg.schedulable += sign * c.schedulable;
  agg.uninitialized += sign * c.uninitialized;
  agg.in_flight += sign * c.in_flight;
  agg.rounds += sign * c.rounds;
}

int NumChunks(int n) { return (n + kChunk - 1) / kChunk; }

}  // namespace

SnapshotPlane::SnapshotPlane(int num_shards, int publish_interval)
    : publish_interval_(std::max(1, publish_interval)) {
  EASEML_CHECK(num_shards >= 1)
      << "obs: snapshot plane needs at least one shard, got " << num_shards;
  slots_.reserve(static_cast<size_t>(num_shards));
  for (int s = 0; s < num_shards; ++s) {
    slots_.push_back(std::make_unique<Slot>());
    // Seed an empty epoch-0 block so readers always find a block.
    auto block = std::make_shared<ShardBlock>();
    block->ids = slots_.back()->ids;
    slots_.back()->last = block;
    MutexLock lock(slots_.back()->pub_mu);
    slots_.back()->published = std::move(block);
  }
}

SnapshotPlane::~SnapshotPlane() = default;

void SnapshotPlane::Apply(const core::TenantObservation& obs) {
  const int tenant = obs.tenant;
  EASEML_CHECK(tenant >= 0 &&
               tenant < static_cast<int>(where_.size()) &&
               where_[static_cast<size_t>(tenant)].first >= 0)
      << "obs: Apply for unplaced tenant " << tenant
      << " (placement hooks must precede tenant events)";
  const auto [shard, pos] = where_[static_cast<size_t>(tenant)];
  Slot& slot = *slots_[static_cast<size_t>(shard)];
  core::TenantObservation& entry = master_[static_cast<size_t>(tenant)];
  // Integer-diff the aggregates before overwriting the master entry. The
  // first Apply diffs against the default observation (all zeros except the
  // tenant count, which placement already added).
  AddInPlace(slot.agg, Contribution(obs), +1);
  AddInPlace(slot.agg, Contribution(entry), -1);
  // (The tenant counts of the two contributions cancel: membership is
  // placement's to maintain, not Apply's.)
  entry = obs;
  slot.chunk_dirty[static_cast<size_t>(pos / kChunk)] = 1;
  ++slot.events;
  // The configured interval is a floor: a shard additionally batches at
  // least num_chunks/8 events per publish, so the per-publish chunk-pointer
  // vector rebuild (one shared_ptr copy per chunk, refcounted) amortizes to
  // O(1) refcount traffic per event at any fleet size — without this a
  // 10^5-tenant shard would spend more on pointer churn than on the fold
  // it is observing.
  const int threshold = std::max(
      publish_interval_,
      static_cast<int>(slot.chunk_dirty.size()) / 8);
  if (++slot.since_publish >= threshold) PublishSlot(shard);
}

void SnapshotPlane::Place(int tenant, int shard) {
  EASEML_CHECK(shard >= 0 && shard < num_shards())
      << "obs: Place on unknown shard " << shard;
  if (tenant >= static_cast<int>(master_.size())) {
    master_.resize(static_cast<size_t>(tenant) + 1);
    where_.resize(static_cast<size_t>(tenant) + 1, {-1, -1});
  }
  Slot& slot = *slots_[static_cast<size_t>(shard)];
  EASEML_CHECK(slot.ids->empty() || slot.ids->back() < tenant)
      << "obs: Place must append in ascending id order (tenant " << tenant
      << " after " << slot.ids->back() << "); rebalances go through "
      << "SetPlacement";
  auto grown = std::make_shared<std::vector<int>>(*slot.ids);
  grown->push_back(tenant);
  const int pos = static_cast<int>(grown->size()) - 1;
  slot.ids = std::move(grown);
  slot.chunk_dirty.resize(static_cast<size_t>(NumChunks(pos + 1)), 1);
  slot.chunk_dirty[static_cast<size_t>(pos / kChunk)] = 1;
  where_[static_cast<size_t>(tenant)] = {shard, pos};
  master_[static_cast<size_t>(tenant)].tenant = tenant;  // entry is live now
  slot.agg.tenants += 1;  // default-constructed entry contributes only this
  ++slot.events;
  ++slot.since_publish;  // placement is an event: it must reach readers
}

void SnapshotPlane::SetPlacement(
    const std::vector<std::vector<int>>& shard_tenants) {
  EASEML_CHECK(static_cast<int>(shard_tenants.size()) == num_shards())
      << "obs: SetPlacement shard count " << shard_tenants.size()
      << " != " << num_shards();
  int max_tenant = -1;
  for (const std::vector<int>& local : shard_tenants) {
    for (int t : local) max_tenant = std::max(max_tenant, t);
  }
  if (max_tenant >= static_cast<int>(master_.size())) {
    master_.resize(static_cast<size_t>(max_tenant) + 1);
    where_.resize(static_cast<size_t>(max_tenant) + 1, {-1, -1});
  }
  // Tenants dropped from the placement (sharded removal) keep their master
  // entry but leave the mapping; clear it wholesale, then rebuild.
  for (auto& w : where_) w = {-1, -1};
  for (int s = 0; s < num_shards(); ++s) {
    Slot& slot = *slots_[static_cast<size_t>(s)];
    auto ids = std::make_shared<std::vector<int>>(
        shard_tenants[static_cast<size_t>(s)]);
    EASEML_CHECK(std::is_sorted(ids->begin(), ids->end()))
        << "obs: shard " << s << " placement is not ascending";
    for (int pos = 0; pos < static_cast<int>(ids->size()); ++pos) {
      const int t = (*ids)[static_cast<size_t>(pos)];
      where_[static_cast<size_t>(t)] = {s, pos};
      // A tenant placed here for the first time (sharded adds arrive via
      // SetPlacement, not Place) has a default master entry; stamp its id
      // so the immediate republish below never exposes tenant = -1.
      master_[static_cast<size_t>(t)].tenant = t;
    }
    slot.ids = std::move(ids);
    slot.chunk_dirty.assign(
        static_cast<size_t>(NumChunks(static_cast<int>(slot.ids->size()))), 1);
    RecountSlot(slot);
    ++slot.events;
    // Republish immediately: no published block may reference the old
    // partition once churn has moved tenants between shards.
    PublishSlot(s);
  }
}

void SnapshotPlane::FlushAll() {
  for (int s = 0; s < num_shards(); ++s) {
    if (slots_[static_cast<size_t>(s)]->since_publish > 0) PublishSlot(s);
  }
}

FleetSnapshot SnapshotPlane::Snapshot() const {
  FleetSnapshot snap;
  snap.shards.reserve(slots_.size());
  for (const std::unique_ptr<Slot>& slot : slots_) {
    std::shared_ptr<const ShardBlock> block;
    {
      MutexLock lock(slot->pub_mu);
      block = slot->published;
    }
    snap.shards.push_back(std::move(block));
  }
  return snap;
}

void SnapshotPlane::PublishSlot(int shard) {
  Slot& slot = *slots_[static_cast<size_t>(shard)];
  const std::vector<int>& ids = *slot.ids;
  const int n = static_cast<int>(ids.size());
  const int num_chunks = NumChunks(n);
  auto block = std::make_shared<ShardBlock>();
  block->epoch = slot.events;
  block->ids = slot.ids;
  block->agg = slot.agg;
  block->chunks.resize(static_cast<size_t>(num_chunks));
  const ShardBlock& prev = *slot.last;
  const bool prev_matches = prev.ids == slot.ids;  // same partition object
  for (int c = 0; c < num_chunks; ++c) {
    if (prev_matches && slot.chunk_dirty[static_cast<size_t>(c)] == 0) {
      // Clean chunk: share the previous block's copy (COW reuse).
      block->chunks[static_cast<size_t>(c)] = prev.chunks[static_cast<size_t>(c)];
      continue;
    }
    const int lo = c * kChunk;
    const int hi = std::min(n, lo + kChunk);
    auto chunk = std::make_shared<std::vector<core::TenantObservation>>();
    chunk->reserve(static_cast<size_t>(hi - lo));
    for (int pos = lo; pos < hi; ++pos) {
      chunk->push_back(master_[static_cast<size_t>(ids[static_cast<size_t>(pos)])]);
    }
    block->chunks[static_cast<size_t>(c)] = std::move(chunk);
    slot.chunk_dirty[static_cast<size_t>(c)] = 0;
  }
  slot.last = block;
  slot.since_publish = 0;
  MutexLock lock(slot.pub_mu);
  slot.published = std::move(block);
}

void SnapshotPlane::RecountSlot(Slot& slot) const {
  ShardAggregates agg;
  for (int t : *slot.ids) {
    AddInPlace(agg, Contribution(master_[static_cast<size_t>(t)]), +1);
  }
  slot.agg = agg;
}

}  // namespace easeml::obs
