#ifndef EASEML_OBS_FLEET_OBSERVER_H_
#define EASEML_OBS_FLEET_OBSERVER_H_

#include <memory>
#include <vector>

#include "core/multi_tenant_selector.h"
#include "core/selector_observer.h"
#include "obs/metrics.h"
#include "obs/snapshot.h"

namespace easeml::obs {

struct FleetObserverOptions {
  /// Must equal the engine's shard count (1 for the sequential engine).
  int num_shards = 1;
  /// Tenant events between automatic per-shard snapshot publishes.
  int publish_interval = 32;
  /// Optional metrics sink; may be null (snapshots only). Non-owning; must
  /// outlive the observer.
  Registry* registry = nullptr;
};

/// The canonical `core::SelectorObserver`: routes tenant events and
/// placement changes into a `SnapshotPlane` and the timing hooks into
/// `Registry` instruments. Instrument pointers are resolved once at
/// construction, so every hook is a plane apply and/or a couple of relaxed
/// atomic RMWs — cheap enough for the fold closures and the `Next`/`Report`
/// coordinator paths it sits on.
///
/// Instruments (all prefixed `easeml_`):
///   next_total / next_rejected          Next() calls / calls with no work
///   next_pick_us / next_arm_us          tenant-pick and arm-selection CPU
///   report_total / report_coord_us      Report() successes / coordinator CPU
///   report_rejected_unknown_ticket      BeginReport/Cancel NotFound
///   report_rejected_stale_ticket        ... FailedPrecondition (duplicate)
///   report_rejected_mismatch_or_invalid ... InvalidArgument (forged/NaN)
///   report_rejected_other               any other rejection code
///   folds_queued / folds_executed       report-queue depth = queued-executed
///   report_fold_us                      per-fold worker CPU
///   drain_wait_us                       reader stalls behind queued folds
///   tenant_events                       snapshot-plane applies
class FleetObserver final : public core::SelectorObserver {
 public:
  explicit FleetObserver(const FleetObserverOptions& options);

  SnapshotPlane& plane() { return plane_; }
  const SnapshotPlane& plane() const { return plane_; }

  // core::SelectorObserver hooks (threading contract in the base class).
  void OnTenantEvent(const core::TenantObservation& obs) override;
  void OnTenantPlaced(int tenant, int shard) override;
  void OnPlacementChanged(
      const std::vector<std::vector<int>>& shard_tenants) override;
  void OnNext(bool ok, double pick_us, double arm_us) override;
  void OnReport(double coord_us) override;
  void OnTicketRejected(int code) override;
  void OnFoldQueued(int shard) override;
  void OnFold(int shard, double fold_us) override;
  void OnDrainWait(double wait_us) override;

 private:
  SnapshotPlane plane_;
  // Resolved instruments; all null when no registry was supplied.
  Counter* next_total_ = nullptr;
  Counter* next_rejected_ = nullptr;
  Histogram* next_pick_us_ = nullptr;
  Histogram* next_arm_us_ = nullptr;
  Counter* report_total_ = nullptr;
  Histogram* report_coord_us_ = nullptr;
  Counter* rejected_unknown_ = nullptr;
  Counter* rejected_stale_ = nullptr;
  Counter* rejected_invalid_ = nullptr;
  Counter* rejected_other_ = nullptr;
  Counter* folds_queued_ = nullptr;
  Counter* folds_executed_ = nullptr;
  Histogram* fold_us_ = nullptr;
  Histogram* drain_wait_us_ = nullptr;
  Counter* tenant_events_ = nullptr;
};

/// An engine with its observation plane attached: `observer` outlives
/// `selector` (declaration order — the selector is destroyed first), and
/// `selector` was built with `SelectorOptions::observer` pointing at it.
struct ObservedSelector {
  std::unique_ptr<FleetObserver> observer;
  std::unique_ptr<core::MultiTenantSelector> selector;
};

/// Convenience: builds the engine `options` asks for (sequential or
/// sharded, via shard::MakeSelector) with a FleetObserver wired in.
/// `obs_options.num_shards` is overridden to match the engine.
Result<ObservedSelector> MakeObservedSelector(core::SelectorOptions options,
                                              FleetObserverOptions obs_options);

}  // namespace easeml::obs

#endif  // EASEML_OBS_FLEET_OBSERVER_H_
