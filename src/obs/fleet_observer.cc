#include "obs/fleet_observer.h"

#include <algorithm>
#include <utility>

#include "common/status.h"
#include "shard/sharded_selector.h"

namespace easeml::obs {

FleetObserver::FleetObserver(const FleetObserverOptions& options)
    : plane_(options.num_shards, options.publish_interval) {
  Registry* reg = options.registry;
  if (reg == nullptr) return;
  next_total_ = reg->GetCounter("easeml_next_total");
  next_rejected_ = reg->GetCounter("easeml_next_rejected");
  next_pick_us_ = reg->GetHistogram("easeml_next_pick_us");
  next_arm_us_ = reg->GetHistogram("easeml_next_arm_us");
  report_total_ = reg->GetCounter("easeml_report_total");
  report_coord_us_ = reg->GetHistogram("easeml_report_coord_us");
  rejected_unknown_ = reg->GetCounter("easeml_report_rejected_unknown_ticket");
  rejected_stale_ = reg->GetCounter("easeml_report_rejected_stale_ticket");
  rejected_invalid_ =
      reg->GetCounter("easeml_report_rejected_mismatch_or_invalid");
  rejected_other_ = reg->GetCounter("easeml_report_rejected_other");
  folds_queued_ = reg->GetCounter("easeml_folds_queued");
  folds_executed_ = reg->GetCounter("easeml_folds_executed");
  fold_us_ = reg->GetHistogram("easeml_report_fold_us");
  drain_wait_us_ = reg->GetHistogram("easeml_drain_wait_us");
  tenant_events_ = reg->GetCounter("easeml_tenant_events");
}

void FleetObserver::OnTenantEvent(const core::TenantObservation& obs) {
  plane_.Apply(obs);
  if (tenant_events_ != nullptr) tenant_events_->Increment();
}

void FleetObserver::OnTenantPlaced(int tenant, int shard) {
  plane_.Place(tenant, shard);
}

void FleetObserver::OnPlacementChanged(
    const std::vector<std::vector<int>>& shard_tenants) {
  plane_.SetPlacement(shard_tenants);
}

void FleetObserver::OnNext(bool ok, double pick_us, double arm_us) {
  if (next_total_ == nullptr) return;
  next_total_->Increment();
  if (!ok) next_rejected_->Increment();
  next_pick_us_->Record(pick_us);
  if (ok) next_arm_us_->Record(arm_us);
}

void FleetObserver::OnReport(double coord_us) {
  if (report_total_ == nullptr) return;
  report_total_->Increment();
  report_coord_us_->Record(coord_us);
}

void FleetObserver::OnTicketRejected(int code) {
  if (rejected_other_ == nullptr) return;
  switch (static_cast<StatusCode>(code)) {
    case StatusCode::kNotFound:
      rejected_unknown_->Increment();
      break;
    case StatusCode::kFailedPrecondition:
      rejected_stale_->Increment();
      break;
    case StatusCode::kInvalidArgument:
      rejected_invalid_->Increment();
      break;
    default:
      rejected_other_->Increment();
      break;
  }
}

void FleetObserver::OnFoldQueued(int shard) {
  (void)shard;
  if (folds_queued_ != nullptr) folds_queued_->Increment();
}

void FleetObserver::OnFold(int shard, double fold_us) {
  (void)shard;
  if (folds_executed_ == nullptr) return;
  folds_executed_->Increment();
  fold_us_->Record(fold_us);
}

void FleetObserver::OnDrainWait(double wait_us) {
  if (drain_wait_us_ != nullptr) drain_wait_us_->Record(wait_us);
}

Result<ObservedSelector> MakeObservedSelector(
    core::SelectorOptions options, FleetObserverOptions obs_options) {
  obs_options.num_shards = std::max(1, options.num_shards);
  ObservedSelector out;
  out.observer = std::make_unique<FleetObserver>(obs_options);
  options.observer = out.observer.get();
  EASEML_ASSIGN_OR_RETURN(out.selector, shard::MakeSelector(options));
  return out;
}

}  // namespace easeml::obs
