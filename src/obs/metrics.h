#ifndef EASEML_OBS_METRICS_H_
#define EASEML_OBS_METRICS_H_

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <string>

#include "common/thread_annotations.h"

namespace easeml::obs {

/// Hot-path instruments for the serving engine: relaxed-atomic counters and
/// fixed-bucket latency histograms, owned by a `Registry` keyed on stable
/// metric names. The recording side (`Counter::Increment`,
/// `Histogram::Record`) is wait-free — one or a few relaxed atomic RMWs, no
/// locks, no allocation — so instruments can sit directly on the `Next`/
/// `Report` coordinator paths and inside shard-worker fold closures without
/// perturbing the latencies they measure. Reads (`Value`, the exporters) are
/// racy-by-design point-in-time sums: each load is atomic, but a scrape that
/// straddles concurrent records may see a histogram whose bucket total
/// lags `Count()` by in-flight increments — fine for monitoring, documented
/// here so nobody "fixes" it with a lock.

/// Monotonic event counter. Relaxed ordering: counts are aggregates with no
/// cross-variable ordering contract.
class Counter {
 public:
  void Increment(uint64_t n = 1) {
    value_.fetch_add(n, std::memory_order_relaxed);
  }
  uint64_t Value() const { return value_.load(std::memory_order_relaxed); }

 private:
  std::atomic<uint64_t> value_{0};
};

/// Fixed-bucket latency histogram over microseconds. The bounds ladder is
/// compiled in (roughly logarithmic, 0.5µs .. 50ms) because every latency
/// this repo measures — index descents, Cholesky folds, queue stalls,
/// training-job walls — lands in that window; a shared ladder keeps every
/// exported histogram directly comparable. Values above the top bound land
/// in the implicit +inf bucket.
class Histogram {
 public:
  static constexpr double kBounds[] = {0.5,   1.0,    2.0,    5.0,    10.0,
                                       20.0,  50.0,   100.0,  200.0,  500.0,
                                       1000., 2000.,  5000.,  10000., 20000.,
                                       50000.};
  static constexpr int kNumBounds = static_cast<int>(sizeof(kBounds) /
                                                     sizeof(kBounds[0]));
  static constexpr int kNumBuckets = kNumBounds + 1;  // trailing +inf bucket

  /// Records one sample of `us` microseconds. Negative samples clamp to 0
  /// (they can only come from clock retrograde, which the monotonic seam
  /// already rules out; the clamp keeps the sum well-defined regardless).
  void Record(double us);

  uint64_t Count() const { return count_.load(std::memory_order_relaxed); }
  /// Sum of recorded samples in microseconds (accumulated in integer
  /// nanoseconds so concurrent recording stays associative and exact up to
  /// the 1ns quantization).
  double SumUs() const {
    return static_cast<double>(sum_ns_.load(std::memory_order_relaxed)) *
           1e-3;
  }
  double MeanUs() const {
    const uint64_t n = Count();
    return n == 0 ? 0.0 : SumUs() / static_cast<double>(n);
  }
  uint64_t BucketCount(int bucket) const {
    return buckets_[bucket].load(std::memory_order_relaxed);
  }
  /// Approximate quantile (q in [0,1]) by linear interpolation inside the
  /// owning bucket; the +inf bucket reports the top finite bound.
  double QuantileUs(double q) const;

 private:
  std::atomic<uint64_t> buckets_[kNumBuckets] = {};
  std::atomic<uint64_t> count_{0};
  std::atomic<uint64_t> sum_ns_{0};
};

/// Name-keyed instrument registry. `GetCounter`/`GetHistogram` create on
/// first use and return stable pointers (instruments are heap-allocated and
/// never deleted while the registry lives), so hot paths resolve a name once
/// at wiring time and record through the raw pointer thereafter. The lock
/// only guards the name maps — never a record.
class Registry {
 public:
  Counter* GetCounter(const std::string& name) EASEML_EXCLUDES(mu_);
  Histogram* GetHistogram(const std::string& name) EASEML_EXCLUDES(mu_);

  /// Prometheus-flavoured text exposition: one `name value` line per
  /// counter, `name_count/_sum_us/_mean_us/_p50_us/_p99_us` per histogram,
  /// sorted by name (std::map order) so exports diff cleanly.
  std::string ExportText() const EASEML_EXCLUDES(mu_);
  /// The same data as one JSON object: {"counters":{...},"histograms":
  /// {name:{count,sum_us,mean_us,p50_us,p99_us,buckets:[...]}}}.
  std::string ExportJson() const EASEML_EXCLUDES(mu_);

 private:
  mutable Mutex mu_;
  std::map<std::string, std::unique_ptr<Counter>> counters_
      EASEML_GUARDED_BY(mu_);
  std::map<std::string, std::unique_ptr<Histogram>> histograms_
      EASEML_GUARDED_BY(mu_);
};

}  // namespace easeml::obs

#endif  // EASEML_OBS_METRICS_H_
