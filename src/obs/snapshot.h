#ifndef EASEML_OBS_SNAPSHOT_H_
#define EASEML_OBS_SNAPSHOT_H_

#include <cstdint>
#include <memory>
#include <utility>
#include <vector>

#include "common/thread_annotations.h"
#include "core/selector_observer.h"

namespace easeml::obs {

/// Versioned, immutable, copy-on-write fleet snapshots.
///
/// The serving engines already quiesce every reader of tenant state through
/// the selector lock and a fold-queue drain — correct, but it means an
/// analytics scan walking 10^5 tenants would stall the `Next()` hot path for
/// its whole walk. The snapshot plane decouples the two: shard workers
/// PUBLISH immutable per-shard summary blocks at fold boundaries, and
/// readers WALK the last published blocks lock-free (one brief per-shard
/// pointer copy aside), never touching the selector lock at all.
///
/// Data model, writer side (one `Slot` per shard):
///   - `master_` holds the latest `TenantObservation` per tenant, indexed by
///     tenant id (ids are never reused; a retired tenant keeps its slot).
///     Shards own disjoint tenant sets and churn only mutates placement
///     while the engine is quiesced, so every `master_` element has exactly
///     one writer at any moment — no synchronization needed on the write.
///   - Each slot tracks its local tenant-id list as a
///     `shared_ptr<const vector<int>>` (replaced only on placement change,
///     so steady-state publishes never copy it), per-chunk dirty bits
///     (chunks of `kChunk` positions), a monotone event counter, and
///     integer-only running aggregates maintained by old/new diff on every
///     event — integers so a validator can recompute them from a published
///     block and compare EXACTLY.
///
/// Publishing: after `publish_interval` events (or an explicit flush) the
/// owning worker builds a fresh `ShardBlock` — dirty chunks copied from
/// `master_`, clean chunks reference-shared with the previous block — and
/// swaps it into the slot's `published` pointer under a tiny leaf mutex.
/// The block's `epoch` is the slot's event count at publish, so per-shard
/// epochs are strictly monotone and the fleet epoch (their sum) is too.
///
/// Consistency: a block is built only from state its writer owns, and dirty
/// bits cover every `master_` write since the covering chunk was last
/// copied, so each published block equals `master_`'s restriction to the
/// shard at one instant — internally consistent by construction (aggregates
/// match a recount of its entries; ids ascend). The TSan battery races
/// full-fleet scans against churn to hold the plane to exactly that.
///
/// Threading contract (mirrors `core::SelectorObserver`):
///   - `Apply` runs on the tenant's owning thread (shard worker, or the
///     quiesced coordinator). Applies for different shards may be
///     concurrent; applies for one shard never are.
///   - `Place`, `SetPlacement`, `FlushAll` require a quiesced engine (no
///     concurrent `Apply` anywhere) — they rebuild writer-side state.
///   - `Snapshot` is safe from ANY thread at ANY time.
constexpr int kChunk = 64;

/// Integer-only per-shard aggregates. Every field is recomputable by
/// summing a block's entries — the stress battery does exactly that and
/// demands equality, which is why nothing here is a double.
struct ShardAggregates {
  int64_t tenants = 0;        // placed on this shard (retired included)
  int64_t retired = 0;
  int64_t schedulable = 0;
  int64_t uninitialized = 0;  // awaiting the initialization sweep
  int64_t in_flight = 0;      // sum of per-tenant in-flight tickets
  int64_t rounds = 0;         // sum of rounds_served

  bool operator==(const ShardAggregates& o) const {
    return tenants == o.tenants && retired == o.retired &&
           schedulable == o.schedulable && uninitialized == o.uninitialized &&
           in_flight == o.in_flight && rounds == o.rounds;
  }
};

/// One shard's published summary: immutable after publication; chunks may
/// be shared (by shared_ptr) with earlier and later blocks of the same
/// shard — copy-on-write at chunk granularity.
struct ShardBlock {
  uint64_t epoch = 0;  // shard event count at publish; strictly monotone
  std::shared_ptr<const std::vector<int>> ids;  // ascending tenant ids
  std::vector<std::shared_ptr<const std::vector<core::TenantObservation>>>
      chunks;  // chunk c covers positions [c*kChunk, min((c+1)*kChunk, n))
  ShardAggregates agg;

  int size() const {
    return ids == nullptr ? 0 : static_cast<int>(ids->size());
  }
  const core::TenantObservation& at(int pos) const {
    return (*chunks[static_cast<size_t>(pos / kChunk)])[static_cast<size_t>(
        pos % kChunk)];
  }
};

/// A point-in-time view of the whole fleet: one published block per shard.
/// Blocks from different shards may be at different epochs (each shard
/// publishes independently) — the fleet epoch is their sum and is monotone
/// across snapshots.
struct FleetSnapshot {
  std::vector<std::shared_ptr<const ShardBlock>> shards;

  uint64_t epoch() const {
    uint64_t sum = 0;
    for (const auto& s : shards) {
      if (s != nullptr) sum += s->epoch;
    }
    return sum;
  }
  ShardAggregates Totals() const;

  /// Calls `fn(shard, observation)` for every published tenant entry.
  template <typename Fn>
  void ForEachTenant(Fn fn) const {
    for (size_t s = 0; s < shards.size(); ++s) {
      const ShardBlock* block = shards[s].get();
      if (block == nullptr) continue;
      const int n = block->size();
      for (int pos = 0; pos < n; ++pos) {
        fn(static_cast<int>(s), block->at(pos));
      }
    }
  }
};

class SnapshotPlane {
 public:
  /// `publish_interval` = tenant events a shard absorbs between automatic
  /// publishes; 1 publishes on every fold boundary.
  explicit SnapshotPlane(int num_shards, int publish_interval = 32);
  ~SnapshotPlane();

  SnapshotPlane(const SnapshotPlane&) = delete;
  SnapshotPlane& operator=(const SnapshotPlane&) = delete;

  int num_shards() const { return static_cast<int>(slots_.size()); }

  // --- Writer side (threading contract above) -----------------------------

  /// Folds one tenant observation into the master copy and the owning
  /// shard's dirty set; publishes the shard when its interval elapses.
  /// The tenant must have been placed (`Place`/`SetPlacement`) first.
  void Apply(const core::TenantObservation& obs);

  /// Appends a new tenant to `shard`'s placement (quiesced; the base
  /// engine's single-shard add path).
  void Place(int tenant, int shard);

  /// Replaces the whole placement (quiesced; sharded-engine churn). Every
  /// shard republishes immediately so no block ever references a stale
  /// partition.
  void SetPlacement(const std::vector<std::vector<int>>& shard_tenants);

  /// Publishes every shard with unpublished events (quiesced). After this,
  /// `Snapshot()` reflects every event applied so far.
  void FlushAll();

  // --- Reader side (any thread) -------------------------------------------

  /// Lock-free fleet walk: copies each shard's published-block pointer
  /// (one brief leaf-mutex hold per shard, never contended by more than a
  /// pointer swap) and hands back the immutable blocks.
  FleetSnapshot Snapshot() const;

 private:
  struct Slot;

  /// Builds and publishes a fresh block for `shard` from its dirty chunks.
  void PublishSlot(int shard);
  /// Recomputes `slot`'s aggregates from `master_` over its current ids.
  void RecountSlot(Slot& slot) const;

  std::vector<core::TenantObservation> master_;
  std::vector<std::pair<int, int>> where_;  // tenant -> (shard, pos); (-1,-1)
  std::vector<std::unique_ptr<Slot>> slots_;
  const int publish_interval_;
};

}  // namespace easeml::obs

#endif  // EASEML_OBS_SNAPSHOT_H_
