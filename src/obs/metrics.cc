#include "obs/metrics.h"

#include <cstdio>
#include <sstream>

namespace easeml::obs {

void Histogram::Record(double us) {
  if (!(us > 0.0)) us = 0.0;  // clamp negatives and NaN
  int bucket = kNumBounds;  // +inf unless a bound catches it
  for (int i = 0; i < kNumBounds; ++i) {
    if (us <= kBounds[i]) {
      bucket = i;
      break;
    }
  }
  buckets_[bucket].fetch_add(1, std::memory_order_relaxed);
  count_.fetch_add(1, std::memory_order_relaxed);
  sum_ns_.fetch_add(static_cast<uint64_t>(us * 1e3),
                    std::memory_order_relaxed);
}

double Histogram::QuantileUs(double q) const {
  if (q < 0.0) q = 0.0;
  if (q > 1.0) q = 1.0;
  const uint64_t total = Count();
  if (total == 0) return 0.0;
  const double target = q * static_cast<double>(total);
  uint64_t seen = 0;
  for (int i = 0; i < kNumBuckets; ++i) {
    const uint64_t in_bucket = BucketCount(i);
    if (in_bucket == 0) continue;
    if (static_cast<double>(seen + in_bucket) >= target) {
      if (i >= kNumBounds) return kBounds[kNumBounds - 1];  // +inf bucket
      const double lo = i == 0 ? 0.0 : kBounds[i - 1];
      const double hi = kBounds[i];
      const double frac =
          (target - static_cast<double>(seen)) / static_cast<double>(in_bucket);
      return lo + (hi - lo) * (frac < 0.0 ? 0.0 : (frac > 1.0 ? 1.0 : frac));
    }
    seen += in_bucket;
  }
  return kBounds[kNumBounds - 1];
}

Counter* Registry::GetCounter(const std::string& name) {
  MutexLock lock(mu_);
  std::unique_ptr<Counter>& slot = counters_[name];
  if (slot == nullptr) slot = std::make_unique<Counter>();
  return slot.get();
}

Histogram* Registry::GetHistogram(const std::string& name) {
  MutexLock lock(mu_);
  std::unique_ptr<Histogram>& slot = histograms_[name];
  if (slot == nullptr) slot = std::make_unique<Histogram>();
  return slot.get();
}

namespace {

std::string FormatDouble(double v) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.3f", v);
  return buf;
}

}  // namespace

std::string Registry::ExportText() const {
  std::ostringstream out;
  MutexLock lock(mu_);
  for (const auto& [name, counter] : counters_) {
    out << name << " " << counter->Value() << "\n";
  }
  for (const auto& [name, hist] : histograms_) {
    out << name << "_count " << hist->Count() << "\n";
    out << name << "_sum_us " << FormatDouble(hist->SumUs()) << "\n";
    out << name << "_mean_us " << FormatDouble(hist->MeanUs()) << "\n";
    out << name << "_p50_us " << FormatDouble(hist->QuantileUs(0.5)) << "\n";
    out << name << "_p99_us " << FormatDouble(hist->QuantileUs(0.99)) << "\n";
  }
  return out.str();
}

std::string Registry::ExportJson() const {
  std::ostringstream out;
  MutexLock lock(mu_);
  out << "{\"counters\":{";
  bool first = true;
  for (const auto& [name, counter] : counters_) {
    if (!first) out << ",";
    first = false;
    out << "\"" << name << "\":" << counter->Value();
  }
  out << "},\"histograms\":{";
  first = true;
  for (const auto& [name, hist] : histograms_) {
    if (!first) out << ",";
    first = false;
    out << "\"" << name << "\":{\"count\":" << hist->Count()
        << ",\"sum_us\":" << FormatDouble(hist->SumUs())
        << ",\"mean_us\":" << FormatDouble(hist->MeanUs())
        << ",\"p50_us\":" << FormatDouble(hist->QuantileUs(0.5))
        << ",\"p99_us\":" << FormatDouble(hist->QuantileUs(0.99))
        << ",\"buckets\":[";
    for (int i = 0; i < Histogram::kNumBuckets; ++i) {
      if (i != 0) out << ",";
      out << hist->BucketCount(i);
    }
    out << "]}";
  }
  out << "}}";
  return out.str();
}

}  // namespace easeml::obs
