#include "gp/gaussian_process.h"

#include <cmath>

#include "common/logging.h"
#include "linalg/cholesky.h"

namespace easeml::gp {

namespace {
constexpr double kHalfLogTwoPi = 0.9189385332046727;  // log(2*pi)/2
}  // namespace

DiscreteArmGp::DiscreteArmGp(linalg::Matrix prior_cov, double noise_variance,
                             std::vector<double> prior_mean)
    : prior_cov_(std::move(prior_cov)),
      prior_mean_(std::move(prior_mean)),
      noise_variance_(noise_variance),
      cov_(prior_cov_),
      mean_(prior_mean_) {}

Result<DiscreteArmGp> DiscreteArmGp::Create(linalg::Matrix prior_cov,
                                            double noise_variance,
                                            std::vector<double> prior_mean) {
  if (prior_cov.rows() != prior_cov.cols() || prior_cov.rows() == 0) {
    return Status::InvalidArgument("DiscreteArmGp: covariance must be square");
  }
  if (!prior_cov.IsSymmetric(1e-9)) {
    return Status::InvalidArgument("DiscreteArmGp: covariance not symmetric");
  }
  if (noise_variance <= 0.0) {
    return Status::InvalidArgument(
        "DiscreteArmGp: noise variance must be > 0");
  }
  const int k = prior_cov.rows();
  if (prior_mean.empty()) prior_mean.assign(k, 0.0);
  if (static_cast<int>(prior_mean.size()) != k) {
    return Status::InvalidArgument("DiscreteArmGp: prior mean size mismatch");
  }
  for (int i = 0; i < k; ++i) {
    if (prior_cov(i, i) <= 0.0) {
      return Status::InvalidArgument(
          "DiscreteArmGp: non-positive prior variance on arm " +
          std::to_string(i));
    }
  }
  return DiscreteArmGp(std::move(prior_cov), noise_variance,
                       std::move(prior_mean));
}

double DiscreteArmGp::Variance(int k) const {
  // Guard against tiny negative values from floating-point cancellation.
  return std::max(0.0, cov_(k, k));
}

PosteriorSummary DiscreteArmGp::AllMarginals() const {
  PosteriorSummary out;
  out.mean = mean_;
  out.variance.resize(mean_.size());
  for (int k = 0; k < num_arms(); ++k) out.variance[k] = Variance(k);
  return out;
}

size_t DiscreteArmGp::ApproxMemoryBytes() const {
  return sizeof(double) * (prior_cov_.data().size() + cov_.data().size() +
                           prior_mean_.size() + mean_.size());
}

Status DiscreteArmGp::Observe(int arm, double y) {
  if (arm < 0 || arm >= num_arms()) {
    return Status::OutOfRange("Observe: arm index " + std::to_string(arm));
  }
  const int k = num_arms();
  const double denom = cov_(arm, arm) + noise_variance_;
  EASEML_DCHECK(denom > 0.0);
  const double innovation = y - mean_[arm];
  // Copy of the pivot row before the covariance is overwritten.
  std::vector<double> pivot_row = cov_.Row(arm);
  for (int i = 0; i < k; ++i) {
    const double gain = pivot_row[i] / denom;
    mean_[i] += gain * innovation;
    for (int j = 0; j < k; ++j) {
      cov_(i, j) -= gain * pivot_row[j];
    }
  }
  // Re-symmetrize to suppress floating-point drift over long runs.
  for (int i = 0; i < k; ++i) {
    for (int j = i + 1; j < k; ++j) {
      const double v = 0.5 * (cov_(i, j) + cov_(j, i));
      cov_(i, j) = v;
      cov_(j, i) = v;
    }
  }
  ++num_observations_;
  return Status::OK();
}

void DiscreteArmGp::Reset() {
  cov_ = prior_cov_;
  mean_ = prior_mean_;
  num_observations_ = 0;
}

Result<PosteriorSummary> DiscreteArmGp::BatchPosterior(
    const linalg::Matrix& prior_cov, double noise_variance,
    const std::vector<int>& arms, const std::vector<double>& ys) {
  if (arms.size() != ys.size()) {
    return Status::InvalidArgument("BatchPosterior: arms/ys length mismatch");
  }
  const int k = prior_cov.rows();
  const int t = static_cast<int>(arms.size());
  for (int a : arms) {
    if (a < 0 || a >= k) {
      return Status::OutOfRange("BatchPosterior: arm out of range");
    }
  }
  PosteriorSummary out;
  if (t == 0) {
    out.mean.assign(k, 0.0);
    out.variance.resize(k);
    for (int i = 0; i < k; ++i) out.variance[i] = prior_cov(i, i);
    return out;
  }
  // S_t + s^2 I over the observed arms (with multiplicity).
  linalg::Matrix st(t, t);
  for (int i = 0; i < t; ++i) {
    for (int j = 0; j < t; ++j) st(i, j) = prior_cov(arms[i], arms[j]);
  }
  st.AddToDiagonal(noise_variance);
  EASEML_ASSIGN_OR_RETURN(linalg::Cholesky chol,
                          linalg::Cholesky::Compute(st));
  const std::vector<double> alpha = chol.Solve(ys);
  out.mean.resize(k);
  out.variance.resize(k);
  std::vector<double> stk(t);
  for (int arm = 0; arm < k; ++arm) {
    for (int i = 0; i < t; ++i) stk[i] = prior_cov(arms[i], arm);
    double mu = 0.0;
    for (int i = 0; i < t; ++i) mu += stk[i] * alpha[i];
    const std::vector<double> v = chol.Solve(stk);
    double reduction = 0.0;
    for (int i = 0; i < t; ++i) reduction += stk[i] * v[i];
    out.mean[arm] = mu;
    out.variance[arm] = std::max(0.0, prior_cov(arm, arm) - reduction);
  }
  return out;
}

Result<double> DiscreteArmGp::LogMarginalLikelihood(
    const linalg::Matrix& prior_cov, double noise_variance,
    const std::vector<int>& arms, const std::vector<double>& ys) {
  if (arms.size() != ys.size()) {
    return Status::InvalidArgument(
        "LogMarginalLikelihood: arms/ys length mismatch");
  }
  const int t = static_cast<int>(arms.size());
  if (t == 0) return 0.0;
  linalg::Matrix st(t, t);
  for (int i = 0; i < t; ++i) {
    for (int j = 0; j < t; ++j) st(i, j) = prior_cov(arms[i], arms[j]);
  }
  st.AddToDiagonal(noise_variance);
  EASEML_ASSIGN_OR_RETURN(linalg::Cholesky chol,
                          linalg::Cholesky::Compute(st));
  const std::vector<double> alpha = chol.Solve(ys);
  double quad = 0.0;
  for (int i = 0; i < t; ++i) quad += ys[i] * alpha[i];
  return -0.5 * quad - 0.5 * chol.LogDet() - t * kHalfLogTwoPi;
}

}  // namespace easeml::gp
