#include "gp/kernel.h"

#include <cmath>
#include <sstream>

#include "common/logging.h"
#include "linalg/vector_ops.h"

namespace easeml::gp {

Result<linalg::Matrix> Kernel::BuildGram(
    const std::vector<std::vector<double>>& features) const {
  if (features.empty()) {
    return Status::InvalidArgument("BuildGram: no feature vectors");
  }
  const size_t dim = features[0].size();
  for (const auto& f : features) {
    if (f.size() != dim) {
      return Status::InvalidArgument(
          "BuildGram: inconsistent feature dimensions");
    }
  }
  const int n = static_cast<int>(features.size());
  linalg::Matrix gram(n, n);
  for (int i = 0; i < n; ++i) {
    for (int j = i; j < n; ++j) {
      const double v = Evaluate(features[i], features[j]);
      gram(i, j) = v;
      gram(j, i) = v;
    }
  }
  return gram;
}

LinearKernel::LinearKernel(double signal_variance, double bias)
    : signal_variance_(signal_variance), bias_(bias) {
  EASEML_CHECK(signal_variance > 0.0);
  EASEML_CHECK(bias >= 0.0);
}

double LinearKernel::Evaluate(const std::vector<double>& a,
                              const std::vector<double>& b) const {
  return signal_variance_ * linalg::Dot(a, b) + bias_;
}

std::string LinearKernel::ToString() const {
  std::ostringstream os;
  os << "linear(s2=" << signal_variance_ << ", bias=" << bias_ << ")";
  return os.str();
}

RbfKernel::RbfKernel(double length_scale, double signal_variance)
    : length_scale_(length_scale), signal_variance_(signal_variance) {
  EASEML_CHECK(length_scale > 0.0);
  EASEML_CHECK(signal_variance > 0.0);
}

double RbfKernel::Evaluate(const std::vector<double>& a,
                           const std::vector<double>& b) const {
  const double d2 = linalg::SquaredDistance(a, b);
  return signal_variance_ *
         std::exp(-d2 / (2.0 * length_scale_ * length_scale_));
}

std::string RbfKernel::ToString() const {
  std::ostringstream os;
  os << "rbf(l=" << length_scale_ << ", s2=" << signal_variance_ << ")";
  return os.str();
}

Matern52Kernel::Matern52Kernel(double length_scale, double signal_variance)
    : length_scale_(length_scale), signal_variance_(signal_variance) {
  EASEML_CHECK(length_scale > 0.0);
  EASEML_CHECK(signal_variance > 0.0);
}

double Matern52Kernel::Evaluate(const std::vector<double>& a,
                                const std::vector<double>& b) const {
  const double r = std::sqrt(linalg::SquaredDistance(a, b));
  const double z = std::sqrt(5.0) * r / length_scale_;
  return signal_variance_ * (1.0 + z + z * z / 3.0) * std::exp(-z);
}

std::string Matern52Kernel::ToString() const {
  std::ostringstream os;
  os << "matern52(l=" << length_scale_ << ", s2=" << signal_variance_ << ")";
  return os.str();
}

}  // namespace easeml::gp
