#ifndef EASEML_GP_KERNEL_H_
#define EASEML_GP_KERNEL_H_

#include <memory>
#include <string>
#include <vector>

#include "common/status.h"
#include "linalg/matrix.h"

namespace easeml::gp {

/// Positive-definite covariance function over model feature vectors.
///
/// ease.ml represents each candidate model by its "quality vector" — its
/// observed accuracy on the training users (paper, Appendix A). A kernel maps
/// two such vectors to a prior covariance between the corresponding arms.
class Kernel {
 public:
  virtual ~Kernel() = default;

  /// k(a, b). Precondition: equal feature dimension.
  virtual double Evaluate(const std::vector<double>& a,
                          const std::vector<double>& b) const = 0;

  /// Human-readable kernel description (e.g. "rbf(l=0.5, s2=1)").
  virtual std::string ToString() const = 0;

  /// Builds the Gram matrix K with K[i][j] = Evaluate(f[i], f[j]).
  /// Fails if features are empty or have inconsistent dimensions.
  Result<linalg::Matrix> BuildGram(
      const std::vector<std::vector<double>>& features) const;
};

/// Linear kernel k(a,b) = signal_variance * (a . b) + bias.
/// The paper's Theorem 5 reference discusses the linear-kernel information
/// gain bound; this is also the cheapest useful kernel.
class LinearKernel : public Kernel {
 public:
  explicit LinearKernel(double signal_variance = 1.0, double bias = 0.0);

  double Evaluate(const std::vector<double>& a,
                  const std::vector<double>& b) const override;
  std::string ToString() const override;

  double signal_variance() const { return signal_variance_; }
  double bias() const { return bias_; }

 private:
  double signal_variance_;
  double bias_;
};

/// Squared-exponential (RBF) kernel
///   k(a,b) = signal_variance * exp(-||a-b||^2 / (2 * length_scale^2)).
/// This is the kernel scikit-learn's GaussianProcessRegressor defaults to and
/// the one the paper tunes by maximizing log marginal likelihood.
class RbfKernel : public Kernel {
 public:
  /// Precondition: length_scale > 0, signal_variance > 0.
  RbfKernel(double length_scale, double signal_variance = 1.0);

  double Evaluate(const std::vector<double>& a,
                  const std::vector<double>& b) const override;
  std::string ToString() const override;

  double length_scale() const { return length_scale_; }
  double signal_variance() const { return signal_variance_; }

 private:
  double length_scale_;
  double signal_variance_;
};

/// Matérn 5/2 kernel
///   k(a,b) = s2 * (1 + sqrt(5) r / l + 5 r^2 / (3 l^2)) exp(-sqrt(5) r / l)
/// with r = ||a-b||. The second kernel family the paper's regret analysis
/// covers (Section 4.3 cites the Matérn bound of Srinivas et al.).
class Matern52Kernel : public Kernel {
 public:
  /// Precondition: length_scale > 0, signal_variance > 0.
  Matern52Kernel(double length_scale, double signal_variance = 1.0);

  double Evaluate(const std::vector<double>& a,
                  const std::vector<double>& b) const override;
  std::string ToString() const override;

  double length_scale() const { return length_scale_; }
  double signal_variance() const { return signal_variance_; }

 private:
  double length_scale_;
  double signal_variance_;
};

}  // namespace easeml::gp

#endif  // EASEML_GP_KERNEL_H_
