#include "gp/shared_prior_gp.h"

#include <algorithm>
#include <cmath>
#include <string>
#include <utility>

#include "common/logging.h"

namespace easeml::gp {

Result<std::shared_ptr<const SharedGpPrior>> MakeSharedGpPrior(
    linalg::Matrix gram, double noise_variance, std::vector<double> mean) {
  if (gram.rows() != gram.cols() || gram.rows() == 0) {
    return Status::InvalidArgument("SharedGpPrior: gram must be square");
  }
  if (!gram.IsSymmetric(1e-9)) {
    return Status::InvalidArgument("SharedGpPrior: gram not symmetric");
  }
  if (!(noise_variance > 0.0)) {  // negated so NaN is rejected too
    return Status::InvalidArgument(
        "SharedGpPrior: noise variance must be > 0");
  }
  const int k = gram.rows();
  if (mean.empty()) mean.assign(k, 0.0);
  if (static_cast<int>(mean.size()) != k) {
    return Status::InvalidArgument("SharedGpPrior: prior mean size mismatch");
  }
  for (int i = 0; i < k; ++i) {
    if (gram(i, i) <= 0.0) {
      return Status::InvalidArgument(
          "SharedGpPrior: non-positive prior variance on arm " +
          std::to_string(i));
    }
  }
  auto prior = std::make_shared<SharedGpPrior>();
  prior->gram = std::move(gram);
  prior->mean = std::move(mean);
  prior->noise_variance = noise_variance;
  return std::shared_ptr<const SharedGpPrior>(std::move(prior));
}

SharedPriorGp::SharedPriorGp(std::shared_ptr<const SharedGpPrior> prior)
    : prior_(std::move(prior)) {}

Result<SharedPriorGp> SharedPriorGp::Create(
    std::shared_ptr<const SharedGpPrior> prior) {
  if (prior == nullptr) {
    return Status::InvalidArgument("SharedPriorGp: null prior");
  }
  return SharedPriorGp(std::move(prior));
}

Result<std::unique_ptr<SharedPriorGp>> SharedPriorGp::CreateUnique(
    std::shared_ptr<const SharedGpPrior> prior) {
  EASEML_ASSIGN_OR_RETURN(SharedPriorGp gp, Create(std::move(prior)));
  return std::make_unique<SharedPriorGp>(std::move(gp));
}

Status SharedPriorGp::Observe(int arm, double y) {
  if (arm < 0 || arm >= num_arms()) {
    return Status::OutOfRange("Observe: arm index " + std::to_string(arm));
  }
  const linalg::Matrix& gram = prior_->gram;
  const int t = num_observations();
  std::vector<double> b(t);
  for (int i = 0; i < t; ++i) b[i] = gram(arms_[i], arm);
  const double d = gram(arm, arm) + prior_->noise_variance;
  Status appended = chol_.Append(b, d);
  if (!appended.ok()) {
    // S_t + sigma^2 I is positive definite in exact arithmetic; an Append
    // failure is floating-point cancellation on a nearly redundant arm.
    // Refactorize from scratch with escalating jitter, invalidating the
    // incremental caches.
    linalg::Matrix st(t + 1, t + 1);
    for (int i = 0; i < t; ++i) {
      for (int j = 0; j < t; ++j) st(i, j) = gram(arms_[i], arms_[j]);
      st(i, t) = st(t, i) = b[i];
    }
    st(t, t) = gram(arm, arm);
    st.AddToDiagonal(prior_->noise_variance);
    bool refactored = false;
    for (double jitter : {1e-12, 1e-10, 1e-8, 1e-6}) {
      auto chol = linalg::Cholesky::Compute(st, jitter);
      if (chol.ok()) {
        chol_ = std::move(chol).value();
        summary_rows_ = -1;
        refactored = true;
        break;
      }
    }
    if (!refactored) return appended;
  }
  arms_.push_back(arm);
  ys_.push_back(y);
  return Status::OK();
}

void SharedPriorGp::Reset() {
  arms_.clear();
  ys_.clear();
  chol_ = linalg::Cholesky();
  v_.clear();
  w_.clear();
  var_reduction_.clear();
  summary_ = PosteriorSummary();
  summary_rows_ = -1;
}

void SharedPriorGp::RebuildSummaryFromScratch() const {
  const int k = num_arms();
  const int t = num_observations();
  summary_.mean = prior_->mean;
  summary_.variance.resize(k);
  var_reduction_.assign(k, 0.0);
  for (int i = 0; i < k; ++i) summary_.variance[i] = prior_->gram(i, i);
  v_.clear();
  w_.clear();
  if (t > 0) {
    // One batched multi-RHS triangular solve covers every arm: V = L^{-1} B
    // with B the prior rows at the observed arms.
    const linalg::Matrix big_b = prior_->gram.GatherRows(arms_);
    const linalg::Matrix big_v = chol_.SolveLower(big_b);
    v_ = big_v.data();
    std::vector<double> rhs(t);
    for (int i = 0; i < t; ++i) rhs[i] = ys_[i] - prior_->mean[arms_[i]];
    w_ = chol_.SolveLower(rhs);
    for (int i = 0; i < t; ++i) {
      const double* row = v_.data() + static_cast<size_t>(i) * k;
      for (int j = 0; j < k; ++j) {
        summary_.mean[j] += row[j] * w_[i];
        var_reduction_[j] += row[j] * row[j];
      }
    }
    for (int j = 0; j < k; ++j) {
      summary_.variance[j] =
          std::max(0.0, prior_->gram(j, j) - var_reduction_[j]);
    }
  }
  summary_rows_ = t;
}

void SharedPriorGp::EnsureSummary() const {
  const int t = num_observations();
  if (summary_rows_ == t) return;
  if (summary_rows_ < 0) {
    RebuildSummaryFromScratch();
    return;
  }
  // Continue the forward substitution one observation at a time: row r of
  // V and w follows from rows 0..r-1 and row r of L in O(rK).
  const int k = num_arms();
  const linalg::Matrix& gram = prior_->gram;
  v_.resize(static_cast<size_t>(t) * k);
  w_.resize(t);
  for (int r = summary_rows_; r < t; ++r) {
    double* row = v_.data() + static_cast<size_t>(r) * k;
    const int arm = arms_[r];
    for (int j = 0; j < k; ++j) row[j] = gram(arm, j);
    double wr = ys_[r] - prior_->mean[arm];
    for (int j = 0; j < r; ++j) {
      const double lrj = chol_.At(r, j);
      if (lrj == 0.0) continue;
      const double* prev = v_.data() + static_cast<size_t>(j) * k;
      for (int c = 0; c < k; ++c) row[c] -= lrj * prev[c];
      wr -= lrj * w_[j];
    }
    const double inv = 1.0 / chol_.At(r, r);
    wr *= inv;
    w_[r] = wr;
    for (int c = 0; c < k; ++c) {
      row[c] *= inv;
      summary_.mean[c] += row[c] * wr;
      var_reduction_[c] += row[c] * row[c];
      summary_.variance[c] = std::max(0.0, gram(c, c) - var_reduction_[c]);
    }
  }
  summary_rows_ = t;
}

double SharedPriorGp::Mean(int k) const {
  EnsureSummary();
  return summary_.mean[k];
}

double SharedPriorGp::Variance(int k) const {
  EnsureSummary();
  return summary_.variance[k];
}

PosteriorSummary SharedPriorGp::AllMarginals() const {
  EnsureSummary();
  return summary_;
}

size_t SharedPriorGp::ApproxMemoryBytes() const {
  const size_t t = arms_.size();
  const size_t chol_entries = t * (t + 1) / 2;
  return sizeof(int) * arms_.size() +
         sizeof(double) *
             (ys_.size() + chol_entries + v_.size() + w_.size() +
              var_reduction_.size() + summary_.mean.size() +
              summary_.variance.size());
}

}  // namespace easeml::gp
