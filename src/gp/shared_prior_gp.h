#ifndef EASEML_GP_SHARED_PRIOR_GP_H_
#define EASEML_GP_SHARED_PRIOR_GP_H_

#include <memory>
#include <vector>

#include "common/status.h"
#include "gp/arm_belief.h"
#include "linalg/cholesky.h"
#include "linalg/matrix.h"

namespace easeml::gp {

/// The immutable prior all tenants of one model-selection service share:
/// the K x K Gram matrix over the candidate models, the prior mean, and the
/// observation noise. Built once per service (or per experiment repetition)
/// and handed to every tenant by `shared_ptr` — a 1000-tenant campaign
/// allocates the Gram matrix exactly once.
struct SharedGpPrior {
  linalg::Matrix gram;        // symmetric PSD, K x K
  std::vector<double> mean;   // length K
  double noise_variance = 0.0;

  int num_arms() const { return gram.rows(); }

  /// Bytes held by the shared state (amortized over all tenants).
  size_t ApproxMemoryBytes() const {
    return sizeof(double) * (gram.data().size() + mean.size());
  }
};

/// Validates and wraps a prior for sharing. `gram` must be symmetric K x K
/// with strictly positive diagonal, `noise_variance` strictly positive;
/// `mean` defaults to zero.
Result<std::shared_ptr<const SharedGpPrior>> MakeSharedGpPrior(
    linalg::Matrix gram, double noise_variance,
    std::vector<double> mean = {});

/// GP belief over K arms backed by a shared immutable prior.
///
/// Per-tenant state is only the observation history (arms, ys), the growing
/// t x t Cholesky factor L of S_t + sigma^2 I (extended in O(t^2) per
/// observation via `Cholesky::Append`), and O(K)/O(tK) marginal caches —
/// never a K x K matrix. Posterior marginals over all K arms follow from
/// the prior rows at the observed arms, B(i, k) = S(a_i, k):
///
///   V = L^{-1} B                      (t x K, one multi-RHS solve)
///   w = L^{-1} (y - m(a))            (t)
///   mu(k)      = m(k) + V(:,k) . w
///   sigma2(k)  = S(k,k) - |V(:,k)|^2   (clamped at 0)
///
/// which is algebraically identical to Algorithm 1 lines 6-7 (property
/// tests pin it against both `DiscreteArmGp` and
/// `DiscreteArmGp::BatchPosterior` to 1e-9). The caches are maintained
/// lazily: `Observe` appends to L in O(t^2) and defers the marginal
/// refresh; the first marginal read catches V/w/summary up, one O(tK) row
/// per deferred observation (or one batched multi-RHS solve from scratch).
class SharedPriorGp : public ArmBelief {
 public:
  /// `prior` must be non-null (as produced by `MakeSharedGpPrior`).
  static Result<SharedPriorGp> Create(
      std::shared_ptr<const SharedGpPrior> prior);

  /// Heap-allocated variant for polymorphic containers.
  static Result<std::unique_ptr<SharedPriorGp>> CreateUnique(
      std::shared_ptr<const SharedGpPrior> prior);

  int num_arms() const override { return prior_->num_arms(); }
  int num_observations() const override {
    return static_cast<int>(arms_.size());
  }
  double noise_variance() const override { return prior_->noise_variance; }

  double Mean(int k) const override;
  double Variance(int k) const override;
  PosteriorSummary AllMarginals() const override;

  Status Observe(int arm, double y) override;
  void Reset() override;

  /// Own state only: history + Cholesky factor + caches. The shared prior
  /// counts once per service, not once per tenant.
  size_t ApproxMemoryBytes() const override;

  const std::shared_ptr<const SharedGpPrior>& prior() const { return prior_; }
  const std::vector<int>& observed_arms() const { return arms_; }
  const std::vector<double>& observed_rewards() const { return ys_; }

  /// The growing t x t Cholesky factor. Checkpoints serialize it as a
  /// bit-exact integrity witness: recovery replays the observation history
  /// (Cholesky::Append is deterministic, so the replayed factor is
  /// bit-identical) and fails with DataLoss when the stored factor
  /// disagrees — corruption that survived the CRC cannot silently skew a
  /// posterior.
  const linalg::Cholesky& factor() const { return chol_; }

 private:
  explicit SharedPriorGp(std::shared_ptr<const SharedGpPrior> prior);

  /// Brings the marginal caches up to date with the observation history.
  void EnsureSummary() const;
  void RebuildSummaryFromScratch() const;

  std::shared_ptr<const SharedGpPrior> prior_;
  std::vector<int> arms_;
  std::vector<double> ys_;
  linalg::Cholesky chol_;  // L with L L^T = S_t + sigma^2 I

  // Lazy marginal caches; `summary_rows_` counts the observations already
  // folded in (-1 = must rebuild from scratch).
  mutable std::vector<double> v_;             // row-major t x K, V = L^{-1} B
  mutable std::vector<double> w_;             // L^{-1} (y - m(a))
  mutable std::vector<double> var_reduction_; // |V(:,k)|^2 per arm, unclamped
  mutable PosteriorSummary summary_;
  mutable int summary_rows_ = -1;
};

}  // namespace easeml::gp

#endif  // EASEML_GP_SHARED_PRIOR_GP_H_
