#ifndef EASEML_GP_GAUSSIAN_PROCESS_H_
#define EASEML_GP_GAUSSIAN_PROCESS_H_

#include <vector>

#include "common/status.h"
#include "gp/arm_belief.h"
#include "linalg/matrix.h"

namespace easeml::gp {

/// Gaussian-process belief over the rewards of K discrete arms (models).
///
/// Prior: x ~ N(prior_mean, prior_cov); observations y = x_a + eps with
/// eps ~ N(0, noise_variance). `Observe` conditions the joint belief on one
/// observation with an exact rank-1 update in O(K^2):
///
///   gain   = cov(:, a) / (cov(a, a) + sigma^2)
///   mean  += gain * (y - mean(a))
///   cov   -= gain * cov(a, :)
///
/// Sequentially applying this update is algebraically identical to the batch
/// posterior in Algorithm 1 (verified by property tests against
/// `BatchPosterior`), but supports the per-step access pattern of GP-UCB
/// without refactorizing the covariance.
class DiscreteArmGp : public ArmBelief {
 public:
  /// Creates the belief. `prior_cov` must be a symmetric K x K matrix and
  /// `noise_variance` strictly positive. `prior_mean` defaults to zero.
  static Result<DiscreteArmGp> Create(linalg::Matrix prior_cov,
                                      double noise_variance,
                                      std::vector<double> prior_mean = {});

  int num_arms() const override { return static_cast<int>(mean_.size()); }
  int num_observations() const override { return num_observations_; }
  double noise_variance() const override { return noise_variance_; }

  /// Posterior marginals of arm k.
  double Mean(int k) const override { return mean_[k]; }
  double Variance(int k) const override;

  /// Marginals of all arms, read off the dense posterior state.
  PosteriorSummary AllMarginals() const override;

  /// Full posterior mean / covariance access (used by tests and by the
  /// hybrid scheduler's diagnostics).
  const std::vector<double>& mean() const { return mean_; }
  const linalg::Matrix& covariance() const { return cov_; }

  /// Conditions the belief on one observation `y` of arm `arm`.
  Status Observe(int arm, double y) override;

  /// Resets to the prior belief.
  void Reset() override;

  /// Two K x K matrices plus the mean vectors — the O(K^2) footprint the
  /// shared-prior representation exists to avoid.
  size_t ApproxMemoryBytes() const override;

  /// Batch posterior per Algorithm 1 (lines 6-7):
  ///   mu_t(k)    = S_t(k)^T (S_t + s^2 I)^{-1} y_{1:t}
  ///   sigma_t(k) = S(k,k) - S_t(k)^T (S_t + s^2 I)^{-1} S_t(k)
  /// Reference implementation used to cross-check the incremental updates.
  static Result<PosteriorSummary> BatchPosterior(
      const linalg::Matrix& prior_cov, double noise_variance,
      const std::vector<int>& arms, const std::vector<double>& ys);

  /// Log marginal likelihood of observations (arms, ys) under the prior:
  ///   -1/2 y^T (S_t + s^2 I)^{-1} y - 1/2 log|S_t + s^2 I| - t/2 log(2 pi).
  static Result<double> LogMarginalLikelihood(const linalg::Matrix& prior_cov,
                                              double noise_variance,
                                              const std::vector<int>& arms,
                                              const std::vector<double>& ys);

 private:
  DiscreteArmGp(linalg::Matrix prior_cov, double noise_variance,
                std::vector<double> prior_mean);

  linalg::Matrix prior_cov_;
  std::vector<double> prior_mean_;
  double noise_variance_;

  linalg::Matrix cov_;        // current posterior covariance
  std::vector<double> mean_;  // current posterior mean
  int num_observations_ = 0;
};

}  // namespace easeml::gp

#endif  // EASEML_GP_GAUSSIAN_PROCESS_H_
