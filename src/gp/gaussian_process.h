#ifndef EASEML_GP_GAUSSIAN_PROCESS_H_
#define EASEML_GP_GAUSSIAN_PROCESS_H_

#include <vector>

#include "common/status.h"
#include "linalg/matrix.h"

namespace easeml::gp {

/// Posterior mean/variance over all arms, as produced by the batch reference
/// implementation (Algorithm 1, lines 6-7 of the paper).
struct PosteriorSummary {
  std::vector<double> mean;
  std::vector<double> variance;
};

/// Gaussian-process belief over the rewards of K discrete arms (models).
///
/// Prior: x ~ N(prior_mean, prior_cov); observations y = x_a + eps with
/// eps ~ N(0, noise_variance). `Observe` conditions the joint belief on one
/// observation with an exact rank-1 update in O(K^2):
///
///   gain   = cov(:, a) / (cov(a, a) + sigma^2)
///   mean  += gain * (y - mean(a))
///   cov   -= gain * cov(a, :)
///
/// Sequentially applying this update is algebraically identical to the batch
/// posterior in Algorithm 1 (verified by property tests against
/// `BatchPosterior`), but supports the per-step access pattern of GP-UCB
/// without refactorizing the covariance.
class DiscreteArmGp {
 public:
  /// Creates the belief. `prior_cov` must be a symmetric K x K matrix and
  /// `noise_variance` strictly positive. `prior_mean` defaults to zero.
  static Result<DiscreteArmGp> Create(linalg::Matrix prior_cov,
                                      double noise_variance,
                                      std::vector<double> prior_mean = {});

  int num_arms() const { return static_cast<int>(mean_.size()); }
  int num_observations() const { return num_observations_; }
  double noise_variance() const { return noise_variance_; }

  /// Posterior marginals of arm k.
  double Mean(int k) const { return mean_[k]; }
  double Variance(int k) const;
  double StdDev(int k) const;

  /// Full posterior mean / covariance access (used by tests and by the
  /// hybrid scheduler's diagnostics).
  const std::vector<double>& mean() const { return mean_; }
  const linalg::Matrix& covariance() const { return cov_; }

  /// Conditions the belief on one observation `y` of arm `arm`.
  Status Observe(int arm, double y);

  /// Resets to the prior belief.
  void Reset();

  /// Batch posterior per Algorithm 1 (lines 6-7):
  ///   mu_t(k)    = S_t(k)^T (S_t + s^2 I)^{-1} y_{1:t}
  ///   sigma_t(k) = S(k,k) - S_t(k)^T (S_t + s^2 I)^{-1} S_t(k)
  /// Reference implementation used to cross-check the incremental updates.
  static Result<PosteriorSummary> BatchPosterior(
      const linalg::Matrix& prior_cov, double noise_variance,
      const std::vector<int>& arms, const std::vector<double>& ys);

  /// Log marginal likelihood of observations (arms, ys) under the prior:
  ///   -1/2 y^T (S_t + s^2 I)^{-1} y - 1/2 log|S_t + s^2 I| - t/2 log(2 pi).
  static Result<double> LogMarginalLikelihood(const linalg::Matrix& prior_cov,
                                              double noise_variance,
                                              const std::vector<int>& arms,
                                              const std::vector<double>& ys);

 private:
  DiscreteArmGp(linalg::Matrix prior_cov, double noise_variance,
                std::vector<double> prior_mean);

  linalg::Matrix prior_cov_;
  std::vector<double> prior_mean_;
  double noise_variance_;

  linalg::Matrix cov_;        // current posterior covariance
  std::vector<double> mean_;  // current posterior mean
  int num_observations_ = 0;
};

}  // namespace easeml::gp

#endif  // EASEML_GP_GAUSSIAN_PROCESS_H_
