#include "gp/hyperparameter_tuner.h"

#include <cmath>
#include <limits>

#include "common/statistics.h"
#include "gp/gaussian_process.h"

namespace easeml::gp {

std::unique_ptr<Kernel> TunedHyperparameters::MakeKernel() const {
  switch (family) {
    case KernelFamily::kRbf:
      return std::make_unique<RbfKernel>(length_scale, signal_variance);
    case KernelFamily::kMatern52:
      return std::make_unique<Matern52Kernel>(length_scale, signal_variance);
    case KernelFamily::kLinear:
      return std::make_unique<LinearKernel>(signal_variance);
  }
  return nullptr;
}

namespace {

/// Summed LML of all centered realizations under the given Gram matrix.
Result<double> TotalLml(const linalg::Matrix& gram, double noise_variance,
                        const std::vector<std::vector<double>>& centered) {
  const int k = gram.rows();
  std::vector<int> all_arms(k);
  for (int i = 0; i < k; ++i) all_arms[i] = i;
  double total = 0.0;
  for (const auto& y : centered) {
    EASEML_ASSIGN_OR_RETURN(
        double lml, DiscreteArmGp::LogMarginalLikelihood(gram, noise_variance,
                                                         all_arms, y));
    total += lml;
  }
  return total;
}

}  // namespace

Result<TunedHyperparameters> TuneByMarginalLikelihood(
    KernelFamily family, const std::vector<std::vector<double>>& features,
    const std::vector<std::vector<double>>& realizations,
    const TunerGrid& grid) {
  if (features.empty()) {
    return Status::InvalidArgument("TuneByMarginalLikelihood: no features");
  }
  if (realizations.empty()) {
    return Status::InvalidArgument(
        "TuneByMarginalLikelihood: no realizations");
  }
  const size_t k = features.size();
  for (const auto& r : realizations) {
    if (r.size() != k) {
      return Status::InvalidArgument(
          "TuneByMarginalLikelihood: realization length != #models");
    }
  }
  // Center each realization: the GP prior mean is zero.
  std::vector<std::vector<double>> centered = realizations;
  for (auto& y : centered) {
    const double mu = Mean(y);
    for (double& v : y) v -= mu;
  }

  TunedHyperparameters best;
  best.family = family;
  best.log_marginal_likelihood = -std::numeric_limits<double>::infinity();

  const std::vector<double> unit_scale = {1.0};
  const std::vector<double>& scales =
      family == KernelFamily::kLinear ? unit_scale : grid.length_scales;

  for (double ls : scales) {
    for (double s2 : grid.signal_variances) {
      std::unique_ptr<Kernel> kernel;
      switch (family) {
        case KernelFamily::kRbf:
          kernel = std::make_unique<RbfKernel>(ls, s2);
          break;
        case KernelFamily::kMatern52:
          kernel = std::make_unique<Matern52Kernel>(ls, s2);
          break;
        case KernelFamily::kLinear:
          kernel = std::make_unique<LinearKernel>(s2);
          break;
      }
      EASEML_ASSIGN_OR_RETURN(linalg::Matrix gram,
                              kernel->BuildGram(features));
      for (double nv : grid.noise_variances) {
        auto lml = TotalLml(gram, nv, centered);
        // Numerically degenerate grids (e.g. singular Gram) are skipped
        // rather than failing the whole search.
        if (!lml.ok()) continue;
        if (*lml > best.log_marginal_likelihood) {
          best.length_scale = ls;
          best.signal_variance = s2;
          best.noise_variance = nv;
          best.log_marginal_likelihood = *lml;
        }
      }
    }
  }
  if (!std::isfinite(best.log_marginal_likelihood)) {
    return Status::Internal(
        "TuneByMarginalLikelihood: no feasible grid point");
  }
  return best;
}

}  // namespace easeml::gp
