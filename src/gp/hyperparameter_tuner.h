#ifndef EASEML_GP_HYPERPARAMETER_TUNER_H_
#define EASEML_GP_HYPERPARAMETER_TUNER_H_

#include <memory>
#include <vector>

#include "common/status.h"
#include "gp/kernel.h"

namespace easeml::gp {

/// Search grid for kernel hyperparameters. The paper tunes "by maximizing the
/// log-marginal-likelihood as in scikit-learn"; we use a deterministic grid
/// search, which is robust for the small (K <= ~200) arm counts ease.ml sees.
struct TunerGrid {
  std::vector<double> length_scales = {0.05, 0.1, 0.2, 0.5, 1.0, 2.0, 5.0};
  std::vector<double> signal_variances = {0.01, 0.05, 0.1, 0.5, 1.0};
  std::vector<double> noise_variances = {1e-4, 1e-3, 1e-2, 5e-2};
};

/// Kernel family to tune.
enum class KernelFamily { kRbf, kMatern52, kLinear };

/// Selected hyperparameters and achieved objective.
struct TunedHyperparameters {
  KernelFamily family = KernelFamily::kRbf;
  double length_scale = 1.0;      // ignored for linear
  double signal_variance = 1.0;
  double noise_variance = 1e-3;
  double log_marginal_likelihood = 0.0;

  /// Instantiates the tuned kernel.
  std::unique_ptr<Kernel> MakeKernel() const;
};

/// Fits kernel hyperparameters by maximizing the summed log marginal
/// likelihood of the training realizations.
///
/// `features[k]` is the feature vector of model k (its quality vector over
/// training users). `realizations[u]` is a length-K vector: the qualities of
/// all models on training user u, treated as one centered draw of the GP over
/// models. Fails if inputs are empty or inconsistently sized.
Result<TunedHyperparameters> TuneByMarginalLikelihood(
    KernelFamily family, const std::vector<std::vector<double>>& features,
    const std::vector<std::vector<double>>& realizations,
    const TunerGrid& grid = TunerGrid());

}  // namespace easeml::gp

#endif  // EASEML_GP_HYPERPARAMETER_TUNER_H_
