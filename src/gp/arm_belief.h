#ifndef EASEML_GP_ARM_BELIEF_H_
#define EASEML_GP_ARM_BELIEF_H_

#include <cmath>
#include <cstddef>
#include <vector>

#include "common/status.h"

namespace easeml::gp {

/// Posterior mean/variance over all arms, as produced by the batch reference
/// implementation (Algorithm 1, lines 6-7 of the paper).
struct PosteriorSummary {
  std::vector<double> mean;
  std::vector<double> variance;
};

/// Gaussian belief over the rewards of K discrete arms (candidate models).
///
/// This is the seam between the GP layer and the bandit layer: GP-UCB and
/// the scheduler diagnostics talk to an `ArmBelief` and never to a concrete
/// representation. Two implementations exist:
///
///  - `DiscreteArmGp`: dense K x K posterior covariance, O(K^2) per
///    observation — the reference representation.
///  - `SharedPriorGp`: all tenants share one immutable prior Gram matrix;
///    each tenant keeps only its observation history plus a growing t x t
///    Cholesky factor, O(t^2 + tK) per observation and O(K + tK) memory —
///    the multi-tenant representation (t observations, t << K in the
///    paper's regime).
///
/// Protocol: `Observe(arm, y)` conditions on one noisy observation;
/// marginals are read either per arm (`Mean`/`Variance`/`StdDev`) or for
/// all K arms at once (`AllMarginals`, the batch entry point policies
/// should prefer — one triangular multi-RHS solve instead of K scalar
/// queries).
class ArmBelief {
 public:
  virtual ~ArmBelief() = default;

  /// Total number of arms K.
  virtual int num_arms() const = 0;

  /// Number of observations conditioned on so far.
  virtual int num_observations() const = 0;

  /// Observation noise variance sigma^2.
  virtual double noise_variance() const = 0;

  /// Posterior marginals of arm k.
  virtual double Mean(int k) const = 0;
  virtual double Variance(int k) const = 0;
  double StdDev(int k) const { return std::sqrt(Variance(k)); }

  /// Posterior marginals of all K arms, computed in one batch.
  virtual PosteriorSummary AllMarginals() const = 0;

  /// Conditions the belief on one observation `y` of arm `arm`.
  virtual Status Observe(int arm, double y) = 0;

  /// Resets to the prior belief.
  virtual void Reset() = 0;

  /// Bytes of belief state owned by this instance (shared immutable state
  /// excluded). Used by the tenant-scaling benchmarks.
  virtual size_t ApproxMemoryBytes() const = 0;
};

}  // namespace easeml::gp

#endif  // EASEML_GP_ARM_BELIEF_H_
