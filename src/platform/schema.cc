#include "platform/schema.h"

#include <sstream>
#include <unordered_set>

namespace easeml::platform {

long long TensorShape::NumElements() const {
  long long n = 1;
  for (int d : dims) n *= d;
  return n;
}

std::string TensorShape::ToString() const {
  std::ostringstream os;
  os << "Tensor[";
  for (size_t i = 0; i < dims.size(); ++i) {
    if (i > 0) os << ",";
    os << dims[i];
  }
  os << "]";
  return os.str();
}

std::string DataType::ToString() const {
  std::ostringstream os;
  os << "{[";
  for (size_t i = 0; i < nonrec_fields.size(); ++i) {
    if (i > 0) os << ", ";
    if (!nonrec_fields[i].name.empty()) {
      os << nonrec_fields[i].name << " :: ";
    }
    os << nonrec_fields[i].shape.ToString();
  }
  os << "], [";
  for (size_t i = 0; i < rec_fields.size(); ++i) {
    if (i > 0) os << ", ";
    os << rec_fields[i];
  }
  os << "]}";
  return os.str();
}

std::string Program::ToString() const {
  return "{input: " + input.ToString() + ", output: " + output.ToString() +
         "}";
}

namespace {

bool IsValidFieldName(const std::string& name) {
  if (name.empty()) return false;
  for (char c : name) {
    const bool ok = (c >= 'a' && c <= 'z') || (c >= '0' && c <= '9') ||
                    c == '_';
    if (!ok) return false;
  }
  return true;
}

Status ValidateDataType(const DataType& dt, const std::string& side) {
  if (dt.nonrec_fields.empty() && dt.rec_fields.empty()) {
    return Status::InvalidArgument(side + ": data type has no fields");
  }
  for (const auto& f : dt.nonrec_fields) {
    if (!f.name.empty() && !IsValidFieldName(f.name)) {
      return Status::InvalidArgument(side + ": bad field name '" + f.name +
                                     "'");
    }
    if (f.shape.dims.empty()) {
      return Status::InvalidArgument(side + ": rank-0 tensor not allowed");
    }
    for (int d : f.shape.dims) {
      if (d <= 0) {
        return Status::InvalidArgument(side +
                                       ": tensor dims must be positive");
      }
    }
  }
  std::unordered_set<std::string> seen;
  for (const auto& r : dt.rec_fields) {
    if (!IsValidFieldName(r)) {
      return Status::InvalidArgument(side + ": bad recursive field name '" +
                                     r + "'");
    }
    if (!seen.insert(r).second) {
      return Status::InvalidArgument(side + ": duplicate recursive field '" +
                                     r + "'");
    }
  }
  return Status::OK();
}

}  // namespace

Status Program::Validate() const {
  EASEML_RETURN_NOT_OK(ValidateDataType(input, "input"));
  EASEML_RETURN_NOT_OK(ValidateDataType(output, "output"));
  return Status::OK();
}

}  // namespace easeml::platform
