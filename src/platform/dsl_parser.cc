#include "platform/dsl_parser.h"

#include <cctype>

namespace easeml::platform {

namespace {

/// Minimal recursive-descent parser over the DSL text.
class Parser {
 public:
  explicit Parser(const std::string& text) : text_(text) {}

  Result<Program> ParseProgramAll() {
    Program prog;
    EASEML_RETURN_NOT_OK(Expect('{'));
    EASEML_RETURN_NOT_OK(ExpectWord("input"));
    EASEML_RETURN_NOT_OK(Expect(':'));
    EASEML_ASSIGN_OR_RETURN(prog.input, ParseDataTypeInner());
    EASEML_RETURN_NOT_OK(Expect(','));
    EASEML_RETURN_NOT_OK(ExpectWord("output"));
    EASEML_RETURN_NOT_OK(Expect(':'));
    EASEML_ASSIGN_OR_RETURN(prog.output, ParseDataTypeInner());
    EASEML_RETURN_NOT_OK(Expect('}'));
    EASEML_RETURN_NOT_OK(ExpectEnd());
    EASEML_RETURN_NOT_OK(prog.Validate());
    return prog;
  }

  Result<DataType> ParseDataTypeAll() {
    EASEML_ASSIGN_OR_RETURN(DataType dt, ParseDataTypeInner());
    EASEML_RETURN_NOT_OK(ExpectEnd());
    return dt;
  }

 private:
  Result<DataType> ParseDataTypeInner() {
    DataType dt;
    EASEML_RETURN_NOT_OK(Expect('{'));
    EASEML_RETURN_NOT_OK(Expect('['));
    if (!Peek(']')) {
      while (true) {
        EASEML_ASSIGN_OR_RETURN(NonRecField f, ParseNonRecField());
        dt.nonrec_fields.push_back(std::move(f));
        if (!TryConsume(',')) break;
      }
    }
    EASEML_RETURN_NOT_OK(Expect(']'));
    EASEML_RETURN_NOT_OK(Expect(','));
    EASEML_RETURN_NOT_OK(Expect('['));
    if (!Peek(']')) {
      while (true) {
        EASEML_ASSIGN_OR_RETURN(std::string name, ParseFieldName());
        dt.rec_fields.push_back(std::move(name));
        if (!TryConsume(',')) break;
      }
    }
    EASEML_RETURN_NOT_OK(Expect(']'));
    EASEML_RETURN_NOT_OK(Expect('}'));
    return dt;
  }

  Result<NonRecField> ParseNonRecField() {
    NonRecField field;
    SkipSpace();
    // Lookahead: "Tensor[" is an anonymous tensor; otherwise a field name
    // followed by '::'.
    if (!WordAhead("Tensor")) {
      EASEML_ASSIGN_OR_RETURN(field.name, ParseFieldName());
      EASEML_RETURN_NOT_OK(Expect(':'));
      EASEML_RETURN_NOT_OK(Expect(':'));
    }
    EASEML_ASSIGN_OR_RETURN(field.shape, ParseTensor());
    return field;
  }

  Result<TensorShape> ParseTensor() {
    EASEML_RETURN_NOT_OK(ExpectWord("Tensor"));
    EASEML_RETURN_NOT_OK(Expect('['));
    TensorShape shape;
    while (true) {
      EASEML_ASSIGN_OR_RETURN(int d, ParseInt());
      shape.dims.push_back(d);
      if (!TryConsume(',')) break;
    }
    EASEML_RETURN_NOT_OK(Expect(']'));
    return shape;
  }

  Result<std::string> ParseFieldName() {
    SkipSpace();
    std::string name;
    while (pos_ < text_.size()) {
      const char c = text_[pos_];
      if ((c >= 'a' && c <= 'z') || (c >= '0' && c <= '9') || c == '_') {
        name += c;
        ++pos_;
      } else {
        break;
      }
    }
    if (name.empty()) {
      return Status::InvalidArgument(Where("expected field name"));
    }
    return name;
  }

  Result<int> ParseInt() {
    SkipSpace();
    size_t start = pos_;
    while (pos_ < text_.size() && std::isdigit(text_[pos_])) ++pos_;
    if (pos_ == start) {
      return Status::InvalidArgument(Where("expected integer"));
    }
    long long v = 0;
    for (size_t i = start; i < pos_; ++i) {
      v = v * 10 + (text_[i] - '0');
      if (v > 1'000'000'000LL) {
        return Status::InvalidArgument(Where("integer too large"));
      }
    }
    return static_cast<int>(v);
  }

  void SkipSpace() {
    while (pos_ < text_.size() && std::isspace(text_[pos_])) ++pos_;
  }

  bool Peek(char c) {
    SkipSpace();
    return pos_ < text_.size() && text_[pos_] == c;
  }

  bool TryConsume(char c) {
    if (Peek(c)) {
      ++pos_;
      return true;
    }
    return false;
  }

  Status Expect(char c) {
    if (TryConsume(c)) return Status::OK();
    return Status::InvalidArgument(
        Where(std::string("expected '") + c + "'"));
  }

  bool WordAhead(const std::string& word) {
    SkipSpace();
    if (text_.compare(pos_, word.size(), word) != 0) return false;
    const size_t after = pos_ + word.size();
    // Must not run into a longer identifier.
    if (after < text_.size()) {
      const char c = text_[after];
      if (std::isalnum(c) || c == '_') return false;
    }
    return true;
  }

  Status ExpectWord(const std::string& word) {
    if (!WordAhead(word)) {
      return Status::InvalidArgument(Where("expected '" + word + "'"));
    }
    pos_ += word.size();
    return Status::OK();
  }

  Status ExpectEnd() {
    SkipSpace();
    if (pos_ != text_.size()) {
      return Status::InvalidArgument(Where("trailing characters"));
    }
    return Status::OK();
  }

  std::string Where(const std::string& what) const {
    return "parse error at offset " + std::to_string(pos_) + ": " + what;
  }

  const std::string& text_;
  size_t pos_ = 0;
};

}  // namespace

Result<Program> ParseProgram(const std::string& text) {
  Parser parser(text);
  return parser.ParseProgramAll();
}

Result<DataType> ParseDataType(const std::string& text) {
  Parser parser(text);
  return parser.ParseDataTypeAll();
}

}  // namespace easeml::platform
