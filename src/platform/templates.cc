#include "platform/templates.h"

namespace easeml::platform {

std::string WorkloadTypeName(WorkloadType type) {
  switch (type) {
    case WorkloadType::kImageClassification:
      return "image/tensor classification";
    case WorkloadType::kImageRecovery:
      return "image/tensor recovery";
    case WorkloadType::kTimeSeriesClassification:
      return "time series classification";
    case WorkloadType::kTimeSeriesTranslation:
      return "time series translation";
    case WorkloadType::kTreeClassification:
      return "tree classification";
    case WorkloadType::kGeneralClassification:
      return "general classification";
    case WorkloadType::kGeneralAutoEncoder:
      return "general auto-encoder";
  }
  return "unknown";
}

bool SidePattern::Matches(const DataType& dt) const {
  const size_t required = tensor_ranks.size();
  if (tensor_tail_wildcard) {
    if (dt.nonrec_fields.size() < required) return false;
  } else {
    if (dt.nonrec_fields.size() != required) return false;
  }
  for (size_t i = 0; i < required; ++i) {
    if (dt.nonrec_fields[i].shape.rank() != tensor_ranks[i]) return false;
  }
  if (!rec_wildcard &&
      static_cast<int>(dt.rec_fields.size()) != rec_count) {
    return false;
  }
  return true;
}

const std::vector<ModelTemplate>& BuiltinTemplates() {
  // The Figure-4 table, top (most specific) to bottom (most general).
  static const auto* kTemplates = new std::vector<ModelTemplate>{
      // Input {[Tensor[A,B,C]], []} -> Output {[Tensor[D]], []}.
      {{{3}, false, 0, false},
       {{1}, false, 0, false},
       WorkloadType::kImageClassification,
       {"AlexNet", "ResNet-50", "ResNet-18", "GoogLeNet", "SqueezeNet",
        "VGG-16", "NIN", "BN-AlexNet"}},
      // Input {[Tensor[A,B,C]], []} -> Output {[Tensor[D,E,F]], []}.
      {{{3}, false, 0, false},
       {{3}, false, 0, false},
       WorkloadType::kImageRecovery,
       {"Auto-encoder", "GAN", "pix2pix"}},
      // Input {[Tensor[A], *], [a]} -> Output {[Tensor[D]], []}.
      {{{1}, true, 1, false},
       {{1}, false, 0, false},
       WorkloadType::kTimeSeriesClassification,
       {"RNN", "LSTM", "bi-LSTM", "GRU"}},
      // Input {[Tensor[A], *], [a]} -> Output {[Tensor[B], *], [b]}.
      {{{1}, true, 1, false},
       {{1}, true, 1, false},
       WorkloadType::kTimeSeriesTranslation,
       {"seq2seq"}},
      // Input {[Tensor[A], *], [a, c]} -> Output {[Tensor[B]], []}.
      {{{1}, true, 2, false},
       {{1}, false, 0, false},
       WorkloadType::kTreeClassification,
       {"Tree-RNN", "Tree-kernel-SVM"}},
      // Input {[*], [*]} -> Output {[Tensor[B]], []}.
      {{{}, true, 0, true},
       {{1}, false, 0, false},
       WorkloadType::kGeneralClassification,
       {"Bit-level-RNN"}},
      // Input {[*], [*]} -> Output {[*], [*]}.
      {{{}, true, 0, true},
       {{}, true, 0, true},
       WorkloadType::kGeneralAutoEncoder,
       {"Bit-level-Auto-encoder"}},
  };
  return *kTemplates;
}

Result<TemplateMatch> MatchTemplates(const Program& program) {
  EASEML_RETURN_NOT_OK(program.Validate());
  for (const auto& t : BuiltinTemplates()) {
    if (t.input.Matches(program.input) && t.output.Matches(program.output)) {
      return TemplateMatch{t.workload, t.candidate_models};
    }
  }
  return Status::NotFound("no template matches program " +
                          program.ToString());
}

}  // namespace easeml::platform
