#include "platform/training_executor.h"

#include <algorithm>
#include <cmath>

namespace easeml::platform {

Result<TrainingOutcome> SimulatedTrainingExecutor::Train(
    const ModelInfo& model, const CandidateModel& candidate,
    const TaskProfile& task) {
  if (task.difficulty < 0.0 || task.difficulty > 1.0) {
    return Status::InvalidArgument("Train: difficulty out of [0,1]");
  }
  if (task.num_examples <= 0.0) {
    return Status::InvalidArgument("Train: need positive example count");
  }
  if (task.dynamic_range < 1.0) {
    return Status::InvalidArgument("Train: dynamic range must be >= 1");
  }
  if (candidate.base_model != model.name) {
    return Status::InvalidArgument(
        "Train: candidate/model name mismatch: " + candidate.DisplayName() +
        " vs " + model.name);
  }

  // Saturating benefit of supervision volume.
  const double data_factor =
      task.num_examples / (task.num_examples + options_.examples_half_life);

  // Dynamic-range handling. The ideal normalization strength shrinks as the
  // range grows; raw wide-range inputs lose a large constant chunk.
  const double log_range = std::log10(std::max(1.0, task.dynamic_range));
  double range_penalty = 0.0;
  if (log_range > 2.0) {  // wider than image-like data
    if (!candidate.has_normalization) {
      range_penalty = options_.range_penalty * (1.0 - 2.0 / log_range);
    } else {
      const double k_opt = std::clamp(2.0 / log_range, 0.1, 1.0);
      range_penalty = 0.15 * std::fabs(candidate.normalization_k - k_opt);
    }
  }

  const double base =
      task.difficulty * data_factor + model.quality_offset - range_penalty;

  // Learning-rate grid search: keep the best of `lr_grid_size` noisy runs.
  double best = 0.0;
  for (int g = 0; g < options_.lr_grid_size; ++g) {
    const double run =
        base + rng_.Normal(0.0, options_.lr_luck_stddev);
    best = std::max(best, std::clamp(run, 0.0, 1.0));
  }

  TrainingOutcome outcome;
  outcome.accuracy = best;
  outcome.duration = model.relative_cost *
                     static_cast<double>(options_.lr_grid_size) *
                     static_cast<double>(options_.epochs_per_setting) *
                     (task.num_examples / 1000.0);
  clock_ += outcome.duration;
  return outcome;
}

}  // namespace easeml::platform
