#include "platform/normalization.h"

#include <algorithm>
#include <cmath>
#include <sstream>

namespace easeml::platform {

Result<NormalizationFunction> NormalizationFunction::Create(double k) {
  if (!(k > 0.0)) {
    return Status::InvalidArgument("NormalizationFunction: k must be > 0");
  }
  return NormalizationFunction(k);
}

double NormalizationFunction::Apply(double x) const {
  x = std::clamp(x, 0.0, 1.0);
  const double xk = std::pow(x, k_);
  return -xk * xk + xk;  // -x^{2k} + x^k
}

double NormalizationFunction::PeakLocation() const {
  return std::pow(0.5, 1.0 / k_);
}

std::vector<double> NormalizationFunction::NormalizeVector(
    const std::vector<double>& values) const {
  if (values.empty()) return {};
  const auto [mn, mx] = std::minmax_element(values.begin(), values.end());
  const double lo = *mn;
  const double range = *mx - lo;
  std::vector<double> out(values.size());
  for (size_t i = 0; i < values.size(); ++i) {
    const double x = range > 0.0 ? (values[i] - lo) / range : 0.0;
    out[i] = ApplyScaled(x);
  }
  return out;
}

std::string NormalizationFunction::ToString() const {
  std::ostringstream os;
  os << "norm(k=" << k_ << ")";
  return os.str();
}

const std::vector<double>& DefaultNormalizationGrid() {
  static const auto* kGrid = new std::vector<double>{0.2, 0.4, 0.6, 0.8};
  return *kGrid;
}

std::string CandidateModel::DisplayName() const {
  if (!has_normalization) return base_model;
  std::ostringstream os;
  os << base_model << "@norm(k=" << normalization_k << ")";
  return os.str();
}

std::vector<CandidateModel> ExpandWithNormalization(
    const std::vector<std::string>& base_models,
    const std::vector<double>& k_grid) {
  std::vector<CandidateModel> out;
  out.reserve(base_models.size() * (k_grid.size() + 1));
  for (const auto& m : base_models) {
    out.push_back(CandidateModel{m, false, 0.0});
    for (double k : k_grid) {
      out.push_back(CandidateModel{m, true, k});
    }
  }
  return out;
}

}  // namespace easeml::platform
