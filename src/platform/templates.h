#ifndef EASEML_PLATFORM_TEMPLATES_H_
#define EASEML_PLATFORM_TEMPLATES_H_

#include <string>
#include <vector>

#include "common/status.h"
#include "platform/schema.h"

namespace easeml::platform {

/// Workload categories of the template table (Figure 4).
enum class WorkloadType {
  kImageClassification,
  kImageRecovery,
  kTimeSeriesClassification,
  kTimeSeriesTranslation,
  kTreeClassification,
  kGeneralClassification,
  kGeneralAutoEncoder,
};

std::string WorkloadTypeName(WorkloadType type);

/// One side (input or output) of a template pattern.
///
/// `tensor_ranks` lists the required ranks of the leading tensor fields
/// (dimension constants A, B, ... match any positive size). If
/// `tensor_tail_wildcard`, any further tensor fields are accepted ("*" in
/// Figure 4). `rec_count` is the required number of recursive fields, or
/// any number when `rec_wildcard`.
struct SidePattern {
  std::vector<int> tensor_ranks;
  bool tensor_tail_wildcard = false;
  int rec_count = 0;
  bool rec_wildcard = false;

  /// True iff `dt` matches this side.
  bool Matches(const DataType& dt) const;
};

/// A row of the Figure-4 table: input pattern, output pattern, workload
/// type, and the consistent candidate model names.
struct ModelTemplate {
  SidePattern input;
  SidePattern output;
  WorkloadType workload;
  std::vector<std::string> candidate_models;
};

/// The built-in template table, ordered from most to least specific
/// ("matching order goes from top to bottom").
const std::vector<ModelTemplate>& BuiltinTemplates();

/// Result of matching a program against the table.
struct TemplateMatch {
  WorkloadType workload;
  std::vector<std::string> candidate_models;
};

/// Matches `program` against the built-in templates, returning the first
/// (most specific) hit. Fails with NotFound if nothing matches — which
/// cannot happen for valid programs, as the last two rows are fully
/// general; the error is reachable only for programs with no fields.
Result<TemplateMatch> MatchTemplates(const Program& program);

}  // namespace easeml::platform

#endif  // EASEML_PLATFORM_TEMPLATES_H_
