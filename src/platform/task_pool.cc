#include "platform/task_pool.h"

namespace easeml::platform {

Result<std::vector<int>> TaskPool::AddUserTasks(
    int user_id, const std::vector<CandidateModel>& candidates) {
  if (candidates.empty()) {
    return Status::InvalidArgument("AddUserTasks: no candidates");
  }
  if (user_id < 0) {
    return Status::InvalidArgument("AddUserTasks: negative user id");
  }
  MutexLock lock(*mu_);
  std::vector<int> ids;
  ids.reserve(candidates.size());
  for (const auto& c : candidates) {
    Task t;
    t.task_id = static_cast<int>(tasks_.size());
    t.user_id = user_id;
    t.candidate = c;
    ids.push_back(t.task_id);
    tasks_.push_back(std::move(t));
  }
  return ids;
}

int TaskPool::num_tasks() const {
  MutexLock lock(*mu_);
  return static_cast<int>(tasks_.size());
}

Status TaskPool::Validate(int task_id) const {
  if (task_id < 0 || task_id >= static_cast<int>(tasks_.size())) {
    return Status::OutOfRange("task id out of range: " +
                              std::to_string(task_id));
  }
  return Status::OK();
}

Result<Task> TaskPool::Get(int task_id) const {
  MutexLock lock(*mu_);
  EASEML_RETURN_NOT_OK(Validate(task_id));
  return tasks_[task_id];
}

Status TaskPool::MarkRunning(int task_id) {
  MutexLock lock(*mu_);
  EASEML_RETURN_NOT_OK(Validate(task_id));
  if (tasks_[task_id].state != TaskState::kPending) {
    return Status::FailedPrecondition("MarkRunning: task not pending");
  }
  tasks_[task_id].state = TaskState::kRunning;
  return Status::OK();
}

Status TaskPool::MarkDone(int task_id, double accuracy, double duration) {
  MutexLock lock(*mu_);
  EASEML_RETURN_NOT_OK(Validate(task_id));
  if (tasks_[task_id].state != TaskState::kRunning) {
    return Status::FailedPrecondition("MarkDone: task not running");
  }
  if (accuracy < 0.0 || accuracy > 1.0) {
    return Status::InvalidArgument("MarkDone: accuracy out of [0,1]");
  }
  if (duration < 0.0) {
    return Status::InvalidArgument("MarkDone: negative duration");
  }
  tasks_[task_id].state = TaskState::kDone;
  tasks_[task_id].accuracy = accuracy;
  tasks_[task_id].duration = duration;
  return Status::OK();
}

Status TaskPool::Requeue(int task_id) {
  MutexLock lock(*mu_);
  EASEML_RETURN_NOT_OK(Validate(task_id));
  if (tasks_[task_id].state != TaskState::kRunning) {
    return Status::FailedPrecondition("Requeue: task not running");
  }
  tasks_[task_id].state = TaskState::kPending;
  return Status::OK();
}

std::vector<Task> TaskPool::PendingForUser(int user_id) const {
  MutexLock lock(*mu_);
  std::vector<Task> out;
  for (const auto& t : tasks_) {
    if (t.user_id == user_id && t.state == TaskState::kPending) {
      out.push_back(t);
    }
  }
  return out;
}

std::vector<Task> TaskPool::TasksForUser(int user_id) const {
  MutexLock lock(*mu_);
  std::vector<Task> out;
  for (const auto& t : tasks_) {
    if (t.user_id == user_id) out.push_back(t);
  }
  return out;
}

Result<Task> TaskPool::BestForUser(int user_id) const {
  MutexLock lock(*mu_);
  const Task* best = nullptr;
  for (const auto& t : tasks_) {
    if (t.user_id != user_id || t.state != TaskState::kDone) continue;
    if (best == nullptr || t.accuracy > best->accuracy) best = &t;
  }
  if (best == nullptr) {
    return Status::NotFound("no finished task for user " +
                            std::to_string(user_id));
  }
  return *best;
}

int TaskPool::CountInState(TaskState state) const {
  MutexLock lock(*mu_);
  int count = 0;
  for (const auto& t : tasks_) {
    if (t.state == state) ++count;
  }
  return count;
}

}  // namespace easeml::platform
