#ifndef EASEML_PLATFORM_DSL_PARSER_H_
#define EASEML_PLATFORM_DSL_PARSER_H_

#include <string>

#include "common/status.h"
#include "platform/schema.h"

namespace easeml::platform {

/// Parses an ease.ml program in the compact system syntax of Figure 2/3:
///
///   {input:  {[Tensor[256,256,3]], []},
///    output: {[Tensor[1000]], []}}
///
///   {input:  {[img :: Tensor[10]], [next]},
///    output: {[Tensor[10]], [next]}}
///
/// Grammar (whitespace-insensitive):
///   prog         ::= '{' 'input' ':' data_type ',' 'output' ':' data_type '}'
///   data_type    ::= '{' '[' nonrec_list? ']' ',' '[' rec_list? ']' '}'
///   nonrec_field ::= tensor | field_name '::' tensor
///   tensor       ::= 'Tensor' '[' int (',' int)* ']'
///   rec_list     ::= field_name (',' field_name)*
///   field_name   ::= [a-z0-9_]+
///
/// Returns InvalidArgument with a position-annotated message on any
/// syntactic or structural error.
Result<Program> ParseProgram(const std::string& text);

/// Parses a single data type, e.g. "{[Tensor[10]], [next]}".
Result<DataType> ParseDataType(const std::string& text);

}  // namespace easeml::platform

#endif  // EASEML_PLATFORM_DSL_PARSER_H_
