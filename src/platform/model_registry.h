#ifndef EASEML_PLATFORM_MODEL_REGISTRY_H_
#define EASEML_PLATFORM_MODEL_REGISTRY_H_

#include <string>
#include <vector>

#include "common/status.h"
#include "platform/templates.h"

namespace easeml::platform {

/// Static metadata of a registered model architecture.
struct ModelInfo {
  std::string name;
  WorkloadType workload;
  int citations_2017;     // approximate Google-Scholar count
  int publication_year;
  double relative_cost;   // typical training cost, AlexNet == 1
  double quality_offset;  // typical accuracy delta vs. a task baseline
};

/// Registry of every model the template table can produce, with the
/// metadata the MOSTCITED / MOSTRECENT heuristics and the simulated
/// training executor consume.
class ModelRegistry {
 public:
  /// Registry pre-populated with all Figure-4 models.
  static const ModelRegistry& Builtin();

  /// An empty registry (for tests and custom deployments).
  ModelRegistry() = default;

  /// Adds a model; fails with AlreadyExists on duplicate names.
  Status Register(ModelInfo info);

  /// Looks up a model by exact name.
  Result<ModelInfo> Find(const std::string& name) const;

  /// All models consistent with a workload type.
  std::vector<ModelInfo> ForWorkload(WorkloadType workload) const;

  int size() const { return static_cast<int>(models_.size()); }
  const std::vector<ModelInfo>& models() const { return models_; }

 private:
  std::vector<ModelInfo> models_;
};

}  // namespace easeml::platform

#endif  // EASEML_PLATFORM_MODEL_REGISTRY_H_
