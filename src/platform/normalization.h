#ifndef EASEML_PLATFORM_NORMALIZATION_H_
#define EASEML_PLATFORM_NORMALIZATION_H_

#include <string>
#include <vector>

#include "common/status.h"

namespace easeml::platform {

/// Automatic input normalization (Figure 5): the family
///   f_k(x) = -x^{2k} + x^k,   k > 0, x in [0, 1],
/// compresses large dynamic ranges (astrophysics/proteomics inputs whose
/// values span ten orders of magnitude) into an image-like range. Each k
/// yields one additional candidate model.
class NormalizationFunction {
 public:
  /// Precondition-checked factory: k must be positive.
  static Result<NormalizationFunction> Create(double k);

  double k() const { return k_; }

  /// Raw family value f_k(x) = -x^{2k} + x^k. Input is clamped to [0, 1].
  double Apply(double x) const;

  /// f_k scaled so its peak maps to 1 (the figure's normalized value axis);
  /// the peak of f_k is 1/4 at x = (1/2)^{1/k}.
  double ApplyScaled(double x) const { return 4.0 * Apply(x); }

  /// Location of the maximum, x* = (1/2)^{1/k}.
  double PeakLocation() const;

  /// Applies `ApplyScaled` elementwise after min-max rescaling `values`
  /// into [0, 1] (identity rescaling when all values are equal).
  std::vector<double> NormalizeVector(const std::vector<double>& values) const;

  std::string ToString() const;  // "norm(k=0.2)"

 private:
  explicit NormalizationFunction(double k) : k_(k) {}
  double k_;
};

/// The default k grid of Figure 5.
const std::vector<double>& DefaultNormalizationGrid();  // {0.2,0.4,0.6,0.8}

/// A candidate produced by candidate-model generation: a base model name
/// plus an optional normalization preprocessing step.
struct CandidateModel {
  std::string base_model;
  bool has_normalization = false;
  double normalization_k = 0.0;

  /// "ResNet-50" or "ResNet-50@norm(k=0.2)".
  std::string DisplayName() const;
};

/// Expands base models with the normalization grid: for image-shaped
/// workloads every (model, k) pair is one extra candidate, plus the
/// un-normalized original (Section 2.1, "each normalization function ...
/// together with a consistent model, generates one candidate model").
std::vector<CandidateModel> ExpandWithNormalization(
    const std::vector<std::string>& base_models,
    const std::vector<double>& k_grid = DefaultNormalizationGrid());

}  // namespace easeml::platform

#endif  // EASEML_PLATFORM_NORMALIZATION_H_
