#ifndef EASEML_PLATFORM_ASYNC_EXECUTOR_H_
#define EASEML_PLATFORM_ASYNC_EXECUTOR_H_

#include <cstdint>
#include <deque>
#include <memory>
#include <optional>
#include <thread>
#include <vector>

#include "common/status.h"
#include "common/thread_annotations.h"
#include "platform/model_registry.h"
#include "platform/normalization.h"
#include "platform/training_executor.h"

namespace easeml::platform {

/// One training request handed to the worker pool. `job_id` is the caller's
/// correlation key (the selector's assignment ticket, a task-pool id, ...);
/// the executor never interprets it beyond echoing it in the completion.
struct AsyncTrainingJob {
  int64_t job_id = -1;
  ModelInfo model;
  CandidateModel candidate;
  TaskProfile profile;
};

/// Outcome of one asynchronous training run. Completions surface in the
/// order runs FINISH, not the order jobs were submitted.
struct AsyncTrainingCompletion {
  int64_t job_id = -1;
  int worker = -1;       // index of the worker that ran the job
  Status status;         // per-job Train() error, propagated not fatal
  TrainingOutcome outcome;  // valid iff status.ok()
};

/// A worker-thread pool over `SimulatedTrainingExecutor` — the concurrent
/// training substrate behind the multi-device selection pipeline.
///
/// `num_workers` threads pull jobs from a shared FIFO queue, run
/// `SimulatedTrainingExecutor::Train`, and push results onto a completion
/// queue the caller drains with `WaitCompletion`/`TryNextCompletion`.
/// Each worker owns a private executor seeded `options.executor.seed +
/// worker index`, so no training state is shared across threads; with ONE
/// worker the pool consumes exactly the sequential executor's RNG stream
/// in submission order, making the D=1 async pipeline bit-identical to the
/// sequential path.
///
/// `seconds_per_cost_unit` optionally dilates each run by its simulated
/// duration in real time (sleeping, not spinning), which turns the pool
/// into a faithful wall-clock model of D devices: makespan ~ total
/// simulated cost / D. Leave it 0 for as-fast-as-possible draining.
///
/// Thread-safety: all public methods may be called from any thread.
/// `Shutdown()` (also run by the destructor) drains every queued job, then
/// joins the workers; `Submit` fails afterwards.
class AsyncTrainingExecutor {
 public:
  struct Options {
    int num_workers = 2;
    SimulatedTrainingExecutor::Options executor;
    double seconds_per_cost_unit = 0.0;
  };

  /// Validates options and starts the worker threads.
  static Result<std::unique_ptr<AsyncTrainingExecutor>> Create(
      const Options& options);

  ~AsyncTrainingExecutor();

  AsyncTrainingExecutor(const AsyncTrainingExecutor&) = delete;
  AsyncTrainingExecutor& operator=(const AsyncTrainingExecutor&) = delete;

  /// Enqueues a job; fails with FailedPrecondition after Shutdown.
  Status Submit(AsyncTrainingJob job) EASEML_EXCLUDES(mu_);

  /// Non-blocking: next finished completion, or nullopt if none is ready.
  std::optional<AsyncTrainingCompletion> TryNextCompletion()
      EASEML_EXCLUDES(mu_);

  /// Blocks until a completion is available and returns it. Fails with
  /// FailedPrecondition when nothing is outstanding (every submitted job's
  /// completion was already consumed) — the caller's drain loop is done.
  Result<AsyncTrainingCompletion> WaitCompletion() EASEML_EXCLUDES(mu_);

  /// Jobs submitted whose completions have not been consumed yet.
  int outstanding() const EASEML_EXCLUDES(mu_);

  /// Configured worker count (immutable after Create).
  int num_workers() const { return options_.num_workers; }

  /// Total simulated GPU time of all finished runs (sum over workers).
  double SimulatedBusyTime() const EASEML_EXCLUDES(mu_);

  /// Largest per-worker simulated clock — the event-driven makespan proxy
  /// for a perfectly balanced D-device cluster.
  double SimulatedMakespan() const EASEML_EXCLUDES(mu_);

  /// Stops accepting jobs, drains the queue, joins all workers. Idempotent.
  /// Completions produced while draining remain consumable.
  void Shutdown() EASEML_EXCLUDES(mu_);

 private:
  explicit AsyncTrainingExecutor(const Options& options);
  void WorkerLoop(int worker_index) EASEML_EXCLUDES(mu_);

  /// Pops the front completion and decrements `outstanding_`.
  /// Precondition: `completions_` is non-empty. Returns true when the pool
  /// just drained (outstanding hit 0) — the caller must NotifyAll blocked
  /// WaitCompletion callers AFTER releasing `mu_` so they can fail fast
  /// instead of waiting for a completion that will never come.
  bool ConsumeFront(AsyncTrainingCompletion& out) EASEML_REQUIRES(mu_);

  Options options_;

  mutable Mutex mu_;
  CondVar job_ready_;         // signals workers
  CondVar completion_ready_;  // signals consumers
  std::deque<AsyncTrainingJob> jobs_ EASEML_GUARDED_BY(mu_);
  std::deque<AsyncTrainingCompletion> completions_ EASEML_GUARDED_BY(mu_);
  /// Simulated seconds per worker.
  std::vector<double> worker_clock_ EASEML_GUARDED_BY(mu_);
  int outstanding_ EASEML_GUARDED_BY(mu_) = 0;
  bool shutdown_ EASEML_GUARDED_BY(mu_) = false;

  /// Started under `mu_` in Create (a worker's first act is to lock `mu_`,
  /// so the handles are published before any worker runs); claimed by the
  /// one winning Shutdown caller, which joins outside the lock.
  std::vector<std::thread> workers_ EASEML_GUARDED_BY(mu_);
};

}  // namespace easeml::platform

#endif  // EASEML_PLATFORM_ASYNC_EXECUTOR_H_
