#include "platform/service.h"

#include <algorithm>
#include <map>
#include <memory>
#include <utility>

#include "common/clock.h"
#include "platform/templates.h"
#include "shard/sharded_selector.h"

namespace easeml::platform {

Result<EaseMlService> EaseMlService::Create(const Options& options) {
  if (options.noisy_label_fraction < 0.0 ||
      options.noisy_label_fraction > 1.0) {
    return Status::InvalidArgument(
        "EaseMlService: noisy_label_fraction out of [0,1]");
  }
  // `shard::MakeSelector` honors selector.num_shards: the sequential
  // engine at 1, the shard-parallel engine above — same ticketed protocol,
  // bit-identical selection traces.
  EASEML_ASSIGN_OR_RETURN(std::unique_ptr<core::MultiTenantSelector> selector,
                          shard::MakeSelector(options.selector));
  return EaseMlService(options, std::move(selector));
}

Result<EaseMlService> EaseMlService::CreateWithSelector(
    const Options& options,
    std::unique_ptr<core::MultiTenantSelector> selector) {
  if (options.noisy_label_fraction < 0.0 ||
      options.noisy_label_fraction > 1.0) {
    return Status::InvalidArgument(
        "EaseMlService: noisy_label_fraction out of [0,1]");
  }
  if (selector == nullptr) {
    return Status::InvalidArgument("CreateWithSelector: null selector");
  }
  return EaseMlService(options, std::move(selector));
}

Result<int> EaseMlService::SubmitJob(const std::string& program_text,
                                     double dynamic_range) {
  if (dynamic_range < 1.0) {
    return Status::InvalidArgument("SubmitJob: dynamic range must be >= 1");
  }
  MutexLock lock(*mu_);
  JobInfo job;
  EASEML_ASSIGN_OR_RETURN(job.program, ParseProgram(program_text));
  EASEML_ASSIGN_OR_RETURN(TemplateMatch match, MatchTemplates(job.program));
  job.workload = match.workload;
  job.dynamic_range = dynamic_range;
  // Hidden task difficulty: what the best model could reach with unlimited
  // data. Unknown to the scheduler, only to the simulated world.
  job.difficulty = rng_.Uniform(0.6, 0.95);

  // Candidate generation: wide-dynamic-range inputs get one extra candidate
  // per normalization function (Section 2.1 / Figure 5).
  if (dynamic_range > 100.0) {
    job.candidates = ExpandWithNormalization(match.candidate_models);
  } else {
    for (const auto& m : match.candidate_models) {
      job.candidates.push_back(CandidateModel{m, false, 0.0});
    }
  }

  const int job_id = static_cast<int>(jobs_.size());
  EASEML_ASSIGN_OR_RETURN(job.task_ids,
                          pool_.AddUserTasks(job_id, job.candidates));

  // Per-candidate costs from the registry metadata.
  std::vector<double> costs;
  costs.reserve(job.candidates.size());
  for (const auto& c : job.candidates) {
    EASEML_ASSIGN_OR_RETURN(ModelInfo info,
                            ModelRegistry::Builtin().Find(c.base_model));
    costs.push_back(info.relative_cost);
  }
  EASEML_ASSIGN_OR_RETURN(
      int tenant, selector_->AddTenantWithDefaultPrior(
                      static_cast<int>(job.candidates.size()), costs));
  if (tenant != job_id) {
    return Status::Internal("SubmitJob: tenant/job id mismatch");
  }
  jobs_.push_back(std::move(job));
  return job_id;
}

int EaseMlService::num_jobs() const {
  MutexLock lock(*mu_);
  return static_cast<int>(jobs_.size());
}

Status EaseMlService::ValidateJob(int job) const {
  if (job < 0 || job >= static_cast<int>(jobs_.size())) {
    return Status::OutOfRange("job id out of range: " + std::to_string(job));
  }
  return Status::OK();
}

Status EaseMlService::Feed(int job, int count) {
  MutexLock lock(*mu_);
  EASEML_RETURN_NOT_OK(ValidateJob(job));
  if (count <= 0) {
    return Status::InvalidArgument("Feed: count must be positive");
  }
  auto& examples = jobs_[job].examples;
  for (int i = 0; i < count; ++i) {
    Example e;
    e.index = static_cast<int>(examples.size());
    e.enabled = true;
    e.noisy = rng_.Bernoulli(options_.noisy_label_fraction);
    examples.push_back(e);
  }
  return Status::OK();
}

Result<std::vector<Example>> EaseMlService::ListExamples(int job) const {
  MutexLock lock(*mu_);
  EASEML_RETURN_NOT_OK(ValidateJob(job));
  return jobs_[job].examples;
}

Status EaseMlService::Refine(int job, int example_index, bool enabled) {
  MutexLock lock(*mu_);
  EASEML_RETURN_NOT_OK(ValidateJob(job));
  auto& examples = jobs_[job].examples;
  if (example_index < 0 ||
      example_index >= static_cast<int>(examples.size())) {
    return Status::OutOfRange("Refine: example index out of range");
  }
  examples[example_index].enabled = enabled;
  return Status::OK();
}

double EaseMlService::EffectiveExamples(const JobInfo& job) const {
  double effective = 0.0;
  for (const auto& e : job.examples) {
    if (!e.enabled) continue;
    effective += e.noisy ? 0.3 : 1.0;  // noisy labels teach less
  }
  return effective;
}

Result<InferReport> EaseMlService::Infer(int job) const {
  MutexLock lock(*mu_);
  EASEML_RETURN_NOT_OK(ValidateJob(job));
  EASEML_ASSIGN_OR_RETURN(Task best, pool_.BestForUser(job));
  InferReport report;
  report.model_name = best.candidate.DisplayName();
  report.accuracy = best.accuracy;
  EASEML_ASSIGN_OR_RETURN(report.rounds_served, selector_->RoundsServed(job));
  return report;
}

Result<AsyncTrainingJob> EaseMlService::MakeTrainingJob(
    const core::MultiTenantSelector::Assignment& assignment) const {
  const JobInfo& job = jobs_[assignment.tenant];
  AsyncTrainingJob spec;
  spec.job_id = assignment.id;
  spec.candidate = job.candidates[assignment.model];
  EASEML_ASSIGN_OR_RETURN(
      spec.model, ModelRegistry::Builtin().Find(spec.candidate.base_model));
  spec.profile.difficulty = job.difficulty;
  spec.profile.num_examples = std::max(1.0, EffectiveExamples(job));
  spec.profile.dynamic_range = job.dynamic_range;
  return spec;
}

Result<Task> EaseMlService::Step() {
  MutexLock lock(*mu_);
  return StepLocked();
}

Result<Task> EaseMlService::StepLocked() {
  EASEML_ASSIGN_OR_RETURN(core::MultiTenantSelector::Assignment assignment,
                          selector_->Next());
  EASEML_ASSIGN_OR_RETURN(AsyncTrainingJob spec, MakeTrainingJob(assignment));
  const int task_id = jobs_[assignment.tenant].task_ids[assignment.model];
  EASEML_RETURN_NOT_OK(pool_.MarkRunning(task_id));
  EASEML_ASSIGN_OR_RETURN(
      TrainingOutcome outcome,
      executor_.Train(spec.model, spec.candidate, spec.profile));
  EASEML_RETURN_NOT_OK(
      pool_.MarkDone(task_id, outcome.accuracy, outcome.duration));
  EASEML_RETURN_NOT_OK(selector_->Report(assignment, outcome.accuracy));
  return pool_.Get(task_id);
}

Result<AsyncRunReport> EaseMlService::RunAsync(int num_workers,
                                               double seconds_per_cost_unit) {
  MutexLock lock(*mu_);
  if (selector_->num_in_flight() > 0) {
    return Status::FailedPrecondition(
        "RunAsync: selector already has in-flight assignments");
  }
  AsyncTrainingExecutor::Options options;
  options.num_workers =
      num_workers > 0 ? num_workers : selector_->num_devices();
  options.executor = options_.executor;
  options.seconds_per_cost_unit = seconds_per_cost_unit;
  EASEML_ASSIGN_OR_RETURN(std::unique_ptr<AsyncTrainingExecutor> pool,
                          AsyncTrainingExecutor::Create(options));

  AsyncRunReport report;
  report.num_workers = options.num_workers;
  const double start = MonotonicSeconds();

  // Executor-utilization instruments (all null when unconfigured). The
  // dispatch loop is single-threaded, so the ticket->submit-time map needs
  // no lock; completions correlate through the selector ticket id.
  obs::Counter* exec_dispatched = nullptr;
  obs::Counter* exec_completed = nullptr;
  obs::Counter* exec_failed = nullptr;
  obs::Histogram* exec_job_wall_us = nullptr;
  obs::Histogram* exec_campaign_wall_us = nullptr;
  if (options_.metrics != nullptr) {
    exec_dispatched = options_.metrics->GetCounter("easeml_exec_dispatched");
    exec_completed = options_.metrics->GetCounter("easeml_exec_completed");
    exec_failed = options_.metrics->GetCounter("easeml_exec_failed");
    exec_job_wall_us =
        options_.metrics->GetHistogram("easeml_exec_job_wall_us");
    exec_campaign_wall_us =
        options_.metrics->GetHistogram("easeml_exec_campaign_wall_us");
  }
  std::map<int64_t, double> submit_time;

  // A per-job Train failure (bad profile, broken device) must not wedge
  // the service: the ticket is cancelled, the task requeued, dispatch
  // stops, the drain finishes, and the first error is returned with the
  // selector and task pool back in a consistent, re-runnable state.
  Status first_error;
  while (true) {
    // Fill every free device slot before blocking on a completion. The
    // selector's in-flight table is the one source of truth for what is
    // running; completions are correlated through its tickets.
    while (first_error.ok() && selector_->HasDispatchableWork()) {
      EASEML_ASSIGN_OR_RETURN(core::MultiTenantSelector::Assignment a,
                              selector_->Next());
      // Any dispatch failure after Next must unwind what already
      // happened (return the ticket, un-run the task) and then keep
      // DRAINING — an early return would abandon the other in-flight
      // tickets and wedge every future campaign.
      auto spec = MakeTrainingJob(a);
      if (!spec.ok()) {
        EASEML_RETURN_NOT_OK(selector_->Cancel(a));
        first_error = spec.status();
        break;
      }
      const int task_id = jobs_[a.tenant].task_ids[a.model];
      Status running = pool_.MarkRunning(task_id);
      if (!running.ok()) {
        EASEML_RETURN_NOT_OK(selector_->Cancel(a));
        first_error = running;
        break;
      }
      Status submitted = pool->Submit(std::move(*spec));
      if (!submitted.ok()) {
        EASEML_RETURN_NOT_OK(pool_.Requeue(task_id));
        EASEML_RETURN_NOT_OK(selector_->Cancel(a));
        first_error = submitted;
        break;
      }
      if (exec_dispatched != nullptr) {
        exec_dispatched->Increment();
        submit_time[a.id] = MonotonicSeconds();
      }
    }
    if (pool->outstanding() == 0) break;  // drained and nothing dispatchable

    EASEML_ASSIGN_OR_RETURN(AsyncTrainingCompletion done,
                            pool->WaitCompletion());
    EASEML_ASSIGN_OR_RETURN(core::MultiTenantSelector::Assignment a,
                            selector_->InFlightAssignment(done.job_id));
    const int task_id = jobs_[a.tenant].task_ids[a.model];
    if (exec_dispatched != nullptr) {
      const auto it = submit_time.find(a.id);
      if (it != submit_time.end()) {
        exec_job_wall_us->Record((MonotonicSeconds() - it->second) * 1e6);
        submit_time.erase(it);
      }
      (done.status.ok() ? exec_completed : exec_failed)->Increment();
    }
    if (!done.status.ok()) {
      EASEML_RETURN_NOT_OK(pool_.Requeue(task_id));
      EASEML_RETURN_NOT_OK(selector_->Cancel(a));
      if (first_error.ok()) first_error = done.status;
      continue;
    }
    // Report first: with a sharded selector the call returns right after
    // ticket validation (the belief fold is queued on the tenant's owning
    // shard worker), so the task-pool bookkeeping below overlaps the fold
    // instead of extending the completion's critical path.
    EASEML_RETURN_NOT_OK(selector_->Report(a, done.outcome.accuracy));
    EASEML_RETURN_NOT_OK(pool_.MarkDone(task_id, done.outcome.accuracy,
                                        done.outcome.duration));
    ++report.steps;
  }
  // The successful runs of a failed campaign were Reported and MarkDone'd,
  // so their simulated time counts toward ClusterTime() either way.
  report.simulated_busy_time = pool->SimulatedBusyTime();
  report.simulated_makespan = pool->SimulatedMakespan();
  async_cluster_time_ += report.simulated_busy_time;
  EASEML_RETURN_NOT_OK(first_error);

  report.wall_seconds = MonotonicSeconds() - start;
  if (exec_campaign_wall_us != nullptr) {
    exec_campaign_wall_us->Record(report.wall_seconds * 1e6);
  }
  pool->Shutdown();
  return report;
}

Result<int> EaseMlService::RunSteps(int n) {
  if (n < 0) return Status::InvalidArgument("RunSteps: negative count");
  MutexLock lock(*mu_);
  int taken = 0;
  for (int i = 0; i < n && !ExhaustedLocked(); ++i) {
    EASEML_ASSIGN_OR_RETURN(Task task, StepLocked());
    (void)task;
    ++taken;
  }
  return taken;
}

bool EaseMlService::Exhausted() const {
  MutexLock lock(*mu_);
  return ExhaustedLocked();
}

bool EaseMlService::ExhaustedLocked() const { return selector_->Exhausted(); }

double EaseMlService::ClusterTime() const {
  MutexLock lock(*mu_);
  return executor_.clock() + async_cluster_time_;
}

Result<std::vector<CandidateModel>> EaseMlService::Candidates(int job) const {
  MutexLock lock(*mu_);
  EASEML_RETURN_NOT_OK(ValidateJob(job));
  return jobs_[job].candidates;
}

}  // namespace easeml::platform
