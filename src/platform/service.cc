#include "platform/service.h"

#include <algorithm>

#include "platform/templates.h"

namespace easeml::platform {

Result<EaseMlService> EaseMlService::Create(const Options& options) {
  if (options.noisy_label_fraction < 0.0 ||
      options.noisy_label_fraction > 1.0) {
    return Status::InvalidArgument(
        "EaseMlService: noisy_label_fraction out of [0,1]");
  }
  EASEML_ASSIGN_OR_RETURN(core::MultiTenantSelector selector,
                          core::MultiTenantSelector::Create(options.selector));
  return EaseMlService(options, std::move(selector));
}

Result<int> EaseMlService::SubmitJob(const std::string& program_text,
                                     double dynamic_range) {
  if (dynamic_range < 1.0) {
    return Status::InvalidArgument("SubmitJob: dynamic range must be >= 1");
  }
  JobInfo job;
  EASEML_ASSIGN_OR_RETURN(job.program, ParseProgram(program_text));
  EASEML_ASSIGN_OR_RETURN(TemplateMatch match, MatchTemplates(job.program));
  job.workload = match.workload;
  job.dynamic_range = dynamic_range;
  // Hidden task difficulty: what the best model could reach with unlimited
  // data. Unknown to the scheduler, only to the simulated world.
  job.difficulty = rng_.Uniform(0.6, 0.95);

  // Candidate generation: wide-dynamic-range inputs get one extra candidate
  // per normalization function (Section 2.1 / Figure 5).
  if (dynamic_range > 100.0) {
    job.candidates = ExpandWithNormalization(match.candidate_models);
  } else {
    for (const auto& m : match.candidate_models) {
      job.candidates.push_back(CandidateModel{m, false, 0.0});
    }
  }

  const int job_id = num_jobs();
  EASEML_ASSIGN_OR_RETURN(job.task_ids,
                          pool_.AddUserTasks(job_id, job.candidates));

  // Per-candidate costs from the registry metadata.
  std::vector<double> costs;
  costs.reserve(job.candidates.size());
  for (const auto& c : job.candidates) {
    EASEML_ASSIGN_OR_RETURN(ModelInfo info,
                            ModelRegistry::Builtin().Find(c.base_model));
    costs.push_back(info.relative_cost);
  }
  EASEML_ASSIGN_OR_RETURN(
      int tenant, selector_.AddTenantWithDefaultPrior(
                      static_cast<int>(job.candidates.size()), costs));
  if (tenant != job_id) {
    return Status::Internal("SubmitJob: tenant/job id mismatch");
  }
  jobs_.push_back(std::move(job));
  return job_id;
}

Status EaseMlService::ValidateJob(int job) const {
  if (job < 0 || job >= num_jobs()) {
    return Status::OutOfRange("job id out of range: " + std::to_string(job));
  }
  return Status::OK();
}

Status EaseMlService::Feed(int job, int count) {
  EASEML_RETURN_NOT_OK(ValidateJob(job));
  if (count <= 0) {
    return Status::InvalidArgument("Feed: count must be positive");
  }
  auto& examples = jobs_[job].examples;
  for (int i = 0; i < count; ++i) {
    Example e;
    e.index = static_cast<int>(examples.size());
    e.enabled = true;
    e.noisy = rng_.Bernoulli(options_.noisy_label_fraction);
    examples.push_back(e);
  }
  return Status::OK();
}

Result<std::vector<Example>> EaseMlService::ListExamples(int job) const {
  EASEML_RETURN_NOT_OK(ValidateJob(job));
  return jobs_[job].examples;
}

Status EaseMlService::Refine(int job, int example_index, bool enabled) {
  EASEML_RETURN_NOT_OK(ValidateJob(job));
  auto& examples = jobs_[job].examples;
  if (example_index < 0 ||
      example_index >= static_cast<int>(examples.size())) {
    return Status::OutOfRange("Refine: example index out of range");
  }
  examples[example_index].enabled = enabled;
  return Status::OK();
}

double EaseMlService::EffectiveExamples(const JobInfo& job) const {
  double effective = 0.0;
  for (const auto& e : job.examples) {
    if (!e.enabled) continue;
    effective += e.noisy ? 0.3 : 1.0;  // noisy labels teach less
  }
  return effective;
}

Result<InferReport> EaseMlService::Infer(int job) const {
  EASEML_RETURN_NOT_OK(ValidateJob(job));
  EASEML_ASSIGN_OR_RETURN(Task best, pool_.BestForUser(job));
  InferReport report;
  report.model_name = best.candidate.DisplayName();
  report.accuracy = best.accuracy;
  EASEML_ASSIGN_OR_RETURN(report.rounds_served, selector_.RoundsServed(job));
  return report;
}

Result<Task> EaseMlService::Step() {
  EASEML_ASSIGN_OR_RETURN(core::MultiTenantSelector::Assignment assignment,
                          selector_.Next());
  JobInfo& job = jobs_[assignment.tenant];
  const CandidateModel& candidate = job.candidates[assignment.model];
  EASEML_ASSIGN_OR_RETURN(ModelInfo info,
                          ModelRegistry::Builtin().Find(candidate.base_model));
  TaskProfile profile;
  profile.difficulty = job.difficulty;
  profile.num_examples = std::max(1.0, EffectiveExamples(job));
  profile.dynamic_range = job.dynamic_range;

  const int task_id = job.task_ids[assignment.model];
  EASEML_RETURN_NOT_OK(pool_.MarkRunning(task_id));
  EASEML_ASSIGN_OR_RETURN(TrainingOutcome outcome,
                          executor_.Train(info, candidate, profile));
  EASEML_RETURN_NOT_OK(
      pool_.MarkDone(task_id, outcome.accuracy, outcome.duration));
  EASEML_RETURN_NOT_OK(selector_.Report(assignment, outcome.accuracy));
  return pool_.Get(task_id);
}

Result<int> EaseMlService::RunSteps(int n) {
  if (n < 0) return Status::InvalidArgument("RunSteps: negative count");
  int taken = 0;
  for (int i = 0; i < n && !Exhausted(); ++i) {
    EASEML_ASSIGN_OR_RETURN(Task task, Step());
    (void)task;
    ++taken;
  }
  return taken;
}

Result<std::vector<CandidateModel>> EaseMlService::Candidates(int job) const {
  EASEML_RETURN_NOT_OK(ValidateJob(job));
  return jobs_[job].candidates;
}

}  // namespace easeml::platform
