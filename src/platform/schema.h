#ifndef EASEML_PLATFORM_SCHEMA_H_
#define EASEML_PLATFORM_SCHEMA_H_

#include <string>
#include <vector>

#include "common/status.h"

namespace easeml::platform {

/// Shape of a constant-sized tensor, e.g. Tensor[256, 256, 3].
struct TensorShape {
  std::vector<int> dims;

  int rank() const { return static_cast<int>(dims.size()); }
  /// Total element count; 1 for rank-0.
  long long NumElements() const;
  std::string ToString() const;  // "Tensor[256,256,3]"
  bool operator==(const TensorShape& o) const { return dims == o.dims; }
  bool operator!=(const TensorShape& o) const { return !(*this == o); }
};

/// A nonrecursive field: an optionally named constant-sized tensor
/// (grammar: nonrec_field ::= Tensor[int list] | field_name :: Tensor[...]).
struct NonRecField {
  std::string name;  // may be empty (anonymous)
  TensorShape shape;
  bool operator==(const NonRecField& o) const {
    return name == o.name && shape == o.shape;
  }
  bool operator!=(const NonRecField& o) const { return !(*this == o); }
};

/// A data type of the ease.ml DSL (Figure 2): a list of nonrecursive tensor
/// fields plus a list of recursive fields ("pointers" to the same type),
/// which lets users express images, time series, and trees (Section 2.1).
struct DataType {
  std::vector<NonRecField> nonrec_fields;
  std::vector<std::string> rec_fields;

  std::string ToString() const;  // "{[Tensor[10]], [next]}"
  bool operator==(const DataType& o) const {
    return nonrec_fields == o.nonrec_fields && rec_fields == o.rec_fields;
  }
  bool operator!=(const DataType& o) const { return !(*this == o); }
};

/// A user program: the high-level schema of a machine-learning task
/// (grammar: prog ::= {input: data_type, output: data_type}).
struct Program {
  DataType input;
  DataType output;

  std::string ToString() const;
  bool operator==(const Program& o) const {
    return input == o.input && output == o.output;
  }
  bool operator!=(const Program& o) const { return !(*this == o); }

  /// Structural checks: positive tensor dims, valid field names
  /// ([a-z0-9_]*), no duplicate recursive field names.
  Status Validate() const;
};

}  // namespace easeml::platform

#endif  // EASEML_PLATFORM_SCHEMA_H_
