#ifndef EASEML_PLATFORM_SERVICE_H_
#define EASEML_PLATFORM_SERVICE_H_

#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "common/status.h"
#include "core/multi_tenant_selector.h"
#include "platform/async_executor.h"
#include "platform/dsl_parser.h"
#include "platform/model_registry.h"
#include "platform/task_pool.h"
#include "platform/training_executor.h"

namespace easeml::platform {

/// One supervision pair a user `feed`s into the system. `noisy` marks labels
/// produced by weak/distant supervision that the user may `refine` away.
struct Example {
  int index = -1;
  bool enabled = true;
  bool noisy = false;
};

/// What `infer` returns: the best model found so far and its accuracy.
struct InferReport {
  std::string model_name;
  double accuracy = 0.0;
  int rounds_served = 0;
};

/// Outcome of one asynchronous multi-device campaign (`RunAsync`).
struct AsyncRunReport {
  int steps = 0;                  // completed training runs
  int num_workers = 0;            // worker threads used
  double wall_seconds = 0.0;      // real end-to-end makespan
  double simulated_busy_time = 0.0;  // summed simulated GPU time
  double simulated_makespan = 0.0;   // max per-worker simulated clock
};

/// The end-to-end ease.ml service (Figure 1): declarative job submission,
/// the feed/refine/infer operators (Figure 3), schema matching and task
/// generation, and resource allocation via the multi-tenant selector, all
/// running against the simulated training backend.
class EaseMlService {
 public:
  struct Options {
    /// Selector engine configuration. `selector.num_shards > 1` selects the
    /// sharded engine (`shard::ShardedMultiTenantSelector`): every `Next()`
    /// user scan fans out over that many shard workers, with the selection
    /// trace bit-identical to the sequential engine. `selector.num_devices`
    /// sizes the async pipeline as before; the two compose.
    core::SelectorOptions selector;
    SimulatedTrainingExecutor::Options executor;
    /// Fraction of fed examples whose labels are noisy (weak supervision).
    double noisy_label_fraction = 0.1;
    uint64_t seed = 1;
  };

  static Result<EaseMlService> Create(const Options& options);

  /// Submits a declarative job. `program_text` is the Figure-2 DSL;
  /// `dynamic_range` describes the user's raw input range (inputs wider
  /// than image-like data get normalization candidates, Section 2.1).
  /// Returns the new job (tenant) id.
  Result<int> SubmitJob(const std::string& program_text,
                        double dynamic_range = 100.0);

  int num_jobs() const { return static_cast<int>(jobs_.size()); }

  /// `feed`: registers `count` new supervision pairs for the job.
  Status Feed(int job, int count);

  /// Examples fed so far (the refine UI's list).
  Result<std::vector<Example>> ListExamples(int job) const;

  /// `refine`: enables/disables one example.
  Status Refine(int job, int example_index, bool enabled);

  /// `infer`: reports the best model so far; NotFound before any model
  /// finished training.
  Result<InferReport> Infer(int job) const;

  /// Runs one resource-allocation step: asks the selector for the next
  /// (tenant, model), trains it on the simulated backend, and feeds the
  /// result back. Returns the finished task. Fails with FailedPrecondition
  /// when all jobs are exhausted.
  Result<Task> Step();

  /// Convenience: runs `n` steps or until exhausted; returns steps taken.
  Result<int> RunSteps(int n);

  /// Runs the asynchronous multi-device selection pipeline to exhaustion:
  /// keeps up to `selector.num_devices` assignments in flight on an
  /// `AsyncTrainingExecutor` worker pool (one worker per device by
  /// default; pass `num_workers > 0` to override), reconciling completions
  /// in whatever order devices finish. Every task moves through the pool's
  /// kPending -> kRunning -> kDone transitions exactly as in `Step`; a
  /// failed training run requeues its task, returns its selector ticket,
  /// and surfaces the error after the drain with the service in a
  /// consistent, re-runnable state. With `num_devices = 1` on a fresh
  /// service this reproduces the sequential `Step` loop bit-identically
  /// (worker 0 consumes the same RNG stream from the same seed; if Step()
  /// already ran, the worker pool's fresh simulators restart that stream,
  /// so mixed sequential/async campaigns are deterministic but not
  /// stream-continuous). A positive `seconds_per_cost_unit` dilates each
  /// training run by its simulated duration in real time, making
  /// `wall_seconds` a faithful D-device makespan.
  Result<AsyncRunReport> RunAsync(int num_workers = 0,
                                  double seconds_per_cost_unit = 0.0);

  /// True when every job has trained all its candidates.
  bool Exhausted() const { return selector_->Exhausted(); }

  /// Candidate models generated for a job by template matching (+
  /// normalization expansion).
  Result<std::vector<CandidateModel>> Candidates(int job) const;

  /// State of one task in the user-level task pool.
  Result<Task> TaskInfo(int task_id) const { return pool_.Get(task_id); }

  /// Simulated GPU time consumed so far, across both the sequential
  /// executor and all completed RunAsync campaigns.
  double ClusterTime() const { return executor_.clock() + async_cluster_time_; }

 private:
  struct JobInfo {
    Program program;
    WorkloadType workload;
    std::vector<CandidateModel> candidates;
    std::vector<int> task_ids;     // aligned with candidates
    std::vector<Example> examples;
    double difficulty = 0.8;       // hidden task difficulty
    double dynamic_range = 100.0;
  };

  EaseMlService(const Options& options,
                std::unique_ptr<core::MultiTenantSelector> selector)
      : options_(options),
        selector_(std::move(selector)),
        executor_(options.executor),
        rng_(options.seed) {}

  Status ValidateJob(int job) const;

  /// Resolves a selector assignment into the training request both the
  /// sequential and the asynchronous path execute.
  Result<AsyncTrainingJob> MakeTrainingJob(
      const core::MultiTenantSelector::Assignment& assignment) const;

  /// Effective supervision volume: disabled examples do not count and noisy
  /// ones count at a discount.
  double EffectiveExamples(const JobInfo& job) const;

  Options options_;
  /// Sequential or sharded engine, per `Options::selector.num_shards`
  /// (built by `shard::MakeSelector`); both speak the same ticketed
  /// protocol with bit-identical selection traces.
  std::unique_ptr<core::MultiTenantSelector> selector_;
  SimulatedTrainingExecutor executor_;
  Rng rng_;
  TaskPool pool_;
  std::vector<JobInfo> jobs_;
  double async_cluster_time_ = 0.0;  // summed over RunAsync campaigns
};

}  // namespace easeml::platform

#endif  // EASEML_PLATFORM_SERVICE_H_
