#ifndef EASEML_PLATFORM_SERVICE_H_
#define EASEML_PLATFORM_SERVICE_H_

#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "common/status.h"
#include "common/thread_annotations.h"
#include "core/multi_tenant_selector.h"
#include "obs/metrics.h"
#include "platform/async_executor.h"
#include "platform/dsl_parser.h"
#include "platform/model_registry.h"
#include "platform/task_pool.h"
#include "platform/training_executor.h"

namespace easeml::platform {

/// One supervision pair a user `feed`s into the system. `noisy` marks labels
/// produced by weak/distant supervision that the user may `refine` away.
struct Example {
  int index = -1;
  bool enabled = true;
  bool noisy = false;
};

/// What `infer` returns: the best model found so far and its accuracy.
struct InferReport {
  std::string model_name;
  double accuracy = 0.0;
  int rounds_served = 0;
};

/// Outcome of one asynchronous multi-device campaign (`RunAsync`).
struct AsyncRunReport {
  int steps = 0;                  // completed training runs
  int num_workers = 0;            // worker threads used
  double wall_seconds = 0.0;      // real end-to-end makespan
  double simulated_busy_time = 0.0;  // summed simulated GPU time
  double simulated_makespan = 0.0;   // max per-worker simulated clock
};

/// The end-to-end ease.ml service (Figure 1): declarative job submission,
/// the feed/refine/infer operators (Figure 3), schema matching and task
/// generation, and resource allocation via the multi-tenant selector, all
/// running against the simulated training backend.
///
/// Thread-safe: one service-wide mutex serializes the public API (the
/// operators mutate job state, the service RNG, and — through the
/// pt-guarded selector pointer — engine state that is single-threaded in
/// the sequential configuration). Campaign drivers (`Step`, `RunSteps`,
/// `RunAsync`) hold the lock for their whole run, so operators issued from
/// other threads observe campaign boundaries, never intermediate states.
/// Lock ordering: `mu_` may be held while the internally synchronized
/// `TaskPool`/`AsyncTrainingExecutor` locks are taken, never the reverse.
class EaseMlService {
 public:
  struct Options {
    /// Selector engine configuration. `selector.num_shards > 1` selects the
    /// sharded engine (`shard::ShardedMultiTenantSelector`): every `Next()`
    /// user scan fans out over that many shard workers, with the selection
    /// trace bit-identical to the sequential engine. `selector.num_devices`
    /// sizes the async pipeline as before; the two compose.
    core::SelectorOptions selector;
    SimulatedTrainingExecutor::Options executor;
    /// Fraction of fed examples whose labels are noisy (weak supervision).
    double noisy_label_fraction = 0.1;
    uint64_t seed = 1;
    /// Optional executor-utilization instruments (`easeml_exec_*`:
    /// dispatched/completed/failed counters, per-job and per-campaign wall
    /// histograms), recorded by `RunAsync`. Non-owning; must outlive the
    /// service. Pair with a `FleetObserver` on `selector.observer` sharing
    /// the same registry for the full serving-plus-executing picture.
    obs::Registry* metrics = nullptr;
  };

  static Result<EaseMlService> Create(const Options& options);

  /// Recovery startup path: builds the service around an engine someone
  /// else constructed — in practice `wal::OpenOrRecover`'s replayed
  /// selector (with `options.selector.wal` pointing at its resumed WAL, so
  /// the service keeps appending where the recovered history stops).
  /// `selector` must be non-null and already configured consistently with
  /// `options.selector`; job/task bookkeeping starts empty either way (the
  /// WAL logs SELECTOR events — resubmit jobs to rebind them to their
  /// recovered tenants in submission order, which is deterministic).
  static Result<EaseMlService> CreateWithSelector(
      const Options& options,
      std::unique_ptr<core::MultiTenantSelector> selector);

  /// Submits a declarative job. `program_text` is the Figure-2 DSL;
  /// `dynamic_range` describes the user's raw input range (inputs wider
  /// than image-like data get normalization candidates, Section 2.1).
  /// Returns the new job (tenant) id.
  Result<int> SubmitJob(const std::string& program_text,
                        double dynamic_range = 100.0) EASEML_EXCLUDES(mu_);

  int num_jobs() const EASEML_EXCLUDES(mu_);

  /// `feed`: registers `count` new supervision pairs for the job.
  Status Feed(int job, int count) EASEML_EXCLUDES(mu_);

  /// Examples fed so far (the refine UI's list).
  Result<std::vector<Example>> ListExamples(int job) const
      EASEML_EXCLUDES(mu_);

  /// `refine`: enables/disables one example.
  Status Refine(int job, int example_index, bool enabled)
      EASEML_EXCLUDES(mu_);

  /// `infer`: reports the best model so far; NotFound before any model
  /// finished training.
  Result<InferReport> Infer(int job) const EASEML_EXCLUDES(mu_);

  /// Runs one resource-allocation step: asks the selector for the next
  /// (tenant, model), trains it on the simulated backend, and feeds the
  /// result back. Returns the finished task. Fails with FailedPrecondition
  /// when all jobs are exhausted.
  Result<Task> Step() EASEML_EXCLUDES(mu_);

  /// Convenience: runs `n` steps or until exhausted; returns steps taken.
  Result<int> RunSteps(int n) EASEML_EXCLUDES(mu_);

  /// Runs the asynchronous multi-device selection pipeline to exhaustion:
  /// keeps up to `selector.num_devices` assignments in flight on an
  /// `AsyncTrainingExecutor` worker pool (one worker per device by
  /// default; pass `num_workers > 0` to override), reconciling completions
  /// in whatever order devices finish. Completions are handed to the
  /// selector BEFORE the task-pool bookkeeping: a sharded selector's
  /// `Report` returns after validating the ticket and enqueuing the belief
  /// fold on the owning shard worker, so the fold runs concurrently with
  /// the bookkeeping instead of blocking the dispatch loop. Every task moves through the pool's
  /// kPending -> kRunning -> kDone transitions exactly as in `Step`; a
  /// failed training run requeues its task, returns its selector ticket,
  /// and surfaces the error after the drain with the service in a
  /// consistent, re-runnable state. With `num_devices = 1` on a fresh
  /// service this reproduces the sequential `Step` loop bit-identically
  /// (worker 0 consumes the same RNG stream from the same seed; if Step()
  /// already ran, the worker pool's fresh simulators restart that stream,
  /// so mixed sequential/async campaigns are deterministic but not
  /// stream-continuous). A positive `seconds_per_cost_unit` dilates each
  /// training run by its simulated duration in real time, making
  /// `wall_seconds` a faithful D-device makespan.
  Result<AsyncRunReport> RunAsync(int num_workers = 0,
                                  double seconds_per_cost_unit = 0.0)
      EASEML_EXCLUDES(mu_);

  /// True when every job has trained all its candidates.
  bool Exhausted() const EASEML_EXCLUDES(mu_);

  /// Candidate models generated for a job by template matching (+
  /// normalization expansion).
  Result<std::vector<CandidateModel>> Candidates(int job) const
      EASEML_EXCLUDES(mu_);

  /// State of one task in the user-level task pool. Served straight from
  /// the internally synchronized pool — no service lock taken.
  Result<Task> TaskInfo(int task_id) const { return pool_.Get(task_id); }

  /// Simulated GPU time consumed so far, across both the sequential
  /// executor and all completed RunAsync campaigns.
  double ClusterTime() const EASEML_EXCLUDES(mu_);

 private:
  struct JobInfo {
    Program program;
    WorkloadType workload;
    std::vector<CandidateModel> candidates;
    std::vector<int> task_ids;     // aligned with candidates
    std::vector<Example> examples;
    double difficulty = 0.8;       // hidden task difficulty
    double dynamic_range = 100.0;
  };

  EaseMlService(const Options& options,
                std::unique_ptr<core::MultiTenantSelector> selector)
      : options_(options),
        selector_(std::move(selector)),
        executor_(options.executor),
        rng_(options.seed) {}

  Status ValidateJob(int job) const EASEML_REQUIRES(mu_);

  /// One resource-allocation step; `Step` and `RunSteps` share this seam so
  /// the campaign loop never re-acquires the service lock.
  Result<Task> StepLocked() EASEML_REQUIRES(mu_);

  bool ExhaustedLocked() const EASEML_REQUIRES(mu_);

  /// Resolves a selector assignment into the training request both the
  /// sequential and the asynchronous path execute.
  Result<AsyncTrainingJob> MakeTrainingJob(
      const core::MultiTenantSelector::Assignment& assignment) const
      EASEML_REQUIRES(mu_);

  /// Effective supervision volume: disabled examples do not count and noisy
  /// ones count at a discount. Pure function of its argument.
  double EffectiveExamples(const JobInfo& job) const;

  /// Heap-allocated so the service stays movable (`Create` returns it by
  /// value); `mu_` is the stable capability the annotations name, and
  /// default moves keep the pair consistent.
  std::unique_ptr<Mutex> mu_storage_{std::make_unique<Mutex>()};
  Mutex* mu_{mu_storage_.get()};

  Options options_;
  /// Sequential or sharded engine, per `Options::selector.num_shards`
  /// (built by `shard::MakeSelector`); both speak the same ticketed
  /// protocol with bit-identical selection traces. The pointer is set once
  /// in the constructor; the engine state it names is what the service
  /// lock guards (the sharded engine also carries its own lock, taken
  /// after `mu_` per the ordering above).
  std::unique_ptr<core::MultiTenantSelector> selector_
      EASEML_PT_GUARDED_BY(mu_);
  SimulatedTrainingExecutor executor_ EASEML_GUARDED_BY(mu_);
  Rng rng_ EASEML_GUARDED_BY(mu_);
  TaskPool pool_;  // internally synchronized (see task_pool.h)
  std::vector<JobInfo> jobs_ EASEML_GUARDED_BY(mu_);
  double async_cluster_time_ EASEML_GUARDED_BY(mu_) = 0.0;  // over campaigns
};

}  // namespace easeml::platform

#endif  // EASEML_PLATFORM_SERVICE_H_
