#ifndef EASEML_PLATFORM_SERVICE_H_
#define EASEML_PLATFORM_SERVICE_H_

#include <string>
#include <vector>

#include "common/status.h"
#include "core/multi_tenant_selector.h"
#include "platform/dsl_parser.h"
#include "platform/model_registry.h"
#include "platform/task_pool.h"
#include "platform/training_executor.h"

namespace easeml::platform {

/// One supervision pair a user `feed`s into the system. `noisy` marks labels
/// produced by weak/distant supervision that the user may `refine` away.
struct Example {
  int index = -1;
  bool enabled = true;
  bool noisy = false;
};

/// What `infer` returns: the best model found so far and its accuracy.
struct InferReport {
  std::string model_name;
  double accuracy = 0.0;
  int rounds_served = 0;
};

/// The end-to-end ease.ml service (Figure 1): declarative job submission,
/// the feed/refine/infer operators (Figure 3), schema matching and task
/// generation, and resource allocation via the multi-tenant selector, all
/// running against the simulated training backend.
class EaseMlService {
 public:
  struct Options {
    core::SelectorOptions selector;
    SimulatedTrainingExecutor::Options executor;
    /// Fraction of fed examples whose labels are noisy (weak supervision).
    double noisy_label_fraction = 0.1;
    uint64_t seed = 1;
  };

  static Result<EaseMlService> Create(const Options& options);

  /// Submits a declarative job. `program_text` is the Figure-2 DSL;
  /// `dynamic_range` describes the user's raw input range (inputs wider
  /// than image-like data get normalization candidates, Section 2.1).
  /// Returns the new job (tenant) id.
  Result<int> SubmitJob(const std::string& program_text,
                        double dynamic_range = 100.0);

  int num_jobs() const { return static_cast<int>(jobs_.size()); }

  /// `feed`: registers `count` new supervision pairs for the job.
  Status Feed(int job, int count);

  /// Examples fed so far (the refine UI's list).
  Result<std::vector<Example>> ListExamples(int job) const;

  /// `refine`: enables/disables one example.
  Status Refine(int job, int example_index, bool enabled);

  /// `infer`: reports the best model so far; NotFound before any model
  /// finished training.
  Result<InferReport> Infer(int job) const;

  /// Runs one resource-allocation step: asks the selector for the next
  /// (tenant, model), trains it on the simulated backend, and feeds the
  /// result back. Returns the finished task. Fails with FailedPrecondition
  /// when all jobs are exhausted.
  Result<Task> Step();

  /// Convenience: runs `n` steps or until exhausted; returns steps taken.
  Result<int> RunSteps(int n);

  /// True when every job has trained all its candidates.
  bool Exhausted() const { return selector_.Exhausted(); }

  /// Candidate models generated for a job by template matching (+
  /// normalization expansion).
  Result<std::vector<CandidateModel>> Candidates(int job) const;

  /// Simulated GPU time consumed so far.
  double ClusterTime() const { return executor_.clock(); }

 private:
  struct JobInfo {
    Program program;
    WorkloadType workload;
    std::vector<CandidateModel> candidates;
    std::vector<int> task_ids;     // aligned with candidates
    std::vector<Example> examples;
    double difficulty = 0.8;       // hidden task difficulty
    double dynamic_range = 100.0;
  };

  EaseMlService(const Options& options, core::MultiTenantSelector selector)
      : options_(options),
        selector_(std::move(selector)),
        executor_(options.executor),
        rng_(options.seed) {}

  Status ValidateJob(int job) const;

  /// Effective supervision volume: disabled examples do not count and noisy
  /// ones count at a discount.
  double EffectiveExamples(const JobInfo& job) const;

  Options options_;
  core::MultiTenantSelector selector_;
  SimulatedTrainingExecutor executor_;
  Rng rng_;
  TaskPool pool_;
  std::vector<JobInfo> jobs_;
};

}  // namespace easeml::platform

#endif  // EASEML_PLATFORM_SERVICE_H_
