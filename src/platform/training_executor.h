#ifndef EASEML_PLATFORM_TRAINING_EXECUTOR_H_
#define EASEML_PLATFORM_TRAINING_EXECUTOR_H_

#include <cstdint>

#include "common/rng.h"
#include "common/status.h"
#include "platform/model_registry.h"
#include "platform/normalization.h"

namespace easeml::platform {

/// Outcome of one (simulated) training run.
struct TrainingOutcome {
  double accuracy = 0.0;  // validation accuracy in [0, 1]
  double duration = 0.0;  // simulated GPU time consumed
};

/// Description of the tenant task a model is trained on.
struct TaskProfile {
  /// Inherent achievable accuracy of the task, in [0, 1].
  double difficulty = 0.8;

  /// Effective number of supervision pairs (after `refine` filtering).
  double num_examples = 1000;

  /// Ratio of the largest to smallest input magnitude. Image-like data has
  /// range ~1e2; the astrophysics/proteomics tasks of Section 2.1 exceed
  /// 1e10, making normalization candidates essential.
  double dynamic_range = 100.0;
};

/// Simulated training backend.
///
/// SUBSTITUTION (see DESIGN.md): stands in for the 24-GPU cluster. For each
/// run it (a) grid-searches the learning rate like the real system ("the
/// system automatically grid-searches the initial learning rate in {0.1,
/// 0.01, 0.001, 0.0001} and runs each setting for 100 epochs"), taking the
/// best of `lr_grid_size` noisy draws; (b) applies a saturating
/// data-quantity factor; (c) penalizes un-normalized inputs with a large
/// dynamic range, so the Figure-5 normalization candidates genuinely help;
/// and (d) advances a virtual clock by cost proportional to the model's
/// relative cost, the grid size, and the data volume.
class SimulatedTrainingExecutor {
 public:
  struct Options {
    int lr_grid_size = 4;
    int epochs_per_setting = 100;
    double lr_luck_stddev = 0.01;   // run-to-run training variance
    double examples_half_life = 200.0;  // data-quantity saturation constant
    double range_penalty = 0.25;    // accuracy lost on raw wide-range input
    uint64_t seed = 0;
  };

  explicit SimulatedTrainingExecutor(const Options& options)
      : options_(options), rng_(options.seed) {}

  /// Trains `candidate` (base model + optional normalization) on a task.
  /// Fails on invalid profiles (difficulty outside [0,1], non-positive
  /// examples or range).
  Result<TrainingOutcome> Train(const ModelInfo& model,
                                const CandidateModel& candidate,
                                const TaskProfile& task);

  /// Total simulated GPU time consumed so far.
  double clock() const { return clock_; }

 private:
  Options options_;
  Rng rng_;
  double clock_ = 0.0;
};

}  // namespace easeml::platform

#endif  // EASEML_PLATFORM_TRAINING_EXECUTOR_H_
