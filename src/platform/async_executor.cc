#include "platform/async_executor.h"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <utility>

namespace easeml::platform {

AsyncTrainingExecutor::AsyncTrainingExecutor(const Options& options)
    : options_(options),
      worker_clock_(static_cast<size_t>(options.num_workers), 0.0) {}

Result<std::unique_ptr<AsyncTrainingExecutor>> AsyncTrainingExecutor::Create(
    const Options& options) {
  if (options.num_workers < 1) {
    return Status::InvalidArgument(
        "AsyncTrainingExecutor: num_workers must be >= 1");
  }
  if (!(options.seconds_per_cost_unit >= 0.0) ||
      !std::isfinite(options.seconds_per_cost_unit)) {
    return Status::InvalidArgument(
        "AsyncTrainingExecutor: seconds_per_cost_unit must be finite and "
        ">= 0");
  }
  // Not make_unique: the constructor is private. The worker handles are
  // written under the lock (they are mu_-guarded state claimed by
  // Shutdown); a freshly started worker's first act is to lock mu_ in
  // WorkerLoop, so it simply blocks until the handle vector is complete
  // and never sees a torn state.
  std::unique_ptr<AsyncTrainingExecutor> pool(
      new AsyncTrainingExecutor(options));
  {
    MutexLock lock(pool->mu_);
    pool->workers_.reserve(static_cast<size_t>(options.num_workers));
    for (int w = 0; w < options.num_workers; ++w) {
      pool->workers_.emplace_back(
          [raw = pool.get(), w]() { raw->WorkerLoop(w); });
    }
  }
  return pool;
}

AsyncTrainingExecutor::~AsyncTrainingExecutor() { Shutdown(); }

Status AsyncTrainingExecutor::Submit(AsyncTrainingJob job) {
  {
    MutexLock lock(mu_);
    if (shutdown_) {
      return Status::FailedPrecondition("Submit: executor is shut down");
    }
    jobs_.push_back(std::move(job));
    ++outstanding_;
  }
  job_ready_.NotifyOne();
  return Status::OK();
}

bool AsyncTrainingExecutor::ConsumeFront(AsyncTrainingCompletion& out) {
  out = std::move(completions_.front());
  completions_.pop_front();
  --outstanding_;
  return outstanding_ == 0;
}

std::optional<AsyncTrainingCompletion>
AsyncTrainingExecutor::TryNextCompletion() {
  AsyncTrainingCompletion done;
  bool drained = false;
  {
    MutexLock lock(mu_);
    if (completions_.empty()) return std::nullopt;
    drained = ConsumeFront(done);
  }
  // Wake blocked WaitCompletion callers when the pool drains so they can
  // fail fast instead of waiting for a completion that will never come.
  if (drained) completion_ready_.NotifyAll();
  return done;
}

Result<AsyncTrainingCompletion> AsyncTrainingExecutor::WaitCompletion() {
  AsyncTrainingCompletion done;
  bool drained = false;
  {
    MutexLock lock(mu_);
    while (completions_.empty() && outstanding_ != 0) {
      completion_ready_.Wait(lock);
    }
    if (completions_.empty()) {
      // Nothing outstanding: either nothing was submitted or a concurrent
      // consumer drained the last completion.
      return Status::FailedPrecondition(
          "WaitCompletion: no job outstanding (submit first)");
    }
    drained = ConsumeFront(done);
  }
  if (drained) completion_ready_.NotifyAll();
  return done;
}

int AsyncTrainingExecutor::outstanding() const {
  MutexLock lock(mu_);
  return outstanding_;
}

double AsyncTrainingExecutor::SimulatedBusyTime() const {
  MutexLock lock(mu_);
  double total = 0.0;
  for (double c : worker_clock_) total += c;
  return total;
}

double AsyncTrainingExecutor::SimulatedMakespan() const {
  MutexLock lock(mu_);
  double makespan = 0.0;
  for (double c : worker_clock_) makespan = std::max(makespan, c);
  return makespan;
}

void AsyncTrainingExecutor::Shutdown() {
  // Claim the thread handles under the lock: with concurrent Shutdown
  // callers (e.g. an explicit call racing the destructor) exactly one
  // joins each worker; the others see an empty vector and return.
  std::vector<std::thread> to_join;
  {
    MutexLock lock(mu_);
    shutdown_ = true;
    to_join.swap(workers_);
  }
  job_ready_.NotifyAll();
  for (auto& worker : to_join) {
    if (worker.joinable()) worker.join();
  }
}

void AsyncTrainingExecutor::WorkerLoop(int worker_index) {
  // Each worker owns a private, deterministically seeded simulator: no
  // training state is shared, and worker 0 replays the sequential
  // executor's exact RNG stream.
  SimulatedTrainingExecutor::Options exec_options = options_.executor;
  exec_options.seed += static_cast<uint64_t>(worker_index);
  SimulatedTrainingExecutor executor(exec_options);

  while (true) {
    AsyncTrainingJob job;
    {
      MutexLock lock(mu_);
      while (!shutdown_ && jobs_.empty()) job_ready_.Wait(lock);
      if (jobs_.empty()) return;  // shutdown with a drained queue
      job = std::move(jobs_.front());
      jobs_.pop_front();
    }

    AsyncTrainingCompletion done;
    done.job_id = job.job_id;
    done.worker = worker_index;
    auto outcome = executor.Train(job.model, job.candidate, job.profile);
    if (outcome.ok()) {
      done.outcome = *outcome;
      if (options_.seconds_per_cost_unit > 0.0) {
        std::this_thread::sleep_for(std::chrono::duration<double>(
            outcome->duration * options_.seconds_per_cost_unit));
      }
    } else {
      done.status = outcome.status();
    }

    {
      MutexLock lock(mu_);
      if (done.status.ok()) {
        worker_clock_[static_cast<size_t>(worker_index)] +=
            done.outcome.duration;
      }
      completions_.push_back(std::move(done));
    }
    completion_ready_.NotifyOne();
  }
}

}  // namespace easeml::platform
