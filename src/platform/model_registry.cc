#include "platform/model_registry.h"

namespace easeml::platform {

const ModelRegistry& ModelRegistry::Builtin() {
  static const ModelRegistry* kRegistry = [] {
    auto* r = new ModelRegistry();
    using W = WorkloadType;
    const std::vector<ModelInfo> all = {
        // Image classification (metadata mirrors data/deeplearning.cc).
        {"AlexNet", W::kImageClassification, 16000, 2012, 0.8, -0.060},
        {"BN-AlexNet", W::kImageClassification, 4100, 2015, 1.0, -0.030},
        {"NIN", W::kImageClassification, 1300, 2013, 1.0, -0.040},
        {"GoogLeNet", W::kImageClassification, 5600, 2014, 2.5, 0.020},
        {"ResNet-18", W::kImageClassification, 8200, 2015, 2.0, 0.030},
        {"ResNet-50", W::kImageClassification, 8200, 2015, 5.0, 0.050},
        {"VGG-16", W::kImageClassification, 9300, 2014, 6.0, 0.010},
        {"SqueezeNet", W::kImageClassification, 620, 2016, 0.5, -0.050},
        // Image recovery.
        {"Auto-encoder", W::kImageRecovery, 3000, 2006, 1.5, -0.020},
        {"GAN", W::kImageRecovery, 5200, 2014, 4.0, 0.030},
        {"pix2pix", W::kImageRecovery, 900, 2016, 3.5, 0.040},
        // Time series classification.
        {"RNN", W::kTimeSeriesClassification, 7000, 1990, 1.0, -0.040},
        {"LSTM", W::kTimeSeriesClassification, 9800, 1997, 1.6, 0.030},
        {"bi-LSTM", W::kTimeSeriesClassification, 2400, 2005, 2.2, 0.040},
        {"GRU", W::kTimeSeriesClassification, 3100, 2014, 1.4, 0.020},
        // Time series translation.
        {"seq2seq", W::kTimeSeriesTranslation, 4300, 2014, 3.0, 0.000},
        // Tree classification.
        {"Tree-RNN", W::kTreeClassification, 1200, 2013, 2.0, 0.020},
        {"Tree-kernel-SVM", W::kTreeClassification, 1800, 2002, 0.7, -0.010},
        // General fallbacks.
        {"Bit-level-RNN", W::kGeneralClassification, 50, 2016, 2.5, -0.080},
        {"Bit-level-Auto-encoder", W::kGeneralAutoEncoder, 40, 2016, 2.5,
         -0.090},
    };
    for (const auto& m : all) {
      // Built-in table has no duplicates; Register cannot fail here.
      (void)r->Register(m);
    }
    return r;
  }();
  return *kRegistry;
}

Status ModelRegistry::Register(ModelInfo info) {
  for (const auto& m : models_) {
    if (m.name == info.name) {
      return Status::AlreadyExists("model already registered: " + info.name);
    }
  }
  models_.push_back(std::move(info));
  return Status::OK();
}

Result<ModelInfo> ModelRegistry::Find(const std::string& name) const {
  for (const auto& m : models_) {
    if (m.name == name) return m;
  }
  return Status::NotFound("model not registered: " + name);
}

std::vector<ModelInfo> ModelRegistry::ForWorkload(
    WorkloadType workload) const {
  std::vector<ModelInfo> out;
  for (const auto& m : models_) {
    if (m.workload == workload) out.push_back(m);
  }
  return out;
}

}  // namespace easeml::platform
