#ifndef EASEML_PLATFORM_TASK_POOL_H_
#define EASEML_PLATFORM_TASK_POOL_H_

#include <memory>
#include <string>
#include <vector>

#include "common/status.h"
#include "common/thread_annotations.h"
#include "platform/normalization.h"

namespace easeml::platform {

/// Lifecycle of one training task.
enum class TaskState { kPending, kRunning, kDone };

/// One (user, candidate model) training task in the user-level task pool of
/// Figure 1 (step 1: "schema matching and task generation").
struct Task {
  int task_id = -1;
  int user_id = -1;
  CandidateModel candidate;
  TaskState state = TaskState::kPending;
  double accuracy = 0.0;       // valid once kDone
  double duration = 0.0;       // simulated execution time once kDone
};

/// The user-level task pool: every submitted job expands into one task per
/// candidate model; the resource-allocation layer (the multi-tenant
/// selector) decides execution order.
///
/// Thread-safe: every public method locks the pool's own mutex (task rows
/// are tiny and copied out, never referenced across calls). The service's
/// coordinator is the only writer today, but the shard-parallel report
/// pipeline (ROADMAP) will complete tasks from shard workers — the lock
/// discipline is annotated and compile-checked now so that change cannot
/// introduce an unguarded access.
class TaskPool {
 public:
  /// Registers a user's candidate tasks; returns the new task ids.
  /// Fails if `candidates` is empty.
  Result<std::vector<int>> AddUserTasks(
      int user_id, const std::vector<CandidateModel>& candidates)
      EASEML_EXCLUDES(mu_);

  int num_tasks() const EASEML_EXCLUDES(mu_);

  Result<Task> Get(int task_id) const EASEML_EXCLUDES(mu_);

  /// State transitions; only kPending -> kRunning -> kDone are legal,
  /// plus the kRunning -> kPending failure path via Requeue.
  Status MarkRunning(int task_id) EASEML_EXCLUDES(mu_);
  Status MarkDone(int task_id, double accuracy, double duration)
      EASEML_EXCLUDES(mu_);

  /// Returns a running task to the pending state (its training run failed
  /// or was aborted before producing a measurement).
  Status Requeue(int task_id) EASEML_EXCLUDES(mu_);

  /// Pending tasks of one user.
  std::vector<Task> PendingForUser(int user_id) const EASEML_EXCLUDES(mu_);

  /// All tasks of one user.
  std::vector<Task> TasksForUser(int user_id) const EASEML_EXCLUDES(mu_);

  /// Completed task with the best accuracy for `user_id`; NotFound when the
  /// user has no finished task (this backs the `infer` operator).
  Result<Task> BestForUser(int user_id) const EASEML_EXCLUDES(mu_);

  /// Number of tasks in each state across the pool.
  int CountInState(TaskState state) const EASEML_EXCLUDES(mu_);

 private:
  Status Validate(int task_id) const EASEML_REQUIRES(mu_);

  /// Heap-allocated so the pool (and the service holding it by value)
  /// stays movable; `mu_` is the stable capability the annotations name.
  /// Default moves keep the pair consistent: the storage transfers and the
  /// capability pointer still names the same heap mutex.
  std::unique_ptr<Mutex> mu_storage_{std::make_unique<Mutex>()};
  Mutex* mu_{mu_storage_.get()};
  std::vector<Task> tasks_ EASEML_GUARDED_BY(mu_);
};

}  // namespace easeml::platform

#endif  // EASEML_PLATFORM_TASK_POOL_H_
