#ifndef EASEML_PLATFORM_TASK_POOL_H_
#define EASEML_PLATFORM_TASK_POOL_H_

#include <string>
#include <vector>

#include "common/status.h"
#include "platform/normalization.h"

namespace easeml::platform {

/// Lifecycle of one training task.
enum class TaskState { kPending, kRunning, kDone };

/// One (user, candidate model) training task in the user-level task pool of
/// Figure 1 (step 1: "schema matching and task generation").
struct Task {
  int task_id = -1;
  int user_id = -1;
  CandidateModel candidate;
  TaskState state = TaskState::kPending;
  double accuracy = 0.0;       // valid once kDone
  double duration = 0.0;       // simulated execution time once kDone
};

/// The user-level task pool: every submitted job expands into one task per
/// candidate model; the resource-allocation layer (the multi-tenant
/// selector) decides execution order.
class TaskPool {
 public:
  /// Registers a user's candidate tasks; returns the new task ids.
  /// Fails if `candidates` is empty.
  Result<std::vector<int>> AddUserTasks(
      int user_id, const std::vector<CandidateModel>& candidates);

  int num_tasks() const { return static_cast<int>(tasks_.size()); }

  Result<Task> Get(int task_id) const;

  /// State transitions; only kPending -> kRunning -> kDone are legal,
  /// plus the kRunning -> kPending failure path via Requeue.
  Status MarkRunning(int task_id);
  Status MarkDone(int task_id, double accuracy, double duration);

  /// Returns a running task to the pending state (its training run failed
  /// or was aborted before producing a measurement).
  Status Requeue(int task_id);

  /// Pending tasks of one user.
  std::vector<Task> PendingForUser(int user_id) const;

  /// All tasks of one user.
  std::vector<Task> TasksForUser(int user_id) const;

  /// Completed task with the best accuracy for `user_id`; NotFound when the
  /// user has no finished task (this backs the `infer` operator).
  Result<Task> BestForUser(int user_id) const;

  /// Number of tasks in each state across the pool.
  int CountInState(TaskState state) const;

 private:
  Status Validate(int task_id) const;
  std::vector<Task> tasks_;
};

}  // namespace easeml::platform

#endif  // EASEML_PLATFORM_TASK_POOL_H_
