#include "bandit/random_policy.h"

#include "common/logging.h"

namespace easeml::bandit {

RandomPolicy::RandomPolicy(int num_arms, uint64_t seed)
    : num_arms_(num_arms), rng_(seed) {
  EASEML_CHECK(num_arms >= 1);
}

Result<int> RandomPolicy::SelectArm(const std::vector<int>& available,
                                    int t) {
  (void)t;
  EASEML_RETURN_NOT_OK(ValidateAvailable(available));
  return available[rng_.UniformInt(0,
                                   static_cast<int>(available.size()) - 1)];
}

Status RandomPolicy::Update(int arm, double reward) {
  (void)reward;
  if (arm < 0 || arm >= num_arms_) {
    return Status::OutOfRange("RandomPolicy::Update: arm out of range");
  }
  return Status::OK();
}

}  // namespace easeml::bandit
