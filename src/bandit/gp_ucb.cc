#include "bandit/gp_ucb.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <utility>

#include "common/logging.h"

namespace easeml::bandit {

namespace {
constexpr double kPiSquaredOverSix = 1.6449340668482264;
}  // namespace

GpUcbPolicy::GpUcbPolicy(std::unique_ptr<gp::ArmBelief> belief,
                         GpUcbOptions options)
    : belief_(std::move(belief)), options_(std::move(options)) {
  if (!options_.costs.empty()) {
    max_cost_ = options_.costs[0];
    for (double c : options_.costs) max_cost_ = std::max(max_cost_, c);
  }
}

Result<GpUcbPolicy> GpUcbPolicy::Create(std::unique_ptr<gp::ArmBelief> belief,
                                        GpUcbOptions options) {
  if (belief == nullptr) {
    return Status::InvalidArgument("GpUcb: null belief");
  }
  if (options.delta <= 0.0 || options.delta >= 1.0) {
    return Status::InvalidArgument("GpUcb: delta must be in (0, 1)");
  }
  if (options.cost_aware) {
    if (static_cast<int>(options.costs.size()) != belief->num_arms()) {
      return Status::InvalidArgument(
          "GpUcb: cost-aware mode needs one cost per arm");
    }
    for (double c : options.costs) {
      if (c <= 0.0) {
        return Status::InvalidArgument("GpUcb: costs must be positive");
      }
    }
  }
  return GpUcbPolicy(std::move(belief), std::move(options));
}

Result<GpUcbPolicy> GpUcbPolicy::Create(gp::DiscreteArmGp belief,
                                        GpUcbOptions options) {
  return Create(std::make_unique<gp::DiscreteArmGp>(std::move(belief)),
                std::move(options));
}

Result<std::unique_ptr<GpUcbPolicy>> GpUcbPolicy::CreateUnique(
    std::unique_ptr<gp::ArmBelief> belief, GpUcbOptions options) {
  EASEML_ASSIGN_OR_RETURN(GpUcbPolicy policy,
                          Create(std::move(belief), std::move(options)));
  return std::make_unique<GpUcbPolicy>(std::move(policy));
}

Result<std::unique_ptr<GpUcbPolicy>> GpUcbPolicy::CreateUnique(
    gp::DiscreteArmGp belief, GpUcbOptions options) {
  return CreateUnique(std::make_unique<gp::DiscreteArmGp>(std::move(belief)),
                      std::move(options));
}

double GpUcbPolicy::Beta(int t) const {
  EASEML_DCHECK(t >= 1);
  const double k = static_cast<double>(num_arms());
  const double tt = static_cast<double>(t);
  if (options_.theoretical_beta) {
    // Theorem 1: beta_t = 2 c* log(pi^2 K t^2 / (6 delta)).
    return 2.0 * max_cost_ *
           std::log(kPiSquaredOverSix * k * tt * tt / options_.delta);
  }
  // Algorithm 1 line 3: beta_t = log(K t^2 / delta). At t = 1 with large
  // delta this can be <= 0; clamp at 0 so sqrt is defined (pure
  // exploitation).
  return std::max(0.0, std::log(k * tt * tt / options_.delta));
}

double GpUcbPolicy::ArmCost(int arm) const {
  if (options_.costs.empty()) return 1.0;
  return options_.costs[arm];
}

double GpUcbPolicy::UcbFromMarginals(int arm, double beta, double mean,
                                     double variance) const {
  if (options_.cost_aware) beta /= ArmCost(arm);
  return mean + std::sqrt(beta) * std::sqrt(std::max(0.0, variance));
}

double GpUcbPolicy::Ucb(int arm, int t) const {
  return UcbFromMarginals(arm, Beta(t), belief_->Mean(arm),
                          belief_->Variance(arm));
}

double GpUcbPolicy::MaxUcb(const std::vector<int>& arms, int t) const {
  double best = -std::numeric_limits<double>::infinity();
  if (arms.empty()) return best;
  const gp::PosteriorSummary summary = belief_->AllMarginals();
  const double beta = Beta(t);
  for (int arm : arms) {
    best = std::max(best, UcbFromMarginals(arm, beta, summary.mean[arm],
                                           summary.variance[arm]));
  }
  return best;
}

Result<int> GpUcbPolicy::SelectArm(const std::vector<int>& available, int t) {
  EASEML_RETURN_NOT_OK(ValidateAvailable(available));
  if (t < 1) return Status::InvalidArgument("SelectArm: t must be >= 1");
  // One batched marginal read instead of K scalar posterior queries — the
  // shared-prior representation serves this with a single cached summary.
  const gp::PosteriorSummary summary = belief_->AllMarginals();
  const double beta = Beta(t);
  int best = available[0];
  double best_ucb = -std::numeric_limits<double>::infinity();
  for (int arm : available) {
    const double u =
        UcbFromMarginals(arm, beta, summary.mean[arm], summary.variance[arm]);
    if (u > best_ucb) {
      best_ucb = u;
      best = arm;
    }
  }
  return best;
}

Status GpUcbPolicy::Update(int arm, double reward) {
  return belief_->Observe(arm, reward);
}

std::string GpUcbPolicy::name() const {
  return options_.cost_aware ? "gp-ucb-cost-aware" : "gp-ucb";
}

}  // namespace easeml::bandit
