#ifndef EASEML_BANDIT_FIXED_ORDER_H_
#define EASEML_BANDIT_FIXED_ORDER_H_

#include <vector>

#include "bandit/bandit_policy.h"

namespace easeml::bandit {

/// Plays arms in a fixed preference order, skipping arms already played.
///
/// Implements the user heuristics of Section 5.2: MOSTCITED plays models in
/// descending Google-Scholar citation count, MOSTRECENT in descending
/// publication year. The order is supplied by the caller (derived from the
/// model registry metadata).
class FixedOrderPolicy : public BanditPolicy {
 public:
  /// `order` must be a permutation of [0, K). Fails otherwise.
  static Result<FixedOrderPolicy> Create(std::vector<int> order,
                                         std::string name);

  int num_arms() const override { return static_cast<int>(order_.size()); }
  Result<int> SelectArm(const std::vector<int>& available, int t) override;
  Status Update(int arm, double reward) override;
  std::string name() const override { return name_; }

  const std::vector<int>& order() const { return order_; }

 private:
  FixedOrderPolicy(std::vector<int> order, std::string name)
      : order_(std::move(order)), name_(std::move(name)) {}

  std::vector<int> order_;
  std::string name_;
};

/// Builds a preference order sorting arms by `score` descending; ties break
/// by lower arm index (deterministic).
std::vector<int> OrderByScoreDescending(const std::vector<double>& score);

}  // namespace easeml::bandit

#endif  // EASEML_BANDIT_FIXED_ORDER_H_
