#ifndef EASEML_BANDIT_GP_ACQUISITIONS_H_
#define EASEML_BANDIT_GP_ACQUISITIONS_H_

#include <memory>
#include <vector>

#include "bandit/bandit_policy.h"
#include "common/rng.h"
#include "gp/gaussian_process.h"

namespace easeml::bandit {

/// Standard normal CDF and PDF (shared by the acquisition policies).
double NormalCdf(double z);
double NormalPdf(double z);

/// Options shared by the GP acquisition-function policies.
struct GpAcquisitionOptions {
  /// Exploration margin xi added to the incumbent before computing the
  /// improvement (both EI and PI).
  double xi = 0.01;

  /// If true, the acquisition value is divided by the arm's cost
  /// ("expected improvement per unit cost", the standard cost-aware EI of
  /// Snoek et al.); `costs` must then be set.
  bool cost_aware = false;
  std::vector<double> costs;
};

/// GP-EI: expected improvement over the best observed reward
///   EI(k) = (mu - y* - xi) Phi(z) + sigma phi(z),  z = (mu - y* - xi)/sigma.
///
/// Section 4.5 lists integrating GP-EI into the multi-tenant framework as
/// future work; this policy implements the single-tenant building block so
/// it can be compared against GP-UCB under any scheduler (see the
/// extension_acquisitions bench).
class GpEiPolicy : public BanditPolicy {
 public:
  static Result<GpEiPolicy> Create(gp::DiscreteArmGp belief,
                                   GpAcquisitionOptions options);

  int num_arms() const override { return belief_.num_arms(); }
  Result<int> SelectArm(const std::vector<int>& available, int t) override;
  Status Update(int arm, double reward) override;
  std::string name() const override { return "gp-ei"; }

  /// The acquisition value of one arm given the current belief.
  double Acquisition(int arm) const;

  double best_observed() const { return best_observed_; }

 private:
  GpEiPolicy(gp::DiscreteArmGp belief, GpAcquisitionOptions options)
      : belief_(std::move(belief)), options_(std::move(options)) {}

  gp::DiscreteArmGp belief_;
  GpAcquisitionOptions options_;
  bool has_observation_ = false;
  double best_observed_ = 0.0;
};

/// GP-PI: probability of improvement, PI(k) = Phi((mu - y* - xi)/sigma)
/// (Kushner 1964, the paper's reference [25]).
class GpPiPolicy : public BanditPolicy {
 public:
  static Result<GpPiPolicy> Create(gp::DiscreteArmGp belief,
                                   GpAcquisitionOptions options);

  int num_arms() const override { return belief_.num_arms(); }
  Result<int> SelectArm(const std::vector<int>& available, int t) override;
  Status Update(int arm, double reward) override;
  std::string name() const override { return "gp-pi"; }

  double Acquisition(int arm) const;

 private:
  GpPiPolicy(gp::DiscreteArmGp belief, GpAcquisitionOptions options)
      : belief_(std::move(belief)), options_(std::move(options)) {}

  gp::DiscreteArmGp belief_;
  GpAcquisitionOptions options_;
  bool has_observation_ = false;
  double best_observed_ = 0.0;
};

/// GP Thompson sampling: draw one function sample from the joint posterior
/// N(mu, Sigma) and play its argmax (restricted to the available arms).
/// Cost-aware variant divides the sampled value's advantage by the cost.
class GpThompsonPolicy : public BanditPolicy {
 public:
  static Result<GpThompsonPolicy> Create(gp::DiscreteArmGp belief,
                                         GpAcquisitionOptions options,
                                         uint64_t seed);

  int num_arms() const override { return belief_.num_arms(); }
  Result<int> SelectArm(const std::vector<int>& available, int t) override;
  Status Update(int arm, double reward) override;
  std::string name() const override { return "gp-thompson"; }

 private:
  GpThompsonPolicy(gp::DiscreteArmGp belief, GpAcquisitionOptions options,
                   uint64_t seed)
      : belief_(std::move(belief)), options_(std::move(options)),
        rng_(seed) {}

  gp::DiscreteArmGp belief_;
  GpAcquisitionOptions options_;
  Rng rng_;
};

}  // namespace easeml::bandit

#endif  // EASEML_BANDIT_GP_ACQUISITIONS_H_
