#ifndef EASEML_BANDIT_GP_UCB_H_
#define EASEML_BANDIT_GP_UCB_H_

#include <memory>
#include <vector>

#include "bandit/bandit_policy.h"
#include "gp/arm_belief.h"
#include "gp/gaussian_process.h"

namespace easeml::bandit {

/// Configuration of the (cost-aware) GP-UCB policy.
struct GpUcbOptions {
  /// Confidence parameter delta in (0, 1); enters beta_t = log(K t^2 / delta).
  double delta = 0.1;

  /// If true, the selection index is mu + sqrt(beta_t / c_k) * sigma
  /// (the paper's Section 3.2 twist); `costs` must then be set.
  bool cost_aware = false;

  /// Per-arm execution costs c_k > 0. Required when `cost_aware`.
  std::vector<double> costs;

  /// If true, uses the theoretical schedule of Theorem 1,
  /// beta_t = 2 c* log(pi^2 K t^2 / (6 delta)), instead of the practical
  /// Algorithm-1 schedule beta_t = log(K t^2 / delta).
  bool theoretical_beta = false;
};

/// GP-UCB arm selection (Algorithm 1) with the optional cost-aware twist.
///
/// Works against any `gp::ArmBelief` — the dense `DiscreteArmGp` or the
/// multi-tenant `SharedPriorGp`. At round t it reads the batched posterior
/// summary once and picks
///   argmax_k mu_{t-1}(k) + sqrt(beta_t [/ c_k]) sigma_{t-1}(k)
/// over the available arms. Exposes the ingredients (mean, stddev, beta,
/// UCB) that the multi-tenant GREEDY scheduler needs for its user-picking
/// phase via the `BanditPolicy` diagnostics surface.
class GpUcbPolicy : public BanditPolicy {
 public:
  /// Validates options against the belief dimension. `belief` must be
  /// non-null.
  static Result<GpUcbPolicy> Create(std::unique_ptr<gp::ArmBelief> belief,
                                    GpUcbOptions options);

  /// Convenience for the dense representation (wraps it on the heap).
  static Result<GpUcbPolicy> Create(gp::DiscreteArmGp belief,
                                    GpUcbOptions options);

  /// Convenience: heap-allocated variants for polymorphic containers.
  static Result<std::unique_ptr<GpUcbPolicy>> CreateUnique(
      std::unique_ptr<gp::ArmBelief> belief, GpUcbOptions options);
  static Result<std::unique_ptr<GpUcbPolicy>> CreateUnique(
      gp::DiscreteArmGp belief, GpUcbOptions options);

  int num_arms() const override { return belief_->num_arms(); }
  Result<int> SelectArm(const std::vector<int>& available, int t) override;
  Status Update(int arm, double reward) override;
  std::string name() const override;

  /// beta_t per the configured schedule. Precondition: t >= 1.
  double Beta(int t) const;

  /// Diagnostics surface (scheduler-facing).
  bool HasConfidenceBounds() const override { return true; }
  double Mean(int arm) const override { return belief_->Mean(arm); }
  double StdDev(int arm) const override { return belief_->StdDev(arm); }
  /// Upper confidence bound B_t(k) = mu(k) + sqrt(beta_t [/ c_k]) sigma(k).
  double Ucb(int arm, int t) const override;
  /// Batched max-UCB over `arms` from one posterior-summary read (what the
  /// in-flight-aware scheduler diagnostics consume each round).
  double MaxUcb(const std::vector<int>& arms, int t) const override;

  double ArmCost(int arm) const;

  const gp::ArmBelief& belief() const { return *belief_; }
  const GpUcbOptions& options() const { return options_; }

 private:
  GpUcbPolicy(std::unique_ptr<gp::ArmBelief> belief, GpUcbOptions options);

  /// The one place the selection index is computed: B(arm) =
  /// mean + sqrt(beta [/ c_arm]) * sqrt(max(0, variance)). Both the batched
  /// SelectArm loop and the scalar Ucb diagnostic delegate here so the two
  /// paths cannot drift apart.
  double UcbFromMarginals(int arm, double beta, double mean,
                          double variance) const;

  std::unique_ptr<gp::ArmBelief> belief_;
  GpUcbOptions options_;
  double max_cost_ = 1.0;  // c* for the theoretical beta schedule
};

}  // namespace easeml::bandit

#endif  // EASEML_BANDIT_GP_UCB_H_
