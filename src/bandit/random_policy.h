#ifndef EASEML_BANDIT_RANDOM_POLICY_H_
#define EASEML_BANDIT_RANDOM_POLICY_H_

#include "bandit/bandit_policy.h"
#include "common/rng.h"

namespace easeml::bandit {

/// Uniform-random arm selection; the weakest sensible baseline.
class RandomPolicy : public BanditPolicy {
 public:
  /// Precondition: num_arms >= 1.
  RandomPolicy(int num_arms, uint64_t seed);

  int num_arms() const override { return num_arms_; }
  Result<int> SelectArm(const std::vector<int>& available, int t) override;
  Status Update(int arm, double reward) override;
  std::string name() const override { return "random"; }

 private:
  int num_arms_;
  Rng rng_;
};

}  // namespace easeml::bandit

#endif  // EASEML_BANDIT_RANDOM_POLICY_H_
