#include "bandit/gp_acquisitions.h"

#include <algorithm>
#include <cmath>

#include "linalg/cholesky.h"

namespace easeml::bandit {

namespace {
constexpr double kInvSqrt2 = 0.7071067811865476;
constexpr double kInvSqrt2Pi = 0.3989422804014327;

Status ValidateOptions(const GpAcquisitionOptions& options, int num_arms) {
  if (options.xi < 0.0) {
    return Status::InvalidArgument("GP acquisition: xi must be >= 0");
  }
  if (options.cost_aware) {
    if (static_cast<int>(options.costs.size()) != num_arms) {
      return Status::InvalidArgument(
          "GP acquisition: cost-aware mode needs one cost per arm");
    }
    for (double c : options.costs) {
      if (c <= 0.0) {
        return Status::InvalidArgument(
            "GP acquisition: costs must be positive");
      }
    }
  }
  return Status::OK();
}

double CostOf(const GpAcquisitionOptions& options, int arm) {
  return options.cost_aware ? options.costs[arm] : 1.0;
}

/// Shared argmax over available arms of an acquisition functor.
template <typename F>
int ArgMaxAcquisition(const std::vector<int>& available, F&& acquisition) {
  int best = available[0];
  double best_value = acquisition(best);
  for (size_t i = 1; i < available.size(); ++i) {
    const double v = acquisition(available[i]);
    if (v > best_value) {
      best_value = v;
      best = available[i];
    }
  }
  return best;
}

}  // namespace

double NormalCdf(double z) { return 0.5 * std::erfc(-z * kInvSqrt2); }

double NormalPdf(double z) {
  return kInvSqrt2Pi * std::exp(-0.5 * z * z);
}

// ---------------------------------------------------------------- GP-EI --

Result<GpEiPolicy> GpEiPolicy::Create(gp::DiscreteArmGp belief,
                                      GpAcquisitionOptions options) {
  EASEML_RETURN_NOT_OK(ValidateOptions(options, belief.num_arms()));
  return GpEiPolicy(std::move(belief), std::move(options));
}

double GpEiPolicy::Acquisition(int arm) const {
  const double mu = belief_.Mean(arm);
  const double sigma = belief_.StdDev(arm);
  const double incumbent =
      has_observation_ ? best_observed_ + options_.xi : options_.xi;
  double ei;
  if (sigma < 1e-12) {
    ei = std::max(0.0, mu - incumbent);
  } else {
    const double z = (mu - incumbent) / sigma;
    ei = (mu - incumbent) * NormalCdf(z) + sigma * NormalPdf(z);
  }
  return ei / CostOf(options_, arm);
}

Result<int> GpEiPolicy::SelectArm(const std::vector<int>& available, int t) {
  (void)t;
  EASEML_RETURN_NOT_OK(ValidateAvailable(available));
  return ArgMaxAcquisition(available,
                           [this](int arm) { return Acquisition(arm); });
}

Status GpEiPolicy::Update(int arm, double reward) {
  EASEML_RETURN_NOT_OK(belief_.Observe(arm, reward));
  best_observed_ =
      has_observation_ ? std::max(best_observed_, reward) : reward;
  has_observation_ = true;
  return Status::OK();
}

// ---------------------------------------------------------------- GP-PI --

Result<GpPiPolicy> GpPiPolicy::Create(gp::DiscreteArmGp belief,
                                      GpAcquisitionOptions options) {
  EASEML_RETURN_NOT_OK(ValidateOptions(options, belief.num_arms()));
  return GpPiPolicy(std::move(belief), std::move(options));
}

double GpPiPolicy::Acquisition(int arm) const {
  const double mu = belief_.Mean(arm);
  const double sigma = belief_.StdDev(arm);
  const double incumbent =
      has_observation_ ? best_observed_ + options_.xi : options_.xi;
  double pi;
  if (sigma < 1e-12) {
    pi = mu > incumbent ? 1.0 : 0.0;
  } else {
    pi = NormalCdf((mu - incumbent) / sigma);
  }
  return pi / CostOf(options_, arm);
}

Result<int> GpPiPolicy::SelectArm(const std::vector<int>& available, int t) {
  (void)t;
  EASEML_RETURN_NOT_OK(ValidateAvailable(available));
  return ArgMaxAcquisition(available,
                           [this](int arm) { return Acquisition(arm); });
}

Status GpPiPolicy::Update(int arm, double reward) {
  EASEML_RETURN_NOT_OK(belief_.Observe(arm, reward));
  best_observed_ =
      has_observation_ ? std::max(best_observed_, reward) : reward;
  has_observation_ = true;
  return Status::OK();
}

// ---------------------------------------------------------- Thompson -----

Result<GpThompsonPolicy> GpThompsonPolicy::Create(
    gp::DiscreteArmGp belief, GpAcquisitionOptions options, uint64_t seed) {
  EASEML_RETURN_NOT_OK(ValidateOptions(options, belief.num_arms()));
  return GpThompsonPolicy(std::move(belief), std::move(options), seed);
}

Result<int> GpThompsonPolicy::SelectArm(const std::vector<int>& available,
                                        int t) {
  (void)t;
  EASEML_RETURN_NOT_OK(ValidateAvailable(available));
  // One joint posterior sample theta ~ N(mu, Sigma).
  const int k = belief_.num_arms();
  linalg::Matrix cov = belief_.covariance();
  auto chol = linalg::Cholesky::Compute(cov, 1e-9);
  if (!chol.ok()) {
    // Nearly singular posterior (late in the campaign): fall back to
    // marginal sampling, which preserves the Thompson exploration property.
    int best = available[0];
    double best_value = -1e300;
    for (int arm : available) {
      const double draw =
          rng_.Normal(belief_.Mean(arm), belief_.StdDev(arm)) /
          CostOf(options_, arm);
      if (draw > best_value) {
        best_value = draw;
        best = arm;
      }
    }
    return best;
  }
  std::vector<double> lower(static_cast<size_t>(k) * k, 0.0);
  for (int i = 0; i < k; ++i) {
    for (int j = 0; j <= i; ++j) lower[i * k + j] = chol->At(i, j);
  }
  const std::vector<double> theta =
      rng_.MultivariateNormal(belief_.mean(), lower, k);
  return ArgMaxAcquisition(available, [&](int arm) {
    return theta[arm] / CostOf(options_, arm);
  });
}

Status GpThompsonPolicy::Update(int arm, double reward) {
  return belief_.Observe(arm, reward);
}

}  // namespace easeml::bandit
