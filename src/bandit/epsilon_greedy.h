#ifndef EASEML_BANDIT_EPSILON_GREEDY_H_
#define EASEML_BANDIT_EPSILON_GREEDY_H_

#include <memory>
#include <vector>

#include "bandit/bandit_policy.h"
#include "common/rng.h"

namespace easeml::bandit {

/// Epsilon-greedy baseline: with probability epsilon explore a uniformly
/// random available arm, otherwise exploit the best empirical mean.
/// Unplayed arms are preferred during the initial sweep (their empirical
/// mean is undefined).
class EpsilonGreedyPolicy : public BanditPolicy {
 public:
  /// Precondition: num_arms >= 1, epsilon in [0, 1].
  EpsilonGreedyPolicy(int num_arms, double epsilon, uint64_t seed);

  int num_arms() const override { return static_cast<int>(counts_.size()); }
  Result<int> SelectArm(const std::vector<int>& available, int t) override;
  Status Update(int arm, double reward) override;
  std::string name() const override { return "epsilon-greedy"; }

 private:
  std::vector<int> counts_;
  std::vector<double> sums_;
  double epsilon_;
  Rng rng_;
};

}  // namespace easeml::bandit

#endif  // EASEML_BANDIT_EPSILON_GREEDY_H_
