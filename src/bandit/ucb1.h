#ifndef EASEML_BANDIT_UCB1_H_
#define EASEML_BANDIT_UCB1_H_

#include <vector>

#include "bandit/bandit_policy.h"

namespace easeml::bandit {

/// Classic UCB1 (Auer et al.): index = mean_k + sqrt(2 ln t / n_k).
///
/// The dependence-oblivious baseline discussed in Section 3.1 ("the UCB
/// algorithm must play all arms once or twice in the initial step"): unplayed
/// arms are always preferred, so the first K rounds sweep all arms.
class Ucb1Policy : public BanditPolicy {
 public:
  /// Precondition: num_arms >= 1.
  explicit Ucb1Policy(int num_arms);

  int num_arms() const override { return static_cast<int>(counts_.size()); }
  Result<int> SelectArm(const std::vector<int>& available, int t) override;
  Status Update(int arm, double reward) override;
  std::string name() const override { return "ucb1"; }

  int Count(int arm) const { return counts_[arm]; }
  double EmpiricalMean(int arm) const;

 private:
  std::vector<int> counts_;
  std::vector<double> sums_;
};

}  // namespace easeml::bandit

#endif  // EASEML_BANDIT_UCB1_H_
