#include "bandit/epsilon_greedy.h"

#include "common/logging.h"

namespace easeml::bandit {

EpsilonGreedyPolicy::EpsilonGreedyPolicy(int num_arms, double epsilon,
                                         uint64_t seed)
    : counts_(num_arms, 0), sums_(num_arms, 0.0), epsilon_(epsilon),
      rng_(seed) {
  EASEML_CHECK(num_arms >= 1);
  EASEML_CHECK(epsilon >= 0.0 && epsilon <= 1.0);
}

Result<int> EpsilonGreedyPolicy::SelectArm(const std::vector<int>& available,
                                           int t) {
  (void)t;
  EASEML_RETURN_NOT_OK(ValidateAvailable(available));
  for (int a : available) {
    if (counts_[a] == 0) return a;
  }
  if (rng_.Bernoulli(epsilon_)) {
    return available[rng_.UniformInt(0,
                                     static_cast<int>(available.size()) - 1)];
  }
  int best = available[0];
  double best_mean = sums_[best] / counts_[best];
  for (int a : available) {
    const double m = sums_[a] / counts_[a];
    if (m > best_mean) {
      best_mean = m;
      best = a;
    }
  }
  return best;
}

Status EpsilonGreedyPolicy::Update(int arm, double reward) {
  if (arm < 0 || arm >= num_arms()) {
    return Status::OutOfRange("EpsilonGreedy::Update: arm out of range");
  }
  ++counts_[arm];
  sums_[arm] += reward;
  return Status::OK();
}

}  // namespace easeml::bandit
