#include "bandit/fixed_order.h"

#include <algorithm>
#include <numeric>

namespace easeml::bandit {

Result<FixedOrderPolicy> FixedOrderPolicy::Create(std::vector<int> order,
                                                  std::string name) {
  const int k = static_cast<int>(order.size());
  if (k == 0) {
    return Status::InvalidArgument("FixedOrderPolicy: empty order");
  }
  std::vector<bool> seen(k, false);
  for (int a : order) {
    if (a < 0 || a >= k || seen[a]) {
      return Status::InvalidArgument(
          "FixedOrderPolicy: order is not a permutation of [0, K)");
    }
    seen[a] = true;
  }
  return FixedOrderPolicy(std::move(order), std::move(name));
}

Result<int> FixedOrderPolicy::SelectArm(const std::vector<int>& available,
                                        int t) {
  (void)t;
  EASEML_RETURN_NOT_OK(ValidateAvailable(available));
  for (int preferred : order_) {
    for (int a : available) {
      if (a == preferred) return a;
    }
  }
  return Status::Internal("FixedOrderPolicy: no available arm in order");
}

Status FixedOrderPolicy::Update(int arm, double reward) {
  (void)reward;
  if (arm < 0 || arm >= num_arms()) {
    return Status::OutOfRange("FixedOrderPolicy::Update: arm out of range");
  }
  return Status::OK();
}

std::vector<int> OrderByScoreDescending(const std::vector<double>& score) {
  std::vector<int> order(score.size());
  std::iota(order.begin(), order.end(), 0);
  std::stable_sort(order.begin(), order.end(), [&](int a, int b) {
    return score[a] > score[b];
  });
  return order;
}

}  // namespace easeml::bandit
