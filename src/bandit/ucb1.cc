#include "bandit/ucb1.h"

#include <cmath>

#include "common/logging.h"

namespace easeml::bandit {

Ucb1Policy::Ucb1Policy(int num_arms)
    : counts_(num_arms, 0), sums_(num_arms, 0.0) {
  EASEML_CHECK(num_arms >= 1);
}

double Ucb1Policy::EmpiricalMean(int arm) const {
  if (counts_[arm] == 0) return 0.0;
  return sums_[arm] / counts_[arm];
}

Result<int> Ucb1Policy::SelectArm(const std::vector<int>& available, int t) {
  EASEML_RETURN_NOT_OK(ValidateAvailable(available));
  // Unplayed arms first.
  for (int a : available) {
    if (counts_[a] == 0) return a;
  }
  const double log_t = std::log(std::max(2, t));
  int best = available[0];
  double best_index = -1e300;
  for (int a : available) {
    const double index =
        EmpiricalMean(a) + std::sqrt(2.0 * log_t / counts_[a]);
    if (index > best_index) {
      best_index = index;
      best = a;
    }
  }
  return best;
}

Status Ucb1Policy::Update(int arm, double reward) {
  if (arm < 0 || arm >= num_arms()) {
    return Status::OutOfRange("Ucb1::Update: arm out of range");
  }
  ++counts_[arm];
  sums_[arm] += reward;
  return Status::OK();
}

}  // namespace easeml::bandit
