#include "bandit/bandit_policy.h"

namespace easeml::bandit {

Status BanditPolicy::ValidateAvailable(
    const std::vector<int>& available) const {
  if (available.empty()) {
    return Status::InvalidArgument("SelectArm: no available arms");
  }
  for (int a : available) {
    if (a < 0 || a >= num_arms()) {
      return Status::OutOfRange("SelectArm: arm index " + std::to_string(a) +
                                " out of range");
    }
  }
  return Status::OK();
}

}  // namespace easeml::bandit
