#include "bandit/bandit_policy.h"

#include <algorithm>
#include <limits>

namespace easeml::bandit {

double BanditPolicy::Mean(int arm) const {
  (void)arm;
  return 0.0;
}

double BanditPolicy::StdDev(int arm) const {
  (void)arm;
  return 0.0;
}

double BanditPolicy::Ucb(int arm, int t) const {
  (void)arm;
  (void)t;
  return 1.0;
}

double BanditPolicy::MaxUcb(const std::vector<int>& arms, int t) const {
  double best = -std::numeric_limits<double>::infinity();
  for (int a : arms) best = std::max(best, Ucb(a, t));
  return best;
}

Status BanditPolicy::ValidateAvailable(
    const std::vector<int>& available) const {
  if (available.empty()) {
    return Status::InvalidArgument("SelectArm: no available arms");
  }
  for (int a : available) {
    if (a < 0 || a >= num_arms()) {
      return Status::OutOfRange("SelectArm: arm index " + std::to_string(a) +
                                " out of range");
    }
  }
  return Status::OK();
}

}  // namespace easeml::bandit
