#ifndef EASEML_BANDIT_BANDIT_POLICY_H_
#define EASEML_BANDIT_BANDIT_POLICY_H_

#include <string>
#include <vector>

#include "common/status.h"

namespace easeml::bandit {

/// Model-picking policy of a single tenant.
///
/// Arms are candidate models. In ease.ml's model-selection setting each arm
/// is evaluated at most once per user (training a model twice on the same
/// data yields the same measurement), so `SelectArm` receives the set of
/// still-available arms and must choose among them.
///
/// Protocol per round: `SelectArm(available, t)` then `Update(arm, reward)`.
/// `t` is the user-local round counter, starting at 1.
class BanditPolicy {
 public:
  virtual ~BanditPolicy() = default;

  /// Total number of arms K.
  virtual int num_arms() const = 0;

  /// Chooses the next arm among `available` at round `t` (1-based).
  /// Fails with InvalidArgument if `available` is empty or contains an
  /// out-of-range index.
  virtual Result<int> SelectArm(const std::vector<int>& available, int t) = 0;

  /// Incorporates the observed reward of `arm`.
  virtual Status Update(int arm, double reward) = 0;

  /// Policy name for reports (e.g. "gp-ucb").
  virtual std::string name() const = 0;

  // --- Diagnostics surface -------------------------------------------------
  //
  // The multi-tenant schedulers (GREEDY's candidate set, HYBRID's greedy
  // phase, UserState's sigma~ recurrence) read per-arm confidence bounds
  // from the tenant's policy. Belief-backed policies (GP-UCB) override
  // these; heuristic baselines inherit the trivially correct defaults —
  // accuracies live in [0, 1], so 1 is always a valid upper bound.

  /// True when the policy maintains a posterior belief whose confidence
  /// bounds are informative (required by GREEDY/HYBRID scheduling).
  virtual bool HasConfidenceBounds() const { return false; }

  /// Posterior mean estimate of `arm`; 0 without a belief.
  virtual double Mean(int arm) const;

  /// Posterior standard deviation of `arm`; 0 without a belief.
  virtual double StdDev(int arm) const;

  /// Upper confidence bound B_t(arm) at round `t`; 1 without a belief.
  virtual double Ucb(int arm, int t) const;

  /// Largest B_t over `arms` (the caller passes the arms it considers
  /// live — e.g. neither played nor charged to an in-flight device);
  /// -infinity when `arms` is empty. Belief-backed policies override this
  /// with a single batched posterior read instead of |arms| scalar queries.
  virtual double MaxUcb(const std::vector<int>& arms, int t) const;

 protected:
  /// Shared argument validation for SelectArm implementations.
  Status ValidateAvailable(const std::vector<int>& available) const;
};

}  // namespace easeml::bandit

#endif  // EASEML_BANDIT_BANDIT_POLICY_H_
