#include "linalg/matrix.h"

#include <algorithm>
#include <cmath>
#include <iomanip>
#include <limits>
#include <sstream>

#include "common/logging.h"

namespace easeml::linalg {

Matrix::Matrix(int rows, int cols)
    : rows_(rows), cols_(cols),
      data_(static_cast<size_t>(rows) * cols, 0.0) {
  EASEML_CHECK(rows >= 0 && cols >= 0);
}

Matrix::Matrix(int rows, int cols, double fill)
    : rows_(rows), cols_(cols),
      data_(static_cast<size_t>(rows) * cols, fill) {
  EASEML_CHECK(rows >= 0 && cols >= 0);
}

Result<Matrix> Matrix::FromRowMajor(int rows, int cols,
                                    std::vector<double> data) {
  if (rows < 0 || cols < 0 ||
      data.size() != static_cast<size_t>(rows) * cols) {
    return Status::InvalidArgument("FromRowMajor: size mismatch");
  }
  Matrix m;
  m.rows_ = rows;
  m.cols_ = cols;
  m.data_ = std::move(data);
  return m;
}

Matrix Matrix::Identity(int n) {
  Matrix m(n, n);
  for (int i = 0; i < n; ++i) m(i, i) = 1.0;
  return m;
}

std::vector<double> Matrix::Row(int r) const {
  EASEML_DCHECK(r >= 0 && r < rows_);
  return std::vector<double>(data_.begin() + static_cast<size_t>(r) * cols_,
                             data_.begin() + static_cast<size_t>(r + 1) * cols_);
}

std::vector<double> Matrix::Col(int c) const {
  EASEML_DCHECK(c >= 0 && c < cols_);
  std::vector<double> out(rows_);
  for (int r = 0; r < rows_; ++r) out[r] = (*this)(r, c);
  return out;
}

Matrix Matrix::GatherRows(const std::vector<int>& rows) const {
  Matrix out(static_cast<int>(rows.size()), cols_);
  for (size_t i = 0; i < rows.size(); ++i) {
    const int r = rows[i];
    EASEML_DCHECK(r >= 0 && r < rows_);
    std::copy(data_.begin() + static_cast<size_t>(r) * cols_,
              data_.begin() + static_cast<size_t>(r + 1) * cols_,
              out.data_.begin() + i * cols_);
  }
  return out;
}

Matrix Matrix::GatherCols(const std::vector<int>& cols) const {
  Matrix out(rows_, static_cast<int>(cols.size()));
  for (int r = 0; r < rows_; ++r) {
    for (size_t j = 0; j < cols.size(); ++j) {
      const int c = cols[j];
      EASEML_DCHECK(c >= 0 && c < cols_);
      out(r, static_cast<int>(j)) = (*this)(r, c);
    }
  }
  return out;
}

Matrix Matrix::Add(const Matrix& other) const {
  EASEML_CHECK(rows_ == other.rows_ && cols_ == other.cols_);
  Matrix out(rows_, cols_);
  for (size_t i = 0; i < data_.size(); ++i) {
    out.data_[i] = data_[i] + other.data_[i];
  }
  return out;
}

Matrix Matrix::Sub(const Matrix& other) const {
  EASEML_CHECK(rows_ == other.rows_ && cols_ == other.cols_);
  Matrix out(rows_, cols_);
  for (size_t i = 0; i < data_.size(); ++i) {
    out.data_[i] = data_[i] - other.data_[i];
  }
  return out;
}

Matrix Matrix::Scale(double s) const {
  Matrix out(rows_, cols_);
  for (size_t i = 0; i < data_.size(); ++i) out.data_[i] = data_[i] * s;
  return out;
}

Matrix Matrix::MatMul(const Matrix& other) const {
  EASEML_CHECK(cols_ == other.rows_);
  Matrix out(rows_, other.cols_);
  // i-k-j loop order: streams over contiguous rows of both operands.
  for (int i = 0; i < rows_; ++i) {
    for (int k = 0; k < cols_; ++k) {
      const double aik = (*this)(i, k);
      if (aik == 0.0) continue;
      for (int j = 0; j < other.cols_; ++j) {
        out(i, j) += aik * other(k, j);
      }
    }
  }
  return out;
}

std::vector<double> Matrix::MatVec(const std::vector<double>& v) const {
  EASEML_CHECK(static_cast<int>(v.size()) == cols_);
  std::vector<double> out(rows_, 0.0);
  for (int i = 0; i < rows_; ++i) {
    double acc = 0.0;
    for (int j = 0; j < cols_; ++j) acc += (*this)(i, j) * v[j];
    out[i] = acc;
  }
  return out;
}

Matrix Matrix::Transpose() const {
  Matrix out(cols_, rows_);
  for (int i = 0; i < rows_; ++i) {
    for (int j = 0; j < cols_; ++j) out(j, i) = (*this)(i, j);
  }
  return out;
}

void Matrix::AddToDiagonal(double v) {
  EASEML_CHECK(rows_ == cols_);
  for (int i = 0; i < rows_; ++i) (*this)(i, i) += v;
}

double Matrix::MaxAbsDiff(const Matrix& other) const {
  if (rows_ != other.rows_ || cols_ != other.cols_) {
    return std::numeric_limits<double>::infinity();
  }
  double worst = 0.0;
  for (size_t i = 0; i < data_.size(); ++i) {
    worst = std::max(worst, std::fabs(data_[i] - other.data_[i]));
  }
  return worst;
}

bool Matrix::IsSymmetric(double tol) const {
  if (rows_ != cols_) return false;
  for (int i = 0; i < rows_; ++i) {
    for (int j = i + 1; j < cols_; ++j) {
      if (std::fabs((*this)(i, j) - (*this)(j, i)) > tol) return false;
    }
  }
  return true;
}

std::string Matrix::ToString(int max_rows, int max_cols) const {
  std::ostringstream os;
  os << "Matrix " << rows_ << "x" << cols_ << "\n";
  const int r_show = std::min(rows_, max_rows);
  const int c_show = std::min(cols_, max_cols);
  os << std::setprecision(5);
  for (int i = 0; i < r_show; ++i) {
    os << "  [";
    for (int j = 0; j < c_show; ++j) {
      if (j > 0) os << ", ";
      os << (*this)(i, j);
    }
    if (c_show < cols_) os << ", ...";
    os << "]\n";
  }
  if (r_show < rows_) os << "  ...\n";
  return os.str();
}

}  // namespace easeml::linalg
