#include "linalg/vector_ops.h"

#include <cmath>

#include "common/logging.h"

namespace easeml::linalg {

double Dot(const std::vector<double>& a, const std::vector<double>& b) {
  EASEML_DCHECK(a.size() == b.size());
  double acc = 0.0;
  for (size_t i = 0; i < a.size(); ++i) acc += a[i] * b[i];
  return acc;
}

double Norm2(const std::vector<double>& v) { return std::sqrt(Dot(v, v)); }

double SquaredDistance(const std::vector<double>& a,
                       const std::vector<double>& b) {
  EASEML_DCHECK(a.size() == b.size());
  double acc = 0.0;
  for (size_t i = 0; i < a.size(); ++i) {
    const double d = a[i] - b[i];
    acc += d * d;
  }
  return acc;
}

std::vector<double> AddVec(const std::vector<double>& a,
                           const std::vector<double>& b) {
  EASEML_DCHECK(a.size() == b.size());
  std::vector<double> out(a.size());
  for (size_t i = 0; i < a.size(); ++i) out[i] = a[i] + b[i];
  return out;
}

std::vector<double> SubVec(const std::vector<double>& a,
                           const std::vector<double>& b) {
  EASEML_DCHECK(a.size() == b.size());
  std::vector<double> out(a.size());
  for (size_t i = 0; i < a.size(); ++i) out[i] = a[i] - b[i];
  return out;
}

std::vector<double> ScaleVec(const std::vector<double>& v, double s) {
  std::vector<double> out(v.size());
  for (size_t i = 0; i < v.size(); ++i) out[i] = v[i] * s;
  return out;
}

void Axpy(double s, const std::vector<double>& b, std::vector<double>& a) {
  EASEML_DCHECK(a.size() == b.size());
  for (size_t i = 0; i < a.size(); ++i) a[i] += s * b[i];
}

int ArgMax(const std::vector<double>& v) {
  if (v.empty()) return -1;
  int best = 0;
  for (int i = 1; i < static_cast<int>(v.size()); ++i) {
    if (v[i] > v[best]) best = i;
  }
  return best;
}

int ArgMin(const std::vector<double>& v) {
  if (v.empty()) return -1;
  int best = 0;
  for (int i = 1; i < static_cast<int>(v.size()); ++i) {
    if (v[i] < v[best]) best = i;
  }
  return best;
}

}  // namespace easeml::linalg
