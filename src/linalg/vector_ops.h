#ifndef EASEML_LINALG_VECTOR_OPS_H_
#define EASEML_LINALG_VECTOR_OPS_H_

#include <vector>

namespace easeml::linalg {

/// Inner product. Precondition: equal lengths.
double Dot(const std::vector<double>& a, const std::vector<double>& b);

/// Euclidean norm.
double Norm2(const std::vector<double>& v);

/// Squared Euclidean distance between two vectors of equal length.
double SquaredDistance(const std::vector<double>& a,
                       const std::vector<double>& b);

/// a + b elementwise. Precondition: equal lengths.
std::vector<double> AddVec(const std::vector<double>& a,
                           const std::vector<double>& b);

/// a - b elementwise. Precondition: equal lengths.
std::vector<double> SubVec(const std::vector<double>& a,
                           const std::vector<double>& b);

/// s * v elementwise.
std::vector<double> ScaleVec(const std::vector<double>& v, double s);

/// In-place a += s * b (axpy). Precondition: equal lengths.
void Axpy(double s, const std::vector<double>& b, std::vector<double>& a);

/// Index of the maximum element; -1 for empty input. Ties break to the
/// lowest index (deterministic arm selection).
int ArgMax(const std::vector<double>& v);

/// Index of the minimum element; -1 for empty input.
int ArgMin(const std::vector<double>& v);

}  // namespace easeml::linalg

#endif  // EASEML_LINALG_VECTOR_OPS_H_
