#ifndef EASEML_LINALG_CHOLESKY_H_
#define EASEML_LINALG_CHOLESKY_H_

#include <vector>

#include "common/status.h"
#include "linalg/matrix.h"

namespace easeml::linalg {

/// Lower-triangular Cholesky factor L with A = L L^T.
///
/// Supports incremental extension by one row/column (`Append`), which the
/// Gaussian-process layer uses to grow the observed-arm covariance one
/// observation at a time in O(t^2) instead of refactorizing in O(t^3).
class Cholesky {
 public:
  Cholesky() = default;

  /// Factorizes a symmetric positive-definite matrix. Adds `jitter` to the
  /// diagonal before factorizing (0 disables). Fails with InvalidArgument if
  /// the matrix is not square or not positive definite.
  static Result<Cholesky> Compute(const Matrix& a, double jitter = 0.0);

  /// Current dimension t.
  int dim() const { return dim_; }

  /// Entry L(i, j) for j <= i.
  double At(int i, int j) const { return l_[Index(i, j)]; }

  /// Extends the factorization of A to that of
  ///   [A   b]
  ///   [b^T d]
  /// where `b` has length dim() and `d` is the new diagonal entry.
  /// Fails if the extended matrix is not positive definite.
  Status Append(const std::vector<double>& b, double d);

  /// Solves L y = rhs (forward substitution).
  std::vector<double> SolveLower(const std::vector<double>& rhs) const;

  /// Solves L^T x = rhs (backward substitution).
  std::vector<double> SolveUpper(const std::vector<double>& rhs) const;

  /// Multi-RHS forward substitution: solves L Y = RHS for a dim() x m
  /// right-hand-side matrix (each column an independent system). One pass
  /// over L serves all m systems, vectorizing across the row.
  Matrix SolveLower(const Matrix& rhs) const;

  /// Multi-RHS backward substitution: solves L^T X = RHS (dim() x m).
  Matrix SolveLowerTranspose(const Matrix& rhs) const;

  /// Multi-RHS SPD solve: A X = RHS where A = L L^T.
  Matrix Solve(const Matrix& rhs) const;

  /// Solves A x = rhs where A = L L^T.
  std::vector<double> Solve(const std::vector<double>& rhs) const;

  /// log |A| = 2 * sum_i log L(i, i).
  double LogDet() const;

  /// Reconstructs A = L L^T (for testing).
  Matrix Reconstruct() const;

 private:
  static size_t Index(int i, int j) {
    // Packed lower-triangular storage: row i starts at i*(i+1)/2.
    return static_cast<size_t>(i) * (i + 1) / 2 + j;
  }

  int dim_ = 0;
  std::vector<double> l_;  // packed rows of the lower triangle
};

/// Solves the linear system A x = b for symmetric positive-definite A via
/// Cholesky. Convenience wrapper for one-shot solves.
Result<std::vector<double>> SolveSpd(const Matrix& a,
                                     const std::vector<double>& b,
                                     double jitter = 0.0);

}  // namespace easeml::linalg

#endif  // EASEML_LINALG_CHOLESKY_H_
