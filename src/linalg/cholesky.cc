#include "linalg/cholesky.h"

#include <cmath>

#include "common/logging.h"

namespace easeml::linalg {

Result<Cholesky> Cholesky::Compute(const Matrix& a, double jitter) {
  if (a.rows() != a.cols()) {
    return Status::InvalidArgument("Cholesky: matrix not square");
  }
  const int n = a.rows();
  Cholesky chol;
  chol.dim_ = n;
  chol.l_.assign(static_cast<size_t>(n) * (n + 1) / 2, 0.0);
  for (int i = 0; i < n; ++i) {
    for (int j = 0; j <= i; ++j) {
      double sum = a(i, j);
      if (i == j) sum += jitter;
      for (int k = 0; k < j; ++k) {
        sum -= chol.l_[Index(i, k)] * chol.l_[Index(j, k)];
      }
      if (i == j) {
        if (sum <= 0.0) {
          return Status::InvalidArgument(
              "Cholesky: matrix not positive definite at pivot " +
              std::to_string(i));
        }
        chol.l_[Index(i, i)] = std::sqrt(sum);
      } else {
        chol.l_[Index(i, j)] = sum / chol.l_[Index(j, j)];
      }
    }
  }
  return chol;
}

Status Cholesky::Append(const std::vector<double>& b, double d) {
  if (static_cast<int>(b.size()) != dim_) {
    return Status::InvalidArgument("Cholesky::Append: wrong vector length");
  }
  // New row: l = L^{-1} b, pivot = sqrt(d - l.l).
  std::vector<double> l = SolveLower(b);
  double pivot = d;
  for (double v : l) pivot -= v * v;
  if (pivot <= 0.0) {
    return Status::InvalidArgument(
        "Cholesky::Append: extension not positive definite");
  }
  l_.insert(l_.end(), l.begin(), l.end());
  l_.push_back(std::sqrt(pivot));
  ++dim_;
  return Status::OK();
}

std::vector<double> Cholesky::SolveLower(const std::vector<double>& rhs) const {
  EASEML_CHECK(static_cast<int>(rhs.size()) == dim_);
  std::vector<double> y(dim_);
  for (int i = 0; i < dim_; ++i) {
    double sum = rhs[i];
    for (int j = 0; j < i; ++j) sum -= l_[Index(i, j)] * y[j];
    y[i] = sum / l_[Index(i, i)];
  }
  return y;
}

std::vector<double> Cholesky::SolveUpper(const std::vector<double>& rhs) const {
  EASEML_CHECK(static_cast<int>(rhs.size()) == dim_);
  std::vector<double> x(dim_);
  for (int i = dim_ - 1; i >= 0; --i) {
    double sum = rhs[i];
    for (int j = i + 1; j < dim_; ++j) sum -= l_[Index(j, i)] * x[j];
    x[i] = sum / l_[Index(i, i)];
  }
  return x;
}

std::vector<double> Cholesky::Solve(const std::vector<double>& rhs) const {
  return SolveUpper(SolveLower(rhs));
}

Matrix Cholesky::SolveLower(const Matrix& rhs) const {
  EASEML_CHECK(rhs.rows() == dim_);
  const int m = rhs.cols();
  Matrix y = rhs;
  for (int i = 0; i < dim_; ++i) {
    for (int j = 0; j < i; ++j) {
      const double lij = l_[Index(i, j)];
      if (lij == 0.0) continue;
      for (int c = 0; c < m; ++c) y(i, c) -= lij * y(j, c);
    }
    const double inv = 1.0 / l_[Index(i, i)];
    for (int c = 0; c < m; ++c) y(i, c) *= inv;
  }
  return y;
}

Matrix Cholesky::SolveLowerTranspose(const Matrix& rhs) const {
  EASEML_CHECK(rhs.rows() == dim_);
  const int m = rhs.cols();
  Matrix x = rhs;
  for (int i = dim_ - 1; i >= 0; --i) {
    for (int j = i + 1; j < dim_; ++j) {
      const double lji = l_[Index(j, i)];
      if (lji == 0.0) continue;
      for (int c = 0; c < m; ++c) x(i, c) -= lji * x(j, c);
    }
    const double inv = 1.0 / l_[Index(i, i)];
    for (int c = 0; c < m; ++c) x(i, c) *= inv;
  }
  return x;
}

Matrix Cholesky::Solve(const Matrix& rhs) const {
  return SolveLowerTranspose(SolveLower(rhs));
}

double Cholesky::LogDet() const {
  double acc = 0.0;
  for (int i = 0; i < dim_; ++i) acc += std::log(l_[Index(i, i)]);
  return 2.0 * acc;
}

Matrix Cholesky::Reconstruct() const {
  Matrix a(dim_, dim_);
  for (int i = 0; i < dim_; ++i) {
    for (int j = 0; j < dim_; ++j) {
      double sum = 0.0;
      const int kmax = std::min(i, j);
      for (int k = 0; k <= kmax; ++k) {
        sum += l_[Index(i, k)] * l_[Index(j, k)];
      }
      a(i, j) = sum;
    }
  }
  return a;
}

Result<std::vector<double>> SolveSpd(const Matrix& a,
                                     const std::vector<double>& b,
                                     double jitter) {
  EASEML_ASSIGN_OR_RETURN(Cholesky chol, Cholesky::Compute(a, jitter));
  if (static_cast<int>(b.size()) != a.rows()) {
    return Status::InvalidArgument("SolveSpd: rhs length mismatch");
  }
  return chol.Solve(b);
}

}  // namespace easeml::linalg
