#ifndef EASEML_LINALG_MATRIX_H_
#define EASEML_LINALG_MATRIX_H_

#include <cstddef>
#include <string>
#include <vector>

#include "common/status.h"

namespace easeml::linalg {

/// Dense row-major matrix of doubles.
///
/// Sized for the model-selection workload: covariance matrices over at most a
/// few hundred arms. Operations are straightforward O(n^3) kernels; no
/// blocking or SIMD beyond what the compiler auto-vectorizes, which is ample
/// at this scale.
class Matrix {
 public:
  /// Empty 0x0 matrix.
  Matrix() : rows_(0), cols_(0) {}

  /// Zero-initialized rows x cols matrix.
  Matrix(int rows, int cols);

  /// Matrix filled with `fill`.
  Matrix(int rows, int cols, double fill);

  /// Builds from row-major data. Precondition: data.size() == rows*cols.
  static Result<Matrix> FromRowMajor(int rows, int cols,
                                     std::vector<double> data);

  /// Identity matrix of dimension n.
  static Matrix Identity(int n);

  int rows() const { return rows_; }
  int cols() const { return cols_; }
  bool empty() const { return rows_ == 0 || cols_ == 0; }

  double& operator()(int r, int c) { return data_[r * cols_ + c]; }
  double operator()(int r, int c) const { return data_[r * cols_ + c]; }

  const std::vector<double>& data() const { return data_; }
  std::vector<double>& mutable_data() { return data_; }

  /// Returns the r-th row as a vector.
  std::vector<double> Row(int r) const;

  /// Returns the c-th column as a vector.
  std::vector<double> Col(int c) const;

  /// Gathers the given rows (with multiplicity, any order) into a new
  /// rows.size() x cols() matrix. Precondition: indices in [0, rows()).
  Matrix GatherRows(const std::vector<int>& rows) const;

  /// Gathers the given columns into a new rows() x cols.size() matrix.
  /// Precondition: indices in [0, cols()).
  Matrix GatherCols(const std::vector<int>& cols) const;

  /// this + other. Precondition: same shape.
  Matrix Add(const Matrix& other) const;

  /// this - other. Precondition: same shape.
  Matrix Sub(const Matrix& other) const;

  /// Scalar multiple.
  Matrix Scale(double s) const;

  /// Matrix product this * other. Precondition: cols() == other.rows().
  Matrix MatMul(const Matrix& other) const;

  /// Matrix-vector product. Precondition: v.size() == cols().
  std::vector<double> MatVec(const std::vector<double>& v) const;

  /// Transpose.
  Matrix Transpose() const;

  /// Adds `v` to every diagonal entry (in place). Precondition: square.
  void AddToDiagonal(double v);

  /// Maximum absolute entry difference against `other`; infinity when shapes
  /// differ. Used by tests.
  double MaxAbsDiff(const Matrix& other) const;

  /// True if the matrix equals its transpose within `tol`.
  bool IsSymmetric(double tol = 1e-12) const;

  /// Human-readable rendering for diagnostics.
  std::string ToString(int max_rows = 8, int max_cols = 8) const;

 private:
  int rows_;
  int cols_;
  std::vector<double> data_;
};

}  // namespace easeml::linalg

#endif  // EASEML_LINALG_MATRIX_H_
