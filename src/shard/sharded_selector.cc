#include "shard/sharded_selector.h"

#include <algorithm>
#include <limits>
#include <utility>

#include "common/reduction_tree.h"

namespace easeml::shard {

namespace {
constexpr int kNone = std::numeric_limits<int>::max();
}  // namespace

ShardedMultiTenantSelector::ShardedMultiTenantSelector(
    core::MultiTenantSelector&& base, int num_shards)
    : core::MultiTenantSelector(std::move(base)),
      map_(num_shards),
      pool_(num_shards) {
  // The base Create built a 1-shard index when the option is on; swap in
  // the N-shard instance before any tenant exists so leaves land on their
  // owning shard's tree from the start.
  if (candidate_index() != nullptr) ResetIndex(num_shards);
}

Result<std::unique_ptr<ShardedMultiTenantSelector>>
ShardedMultiTenantSelector::Create(const core::SelectorOptions& options) {
  EASEML_ASSIGN_OR_RETURN(core::MultiTenantSelector base,
                          core::MultiTenantSelector::Create(options));
  return std::unique_ptr<ShardedMultiTenantSelector>(
      new ShardedMultiTenantSelector(std::move(base), options.num_shards));
}

template <typename Fn>
auto ShardedMultiTenantSelector::RouteToOwner(int tenant, Fn fn)
    -> decltype(fn()) {
  const int owner = map_.shard_of(tenant);
  if (owner < 0) {
    return Status::Internal("shard: tenant " + std::to_string(tenant) +
                            " is not mapped to any shard");
  }
  decltype(fn()) result =
      Status::Internal("shard: routed call did not execute");
  pool_.RunOn(owner, [&] { result = fn(); });
  return result;
}

void ShardedMultiTenantSelector::SyncIndexPlacement() {
  scheduler::CandidateIndex* index = candidate_index();
  if (index == nullptr) return;
  std::vector<std::vector<int>> locals;
  locals.reserve(static_cast<size_t>(map_.num_shards()));
  for (int s = 0; s < map_.num_shards(); ++s) locals.push_back(map_.local(s));
  index->SyncPlacement(locals, users());
}

Result<int> ShardedMultiTenantSelector::PickTenant(int round) {
  if (candidate_index() != nullptr) {
    // Index-backed pick: O(1) shard-root reads on the coordinator (the
    // pool's barriers make every worker-side leaf refresh visible here) —
    // no fan-out, no scan. The base implementation already merges the
    // roots exactly like the reductions below.
    return core::MultiTenantSelector::PickTenant(round);
  }
  // Fan the initialization-sweep / any-work scan out over the shards. The
  // per-shard summary is (lowest uninitialized tenant, any schedulable);
  // min/or merges make the reduction partition-invariant, so the sweep
  // serves tenants in registration order exactly like the sequential
  // engine.
  struct Sweep {
    int first_uninitialized = kNone;
    bool any_schedulable = false;
  };
  std::vector<Sweep> parts(pool_.size());
  // Bind the guarded partition under the coordinator's lock; the worker
  // closures read through the reference (the barrier orders the accesses —
  // see LocalTenants' annotation comment).
  const ShardMap& map = map_;
  const std::vector<scheduler::UserState>& all_users = users();
  pool_.RunAll([&](int shard) {
    Sweep& part = parts[shard];
    for (int t : map.local(shard)) {
      const scheduler::UserState& u = all_users[t];
      if (part.first_uninitialized == kNone && u.NeedsInitialObservation()) {
        part.first_uninitialized = t;  // locals ascend: first hit is the min
      }
      if (u.Schedulable()) part.any_schedulable = true;
    }
  });
  const Sweep merged =
      ReduceTree(std::move(parts), [](Sweep a, const Sweep& b) {
        a.first_uninitialized =
            std::min(a.first_uninitialized, b.first_uninitialized);
        a.any_schedulable = a.any_schedulable || b.any_schedulable;
        return a;
      });
  if (merged.first_uninitialized != kNone) return merged.first_uninitialized;
  if (!merged.any_schedulable) return NoDispatchableWorkStatus();
  return scheduler().PickUserSharded(users(), round, *this);
}

Result<int> ShardedMultiTenantSelector::SelectArmFor(int tenant) {
  return RouteToOwner(tenant, [&]() -> Result<int> {
    return core::MultiTenantSelector::SelectArmFor(tenant);
  });
}

Status ShardedMultiTenantSelector::RecordOutcomeFor(int tenant, int model,
                                                    double reward) {
  return RouteToOwner(tenant, [&]() -> Status {
    return core::MultiTenantSelector::RecordOutcomeFor(tenant, model, reward);
  });
}

Status ShardedMultiTenantSelector::CancelSelectionFor(int tenant, int model) {
  return RouteToOwner(tenant, [&]() -> Status {
    return core::MultiTenantSelector::CancelSelectionFor(tenant, model);
  });
}

Result<int> ShardedMultiTenantSelector::AddTenant(
    std::shared_ptr<const gp::SharedGpPrior> prior,
    std::vector<double> costs) {
  MutexLock lock(mu_);
  return core::MultiTenantSelector::AddTenant(std::move(prior),
                                              std::move(costs));
}

Result<int> ShardedMultiTenantSelector::AddTenant(gp::DiscreteArmGp belief,
                                                  std::vector<double> costs) {
  MutexLock lock(mu_);
  return core::MultiTenantSelector::AddTenant(std::move(belief),
                                              std::move(costs));
}

Result<int> ShardedMultiTenantSelector::AddTenantWithDefaultPrior(
    int num_models, std::vector<double> costs, double noise_variance) {
  MutexLock lock(mu_);
  return core::MultiTenantSelector::AddTenantWithDefaultPrior(
      num_models, std::move(costs), noise_variance);
}

Status ShardedMultiTenantSelector::RemoveTenant(int tenant) {
  MutexLock lock(mu_);
  return core::MultiTenantSelector::RemoveTenant(tenant);
}

int ShardedMultiTenantSelector::num_tenants() const {
  MutexLock lock(mu_);
  return core::MultiTenantSelector::num_tenants();
}

bool ShardedMultiTenantSelector::Exhausted() const {
  MutexLock lock(mu_);
  return core::MultiTenantSelector::Exhausted();
}

int ShardedMultiTenantSelector::num_in_flight() const {
  MutexLock lock(mu_);
  return core::MultiTenantSelector::num_in_flight();
}

bool ShardedMultiTenantSelector::HasDispatchableWork() const {
  MutexLock lock(mu_);
  return core::MultiTenantSelector::HasDispatchableWork();
}

Result<core::MultiTenantSelector::Assignment>
ShardedMultiTenantSelector::Next() {
  MutexLock lock(mu_);
  return core::MultiTenantSelector::Next();
}

Status ShardedMultiTenantSelector::Report(const Assignment& assignment,
                                          double accuracy) {
  MutexLock lock(mu_);
  return core::MultiTenantSelector::Report(assignment, accuracy);
}

Status ShardedMultiTenantSelector::Cancel(const Assignment& assignment) {
  MutexLock lock(mu_);
  return core::MultiTenantSelector::Cancel(assignment);
}

Result<core::MultiTenantSelector::Assignment>
ShardedMultiTenantSelector::InFlightAssignment(int64_t ticket) const {
  MutexLock lock(mu_);
  return core::MultiTenantSelector::InFlightAssignment(ticket);
}

Result<int> ShardedMultiTenantSelector::BestModel(int tenant) const {
  MutexLock lock(mu_);
  return core::MultiTenantSelector::BestModel(tenant);
}

Result<double> ShardedMultiTenantSelector::BestAccuracy(int tenant) const {
  MutexLock lock(mu_);
  return core::MultiTenantSelector::BestAccuracy(tenant);
}

Result<int> ShardedMultiTenantSelector::RoundsServed(int tenant) const {
  MutexLock lock(mu_);
  return core::MultiTenantSelector::RoundsServed(tenant);
}

Status ShardedMultiTenantSelector::ValidateIndex() const {
  MutexLock lock(mu_);
  const scheduler::CandidateIndex* index = candidate_index();
  if (index == nullptr) return Status::OK();
  // Placement must mirror the shard map exactly (rebalances resync it).
  const std::vector<std::vector<int>> placement = index->Placement();
  if (static_cast<int>(placement.size()) != map_.num_shards()) {
    return Status::Internal("index: shard count diverged from the map");
  }
  for (int s = 0; s < map_.num_shards(); ++s) {
    if (placement[static_cast<size_t>(s)] != map_.local(s)) {
      return Status::Internal("index: placement of shard " +
                              std::to_string(s) +
                              " diverged from the shard map");
    }
  }
  return core::MultiTenantSelector::ValidateIndex();
}

std::vector<int> ShardedMultiTenantSelector::ShardSizes() const {
  MutexLock lock(mu_);
  std::vector<int> sizes;
  sizes.reserve(map_.num_shards());
  for (int s = 0; s < map_.num_shards(); ++s) {
    sizes.push_back(static_cast<int>(map_.local(s).size()));
  }
  return sizes;
}

std::vector<double> ShardedMultiTenantSelector::ShardCpuSeconds() const {
  return pool_.WorkerCpuSeconds();
}

Result<std::unique_ptr<core::MultiTenantSelector>> MakeSelector(
    const core::SelectorOptions& options) {
  if (options.num_shards <= 1) {
    EASEML_ASSIGN_OR_RETURN(core::MultiTenantSelector base,
                            core::MultiTenantSelector::Create(options));
    return std::make_unique<core::MultiTenantSelector>(std::move(base));
  }
  EASEML_ASSIGN_OR_RETURN(std::unique_ptr<ShardedMultiTenantSelector> sharded,
                          ShardedMultiTenantSelector::Create(options));
  return std::unique_ptr<core::MultiTenantSelector>(std::move(sharded));
}

}  // namespace easeml::shard
