#include "shard/sharded_selector.h"

#include <algorithm>
#include <limits>
#include <optional>
#include <utility>

#include "common/logging.h"
#include "common/reduction_tree.h"

namespace easeml::shard {

namespace {
constexpr int kNone = std::numeric_limits<int>::max();
}  // namespace

ShardedMultiTenantSelector::ShardedMultiTenantSelector(
    core::MultiTenantSelector&& base, int num_shards)
    : core::MultiTenantSelector(std::move(base)),
      map_(num_shards),
      pool_(num_shards),
      scheduler_observes_outcomes_(scheduler().ObservesOutcomes()) {
  // The base Create built a 1-shard index when the option is on; swap in
  // the N-shard instance before any tenant exists so leaves land on their
  // owning shard's tree from the start.
  if (candidate_index() != nullptr) ResetIndex(num_shards);
}

Result<std::unique_ptr<ShardedMultiTenantSelector>>
ShardedMultiTenantSelector::Create(const core::SelectorOptions& options) {
  EASEML_ASSIGN_OR_RETURN(core::MultiTenantSelector base,
                          core::MultiTenantSelector::Create(options));
  return std::unique_ptr<ShardedMultiTenantSelector>(
      new ShardedMultiTenantSelector(std::move(base), options.num_shards));
}

template <typename Fn>
auto ShardedMultiTenantSelector::RouteToOwner(int tenant, Fn fn)
    -> decltype(fn()) {
  const int owner = map_.shard_of(tenant);
  if (owner < 0) {
    return Status::Internal("shard: tenant " + std::to_string(tenant) +
                            " is not mapped to any shard");
  }
  // The pool reports whether the closure ran; the result is only read when
  // it did. (The old pre-seeded "routed call did not execute" sentinel
  // leaked as an opaque Internal when RunOn declined after shutdown.)
  std::optional<decltype(fn())> result;
  if (!pool_.RunOn(owner, [&] { result.emplace(fn()); })) {
    return Status::FailedPrecondition(
        "shard: worker pool is shut down; routed call for tenant " +
        std::to_string(tenant) + " did not execute");
  }
  return std::move(*result);
}

void ShardedMultiTenantSelector::NotifyPlacementLocked() {
  core::SelectorObserver* obs = observer();
  if (obs == nullptr) return;
  std::vector<std::vector<int>> locals;
  locals.reserve(static_cast<size_t>(map_.num_shards()));
  for (int s = 0; s < map_.num_shards(); ++s) locals.push_back(map_.local(s));
  obs->OnPlacementChanged(locals);
}

void ShardedMultiTenantSelector::SyncIndexPlacement() {
  scheduler::CandidateIndex* index = candidate_index();
  if (index == nullptr) return;
  std::vector<std::vector<int>> locals;
  locals.reserve(static_cast<size_t>(map_.num_shards()));
  for (int s = 0; s < map_.num_shards(); ++s) locals.push_back(map_.local(s));
  index->SyncPlacement(locals, users());
}

Result<int> ShardedMultiTenantSelector::PickTenant(int round) {
  if (candidate_index() != nullptr) {
    // Index-backed pick: O(1) shard-root reads on the coordinator (the
    // pool's barriers make every worker-side leaf refresh visible here) —
    // no fan-out, no scan. The base implementation already merges the
    // roots exactly like the reductions below.
    return core::MultiTenantSelector::PickTenant(round);
  }
  // Fan the initialization-sweep / any-work scan out over the shards. The
  // per-shard summary is (lowest uninitialized tenant, any schedulable);
  // min/or merges make the reduction partition-invariant, so the sweep
  // serves tenants in registration order exactly like the sequential
  // engine.
  struct Sweep {
    int first_uninitialized = kNone;
    bool any_schedulable = false;
  };
  std::vector<Sweep> parts(pool_.size());
  // Bind the guarded partition under the coordinator's lock; the worker
  // closures read through the reference (the barrier orders the accesses —
  // see LocalTenants' annotation comment).
  const ShardMap& map = map_;
  const std::vector<scheduler::UserState>& all_users = users();
  pool_.RunAll([&](int shard) {
    Sweep& part = parts[shard];
    for (int t : map.local(shard)) {
      const scheduler::UserState& u = all_users[t];
      if (part.first_uninitialized == kNone && u.NeedsInitialObservation()) {
        part.first_uninitialized = t;  // locals ascend: first hit is the min
      }
      if (u.Schedulable()) part.any_schedulable = true;
    }
  });
  const Sweep merged =
      ReduceTree(std::move(parts), [](Sweep a, const Sweep& b) {
        a.first_uninitialized =
            std::min(a.first_uninitialized, b.first_uninitialized);
        a.any_schedulable = a.any_schedulable || b.any_schedulable;
        return a;
      });
  if (merged.first_uninitialized != kNone) return merged.first_uninitialized;
  if (!merged.any_schedulable) return NoDispatchableWorkStatus();
  return scheduler().PickUserSharded(users(), round, *this);
}

Result<int> ShardedMultiTenantSelector::SelectArmFor(int tenant) {
  return RouteToOwner(tenant, [&]() -> Result<int> {
    return core::MultiTenantSelector::SelectArmFor(tenant);
  });
}

Result<int> ShardedMultiTenantSelector::AddTenant(
    std::shared_ptr<const gp::SharedGpPrior> prior,
    std::vector<double> costs) {
  MutexLock lock(mu_);
  // Churn resizes tenant storage, which queued folds hold references into.
  DrainFolds();
  return core::MultiTenantSelector::AddTenant(std::move(prior),
                                              std::move(costs));
}

Result<int> ShardedMultiTenantSelector::AddTenant(gp::DiscreteArmGp belief,
                                                  std::vector<double> costs) {
  MutexLock lock(mu_);
  DrainFolds();
  return core::MultiTenantSelector::AddTenant(std::move(belief),
                                              std::move(costs));
}

Result<int> ShardedMultiTenantSelector::AddTenantWithDefaultPrior(
    int num_models, std::vector<double> costs, double noise_variance) {
  MutexLock lock(mu_);
  DrainFolds();
  return core::MultiTenantSelector::AddTenantWithDefaultPrior(
      num_models, std::move(costs), noise_variance);
}

Status ShardedMultiTenantSelector::RemoveTenant(int tenant) {
  MutexLock lock(mu_);
  DrainFolds();
  return core::MultiTenantSelector::RemoveTenant(tenant);
}

int ShardedMultiTenantSelector::num_tenants() const {
  // Coordinator-only state (the tenant count changes under mu_ after a
  // drain): no quiescence needed to read it.
  MutexLock lock(mu_);
  return core::MultiTenantSelector::num_tenants();
}

bool ShardedMultiTenantSelector::Exhausted() const {
  MutexLock lock(mu_);
  DrainFolds();  // queued folds advance num_played
  return core::MultiTenantSelector::Exhausted();
}

int ShardedMultiTenantSelector::num_in_flight() const {
  // Tickets are retired in the coordinator phase, before the fold is even
  // enqueued — the in-flight table needs no quiescence.
  MutexLock lock(mu_);
  return core::MultiTenantSelector::num_in_flight();
}

bool ShardedMultiTenantSelector::HasDispatchableWork() const {
  MutexLock lock(mu_);
  DrainFolds();  // queued cancel folds re-open arms
  return core::MultiTenantSelector::HasDispatchableWork();
}

Result<core::MultiTenantSelector::Assignment>
ShardedMultiTenantSelector::Next() {
  MutexLock lock(mu_);
  // A pick reads every tenant's post-fold state (policy scans, index
  // roots), so the pipeline must be quiescent. Holding mu_ keeps it so:
  // no Report can enqueue another fold until this pick returns.
  DrainFolds();
  return core::MultiTenantSelector::Next();
}

Status ShardedMultiTenantSelector::Report(const Assignment& assignment,
                                          double accuracy) {
  // Observation (all guarded — zero clock reads when no observer is set):
  // OnReport carries the coordinator's thread-CPU cost, which excludes the
  // fold (it runs on the owning worker, timed inside the queued closure)
  // and, on the HYBRID path, the drain (a condvar wait burns wall time,
  // not this thread's CPU).
  core::SelectorObserver* obs = observer();
  const double c0 = obs != nullptr ? ThreadCpuSeconds() : 0.0;
  int tenant = -1;
  {
    MutexLock lock(mu_);
    // Coordinator phase: validate + retire the ticket, then hand the fold
    // to the tenant's owning shard worker. FIFO queue order under mu_ is
    // the per-tenant fold order — identical to the sequential engine's.
    Result<Assignment> begun = BeginReport(assignment, accuracy);
    if (!begun.ok()) {
      if (obs != nullptr) {
        obs->OnTicketRejected(static_cast<int>(begun.status().code()));
      }
      return begun.status();
    }
    const Assignment issued = *begun;
    tenant = issued.tenant;
    const int owner = map_.shard_of(tenant);
    EASEML_CHECK(owner >= 0)
        << "shard: tenant " << tenant << " of live ticket " << issued.id
        << " is not mapped to any shard";
    // The fold emits its own tenant event (base FoldReportedOutcome), so
    // the closure only adds worker-side timing around it when observed.
    const bool queued = pool_.Enqueue(owner, [this, issued, accuracy, owner] {
      if (observer() == nullptr) {
        FoldReportedOutcome(issued, accuracy);
        return;
      }
      const double f0 = ThreadCpuSeconds();
      FoldReportedOutcome(issued, accuracy);
      observer()->OnFold(owner, (ThreadCpuSeconds() - f0) * 1e6);
    });
    EASEML_CHECK(queued) << "shard: report queue rejected a validated fold "
                            "(pool shut down under a live selector)";
    if (obs != nullptr) obs->OnFoldQueued(owner);
    if (!scheduler_observes_outcomes_) {
      // Stateless-OnOutcome policies: sequence the scheduler now and
      // return with the fold still queued. Readers quiesce on entry, so
      // nothing can observe the tenant pre-fold. The sync runs under mu_
      // like every WAL call (the record was appended in BeginReport, so
      // one write covers the whole group) — the fold itself carries no
      // durability obligation and keeps running on the worker.
      FinishReport(tenant);
      EASEML_RETURN_NOT_OK(SyncWal());
      if (obs != nullptr) obs->OnReport((ThreadCpuSeconds() - c0) * 1e6);
      return Status::OK();
    }
  }
  // HYBRID's freeze detector reads every tenant's post-fold state. Wait
  // for the queues outside mu_ first — concurrent reporters keep
  // validating and enqueuing while the backlog folds — then re-lock and
  // drain again: with mu_ held no new fold can slip in, so OnOutcome sees
  // a quiescent engine. The backlog is bounded by num_devices (every fold
  // stems from an issued ticket), so this converges.
  pool_.DrainQueues();
  MutexLock lock(mu_);
  DrainFolds();
  FinishReport(tenant);
  EASEML_RETURN_NOT_OK(SyncWal());
  if (obs != nullptr) obs->OnReport((ThreadCpuSeconds() - c0) * 1e6);
  return Status::OK();
}

Status ShardedMultiTenantSelector::Cancel(const Assignment& assignment) {
  core::SelectorObserver* obs = observer();
  MutexLock lock(mu_);
  // Same coordinator/shard split as Report, minus the scheduler sequencing
  // (a cancel is not an outcome): retire the ticket, queue the un-charge
  // on the owner, return immediately.
  Result<Assignment> begun = BeginCancel(assignment);
  if (!begun.ok()) {
    if (obs != nullptr) {
      obs->OnTicketRejected(static_cast<int>(begun.status().code()));
    }
    return begun.status();
  }
  const Assignment issued = *begun;
  const int owner = map_.shard_of(issued.tenant);
  EASEML_CHECK(owner >= 0)
      << "shard: tenant " << issued.tenant << " of live ticket " << issued.id
      << " is not mapped to any shard";
  const bool queued = pool_.Enqueue(owner, [this, issued, owner] {
    if (observer() == nullptr) {
      FoldCancel(issued);
      return;
    }
    const double f0 = ThreadCpuSeconds();
    FoldCancel(issued);
    observer()->OnFold(owner, (ThreadCpuSeconds() - f0) * 1e6);
  });
  EASEML_CHECK(queued) << "shard: report queue rejected a validated cancel "
                          "(pool shut down under a live selector)";
  if (obs != nullptr) obs->OnFoldQueued(owner);
  return SyncWal();
}

Result<core::MultiTenantSelector::Assignment>
ShardedMultiTenantSelector::InFlightAssignment(int64_t ticket) const {
  // Coordinator-only state (tickets are issued/retired under mu_).
  MutexLock lock(mu_);
  return core::MultiTenantSelector::InFlightAssignment(ticket);
}

Result<int> ShardedMultiTenantSelector::BestModel(int tenant) const {
  MutexLock lock(mu_);
  DrainFolds();  // the incumbent advances inside the fold
  return core::MultiTenantSelector::BestModel(tenant);
}

Result<double> ShardedMultiTenantSelector::BestAccuracy(int tenant) const {
  MutexLock lock(mu_);
  DrainFolds();
  return core::MultiTenantSelector::BestAccuracy(tenant);
}

Result<int> ShardedMultiTenantSelector::RoundsServed(int tenant) const {
  MutexLock lock(mu_);
  DrainFolds();
  return core::MultiTenantSelector::RoundsServed(tenant);
}

Status ShardedMultiTenantSelector::ValidateIndex() const {
  MutexLock lock(mu_);
  DrainFolds();  // leaf refreshes ride the report queues
  const scheduler::CandidateIndex* index = candidate_index();
  if (index == nullptr) return Status::OK();
  // Placement must mirror the shard map exactly (rebalances resync it).
  const std::vector<std::vector<int>> placement = index->Placement();
  if (static_cast<int>(placement.size()) != map_.num_shards()) {
    return Status::Internal("index: shard count diverged from the map");
  }
  for (int s = 0; s < map_.num_shards(); ++s) {
    if (placement[static_cast<size_t>(s)] != map_.local(s)) {
      return Status::Internal("index: placement of shard " +
                              std::to_string(s) +
                              " diverged from the shard map");
    }
  }
  return core::MultiTenantSelector::ValidateIndex();
}

Result<core::DurableSelectorState>
ShardedMultiTenantSelector::CaptureDurableState() const {
  MutexLock lock(mu_);
  DrainFolds();  // the capture must see every acknowledged fold applied
  return core::MultiTenantSelector::CaptureDurableState();
}

Status ShardedMultiTenantSelector::RestoreDurableState(
    const core::DurableSelectorState& state) {
  MutexLock lock(mu_);
  DrainFolds();
  return core::MultiTenantSelector::RestoreDurableState(state);
}

std::vector<int> ShardedMultiTenantSelector::ShardSizes() const {
  MutexLock lock(mu_);
  std::vector<int> sizes;
  sizes.reserve(map_.num_shards());
  for (int s = 0; s < map_.num_shards(); ++s) {
    sizes.push_back(static_cast<int>(map_.local(s).size()));
  }
  return sizes;
}

std::vector<double> ShardedMultiTenantSelector::ShardCpuSeconds() const {
  // Same lock discipline as every other const accessor (this used to be
  // the one hole in the TSA story): quiesce the fold pipeline under mu_ so
  // the accounting includes every completion already reported, then read
  // the internally synchronized pool counters.
  MutexLock lock(mu_);
  DrainFolds();
  return pool_.WorkerCpuSeconds();
}

Result<std::unique_ptr<core::MultiTenantSelector>> MakeSelector(
    const core::SelectorOptions& options) {
  if (options.num_shards <= 1) {
    EASEML_ASSIGN_OR_RETURN(core::MultiTenantSelector base,
                            core::MultiTenantSelector::Create(options));
    return std::make_unique<core::MultiTenantSelector>(std::move(base));
  }
  EASEML_ASSIGN_OR_RETURN(std::unique_ptr<ShardedMultiTenantSelector> sharded,
                          ShardedMultiTenantSelector::Create(options));
  return std::unique_ptr<core::MultiTenantSelector>(std::move(sharded));
}

}  // namespace easeml::shard
