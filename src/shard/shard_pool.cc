#include "shard/shard_pool.h"

#include <utility>

#include "common/clock.h"
#include "common/logging.h"

namespace easeml::shard {

ShardPool::ShardPool(int num_workers) {
  EASEML_CHECK(num_workers >= 1) << "ShardPool: num_workers must be >= 1";
  seen_.assign(num_workers, 0);
  cpu_seconds_.assign(num_workers, 0.0);
  slots_.reserve(num_workers);
  for (int w = 0; w < num_workers; ++w) {
    slots_.push_back(std::make_unique<Slot>());
  }
  workers_.reserve(num_workers);
  for (int w = 0; w < num_workers; ++w) {
    workers_.emplace_back([this, w] { WorkerLoop(w); });
  }
}

ShardPool::~ShardPool() { Shutdown(); }

void ShardPool::Shutdown() {
  {
    MutexLock lock(mu_);
    if (shutdown_) return;  // idempotent (workers already joined/joining)
    shutdown_ = true;
    for (auto& slot : slots_) slot->wake.NotifyOne();
  }
  // Workers drain their queues and any pending solo/barrier work before
  // exiting, so every accepted task runs-to-completion under Shutdown.
  for (auto& worker : workers_) worker.join();
}

void ShardPool::RunAll(const std::function<void(int)>& fn) {
  MutexLock lock(mu_);
  EASEML_CHECK(!shutdown_) << "ShardPool: RunAll after Shutdown";
  fn_ = &fn;
  ++generation_;
  remaining_ = size();
  for (auto& slot : slots_) slot->wake.NotifyOne();
  while (remaining_ != 0) work_done_.Wait(lock);
  fn_ = nullptr;
}

bool ShardPool::RunOn(int worker, const std::function<void()>& fn) {
  EASEML_CHECK(worker >= 0 && worker < size()) << "ShardPool: bad worker";
  MutexLock lock(mu_);
  if (shutdown_) return false;  // declined: the closure will not run
  slots_[worker]->solo = &fn;
  remaining_ = 1;
  slots_[worker]->wake.NotifyOne();
  // A concurrent Shutdown() cannot strand the wait: the worker consumes
  // any pending solo before it exits, and the join happens-after that.
  while (remaining_ != 0) work_done_.Wait(lock);
  return true;
}

bool ShardPool::Enqueue(int worker, std::function<void()> fn) {
  EASEML_CHECK(worker >= 0 && worker < size()) << "ShardPool: bad worker";
  MutexLock lock(mu_);
  if (shutdown_) return false;  // declined: the task will not run
  slots_[worker]->queue.push_back(std::move(fn));
  ++queued_;
  slots_[worker]->wake.NotifyOne();
  return true;
}

void ShardPool::DrainQueues() const {
  MutexLock lock(mu_);
  while (queued_ != 0) queues_drained_.Wait(lock);
}

void ShardPool::WorkerLoop(int worker) {
  Slot& slot = *slots_[worker];
  for (;;) {
    std::function<void()> queued;  // owned: the slot entry is consumed
    const std::function<void()>* solo = nullptr;
    const std::function<void(int)>* all = nullptr;
    bool from_queue = false;
    {
      MutexLock lock(mu_);
      while (!shutdown_ && slot.queue.empty() && slot.solo == nullptr &&
             seen_[worker] == generation_) {
        slot.wake.Wait(lock);
      }
      if (!slot.queue.empty()) {
        // Queue tasks run first and strictly in FIFO order: the per-worker
        // queue order IS the per-tenant fold order the determinism story
        // rests on (folds were enqueued under the selector lock).
        queued = std::move(slot.queue.front());
        slot.queue.pop_front();
        from_queue = true;
      } else if (slot.solo != nullptr) {
        solo = slot.solo;
        slot.solo = nullptr;
      } else if (seen_[worker] != generation_) {
        seen_[worker] = generation_;
        all = fn_;
      } else {
        return;  // shutdown with no pending work
      }
    }

    const double cpu_before = ThreadCpuSeconds();
    if (from_queue) {
      queued();
    } else if (solo != nullptr) {
      (*solo)();
    } else {
      (*all)(worker);
    }
    const double cpu_after = ThreadCpuSeconds();

    {
      MutexLock lock(mu_);
      cpu_seconds_[worker] += cpu_after - cpu_before;
      if (from_queue) {
        if (--queued_ == 0) queues_drained_.NotifyAll();
      } else if (--remaining_ == 0) {
        work_done_.NotifyAll();
      }
    }
  }
}

std::vector<double> ShardPool::WorkerCpuSeconds() const {
  MutexLock lock(mu_);
  return cpu_seconds_;
}

}  // namespace easeml::shard
