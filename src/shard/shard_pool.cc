#include "shard/shard_pool.h"

#include <ctime>

#include "common/logging.h"

namespace easeml::shard {

namespace {
double ThreadCpuSeconds() {
  timespec ts{};
  if (clock_gettime(CLOCK_THREAD_CPUTIME_ID, &ts) != 0) return 0.0;
  return static_cast<double>(ts.tv_sec) + 1e-9 * static_cast<double>(ts.tv_nsec);
}
}  // namespace

ShardPool::ShardPool(int num_workers) {
  EASEML_CHECK(num_workers >= 1) << "ShardPool: num_workers must be >= 1";
  seen_.assign(num_workers, 0);
  cpu_seconds_.assign(num_workers, 0.0);
  slots_.reserve(num_workers);
  for (int w = 0; w < num_workers; ++w) {
    slots_.push_back(std::make_unique<Slot>());
  }
  workers_.reserve(num_workers);
  for (int w = 0; w < num_workers; ++w) {
    workers_.emplace_back([this, w] { WorkerLoop(w); });
  }
}

ShardPool::~ShardPool() {
  {
    MutexLock lock(mu_);
    shutdown_ = true;
  }
  for (auto& slot : slots_) slot->wake.NotifyOne();
  for (auto& worker : workers_) worker.join();
}

void ShardPool::RunAll(const std::function<void(int)>& fn) {
  MutexLock lock(mu_);
  fn_ = &fn;
  ++generation_;
  remaining_ = size();
  for (auto& slot : slots_) slot->wake.NotifyOne();
  while (remaining_ != 0) work_done_.Wait(lock);
  fn_ = nullptr;
}

void ShardPool::RunOn(int worker, const std::function<void()>& fn) {
  EASEML_CHECK(worker >= 0 && worker < size()) << "ShardPool: bad worker";
  MutexLock lock(mu_);
  slots_[worker]->solo = &fn;
  remaining_ = 1;
  slots_[worker]->wake.NotifyOne();
  while (remaining_ != 0) work_done_.Wait(lock);
}

void ShardPool::WorkerLoop(int worker) {
  Slot& slot = *slots_[worker];
  for (;;) {
    const std::function<void()>* solo = nullptr;
    const std::function<void(int)>* all = nullptr;
    {
      MutexLock lock(mu_);
      while (!shutdown_ && slot.solo == nullptr &&
             seen_[worker] == generation_) {
        slot.wake.Wait(lock);
      }
      solo = slot.solo;
      if (solo != nullptr) {
        slot.solo = nullptr;
      } else if (seen_[worker] != generation_) {
        seen_[worker] = generation_;
        all = fn_;
      } else {
        return;  // shutdown with no pending work
      }
    }

    const double cpu_before = ThreadCpuSeconds();
    if (solo != nullptr) {
      (*solo)();
    } else {
      (*all)(worker);
    }
    const double cpu_after = ThreadCpuSeconds();

    {
      MutexLock lock(mu_);
      cpu_seconds_[worker] += cpu_after - cpu_before;
      if (--remaining_ == 0) work_done_.NotifyAll();
    }
  }
}

std::vector<double> ShardPool::WorkerCpuSeconds() const {
  MutexLock lock(mu_);
  return cpu_seconds_;
}

}  // namespace easeml::shard
