#include "shard/shard_pool.h"

#include <ctime>

#include "common/logging.h"

namespace easeml::shard {

namespace {
double ThreadCpuSeconds() {
  timespec ts{};
  if (clock_gettime(CLOCK_THREAD_CPUTIME_ID, &ts) != 0) return 0.0;
  return static_cast<double>(ts.tv_sec) + 1e-9 * static_cast<double>(ts.tv_nsec);
}
}  // namespace

ShardPool::ShardPool(int num_workers) {
  EASEML_CHECK(num_workers >= 1) << "ShardPool: num_workers must be >= 1";
  seen_.assign(num_workers, 0);
  cpu_seconds_.assign(num_workers, 0.0);
  slots_.reserve(num_workers);
  for (int w = 0; w < num_workers; ++w) {
    slots_.push_back(std::make_unique<Slot>());
  }
  workers_.reserve(num_workers);
  for (int w = 0; w < num_workers; ++w) {
    workers_.emplace_back([this, w] { WorkerLoop(w); });
  }
}

ShardPool::~ShardPool() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    shutdown_ = true;
  }
  for (auto& slot : slots_) slot->wake.notify_one();
  for (auto& worker : workers_) worker.join();
}

void ShardPool::RunAll(const std::function<void(int)>& fn) {
  std::unique_lock<std::mutex> lock(mu_);
  fn_ = &fn;
  ++generation_;
  remaining_ = size();
  for (auto& slot : slots_) slot->wake.notify_one();
  work_done_.wait(lock, [this] { return remaining_ == 0; });
  fn_ = nullptr;
}

void ShardPool::RunOn(int worker, const std::function<void()>& fn) {
  EASEML_CHECK(worker >= 0 && worker < size()) << "ShardPool: bad worker";
  std::unique_lock<std::mutex> lock(mu_);
  slots_[worker]->solo = &fn;
  remaining_ = 1;
  slots_[worker]->wake.notify_one();
  work_done_.wait(lock, [this] { return remaining_ == 0; });
}

void ShardPool::WorkerLoop(int worker) {
  Slot& slot = *slots_[worker];
  for (;;) {
    std::unique_lock<std::mutex> lock(mu_);
    slot.wake.wait(lock, [&] {
      return shutdown_ || slot.solo != nullptr || seen_[worker] != generation_;
    });
    const std::function<void()>* solo = slot.solo;
    const std::function<void(int)>* all = nullptr;
    if (solo != nullptr) {
      slot.solo = nullptr;
    } else if (seen_[worker] != generation_) {
      seen_[worker] = generation_;
      all = fn_;
    } else {
      return;  // shutdown with no pending work
    }
    lock.unlock();

    const double cpu_before = ThreadCpuSeconds();
    if (solo != nullptr) {
      (*solo)();
    } else {
      (*all)(worker);
    }
    const double cpu_after = ThreadCpuSeconds();

    lock.lock();
    cpu_seconds_[worker] += cpu_after - cpu_before;
    if (--remaining_ == 0) work_done_.notify_all();
  }
}

std::vector<double> ShardPool::WorkerCpuSeconds() const {
  std::lock_guard<std::mutex> lock(mu_);
  return cpu_seconds_;
}

}  // namespace easeml::shard
