#ifndef EASEML_SHARD_SHARD_POOL_H_
#define EASEML_SHARD_SHARD_POOL_H_

#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <thread>
#include <vector>

#include "common/thread_annotations.h"

namespace easeml::shard {

/// Worker pool of the sharded selector: one long-lived thread per shard,
/// driving two kinds of work.
///
/// **Barrier work** — `RunAll(fn)` wakes every worker, runs `fn(shard)`
/// once per shard concurrently, and returns after the last one finished.
/// `RunOn(worker, fn)` is the solo variant: it wakes only that worker
/// (per-worker condition variables) and blocks until the closure ran — the
/// path that routes a single tenant's arm selection to its owning shard
/// without a full barrier. The mutex acquire/release pairs around each
/// barrier give the caller full happens-before visibility of everything
/// the closures wrote.
///
/// **Queued work** — `Enqueue(worker, fn)` appends `fn` to that worker's
/// FIFO report queue and returns immediately; the owning worker drains its
/// queue in order. This is the asynchronous half of the report pipeline:
/// the coordinator validates a completion's ticket, enqueues the O(t^2)
/// belief fold on the tenant's owning shard, and returns — folds for
/// tenants on different shards run concurrently. `DrainQueues()` blocks
/// until every queued task has finished (same visibility guarantee as the
/// barriers); per-worker FIFO order is the fold-order determinism anchor,
/// so queue tasks always run before any pending solo/barrier work.
///
/// Workers accumulate the CPU time (CLOCK_THREAD_CPUTIME_ID) they spend
/// inside closures; `WorkerCpuSeconds()` exposes it. Unlike wall clock,
/// thread CPU time is not inflated by core oversubscription, so
/// max-over-workers is a faithful measure of the pool's critical path even
/// on machines with fewer cores than shards (bench/scaling_shards and the
/// report-throughput bench report it next to wall time).
///
/// One *barrier* caller at a time: `RunAll`/`RunOn` are serialized by the
/// selector's lock. `Enqueue`/`DrainQueues`/`Shutdown` may race with
/// anything. Closures must not call back into the pool or the selector.
///
/// `Shutdown()` (also run by the destructor) drains all pending work, then
/// joins the workers. Afterwards `RunOn`/`Enqueue` decline new closures by
/// returning false — callers surface a precise Status instead of the
/// pre-seeded sentinel this used to leak.
///
/// Lock discipline (machine-checked under Clang -Wthread-safety): `mu_`
/// guards the barrier and queue state; `slots_` and `workers_` are
/// immutable after construction (built before any worker thread starts, so
/// publication is ordered by thread creation) and the per-`Slot` fields
/// are accessed only under `mu_` by convention — nested types cannot name
/// the enclosing instance's mutex in a `GUARDED_BY` expression.
class ShardPool {
 public:
  /// Starts `num_workers` >= 1 threads.
  explicit ShardPool(int num_workers);

  /// Calls Shutdown().
  ~ShardPool();

  ShardPool(const ShardPool&) = delete;
  ShardPool& operator=(const ShardPool&) = delete;

  int size() const { return static_cast<int>(workers_.size()); }

  /// Runs `fn(shard)` on every worker; blocks until all have finished.
  /// Must not be called after Shutdown() (the selector never does: its
  /// public methods stop before the pool is torn down).
  void RunAll(const std::function<void(int)>& fn) EASEML_EXCLUDES(mu_);

  /// Runs `fn` on `worker`'s thread alone and blocks until it finished;
  /// returns true iff the closure ran. After Shutdown() the closure is NOT
  /// run and the call returns false — callers must translate that into a
  /// precise Status rather than touching any result the closure was meant
  /// to produce.
  bool RunOn(int worker, const std::function<void()>& fn)
      EASEML_EXCLUDES(mu_);

  /// Appends `fn` to `worker`'s FIFO queue and returns without waiting.
  /// Returns true iff the task was accepted; after Shutdown() the task is
  /// NOT queued and the call returns false. Accepted tasks are guaranteed
  /// to run (Shutdown drains the queues before joining).
  bool Enqueue(int worker, std::function<void()> fn) EASEML_EXCLUDES(mu_);

  /// Blocks until every queued task (across all workers) has finished.
  /// The internal mutex hand-off orders all queued writes before the
  /// return. Returns immediately when the queues are empty.
  void DrainQueues() const EASEML_EXCLUDES(mu_);

  /// Drains all pending queued/solo work, then stops and joins the
  /// workers. Idempotent; also invoked by the destructor.
  void Shutdown() EASEML_EXCLUDES(mu_);

  /// Cumulative per-worker CPU seconds spent inside closures (barrier,
  /// solo, and queued alike).
  std::vector<double> WorkerCpuSeconds() const EASEML_EXCLUDES(mu_);

 private:
  /// Per-worker wake slot (heap-allocated: CondVar is neither movable nor
  /// copyable). `solo` and `queue` are guarded by the pool's `mu_` — see
  /// the class comment for why the annotation cannot be spelled on a
  /// nested type.
  struct Slot {
    CondVar wake;
    const std::function<void()>* solo = nullptr;  // pending RunOn task
    std::deque<std::function<void()>> queue;      // pending Enqueue tasks
  };

  void WorkerLoop(int worker) EASEML_EXCLUDES(mu_);

  mutable Mutex mu_;
  CondVar work_done_;
  /// Signaled whenever `queued_` drops to zero.
  mutable CondVar queues_drained_;
  /// Valid while a barrier runs.
  const std::function<void(int)>* fn_ EASEML_GUARDED_BY(mu_) = nullptr;
  uint64_t generation_ EASEML_GUARDED_BY(mu_) = 0;
  /// Last barrier generation each worker ran.
  std::vector<uint64_t> seen_ EASEML_GUARDED_BY(mu_);
  std::vector<std::unique_ptr<Slot>> slots_;  // immutable after the ctor
  /// Outstanding barrier/solo closures (RunAll/RunOn completion count).
  int remaining_ EASEML_GUARDED_BY(mu_) = 0;
  /// Outstanding queued tasks across all workers (accepted, not finished).
  int64_t queued_ EASEML_GUARDED_BY(mu_) = 0;
  bool shutdown_ EASEML_GUARDED_BY(mu_) = false;
  std::vector<double> cpu_seconds_ EASEML_GUARDED_BY(mu_);

  std::vector<std::thread> workers_;  // started last, joined by Shutdown
};

}  // namespace easeml::shard

#endif  // EASEML_SHARD_SHARD_POOL_H_
