#ifndef EASEML_SHARD_SHARD_POOL_H_
#define EASEML_SHARD_SHARD_POOL_H_

#include <cstdint>
#include <functional>
#include <memory>
#include <thread>
#include <vector>

#include "common/thread_annotations.h"

namespace easeml::shard {

/// Barrier-style worker pool: one long-lived thread per shard.
///
/// `RunAll(fn)` wakes every worker, runs `fn(shard)` once per shard
/// concurrently, and returns after the last one finished. The mutex
/// acquire/release pairs around each barrier give the caller full
/// happens-before visibility of everything the closures wrote — the only
/// synchronization the sharded selector's scan fan-out needs.
///
/// Workers accumulate the CPU time (CLOCK_THREAD_CPUTIME_ID) they spend
/// inside closures; `WorkerCpuSeconds()` exposes it. Unlike wall clock,
/// thread CPU time is not inflated by core oversubscription, so
/// max-over-workers is a faithful measure of the scan's critical path even
/// on machines with fewer cores than shards (bench/scaling_shards reports
/// it next to wall time).
///
/// One caller at a time: `RunAll` is serialized by the selector's lock.
/// Closures must not call back into the pool or the selector.
///
/// Lock discipline (machine-checked under Clang -Wthread-safety): `mu_`
/// guards the barrier state; `slots_` and `workers_` are immutable after
/// construction (built before any worker thread starts, so publication is
/// ordered by thread creation) and the per-`Slot` fields are accessed only
/// under `mu_` by convention — nested types cannot name the enclosing
/// instance's mutex in a `GUARDED_BY` expression.
class ShardPool {
 public:
  /// Starts `num_workers` >= 1 threads.
  explicit ShardPool(int num_workers);

  /// Joins all workers (any in-progress barrier completes first).
  ~ShardPool();

  ShardPool(const ShardPool&) = delete;
  ShardPool& operator=(const ShardPool&) = delete;

  int size() const { return static_cast<int>(workers_.size()); }

  /// Runs `fn(shard)` on every worker; blocks until all have finished.
  void RunAll(const std::function<void(int)>& fn) EASEML_EXCLUDES(mu_);

  /// Runs `fn` on `worker`'s thread alone and blocks until it finished.
  /// Wakes only that worker (per-worker condition variables) — the path
  /// that routes a single tenant's arm selection / belief fold to its
  /// owning shard without a full barrier.
  void RunOn(int worker, const std::function<void()>& fn)
      EASEML_EXCLUDES(mu_);

  /// Cumulative per-worker CPU seconds spent inside RunAll/RunOn closures.
  std::vector<double> WorkerCpuSeconds() const EASEML_EXCLUDES(mu_);

 private:
  /// Per-worker wake slot (heap-allocated: CondVar is neither movable nor
  /// copyable). `solo` is guarded by the pool's `mu_` — see the class
  /// comment for why the annotation cannot be spelled on a nested type.
  struct Slot {
    CondVar wake;
    const std::function<void()>* solo = nullptr;  // pending RunOn task
  };

  void WorkerLoop(int worker) EASEML_EXCLUDES(mu_);

  mutable Mutex mu_;
  CondVar work_done_;
  /// Valid while a barrier runs.
  const std::function<void(int)>* fn_ EASEML_GUARDED_BY(mu_) = nullptr;
  uint64_t generation_ EASEML_GUARDED_BY(mu_) = 0;
  /// Last barrier generation each worker ran.
  std::vector<uint64_t> seen_ EASEML_GUARDED_BY(mu_);
  std::vector<std::unique_ptr<Slot>> slots_;  // immutable after the ctor
  int remaining_ EASEML_GUARDED_BY(mu_) = 0;
  bool shutdown_ EASEML_GUARDED_BY(mu_) = false;
  std::vector<double> cpu_seconds_ EASEML_GUARDED_BY(mu_);

  std::vector<std::thread> workers_;  // started last, joined in the dtor
};

}  // namespace easeml::shard

#endif  // EASEML_SHARD_SHARD_POOL_H_
