#ifndef EASEML_SHARD_SHARD_MAP_H_
#define EASEML_SHARD_SHARD_MAP_H_

#include <cstdint>
#include <vector>

namespace easeml::shard {

/// Partition of tenant ids over a fixed number of shards.
///
/// New tenants are placed by a mixed hash of their id (so adjacent ids —
/// which arrive together and stay equally hot — spread out instead of
/// clustering), then the partition is rebalanced so shard sizes never
/// differ by more than one: the per-`Next()` scan critical path is
/// max-shard-size, so balance IS the speedup. Rebalancing moves tenants
/// deterministically (largest shard donates its highest id to the smallest
/// shard), but note that correctness never depends on placement: the
/// selection reduction is partition-invariant by construction, so the map
/// is free to chase balance.
///
/// Removal vacates the slot and rebalances the same way — the tenant-churn
/// path `RemoveTenant` takes. Tenant ids are never reused; the map only
/// tracks live (non-retired) tenants.
///
/// Not thread-safe; the owning selector mutates it under its lock while no
/// scan is running.
class ShardMap {
 public:
  /// `num_shards` >= 1.
  explicit ShardMap(int num_shards);

  int num_shards() const { return static_cast<int>(locals_.size()); }

  /// Live tenants currently mapped.
  int size() const { return size_; }

  /// Owning shard of `tenant`; -1 when the tenant is not mapped (never
  /// added, or removed).
  int shard_of(int tenant) const;

  /// Tenant ids owned by `shard`, ascending.
  const std::vector<int>& local(int shard) const { return locals_[shard]; }

  /// Size of the fullest shard — the scan's critical path in tenants.
  int max_shard_size() const;

  /// Maps a new tenant (hash placement + rebalance). Precondition: not
  /// currently mapped.
  void Add(int tenant);

  /// Unmaps a tenant (+ rebalance). Precondition: currently mapped.
  void Remove(int tenant);

 private:
  void Insert(int shard, int tenant);
  void Erase(int shard, int tenant);

  /// Restores max-min <= 1 by deterministic moves.
  void Rebalance();

  std::vector<std::vector<int>> locals_;  // each ascending
  std::vector<int> shard_of_;             // indexed by tenant id, -1 absent
  int size_ = 0;
};

}  // namespace easeml::shard

#endif  // EASEML_SHARD_SHARD_MAP_H_
