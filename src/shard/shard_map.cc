#include "shard/shard_map.h"

#include <algorithm>

#include "common/logging.h"
#include "common/rng.h"

namespace easeml::shard {

ShardMap::ShardMap(int num_shards) {
  EASEML_CHECK(num_shards >= 1) << "ShardMap: num_shards must be >= 1";
  locals_.resize(num_shards);
}

int ShardMap::shard_of(int tenant) const {
  if (tenant < 0 || tenant >= static_cast<int>(shard_of_.size())) return -1;
  return shard_of_[tenant];
}

int ShardMap::max_shard_size() const {
  size_t max_size = 0;
  for (const auto& local : locals_) {
    max_size = std::max(max_size, local.size());
  }
  return static_cast<int>(max_size);
}

void ShardMap::Insert(int shard, int tenant) {
  auto& local = locals_[shard];
  local.insert(std::lower_bound(local.begin(), local.end(), tenant), tenant);
  if (tenant >= static_cast<int>(shard_of_.size())) {
    shard_of_.resize(tenant + 1, -1);
  }
  shard_of_[tenant] = shard;
}

void ShardMap::Erase(int shard, int tenant) {
  auto& local = locals_[shard];
  local.erase(std::lower_bound(local.begin(), local.end(), tenant));
  shard_of_[tenant] = -1;
}

void ShardMap::Add(int tenant) {
  EASEML_CHECK(tenant >= 0) << "ShardMap: negative tenant id";
  EASEML_CHECK(shard_of(tenant) < 0) << "ShardMap: tenant already mapped";
  // SplitMix64 placement: consecutive tenant ids (which arrive together
  // and stay equally hot) spread across shards instead of clustering.
  Insert(static_cast<int>(SplitMix64(static_cast<uint64_t>(tenant)) %
                          locals_.size()),
         tenant);
  ++size_;
  Rebalance();
}

void ShardMap::Remove(int tenant) {
  const int shard = shard_of(tenant);
  EASEML_CHECK(shard >= 0) << "ShardMap: tenant not mapped";
  Erase(shard, tenant);
  --size_;
  Rebalance();
}

void ShardMap::Rebalance() {
  for (;;) {
    int smallest = 0;
    int largest = 0;
    for (int s = 1; s < num_shards(); ++s) {
      if (locals_[s].size() < locals_[smallest].size()) smallest = s;
      if (locals_[s].size() > locals_[largest].size()) largest = s;
    }
    if (locals_[largest].size() - locals_[smallest].size() <= 1) return;
    // Deterministic move: the fullest shard (lowest index among ties — the
    // scan above keeps the first maximum) donates its highest tenant id to
    // the emptiest shard.
    const int moved = locals_[largest].back();
    Erase(largest, moved);
    Insert(smallest, moved);
  }
}

}  // namespace easeml::shard
