#ifndef EASEML_SHARD_SHARDED_SELECTOR_H_
#define EASEML_SHARD_SHARDED_SELECTOR_H_

#include <cstdint>
#include <memory>
#include <vector>

#include "common/clock.h"
#include "common/thread_annotations.h"
#include "core/multi_tenant_selector.h"
#include "shard/shard_map.h"
#include "shard/shard_pool.h"

namespace easeml::shard {

/// Sharded selector engine: parallel user-picking over tenant shards with a
/// deterministic reduction tree.
///
/// The serving hot path of the multi-tenant selector is the `Next()` scan —
/// O(T·K) over all tenants to find the best (empirical bound, UCB gap)
/// candidate. Tenants are conditionally independent given the shared
/// `SharedGpPrior`, so the scan shards cleanly by tenant: a `ShardMap`
/// hash-partitions tenants over N worker threads (`ShardPool`), each worker
/// scans only its local tenants through the scheduler policy's
/// `PickUserSharded` seam, and the tiny per-shard summaries (candidate id,
/// bound, gap — `ShardCandidate`-shaped structs inside each policy) are
/// merged through a deterministic binary reduction tree (`ReduceTree`) with
/// a total-order tie-break and exact (`ExactDoubleSum`) threshold
/// arithmetic. The winner is therefore BIT-IDENTICAL to the sequential
/// engine's pick for every shard count and any thread interleaving — the
/// conformance suite replays N ∈ {1,2,4,7} against the unsharded selector
/// across all five scheduler policies.
///
/// Tenant state stays shard-local: a tenant's arm selection and belief fold
/// execute on its owning shard's worker (`SelectArmFor` routing on the pick
/// path, the per-shard report queues below on the completion path), and the
/// per-arm in-flight masks live inside the tenant's `UserState`, so no
/// cross-shard belief synchronization ever happens — shards only exchange
/// their summaries at the reduction.
///
/// ## Report pipeline (coordinator / shard split)
///
/// `Report`/`Cancel` run in two phases. The COORDINATOR phase holds `mu_`:
/// it validates the ticket against the in-flight table, retires the entry
/// (duplicate taxonomy is pinned the moment the call returns), and enqueues
/// the FOLD — the O(t^2) Cholesky append plus the index-leaf refresh — on
/// the tenant's owning shard worker through `ShardPool::Enqueue`. The
/// worker drains its queue FIFO, so per-tenant fold order equals the order
/// the coordinator validated the completions in — exactly the sequential
/// engine's fold order — while folds for tenants on DIFFERENT shards run
/// concurrently instead of serializing under the engine lock. For policies
/// whose `ObservesOutcomes()` is false (everything but HYBRID) the
/// scheduler is sequenced immediately and `Report` returns with the fold
/// still in flight; HYBRID's freeze detector reads every tenant, so its
/// reports drain the queues before `OnOutcome`. Every reader of tenant or
/// index state (`Next`, accessors, churn) quiesces the same way: it takes
/// `mu_` — which stops new folds from being enqueued — then drains the
/// queues, so it always observes a fully folded engine.
///
/// With `SelectorOptions::use_candidate_index` the scan fan-out disappears
/// entirely: each shard keeps an incremental tournament tree over its
/// local tenants (`scheduler::CandidateIndex`, placement mirroring the
/// shard map), the routed seams refresh the served tenant's leaf on its
/// owning worker in O(log T), and `Next()` reads the N shard roots on the
/// coordinator — same picks, bit-identically, with no per-pick O(T/N)
/// work anywhere (see PickTenant).
///
/// Drop-in: the class IS a `core::MultiTenantSelector` (same ticketed
/// `Next()/Report()/Cancel()` protocol, same Status taxonomy), selected via
/// `SelectorOptions::num_shards > 1` through `MakeSelector`. Unlike the
/// base engine every public method is thread-safe: a selector-wide lock
/// serializes the protocol while each scan fans out internally. (Sole
/// exception: `scheduler_policy()` hands out a raw reference into policy
/// state and is for quiescent diagnostics only.) Tenant churn
/// (`AddTenant`/`RemoveTenant`) rebalances the shard map under the same
/// lock.
class ShardedMultiTenantSelector final : public core::MultiTenantSelector,
                                         private scheduler::ShardScan {
 public:
  /// Validates `options` (num_shards >= 1) and starts the shard workers.
  static Result<std::unique_ptr<ShardedMultiTenantSelector>> Create(
      const core::SelectorOptions& options);

  // Thread-safe protocol overrides: take the selector lock, then run the
  // base implementation, whose seam calls fan out to the shard workers.
  Result<int> AddTenant(std::shared_ptr<const gp::SharedGpPrior> prior,
                        std::vector<double> costs) override;
  Result<int> AddTenant(gp::DiscreteArmGp belief,
                        std::vector<double> costs) override;
  Result<int> AddTenantWithDefaultPrior(int num_models,
                                        std::vector<double> costs,
                                        double noise_variance = 1e-2) override;
  Status RemoveTenant(int tenant) override;
  int num_tenants() const override;
  bool Exhausted() const override;
  int num_in_flight() const override;
  bool HasDispatchableWork() const override;
  Result<Assignment> Next() override;
  Status Report(const Assignment& assignment, double accuracy) override;
  Status Cancel(const Assignment& assignment) override;
  Result<Assignment> InFlightAssignment(int64_t ticket) const override;
  Result<int> BestModel(int tenant) const override;
  Result<double> BestAccuracy(int tenant) const override;
  Result<int> RoundsServed(int tenant) const override;

  /// Shard count (== options().num_shards). Also serves the ShardScan
  /// interface handed to the scheduler policies.
  int num_shards() const override { return pool_.size(); }

  /// Current shard sizes, ascending shard index. The max is the per-scan
  /// critical path in tenants (diagnostics / bench).
  std::vector<int> ShardSizes() const;

  /// Thread-safe index invariant check (see the base class): additionally
  /// verifies the index placement mirrors the shard map exactly, so tenant
  /// churn rebalances can never desynchronize leaf ownership. Wired into
  /// the stress battery; OK when the index is disabled.
  Status ValidateIndex() const override;

  /// Thread-safe durable-state capture/restore (see the base class): both
  /// lock the coordinator and drain the fold pipeline first, so a capture
  /// is quiesced (every acknowledged fold applied) and a restore never
  /// races a worker.
  Result<core::DurableSelectorState> CaptureDurableState() const override;
  Status RestoreDurableState(const core::DurableSelectorState& state) override;

  /// Cumulative per-shard-worker CPU seconds spent in scan and fold
  /// closures. Max over shards tracks the parallel critical path even when
  /// the host has fewer cores than shards (see ShardPool). Locks and
  /// drains the report queues first, so the numbers include every fold of
  /// every completion already reported — same quiescence discipline as the
  /// other const accessors.
  std::vector<double> ShardCpuSeconds() const;

 private:
  ShardedMultiTenantSelector(core::MultiTenantSelector&& base,
                             int num_shards);

  // scheduler::ShardScan — the policies' view of the partition.
  //
  // REQUIRES(mu_) is the coordinator's view: the scan runs while the
  // coordinator holds mu_ for the whole barrier, and shard workers inherit
  // that exclusion (they execute strictly inside a RunAll/RunOn whose
  // caller holds mu_). Worker-side closures read the partition through a
  // reference captured under the lock, never through `map_` directly, so
  // the analysis sees every guarded access in an annotated scope.
  const std::vector<int>& LocalTenants(int shard) const override
      EASEML_REQUIRES(mu_) {
    return map_.local(shard);
  }
  void Run(const std::function<void(int)>& fn) override { pool_.RunAll(fn); }

  // Engine seams (called with mu_ held by the public overrides). The
  // outcome/cancel fold seams (`RecordOutcomeFor`/`CancelSelectionFor`)
  // are deliberately NOT overridden: the sharded Report/Cancel overrides
  // already run the whole fold on the owning worker via the report queue,
  // so the base implementations execute worker-side — an override that
  // re-routed through the pool would deadlock the worker on itself.
  Result<int> PickTenant(int round) override EASEML_REQUIRES(mu_);
  Result<int> SelectArmFor(int tenant) override EASEML_REQUIRES(mu_);
  // Churn re-partitions the shard map (rebalanced within +-1, which may
  // move OTHER tenants between shards); the candidate index mirrors the
  // new placement via SyncIndex. On add, the base engine syncs right after
  // this hook; removal syncs here (the base only neutralizes the leaf).
  void OnTenantAdded(int tenant) override EASEML_REQUIRES(mu_) {
    map_.Add(tenant);
    SyncIndexPlacement();
    // A rebalance may have moved OTHER tenants too: republish the whole
    // placement, then the new tenant's first observation.
    NotifyPlacementLocked();
    NotifyTenantEvent(tenant);
  }
  void OnTenantRemoved(int tenant) override EASEML_REQUIRES(mu_) {
    map_.Remove(tenant);
    SyncIndexPlacement();
    // The base hook already published the retirement event; dropping the
    // tenant from the placement is what retires its snapshot entry.
    NotifyPlacementLocked();
  }

  /// Publishes the current shard->tenants partition to the observer (no-op
  /// without one). Quiesced by construction: every caller holds mu_ right
  /// after a drain, so no worker-side tenant event runs concurrently.
  void NotifyPlacementLocked() EASEML_REQUIRES(mu_);

  /// Rebuilds the index placement from the shard map's partition (no-op
  /// when the index is disabled): one tournament tree per shard over its
  /// local tenants, so a tenant's leaf refresh runs on its owning worker
  /// (inside the routed seams) and stays shard-local. Cached keys are
  /// reused — churn costs O(T) re-aggregation, not O(T·K) re-reads.
  void SyncIndexPlacement() EASEML_REQUIRES(mu_);

  /// Runs `fn` on `tenant`'s owning shard worker and returns its result;
  /// a precise FailedPrecondition when the pool declined the closure
  /// (shut down) — the closure's result is only read when it actually ran.
  template <typename Fn>
  auto RouteToOwner(int tenant, Fn fn) -> decltype(fn()) EASEML_REQUIRES(mu_);

  /// Quiesces the report pipeline: blocks until every queued fold has
  /// finished. Callers hold `mu_`, so no new fold can be enqueued while
  /// they proceed — from here to unlock the engine is fully folded. Every
  /// reader of tenant/index state must call this right after locking. The
  /// observed wall-time stall (readers blocked behind in-flight folds) is
  /// the pipeline's queue-stall metric.
  void DrainFolds() const EASEML_REQUIRES(mu_) {
    core::SelectorObserver* obs = observer();
    if (obs == nullptr) {
      pool_.DrainQueues();
      return;
    }
    const double w0 = MonotonicSeconds();
    pool_.DrainQueues();
    obs->OnDrainWait((MonotonicSeconds() - w0) * 1e6);
  }

  /// Serializes the ticketed protocol. Guards the shard map (and, through
  /// the engine seams it wraps, all base-engine tenant state: users,
  /// in-flight table, candidate index — owned by the base class and
  /// therefore not annotatable here). pool_ is internally synchronized;
  /// queued folds touch only their own tenant's belief and shard-local
  /// index tree, and every path that reads or resizes tenant state drains
  /// them first (DrainFolds), so fold writes never race an engine read.
  mutable Mutex mu_;
  ShardMap map_ EASEML_GUARDED_BY(mu_);
  ShardPool pool_;
  /// Cached scheduler().ObservesOutcomes(): true (HYBRID) forces Report to
  /// drain the fold queues before sequencing OnOutcome; false lets Report
  /// return with its fold still queued (fully asynchronous completions).
  const bool scheduler_observes_outcomes_;
};

/// Builds the selector engine `options` asks for: the plain sequential
/// `MultiTenantSelector` when `num_shards <= 1`, the sharded engine
/// otherwise. The two are interchangeable behind the returned pointer and
/// produce bit-identical selection traces.
Result<std::unique_ptr<core::MultiTenantSelector>> MakeSelector(
    const core::SelectorOptions& options);

}  // namespace easeml::shard

#endif  // EASEML_SHARD_SHARDED_SELECTOR_H_
