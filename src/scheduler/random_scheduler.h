#ifndef EASEML_SCHEDULER_RANDOM_SCHEDULER_H_
#define EASEML_SCHEDULER_RANDOM_SCHEDULER_H_

#include "common/rng.h"
#include "scheduler/scheduler_policy.h"

namespace easeml::scheduler {

/// RANDOM (Section 5.3): serves a uniformly random active user each round —
/// sampling with replacement, versus ROUNDROBIN's without.
class RandomScheduler : public SchedulerPolicy {
 public:
  explicit RandomScheduler(uint64_t seed) : rng_(seed) {}

  Result<int> PickUser(const std::vector<UserState>& users,
                       int round) override;
  /// Order-preserving merge of the shards' active lists, then the same
  /// single uniform draw as the sequential pick (identical RNG stream).
  Result<int> PickUserSharded(const std::vector<UserState>& users, int round,
                              ShardScan& scan) override;
  /// Index-backed pick: schedulable total off the shard roots (identical
  /// single draw), then rank binary search for the j-th schedulable id.
  Result<int> PickUserIndexed(const std::vector<UserState>& users, int round,
                              const CandidateIndex& index) override;
  std::string name() const override { return "random"; }

  void SaveDurable(std::string* out) const override;
  Status LoadDurable(std::string_view* in) override;

 private:
  Rng rng_;
};

}  // namespace easeml::scheduler

#endif  // EASEML_SCHEDULER_RANDOM_SCHEDULER_H_
