#ifndef EASEML_SCHEDULER_FCFS_H_
#define EASEML_SCHEDULER_FCFS_H_

#include "scheduler/scheduler_policy.h"

namespace easeml::scheduler {

/// First-come-first-served: serves the lowest-index active user until all of
/// its models are trained, then moves to the next.
///
/// Included as the negative example of Section 4.1 ("This strategy incurs a
/// terrible cumulative regret of order T"); tests assert that it loses to
/// ROUNDROBIN.
class FcfsScheduler : public SchedulerPolicy {
 public:
  Result<int> PickUser(const std::vector<UserState>& users,
                       int round) override;
  /// Min-reduce of each shard's lowest schedulable user id.
  Result<int> PickUserSharded(const std::vector<UserState>& users, int round,
                              ShardScan& scan) override;
  /// O(1) per shard: the lowest schedulable id is a tournament-root field.
  Result<int> PickUserIndexed(const std::vector<UserState>& users, int round,
                              const CandidateIndex& index) override;
  std::string name() const override { return "fcfs"; }
};

}  // namespace easeml::scheduler

#endif  // EASEML_SCHEDULER_FCFS_H_
