#include "scheduler/fcfs.h"

namespace easeml::scheduler {

Result<int> FcfsScheduler::PickUser(const std::vector<UserState>& users,
                                    int round) {
  (void)round;
  for (size_t i = 0; i < users.size(); ++i) {
    if (users[i].Schedulable()) return static_cast<int>(i);
  }
  return Status::FailedPrecondition("FCFS: all users exhausted");
}

}  // namespace easeml::scheduler
