#include "scheduler/fcfs.h"

#include <algorithm>
#include <limits>

#include "common/reduction_tree.h"
#include "scheduler/candidate_index.h"

namespace easeml::scheduler {

Result<int> FcfsScheduler::PickUser(const std::vector<UserState>& users,
                                    int round) {
  (void)round;
  for (size_t i = 0; i < users.size(); ++i) {
    if (users[i].Schedulable()) return static_cast<int>(i);
  }
  return Status::FailedPrecondition("FCFS: all users exhausted");
}

Result<int> FcfsScheduler::PickUserSharded(const std::vector<UserState>& users,
                                           int round, ShardScan& scan) {
  (void)round;
  constexpr int kNone = std::numeric_limits<int>::max();
  // Per-shard summary: the lowest schedulable local id (locals ascend, so
  // the first hit is the shard minimum); min-reduce = the sequential pick.
  std::vector<int> first(scan.num_shards(), kNone);
  scan.Run([&](int shard) {
    for (int t : scan.LocalTenants(shard)) {
      if (users[t].Schedulable()) {
        first[shard] = t;
        break;
      }
    }
  });
  const int winner =
      ReduceTree(std::move(first), [](int a, int b) { return std::min(a, b); });
  if (winner == kNone) {
    return Status::FailedPrecondition("FCFS: all users exhausted");
  }
  return winner;
}

Result<int> FcfsScheduler::PickUserIndexed(const std::vector<UserState>& users,
                                           int round,
                                           const CandidateIndex& index) {
  (void)users;
  (void)round;
  // min_schedulable is maintained at every tournament root; the min-merge
  // across shards is the scan's reduction, read in O(N) with no scan.
  int winner = CandidateIndex::kNone;
  for (int s = 0; s < index.num_shards(); ++s) {
    winner = std::min(winner, index.Root(s).min_schedulable);
  }
  if (winner == CandidateIndex::kNone) {
    return Status::FailedPrecondition("FCFS: all users exhausted");
  }
  return winner;
}

}  // namespace easeml::scheduler
