#ifndef EASEML_SCHEDULER_ROUND_ROBIN_H_
#define EASEML_SCHEDULER_ROUND_ROBIN_H_

#include "scheduler/scheduler_policy.h"

namespace easeml::scheduler {

/// ROUNDROBIN (Section 4.2): serves users cyclically, skipping exhausted
/// ones. Enforces absolute fairness; Theorem 2 proves its regret bound.
class RoundRobinScheduler : public SchedulerPolicy {
 public:
  Result<int> PickUser(const std::vector<UserState>& users,
                       int round) override;
  /// Min-reduce of each shard's schedulable user closest (cyclically) to
  /// the cursor; advances the cursor exactly like the sequential walk.
  Result<int> PickUserSharded(const std::vector<UserState>& users, int round,
                              ShardScan& scan) override;
  /// Index-backed pick: the cursor shift is applied at READ time (lowest
  /// schedulable id >= cursor via suffix descent, else the root minimum),
  /// so advancing the cursor never touches a leaf.
  Result<int> PickUserIndexed(const std::vector<UserState>& users, int round,
                              const CandidateIndex& index) override;
  std::string name() const override { return "round-robin"; }

  void SaveDurable(std::string* out) const override;
  Status LoadDurable(std::string_view* in) override;

 private:
  int cursor_ = 0;  // next user position to try
};

}  // namespace easeml::scheduler

#endif  // EASEML_SCHEDULER_ROUND_ROBIN_H_
