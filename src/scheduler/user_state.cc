#include "scheduler/user_state.h"

#include <algorithm>

namespace easeml::scheduler {

UserState::UserState(int user_id,
                     std::unique_ptr<bandit::BanditPolicy> policy,
                     std::vector<double> costs)
    : user_id_(user_id),
      policy_(std::move(policy)),
      costs_(std::move(costs)),
      played_(costs_.size(), false),
      in_flight_(costs_.size(), false),
      in_flight_ucb_(costs_.size(), 0.0) {}

Result<UserState> UserState::Create(
    int user_id, std::unique_ptr<bandit::BanditPolicy> policy,
    std::vector<double> costs) {
  if (policy == nullptr) {
    return Status::InvalidArgument("UserState: null policy");
  }
  if (static_cast<int>(costs.size()) != policy->num_arms()) {
    return Status::InvalidArgument("UserState: one cost per arm required");
  }
  for (double c : costs) {
    if (c <= 0.0) {
      return Status::InvalidArgument("UserState: costs must be positive");
    }
  }
  return UserState(user_id, std::move(policy), std::move(costs));
}

Status UserState::set_max_in_flight(int cap) {
  if (cap < 1) {
    return Status::InvalidArgument("set_max_in_flight: cap must be >= 1");
  }
  max_in_flight_ = cap;
  return Status::OK();
}

void UserState::Retire() {
  retired_ = true;
  policy_.reset();  // drop the O(t²) belief; history fields stay readable
}

std::vector<int> UserState::AvailableArms() const {
  if (retired_) return {};
  std::vector<int> arms;
  arms.reserve(played_.size() - num_played_);
  for (int a = 0; a < num_models(); ++a) {
    if (!played_[a] && !in_flight_[a]) arms.push_back(a);
  }
  return arms;
}

Result<int> UserState::SelectArm() {
  if (num_in_flight_ >= max_in_flight_) {
    return Status::FailedPrecondition(
        "SelectArm: outcome of previous selection not recorded "
        "(in-flight cap reached)");
  }
  if (Exhausted()) {
    return Status::FailedPrecondition("SelectArm: all models trained");
  }
  const std::vector<int> available = AvailableArms();
  if (available.empty()) {
    return Status::FailedPrecondition(
        "SelectArm: every remaining model is already in flight");
  }
  const int t = rounds_served_ + 1;
  EASEML_ASSIGN_OR_RETURN(int arm, policy_->SelectArm(available, t));
  in_flight_[arm] = true;
  ++num_in_flight_;
  // Capture B_t(a_t) for the sigma~ recurrence. Policies without a belief
  // report the trivially correct bound of 1 (max accuracy).
  in_flight_ucb_[arm] = policy_->Ucb(arm, t);
  return arm;
}

Status UserState::RecordOutcome(int arm, double reward) {
  if (num_in_flight_ == 0) {
    return Status::FailedPrecondition("RecordOutcome: no pending selection");
  }
  if (arm < 0 || arm >= num_models() || !in_flight_[arm]) {
    return Status::InvalidArgument(
        "RecordOutcome: arm does not match a pending selection");
  }
  EASEML_RETURN_NOT_OK(policy_->Update(arm, reward));
  played_[arm] = true;
  ++num_played_;
  ++rounds_served_;
  consumed_cost_ += costs_[arm];
  last_reward_ = reward;
  best_reward_ = std::max(best_reward_, reward);

  // Algorithm 2, line 6 — against the bound captured when THIS arm was
  // selected, so out-of-order completions charge the right B_t.
  const double bound = std::min(in_flight_ucb_[arm], min_empirical_ucb_);
  empirical_bound_ = bound - reward;
  min_empirical_ucb_ = std::min(min_empirical_ucb_, reward + empirical_bound_);

  in_flight_[arm] = false;
  in_flight_ucb_[arm] = 0.0;
  --num_in_flight_;
  return Status::OK();
}

Status UserState::CancelSelection(int arm) {
  if (num_in_flight_ == 0) {
    return Status::FailedPrecondition("CancelSelection: no pending selection");
  }
  if (arm < 0 || arm >= num_models() || !in_flight_[arm]) {
    return Status::InvalidArgument(
        "CancelSelection: arm does not match a pending selection");
  }
  in_flight_[arm] = false;
  in_flight_ucb_[arm] = 0.0;
  --num_in_flight_;
  return Status::OK();
}

DurableUserState UserState::CaptureDurable() const {
  DurableUserState d;
  d.user_id = user_id_;
  d.costs = costs_;
  d.played = played_;
  d.num_played = num_played_;
  d.rounds_served = rounds_served_;
  d.in_flight = in_flight_;
  d.in_flight_ucb = in_flight_ucb_;
  d.num_in_flight = num_in_flight_;
  d.max_in_flight = max_in_flight_;
  d.retired = retired_;
  d.best_reward = best_reward_;
  d.last_reward = last_reward_;
  d.empirical_bound = empirical_bound_;
  d.min_empirical_ucb = min_empirical_ucb_;
  d.consumed_cost = consumed_cost_;
  return d;
}

Result<UserState> UserState::FromDurable(
    const DurableUserState& d, std::unique_ptr<bandit::BanditPolicy> policy) {
  if (d.retired != (policy == nullptr)) {
    return Status::InvalidArgument(
        "UserState::FromDurable: policy must be absent exactly for retired "
        "tenants");
  }
  const size_t k = d.costs.size();
  if (d.played.size() != k || d.in_flight.size() != k ||
      d.in_flight_ucb.size() != k) {
    return Status::DataLoss(
        "UserState::FromDurable: per-arm vectors disagree on arm count");
  }
  if (policy != nullptr && static_cast<size_t>(policy->num_arms()) != k) {
    return Status::DataLoss(
        "UserState::FromDurable: policy arm count does not match costs");
  }
  if (d.num_played < 0 || d.num_in_flight < 0 || d.max_in_flight < 1 ||
      d.num_played + d.num_in_flight > static_cast<int>(k)) {
    return Status::DataLoss("UserState::FromDurable: counters out of range");
  }
  UserState state(d.user_id, std::move(policy), d.costs);
  state.played_ = d.played;
  state.num_played_ = d.num_played;
  state.rounds_served_ = d.rounds_served;
  state.in_flight_ = d.in_flight;
  state.in_flight_ucb_ = d.in_flight_ucb;
  state.num_in_flight_ = d.num_in_flight;
  state.max_in_flight_ = d.max_in_flight;
  state.retired_ = d.retired;
  state.best_reward_ = d.best_reward;
  state.last_reward_ = d.last_reward;
  state.empirical_bound_ = d.empirical_bound;
  state.min_empirical_ucb_ = d.min_empirical_ucb;
  state.consumed_cost_ = d.consumed_cost;
  return state;
}

double UserState::MaxUcb() const {
  const std::vector<int> remaining = AvailableArms();
  if (remaining.empty()) return -std::numeric_limits<double>::infinity();
  return policy_->MaxUcb(remaining, rounds_served_ + 1);
}

}  // namespace easeml::scheduler
