#include "scheduler/user_state.h"

#include <algorithm>

namespace easeml::scheduler {

UserState::UserState(int user_id,
                     std::unique_ptr<bandit::BanditPolicy> policy,
                     std::vector<double> costs)
    : user_id_(user_id),
      policy_(std::move(policy)),
      costs_(std::move(costs)),
      played_(costs_.size(), false),
      in_flight_(costs_.size(), false),
      in_flight_ucb_(costs_.size(), 0.0) {}

Result<UserState> UserState::Create(
    int user_id, std::unique_ptr<bandit::BanditPolicy> policy,
    std::vector<double> costs) {
  if (policy == nullptr) {
    return Status::InvalidArgument("UserState: null policy");
  }
  if (static_cast<int>(costs.size()) != policy->num_arms()) {
    return Status::InvalidArgument("UserState: one cost per arm required");
  }
  for (double c : costs) {
    if (c <= 0.0) {
      return Status::InvalidArgument("UserState: costs must be positive");
    }
  }
  return UserState(user_id, std::move(policy), std::move(costs));
}

Status UserState::set_max_in_flight(int cap) {
  if (cap < 1) {
    return Status::InvalidArgument("set_max_in_flight: cap must be >= 1");
  }
  max_in_flight_ = cap;
  return Status::OK();
}

void UserState::Retire() {
  retired_ = true;
  policy_.reset();  // drop the O(t²) belief; history fields stay readable
}

std::vector<int> UserState::AvailableArms() const {
  if (retired_) return {};
  std::vector<int> arms;
  arms.reserve(played_.size() - num_played_);
  for (int a = 0; a < num_models(); ++a) {
    if (!played_[a] && !in_flight_[a]) arms.push_back(a);
  }
  return arms;
}

Result<int> UserState::SelectArm() {
  if (num_in_flight_ >= max_in_flight_) {
    return Status::FailedPrecondition(
        "SelectArm: outcome of previous selection not recorded "
        "(in-flight cap reached)");
  }
  if (Exhausted()) {
    return Status::FailedPrecondition("SelectArm: all models trained");
  }
  const std::vector<int> available = AvailableArms();
  if (available.empty()) {
    return Status::FailedPrecondition(
        "SelectArm: every remaining model is already in flight");
  }
  const int t = rounds_served_ + 1;
  EASEML_ASSIGN_OR_RETURN(int arm, policy_->SelectArm(available, t));
  in_flight_[arm] = true;
  ++num_in_flight_;
  // Capture B_t(a_t) for the sigma~ recurrence. Policies without a belief
  // report the trivially correct bound of 1 (max accuracy).
  in_flight_ucb_[arm] = policy_->Ucb(arm, t);
  return arm;
}

Status UserState::RecordOutcome(int arm, double reward) {
  if (num_in_flight_ == 0) {
    return Status::FailedPrecondition("RecordOutcome: no pending selection");
  }
  if (arm < 0 || arm >= num_models() || !in_flight_[arm]) {
    return Status::InvalidArgument(
        "RecordOutcome: arm does not match a pending selection");
  }
  EASEML_RETURN_NOT_OK(policy_->Update(arm, reward));
  played_[arm] = true;
  ++num_played_;
  ++rounds_served_;
  consumed_cost_ += costs_[arm];
  last_reward_ = reward;
  best_reward_ = std::max(best_reward_, reward);

  // Algorithm 2, line 6 — against the bound captured when THIS arm was
  // selected, so out-of-order completions charge the right B_t.
  const double bound = std::min(in_flight_ucb_[arm], min_empirical_ucb_);
  empirical_bound_ = bound - reward;
  min_empirical_ucb_ = std::min(min_empirical_ucb_, reward + empirical_bound_);

  in_flight_[arm] = false;
  in_flight_ucb_[arm] = 0.0;
  --num_in_flight_;
  return Status::OK();
}

Status UserState::CancelSelection(int arm) {
  if (num_in_flight_ == 0) {
    return Status::FailedPrecondition("CancelSelection: no pending selection");
  }
  if (arm < 0 || arm >= num_models() || !in_flight_[arm]) {
    return Status::InvalidArgument(
        "CancelSelection: arm does not match a pending selection");
  }
  in_flight_[arm] = false;
  in_flight_ucb_[arm] = 0.0;
  --num_in_flight_;
  return Status::OK();
}

double UserState::MaxUcb() const {
  const std::vector<int> remaining = AvailableArms();
  if (remaining.empty()) return -std::numeric_limits<double>::infinity();
  return policy_->MaxUcb(remaining, rounds_served_ + 1);
}

}  // namespace easeml::scheduler
