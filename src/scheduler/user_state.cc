#include "scheduler/user_state.h"

#include <algorithm>

namespace easeml::scheduler {

UserState::UserState(int user_id,
                     std::unique_ptr<bandit::BanditPolicy> policy,
                     std::vector<double> costs)
    : user_id_(user_id),
      policy_(std::move(policy)),
      costs_(std::move(costs)),
      played_(costs_.size(), false) {}

Result<UserState> UserState::Create(
    int user_id, std::unique_ptr<bandit::BanditPolicy> policy,
    std::vector<double> costs) {
  if (policy == nullptr) {
    return Status::InvalidArgument("UserState: null policy");
  }
  if (static_cast<int>(costs.size()) != policy->num_arms()) {
    return Status::InvalidArgument("UserState: one cost per arm required");
  }
  for (double c : costs) {
    if (c <= 0.0) {
      return Status::InvalidArgument("UserState: costs must be positive");
    }
  }
  return UserState(user_id, std::move(policy), std::move(costs));
}

std::vector<int> UserState::AvailableArms() const {
  std::vector<int> arms;
  arms.reserve(played_.size() - num_played_);
  for (int a = 0; a < num_models(); ++a) {
    if (!played_[a]) arms.push_back(a);
  }
  return arms;
}

Result<int> UserState::SelectArm() {
  if (pending_arm_ >= 0) {
    return Status::FailedPrecondition(
        "SelectArm: outcome of previous selection not recorded");
  }
  if (Exhausted()) {
    return Status::FailedPrecondition("SelectArm: all models trained");
  }
  const int t = rounds_served_ + 1;
  EASEML_ASSIGN_OR_RETURN(int arm, policy_->SelectArm(AvailableArms(), t));
  pending_arm_ = arm;
  // Capture B_t(a_t) for the sigma~ recurrence. Policies without a belief
  // report the trivially correct bound of 1 (max accuracy).
  pending_ucb_ = policy_->Ucb(arm, t);
  return arm;
}

Status UserState::RecordOutcome(int arm, double reward) {
  if (pending_arm_ < 0) {
    return Status::FailedPrecondition("RecordOutcome: no pending selection");
  }
  if (arm != pending_arm_) {
    return Status::InvalidArgument(
        "RecordOutcome: arm does not match pending selection");
  }
  EASEML_RETURN_NOT_OK(policy_->Update(arm, reward));
  played_[arm] = true;
  ++num_played_;
  ++rounds_served_;
  consumed_cost_ += costs_[arm];
  last_reward_ = reward;
  best_reward_ = std::max(best_reward_, reward);

  // Algorithm 2, line 6.
  const double bound = std::min(pending_ucb_, min_empirical_ucb_);
  empirical_bound_ = bound - reward;
  min_empirical_ucb_ = std::min(min_empirical_ucb_, reward + empirical_bound_);

  pending_arm_ = -1;
  pending_ucb_ = 0.0;
  return Status::OK();
}

double UserState::MaxUcb() const {
  if (Exhausted()) return -std::numeric_limits<double>::infinity();
  const int t = rounds_served_ + 1;
  double best = -std::numeric_limits<double>::infinity();
  for (int a = 0; a < num_models(); ++a) {
    if (played_[a]) continue;
    best = std::max(best, policy_->Ucb(a, t));
  }
  return best;
}

}  // namespace easeml::scheduler
