#ifndef EASEML_SCHEDULER_SCHEDULER_POLICY_H_
#define EASEML_SCHEDULER_SCHEDULER_POLICY_H_

#include <functional>
#include <string>
#include <vector>

#include "common/status.h"
#include "scheduler/user_state.h"

namespace easeml::scheduler {

class CandidateIndex;

/// Parallel-scan substrate a sharded selector engine hands to
/// `SchedulerPolicy::PickUserSharded`: users are partitioned into shards,
/// each owned by one worker thread that scans only its local tenants.
///
/// The contract a policy's sharded scan may rely on:
///  - `LocalTenants(s)` lists the user ids owned by shard `s` in ascending
///    order; every non-retired user belongs to exactly one shard.
///  - `Run(fn)` invokes `fn(s)` once per shard, concurrently, and returns
///    after ALL shards finished (a barrier). Writes made by `fn` are
///    visible to the caller afterwards. `fn` must only touch users local
///    to its shard plus its own per-shard output slot.
class ShardScan {
 public:
  virtual ~ShardScan() = default;

  virtual int num_shards() const = 0;

  /// User ids owned by `shard`, ascending.
  virtual const std::vector<int>& LocalTenants(int shard) const = 0;

  /// Barrier fan-out: runs `fn(shard)` on every shard's worker.
  virtual void Run(const std::function<void(int)>& fn) = 0;
};

/// User-picking phase of the multi-tenant selection loop (Section 4).
///
/// At each global round the simulator (or the live service) asks the
/// scheduler which tenant to serve next; that tenant then runs one step of
/// its own model-picking policy. Exhausted tenants (all models trained) must
/// never be returned.
class SchedulerPolicy {
 public:
  virtual ~SchedulerPolicy() = default;

  /// Picks the next user to serve. `round` is the global round counter,
  /// 1-based. Fails with FailedPrecondition when every user is exhausted.
  virtual Result<int> PickUser(const std::vector<UserState>& users,
                               int round) = 0;

  /// Sharded twin of `PickUser`: fans the O(T·K) candidate scan out over
  /// `scan`'s shards and merges tiny per-shard summaries through a
  /// deterministic reduction, picking the SAME user `PickUser` would pick
  /// on the same state — bit-identically, for any shard count. Policies
  /// whose scan is worth parallelizing override this; the default runs the
  /// sequential scan (correct, just not parallel). Stateful policies
  /// (cursors, RNG streams, freeze detectors) must consume their state
  /// identically on both paths.
  virtual Result<int> PickUserSharded(const std::vector<UserState>& users,
                                      int round, ShardScan& scan) {
    (void)scan;
    return PickUser(users, round);
  }

  /// Index-backed twin of `PickUser`: answers the pick from the selector's
  /// incremental candidate index (per-shard tournament roots + pruned
  /// descents, see scheduler/candidate_index.h) in O(log T) instead of
  /// rescanning all T users — and must pick the SAME user `PickUser` would,
  /// bit-identically, with identical consumption of any policy state
  /// (cursors, RNG streams). The caller guarantees the index is fresh
  /// (every tenant event was `Refresh`ed). The default falls back to the
  /// sequential scan — correct for any policy, just not indexed; policies
  /// whose pick cannot beat the scan (RANDOM's candidate-rank draw under a
  /// threshold-dependent candidate set) deliberately keep it.
  virtual Result<int> PickUserIndexed(const std::vector<UserState>& users,
                                      int round, const CandidateIndex& index) {
    (void)index;
    return PickUser(users, round);
  }

  /// Called after the served user's outcome has been recorded; lets
  /// stateful schedulers (HYBRID's freeze detector) observe progress.
  virtual void OnOutcome(const std::vector<UserState>& users,
                         int served_user) {
    (void)users;
    (void)served_user;
  }

  /// True when OnOutcome actually reads engine state (HYBRID's freeze
  /// detector scans every tenant's candidate set and best reward). Engines
  /// that fold outcomes asynchronously must quiesce the fold pipeline
  /// before sequencing OnOutcome for such a policy — and may sequence it
  /// immediately, with folds still queued, when this is false (the
  /// default: OnOutcome is a no-op for the other policies).
  virtual bool ObservesOutcomes() const { return false; }

  /// Whether the algorithm requires the initialization sweep of Algorithm 2
  /// (serve every user once before regular scheduling).
  virtual bool RequiresInitialSweep() const { return false; }

  virtual std::string name() const = 0;

  /// Appends the policy's complete mutable state (cursors, RNG streams,
  /// freeze detectors — everything not derivable from construction
  /// options) to `out` in the binary_io encoding. Stateless policies keep
  /// the default no-op. Checkpoint recovery calls `LoadDurable` on a
  /// policy built from the SAME options, so configuration is never stored.
  virtual void SaveDurable(std::string* out) const { (void)out; }

  /// Consumes exactly what `SaveDurable` appended from the front of `in`,
  /// restoring the mutable state bit-exactly. DataLoss on malformed input.
  virtual Status LoadDurable(std::string_view* in) {
    (void)in;
    return Status::OK();
  }

 protected:
  /// Indices of users a scheduler may serve now (see
  /// UserState::Schedulable).
  static std::vector<int> ActiveUsers(const std::vector<UserState>& users);
};

}  // namespace easeml::scheduler

#endif  // EASEML_SCHEDULER_SCHEDULER_POLICY_H_
