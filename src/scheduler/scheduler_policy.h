#ifndef EASEML_SCHEDULER_SCHEDULER_POLICY_H_
#define EASEML_SCHEDULER_SCHEDULER_POLICY_H_

#include <string>
#include <vector>

#include "common/status.h"
#include "scheduler/user_state.h"

namespace easeml::scheduler {

/// User-picking phase of the multi-tenant selection loop (Section 4).
///
/// At each global round the simulator (or the live service) asks the
/// scheduler which tenant to serve next; that tenant then runs one step of
/// its own model-picking policy. Exhausted tenants (all models trained) must
/// never be returned.
class SchedulerPolicy {
 public:
  virtual ~SchedulerPolicy() = default;

  /// Picks the next user to serve. `round` is the global round counter,
  /// 1-based. Fails with FailedPrecondition when every user is exhausted.
  virtual Result<int> PickUser(const std::vector<UserState>& users,
                               int round) = 0;

  /// Called after the served user's outcome has been recorded; lets
  /// stateful schedulers (HYBRID's freeze detector) observe progress.
  virtual void OnOutcome(const std::vector<UserState>& users,
                         int served_user) {
    (void)users;
    (void)served_user;
  }

  /// Whether the algorithm requires the initialization sweep of Algorithm 2
  /// (serve every user once before regular scheduling).
  virtual bool RequiresInitialSweep() const { return false; }

  virtual std::string name() const = 0;

 protected:
  /// Indices of users a scheduler may serve now (see
  /// UserState::Schedulable).
  static std::vector<int> ActiveUsers(const std::vector<UserState>& users);
};

}  // namespace easeml::scheduler

#endif  // EASEML_SCHEDULER_SCHEDULER_POLICY_H_
