#ifndef EASEML_SCHEDULER_GREEDY_H_
#define EASEML_SCHEDULER_GREEDY_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/rng.h"
#include "scheduler/scheduler_policy.h"

namespace easeml::scheduler {

/// Candidate set V_t of Algorithm 2 line 7: active users whose empirical
/// confidence bound sigma~ is at least the average over active users.
/// Users without observations yet (infinite sigma~) are always candidates.
/// Returns an empty vector when no user is active.
///
/// The threshold test is evaluated EXACTLY (`ExactDoubleSum`): membership
/// is "sigma~ · finite_count >= exact sum of finite bounds", which is
/// independent of accumulation order — the property that lets a sharded
/// scan partition the users arbitrarily and still reproduce this set
/// bit-identically.
std::vector<int> ComputeCandidateSet(const std::vector<UserState>& users);

/// How line 8 of Algorithm 2 picks one user from the candidate set. The
/// paper proves the regret bound for ANY rule ("the regret bound remains
/// the same regardless of the rule") but observes that the choice matters
/// in practice (Section 4.3, "Strategy for Line 8"); these are the three
/// variants it discusses.
enum class Line8Rule {
  /// ease.ml's production rule: maximum gap between the largest upper
  /// confidence bound and the best accuracy so far.
  kMaxUcbGap,
  /// Maximum empirical variance sigma~.
  kMaxEmpiricalBound,
  /// Uniformly random candidate.
  kRandom,
};

std::string Line8RuleName(Line8Rule rule);

/// GREEDY user picking (Algorithm 2, Section 4.3).
///
/// Phase 1 computes the candidate set from the empirical confidence bounds;
/// phase 2 picks one candidate according to the configured line-8 rule.
/// Requires every user to run a GP-UCB model-picking policy and the
/// initialization sweep of Algorithm 2 lines 1-4.
class GreedyScheduler : public SchedulerPolicy {
 public:
  explicit GreedyScheduler(Line8Rule rule = Line8Rule::kMaxUcbGap,
                           uint64_t seed = 0)
      : rule_(rule), rng_(seed) {}

  Result<int> PickUser(const std::vector<UserState>& users,
                       int round) override;
  /// Two-barrier sharded scan: (A) exact candidate-threshold statistics,
  /// (B) per-shard line-8 argmax over local candidates — the O(T·K) batched
  /// MaxUcb reads — merged with a (key, lowest-id) total order.
  Result<int> PickUserSharded(const std::vector<UserState>& users, int round,
                              ShardScan& scan) override;
  /// Index-backed pick: phase A from the exactly-merged shard aggregates
  /// (O(N)), phase B from the root argmax when it is a candidate (the
  /// common case) or a pruned tournament descent otherwise — no O(T) scan,
  /// no per-candidate MaxUcb reads. The random line-8 rule falls back to
  /// the sequential scan (candidate RANKS are not indexable under a moving
  /// threshold); the default max-ucb-gap rule is fully indexed.
  Result<int> PickUserIndexed(const std::vector<UserState>& users, int round,
                              const CandidateIndex& index) override;
  bool RequiresInitialSweep() const override { return true; }
  std::string name() const override { return "greedy"; }

  /// The RNG stream (consumed only by the random line-8 rule, but saved
  /// unconditionally: state, not configuration, decides what is durable).
  void SaveDurable(std::string* out) const override;
  Status LoadDurable(std::string_view* in) override;

  Line8Rule rule() const { return rule_; }

 private:
  Line8Rule rule_;
  Rng rng_;
};

}  // namespace easeml::scheduler

#endif  // EASEML_SCHEDULER_GREEDY_H_
