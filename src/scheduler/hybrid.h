#ifndef EASEML_SCHEDULER_HYBRID_H_
#define EASEML_SCHEDULER_HYBRID_H_

#include <vector>

#include "scheduler/greedy.h"
#include "scheduler/round_robin.h"
#include "scheduler/scheduler_policy.h"

namespace easeml::scheduler {

/// HYBRID (Section 4.4), ease.ml's default multi-tenant scheduler.
///
/// Runs GREEDY until it detects the "freezing stage": the candidate set has
/// stayed identical and the global objective (sum of best observed
/// accuracies, the observable complement of total regret) has not improved
/// for `patience` consecutive outcomes. It then switches to ROUNDROBIN so
/// the remaining users keep making progress. The paper uses s = 10.
class HybridScheduler : public SchedulerPolicy {
 public:
  explicit HybridScheduler(int patience = 10,
                           Line8Rule rule = Line8Rule::kMaxUcbGap,
                           uint64_t seed = 0)
      : patience_(patience), greedy_(rule, seed) {}

  Result<int> PickUser(const std::vector<UserState>& users,
                       int round) override;
  /// Delegates to the active phase's sharded scan (GREEDY before the
  /// freeze, ROUNDROBIN after); the freeze detector itself runs in
  /// OnOutcome on the coordinator, identically on both paths.
  Result<int> PickUserSharded(const std::vector<UserState>& users, int round,
                              ShardScan& scan) override;
  /// Delegates to the active phase's indexed pick (GREEDY before the
  /// freeze, ROUNDROBIN after). The freeze detector stays in OnOutcome on
  /// the report path — it compares whole candidate SETS, which no O(log T)
  /// summary answers — so HYBRID's Next() is fully indexed either way.
  Result<int> PickUserIndexed(const std::vector<UserState>& users, int round,
                              const CandidateIndex& index) override;
  void OnOutcome(const std::vector<UserState>& users,
                 int served_user) override;
  /// The freeze detector reads every tenant's candidate set and best
  /// reward in OnOutcome, so asynchronous report pipelines must drain
  /// their queued folds before sequencing it.
  bool ObservesOutcomes() const override { return true; }
  bool RequiresInitialSweep() const override { return true; }
  std::string name() const override { return "hybrid"; }

  /// Freeze-detector state + both phases' nested policy state.
  void SaveDurable(std::string* out) const override;
  Status LoadDurable(std::string_view* in) override;

  /// True once the freeze detector has fired and scheduling is round-robin.
  bool switched() const { return switched_; }

 private:
  int patience_;
  GreedyScheduler greedy_;
  RoundRobinScheduler round_robin_;

  bool switched_ = false;
  int frozen_steps_ = 0;
  bool have_snapshot_ = false;
  std::vector<int> last_candidates_;
  double last_total_best_ = 0.0;
};

}  // namespace easeml::scheduler

#endif  // EASEML_SCHEDULER_HYBRID_H_
