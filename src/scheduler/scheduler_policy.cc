#include "scheduler/scheduler_policy.h"

namespace easeml::scheduler {

std::vector<int> SchedulerPolicy::ActiveUsers(
    const std::vector<UserState>& users) {
  std::vector<int> active;
  active.reserve(users.size());
  for (size_t i = 0; i < users.size(); ++i) {
    if (users[i].Schedulable()) active.push_back(static_cast<int>(i));
  }
  return active;
}

}  // namespace easeml::scheduler
