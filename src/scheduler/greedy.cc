#include "scheduler/greedy.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <utility>

#include "common/binary_io.h"
#include "common/exact_sum.h"
#include "common/reduction_tree.h"
#include "scheduler/candidate_index.h"

namespace easeml::scheduler {

namespace {

constexpr int kNoUser = std::numeric_limits<int>::max();
constexpr double kNegInf = -std::numeric_limits<double>::infinity();

/// Candidate-set membership test of Algorithm 2 line 7, evaluated EXACTLY:
/// "sigma~ >= average of the finite sigma~ over active users" becomes
/// "sigma~ * finite_count >= exact sum", with no floating-point rounding on
/// either side. Exactness is what makes the test independent of the order
/// (and partition) in which the bounds were accumulated, so sequential and
/// sharded scans agree bit-for-bit. Users without observations (sigma~ =
/// +inf) are always candidates; NaN / -inf bounds never are (mirroring the
/// IEEE semantics of the former `bound >= avg` comparison).
bool BoundIsCandidate(double bound, const ExactDoubleSum& sum,
                      int finite_count) {
  if (!std::isfinite(bound)) return std::isinf(bound) && bound > 0.0;
  return sum.CompareScaled(bound, finite_count) >= 0;
}

/// Per-shard phase-A summary: the policy-capability check plus the
/// candidate-threshold statistics. All fields merge exactly (min / integer
/// add / ExactDoubleSum), so the reduction is partition-invariant.
struct ShardStats {
  int bad_user = kNoUser;  // lowest user without confidence bounds
  int active = 0;
  int finite = 0;
  ExactDoubleSum sum;
};

ShardStats MergeStats(ShardStats a, const ShardStats& b) {
  a.bad_user = std::min(a.bad_user, b.bad_user);
  a.active += b.active;
  a.finite += b.finite;
  a.sum.Merge(b.sum);
  return a;
}

/// Per-shard phase-B summary: the line-8 argmax over local candidates.
/// `key`/`user` replicate the sequential fold exactly: a -inf sentinel that
/// only strictly larger (never NaN, never -inf) keys replace, ties resolved
/// to the lower user id; `min_candidate` carries the sequential loop's
/// `candidates[0]` default for the degenerate no-finite-key case.
struct ShardBest {
  int min_candidate = kNoUser;
  double key = kNegInf;
  int user = kNoUser;
  int count = 0;
};

ShardBest MergeBest(ShardBest a, const ShardBest& b) {
  a.min_candidate = std::min(a.min_candidate, b.min_candidate);
  a.count += b.count;
  if (b.user != kNoUser &&
      (a.user == kNoUser || b.key > a.key ||
       (b.key == a.key && b.user < a.user))) {
    a.key = b.key;
    a.user = b.user;
  }
  return a;
}

}  // namespace

std::string Line8RuleName(Line8Rule rule) {
  switch (rule) {
    case Line8Rule::kMaxUcbGap:
      return "max-ucb-gap";
    case Line8Rule::kMaxEmpiricalBound:
      return "max-empirical-bound";
    case Line8Rule::kRandom:
      return "random-candidate";
  }
  return "unknown";
}

std::vector<int> ComputeCandidateSet(const std::vector<UserState>& users) {
  std::vector<int> active;
  for (size_t i = 0; i < users.size(); ++i) {
    if (users[i].Schedulable()) active.push_back(static_cast<int>(i));
  }
  if (active.empty()) return {};

  // Users with no observations have sigma~ = +inf; they are always
  // candidates and are excluded from the (exactly accumulated) average.
  ExactDoubleSum sum;
  int finite_count = 0;
  for (int i : active) {
    const double s = users[i].empirical_bound();
    if (std::isfinite(s)) {
      sum.Add(s);
      ++finite_count;
    }
  }
  if (finite_count == 0) return active;

  std::vector<int> candidates;
  for (int i : active) {
    if (BoundIsCandidate(users[i].empirical_bound(), sum, finite_count)) {
      candidates.push_back(i);
    }
  }
  // With the exact comparison the maximal finite bound always passes its
  // own average, so the set cannot come out empty; the fall-back to all
  // active users is kept as a defensive guard (any rule over the candidate
  // set preserves the bound).
  if (candidates.empty()) return active;
  return candidates;
}

Result<int> GreedyScheduler::PickUser(const std::vector<UserState>& users,
                                      int round) {
  (void)round;
  for (const auto& u : users) {
    if (u.retired()) continue;  // belief released; never scheduled again
    if (!u.policy().HasConfidenceBounds()) {
      return Status::FailedPrecondition(
          "Greedy: user " + std::to_string(u.user_id()) +
          " does not run a belief-backed policy (GP-UCB)");
    }
  }
  const std::vector<int> candidates = ComputeCandidateSet(users);
  if (candidates.empty()) {
    return Status::FailedPrecondition("Greedy: all users exhausted");
  }
  switch (rule_) {
    case Line8Rule::kRandom:
      return candidates[rng_.UniformInt(
          0, static_cast<int>(candidates.size()) - 1)];
    case Line8Rule::kMaxEmpiricalBound: {
      int best = candidates[0];
      double best_bound = -std::numeric_limits<double>::infinity();
      for (int i : candidates) {
        const double b = users[i].empirical_bound();
        if (b > best_bound) {
          best_bound = b;
          best = i;
        }
      }
      return best;
    }
    case Line8Rule::kMaxUcbGap: {
      int best = candidates[0];
      double best_gap = -std::numeric_limits<double>::infinity();
      for (int i : candidates) {
        const double gap = users[i].UcbGap();
        if (gap > best_gap) {
          best_gap = gap;
          best = i;
        }
      }
      return best;
    }
  }
  return Status::Internal("Greedy: unknown line-8 rule");
}

Result<int> GreedyScheduler::PickUserSharded(
    const std::vector<UserState>& users, int round, ShardScan& scan) {
  (void)round;
  const int num_shards = scan.num_shards();

  // Phase A — each shard checks its local policies and accumulates the
  // candidate-threshold statistics; the reduction is exact, so the global
  // (sum, count) pair equals the sequential accumulation bit-for-bit.
  std::vector<ShardStats> stats(num_shards);
  scan.Run([&](int shard) {
    ShardStats& s = stats[shard];
    for (int t : scan.LocalTenants(shard)) {
      const UserState& u = users[t];
      if (u.retired()) continue;
      if (!u.policy().HasConfidenceBounds()) {
        s.bad_user = std::min(s.bad_user, t);
        continue;
      }
      if (!u.Schedulable()) continue;
      ++s.active;
      const double b = u.empirical_bound();
      if (std::isfinite(b)) {
        s.sum.Add(b);
        ++s.finite;
      }
    }
  });
  const ShardStats merged = ReduceTree(std::move(stats), MergeStats);
  if (merged.bad_user != kNoUser) {
    return Status::FailedPrecondition(
        "Greedy: user " + std::to_string(merged.bad_user) +
        " does not run a belief-backed policy (GP-UCB)");
  }
  if (merged.active == 0) {
    return Status::FailedPrecondition("Greedy: all users exhausted");
  }
  const bool all_candidates = merged.finite == 0;

  if (rule_ == Line8Rule::kRandom) {
    // The random rule needs the candidate COUNT for the draw and the j-th
    // candidate in ascending id order, so shards emit their sorted local
    // candidate lists and the tree merges them (order-preserving).
    std::vector<std::vector<int>> locals(num_shards);
    scan.Run([&](int shard) {
      for (int t : scan.LocalTenants(shard)) {
        const UserState& u = users[t];
        if (!u.Schedulable()) continue;
        if (all_candidates ||
            BoundIsCandidate(u.empirical_bound(), merged.sum,
                             merged.finite)) {
          locals[shard].push_back(t);
        }
      }
    });
    std::vector<int> candidates = ReduceTree(
        std::move(locals),
        [](std::vector<int> a, const std::vector<int>& b) {
          std::vector<int> out;
          out.reserve(a.size() + b.size());
          std::merge(a.begin(), a.end(), b.begin(), b.end(),
                     std::back_inserter(out));
          return out;
        });
    if (candidates.empty()) {
      return Status::Internal("Greedy: empty candidate set after reduction");
    }
    return candidates[rng_.UniformInt(
        0, static_cast<int>(candidates.size()) - 1)];
  }

  // Phase B — the line-8 argmax, one summary per shard. This is the O(T·K)
  // part (UcbGap reads the policy's batched MaxUcb diagnostics per
  // candidate), i.e. the scan the sharding exists to parallelize.
  std::vector<ShardBest> best(num_shards);
  scan.Run([&](int shard) {
    ShardBest& s = best[shard];
    for (int t : scan.LocalTenants(shard)) {
      const UserState& u = users[t];
      if (!u.Schedulable()) continue;
      if (!all_candidates &&
          !BoundIsCandidate(u.empirical_bound(), merged.sum, merged.finite)) {
        continue;
      }
      ++s.count;
      s.min_candidate = std::min(s.min_candidate, t);
      const double key = rule_ == Line8Rule::kMaxEmpiricalBound
                             ? u.empirical_bound()
                             : u.UcbGap();
      // Sequential fold semantics: only keys strictly above the -inf
      // sentinel ever win (never NaN, never -inf), first — i.e. lowest id,
      // since local tenants ascend — among exact ties.
      if (key > s.key) {
        s.key = key;
        s.user = t;
      }
    }
  });
  const ShardBest winner = ReduceTree(std::move(best), MergeBest);
  if (winner.count == 0) {
    return Status::Internal("Greedy: empty candidate set after reduction");
  }
  // No candidate had a key above -inf (all NaN/-inf): the sequential loop
  // would have kept its `candidates[0]` initializer.
  if (winner.user == kNoUser) return winner.min_candidate;
  return winner.user;
}

Result<int> GreedyScheduler::PickUserIndexed(const std::vector<UserState>& users,
                                             int round,
                                             const CandidateIndex& index) {
  if (rule_ == Line8Rule::kRandom) {
    // Documented fallback: the random rule draws the j-th CANDIDATE, and
    // candidate ranks depend on the threshold that moves with every report
    // — not indexable by a static tournament. The sequential scan consumes
    // the RNG stream identically, so conformance is preserved.
    return PickUser(users, round);
  }
  (void)round;
  const int num_shards = index.num_shards();

  // Phase A from the O(1) per-shard aggregates. Count/min merges are
  // associative and the bound sum is exact, so this sequential fold equals
  // the scan paths' ReduceTree(MergeStats) bit-for-bit.
  int bad_user = kNoUser;
  int active = 0;
  int finite = 0;
  ExactDoubleSum sum;
  for (int s = 0; s < num_shards; ++s) {
    const CandidateIndex::IndexNode& root = index.Root(s);
    bad_user = std::min(bad_user, root.min_bad_policy);
    active += root.cnt_schedulable;
    finite += index.FiniteCount(s);
    sum.Merge(index.BoundSum(s));
  }
  if (bad_user != kNoUser) {
    return Status::FailedPrecondition(
        "Greedy: user " + std::to_string(bad_user) +
        " does not run a belief-backed policy (GP-UCB)");
  }
  if (active == 0) {
    return Status::FailedPrecondition("Greedy: all users exhausted");
  }
  CandidateIndex::Candidacy candidacy;
  candidacy.sum = &sum;
  candidacy.finite_count = finite;
  candidacy.all_candidates = finite == 0;
  const bool use_gap = rule_ == Line8Rule::kMaxUcbGap;

  // Phase B quick path: the global argmax key over ALL schedulable users,
  // read off the shard roots in O(1). When it is itself a candidate it is
  // the argmax over candidates too (same total order on a superset) — the
  // common case, since high sigma~ and high UCB gap are correlated. For
  // the max-empirical-bound rule this always resolves: the largest finite
  // bound passes its own average and +inf is always a candidate.
  CandidateIndex::Best best;
  for (int s = 0; s < num_shards; ++s) {
    const CandidateIndex::IndexNode& root = index.Root(s);
    const CandidateIndex::Best shard_best{
        use_gap ? root.max_gap : root.max_bound,
        use_gap ? root.max_gap_id : root.max_bound_id};
    if (shard_best.Beats(best)) best = shard_best;
  }
  if (best.user != CandidateIndex::kNone &&
      !candidacy.Admits(index.Key(best.user).bound)) {
    // Slow path: pruned tournament descent per shard, threaded so later
    // shards prune against earlier winners (associative total order — same
    // result as the scan's tree-merge of per-shard argmaxes).
    best = CandidateIndex::Best{};
    for (int s = 0; s < num_shards; ++s) {
      best = index.BestCandidate(s, candidacy, use_gap, best);
    }
  }
  if (best.user != CandidateIndex::kNone) return best.user;

  // No candidate key above -inf (all NaN/-inf): the sequential loop keeps
  // its `candidates[0]` initializer — the lowest candidate id.
  int min_candidate = kNoUser;
  for (int s = 0; s < num_shards; ++s) {
    min_candidate = std::min(min_candidate, index.MinCandidate(s, candidacy));
  }
  if (min_candidate == kNoUser) {
    return Status::Internal("Greedy: empty candidate set in index");
  }
  return min_candidate;
}


void GreedyScheduler::SaveDurable(std::string* out) const {
  PutString(out, rng_.SaveState());
}

Status GreedyScheduler::LoadDurable(std::string_view* in) {
  std::string state;
  EASEML_RETURN_NOT_OK(GetString(in, &state));
  return rng_.LoadState(state);
}

}  // namespace easeml::scheduler
