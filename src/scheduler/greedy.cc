#include "scheduler/greedy.h"

#include <cmath>
#include <limits>

namespace easeml::scheduler {

std::string Line8RuleName(Line8Rule rule) {
  switch (rule) {
    case Line8Rule::kMaxUcbGap:
      return "max-ucb-gap";
    case Line8Rule::kMaxEmpiricalBound:
      return "max-empirical-bound";
    case Line8Rule::kRandom:
      return "random-candidate";
  }
  return "unknown";
}

std::vector<int> ComputeCandidateSet(const std::vector<UserState>& users) {
  std::vector<int> active;
  for (size_t i = 0; i < users.size(); ++i) {
    if (users[i].Schedulable()) active.push_back(static_cast<int>(i));
  }
  if (active.empty()) return {};

  // Users with no observations have sigma~ = +inf; they are always
  // candidates and are excluded from the finite average.
  double sum = 0.0;
  int finite_count = 0;
  for (int i : active) {
    const double s = users[i].empirical_bound();
    if (std::isfinite(s)) {
      sum += s;
      ++finite_count;
    }
  }
  if (finite_count == 0) return active;
  const double avg = sum / finite_count;

  std::vector<int> candidates;
  for (int i : active) {
    if (users[i].empirical_bound() >= avg) candidates.push_back(i);
  }
  // Numerical guard: with identical bounds, >= avg keeps everyone; with
  // pathological rounding the set could come out empty — fall back to all
  // active users (any rule over the candidate set preserves the bound).
  if (candidates.empty()) return active;
  return candidates;
}

Result<int> GreedyScheduler::PickUser(const std::vector<UserState>& users,
                                      int round) {
  (void)round;
  for (const auto& u : users) {
    if (!u.policy().HasConfidenceBounds()) {
      return Status::FailedPrecondition(
          "Greedy: user " + std::to_string(u.user_id()) +
          " does not run a belief-backed policy (GP-UCB)");
    }
  }
  const std::vector<int> candidates = ComputeCandidateSet(users);
  if (candidates.empty()) {
    return Status::FailedPrecondition("Greedy: all users exhausted");
  }
  switch (rule_) {
    case Line8Rule::kRandom:
      return candidates[rng_.UniformInt(
          0, static_cast<int>(candidates.size()) - 1)];
    case Line8Rule::kMaxEmpiricalBound: {
      int best = candidates[0];
      double best_bound = -std::numeric_limits<double>::infinity();
      for (int i : candidates) {
        const double b = users[i].empirical_bound();
        if (b > best_bound) {
          best_bound = b;
          best = i;
        }
      }
      return best;
    }
    case Line8Rule::kMaxUcbGap: {
      int best = candidates[0];
      double best_gap = -std::numeric_limits<double>::infinity();
      for (int i : candidates) {
        const double gap = users[i].UcbGap();
        if (gap > best_gap) {
          best_gap = gap;
          best = i;
        }
      }
      return best;
    }
  }
  return Status::Internal("Greedy: unknown line-8 rule");
}

}  // namespace easeml::scheduler
