#include "scheduler/round_robin.h"

namespace easeml::scheduler {

Result<int> RoundRobinScheduler::PickUser(const std::vector<UserState>& users,
                                          int round) {
  (void)round;
  const int n = static_cast<int>(users.size());
  if (n == 0) return Status::InvalidArgument("RoundRobin: no users");
  for (int step = 0; step < n; ++step) {
    const int candidate = (cursor_ + step) % n;
    if (users[candidate].Schedulable()) {
      cursor_ = (candidate + 1) % n;
      return candidate;
    }
  }
  return Status::FailedPrecondition("RoundRobin: all users exhausted");
}

}  // namespace easeml::scheduler
