#include "scheduler/round_robin.h"

#include <limits>
#include <utility>

#include "common/binary_io.h"
#include "common/reduction_tree.h"
#include "scheduler/candidate_index.h"

namespace easeml::scheduler {

Result<int> RoundRobinScheduler::PickUser(const std::vector<UserState>& users,
                                          int round) {
  (void)round;
  const int n = static_cast<int>(users.size());
  if (n == 0) return Status::InvalidArgument("RoundRobin: no users");
  for (int step = 0; step < n; ++step) {
    const int candidate = (cursor_ + step) % n;
    if (users[candidate].Schedulable()) {
      cursor_ = (candidate + 1) % n;
      return candidate;
    }
  }
  return Status::FailedPrecondition("RoundRobin: all users exhausted");
}

Result<int> RoundRobinScheduler::PickUserSharded(
    const std::vector<UserState>& users, int round, ShardScan& scan) {
  (void)round;
  const int n = static_cast<int>(users.size());
  if (n == 0) return Status::InvalidArgument("RoundRobin: no users");
  // Per-shard summary: the schedulable local user closest to the cursor in
  // cyclic order. Distances are distinct across users, so the min-reduce
  // has a unique winner — exactly the first user the sequential walk from
  // `cursor_` would accept.
  constexpr int kNone = std::numeric_limits<int>::max();
  using Closest = std::pair<int, int>;  // (cyclic distance, user)
  std::vector<Closest> closest(scan.num_shards(), {kNone, kNone});
  const int cursor = cursor_;
  scan.Run([&](int shard) {
    for (int t : scan.LocalTenants(shard)) {
      if (!users[t].Schedulable()) continue;
      const int dist = (t - cursor + n) % n;
      closest[shard] = std::min(closest[shard], Closest{dist, t});
    }
  });
  const Closest winner = ReduceTree(
      std::move(closest),
      [](const Closest& a, const Closest& b) { return std::min(a, b); });
  if (winner.second == kNone) {
    return Status::FailedPrecondition("RoundRobin: all users exhausted");
  }
  cursor_ = (winner.second + 1) % n;  // same cursor advance as PickUser
  return winner.second;
}

Result<int> RoundRobinScheduler::PickUserIndexed(
    const std::vector<UserState>& users, int round,
    const CandidateIndex& index) {
  (void)round;
  const int n = static_cast<int>(users.size());
  if (n == 0) return Status::InvalidArgument("RoundRobin: no users");
  // The cursor is a QUERY parameter, not leaf state: per shard, the
  // cyclically-closest schedulable user is the lowest schedulable id at or
  // after the cursor (an O(log T) suffix descent) — whose distance always
  // beats any wrapped-around id — else the shard's overall minimum (root
  // read). Distances are distinct across users, so the min-merge has the
  // scan's unique winner; the cursor advance is identical.
  constexpr int kNone = CandidateIndex::kNone;
  std::pair<int, int> winner{kNone, kNone};  // (cyclic distance, user)
  for (int s = 0; s < index.num_shards(); ++s) {
    int pick = index.MinSchedulableAtLeast(s, cursor_);
    if (pick == kNone) pick = index.Root(s).min_schedulable;
    if (pick == kNone) continue;
    winner = std::min(winner, {(pick - cursor_ + n) % n, pick});
  }
  if (winner.second == kNone) {
    return Status::FailedPrecondition("RoundRobin: all users exhausted");
  }
  cursor_ = (winner.second + 1) % n;  // same cursor advance as PickUser
  return winner.second;
}


void RoundRobinScheduler::SaveDurable(std::string* out) const {
  PutI32(out, cursor_);
}

Status RoundRobinScheduler::LoadDurable(std::string_view* in) {
  return GetI32(in, &cursor_);
}

}  // namespace easeml::scheduler
