#include "scheduler/hybrid.h"

#include "common/binary_io.h"

namespace easeml::scheduler {

namespace {
double TotalBestReward(const std::vector<UserState>& users) {
  double acc = 0.0;
  for (const auto& u : users) acc += u.best_reward();
  return acc;
}
}  // namespace

Result<int> HybridScheduler::PickUser(const std::vector<UserState>& users,
                                      int round) {
  if (switched_) return round_robin_.PickUser(users, round);
  return greedy_.PickUser(users, round);
}

Result<int> HybridScheduler::PickUserSharded(
    const std::vector<UserState>& users, int round, ShardScan& scan) {
  if (switched_) return round_robin_.PickUserSharded(users, round, scan);
  return greedy_.PickUserSharded(users, round, scan);
}

Result<int> HybridScheduler::PickUserIndexed(
    const std::vector<UserState>& users, int round,
    const CandidateIndex& index) {
  if (switched_) return round_robin_.PickUserIndexed(users, round, index);
  return greedy_.PickUserIndexed(users, round, index);
}

void HybridScheduler::OnOutcome(const std::vector<UserState>& users,
                                int served_user) {
  (void)served_user;
  if (switched_) return;
  const std::vector<int> candidates = ComputeCandidateSet(users);
  const double total_best = TotalBestReward(users);
  // "The candidate set remains unchanged and the overall regret does not
  // drop": total regret drops exactly when some user's best accuracy
  // improves, which is observable as an increase of the summed best reward.
  const bool frozen = have_snapshot_ && candidates == last_candidates_ &&
                      total_best <= last_total_best_ + 1e-12;
  frozen_steps_ = frozen ? frozen_steps_ + 1 : 0;
  last_candidates_ = candidates;
  last_total_best_ = total_best;
  have_snapshot_ = true;
  if (frozen_steps_ >= patience_) switched_ = true;
}


void HybridScheduler::SaveDurable(std::string* out) const {
  PutU8(out, switched_ ? 1 : 0);
  PutI32(out, frozen_steps_);
  PutU8(out, have_snapshot_ ? 1 : 0);
  PutI32Vec(out, last_candidates_);
  PutDouble(out, last_total_best_);
  greedy_.SaveDurable(out);
  round_robin_.SaveDurable(out);
}

Status HybridScheduler::LoadDurable(std::string_view* in) {
  uint8_t switched = 0;
  uint8_t have_snapshot = 0;
  EASEML_RETURN_NOT_OK(GetU8(in, &switched));
  EASEML_RETURN_NOT_OK(GetI32(in, &frozen_steps_));
  EASEML_RETURN_NOT_OK(GetU8(in, &have_snapshot));
  EASEML_RETURN_NOT_OK(GetI32Vec(in, &last_candidates_));
  EASEML_RETURN_NOT_OK(GetDouble(in, &last_total_best_));
  switched_ = (switched != 0);
  have_snapshot_ = (have_snapshot != 0);
  EASEML_RETURN_NOT_OK(greedy_.LoadDurable(in));
  return round_robin_.LoadDurable(in);
}

}  // namespace easeml::scheduler
