#include "scheduler/hybrid.h"

namespace easeml::scheduler {

namespace {
double TotalBestReward(const std::vector<UserState>& users) {
  double acc = 0.0;
  for (const auto& u : users) acc += u.best_reward();
  return acc;
}
}  // namespace

Result<int> HybridScheduler::PickUser(const std::vector<UserState>& users,
                                      int round) {
  if (switched_) return round_robin_.PickUser(users, round);
  return greedy_.PickUser(users, round);
}

Result<int> HybridScheduler::PickUserSharded(
    const std::vector<UserState>& users, int round, ShardScan& scan) {
  if (switched_) return round_robin_.PickUserSharded(users, round, scan);
  return greedy_.PickUserSharded(users, round, scan);
}

Result<int> HybridScheduler::PickUserIndexed(
    const std::vector<UserState>& users, int round,
    const CandidateIndex& index) {
  if (switched_) return round_robin_.PickUserIndexed(users, round, index);
  return greedy_.PickUserIndexed(users, round, index);
}

void HybridScheduler::OnOutcome(const std::vector<UserState>& users,
                                int served_user) {
  (void)served_user;
  if (switched_) return;
  const std::vector<int> candidates = ComputeCandidateSet(users);
  const double total_best = TotalBestReward(users);
  // "The candidate set remains unchanged and the overall regret does not
  // drop": total regret drops exactly when some user's best accuracy
  // improves, which is observable as an increase of the summed best reward.
  const bool frozen = have_snapshot_ && candidates == last_candidates_ &&
                      total_best <= last_total_best_ + 1e-12;
  frozen_steps_ = frozen ? frozen_steps_ + 1 : 0;
  last_candidates_ = candidates;
  last_total_best_ = total_best;
  have_snapshot_ = true;
  if (frozen_steps_ >= patience_) switched_ = true;
}

}  // namespace easeml::scheduler
