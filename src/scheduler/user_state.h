#ifndef EASEML_SCHEDULER_USER_STATE_H_
#define EASEML_SCHEDULER_USER_STATE_H_

#include <limits>
#include <memory>
#include <string>
#include <vector>

#include "bandit/bandit_policy.h"
#include "common/status.h"

namespace easeml::scheduler {

/// Per-tenant runtime state of the multi-tenant selection loop.
///
/// Wraps the tenant's model-picking policy (usually GP-UCB) and keeps the
/// bookkeeping the GREEDY user-picking phase needs (Algorithm 2, line 6):
/// after the user's m-th observation y_m of arm a_m,
///
///   sigma~_m = min{ B_m(a_m), min_{m' < m} (y_{m'} + sigma~_{m'}) } - y_m
///
/// where B_m(a_m) is the upper confidence bound of the chosen arm at
/// selection time. `empirical_bound()` exposes the latest sigma~.
///
/// Protocol per service round: `SelectArm()` then `RecordOutcome()`. Each
/// arm (model) is played at most once — training the same model on the same
/// data again yields no new information in ease.ml's setting.
class UserState {
 public:
  /// `costs` must have one positive entry per arm of `policy`.
  static Result<UserState> Create(
      int user_id, std::unique_ptr<bandit::BanditPolicy> policy,
      std::vector<double> costs);

  int user_id() const { return user_id_; }
  int num_models() const { return static_cast<int>(played_.size()); }

  /// Number of completed (select, observe) rounds t_i.
  int rounds_served() const { return rounds_served_; }

  /// True when every arm has been played.
  bool Exhausted() const { return num_played_ == num_models(); }

  /// True while a selection is outstanding (SelectArm called, outcome not
  /// yet recorded) — e.g. a training job in flight on some device.
  bool has_pending() const { return pending_arm_ >= 0; }

  /// True iff a scheduler may serve this user now: not exhausted and no
  /// training run in flight. Single-device loops never observe a pending
  /// user at scheduling time, so this reduces to !Exhausted() there.
  bool Schedulable() const { return !Exhausted() && !has_pending(); }

  /// Arms not yet played, ascending.
  std::vector<int> AvailableArms() const;

  bool has_observations() const { return rounds_served_ > 0; }

  /// Best observed reward so far; 0 before any observation (a tenant with no
  /// trained model serves nothing, per the paper's regret definition).
  double best_reward() const { return best_reward_; }

  double last_reward() const { return last_reward_; }

  /// Latest empirical confidence bound sigma~ (Algorithm 2 line 6);
  /// +infinity before the first observation.
  double empirical_bound() const { return empirical_bound_; }

  /// Sum of costs of played arms.
  double consumed_cost() const { return consumed_cost_; }

  /// Chooses the next model via the tenant's policy at local round
  /// t = rounds_served() + 1. Fails if exhausted or if called twice without
  /// an intervening RecordOutcome.
  Result<int> SelectArm();

  /// Records the observed reward for the arm returned by the last
  /// SelectArm call, updating the policy belief and the sigma~ recurrence.
  Status RecordOutcome(int arm, double reward);

  /// Largest upper confidence bound over the remaining arms at the current
  /// local round, read from the policy's diagnostics surface; -infinity
  /// when exhausted.
  double MaxUcb() const;

  /// ease.ml's line-8 rule ingredient: gap between the largest UCB and the
  /// best accuracy observed so far.
  double UcbGap() const { return MaxUcb() - best_reward_; }

  const bandit::BanditPolicy& policy() const { return *policy_; }

  double ArmCost(int arm) const { return costs_[arm]; }

 private:
  UserState(int user_id, std::unique_ptr<bandit::BanditPolicy> policy,
            std::vector<double> costs);

  int user_id_;
  std::unique_ptr<bandit::BanditPolicy> policy_;
  std::vector<double> costs_;
  std::vector<bool> played_;
  int num_played_ = 0;
  int rounds_served_ = 0;

  int pending_arm_ = -1;       // arm selected, outcome not yet recorded
  double pending_ucb_ = 0.0;   // B_t(a_t) captured at selection time

  double best_reward_ = 0.0;
  double last_reward_ = 0.0;
  double empirical_bound_ = std::numeric_limits<double>::infinity();
  // min_{m' <= m} (y_{m'} + sigma~_{m'}) from the recurrence.
  double min_empirical_ucb_ = std::numeric_limits<double>::infinity();
  double consumed_cost_ = 0.0;
};

}  // namespace easeml::scheduler

#endif  // EASEML_SCHEDULER_USER_STATE_H_
