#ifndef EASEML_SCHEDULER_USER_STATE_H_
#define EASEML_SCHEDULER_USER_STATE_H_

#include <limits>
#include <memory>
#include <string>
#include <vector>

#include "bandit/bandit_policy.h"
#include "common/status.h"

namespace easeml::scheduler {

/// Bit-exact serializable copy of a `UserState` MINUS the policy (the
/// belief is checkpointed separately: its observation history replays
/// bit-identically, so only history + verification factor are stored).
/// All doubles round-trip through their IEEE-754 bit patterns
/// (common/binary_io.h), so Capture/FromDurable is an exact state copy —
/// the invariant the WAL recovery battery compares engines with.
struct DurableUserState {
  int user_id = 0;
  std::vector<double> costs;
  std::vector<bool> played;
  int num_played = 0;
  int rounds_served = 0;
  std::vector<bool> in_flight;
  std::vector<double> in_flight_ucb;
  int num_in_flight = 0;
  int max_in_flight = 1;
  bool retired = false;
  double best_reward = 0.0;
  double last_reward = 0.0;
  double empirical_bound = 0.0;
  double min_empirical_ucb = 0.0;
  double consumed_cost = 0.0;
};

/// Per-tenant runtime state of the multi-tenant selection loop.
///
/// Wraps the tenant's model-picking policy (usually GP-UCB) and keeps the
/// bookkeeping the GREEDY user-picking phase needs (Algorithm 2, line 6):
/// after the user's m-th observation y_m of arm a_m,
///
///   sigma~_m = min{ B_m(a_m), min_{m' < m} (y_{m'} + sigma~_{m'}) } - y_m
///
/// where B_m(a_m) is the upper confidence bound of the chosen arm at
/// selection time. `empirical_bound()` exposes the latest sigma~.
///
/// Protocol per service round: `SelectArm()` then `RecordOutcome()`. Each
/// arm (model) is played at most once — training the same model on the same
/// data again yields no new information in ease.ml's setting.
///
/// Multi-device extension: up to `max_in_flight()` selections may be
/// outstanding at once (one per device serving this tenant). Arms that are
/// selected but not yet observed are *charged but unobserved*: they are
/// tracked in a per-arm in-flight mask, excluded from `AvailableArms()` and
/// from the `MaxUcb()` diagnostics every scheduler policy consults, and
/// each remembers the B_t captured at its own selection time so the sigma~
/// recurrence stays exact under out-of-order completions. The default cap
/// of 1 reproduces the paper's sequential protocol bit-identically.
class UserState {
 public:
  /// `costs` must have one positive entry per arm of `policy`.
  static Result<UserState> Create(
      int user_id, std::unique_ptr<bandit::BanditPolicy> policy,
      std::vector<double> costs);

  int user_id() const { return user_id_; }
  int num_models() const { return static_cast<int>(played_.size()); }

  /// Number of completed (select, observe) rounds t_i.
  int rounds_served() const { return rounds_served_; }

  /// True when every arm has been played (in-flight arms do not count:
  /// their outcome has not been recorded yet). Retired users are exhausted
  /// by definition — nothing of theirs may be scheduled again.
  bool Exhausted() const { return retired_ || num_played_ == num_models(); }

  /// True once `Retire()` ran: the tenant left the system. Observed
  /// history (best reward, rounds served, consumed cost) stays readable;
  /// the policy belief is released and `policy()` must not be called.
  bool retired() const { return retired_; }

  /// Removes the user from scheduling permanently and frees its belief
  /// state (the O(t²) posterior is the dominant per-tenant allocation).
  /// Precondition: no selection is in flight (`!has_pending()`); the
  /// selector enforces this with FailedPrecondition before routing here.
  void Retire();

  /// True while at least one selection is outstanding (SelectArm called,
  /// outcome not yet recorded) — e.g. a training job in flight on some
  /// device.
  bool has_pending() const { return num_in_flight_ > 0; }

  /// Number of outstanding selections.
  int in_flight_count() const { return num_in_flight_; }

  /// True while `arm` is charged but unobserved.
  bool InFlight(int arm) const { return in_flight_[arm]; }

  /// Maximum number of concurrently outstanding selections (devices this
  /// tenant may occupy at once). Default 1 = the paper's sequential
  /// protocol.
  int max_in_flight() const { return max_in_flight_; }

  /// Raises/lowers the concurrency cap; must stay >= 1. Lowering below the
  /// current in-flight count is allowed — it only blocks new selections.
  Status set_max_in_flight(int cap);

  /// True iff a scheduler may serve this user now: not retired, an
  /// un-played, un-charged arm remains and a device slot is free under the
  /// concurrency cap. Single-device loops never observe a pending user at
  /// scheduling time, so this reduces to !Exhausted() there.
  bool Schedulable() const {
    return !retired_ && num_in_flight_ < max_in_flight_ &&
           num_played_ + num_in_flight_ < num_models();
  }

  /// True while the initialization sweep of Algorithm 2 lines 1-4 must
  /// still serve this user before regular scheduling: no observation yet,
  /// nothing in flight (the first run may already be charged), not
  /// exhausted. Shared by the selector's sweep scan and the candidate
  /// index's per-tenant key so the two paths can never diverge.
  bool NeedsInitialObservation() const {
    return !has_observations() && !has_pending() && !Exhausted();
  }

  /// Arms neither played nor in flight, ascending.
  std::vector<int> AvailableArms() const;

  bool has_observations() const { return rounds_served_ > 0; }

  /// Best observed reward so far; 0 before any observation (a tenant with no
  /// trained model serves nothing, per the paper's regret definition).
  double best_reward() const { return best_reward_; }

  double last_reward() const { return last_reward_; }

  /// Latest empirical confidence bound sigma~ (Algorithm 2 line 6);
  /// +infinity before the first observation.
  double empirical_bound() const { return empirical_bound_; }

  /// Sum of costs of played arms.
  double consumed_cost() const { return consumed_cost_; }

  /// Chooses the next model via the tenant's policy at local round
  /// t = rounds_served() + 1, marking it in flight. Fails if exhausted, if
  /// the concurrency cap is reached, or if every remaining arm is already
  /// in flight.
  Result<int> SelectArm();

  /// Records the observed reward for an arm previously returned by
  /// SelectArm, updating the policy belief and the sigma~ recurrence.
  /// Completions may arrive in any order; each consumes the B_t captured
  /// when its arm was selected.
  Status RecordOutcome(int arm, double reward);

  /// Un-charges an in-flight arm without an observation (device failure,
  /// job abort): the arm becomes selectable again and no belief or sigma~
  /// state is touched. Fails like RecordOutcome when `arm` is not in
  /// flight.
  Status CancelSelection(int arm);

  /// Largest upper confidence bound over the remaining arms (neither played
  /// nor in flight) at the current local round, read from the policy's
  /// batched diagnostics surface; -infinity when none remain.
  double MaxUcb() const;

  /// ease.ml's line-8 rule ingredient: gap between the largest UCB and the
  /// best accuracy observed so far.
  double UcbGap() const { return MaxUcb() - best_reward_; }

  /// The tenant's model-picking policy. Precondition: `!retired()` —
  /// retiring releases the belief.
  const bandit::BanditPolicy& policy() const { return *policy_; }

  double ArmCost(int arm) const { return costs_[arm]; }

  /// Copies every field (except the policy) into its durable twin.
  DurableUserState CaptureDurable() const;

  /// Rebuilds a UserState from a durable copy plus a freshly reconstructed
  /// policy. `policy` must be null iff `d.retired` (retiring releases the
  /// belief); sizes must be mutually consistent. Unlike `Create` this
  /// restores the full mid-campaign state verbatim — played masks,
  /// in-flight charges with their captured B_t, the sigma~ recurrence.
  static Result<UserState> FromDurable(const DurableUserState& d,
                                       std::unique_ptr<bandit::BanditPolicy> policy);

 private:
  UserState(int user_id, std::unique_ptr<bandit::BanditPolicy> policy,
            std::vector<double> costs);

  int user_id_;
  std::unique_ptr<bandit::BanditPolicy> policy_;
  std::vector<double> costs_;
  std::vector<bool> played_;
  int num_played_ = 0;
  int rounds_served_ = 0;

  // Charged-but-unobserved bookkeeping. in_flight_ucb_[a] holds B_t(a)
  // captured when arm a was selected, consumed by the sigma~ recurrence
  // when its outcome arrives (in any order).
  std::vector<bool> in_flight_;
  std::vector<double> in_flight_ucb_;
  int num_in_flight_ = 0;
  int max_in_flight_ = 1;
  bool retired_ = false;

  double best_reward_ = 0.0;
  double last_reward_ = 0.0;
  double empirical_bound_ = std::numeric_limits<double>::infinity();
  // min_{m' <= m} (y_{m'} + sigma~_{m'}) from the recurrence.
  double min_empirical_ucb_ = std::numeric_limits<double>::infinity();
  double consumed_cost_ = 0.0;
};

}  // namespace easeml::scheduler

#endif  // EASEML_SCHEDULER_USER_STATE_H_
