#include "scheduler/random_scheduler.h"

#include <algorithm>
#include <iterator>
#include <utility>

#include "common/reduction_tree.h"

namespace easeml::scheduler {

Result<int> RandomScheduler::PickUser(const std::vector<UserState>& users,
                                      int round) {
  (void)round;
  const std::vector<int> active = ActiveUsers(users);
  if (active.empty()) {
    return Status::FailedPrecondition("Random: all users exhausted");
  }
  return active[rng_.UniformInt(0, static_cast<int>(active.size()) - 1)];
}

Result<int> RandomScheduler::PickUserSharded(
    const std::vector<UserState>& users, int round, ShardScan& scan) {
  (void)round;
  // The uniform draw needs the j-th active user in ascending id order, so
  // the shards emit their (already sorted) local active lists and the tree
  // merges them order-preservingly. The single UniformInt below consumes
  // the RNG stream exactly like the sequential pick.
  std::vector<std::vector<int>> locals(scan.num_shards());
  scan.Run([&](int shard) {
    for (int t : scan.LocalTenants(shard)) {
      if (users[t].Schedulable()) locals[shard].push_back(t);
    }
  });
  std::vector<int> active = ReduceTree(
      std::move(locals), [](std::vector<int> a, const std::vector<int>& b) {
        std::vector<int> out;
        out.reserve(a.size() + b.size());
        std::merge(a.begin(), a.end(), b.begin(), b.end(),
                   std::back_inserter(out));
        return out;
      });
  if (active.empty()) {
    return Status::FailedPrecondition("Random: all users exhausted");
  }
  return active[rng_.UniformInt(0, static_cast<int>(active.size()) - 1)];
}

}  // namespace easeml::scheduler
