#include "scheduler/random_scheduler.h"

#include <algorithm>
#include <iterator>
#include <utility>

#include "common/binary_io.h"
#include "common/reduction_tree.h"
#include "scheduler/candidate_index.h"

namespace easeml::scheduler {

Result<int> RandomScheduler::PickUser(const std::vector<UserState>& users,
                                      int round) {
  (void)round;
  const std::vector<int> active = ActiveUsers(users);
  if (active.empty()) {
    return Status::FailedPrecondition("Random: all users exhausted");
  }
  return active[rng_.UniformInt(0, static_cast<int>(active.size()) - 1)];
}

Result<int> RandomScheduler::PickUserSharded(
    const std::vector<UserState>& users, int round, ShardScan& scan) {
  (void)round;
  // The uniform draw needs the j-th active user in ascending id order, so
  // the shards emit their (already sorted) local active lists and the tree
  // merges them order-preservingly. The single UniformInt below consumes
  // the RNG stream exactly like the sequential pick.
  std::vector<std::vector<int>> locals(scan.num_shards());
  scan.Run([&](int shard) {
    for (int t : scan.LocalTenants(shard)) {
      if (users[t].Schedulable()) locals[shard].push_back(t);
    }
  });
  std::vector<int> active = ReduceTree(
      std::move(locals), [](std::vector<int> a, const std::vector<int>& b) {
        std::vector<int> out;
        out.reserve(a.size() + b.size());
        std::merge(a.begin(), a.end(), b.begin(), b.end(),
                   std::back_inserter(out));
        return out;
      });
  if (active.empty()) {
    return Status::FailedPrecondition("Random: all users exhausted");
  }
  return active[rng_.UniformInt(0, static_cast<int>(active.size()) - 1)];
}

Result<int> RandomScheduler::PickUserIndexed(
    const std::vector<UserState>& users, int round,
    const CandidateIndex& index) {
  (void)round;
  // The scan draws active[j] from the merged ascending active list. The
  // index recovers the same user without materializing the list: the
  // schedulable total comes off the shard roots (one UniformInt — the RNG
  // stream is identical), and the j-th schedulable id in GLOBAL ascending
  // order is the smallest id whose cross-shard prefix rank reaches j+1,
  // found by binary search over the id space with O(log T) rank queries.
  int total = 0;
  for (int s = 0; s < index.num_shards(); ++s) {
    total += index.Root(s).cnt_schedulable;
  }
  if (total == 0) {
    return Status::FailedPrecondition("Random: all users exhausted");
  }
  const int j = rng_.UniformInt(0, total - 1);
  int lo = 0;
  int hi = static_cast<int>(users.size()) - 1;
  while (lo < hi) {
    const int mid = lo + (hi - lo) / 2;
    int rank = 0;
    for (int s = 0; s < index.num_shards(); ++s) {
      rank += index.CountSchedulableLeq(s, mid);
    }
    if (rank >= j + 1) {
      hi = mid;
    } else {
      lo = mid + 1;
    }
  }
  return lo;
}


void RandomScheduler::SaveDurable(std::string* out) const {
  PutString(out, rng_.SaveState());
}

Status RandomScheduler::LoadDurable(std::string_view* in) {
  std::string state;
  EASEML_RETURN_NOT_OK(GetString(in, &state));
  return rng_.LoadState(state);
}

}  // namespace easeml::scheduler
