#include "scheduler/random_scheduler.h"

namespace easeml::scheduler {

Result<int> RandomScheduler::PickUser(const std::vector<UserState>& users,
                                      int round) {
  (void)round;
  const std::vector<int> active = ActiveUsers(users);
  if (active.empty()) {
    return Status::FailedPrecondition("Random: all users exhausted");
  }
  return active[rng_.UniformInt(0, static_cast<int>(active.size()) - 1)];
}

}  // namespace easeml::scheduler
