#include "scheduler/candidate_index.h"

#include <algorithm>
#include <cmath>
#include <cstring>
#include <string>
#include <utility>

namespace easeml::scheduler {

namespace {

constexpr int kNone = CandidateIndex::kNone;
constexpr double kNegInf = -std::numeric_limits<double>::infinity();

/// Bitwise double equality: Validate must distinguish NaN payloads and
/// signed zeros exactly like the bit-identical-replay guarantee does.
bool SameBits(double a, double b) {
  return std::memcmp(&a, &b, sizeof(double)) == 0;
}

bool SameKey(const CandidateIndex::TenantKey& a,
             const CandidateIndex::TenantKey& b) {
  return a.schedulable == b.schedulable && a.uninitialized == b.uninitialized &&
         a.bad_policy == b.bad_policy && SameBits(a.bound, b.bound) &&
         SameBits(a.gap, b.gap);
}

bool SameNode(const CandidateIndex::IndexNode& a,
              const CandidateIndex::IndexNode& b) {
  return a.cnt_schedulable == b.cnt_schedulable &&
         a.min_schedulable == b.min_schedulable &&
         a.min_uninitialized == b.min_uninitialized &&
         a.min_bad_policy == b.min_bad_policy &&
         a.max_bound_id == b.max_bound_id && a.max_gap_id == b.max_gap_id &&
         SameBits(a.max_bound, b.max_bound) && SameBits(a.max_gap, b.max_gap);
}

}  // namespace

CandidateIndex::TenantKey MakeTenantKey(const UserState& user,
                                        bool track_gap) {
  CandidateIndex::TenantKey key;
  key.gap = kNegInf;  // never wins a tournament pair unless derived below
  if (user.retired()) return key;  // neutral: contributes nothing
  key.bad_policy = !user.policy().HasConfidenceBounds();
  key.uninitialized = user.NeedsInitialObservation();
  key.schedulable = user.Schedulable();
  if (key.schedulable) {
    key.bound = user.empirical_bound();
    // The O(K) batched MaxUcb diagnostics read — the cost the scan paid
    // once per tenant per Next() and the index pays once per tenant EVENT.
    // Skipped entirely for schedulers that never read gaps.
    if (track_gap) key.gap = user.UcbGap();
  }
  return key;
}

CandidateIndex::TenantKey CandidateIndex::DeriveKey(
    const UserState& user) const {
  return MakeTenantKey(user, track_gap_);
}

CandidateIndex::IndexNode CandidateIndex::IndexNode::MakeLeaf(
    int tenant, const TenantKey& key) {
  IndexNode node;
  if (key.bad_policy) node.min_bad_policy = tenant;
  if (key.uninitialized) node.min_uninitialized = tenant;
  if (key.schedulable) {
    node.cnt_schedulable = 1;
    node.min_schedulable = tenant;
    // -inf-sentinel fold semantics: only keys strictly above -inf (never
    // NaN) occupy an argmax pair, exactly like the scans' `key > best`.
    if (key.bound > kNegInf) {
      node.max_bound = key.bound;
      node.max_bound_id = tenant;
    }
    if (key.gap > kNegInf) {
      node.max_gap = key.gap;
      node.max_gap_id = tenant;
    }
  }
  return node;
}

CandidateIndex::IndexNode CandidateIndex::IndexNode::Merge(const IndexNode& a,
                                                           const IndexNode& b) {
  IndexNode out = a;
  out.cnt_schedulable += b.cnt_schedulable;
  out.min_schedulable = std::min(out.min_schedulable, b.min_schedulable);
  out.min_uninitialized = std::min(out.min_uninitialized, b.min_uninitialized);
  out.min_bad_policy = std::min(out.min_bad_policy, b.min_bad_policy);
  // Same total order as the scan reductions' MergeBest: strictly larger
  // key wins, exact ties keep the lower tenant id.
  if (b.max_bound_id != kNone &&
      (out.max_bound_id == kNone || b.max_bound > out.max_bound ||
       (b.max_bound == out.max_bound && b.max_bound_id < out.max_bound_id))) {
    out.max_bound = b.max_bound;
    out.max_bound_id = b.max_bound_id;
  }
  if (b.max_gap_id != kNone &&
      (out.max_gap_id == kNone || b.max_gap > out.max_gap ||
       (b.max_gap == out.max_gap && b.max_gap_id < out.max_gap_id))) {
    out.max_gap = b.max_gap;
    out.max_gap_id = b.max_gap_id;
  }
  return out;
}

bool CandidateIndex::Candidacy::Admits(double bound) const {
  if (all_candidates) return true;
  // BoundIsCandidate of the scan paths, verbatim: +inf always a candidate,
  // NaN / -inf never, finite bounds by the exact scaled comparison.
  if (!std::isfinite(bound)) return std::isinf(bound) && bound > 0.0;
  return sum->CompareScaled(bound, finite_count) >= 0;
}

CandidateIndex::CandidateIndex(int num_shards, bool track_gap)
    : track_gap_(track_gap), shards_(static_cast<size_t>(num_shards)) {}

void CandidateIndex::SyncPlacement(const std::vector<std::vector<int>>& locals,
                                   const std::vector<UserState>& users) {
  // Ids are dense and never reused, so only tenants the index has never
  // seen (the tail) need a fresh key derivation; every other cached key is
  // current by the invalidation contract.
  const size_t old_size = keys_.size();
  keys_.resize(users.size());
  shard_of_.assign(users.size(), -1);
  slot_of_.assign(users.size(), -1);
  for (size_t id = old_size; id < users.size(); ++id) {
    keys_[id] = DeriveKey(users[id]);
  }
  for (int s = 0; s < num_shards(); ++s) {
    shards_[static_cast<size_t>(s)].tenants = locals[static_cast<size_t>(s)];
    RebuildShard(s);
  }
}

void CandidateIndex::RebuildShard(int shard) {
  Shard& sh = shards_[static_cast<size_t>(shard)];
  std::vector<IndexNode> leaves;
  leaves.reserve(sh.tenants.size());
  sh.bound_sum = ExactDoubleSum();
  sh.finite_count = 0;
  for (size_t slot = 0; slot < sh.tenants.size(); ++slot) {
    const int id = sh.tenants[slot];
    shard_of_[id] = shard;
    slot_of_[id] = static_cast<int>(slot);
    const TenantKey& key = keys_[id];
    leaves.push_back(IndexNode::MakeLeaf(id, key));
    if (key.schedulable && std::isfinite(key.bound)) {
      sh.bound_sum.Add(key.bound);
      ++sh.finite_count;
    }
  }
  sh.tree.Assign(std::move(leaves));
}

void CandidateIndex::AppendTenant(int shard, const UserState& user) {
  const int id = user.user_id();
  if (id >= static_cast<int>(keys_.size())) {
    keys_.resize(static_cast<size_t>(id) + 1);
    shard_of_.resize(static_cast<size_t>(id) + 1, -1);
    slot_of_.resize(static_cast<size_t>(id) + 1, -1);
  }
  keys_[id] = DeriveKey(user);
  Shard& sh = shards_[static_cast<size_t>(shard)];
  shard_of_[id] = shard;
  slot_of_[id] = static_cast<int>(sh.tenants.size());
  sh.tenants.push_back(id);
  sh.tree.Append(IndexNode::MakeLeaf(id, keys_[id]));
  const TenantKey& key = keys_[id];
  if (key.schedulable && std::isfinite(key.bound)) {
    sh.bound_sum.Add(key.bound);
    ++sh.finite_count;
  }
}

void CandidateIndex::Refresh(const UserState& user) {
  // Callers hold the owning selector's lock, or are the shard's owning
  // worker inside a barriered fan-out (see the header's external-
  // synchronization contract); either way this mutation is ordered before
  // the next pick's root read.
  const int id = user.user_id();
  if (id >= static_cast<int>(keys_.size())) {
    // Tenant added but never synced (callers sync on add; be defensive).
    keys_.resize(static_cast<size_t>(id) + 1);
    shard_of_.resize(static_cast<size_t>(id) + 1, -1);
    slot_of_.resize(static_cast<size_t>(id) + 1, -1);
  }
  const TenantKey fresh = DeriveKey(user);
  const int shard = shard_of_[id];
  if (shard >= 0) {
    Shard& sh = shards_[static_cast<size_t>(shard)];
    const TenantKey& old = keys_[id];
    // Exact +/- deltas: ExactDoubleSum is integer arithmetic, so the
    // removal cancels the original addition bit-for-bit and the running
    // sum always equals a fresh accumulation over the current members.
    if (old.schedulable && std::isfinite(old.bound)) {
      sh.bound_sum.AddProduct(old.bound, -1);
      --sh.finite_count;
    }
    if (fresh.schedulable && std::isfinite(fresh.bound)) {
      sh.bound_sum.Add(fresh.bound);
      ++sh.finite_count;
    }
    sh.tree.Update(slot_of_[id], IndexNode::MakeLeaf(id, fresh));
  }
  keys_[id] = fresh;
}

int CandidateIndex::MinUninitialized() const {
  int min_id = kNone;
  for (const Shard& sh : shards_) {
    min_id = std::min(min_id, sh.tree.Root().min_uninitialized);
  }
  return min_id;
}

bool CandidateIndex::AnySchedulable() const {
  for (const Shard& sh : shards_) {
    if (sh.tree.Root().cnt_schedulable > 0) return true;
  }
  return false;
}

namespace {

/// Pruned argmax descent for GREEDY's line-8 pick over candidates.
/// Candidacy is monotone in the bound (the exact scaled comparison grows
/// with the bound; +inf always admits, NaN/-inf never), so a subtree whose
/// max bound fails the threshold holds no candidate and is cut; subtrees
/// whose max key cannot beat the current best are cut by the same total
/// order the scan reduction uses. The result is the unique (key desc, id
/// asc) optimum over candidates, independent of visit order.
void DescendBestCandidate(const TournamentTree<CandidateIndex::IndexNode>& tree,
                          const std::vector<int>& tenants,
                          const CandidateIndex& index,
                          const CandidateIndex::Candidacy& candidacy,
                          bool use_gap, int node, CandidateIndex::Best* best) {
  const CandidateIndex::IndexNode& n = tree.node(node);
  if (n.cnt_schedulable == 0) return;
  if (!candidacy.all_candidates &&
      (n.max_bound_id == kNone || !candidacy.Admits(n.max_bound))) {
    return;  // no candidate anywhere below
  }
  const CandidateIndex::Best potential{use_gap ? n.max_gap : n.max_bound,
                                       use_gap ? n.max_gap_id : n.max_bound_id};
  if (!potential.Beats(*best)) return;
  if (tree.is_leaf(node)) {
    const int tenant = tenants[static_cast<size_t>(tree.slot_of(node))];
    if (candidacy.Admits(index.Key(tenant).bound) && potential.Beats(*best)) {
      *best = potential;
    }
    return;
  }
  DescendBestCandidate(tree, tenants, index, candidacy, use_gap, 2 * node,
                       best);
  DescendBestCandidate(tree, tenants, index, candidacy, use_gap, 2 * node + 1,
                       best);
}

/// Leftmost (= lowest-id: leaves ascend) candidate leaf, kNone if none.
int DescendMinCandidate(const TournamentTree<CandidateIndex::IndexNode>& tree,
                        const std::vector<int>& tenants,
                        const CandidateIndex::Candidacy& candidacy, int node) {
  const CandidateIndex::IndexNode& n = tree.node(node);
  if (n.cnt_schedulable == 0) return kNone;
  if (n.max_bound_id == kNone || !candidacy.Admits(n.max_bound)) return kNone;
  if (tree.is_leaf(node)) {
    return tenants[static_cast<size_t>(tree.slot_of(node))];
  }
  const int left = DescendMinCandidate(tree, tenants, candidacy, 2 * node);
  if (left != kNone) return left;
  return DescendMinCandidate(tree, tenants, candidacy, 2 * node + 1);
}

/// Lowest schedulable id among leaf slots >= `from_slot`. `lo`/`hi` is the
/// slot range `node` covers. Leaves ascend by id, so the leftmost
/// schedulable slot in range carries the minimum id.
int DescendMinSchedulableFrom(
    const TournamentTree<CandidateIndex::IndexNode>& tree, int node, int lo,
    int hi, int from_slot) {
  const CandidateIndex::IndexNode& n = tree.node(node);
  if (n.cnt_schedulable == 0 || hi <= from_slot) return kNone;
  if (lo >= from_slot) return n.min_schedulable;
  const int mid = lo + (hi - lo) / 2;
  const int left =
      DescendMinSchedulableFrom(tree, 2 * node, lo, mid, from_slot);
  if (left != kNone) return left;
  return DescendMinSchedulableFrom(tree, 2 * node + 1, mid, hi, from_slot);
}

/// Number of schedulable leaves in slots [0, end_slot).
int DescendCountBefore(const TournamentTree<CandidateIndex::IndexNode>& tree,
                       int node, int lo, int hi, int end_slot) {
  const CandidateIndex::IndexNode& n = tree.node(node);
  if (n.cnt_schedulable == 0 || lo >= end_slot) return 0;
  if (hi <= end_slot) return n.cnt_schedulable;
  const int mid = lo + (hi - lo) / 2;
  return DescendCountBefore(tree, 2 * node, lo, mid, end_slot) +
         DescendCountBefore(tree, 2 * node + 1, mid, hi, end_slot);
}

}  // namespace

CandidateIndex::Best CandidateIndex::BestCandidate(int shard,
                                                   const Candidacy& candidacy,
                                                   bool use_gap,
                                                   Best best) const {
  const Shard& sh = shards_[static_cast<size_t>(shard)];
  if (!sh.tenants.empty()) {
    DescendBestCandidate(sh.tree, sh.tenants, *this, candidacy, use_gap,
                         TournamentTree<IndexNode>::kRoot, &best);
  }
  return best;
}

int CandidateIndex::MinCandidate(int shard, const Candidacy& candidacy) const {
  const Shard& sh = shards_[static_cast<size_t>(shard)];
  if (sh.tenants.empty()) return kNone;
  if (candidacy.all_candidates) return sh.tree.Root().min_schedulable;
  return DescendMinCandidate(sh.tree, sh.tenants, candidacy,
                             TournamentTree<IndexNode>::kRoot);
}

int CandidateIndex::MinSchedulableAtLeast(int shard, int id_floor) const {
  const Shard& sh = shards_[static_cast<size_t>(shard)];
  if (sh.tenants.empty()) return kNone;
  const auto it =
      std::lower_bound(sh.tenants.begin(), sh.tenants.end(), id_floor);
  const int from_slot = static_cast<int>(it - sh.tenants.begin());
  if (from_slot >= static_cast<int>(sh.tenants.size())) return kNone;
  return DescendMinSchedulableFrom(sh.tree, TournamentTree<IndexNode>::kRoot,
                                   0, sh.tree.leaf_begin(), from_slot);
}

int CandidateIndex::CountSchedulableLeq(int shard, int id_cap) const {
  const Shard& sh = shards_[static_cast<size_t>(shard)];
  if (sh.tenants.empty()) return 0;
  const auto it =
      std::upper_bound(sh.tenants.begin(), sh.tenants.end(), id_cap);
  const int end_slot = static_cast<int>(it - sh.tenants.begin());
  if (end_slot == 0) return 0;
  return DescendCountBefore(sh.tree, TournamentTree<IndexNode>::kRoot, 0,
                            sh.tree.leaf_begin(), end_slot);
}

std::vector<std::vector<int>> CandidateIndex::Placement() const {
  std::vector<std::vector<int>> locals;
  locals.reserve(shards_.size());
  for (const Shard& sh : shards_) locals.push_back(sh.tenants);
  return locals;
}

Status CandidateIndex::Validate(const std::vector<UserState>& users) const {
  std::vector<int> seen(users.size(), 0);
  for (int s = 0; s < num_shards(); ++s) {
    const Shard& sh = shards_[static_cast<size_t>(s)];
    ExactDoubleSum fresh_sum;
    int fresh_finite = 0;
    int prev_id = -1;
    for (size_t slot = 0; slot < sh.tenants.size(); ++slot) {
      const int id = sh.tenants[slot];
      if (id < 0 || id >= static_cast<int>(users.size())) {
        return Status::Internal("index: shard " + std::to_string(s) +
                                " places unknown tenant " +
                                std::to_string(id));
      }
      if (id <= prev_id) {
        return Status::Internal("index: shard " + std::to_string(s) +
                                " local ids not strictly ascending");
      }
      prev_id = id;
      if (++seen[id] > 1) {
        return Status::Internal("index: tenant " + std::to_string(id) +
                                " placed in more than one shard");
      }
      if (shard_of_[id] != s || slot_of_[id] != static_cast<int>(slot)) {
        return Status::Internal("index: tenant " + std::to_string(id) +
                                " placement map out of sync");
      }
      // Stale-leaf check: the cached key must be re-derivable bit-for-bit.
      const TenantKey fresh_key = DeriveKey(users[id]);
      if (!SameKey(fresh_key, keys_[id])) {
        return Status::Internal("index: stale key for tenant " +
                                std::to_string(id));
      }
      if (!SameNode(sh.tree.Leaf(static_cast<int>(slot)),
                    IndexNode::MakeLeaf(id, fresh_key))) {
        return Status::Internal("index: stale leaf for tenant " +
                                std::to_string(id));
      }
      if (fresh_key.schedulable && std::isfinite(fresh_key.bound)) {
        fresh_sum.Add(fresh_key.bound);
        ++fresh_finite;
      }
    }
    if (fresh_finite != sh.finite_count) {
      return Status::Internal("index: shard " + std::to_string(s) +
                              " finite-bound count drifted");
    }
    if (fresh_sum.Compare(sh.bound_sum) != 0) {
      return Status::Internal("index: shard " + std::to_string(s) +
                              " exact bound sum drifted");
    }
    // Replay every internal merge: the materialized reduction must equal a
    // fresh fold over the current leaves.
    for (int node = sh.tree.leaf_begin() - 1; node >= 1; --node) {
      if (!SameNode(sh.tree.node(node),
                    IndexNode::Merge(sh.tree.node(2 * node),
                                     sh.tree.node(2 * node + 1)))) {
        return Status::Internal("index: shard " + std::to_string(s) +
                                " internal node " + std::to_string(node) +
                                " out of date");
      }
    }
  }
  return Status::OK();
}

}  // namespace easeml::scheduler
