#ifndef EASEML_SCHEDULER_CANDIDATE_INDEX_H_
#define EASEML_SCHEDULER_CANDIDATE_INDEX_H_

#include <limits>
#include <vector>

#include "common/exact_sum.h"
#include "common/status.h"
#include "common/tournament_tree.h"
#include "scheduler/user_state.h"

namespace easeml::scheduler {

/// Incremental candidate index: the "no scan" serving path.
///
/// Every `Next()` of the scan engines (sequential or sharded) rescans all T
/// tenants even though a `Report` changes exactly one tenant's (bound, gap)
/// summary. The index inverts that: each shard keeps a monotone
/// `TournamentTree` over its tenants' policy summaries (`TenantKey` →
/// `IndexNode`, merged with the same total-order tie-breaks as the scan
/// reductions), plus the exactly-mergeable scalar aggregates of GREEDY's
/// candidate threshold. A tenant event (`Report`, `Cancel`, arm selection,
/// retirement) refreshes ONE leaf and replays its O(log T) root path; a
/// pick reads the N shard roots in O(1) each and merges them exactly like
/// the scan path's `ReduceTree`, so the result is bit-identical to the scan
/// for every shard count.
///
/// ## Per-policy keys and their invalidation contract
///
/// Every `SchedulerPolicy` consumes the index through `PickUserIndexed`;
/// the per-tenant key material each policy relies on is derived in ONE
/// place (`MakeTenantKey`) from `UserState`:
///
///   - GREEDY: (UCB bound sigma~, line-8 gap, exact-sum candidate
///     membership). The candidate threshold "bound * finite_count >= exact
///     sum" is evaluated against incrementally maintained `ExactDoubleSum`
///     aggregates — exact integer arithmetic, so adding a bound and later
///     subtracting it restores the accumulator bit-for-bit and the
///     incremental sum equals the scan's fresh accumulation exactly. The
///     line-8 argmax runs as a pruned tournament descent (candidacy is
///     monotone in the bound, so a subtree whose max bound fails the
///     threshold holds no candidate).
///   - ROUNDROBIN / FCFS: min-id and cyclic-distance picks are answered
///     from `min_schedulable` summaries; the cursor is a QUERY parameter
///     (two O(log T) descents: min schedulable id >= cursor, else global
///     min), so advancing it never touches a leaf — the epoch-offset idea
///     with the offset applied at read time.
///   - RANDOM: per-node schedulable counts give the total for the uniform
///     draw (identical RNG stream) and rank/prefix counts let a binary
///     search recover the j-th schedulable id in global ascending order.
///   - HYBRID: delegates to the active phase (GREEDY before the freeze
///     switch, ROUNDROBIN after); its freeze detector runs in `OnOutcome`,
///     outside the pick path, identically on both paths.
///
/// Keys go stale the moment their tenant's state changes; the owning
/// selector MUST call `Refresh` after every event that touches a tenant —
/// arm selection, outcome fold, cancel, retire — before the next pick.
/// Tenant churn additionally re-partitions shards (the shard map rebalances
/// within +-1), which re-slots leaves: the selector calls `SyncPlacement`
/// with the new shard->tenants lists (cached keys are reused; churn costs
/// O(T) re-aggregation, no per-tenant O(K) diagnostics reads).
///
/// ## External synchronization
///
/// Not thread-safe as a whole, and deliberately mutex-free: the index is
/// engine state behind the owning selector's annotated lock (the sharded
/// engine's `mu_`, an `easeml::Mutex` from common/thread_annotations.h).
/// Because the selector reaches it through an owning pointer, that
/// guarded-by relation is expressed on the selector side
/// (`EASEML_PT_GUARDED_BY`-style at the owner), not here — a struct cannot
/// name a mutex it has never heard of. The worker-side exception mirrors
/// `ShardPool`'s discipline: a shard's owning worker may `Refresh` leaves
/// of ITS tree — during a barriered fan-out, a routed solo, or a queued
/// report fold — without holding the selector lock. The pool's internal
/// mutex orders those writes before the coordinator's next read (barrier
/// completion or queue drain), and distinct shards own disjoint trees, so
/// concurrent folds on different workers never touch the same node; the
/// cached-key vector is indexed per tenant and never resized worker-side
/// (churn drains the queues first). Any new caller must either hold the
/// owning selector's lock or inherit exclusion from the pool the same
/// way.
class CandidateIndex {
 public:
  /// Sentinel for "no tenant": merges below as min-identity, mirroring the
  /// scan reductions' kNoUser/kNone.
  static constexpr int kNone = std::numeric_limits<int>::max();

  /// Per-tenant key material, derived from `UserState` by `MakeTenantKey`
  /// only. `bound`/`gap` are meaningful only when `schedulable`.
  struct TenantKey {
    bool schedulable = false;    // UserState::Schedulable()
    bool uninitialized = false;  // UserState::NeedsInitialObservation()
    bool bad_policy = false;     // live tenant without confidence bounds
    double bound = 0.0;          // empirical bound sigma~ (Algorithm 2 l.6)
    double gap = 0.0;            // line-8 key: MaxUcb - best_reward
  };

  /// Tournament summary over a leaf range. All merges are exact (integer
  /// counts, min-id, strictly-greater-key argmax with lowest-id tie-break —
  /// the scan reductions' total orders), so the root is independent of the
  /// leaf partition and grouping.
  struct IndexNode {
    int cnt_schedulable = 0;
    int min_schedulable = kNone;    // lowest schedulable tenant id
    int min_uninitialized = kNone;  // lowest id the init sweep must serve
    int min_bad_policy = kNone;     // lowest live tenant without bounds
    // Argmax pairs with the scan's -inf-sentinel fold semantics: only keys
    // strictly above -inf (never NaN) occupy a pair; ties keep the lower
    // id. id == kNone marks "no qualifying tenant in this subtree".
    double max_bound = 0.0;
    int max_bound_id = kNone;
    double max_gap = 0.0;
    int max_gap_id = kNone;

    static IndexNode MakeLeaf(int tenant, const TenantKey& key);
    static IndexNode Merge(const IndexNode& a, const IndexNode& b);
  };

  /// GREEDY's candidate-membership context: the exact threshold statistics
  /// merged over every shard. When `all_candidates` (no finite bound
  /// exists) every schedulable tenant is a candidate and the threshold test
  /// is skipped — the scan paths' fallback.
  struct Candidacy {
    const ExactDoubleSum* sum = nullptr;
    int finite_count = 0;
    bool all_candidates = false;

    /// Exact Algorithm 2 line 7 membership test for a schedulable tenant's
    /// bound; identical to the scan paths' BoundIsCandidate.
    bool Admits(double bound) const;
  };

  /// Best (key, lowest-id) pair of a pruned argmax descent; `user == kNone`
  /// when no candidate key rose above the -inf sentinel.
  struct Best {
    double key = -std::numeric_limits<double>::infinity();
    int user = kNone;

    /// The scan reductions' total order: strictly larger key wins, exact
    /// ties keep the lower id. NaN never beats anything.
    bool Beats(const Best& other) const {
      return user != kNone &&
             (other.user == kNone || key > other.key ||
              (key == other.key && user < other.user));
    }
  };

  /// An index over `num_shards` >= 1 shard trees, initially empty.
  /// `track_gap` controls whether keys carry the line-8 gap — the one
  /// O(K) derivation (the batched MaxUcb read). Only GREEDY/HYBRID picks
  /// consume it; engines serving the other schedulers pass false so the
  /// per-event refresh stays O(log T) with no posterior reads at all.
  explicit CandidateIndex(int num_shards, bool track_gap = true);

  int num_shards() const { return static_cast<int>(shards_.size()); }

  /// Bulk (re)build: replaces the shard->tenants placement. `locals[s]`
  /// lists shard s's tenant ids ascending; every id must be < users.size()
  /// and appear in at most one shard. Cached keys are reused for tenants
  /// the index already tracks; keys for new tenants are derived from
  /// `users`. O(T) total — the rebalance path, not the add hot path.
  void SyncPlacement(const std::vector<std::vector<int>>& locals,
                     const std::vector<UserState>& users);

  /// Places a NEW tenant at the tail of `shard` in O(log T) amortized —
  /// valid because tenant ids grow monotonically, so a new id is above
  /// every placed id. The single-shard engine's add path (the sharded
  /// engine resyncs instead: its map may rebalance other tenants).
  void AppendTenant(int shard, const UserState& user);

  /// Recomputes `user`'s key (the only O(K) step: the batched MaxUcb
  /// diagnostics read) and replays its leaf's O(log T) root path plus the
  /// shard's scalar aggregates. No-op on the tree when the tenant is not
  /// placed (e.g. already retired out of the placement).
  void Refresh(const UserState& user);

  // --- O(1) per-shard reads (merge across shards at the call site) -------
  const IndexNode& Root(int shard) const { return shards_[shard].tree.Root(); }
  int FiniteCount(int shard) const { return shards_[shard].finite_count; }
  const ExactDoubleSum& BoundSum(int shard) const {
    return shards_[shard].bound_sum;
  }

  // --- Cross-shard convenience reads (exact min/sum merges) --------------
  /// Lowest tenant id the initialization sweep must serve; kNone if none.
  int MinUninitialized() const;
  /// True iff any tenant is schedulable right now.
  bool AnySchedulable() const;

  // --- Pruned descents (per shard; merge across shards at the call site) --
  /// Argmax of the line-8 key over shard-local CANDIDATES, threaded through
  /// `best` so later shards prune against earlier winners. `use_gap` picks
  /// the gap key (kMaxUcbGap) vs the bound itself (kMaxEmpiricalBound).
  Best BestCandidate(int shard, const Candidacy& candidacy, bool use_gap,
                     Best best) const;

  /// Lowest candidate tenant id in `shard`; kNone if none. (The scan's
  /// min_candidate fallback for the all-keys-at--inf case.)
  int MinCandidate(int shard, const Candidacy& candidacy) const;

  /// Lowest schedulable tenant id >= `id_floor` in `shard`; kNone if none.
  /// Round-robin's cyclic pick = this at the cursor, else the global min.
  int MinSchedulableAtLeast(int shard, int id_floor) const;

  /// Number of schedulable tenants in `shard` with id <= `id_cap` —
  /// RANDOM's rank query for recovering the j-th schedulable id.
  int CountSchedulableLeq(int shard, int id_cap) const;

  /// The cached key for `tenant` (fresh iff the invalidation contract was
  /// honored). Valid for any id the index has ever seen.
  const TenantKey& Key(int tenant) const { return keys_[tenant]; }

  /// Whether keys carry the line-8 gap (see the constructor).
  bool track_gap() const { return track_gap_; }

  /// Invariant check (tests / debug builds): recomputes every key from
  /// `users` and every aggregate from scratch and compares against the
  /// incrementally maintained state — keys bit-for-bit, sums by exact
  /// comparison, every tree node re-merged. Returns Internal on the first
  /// divergence. O(T log T); never called on the serving path.
  Status Validate(const std::vector<UserState>& users) const;

  /// The placement the index currently reflects (ascending per shard);
  /// the sharded engine's ValidateIndex checks it against its shard map.
  std::vector<std::vector<int>> Placement() const;

 private:
  struct Shard {
    TournamentTree<IndexNode> tree;
    std::vector<int> tenants;  // leaf slot -> tenant id, ascending
    // GREEDY phase-A scalar aggregates, maintained by exact +/- deltas:
    // ExactDoubleSum is exact integer arithmetic, so removals cancel
    // additions bit-for-bit and the running value always equals a fresh
    // accumulation over the current members.
    ExactDoubleSum bound_sum;
    int finite_count = 0;
  };

  /// Rebuilds one shard's tree + scalars from cached keys. O(|tenants|).
  void RebuildShard(int shard);

  /// MakeTenantKey with this index's gap-tracking mode (defined after the
  /// free function's declaration).
  TenantKey DeriveKey(const UserState& user) const;

  bool track_gap_ = true;
  std::vector<Shard> shards_;
  // Indexed by tenant id (ids are dense and never reused).
  std::vector<TenantKey> keys_;
  std::vector<int> shard_of_;  // -1 when not placed
  std::vector<int> slot_of_;
};

/// The ONE derivation of a tenant's index key from its runtime state; both
/// the incremental refresh and the bulk build call this, and `Validate`
/// recomputes it to catch stale leaves. `track_gap` = false skips the
/// O(K) UcbGap read (the key's gap stays -inf and never wins a tournament
/// pair) for schedulers that never consume it.
CandidateIndex::TenantKey MakeTenantKey(const UserState& user,
                                        bool track_gap = true);

}  // namespace easeml::scheduler

#endif  // EASEML_SCHEDULER_CANDIDATE_INDEX_H_
