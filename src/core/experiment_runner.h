#ifndef EASEML_CORE_EXPERIMENT_RUNNER_H_
#define EASEML_CORE_EXPERIMENT_RUNNER_H_

#include <string>
#include <vector>

#include "common/status.h"
#include "data/dataset.h"
#include "gp/hyperparameter_tuner.h"
#include "scheduler/greedy.h"
#include "sim/metrics.h"

namespace easeml::core {

/// A complete multi-tenant strategy: a user-picking scheduler plus a
/// model-picking policy per user (Section 5's competitor lineup).
enum class StrategyKind {
  kEaseMl,      // HYBRID scheduling + GP-UCB model picking (the system)
  kGreedy,      // Algorithm 2 without the hybrid switch
  kRoundRobin,  // round-robin users + GP-UCB models
  kRandom,      // random users + GP-UCB models
  kFcfs,        // first-come-first-served + GP-UCB models
  kMostCited,   // round-robin users + most-cited-model-first heuristic
  kMostRecent,  // round-robin users + most-recent-model-first heuristic
};

std::string StrategyName(StrategyKind kind);

/// The experiment protocol of Section 5.2 / Appendix A.
struct ProtocolOptions {
  /// Users sampled into the testing set ("we randomly sample ten users").
  int num_test_users = 10;

  /// Repetitions with fresh random splits ("we repeat the experiment 50
  /// times").
  int num_reps = 50;

  /// Fraction of total runs (cost-oblivious) or total cost (cost-aware
  /// budget) each strategy may consume.
  double budget_fraction = 0.5;

  /// Budget measured in cost and x-axis in "% of total cost" (else "% of
  /// runs").
  bool cost_aware_budget = false;

  /// GP-UCB uses the cost-aware index sqrt(beta/c) (Section 3.2). Kept
  /// separate from `cost_aware_budget` for the Figure-13 lesion, which
  /// disables the index while keeping the cost x-axis.
  bool cost_aware_policy = false;

  /// Fraction of the training users made available to the kernel
  /// (Figure 14: 10% / 50% / 100%).
  double kernel_train_fraction = 1.0;

  /// Kernel family fitted to the training logs.
  gp::KernelFamily kernel_family = gp::KernelFamily::kRbf;

  /// Tune hyperparameters by maximizing log marginal likelihood on the
  /// training realizations (done once per protocol run, on the first
  /// repetition's split). When false, modest defaults are used — handy for
  /// fast unit tests.
  bool tune_hyperparameters = true;

  /// GP-UCB confidence parameter.
  double delta = 0.1;

  /// Use the Theorem-1 theoretical beta schedule instead of the practical
  /// Algorithm-1 schedule (ablation).
  bool theoretical_beta = false;

  /// Line-8 rule used by GREEDY and by HYBRID's greedy phase (ablation of
  /// Section 4.3's "Strategy for Line 8").
  scheduler::Line8Rule greedy_rule = scheduler::Line8Rule::kMaxUcbGap;

  /// HYBRID freeze patience s (the paper uses 10).
  int hybrid_patience = 10;

  /// Loss-curve sampling resolution.
  int grid_points = 101;

  /// Additive Gaussian observation noise on revealed accuracies.
  double observation_noise = 0.0;

  /// Master seed; repetition r derives a child seed from it, so two
  /// strategies run under identical splits and environments.
  uint64_t seed = 42;
};

/// Aggregated outcome of one (dataset, strategy) protocol run.
struct StrategyResult {
  StrategyKind kind;
  std::string strategy_name;
  sim::AggregatedCurves curves;
  double mean_auc = 0.0;  // area under the mean loss curve

  /// Mean (over repetitions) of the Section-4.1 cumulative regrets.
  double mean_cumulative_regret = 0.0;
  double mean_easeml_regret = 0.0;
};

/// Runs the full protocol for one strategy on one dataset: per repetition,
/// split users into train/test, fit the GP prior (kernel + empirical-Bayes
/// mean) on the training users, simulate the multi-tenant campaign on the
/// test users, and aggregate the loss curves across repetitions.
Result<StrategyResult> RunProtocol(const data::Dataset& dataset,
                                   StrategyKind strategy,
                                   const ProtocolOptions& options);

/// Convenience: runs several strategies under identical seeds.
Result<std::vector<StrategyResult>> RunStrategies(
    const data::Dataset& dataset, const std::vector<StrategyKind>& strategies,
    const ProtocolOptions& options);

}  // namespace easeml::core

#endif  // EASEML_CORE_EXPERIMENT_RUNNER_H_
