#ifndef EASEML_CORE_MULTI_TENANT_SELECTOR_H_
#define EASEML_CORE_MULTI_TENANT_SELECTOR_H_

#include <map>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "common/status.h"
#include "gp/gaussian_process.h"
#include "gp/shared_prior_gp.h"
#include "scheduler/scheduler_policy.h"

namespace easeml::core {

/// User-picking strategy of the selector.
enum class SchedulerKind {
  kHybrid,      // ease.ml default (Section 4.4)
  kGreedy,      // Algorithm 2
  kRoundRobin,  // Section 4.2
  kRandom,
  kFcfs,
};

std::string SchedulerKindName(SchedulerKind kind);

/// Options of the multi-tenant selector.
struct SelectorOptions {
  SchedulerKind scheduler = SchedulerKind::kHybrid;

  /// GP-UCB confidence parameter (Algorithm 1 line 3).
  double delta = 0.1;

  /// Use the cost-aware index sqrt(beta_t / c_k) (Section 3.2).
  bool cost_aware = true;

  /// HYBRID freeze patience s (Section 4.4; the paper uses 10).
  int hybrid_patience = 10;

  /// Seed for the RANDOM scheduler.
  uint64_t seed = 0;
};

/// The core public API of this library: ease.ml's multi-tenant, cost-aware
/// model-selection engine (Section 4) behind a pull interface.
///
/// The caller owns the actual training substrate. Usage:
///
///   auto selector = MultiTenantSelector::Create(options).value();
///   auto prior = gp::MakeSharedGpPrior(gram, noise).value();  // once
///   int alice = selector.AddTenant(prior, costs_a).value();
///   int bob   = selector.AddTenant(prior, costs_b).value();
///   while (!selector.Exhausted()) {
///     auto a = selector.Next().value();        // which (tenant, model) to train
///     double acc = TrainAndEvaluate(a.tenant, a.model);
///     selector.Report(a, acc);                 // feed the result back
///   }
///
/// All tenants registered with the same `SharedGpPrior` share one immutable
/// Gram matrix; each keeps only its O(K + tK) observation state, so tenant
/// count scales independently of K^2.
///
/// The selector serves one training job at a time (the paper's single-device
/// resource model: "the current execution strategy of ease.ml is to use all
/// its GPUs to train a single model"). Tenants added after the loop started
/// are picked up by the initialization sweep on their first rounds.
class MultiTenantSelector {
 public:
  /// A unit of work: train model `model` for tenant `tenant`.
  struct Assignment {
    int tenant = -1;
    int model = -1;
  };

  static Result<MultiTenantSelector> Create(const SelectorOptions& options);

  /// Registers a tenant against a shared GP prior (the preferred path: the
  /// Gram matrix is allocated once and shared by every tenant created from
  /// it) with per-model costs (one positive cost per arm). Returns the
  /// tenant id.
  Result<int> AddTenant(std::shared_ptr<const gp::SharedGpPrior> prior,
                        std::vector<double> costs);

  /// Registers a tenant with a private dense belief (O(K^2) state; kept for
  /// callers that need a tenant-specific prior covariance).
  Result<int> AddTenant(gp::DiscreteArmGp belief, std::vector<double> costs);

  /// Registers a tenant with an uninformative independent prior
  /// (unit-variance diagonal) — used when no training logs exist yet. The
  /// default prior is built once per (num_models, noise_variance) and
  /// shared across all tenants of this selector.
  Result<int> AddTenantWithDefaultPrior(int num_models,
                                        std::vector<double> costs,
                                        double noise_variance = 1e-2);

  int num_tenants() const { return static_cast<int>(users_.size()); }

  /// True when every tenant has trained every candidate model.
  bool Exhausted() const;

  /// Picks the next (tenant, model) to train. Only one assignment may be
  /// outstanding: fails with FailedPrecondition if the previous assignment
  /// has not been reported yet, or if all tenants are exhausted.
  Result<Assignment> Next();

  /// Reports the measured accuracy of a completed assignment.
  Status Report(const Assignment& assignment, double accuracy);

  /// Best model trained so far for `tenant` (what `infer` serves);
  /// NotFound before the first completed run.
  Result<int> BestModel(int tenant) const;

  /// Best observed accuracy for `tenant`; 0 before the first run.
  Result<double> BestAccuracy(int tenant) const;

  /// Rounds served so far for `tenant`.
  Result<int> RoundsServed(int tenant) const;

  const scheduler::SchedulerPolicy& scheduler_policy() const {
    return *scheduler_;
  }

 private:
  explicit MultiTenantSelector(const SelectorOptions& options,
                               std::unique_ptr<scheduler::SchedulerPolicy> s)
      : options_(options), scheduler_(std::move(s)) {}

  Status ValidateTenant(int tenant) const;
  Result<int> AddTenantWithBelief(std::unique_ptr<gp::ArmBelief> belief,
                                  std::vector<double> costs);

  SelectorOptions options_;
  std::unique_ptr<scheduler::SchedulerPolicy> scheduler_;
  std::vector<scheduler::UserState> users_;
  /// Default priors, shared across tenants, keyed by (K, noise variance).
  std::map<std::pair<int, double>, std::shared_ptr<const gp::SharedGpPrior>>
      default_priors_;
  std::vector<int> best_model_;  // -1 until first report
  Assignment pending_;
  bool has_pending_ = false;
  int round_ = 0;
};

}  // namespace easeml::core

#endif  // EASEML_CORE_MULTI_TENANT_SELECTOR_H_
