#ifndef EASEML_CORE_MULTI_TENANT_SELECTOR_H_
#define EASEML_CORE_MULTI_TENANT_SELECTOR_H_

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "common/status.h"
#include "core/durability_log.h"
#include "core/durable_state.h"
#include "core/selector_observer.h"
#include "gp/gaussian_process.h"
#include "gp/shared_prior_gp.h"
#include "scheduler/candidate_index.h"
#include "scheduler/scheduler_policy.h"

namespace easeml::core {

/// User-picking strategy of the selector.
enum class SchedulerKind {
  kHybrid,      // ease.ml default (Section 4.4)
  kGreedy,      // Algorithm 2
  kRoundRobin,  // Section 4.2
  kRandom,
  kFcfs,
};

std::string SchedulerKindName(SchedulerKind kind);

/// Options of the multi-tenant selector.
struct SelectorOptions {
  SchedulerKind scheduler = SchedulerKind::kHybrid;

  /// GP-UCB confidence parameter (Algorithm 1 line 3).
  double delta = 0.1;

  /// Use the cost-aware index sqrt(beta_t / c_k) (Section 3.2).
  bool cost_aware = true;

  /// HYBRID freeze patience s (Section 4.4; the paper uses 10).
  int hybrid_patience = 10;

  /// Seed for the RANDOM scheduler.
  uint64_t seed = 0;

  /// Number of training devices, i.e. the maximum number of assignments
  /// that may be outstanding at once. 1 (the default) is the paper's
  /// resource model ("use all its GPUs to train a single model") and
  /// reproduces the sequential Next/Report protocol bit-identically.
  int num_devices = 1;

  /// Number of selector shards for the parallel user-picking engine. 1
  /// (the default) is the in-process sequential scan; values > 1 select
  /// `shard::ShardedMultiTenantSelector` when the selector is built
  /// through `shard::MakeSelector` — tenants are hash-partitioned across
  /// that many worker threads and every `Next()` scan fans out over them,
  /// reduced deterministically so the selection trace stays bit-identical
  /// to the sequential engine. Plain `MultiTenantSelector::Create` ignores
  /// the field (it IS the 1-shard engine).
  int num_shards = 1;

  /// Serve `Next()` from the incremental candidate index instead of the
  /// O(T) tenant scan: each engine shard keeps a monotone tournament tree
  /// over its tenants' policy summaries (scheduler/candidate_index.h), a
  /// tenant event replays one O(log T) leaf path, and a pick reads the
  /// shard roots — bit-identical to the scan path by construction (the
  /// index/scan conformance suite pins every policy, shard count and churn
  /// pattern). Off by default: the scan needs no per-tenant key
  /// maintenance on the report path, which a small-T deployment may
  /// prefer; flip it on when T is large enough that Next() dominates.
  bool use_candidate_index = false;

  /// Observation seam (core/selector_observer.h), or nullptr for none. Not
  /// owned; must outlive the selector. When set, the engines publish a
  /// fresh `TenantObservation` at every fold boundary and feed the timing
  /// hooks — the obs layer's snapshot plane and metrics registry hang off
  /// this pointer. When null (the default) every hook site is a single
  /// branch and the serving path is byte-for-byte the unobserved one.
  SelectorObserver* observer = nullptr;

  /// Durability seam (core/durability_log.h), or nullptr for none. Not
  /// owned; must outlive the selector. When set, every successful mutation
  /// appends one record under the engine's synchronization (log order =
  /// validation order) and the acknowledged mutations (AddTenant,
  /// RemoveTenant, Report, Cancel) sync before returning; `Next` appends
  /// without syncing (see DurabilityLog's ack-discipline comment). A WAL
  /// write failure fail-stops the selector: the error is latched and every
  /// further mutation is refused, because in-memory state may be ahead of
  /// the log. When null (the default) every hook is one branch — same
  /// zero-cost discipline as `observer`. The durable path requires the
  /// shared-prior belief representation: `AddTenant(DiscreteArmGp, ...)`
  /// is Unimplemented while a WAL is attached.
  DurabilityLog* wal = nullptr;
};

/// Builds the scheduler policy `options` selects (nullptr for an unknown
/// kind). Shared by the sequential selector and the sharded engine so both
/// run byte-identical policy state.
std::unique_ptr<scheduler::SchedulerPolicy> MakeSchedulerPolicy(
    const SelectorOptions& options);

/// Raw entry count of the process-wide default-prior cache (live priors
/// plus dead weak_ptrs not yet swept). Test-only observability for the
/// cache's bounded-growth guarantee: every AddTenantWithDefaultPrior
/// lookup/insert sweeps expired entries first, so tenant churn cannot grow
/// the map beyond the live (K, noise) shapes. Does not prune itself.
int DefaultPriorCacheSizeForTesting();

/// The core public API of this library: ease.ml's multi-tenant, cost-aware
/// model-selection engine (Section 4) behind a pull interface.
///
/// The caller owns the actual training substrate. Sequential usage:
///
///   auto selector = MultiTenantSelector::Create(options).value();
///   auto prior = gp::MakeSharedGpPrior(gram, noise).value();  // once
///   int alice = selector.AddTenant(prior, costs_a).value();
///   int bob   = selector.AddTenant(prior, costs_b).value();
///   while (!selector.Exhausted()) {
///     auto a = selector.Next().value();        // which (tenant, model) to train
///     double acc = TrainAndEvaluate(a.tenant, a.model);
///     selector.Report(a, acc);                 // feed the result back
///   }
///
/// All tenants registered with the same `SharedGpPrior` share one immutable
/// Gram matrix; each keeps only its O(K + tK) observation state, so tenant
/// count scales independently of K^2.
///
/// ## The in-flight model (multi-device operation)
///
/// With `options.num_devices = D`, up to D assignments may be outstanding
/// at once. Every assignment `Next()` hands out carries a unique ticket
/// `id` and is recorded in an in-flight table keyed by that id; the tenant's
/// per-arm in-flight mask marks the model as *charged but unobserved*, so
/// no scheduler can hand the same (tenant, model) to a second device and
/// the UCB diagnostics (GREEDY's candidate set, line-8 gaps) skip it.
/// `Report()` reconciles completions arriving in ANY order by validating
/// the reported assignment against the issued in-flight entry:
///
///   - unknown ticket id (never issued)            -> NotFound
///   - stale/duplicate id (issued, already closed) -> FailedPrecondition
///   - forged tenant/model under a live id         -> InvalidArgument
///   - non-finite accuracy                         -> InvalidArgument
///
/// and only then folds the observation into the tenant's belief, so no
/// malformed report can corrupt belief state. `Next()` fails with
/// FailedPrecondition while all D device slots are occupied, and with a
/// distinct FailedPrecondition when every remaining model is in flight
/// (drain completions first). Tenants added after the loop started are
/// picked up by the initialization sweep on their first rounds.
///
/// ## Engine seams
///
/// The class doubles as the base of the sharded engine
/// (`shard::ShardedMultiTenantSelector`): the ticketed protocol above is
/// final, while the protected virtuals below — how the next tenant is
/// picked, where a tenant's arm selection / belief fold executes — are the
/// points the sharded engine overrides to fan work out over its shard
/// workers. `Create` ignores `num_shards`; build through
/// `shard::MakeSelector` to honor it. The base engine is single-threaded
/// (external synchronization required); the sharded override of every
/// public method is thread-safe.
class MultiTenantSelector {
 public:
  /// A unit of work: train model `model` for tenant `tenant`. `id` is the
  /// in-flight ticket assigned by `Next()`, unique across the selector's
  /// lifetime; `Report` validates against it.
  struct Assignment {
    int tenant = -1;
    int model = -1;
    int64_t id = -1;
  };

  static Result<MultiTenantSelector> Create(const SelectorOptions& options);

  virtual ~MultiTenantSelector() = default;
  // Public moves keep the historical by-value usage working
  // (`Create(...).value()`, selectors held as members). CAUTION: the class
  // is also a polymorphic base — moving through a base reference/pointer
  // that actually designates a ShardedMultiTenantSelector would slice off
  // the shard engine. Engines built via `shard::MakeSelector` live behind
  // `unique_ptr` precisely so they are never moved as base values.
  MultiTenantSelector(MultiTenantSelector&&) = default;
  MultiTenantSelector& operator=(MultiTenantSelector&&) = default;
  MultiTenantSelector(const MultiTenantSelector&) = delete;
  MultiTenantSelector& operator=(const MultiTenantSelector&) = delete;

  /// Registers a tenant against a shared GP prior (the preferred path: the
  /// Gram matrix is allocated once and shared by every tenant created from
  /// it) with per-model costs (one positive cost per arm). Returns the
  /// tenant id.
  virtual Result<int> AddTenant(std::shared_ptr<const gp::SharedGpPrior> prior,
                                std::vector<double> costs);

  /// Registers a tenant with a private dense belief (O(K^2) state; kept for
  /// callers that need a tenant-specific prior covariance).
  virtual Result<int> AddTenant(gp::DiscreteArmGp belief,
                                std::vector<double> costs);

  /// Registers a tenant with an uninformative independent prior
  /// (unit-variance diagonal) — used when no training logs exist yet. The
  /// default prior is built once per (num_models, noise_variance) in a
  /// process-wide, mutex-guarded cache (concurrent shard setup reaches it)
  /// and shared by every tenant and selector requesting that shape.
  virtual Result<int> AddTenantWithDefaultPrior(int num_models,
                                               std::vector<double> costs,
                                               double noise_variance = 1e-2);

  /// Retires a tenant: it is never scheduled again, its belief memory is
  /// released, and its shard slot is vacated (the sharded engine
  /// rebalances). Refused with FailedPrecondition while the tenant has
  /// in-flight tickets — `Report` or `Cancel` them first — or when it was
  /// already removed; OutOfRange for ids never issued. Historical
  /// read-side queries (BestModel, BestAccuracy, RoundsServed) stay
  /// answerable after removal. Tenant ids are never reused.
  virtual Status RemoveTenant(int tenant);

  /// Registered tenants, INCLUDING removed ones (ids are stable).
  virtual int num_tenants() const { return static_cast<int>(users_.size()); }

  /// True when every tenant has trained every candidate model (in-flight
  /// assignments keep the selector non-exhausted until reported; removed
  /// tenants count as done).
  virtual bool Exhausted() const;

  /// Number of outstanding (issued, not yet reported) assignments.
  virtual int num_in_flight() const {
    return static_cast<int>(in_flight_.size());
  }

  /// Configured device count (max outstanding assignments).
  int num_devices() const { return options_.num_devices; }

  /// True iff `Next()` would hand out an assignment right now: a device
  /// slot is free and some tenant has an un-charged model remaining. False
  /// while everything remaining is in flight — drain completions and retry.
  virtual bool HasDispatchableWork() const;

  /// Picks the next (tenant, model) to train and marks it in flight. Fails
  /// with FailedPrecondition when all `num_devices` slots are occupied,
  /// when every remaining model is in flight, or when all tenants are
  /// exhausted.
  virtual Result<Assignment> Next();

  /// Reports the measured accuracy of a completed assignment; completions
  /// may arrive in any order. See the class comment for the Status-code
  /// taxonomy of rejected reports.
  virtual Status Report(const Assignment& assignment, double accuracy);

  /// Returns a live ticket without an observation (device failure, job
  /// abort): the (tenant, model) becomes dispatchable again as if never
  /// handed out. Validates exactly like `Report`.
  virtual Status Cancel(const Assignment& assignment);

  /// The issued in-flight assignment for a live ticket; NotFound when the
  /// ticket is not outstanding. This is the authoritative in-flight record
  /// — executors correlate completions through it instead of keeping their
  /// own table.
  virtual Result<Assignment> InFlightAssignment(int64_t ticket) const;

  /// Best model trained so far for `tenant` (what `infer` serves);
  /// NotFound before the first completed run.
  virtual Result<int> BestModel(int tenant) const;

  /// Best observed accuracy for `tenant`; 0 before the first run.
  virtual Result<double> BestAccuracy(int tenant) const;

  /// Rounds served so far for `tenant`.
  virtual Result<int> RoundsServed(int tenant) const;

  /// Read access to the scheduler policy (diagnostics: hybrid switch
  /// state, greedy rule). NOT covered by the sharded engine's
  /// thread-safety guarantee — the returned reference outlives any lock,
  /// so only inspect it while no other thread is driving the selector.
  const scheduler::SchedulerPolicy& scheduler_policy() const {
    return *scheduler_;
  }

  /// Invariant check for the candidate index (tests / debug tooling, never
  /// the serving path): re-derives every tenant key and replays every
  /// aggregate from scratch, failing with Internal on the first stale leaf,
  /// drifted exact sum, or out-of-date tournament node. OK when the index
  /// is disabled. The sharded override additionally locks and checks the
  /// index placement against its shard map, so AddTenant/RemoveTenant
  /// rebalances cannot silently desynchronize the two.
  virtual Status ValidateIndex() const;

  /// Serializes the COMPLETE engine state (priors deduplicated by
  /// identity, per-tenant user + compact belief state, in-flight table,
  /// ticket/round counters, scheduler blob, WAL position) for a
  /// checkpoint. Requires every tenant to run the shared-prior belief
  /// (Unimplemented otherwise — the dense representation is rejected at
  /// AddTenant when a WAL is attached). The sharded override locks and
  /// drains the fold pipeline first, so the capture is quiesced.
  virtual Result<DurableSelectorState> CaptureDurableState() const;

  /// Restores a captured state into THIS engine, which must be freshly
  /// created with equivalent options (same scheduler kind, delta,
  /// cost-awareness, device count — configuration is not stored).
  /// Beliefs are rebuilt by replaying the observation history
  /// (bit-identical by determinism) and verified bit-for-bit against the
  /// stored Cholesky factor; DataLoss on any mismatch. FailedPrecondition
  /// when the engine already has state.
  virtual Status RestoreDurableState(const DurableSelectorState& state);

 protected:
  MultiTenantSelector(const SelectorOptions& options,
                      std::unique_ptr<scheduler::SchedulerPolicy> s)
      : options_(options), scheduler_(std::move(s)) {}

  // --- Engine seams -------------------------------------------------------
  //
  // Called from within the public methods above while the engine's
  // synchronization (none here; the selector lock in the sharded engine) is
  // already in effect, so overrides must not re-enter the public API.

  /// Picks the tenant to serve at global round `round`: the initialization
  /// sweep (Algorithm 2 lines 1-4, registration order) first, then the
  /// scheduler policy. The sharded engine fans both scans out over its
  /// shards with a deterministic reduction.
  virtual Result<int> PickTenant(int round);

  /// Runs `users()[tenant].SelectArm()`; the sharded engine routes the call
  /// to the shard worker owning the tenant.
  virtual Result<int> SelectArmFor(int tenant);

  /// Runs `users()[tenant].RecordOutcome(model, reward)`; routed likewise.
  virtual Status RecordOutcomeFor(int tenant, int model, double reward);

  /// Runs `users()[tenant].CancelSelection(model)`; routed likewise.
  virtual Status CancelSelectionFor(int tenant, int model);

  /// Notification hooks for shard-map / index maintenance. The base add
  /// hook appends the new tenant to the 1-shard index in O(log T); the
  /// sharded engine overrides both to update its shard map and resync the
  /// index placement (a rebalance may move OTHER tenants between shards).
  virtual void OnTenantAdded(int tenant);
  virtual void OnTenantRemoved(int tenant) { (void)tenant; }

  // --- Report pipeline seams ----------------------------------------------
  //
  // `Report`/`Cancel` decompose into a COORDINATOR phase (`Begin*`:
  // validate the ticket against the in-flight table and retire the entry),
  // a FOLD phase (`Fold*`: the O(t^2) belief append / in-flight un-charge
  // plus the index-leaf refresh, via the `RecordOutcomeFor` /
  // `CancelSelectionFor` seams), and for Report a SEQUENCING phase
  // (`FinishReport`: scheduler OnOutcome + global round advance). The base
  // engine runs all three inline; the sharded engine runs `Begin*` /
  // `FinishReport` under its coordinator lock and ships the fold to the
  // tenant's owning shard worker through a per-shard FIFO report queue, so
  // completions for tenants on different shards fold concurrently.
  // Per-tenant fold order equals Begin* order, which keeps the selection
  // trace bit-identical to the inline pipeline.

  /// Coordinator phase: resolves `assignment` against the in-flight table
  /// (class-comment taxonomy), validates `accuracy`, and retires the
  /// ticket. Returns the ISSUED assignment the fold must apply.
  Result<Assignment> BeginReport(const Assignment& assignment,
                                 double accuracy);

  /// Fold phase: appends the observation to the tenant's belief and tracks
  /// the incumbent best model. `issued` must come from `BeginReport` — the
  /// fold of a validated ticket cannot fail (the arm is charged in flight
  /// and the tenant cannot be removed under an open ticket), so a rejection
  /// here aborts.
  void FoldReportedOutcome(const Assignment& issued, double accuracy);

  /// Sequencing phase: scheduler OnOutcome + round advance. Policies whose
  /// `ObservesOutcomes()` is true read every tenant's post-fold state here,
  /// so asynchronous engines must quiesce their fold pipeline first.
  void FinishReport(int tenant);

  /// Coordinator phase of `Cancel`: same validation and retirement as
  /// `BeginReport`, without an accuracy.
  Result<Assignment> BeginCancel(const Assignment& assignment);

  /// Fold phase of `Cancel`: un-charges the arm (it becomes dispatchable
  /// again). Aborts on rejection — impossible for a validated ticket.
  void FoldCancel(const Assignment& issued);

  // --- Candidate-index plumbing -------------------------------------------
  //
  // The base engine owns the (optional) index; the sharded engine swaps in
  // an N-shard instance and overrides the placement. Every seam that
  // mutates a tenant refreshes that tenant's leaf, so the index is fresh
  // whenever PickTenant runs.

  /// The index, or nullptr when `use_candidate_index` is off.
  scheduler::CandidateIndex* candidate_index() { return index_.get(); }
  const scheduler::CandidateIndex* candidate_index() const {
    return index_.get();
  }

  /// Replaces the index with an empty `num_shards`-shard instance (the
  /// sharded engine calls this before any tenant exists). Keys track the
  /// line-8 gap only for schedulers that consume it (GREEDY/HYBRID).
  void ResetIndex(int num_shards);

  /// Recomputes `tenant`'s key and replays its leaf path (no-op when
  /// disabled). Call after ANY event that changes the tenant's state.
  void RefreshIndexEntry(int tenant);

  /// The one source of the two no-work refusals (all exhausted vs
  /// everything in flight): the conformance suite compares Status TEXT
  /// between engines, so every pick path must emit identical strings.
  Status NoDispatchableWorkStatus() const;

  // --- Observation seam ---------------------------------------------------
  //
  // `NotifyTenantEvent` fires at exactly the seams that refresh the
  // candidate-index leaf (selection, fold, cancel, retire): wherever the
  // index would go stale, so would a dashboard. All of it is skipped in a
  // single branch when no observer is configured.

  /// The configured observer, or nullptr (the common case).
  SelectorObserver* observer() const { return options_.observer; }

  /// Publishes `tenant`'s fresh observation to the observer (no-op when
  /// none). Call AFTER `RefreshIndexEntry` — the gap is read back from the
  /// just-refreshed index key when the index tracks it.
  void NotifyTenantEvent(int tenant);

  /// Derives the observation `NotifyTenantEvent` publishes (also used by
  /// tests to compare a snapshot against live engine state).
  TenantObservation DeriveObservation(int tenant) const;

  // --- Durability seam ----------------------------------------------------
  //
  // Mirrors the observer seam: one branch when no WAL is configured. The
  // engines append AFTER applying (log order = validation order, and only
  // successful mutations are logged, so replay must succeed), and latch
  // the first WAL error — the selector fail-stops rather than let its
  // in-memory state silently outrun what recovery can reproduce.

  /// The configured durability log, or nullptr (the common case).
  DurabilityLog* wal() const { return options_.wal; }

  /// Fail-fast check every mutation runs first: OK without a WAL or while
  /// it is healthy, FailedPrecondition once a WAL write failed.
  Status WalGuard() const;

  /// Latches the first WAL error (and returns `status` unchanged).
  Status WalApply(Status status);

  /// Syncs the WAL (no-op without one), latching failure.
  Status SyncWal();

  const SelectorOptions& options() const { return options_; }
  std::vector<scheduler::UserState>& users() { return users_; }
  const std::vector<scheduler::UserState>& users() const { return users_; }
  scheduler::SchedulerPolicy& scheduler() { return *scheduler_; }
  const std::map<int64_t, Assignment>& in_flight() const { return in_flight_; }

 private:
  Status ValidateTenant(int tenant) const;
  Result<int> AddTenantWithBelief(std::unique_ptr<gp::ArmBelief> belief,
                                  std::vector<double> costs);

  /// Shared Report/Cancel validation: resolves `assignment` to its live
  /// in-flight entry or the precise rejection Status (see class comment).
  Result<std::map<int64_t, Assignment>::iterator> FindIssuedEntry(
      const Assignment& assignment);

  SelectorOptions options_;
  std::unique_ptr<scheduler::SchedulerPolicy> scheduler_;
  /// Incremental candidate index (nullptr when disabled): per-shard
  /// tournament trees + exact threshold aggregates answering PickTenant in
  /// O(log T) instead of an O(T) scan.
  std::unique_ptr<scheduler::CandidateIndex> index_;
  std::vector<scheduler::UserState> users_;
  std::vector<int> best_model_;  // -1 until first report
  /// Outstanding assignments keyed by ticket id.
  std::map<int64_t, Assignment> in_flight_;
  int64_t next_ticket_ = 0;
  int round_ = 0;
  /// First WAL append/sync error, latched forever (fail-stop). Guarded by
  /// the engine's synchronization like every other engine field: all WAL
  /// calls, including Sync, run under it.
  Status wal_status_;
};

}  // namespace easeml::core

#endif  // EASEML_CORE_MULTI_TENANT_SELECTOR_H_
