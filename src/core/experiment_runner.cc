#include "core/experiment_runner.h"

#include <cmath>
#include <memory>

#include "bandit/fixed_order.h"
#include "bandit/gp_ucb.h"
#include "common/rng.h"
#include "gp/shared_prior_gp.h"
#include "data/model_features.h"
#include "data/splits.h"
#include "scheduler/fcfs.h"
#include "scheduler/greedy.h"
#include "scheduler/hybrid.h"
#include "scheduler/random_scheduler.h"
#include "scheduler/round_robin.h"
#include "sim/simulator.h"

namespace easeml::core {

std::string StrategyName(StrategyKind kind) {
  switch (kind) {
    case StrategyKind::kEaseMl:
      return "ease.ml";
    case StrategyKind::kGreedy:
      return "greedy";
    case StrategyKind::kRoundRobin:
      return "round-robin";
    case StrategyKind::kRandom:
      return "random";
    case StrategyKind::kFcfs:
      return "fcfs";
    case StrategyKind::kMostCited:
      return "most-cited";
    case StrategyKind::kMostRecent:
      return "most-recent";
  }
  return "unknown";
}

namespace {

/// SplitMix64 mixing so per-repetition streams are independent. The gamma
/// stride plus SplitMix64's own increment reproduce the historical
/// `master + gamma * (rep + 1)` seeding bit-for-bit.
uint64_t ChildSeed(uint64_t master, uint64_t rep) {
  return SplitMix64(master + kSplitMix64Gamma * rep);
}

bool UsesGpUcb(StrategyKind kind) {
  return kind != StrategyKind::kMostCited &&
         kind != StrategyKind::kMostRecent;
}

Status ValidateProtocol(const data::Dataset& ds, StrategyKind strategy,
                        const ProtocolOptions& o) {
  EASEML_RETURN_NOT_OK(ds.Validate());
  if (o.num_test_users <= 0 || o.num_test_users >= ds.num_users()) {
    return Status::InvalidArgument(
        "RunProtocol: need 0 < num_test_users < num_users");
  }
  if (o.num_reps <= 0) {
    return Status::InvalidArgument("RunProtocol: num_reps must be > 0");
  }
  if (o.kernel_train_fraction <= 0.0 || o.kernel_train_fraction > 1.0) {
    return Status::InvalidArgument(
        "RunProtocol: kernel_train_fraction not in (0, 1]");
  }
  if (strategy == StrategyKind::kMostCited &&
      ds.citations.size() != static_cast<size_t>(ds.num_models())) {
    return Status::FailedPrecondition(
        "RunProtocol: MOSTCITED needs citation metadata");
  }
  if (strategy == StrategyKind::kMostRecent &&
      ds.publication_year.size() != static_cast<size_t>(ds.num_models())) {
    return Status::FailedPrecondition(
        "RunProtocol: MOSTRECENT needs publication-year metadata");
  }
  return Status::OK();
}

/// Scales feature vectors by 1/sqrt(dim) so Euclidean distances — and hence
/// the length-scale grid — are comparable across training-set sizes.
void NormalizeFeatureDimension(std::vector<std::vector<double>>& features) {
  if (features.empty() || features[0].empty()) return;
  const double s = 1.0 / std::sqrt(static_cast<double>(features[0].size()));
  for (auto& f : features) {
    for (double& v : f) v *= s;
  }
}

std::unique_ptr<scheduler::SchedulerPolicy> MakeScheduler(
    StrategyKind kind, const ProtocolOptions& o, uint64_t seed) {
  switch (kind) {
    case StrategyKind::kEaseMl:
      return std::make_unique<scheduler::HybridScheduler>(
          o.hybrid_patience, o.greedy_rule, seed);
    case StrategyKind::kGreedy:
      return std::make_unique<scheduler::GreedyScheduler>(o.greedy_rule,
                                                          seed);
    case StrategyKind::kRandom:
      return std::make_unique<scheduler::RandomScheduler>(seed);
    case StrategyKind::kFcfs:
      return std::make_unique<scheduler::FcfsScheduler>();
    case StrategyKind::kRoundRobin:
    case StrategyKind::kMostCited:
    case StrategyKind::kMostRecent:
      return std::make_unique<scheduler::RoundRobinScheduler>();
  }
  return nullptr;
}

/// Hyperparameters used when tuning is disabled or as the tuning fallback.
gp::TunedHyperparameters DefaultHyperparameters(gp::KernelFamily family) {
  gp::TunedHyperparameters hp;
  hp.family = family;
  hp.length_scale = 0.2;
  hp.signal_variance = 0.05;
  hp.noise_variance = 1e-3;
  return hp;
}

}  // namespace

Result<StrategyResult> RunProtocol(const data::Dataset& dataset,
                                   StrategyKind strategy,
                                   const ProtocolOptions& options) {
  EASEML_RETURN_NOT_OK(ValidateProtocol(dataset, strategy, options));

  // --- Hyperparameter fitting (once, on repetition 0's split) -------------
  gp::TunedHyperparameters hp =
      DefaultHyperparameters(options.kernel_family);
  if (options.tune_hyperparameters && UsesGpUcb(strategy)) {
    Rng rng(ChildSeed(options.seed, 0));
    EASEML_ASSIGN_OR_RETURN(
        data::TrainTestSplit split,
        data::SplitUsers(dataset.num_users(), options.num_test_users, rng));
    EASEML_ASSIGN_OR_RETURN(
        std::vector<int> kernel_users,
        data::SubsampleIndices(split.train_users,
                               options.kernel_train_fraction, rng));
    EASEML_ASSIGN_OR_RETURN(auto features,
                            data::ComputeModelFeatures(dataset, kernel_users));
    NormalizeFeatureDimension(features);
    EASEML_ASSIGN_OR_RETURN(auto realizations,
                            data::ComputeRealizations(dataset, kernel_users));
    auto tuned = gp::TuneByMarginalLikelihood(options.kernel_family, features,
                                              realizations);
    if (tuned.ok()) hp = *tuned;
  }

  // --- Repetitions ---------------------------------------------------------
  std::vector<sim::LossCurve> curves;
  curves.reserve(options.num_reps);
  double total_cumulative_regret = 0.0;
  double total_easeml_regret = 0.0;
  for (int rep = 0; rep < options.num_reps; ++rep) {
    Rng rng(ChildSeed(options.seed, rep));
    EASEML_ASSIGN_OR_RETURN(
        data::TrainTestSplit split,
        data::SplitUsers(dataset.num_users(), options.num_test_users, rng));
    EASEML_ASSIGN_OR_RETURN(
        std::vector<int> kernel_users,
        data::SubsampleIndices(split.train_users,
                               options.kernel_train_fraction, rng));

    // GP prior from the training logs: one immutable Gram matrix shared by
    // every test user of this repetition (tenants hold only O(K + tK)
    // observation state on top of it).
    std::shared_ptr<const gp::SharedGpPrior> shared_prior;
    if (UsesGpUcb(strategy)) {
      EASEML_ASSIGN_OR_RETURN(
          auto features, data::ComputeModelFeatures(dataset, kernel_users));
      NormalizeFeatureDimension(features);
      // mu_0 = global_mean * 1: a constant prior (reward centering). All
      // per-model knowledge lives in the kernel, as in the paper.
      EASEML_ASSIGN_OR_RETURN(
          double global_mean,
          data::ComputeGlobalMeanQuality(dataset, kernel_users));
      std::vector<double> prior_mean(dataset.num_models(), global_mean);
      std::unique_ptr<gp::Kernel> kernel = hp.MakeKernel();
      EASEML_ASSIGN_OR_RETURN(linalg::Matrix gram,
                              kernel->BuildGram(features));
      gram.AddToDiagonal(1e-8);  // numerical jitter
      EASEML_ASSIGN_OR_RETURN(
          shared_prior,
          gp::MakeSharedGpPrior(std::move(gram), hp.noise_variance,
                                std::move(prior_mean)));
    }

    EASEML_ASSIGN_OR_RETURN(data::Dataset test_ds,
                            dataset.SelectUsers(split.test_users));
    EASEML_ASSIGN_OR_RETURN(
        sim::Environment env,
        sim::Environment::Create(std::move(test_ds),
                                 options.observation_noise, rng.NextSeed()));

    std::vector<scheduler::UserState> users;
    users.reserve(options.num_test_users);
    for (int i = 0; i < options.num_test_users; ++i) {
      std::vector<double> costs = env.CostsForUser(i);
      std::unique_ptr<bandit::BanditPolicy> policy;
      if (UsesGpUcb(strategy)) {
        EASEML_ASSIGN_OR_RETURN(std::unique_ptr<gp::SharedPriorGp> belief,
                                gp::SharedPriorGp::CreateUnique(shared_prior));
        bandit::GpUcbOptions ucb;
        ucb.delta = options.delta;
        ucb.theoretical_beta = options.theoretical_beta;
        ucb.cost_aware = options.cost_aware_policy;
        if (ucb.cost_aware) ucb.costs = costs;
        EASEML_ASSIGN_OR_RETURN(
            auto gp_policy,
            bandit::GpUcbPolicy::CreateUnique(std::move(belief), ucb));
        policy = std::move(gp_policy);
      } else {
        std::vector<double> score(dataset.num_models());
        for (int j = 0; j < dataset.num_models(); ++j) {
          score[j] = strategy == StrategyKind::kMostCited
                         ? static_cast<double>(dataset.citations[j])
                         : static_cast<double>(dataset.publication_year[j]);
        }
        EASEML_ASSIGN_OR_RETURN(
            bandit::FixedOrderPolicy fixed,
            bandit::FixedOrderPolicy::Create(
                bandit::OrderByScoreDescending(score),
                StrategyName(strategy)));
        policy = std::make_unique<bandit::FixedOrderPolicy>(std::move(fixed));
      }
      EASEML_ASSIGN_OR_RETURN(
          scheduler::UserState state,
          scheduler::UserState::Create(i, std::move(policy),
                                       std::move(costs)));
      users.push_back(std::move(state));
    }

    std::unique_ptr<scheduler::SchedulerPolicy> sched =
        MakeScheduler(strategy, options, rng.NextSeed());
    sim::SimulationOptions sim_opts;
    sim_opts.cost_aware_budget = options.cost_aware_budget;
    sim_opts.budget_fraction = options.budget_fraction;
    sim_opts.grid_points = options.grid_points;
    // FCFS is the pathological baseline precisely because it never rotates;
    // forcing a sweep would hide its failure mode.
    sim_opts.initial_sweep = strategy != StrategyKind::kFcfs;

    EASEML_ASSIGN_OR_RETURN(sim::SimulationResult sim_result,
                            sim::RunSimulation(env, users, *sched, sim_opts));
    total_cumulative_regret += sim_result.cumulative_regret;
    total_easeml_regret += sim_result.easeml_regret;
    curves.push_back(std::move(sim_result.curve));
  }

  StrategyResult out;
  out.kind = strategy;
  out.strategy_name = StrategyName(strategy);
  EASEML_ASSIGN_OR_RETURN(out.curves, sim::Aggregate(curves));
  out.mean_auc = sim::AreaUnderCurve(out.curves.grid, out.curves.mean);
  out.mean_cumulative_regret = total_cumulative_regret / options.num_reps;
  out.mean_easeml_regret = total_easeml_regret / options.num_reps;
  return out;
}

Result<std::vector<StrategyResult>> RunStrategies(
    const data::Dataset& dataset, const std::vector<StrategyKind>& strategies,
    const ProtocolOptions& options) {
  std::vector<StrategyResult> results;
  results.reserve(strategies.size());
  for (StrategyKind kind : strategies) {
    EASEML_ASSIGN_OR_RETURN(StrategyResult r,
                            RunProtocol(dataset, kind, options));
    results.push_back(std::move(r));
  }
  return results;
}

}  // namespace easeml::core
