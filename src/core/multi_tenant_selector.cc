#include "core/multi_tenant_selector.h"

#include <cmath>
#include <cstring>
#include <limits>
#include <string_view>

#include "bandit/gp_ucb.h"
#include "common/clock.h"
#include "common/logging.h"
#include "common/thread_annotations.h"
#include "scheduler/fcfs.h"
#include "scheduler/greedy.h"
#include "scheduler/hybrid.h"
#include "scheduler/random_scheduler.h"
#include "scheduler/round_robin.h"

namespace easeml::core {

std::string SchedulerKindName(SchedulerKind kind) {
  switch (kind) {
    case SchedulerKind::kHybrid:
      return "hybrid";
    case SchedulerKind::kGreedy:
      return "greedy";
    case SchedulerKind::kRoundRobin:
      return "round-robin";
    case SchedulerKind::kRandom:
      return "random";
    case SchedulerKind::kFcfs:
      return "fcfs";
  }
  return "unknown";
}

std::unique_ptr<scheduler::SchedulerPolicy> MakeSchedulerPolicy(
    const SelectorOptions& options) {
  switch (options.scheduler) {
    case SchedulerKind::kHybrid:
      return std::make_unique<scheduler::HybridScheduler>(
          options.hybrid_patience);
    case SchedulerKind::kGreedy:
      return std::make_unique<scheduler::GreedyScheduler>();
    case SchedulerKind::kRoundRobin:
      return std::make_unique<scheduler::RoundRobinScheduler>();
    case SchedulerKind::kRandom:
      return std::make_unique<scheduler::RandomScheduler>(options.seed);
    case SchedulerKind::kFcfs:
      return std::make_unique<scheduler::FcfsScheduler>();
  }
  return nullptr;
}

Result<MultiTenantSelector> MultiTenantSelector::Create(
    const SelectorOptions& options) {
  if (options.delta <= 0.0 || options.delta >= 1.0) {
    return Status::InvalidArgument("Selector: delta must be in (0, 1)");
  }
  if (options.hybrid_patience <= 0) {
    return Status::InvalidArgument("Selector: hybrid_patience must be > 0");
  }
  if (options.num_devices < 1) {
    return Status::InvalidArgument("Selector: num_devices must be >= 1");
  }
  if (options.num_shards < 1) {
    return Status::InvalidArgument("Selector: num_shards must be >= 1");
  }
  auto sched = MakeSchedulerPolicy(options);
  if (sched == nullptr) {
    return Status::InvalidArgument("Selector: unknown scheduler kind");
  }
  MultiTenantSelector selector(options, std::move(sched));
  if (options.use_candidate_index) {
    // The base engine is the 1-shard engine; the sharded engine swaps in
    // an N-shard index (ResetIndex) before any tenant exists.
    selector.ResetIndex(1);
  }
  return selector;
}

void MultiTenantSelector::ResetIndex(int num_shards) {
  // Only GREEDY (and HYBRID's greedy phase) read bounds/gaps; the other
  // schedulers' keys skip the O(K) UcbGap derivation per event.
  const bool track_gap = options_.scheduler == SchedulerKind::kGreedy ||
                         options_.scheduler == SchedulerKind::kHybrid;
  index_ =
      std::make_unique<scheduler::CandidateIndex>(num_shards, track_gap);
}

void MultiTenantSelector::RefreshIndexEntry(int tenant) {
  if (index_ == nullptr) return;
  index_->Refresh(users_[tenant]);
}

Status MultiTenantSelector::ValidateIndex() const {
  if (index_ == nullptr) return Status::OK();
  return index_->Validate(users_);
}

Status MultiTenantSelector::NoDispatchableWorkStatus() const {
  return in_flight_.empty()
             ? Status::FailedPrecondition("Next: all tenants exhausted")
             : Status::FailedPrecondition(
                   "Next: every remaining model is in flight; report a "
                   "completion first");
}

Status MultiTenantSelector::WalGuard() const {
  if (options_.wal == nullptr || wal_status_.ok()) return Status::OK();
  return Status::FailedPrecondition(
      "selector: a write-ahead log append failed (" + wal_status_.ToString() +
      "); the selector is fail-stopped — recover a fresh engine from the log");
}

Status MultiTenantSelector::WalApply(Status status) {
  if (!status.ok() && wal_status_.ok()) wal_status_ = status;
  return status;
}

Status MultiTenantSelector::SyncWal() {
  // A deferred log's Sync is a no-op by construction (acks ride batched
  // flushes inside Log*), so skip the call on the serving path.
  if (options_.wal == nullptr || options_.wal->SyncIsDeferred()) {
    return Status::OK();
  }
  return WalApply(options_.wal->Sync());
}

Result<int> MultiTenantSelector::AddTenantWithBelief(
    std::unique_ptr<gp::ArmBelief> belief, std::vector<double> costs) {
  bandit::GpUcbOptions ucb;
  ucb.delta = options_.delta;
  ucb.cost_aware = options_.cost_aware;
  if (options_.cost_aware) ucb.costs = costs;
  EASEML_ASSIGN_OR_RETURN(
      std::unique_ptr<bandit::GpUcbPolicy> policy,
      bandit::GpUcbPolicy::CreateUnique(std::move(belief), std::move(ucb)));
  const int id = static_cast<int>(users_.size());
  EASEML_ASSIGN_OR_RETURN(
      scheduler::UserState state,
      scheduler::UserState::Create(id, std::move(policy), std::move(costs)));
  // One device slot per tenant per device: a tenant may occupy several
  // devices at once, but never with the same model (per-arm in-flight mask).
  EASEML_RETURN_NOT_OK(state.set_max_in_flight(options_.num_devices));
  users_.push_back(std::move(state));
  best_model_.push_back(-1);
  OnTenantAdded(id);
  return id;
}

void MultiTenantSelector::OnTenantAdded(int tenant) {
  // New ids are globally maximal, so the 1-shard index extends at the tail
  // in O(log T) — never a rebuild on the add path.
  if (index_ != nullptr) index_->AppendTenant(0, users_[tenant]);
  if (options_.observer != nullptr) {
    options_.observer->OnTenantPlaced(tenant, 0);
    NotifyTenantEvent(tenant);
  }
}

TenantObservation MultiTenantSelector::DeriveObservation(int tenant) const {
  constexpr double kNegInf = -std::numeric_limits<double>::infinity();
  const scheduler::UserState& u = users_[tenant];
  TenantObservation o;
  o.tenant = tenant;
  o.retired = u.retired();
  o.rounds_served = u.rounds_served();
  o.num_models = u.num_models();
  o.best_model = best_model_[tenant];
  o.best_reward = u.best_reward();
  o.bound = kNegInf;
  o.gap = kNegInf;
  o.max_ucb = kNegInf;
  if (o.retired) return o;  // belief released: no policy reads below
  o.in_flight = u.in_flight_count();
  o.consumed_cost = u.consumed_cost();
  o.uninitialized = u.NeedsInitialObservation();
  o.schedulable = u.Schedulable();
  if (!o.schedulable) return o;
  o.bound = u.empirical_bound();
  // Same derivation discipline as `scheduler::MakeTenantKey`: reuse the
  // just-refreshed index key when the index tracks gaps (free), otherwise
  // pay the O(K) batched MaxUcb diagnostics read once per tenant event.
  if (index_ != nullptr && index_->track_gap()) {
    o.gap = index_->Key(tenant).gap;
  } else if (u.policy().HasConfidenceBounds()) {
    o.gap = u.UcbGap();
  }
  if (o.gap > kNegInf) o.max_ucb = o.best_reward + o.gap;
  return o;
}

void MultiTenantSelector::NotifyTenantEvent(int tenant) {
  SelectorObserver* obs = options_.observer;
  if (obs == nullptr) return;
  obs->OnTenantEvent(DeriveObservation(tenant));
}

Result<int> MultiTenantSelector::AddTenant(
    std::shared_ptr<const gp::SharedGpPrior> prior,
    std::vector<double> costs) {
  EASEML_RETURN_NOT_OK(WalGuard());
  // Keep log copies before the belief consumes the prior handle: the
  // append carries the prior (for identity-deduplicated registration) and
  // the costs of the tenant it registers.
  std::shared_ptr<const gp::SharedGpPrior> prior_for_log;
  std::vector<double> costs_for_log;
  if (options_.wal != nullptr) {
    prior_for_log = prior;
    costs_for_log = costs;
  }
  EASEML_ASSIGN_OR_RETURN(std::unique_ptr<gp::SharedPriorGp> belief,
                          gp::SharedPriorGp::CreateUnique(std::move(prior)));
  EASEML_ASSIGN_OR_RETURN(
      const int id, AddTenantWithBelief(std::move(belief), std::move(costs)));
  if (options_.wal != nullptr) {
    EASEML_RETURN_NOT_OK(WalApply(
        options_.wal->LogAddTenant(id, prior_for_log, costs_for_log)));
    EASEML_RETURN_NOT_OK(SyncWal());
  }
  return id;
}

Result<int> MultiTenantSelector::AddTenant(gp::DiscreteArmGp belief,
                                           std::vector<double> costs) {
  if (options_.wal != nullptr) {
    return Status::Unimplemented(
        "AddTenant: the durable selector requires the shared-prior belief "
        "representation (dense per-tenant beliefs are not serializable; "
        "register via a SharedGpPrior)");
  }
  return AddTenantWithBelief(
      std::make_unique<gp::DiscreteArmGp>(std::move(belief)),
      std::move(costs));
}

namespace {

/// Process-wide default-prior cache, one prior per (K, noise variance).
/// Mutex-guarded because concurrent shard setup reaches it; weak_ptr
/// entries let a prior die with its last tenant instead of pinning the
/// Gram matrix forever. The mutex lives in the same struct as the map it
/// guards so the guarded-by relation is expressible (and compile-checked)
/// instead of being a comment between two function-local statics.
using DefaultPriorCache =
    std::map<std::pair<int, double>, std::weak_ptr<const gp::SharedGpPrior>>;

struct DefaultPriorCacheState {
  Mutex mu;
  DefaultPriorCache cache EASEML_GUARDED_BY(mu);
};

/// Leaked intentionally: worker threads may still touch the cache during
/// static destruction.
DefaultPriorCacheState& GetDefaultPriorCacheState() {
  static auto* state = new DefaultPriorCacheState;
  return *state;
}

/// Erases every dead weak_ptr. Called under the cache mutex on EVERY
/// lookup/insert — not only on misses — so a long-lived service whose
/// tenant churn retires (K, noise) shapes never accumulates dead entries
/// while serving cache hits for the shapes that stay live. O(live + dead)
/// per call against a map bounded by the distinct shapes in use.
void PruneExpiredDefaultPriors(DefaultPriorCacheState& state)
    EASEML_REQUIRES(state.mu) {
  for (auto it = state.cache.begin(); it != state.cache.end();) {
    if (it->second.expired()) {
      it = state.cache.erase(it);
    } else {
      ++it;
    }
  }
}

}  // namespace

int DefaultPriorCacheSizeForTesting() {
  // Deliberately does NOT prune: the regression test observes that the
  // serving path's lookups do.
  DefaultPriorCacheState& state = GetDefaultPriorCacheState();
  MutexLock lock(state.mu);
  return static_cast<int>(state.cache.size());
}

Result<int> MultiTenantSelector::AddTenantWithDefaultPrior(
    int num_models, std::vector<double> costs, double noise_variance) {
  if (num_models <= 0) {
    return Status::InvalidArgument("AddTenant: num_models must be > 0");
  }
  // Validate before touching the cache: a NaN key would break the map's
  // ordering invariant.
  if (!(noise_variance > 0.0)) {
    return Status::InvalidArgument("AddTenant: noise variance must be > 0");
  }
  std::shared_ptr<const gp::SharedGpPrior> prior;
  {
    DefaultPriorCacheState& state = GetDefaultPriorCacheState();
    MutexLock lock(state.mu);
    PruneExpiredDefaultPriors(state);
    std::weak_ptr<const gp::SharedGpPrior>& slot =
        state.cache[{num_models, noise_variance}];
    prior = slot.lock();
    if (prior == nullptr) {
      EASEML_ASSIGN_OR_RETURN(
          prior, gp::MakeSharedGpPrior(linalg::Matrix::Identity(num_models),
                                       noise_variance));
      state.cache[{num_models, noise_variance}] = prior;
    }
  }
  // Qualified call: the engine's public override already holds its lock
  // when it reaches this base implementation.
  return MultiTenantSelector::AddTenant(std::move(prior), std::move(costs));
}

Status MultiTenantSelector::RemoveTenant(int tenant) {
  EASEML_RETURN_NOT_OK(WalGuard());
  EASEML_RETURN_NOT_OK(ValidateTenant(tenant));
  scheduler::UserState& user = users_[tenant];
  if (user.retired()) {
    return Status::FailedPrecondition("RemoveTenant: tenant " +
                                      std::to_string(tenant) +
                                      " was already removed");
  }
  if (user.has_pending()) {
    return Status::FailedPrecondition(
        "RemoveTenant: tenant " + std::to_string(tenant) + " has " +
        std::to_string(user.in_flight_count()) +
        " in-flight ticket(s); Report or Cancel them first");
  }
  user.Retire();
  // Neutralize the leaf before the placement hook: the base engine keeps
  // retired ids placed (neutral), the sharded engine unmaps + resyncs.
  RefreshIndexEntry(tenant);
  // The retirement event fires while the tenant is still placed; the
  // sharded placement hook below then drops it from the observer's map.
  NotifyTenantEvent(tenant);
  OnTenantRemoved(tenant);
  if (options_.wal != nullptr) {
    EASEML_RETURN_NOT_OK(WalApply(options_.wal->LogRemoveTenant(tenant)));
    EASEML_RETURN_NOT_OK(SyncWal());
  }
  return Status::OK();
}

bool MultiTenantSelector::Exhausted() const {
  if (users_.empty()) return true;
  for (const auto& u : users_) {
    if (!u.Exhausted()) return false;
  }
  return true;
}

bool MultiTenantSelector::HasDispatchableWork() const {
  if (static_cast<int>(in_flight_.size()) >= options_.num_devices) {
    return false;
  }
  // The index maintains the answer as an O(1)-per-shard root read; the
  // async service consults this before every dispatch, so without it the
  // "no scan" serving path would regress to O(T) right here.
  if (index_ != nullptr) return index_->AnySchedulable();
  for (const auto& u : users_) {
    if (u.Schedulable()) return true;
  }
  return false;
}

Result<int> MultiTenantSelector::PickTenant(int round) {
  if (index_ != nullptr) {
    // Index-backed pick: the init sweep and the any-work test are O(1)
    // root reads (exact min/or merges — the same reductions the scans
    // fold), then the policy answers from the tournament summaries.
    const int first_uninitialized = index_->MinUninitialized();
    if (first_uninitialized != scheduler::CandidateIndex::kNone) {
      return first_uninitialized;
    }
    if (!index_->AnySchedulable()) return NoDispatchableWorkStatus();
    return scheduler_->PickUserIndexed(users_, round, *index_);
  }
  // Initialization sweep (Algorithm 2 lines 1-4): any tenant without an
  // observation is served first, in registration order. A tenant whose
  // first run is still in flight is already charged — skip it, or the
  // sweep would hand its second model out before the first observation.
  for (const auto& u : users_) {
    if (u.NeedsInitialObservation()) {
      return u.user_id();
    }
  }
  bool any_schedulable = false;
  for (const auto& u : users_) {
    if (u.Schedulable()) {
      any_schedulable = true;
      break;
    }
  }
  if (!any_schedulable) return NoDispatchableWorkStatus();
  return scheduler_->PickUser(users_, round);
}

Result<int> MultiTenantSelector::SelectArmFor(int tenant) {
  Result<int> arm = users_[tenant].SelectArm();
  RefreshIndexEntry(tenant);  // in-flight mask changed: key is stale
  NotifyTenantEvent(tenant);
  return arm;
}

Status MultiTenantSelector::RecordOutcomeFor(int tenant, int model,
                                             double reward) {
  const Status status = users_[tenant].RecordOutcome(model, reward);
  RefreshIndexEntry(tenant);  // belief, sigma~ and mask changed
  return status;
}

Status MultiTenantSelector::CancelSelectionFor(int tenant, int model) {
  const Status status = users_[tenant].CancelSelection(model);
  RefreshIndexEntry(tenant);  // the arm became selectable again
  return status;
}

Result<MultiTenantSelector::Assignment> MultiTenantSelector::Next() {
  EASEML_RETURN_NOT_OK(WalGuard());
  if (users_.empty()) {
    return Status::FailedPrecondition("Next: no tenants registered");
  }
  if (static_cast<int>(in_flight_.size()) >= options_.num_devices) {
    return Status::FailedPrecondition(
        "Next: all " + std::to_string(options_.num_devices) +
        " device slots are occupied; report a completion first");
  }
  // Timed only when observed: the unobserved serving path reads no clocks.
  SelectorObserver* obs = options_.observer;
  double t0 = 0.0;
  if (obs != nullptr) t0 = ThreadCpuSeconds();
  Result<int> picked = PickTenant(round_ + 1);
  double t1 = 0.0;
  if (obs != nullptr) t1 = ThreadCpuSeconds();
  if (!picked.ok()) {
    if (obs != nullptr) obs->OnNext(false, (t1 - t0) * 1e6, 0.0);
    return picked.status();
  }
  const int tenant = *picked;
  Result<int> selected = SelectArmFor(tenant);
  if (obs != nullptr) {
    const double t2 = ThreadCpuSeconds();
    obs->OnNext(selected.ok(), (t1 - t0) * 1e6, (t2 - t1) * 1e6);
  }
  if (!selected.ok()) return selected.status();
  const int model = *selected;
  Assignment assignment;
  assignment.tenant = tenant;
  assignment.model = model;
  assignment.id = next_ticket_++;
  in_flight_.emplace(assignment.id, assignment);
  if (options_.wal != nullptr) {
    // Appended, deliberately NOT synced: a ticket promises work, not
    // durability. A later synced Report makes this record durable with it
    // (log-prefix property); a crash first loses the ticket cleanly and
    // its Report answers NotFound after recovery.
    EASEML_RETURN_NOT_OK(WalApply(
        options_.wal->LogNext(assignment.tenant, assignment.model,
                              assignment.id)));
  }
  return assignment;
}

Result<std::map<int64_t, MultiTenantSelector::Assignment>::iterator>
MultiTenantSelector::FindIssuedEntry(const Assignment& assignment) {
  // Taxonomy order matters: a never-issued id is NotFound even when the
  // in-flight table is empty; only an issued-then-closed ticket is the
  // FailedPrecondition (stale/duplicate) case.
  if (assignment.id < 0 || assignment.id >= next_ticket_) {
    return Status::NotFound("Report: unknown assignment id " +
                            std::to_string(assignment.id));
  }
  auto it = in_flight_.find(assignment.id);
  if (it == in_flight_.end()) {
    return Status::FailedPrecondition(
        "Report: assignment " + std::to_string(assignment.id) +
        " was already reported (stale or duplicate completion)");
  }
  // Validate against the ISSUED entry, not the caller's struct by value: a
  // forged (tenant, model) under a live ticket must not touch belief state.
  const Assignment& issued = it->second;
  if (assignment.tenant != issued.tenant || assignment.model != issued.model) {
    return Status::InvalidArgument(
        "Report: assignment does not match the issued in-flight entry "
        "(ticket " + std::to_string(assignment.id) + " was issued for tenant " +
        std::to_string(issued.tenant) + ", model " +
        std::to_string(issued.model) + ")");
  }
  return it;
}

Result<MultiTenantSelector::Assignment> MultiTenantSelector::BeginReport(
    const Assignment& assignment, double accuracy) {
  EASEML_RETURN_NOT_OK(WalGuard());
  EASEML_ASSIGN_OR_RETURN(auto it, FindIssuedEntry(assignment));
  if (!std::isfinite(accuracy)) {
    return Status::InvalidArgument("Report: accuracy must be finite");
  }
  const Assignment issued = it->second;
  // Retiring the ticket here (before the fold) pins the duplicate-report
  // taxonomy for asynchronous engines: the moment Report returns, a replay
  // of the same ticket is FailedPrecondition even if the fold is still
  // queued on the owning shard.
  in_flight_.erase(it);
  if (options_.wal != nullptr) {
    // Appended inside the coordinator phase so log order = validation
    // order even when folds run on shard workers; the engine syncs before
    // acknowledging the Report.
    EASEML_RETURN_NOT_OK(WalApply(options_.wal->LogReport(
        issued.id, issued.tenant, issued.model, accuracy)));
  }
  return issued;
}

void MultiTenantSelector::FoldReportedOutcome(const Assignment& issued,
                                              double accuracy) {
  const double before = users_[issued.tenant].best_reward();
  const Status folded =
      RecordOutcomeFor(issued.tenant, issued.model, accuracy);
  EASEML_CHECK(folded.ok()) << "Report: fold of validated ticket "
                            << issued.id
                            << " rejected: " << folded.ToString();
  if (accuracy > before || best_model_[issued.tenant] < 0) {
    best_model_[issued.tenant] = issued.model;
  }
  // After the best-model update, so the observation carries the incumbent
  // this fold produced (RecordOutcomeFor already refreshed the index leaf).
  NotifyTenantEvent(issued.tenant);
}

void MultiTenantSelector::FinishReport(int tenant) {
  scheduler_->OnOutcome(users_, tenant);
  ++round_;
}

Status MultiTenantSelector::Report(const Assignment& assignment,
                                   double accuracy) {
  SelectorObserver* obs = options_.observer;
  if (obs == nullptr) {
    EASEML_ASSIGN_OR_RETURN(const Assignment issued,
                            BeginReport(assignment, accuracy));
    FoldReportedOutcome(issued, accuracy);
    FinishReport(issued.tenant);
    return SyncWal();
  }
  // Observed path: identical calls, plus the coordinator/fold timing split
  // (the base engine folds inline, so the split is derived from one pass).
  const double t0 = ThreadCpuSeconds();
  Result<Assignment> issued = BeginReport(assignment, accuracy);
  if (!issued.ok()) {
    obs->OnTicketRejected(static_cast<int>(issued.status().code()));
    return issued.status();
  }
  const double t1 = ThreadCpuSeconds();
  obs->OnFoldQueued(0);  // inline fold: queued and executed back-to-back
  FoldReportedOutcome(*issued, accuracy);
  const double t2 = ThreadCpuSeconds();
  FinishReport(issued->tenant);
  const double t3 = ThreadCpuSeconds();
  obs->OnFold(0, (t2 - t1) * 1e6);
  obs->OnReport(((t1 - t0) + (t3 - t2)) * 1e6);
  return SyncWal();
}

Result<MultiTenantSelector::Assignment> MultiTenantSelector::BeginCancel(
    const Assignment& assignment) {
  EASEML_RETURN_NOT_OK(WalGuard());
  EASEML_ASSIGN_OR_RETURN(auto it, FindIssuedEntry(assignment));
  const Assignment issued = it->second;
  in_flight_.erase(it);
  if (options_.wal != nullptr) {
    EASEML_RETURN_NOT_OK(WalApply(options_.wal->LogCancel(
        issued.id, issued.tenant, issued.model)));
  }
  return issued;
}

void MultiTenantSelector::FoldCancel(const Assignment& issued) {
  const Status cancelled = CancelSelectionFor(issued.tenant, issued.model);
  EASEML_CHECK(cancelled.ok()) << "Cancel: fold of validated ticket "
                               << issued.id
                               << " rejected: " << cancelled.ToString();
  NotifyTenantEvent(issued.tenant);
}

Status MultiTenantSelector::Cancel(const Assignment& assignment) {
  Result<Assignment> issued = BeginCancel(assignment);
  if (!issued.ok()) {
    if (options_.observer != nullptr) {
      options_.observer->OnTicketRejected(
          static_cast<int>(issued.status().code()));
    }
    return issued.status();
  }
  FoldCancel(*issued);
  return SyncWal();
}

Result<MultiTenantSelector::Assignment> MultiTenantSelector::InFlightAssignment(
    int64_t ticket) const {
  const auto it = in_flight_.find(ticket);
  if (it == in_flight_.end()) {
    return Status::NotFound("InFlightAssignment: ticket " +
                            std::to_string(ticket) + " is not outstanding");
  }
  return it->second;
}

Status MultiTenantSelector::ValidateTenant(int tenant) const {
  if (tenant < 0 || tenant >= static_cast<int>(users_.size())) {
    return Status::OutOfRange("tenant id out of range");
  }
  return Status::OK();
}

Result<int> MultiTenantSelector::BestModel(int tenant) const {
  EASEML_RETURN_NOT_OK(ValidateTenant(tenant));
  if (best_model_[tenant] < 0) {
    return Status::NotFound("no model trained yet for tenant " +
                            std::to_string(tenant));
  }
  return best_model_[tenant];
}

Result<double> MultiTenantSelector::BestAccuracy(int tenant) const {
  EASEML_RETURN_NOT_OK(ValidateTenant(tenant));
  return users_[tenant].best_reward();
}

Result<int> MultiTenantSelector::RoundsServed(int tenant) const {
  EASEML_RETURN_NOT_OK(ValidateTenant(tenant));
  return users_[tenant].rounds_served();
}

namespace {

/// Rebuilds a tenant's shared-prior belief by replaying its observation
/// history (Cholesky::Append is deterministic, so the replayed factor is
/// bit-identical to the one at capture time) and verifies it bit-for-bit
/// against the stored factor — corruption that survived the framing CRC
/// cannot silently skew a posterior.
Result<std::unique_ptr<gp::SharedPriorGp>> RebuildBelief(
    const DurableBelief& d,
    const std::shared_ptr<const gp::SharedGpPrior>& prior) {
  EASEML_ASSIGN_OR_RETURN(std::unique_ptr<gp::SharedPriorGp> belief,
                          gp::SharedPriorGp::CreateUnique(prior));
  // Prime the marginal caches at t = 0 BEFORE replaying the history. A
  // live engine always queries at selection time before it observes, so
  // its caches only ever advance along the incremental forward-
  // substitution path; the batched from-scratch rebuild is a different
  // floating-point path (agrees to ~1e-9, not bitwise). Building the
  // empty summary now forces every later query onto the incremental path,
  // making the restored belief's future UCBs bit-identical to an engine
  // that never restored.
  (void)belief->AllMarginals();
  if (d.arms.size() != d.rewards.size()) {
    return Status::DataLoss(
        "restore: belief history arms/rewards length mismatch");
  }
  const int k = prior->num_arms();
  for (size_t i = 0; i < d.arms.size(); ++i) {
    if (d.arms[i] < 0 || d.arms[i] >= k) {
      return Status::DataLoss("restore: belief history arm out of range");
    }
    EASEML_RETURN_NOT_OK(belief->Observe(d.arms[i], d.rewards[i]));
  }
  const linalg::Cholesky& chol = belief->factor();
  const int t = chol.dim();
  if (d.chol.size() != static_cast<size_t>(t) * (t + 1) / 2) {
    return Status::DataLoss(
        "restore: stored Cholesky factor does not match the history length");
  }
  size_t idx = 0;
  for (int i = 0; i < t; ++i) {
    for (int j = 0; j <= i; ++j, ++idx) {
      const double replayed = chol.At(i, j);
      if (std::memcmp(&replayed, &d.chol[idx], sizeof(double)) != 0) {
        return Status::DataLoss(
            "restore: replayed Cholesky factor disagrees with the stored "
            "one at L(" + std::to_string(i) + ", " + std::to_string(j) +
            ") — the belief history is corrupt");
      }
    }
  }
  return belief;
}

}  // namespace

Result<DurableSelectorState> MultiTenantSelector::CaptureDurableState() const {
  DurableSelectorState state;
  // Priors deduplicate by CONTENT (bit-exact num_arms/noise/mean/Gram), not
  // object identity: a recovered engine holds checkpoint-restored and
  // replay-registered copies of the same prior as distinct objects, and its
  // capture must still encode byte-identically to a never-crashed engine.
  // The pointer map is only a cache in front of the content key.
  const auto prior_content_key = [](const gp::SharedGpPrior& p) {
    std::string key;
    const int32_t arms = p.num_arms();
    key.append(reinterpret_cast<const char*>(&arms), sizeof(arms));
    key.append(reinterpret_cast<const char*>(&p.noise_variance),
               sizeof(double));
    key.append(reinterpret_cast<const char*>(p.mean.data()),
               p.mean.size() * sizeof(double));
    const std::vector<double>& gram = p.gram.data();
    key.append(reinterpret_cast<const char*>(gram.data()),
               gram.size() * sizeof(double));
    return key;
  };
  std::map<const gp::SharedGpPrior*, int> prior_ids;
  std::map<std::string, int> prior_ids_by_content;
  state.tenants.reserve(users_.size());
  for (const scheduler::UserState& u : users_) {
    DurableTenant t;
    t.user = u.CaptureDurable();
    if (!u.retired()) {
      const auto* ucb = dynamic_cast<const bandit::GpUcbPolicy*>(&u.policy());
      const auto* belief =
          ucb == nullptr
              ? nullptr
              : dynamic_cast<const gp::SharedPriorGp*>(&ucb->belief());
      if (belief == nullptr) {
        return Status::Unimplemented(
            "CaptureDurableState: tenant " + std::to_string(u.user_id()) +
            " does not run the shared-prior GP-UCB belief; only that "
            "representation is serializable");
      }
      const std::shared_ptr<const gp::SharedGpPrior>& prior = belief->prior();
      const auto ptr_it = prior_ids.find(prior.get());
      int prior_id;
      if (ptr_it != prior_ids.end()) {
        prior_id = ptr_it->second;
      } else {
        const auto [it, inserted] = prior_ids_by_content.emplace(
            prior_content_key(*prior), static_cast<int>(state.priors.size()));
        if (inserted) {
          DurablePrior p;
          p.num_arms = prior->num_arms();
          p.noise_variance = prior->noise_variance;
          p.mean = prior->mean;
          p.gram = prior->gram.data();
          state.priors.push_back(std::move(p));
        }
        prior_id = it->second;
        prior_ids.emplace(prior.get(), prior_id);
      }
      t.belief.prior_id = prior_id;
      t.belief.arms = belief->observed_arms();
      t.belief.rewards = belief->observed_rewards();
      const linalg::Cholesky& chol = belief->factor();
      const int dim = chol.dim();
      t.belief.chol.reserve(static_cast<size_t>(dim) * (dim + 1) / 2);
      for (int i = 0; i < dim; ++i) {
        for (int j = 0; j <= i; ++j) t.belief.chol.push_back(chol.At(i, j));
      }
    }
    state.tenants.push_back(std::move(t));
  }
  state.best_model = best_model_;
  state.in_flight.reserve(in_flight_.size());
  for (const auto& [id, a] : in_flight_) {  // std::map: ascending ids
    DurableSelectorState::Ticket ticket;
    ticket.id = id;
    ticket.tenant = a.tenant;
    ticket.model = a.model;
    state.in_flight.push_back(ticket);
  }
  state.next_ticket = next_ticket_;
  state.round = round_;
  scheduler_->SaveDurable(&state.scheduler_state);
  if (options_.wal != nullptr) {
    const DurabilityLog::Position pos = options_.wal->position();
    state.wal_epoch = pos.epoch;
    state.wal_offset = pos.offset;
  }
  return state;
}

Status MultiTenantSelector::RestoreDurableState(
    const DurableSelectorState& state) {
  if (!users_.empty() || !in_flight_.empty() || next_ticket_ != 0 ||
      round_ != 0) {
    return Status::FailedPrecondition(
        "RestoreDurableState: the engine already has state; restore into a "
        "freshly created selector");
  }
  if (state.best_model.size() != state.tenants.size()) {
    return Status::DataLoss("restore: best_model/tenants length mismatch");
  }
  if (state.next_ticket < 0 || state.round < 0) {
    return Status::DataLoss("restore: negative ticket/round counter");
  }
  // Rebuild the shared priors — each Gram matrix allocated once and shared,
  // as at registration time.
  std::vector<std::shared_ptr<const gp::SharedGpPrior>> priors;
  priors.reserve(state.priors.size());
  for (const DurablePrior& p : state.priors) {
    EASEML_ASSIGN_OR_RETURN(
        linalg::Matrix gram,
        linalg::Matrix::FromRowMajor(p.num_arms, p.num_arms, p.gram));
    EASEML_ASSIGN_OR_RETURN(
        std::shared_ptr<const gp::SharedGpPrior> prior,
        gp::MakeSharedGpPrior(std::move(gram), p.noise_variance, p.mean));
    priors.push_back(std::move(prior));
  }
  users_.reserve(state.tenants.size());
  best_model_.reserve(state.tenants.size());
  for (size_t i = 0; i < state.tenants.size(); ++i) {
    const DurableTenant& t = state.tenants[i];
    if (t.user.user_id != static_cast<int>(i)) {
      return Status::DataLoss("restore: tenant ids must be dense, in order");
    }
    const int k = static_cast<int>(t.user.costs.size());
    if (state.best_model[i] < -1 || state.best_model[i] >= k) {
      return Status::DataLoss("restore: best model out of range");
    }
    std::unique_ptr<bandit::BanditPolicy> policy;
    if (!t.user.retired) {
      if (t.belief.prior_id < 0 ||
          t.belief.prior_id >= static_cast<int>(priors.size())) {
        return Status::DataLoss("restore: tenant prior id out of range");
      }
      EASEML_ASSIGN_OR_RETURN(
          std::unique_ptr<gp::SharedPriorGp> belief,
          RebuildBelief(t.belief, priors[t.belief.prior_id]));
      // Identical policy construction to AddTenantWithBelief, so the
      // restored tenant's UCB index is bit-identical to the captured one.
      bandit::GpUcbOptions ucb;
      ucb.delta = options_.delta;
      ucb.cost_aware = options_.cost_aware;
      if (options_.cost_aware) ucb.costs = t.user.costs;
      EASEML_ASSIGN_OR_RETURN(
          std::unique_ptr<bandit::GpUcbPolicy> gp_ucb,
          bandit::GpUcbPolicy::CreateUnique(std::move(belief),
                                            std::move(ucb)));
      policy = std::move(gp_ucb);
    } else if (t.belief.prior_id != -1 || !t.belief.arms.empty() ||
               !t.belief.rewards.empty() || !t.belief.chol.empty()) {
      return Status::DataLoss("restore: retired tenant carries belief state");
    }
    EASEML_ASSIGN_OR_RETURN(
        scheduler::UserState user,
        scheduler::UserState::FromDurable(t.user, std::move(policy)));
    const bool retired = user.retired();
    users_.push_back(std::move(user));
    best_model_.push_back(state.best_model[i]);
    OnTenantAdded(static_cast<int>(i));
    if (retired) {
      // Mirror RemoveTenant's index/placement sequence: the base engine
      // keeps the (neutral) leaf, the sharded engine unmaps the id.
      RefreshIndexEntry(static_cast<int>(i));
      OnTenantRemoved(static_cast<int>(i));
    }
  }
  int64_t prev_id = -1;
  for (const DurableSelectorState::Ticket& t : state.in_flight) {
    if (t.id <= prev_id || t.id >= state.next_ticket) {
      return Status::DataLoss(
          "restore: in-flight tickets must be strictly ascending and below "
          "next_ticket");
    }
    prev_id = t.id;
    if (t.tenant < 0 || t.tenant >= static_cast<int>(users_.size()) ||
        t.model < 0 || t.model >= users_[t.tenant].num_models()) {
      return Status::DataLoss(
          "restore: in-flight ticket references an unknown tenant or model");
    }
    if (!users_[t.tenant].InFlight(t.model)) {
      return Status::DataLoss(
          "restore: in-flight ticket for an arm the tenant has not charged");
    }
    Assignment a;
    a.tenant = t.tenant;
    a.model = t.model;
    a.id = t.id;
    in_flight_.emplace(a.id, a);
  }
  // Tickets and per-arm charges must agree 1:1 — a duplicate ticket for
  // the same arm passes the mask check above but fails the count here.
  std::vector<int> charged(users_.size(), 0);
  for (const auto& [id, a] : in_flight_) ++charged[a.tenant];
  for (size_t i = 0; i < users_.size(); ++i) {
    if (charged[i] != users_[i].in_flight_count()) {
      return Status::DataLoss(
          "restore: in-flight table disagrees with tenant charge counts");
    }
  }
  next_ticket_ = state.next_ticket;
  round_ = state.round;
  std::string_view sched = state.scheduler_state;
  EASEML_RETURN_NOT_OK(scheduler_->LoadDurable(&sched));
  if (!sched.empty()) {
    return Status::DataLoss(
        "restore: trailing bytes after the scheduler state blob");
  }
  return Status::OK();
}

}  // namespace easeml::core
