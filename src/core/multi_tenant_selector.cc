#include "core/multi_tenant_selector.h"

#include "bandit/gp_ucb.h"
#include "scheduler/fcfs.h"
#include "scheduler/greedy.h"
#include "scheduler/hybrid.h"
#include "scheduler/random_scheduler.h"
#include "scheduler/round_robin.h"

namespace easeml::core {

std::string SchedulerKindName(SchedulerKind kind) {
  switch (kind) {
    case SchedulerKind::kHybrid:
      return "hybrid";
    case SchedulerKind::kGreedy:
      return "greedy";
    case SchedulerKind::kRoundRobin:
      return "round-robin";
    case SchedulerKind::kRandom:
      return "random";
    case SchedulerKind::kFcfs:
      return "fcfs";
  }
  return "unknown";
}

namespace {
std::unique_ptr<scheduler::SchedulerPolicy> MakeScheduler(
    const SelectorOptions& options) {
  switch (options.scheduler) {
    case SchedulerKind::kHybrid:
      return std::make_unique<scheduler::HybridScheduler>(
          options.hybrid_patience);
    case SchedulerKind::kGreedy:
      return std::make_unique<scheduler::GreedyScheduler>();
    case SchedulerKind::kRoundRobin:
      return std::make_unique<scheduler::RoundRobinScheduler>();
    case SchedulerKind::kRandom:
      return std::make_unique<scheduler::RandomScheduler>(options.seed);
    case SchedulerKind::kFcfs:
      return std::make_unique<scheduler::FcfsScheduler>();
  }
  return nullptr;
}
}  // namespace

Result<MultiTenantSelector> MultiTenantSelector::Create(
    const SelectorOptions& options) {
  if (options.delta <= 0.0 || options.delta >= 1.0) {
    return Status::InvalidArgument("Selector: delta must be in (0, 1)");
  }
  if (options.hybrid_patience <= 0) {
    return Status::InvalidArgument("Selector: hybrid_patience must be > 0");
  }
  auto sched = MakeScheduler(options);
  if (sched == nullptr) {
    return Status::InvalidArgument("Selector: unknown scheduler kind");
  }
  return MultiTenantSelector(options, std::move(sched));
}

Result<int> MultiTenantSelector::AddTenantWithBelief(
    std::unique_ptr<gp::ArmBelief> belief, std::vector<double> costs) {
  bandit::GpUcbOptions ucb;
  ucb.delta = options_.delta;
  ucb.cost_aware = options_.cost_aware;
  if (options_.cost_aware) ucb.costs = costs;
  EASEML_ASSIGN_OR_RETURN(
      std::unique_ptr<bandit::GpUcbPolicy> policy,
      bandit::GpUcbPolicy::CreateUnique(std::move(belief), std::move(ucb)));
  const int id = num_tenants();
  EASEML_ASSIGN_OR_RETURN(
      scheduler::UserState state,
      scheduler::UserState::Create(id, std::move(policy), std::move(costs)));
  users_.push_back(std::move(state));
  best_model_.push_back(-1);
  return id;
}

Result<int> MultiTenantSelector::AddTenant(
    std::shared_ptr<const gp::SharedGpPrior> prior,
    std::vector<double> costs) {
  EASEML_ASSIGN_OR_RETURN(std::unique_ptr<gp::SharedPriorGp> belief,
                          gp::SharedPriorGp::CreateUnique(std::move(prior)));
  return AddTenantWithBelief(std::move(belief), std::move(costs));
}

Result<int> MultiTenantSelector::AddTenant(gp::DiscreteArmGp belief,
                                           std::vector<double> costs) {
  return AddTenantWithBelief(
      std::make_unique<gp::DiscreteArmGp>(std::move(belief)),
      std::move(costs));
}

Result<int> MultiTenantSelector::AddTenantWithDefaultPrior(
    int num_models, std::vector<double> costs, double noise_variance) {
  if (num_models <= 0) {
    return Status::InvalidArgument("AddTenant: num_models must be > 0");
  }
  // Validate before touching the cache: a NaN key would break the map's
  // ordering invariant.
  if (!(noise_variance > 0.0)) {
    return Status::InvalidArgument("AddTenant: noise variance must be > 0");
  }
  auto& prior = default_priors_[{num_models, noise_variance}];
  if (prior == nullptr) {
    EASEML_ASSIGN_OR_RETURN(
        prior, gp::MakeSharedGpPrior(linalg::Matrix::Identity(num_models),
                                     noise_variance));
  }
  return AddTenant(prior, std::move(costs));
}

bool MultiTenantSelector::Exhausted() const {
  if (users_.empty()) return true;
  for (const auto& u : users_) {
    if (!u.Exhausted()) return false;
  }
  return true;
}

Result<MultiTenantSelector::Assignment> MultiTenantSelector::Next() {
  if (has_pending_) {
    return Status::FailedPrecondition(
        "Next: previous assignment not reported");
  }
  if (users_.empty()) {
    return Status::FailedPrecondition("Next: no tenants registered");
  }
  int tenant = -1;
  // Initialization sweep (Algorithm 2 lines 1-4): any tenant without an
  // observation is served first, in registration order.
  for (const auto& u : users_) {
    if (!u.has_observations() && !u.Exhausted()) {
      tenant = u.user_id();
      break;
    }
  }
  if (tenant < 0) {
    EASEML_ASSIGN_OR_RETURN(tenant, scheduler_->PickUser(users_, round_ + 1));
  }
  EASEML_ASSIGN_OR_RETURN(int model, users_[tenant].SelectArm());
  pending_ = Assignment{tenant, model};
  has_pending_ = true;
  return pending_;
}

Status MultiTenantSelector::Report(const Assignment& assignment,
                                   double accuracy) {
  if (!has_pending_) {
    return Status::FailedPrecondition("Report: no outstanding assignment");
  }
  if (assignment.tenant != pending_.tenant ||
      assignment.model != pending_.model) {
    return Status::InvalidArgument(
        "Report: assignment does not match the outstanding one");
  }
  const double before = users_[assignment.tenant].best_reward();
  EASEML_RETURN_NOT_OK(
      users_[assignment.tenant].RecordOutcome(assignment.model, accuracy));
  if (accuracy > before || best_model_[assignment.tenant] < 0) {
    best_model_[assignment.tenant] = assignment.model;
  }
  scheduler_->OnOutcome(users_, assignment.tenant);
  has_pending_ = false;
  ++round_;
  return Status::OK();
}

Status MultiTenantSelector::ValidateTenant(int tenant) const {
  if (tenant < 0 || tenant >= num_tenants()) {
    return Status::OutOfRange("tenant id out of range");
  }
  return Status::OK();
}

Result<int> MultiTenantSelector::BestModel(int tenant) const {
  EASEML_RETURN_NOT_OK(ValidateTenant(tenant));
  if (best_model_[tenant] < 0) {
    return Status::NotFound("no model trained yet for tenant " +
                            std::to_string(tenant));
  }
  return best_model_[tenant];
}

Result<double> MultiTenantSelector::BestAccuracy(int tenant) const {
  EASEML_RETURN_NOT_OK(ValidateTenant(tenant));
  return users_[tenant].best_reward();
}

Result<int> MultiTenantSelector::RoundsServed(int tenant) const {
  EASEML_RETURN_NOT_OK(ValidateTenant(tenant));
  return users_[tenant].rounds_served();
}

}  // namespace easeml::core
