#ifndef EASEML_CORE_DURABILITY_LOG_H_
#define EASEML_CORE_DURABILITY_LOG_H_

#include <cstdint>
#include <memory>
#include <vector>

#include "common/status.h"

namespace easeml::gp {
struct SharedGpPrior;
}  // namespace easeml::gp

namespace easeml::core {

/// Write-ahead-log seam of the selector engines (the durability twin of
/// `SelectorObserver`): `SelectorOptions::wal` points at one of these, and
/// every successful state mutation appends exactly one record — AFTER the
/// engine applied it, under the engine's synchronization, so log order
/// equals validation order and replaying the log reproduces the engine
/// bit-identically. When the pointer is unset (the default) every hook
/// site is a single branch and the serving path is byte-for-byte the
/// undurable one.
///
/// Ack discipline: the engines call `Sync` before returning from the
/// mutations whose acknowledgement promises durability (AddTenant,
/// RemoveTenant, Report, Cancel). `Next` appends WITHOUT syncing — a
/// ticket is a promise of work, not of durability, and the log's
/// sequential-prefix property guarantees that any later synced Report of
/// that ticket makes the Next record durable with it. A crash can
/// therefore lose an unsynced ticket, and recovery answers its Report with
/// NotFound (the id was never issued by the replayed engine) — exactly the
/// taxonomy a never-issued ticket gets.
///
/// A failed append or sync is fatal for the selector: the engine latches
/// the error and refuses every further mutation (fail-stop), because its
/// in-memory state may now be ahead of what the log can ever replay.
class DurabilityLog {
 public:
  /// Log position: `epoch` counts appended records (each non-pad record
  /// advances it by exactly 1 — replay verifies contiguity), `offset` is
  /// the logical byte offset the next record would start at. Read under
  /// the engine's synchronization when embedded in a checkpoint, so a
  /// checkpoint names the exact log suffix replay must apply on top of it.
  struct Position {
    int64_t epoch = 0;
    int64_t offset = 0;
  };

  virtual ~DurabilityLog() = default;

  /// `prior` identity (pointer equality) keys prior deduplication: the
  /// first tenant of a prior appends a registration record carrying the
  /// full Gram/mean/noise; later tenants reference its id.
  virtual Status LogAddTenant(
      int tenant, const std::shared_ptr<const gp::SharedGpPrior>& prior,
      const std::vector<double>& costs) = 0;
  virtual Status LogRemoveTenant(int tenant) = 0;
  virtual Status LogNext(int tenant, int model, int64_t ticket) = 0;
  virtual Status LogReport(int64_t ticket, int tenant, int model,
                           double accuracy) = 0;
  virtual Status LogCancel(int64_t ticket, int tenant, int model) = 0;

  /// Makes every record appended so far durable before returning. Group
  /// commit: one sync covers all records appended since the previous one,
  /// and a sync whose records are already durable returns immediately.
  virtual Status Sync() = 0;

  /// True when `Sync` is a no-op by construction (a deferred/group-commit
  /// log whose acks ride batched flushes). The engines check this once per
  /// ack so the serving hot path skips the call entirely; implementations
  /// must answer from immutable configuration, not current buffer state.
  virtual bool SyncIsDeferred() const { return false; }

  virtual Position position() const = 0;
};

}  // namespace easeml::core

#endif  // EASEML_CORE_DURABILITY_LOG_H_
