#ifndef EASEML_CORE_SELECTOR_OBSERVER_H_
#define EASEML_CORE_SELECTOR_OBSERVER_H_

#include <cstdint>
#include <vector>

namespace easeml::core {

/// One tenant's published state at a fold boundary: everything a dashboard
/// or analytics scan wants to know about the tenant, derived from the same
/// sources as the candidate index's `TenantKey` (σ̃ bound, line-8 gap,
/// batched MaxUcb diagnostics) plus the serving-side bookkeeping the engine
/// already tracks. Plain data — snapshots of it are copied and published
/// wholesale, never pointed into engine state.
struct TenantObservation {
  int tenant = -1;
  bool retired = false;
  bool schedulable = false;
  bool uninitialized = false;  // awaiting its initialization-sweep round
  int rounds_served = 0;
  int in_flight = 0;    // tickets currently charged against the tenant
  int num_models = 0;   // candidate count K
  int best_model = -1;  // -1 until the first completed run
  double best_reward = 0.0;
  double consumed_cost = 0.0;
  /// σ̃ bound (the GREEDY threshold input); +inf before the first
  /// observation, -inf when not schedulable.
  double bound = 0.0;
  /// Line-8 gap MaxUcb − best_reward; -inf when unavailable (tenant not
  /// schedulable, or the policy exposes no confidence bounds).
  double gap = 0.0;
  /// Batched MaxUcb diagnostic; -inf when `gap` is -inf.
  double max_ucb = 0.0;
};

/// Engine-side observation seam. The selector engines (core and shard) call
/// these hooks from inside their own synchronization; implementations must
/// be cheap, must never call back into the selector, and must do their own
/// cross-thread synchronization for anything they publish (the obs layer's
/// `FleetObserver` is the canonical implementation).
///
/// Threading contract, inherited from the engines' fold discipline:
///  - `OnTenantEvent(obs)` fires on the thread that owns the tenant's shard
///    state at that moment — the shard worker for routed selections and
///    queued folds, the (quiesced) coordinator for churn. Events for
///    tenants on DIFFERENT shards may fire concurrently; events for one
///    shard never do. (The observer learns each tenant's shard from the
///    placement hooks, which always precede its events.)
///  - `OnTenantPlaced` / `OnPlacementChanged` fire only while the engine is
///    quiesced (coordinator lock held, fold queues drained), never
///    concurrently with any other hook.
///  - The timing/metrics hooks (`OnNext`, `OnReport`, `OnTicketRejected`,
///    `OnFoldQueued`, `OnFold`, `OnDrainWait`) may fire from the
///    coordinator and the shard workers concurrently.
///
/// Every hook has an empty default so implementations subscribe only to
/// what they consume. The engines skip all derivation work when
/// `SelectorOptions::observer` is null — the serving path is untouched
/// (and its traces bit-identical) with observation off.
class SelectorObserver {
 public:
  virtual ~SelectorObserver() = default;

  /// `tenant`'s state changed (selection, fold, cancel, retire): `obs` is
  /// its fresh summary.
  virtual void OnTenantEvent(const TenantObservation& obs) { (void)obs; }

  /// A new tenant appeared on `shard` (placement grows at the tail; no
  /// other tenant moved). Fired before the tenant's first OnTenantEvent.
  virtual void OnTenantPlaced(int tenant, int shard) {
    (void)tenant;
    (void)shard;
  }

  /// Churn rebalanced the shard map: `shard_tenants[s]` lists the live
  /// tenants of shard `s` in ascending id order.
  virtual void OnPlacementChanged(
      const std::vector<std::vector<int>>& shard_tenants) {
    (void)shard_tenants;
  }

  /// A `Next()` call finished its pick + arm-selection phases. `pick_us` is
  /// the tenant-pick (index descent / scan) thread-CPU cost, `arm_us` the
  /// arm-selection cost; `ok` is false when no assignment was handed out.
  virtual void OnNext(bool ok, double pick_us, double arm_us) {
    (void)ok;
    (void)pick_us;
    (void)arm_us;
  }

  /// A `Report()` coordinator phase finished successfully after
  /// `coord_us` thread-CPU microseconds (validation + ticket retirement +
  /// fold hand-off; excludes the fold itself on sharded engines).
  virtual void OnReport(double coord_us) { (void)coord_us; }

  /// A `Report()`/`Cancel()` ticket was rejected; `code` is the
  /// `StatusCode` of the precise rejection taxonomy (NotFound = unknown
  /// id, FailedPrecondition = stale/duplicate, InvalidArgument = forged
  /// entry or non-finite accuracy).
  virtual void OnTicketRejected(int code) { (void)code; }

  /// A belief fold was queued on `shard`'s report queue (sharded engine
  /// coordinator side).
  virtual void OnFoldQueued(int shard) { (void)shard; }

  /// A belief fold (report or cancel) ran on `shard`, costing `fold_us`
  /// thread-CPU microseconds on the owning worker.
  virtual void OnFold(int shard, double fold_us) {
    (void)shard;
    (void)fold_us;
  }

  /// A reader blocked `wait_us` wall-microseconds in `DrainQueues()`
  /// waiting for in-flight folds (queue-stall time on the serving path).
  virtual void OnDrainWait(double wait_us) { (void)wait_us; }
};

}  // namespace easeml::core

#endif  // EASEML_CORE_SELECTOR_OBSERVER_H_
