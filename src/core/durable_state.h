#ifndef EASEML_CORE_DURABLE_STATE_H_
#define EASEML_CORE_DURABLE_STATE_H_

#include <cstdint>
#include <string>
#include <vector>

#include "scheduler/user_state.h"

namespace easeml::core {

/// One shared GP prior, deduplicated by identity: tenants reference it by
/// index into `DurableSelectorState::priors`. Doubles round-trip as bit
/// patterns, so MakeSharedGpPrior over the decoded Gram reproduces every
/// posterior bit-identically.
struct DurablePrior {
  int num_arms = 0;
  double noise_variance = 0.0;
  std::vector<double> mean;  // length num_arms
  std::vector<double> gram;  // row-major num_arms x num_arms
};

/// A tenant's compact belief: the observation history (which replays
/// bit-identically through SharedPriorGp::Observe) plus the packed t x t
/// Cholesky factor as an integrity witness — recovery replays the history
/// and fails with DataLoss when the replayed factor's bits disagree.
/// Empty (prior_id == -1) for retired tenants, whose belief was released.
struct DurableBelief {
  int prior_id = -1;
  std::vector<int> arms;
  std::vector<double> rewards;
  std::vector<double> chol;  // packed lower triangle, row i at i*(i+1)/2
};

struct DurableTenant {
  scheduler::DurableUserState user;
  DurableBelief belief;
};

/// Complete serializable engine state, captured quiesced and restored into
/// a freshly created engine. "Complete" is load-bearing: the recovery
/// battery compares two engines by encoding this struct from each and
/// demanding equal bytes, so any field that can diverge must be here.
struct DurableSelectorState {
  struct Ticket {
    int64_t id = -1;
    int tenant = -1;
    int model = -1;
  };

  std::vector<DurablePrior> priors;
  std::vector<DurableTenant> tenants;  // index == tenant id
  std::vector<int> best_model;         // parallel to tenants, -1 = none
  std::vector<Ticket> in_flight;       // ascending ticket id
  int64_t next_ticket = 0;
  int round = 0;
  std::string scheduler_state;  // SchedulerPolicy::SaveDurable blob

  /// Log position at capture time (zero when no WAL is attached): replay
  /// applies exactly the records with epoch > wal_epoch, starting at
  /// wal_offset.
  int64_t wal_epoch = 0;
  int64_t wal_offset = 0;
};

}  // namespace easeml::core

#endif  // EASEML_CORE_DURABLE_STATE_H_
