#include "common/csv.h"

namespace easeml {

CsvWriter::CsvWriter(std::ostream& os, std::vector<std::string> columns)
    : os_(os), num_columns_(columns.size()) {
  for (size_t i = 0; i < columns.size(); ++i) {
    if (i > 0) os_ << ",";
    os_ << Escape(columns[i]);
  }
  os_ << "\n";
}

Status CsvWriter::WriteRow(const std::vector<std::string>& cells) {
  if (cells.size() != num_columns_) {
    return Status::InvalidArgument("CSV row width mismatch");
  }
  for (size_t i = 0; i < cells.size(); ++i) {
    if (i > 0) os_ << ",";
    os_ << Escape(cells[i]);
  }
  os_ << "\n";
  return Status::OK();
}

std::string CsvWriter::Escape(const std::string& cell) {
  bool needs_quotes = false;
  for (char c : cell) {
    if (c == ',' || c == '"' || c == '\n' || c == '\r') {
      needs_quotes = true;
      break;
    }
  }
  if (!needs_quotes) return cell;
  std::string out = "\"";
  for (char c : cell) {
    if (c == '"') out += "\"\"";
    else out += c;
  }
  out += "\"";
  return out;
}

}  // namespace easeml
