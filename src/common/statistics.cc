#include "common/statistics.h"

#include <algorithm>
#include <cmath>

#include "common/logging.h"

namespace easeml {

double Mean(const std::vector<double>& values) {
  if (values.empty()) return 0.0;
  double acc = 0.0;
  for (double v : values) acc += v;
  return acc / static_cast<double>(values.size());
}

double Variance(const std::vector<double>& values) {
  const size_t n = values.size();
  if (n < 2) return 0.0;
  const double mu = Mean(values);
  double acc = 0.0;
  for (double v : values) acc += (v - mu) * (v - mu);
  return acc / static_cast<double>(n - 1);
}

double StdDev(const std::vector<double>& values) {
  return std::sqrt(Variance(values));
}

double Min(const std::vector<double>& values) {
  EASEML_CHECK(!values.empty());
  return *std::min_element(values.begin(), values.end());
}

double Max(const std::vector<double>& values) {
  EASEML_CHECK(!values.empty());
  return *std::max_element(values.begin(), values.end());
}

double Percentile(std::vector<double> values, double p) {
  EASEML_CHECK(!values.empty());
  EASEML_CHECK(p >= 0.0 && p <= 100.0);
  std::sort(values.begin(), values.end());
  if (values.size() == 1) return values[0];
  const double rank = p / 100.0 * static_cast<double>(values.size() - 1);
  const size_t lo = static_cast<size_t>(rank);
  const size_t hi = std::min(lo + 1, values.size() - 1);
  const double frac = rank - static_cast<double>(lo);
  return values[lo] * (1.0 - frac) + values[hi] * frac;
}

void RunningStat::Add(double x) {
  if (count_ == 0) {
    min_ = max_ = x;
  } else {
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
  ++count_;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(count_);
  m2_ += delta * (x - mean_);
}

double RunningStat::variance() const {
  if (count_ < 2) return 0.0;
  return m2_ / static_cast<double>(count_ - 1);
}

double RunningStat::stddev() const { return std::sqrt(variance()); }

}  // namespace easeml
