#ifndef EASEML_COMMON_LOGGING_H_
#define EASEML_COMMON_LOGGING_H_

#include <cstdlib>
#include <iostream>
#include <sstream>
#include <string>

namespace easeml {

/// Severity levels for the lightweight logger.
enum class LogLevel { kDebug = 0, kInfo = 1, kWarning = 2, kError = 3 };

/// Process-wide minimum severity; messages below it are dropped.
/// Thread-compatible: set once at startup.
void SetLogLevel(LogLevel level);
LogLevel GetLogLevel();

namespace internal {

/// Accumulates one log line and emits it to stderr on destruction.
class LogMessage {
 public:
  LogMessage(LogLevel level, const char* file, int line);
  ~LogMessage();

  LogMessage(const LogMessage&) = delete;
  LogMessage& operator=(const LogMessage&) = delete;

  template <typename T>
  LogMessage& operator<<(const T& v) {
    if (enabled_) stream_ << v;
    return *this;
  }

 private:
  bool enabled_;
  LogLevel level_;
  std::ostringstream stream_;
};

/// LogMessage that aborts the process after emitting (for EASEML_CHECK).
class FatalLogMessage {
 public:
  FatalLogMessage(const char* file, int line, const char* condition);
  [[noreturn]] ~FatalLogMessage();

  template <typename T>
  FatalLogMessage& operator<<(const T& v) {
    stream_ << v;
    return *this;
  }

 private:
  std::ostringstream stream_;
};

}  // namespace internal

#define EASEML_LOG(level)                                            \
  ::easeml::internal::LogMessage(::easeml::LogLevel::k##level,       \
                                 __FILE__, __LINE__)

/// Aborts with a diagnostic if `condition` is false. Used for programming
/// errors (invariant violations), never for recoverable input errors.
#define EASEML_CHECK(condition)                                      \
  if (!(condition))                                                  \
  ::easeml::internal::FatalLogMessage(__FILE__, __LINE__, #condition)

#define EASEML_DCHECK(condition) EASEML_CHECK(condition)

}  // namespace easeml

#endif  // EASEML_COMMON_LOGGING_H_
