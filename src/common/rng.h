#ifndef EASEML_COMMON_RNG_H_
#define EASEML_COMMON_RNG_H_

#include <cstdint>
#include <random>
#include <string>
#include <vector>

#include "common/status.h"

namespace easeml {

/// The SplitMix64 golden-gamma increment (2^64 / phi).
inline constexpr uint64_t kSplitMix64Gamma = 0x9e3779b97f4a7c15ULL;

/// SplitMix64 step: adds the golden gamma and applies the finalizer — a
/// fast, high-quality 64-bit mix that decorrelates structured integers.
/// Used wherever a deterministic, platform-independent hash of small ids
/// is needed (shard placement of consecutive tenant ids, per-repetition
/// child seeds, synthetic ground-truth accuracies in benches/tests).
uint64_t SplitMix64(uint64_t x);

/// Deterministic pseudo-random number generator used throughout the library.
///
/// Every stochastic component (synthetic data generation, random scheduling,
/// experiment repetition seeds) draws from an explicitly seeded `Rng` so that
/// all experiments are exactly reproducible. Not thread-safe; use one
/// instance per thread.
class Rng {
 public:
  /// Seeds the generator. The same seed always yields the same stream.
  explicit Rng(uint64_t seed) : engine_(seed) {}

  /// Uniform double in [lo, hi).
  double Uniform(double lo = 0.0, double hi = 1.0);

  /// Uniform integer in [lo, hi] inclusive. Precondition: lo <= hi.
  int UniformInt(int lo, int hi);

  /// Standard normal draw scaled to N(mean, stddev^2).
  double Normal(double mean = 0.0, double stddev = 1.0);

  /// Bernoulli draw with success probability `p`.
  bool Bernoulli(double p);

  /// Draws a vector from N(mean, L L^T) where `chol_lower` is the
  /// lower-triangular Cholesky factor of the covariance, stored row-major
  /// with dimension `n` (row i occupies entries [i*n, i*n+i]).
  std::vector<double> MultivariateNormal(const std::vector<double>& mean,
                                         const std::vector<double>& chol_lower,
                                         int n);

  /// Fisher–Yates shuffle of `items`.
  template <typename T>
  void Shuffle(std::vector<T>& items) {
    for (int i = static_cast<int>(items.size()) - 1; i > 0; --i) {
      int j = UniformInt(0, i);
      std::swap(items[i], items[j]);
    }
  }

  /// Samples `k` distinct indices from [0, n) uniformly without replacement.
  /// Returned in random order. Precondition: 0 <= k <= n.
  std::vector<int> SampleWithoutReplacement(int n, int k);

  /// Derives a child seed; used to fan out independent streams per
  /// repetition/user while keeping the parent stream untouched by
  /// consumers of the children.
  uint64_t NextSeed();

  /// Access to the underlying engine for std distributions.
  std::mt19937_64& engine() { return engine_; }

  /// Serializes the complete generator state as portable decimal text (the
  /// standard's operator<< format for the Mersenne engine). Every
  /// distribution this class offers is a per-call local, so the engine IS
  /// the full state: Save/Load round-trips reproduce the stream exactly —
  /// the property durable checkpoints of the RANDOM/GREEDY schedulers
  /// depend on.
  std::string SaveState() const;

  /// Restores a state produced by `SaveState`. Fails with DataLoss when the
  /// text does not parse as an engine state.
  Status LoadState(const std::string& state);

 private:
  std::mt19937_64 engine_;
};

}  // namespace easeml

#endif  // EASEML_COMMON_RNG_H_
