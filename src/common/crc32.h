#ifndef EASEML_COMMON_CRC32_H_
#define EASEML_COMMON_CRC32_H_

#include <cstdint>
#include <string_view>

namespace easeml {

/// CRC-32 (IEEE 802.3 polynomial, reflected) over `data`, continuing from
/// `seed` (0 for a fresh checksum). The write-ahead log frames every record
/// with this checksum so recovery can find the first torn or corrupt byte
/// of the tail deterministically.
uint32_t Crc32(std::string_view data, uint32_t seed = 0);

/// Masked variant for values that are THEMSELVES stored inside checksummed
/// payloads (the RocksDB/LevelDB trick): a raw CRC of data that embeds CRCs
/// degenerates, so stored checksums are rotated and offset.
uint32_t MaskCrc32(uint32_t crc);
uint32_t UnmaskCrc32(uint32_t masked);

}  // namespace easeml

#endif  // EASEML_COMMON_CRC32_H_
