#ifndef EASEML_COMMON_BINARY_IO_H_
#define EASEML_COMMON_BINARY_IO_H_

#include <cstdint>
#include <cstring>
#include <string>
#include <string_view>
#include <vector>

#include "common/status.h"

namespace easeml {

/// Little-endian fixed-width binary encoding, used by the write-ahead log
/// and checkpoint formats. Doubles are stored as their IEEE-754 bit
/// patterns (memcpy through uint64_t), so a round trip is BIT-exact — the
/// property the recovery battery's bit-for-bit engine comparison rests on.
///
/// Writers append to a std::string; readers consume the front of a
/// std::string_view in place and fail with DataLoss on underflow (a short
/// read inside a CRC-valid record means the format, not the medium, is
/// wrong).

inline void PutU8(std::string* out, uint8_t v) {
  out->push_back(static_cast<char>(v));
}

inline void PutU32(std::string* out, uint32_t v) {
  char buf[4];
  buf[0] = static_cast<char>(v & 0xFF);
  buf[1] = static_cast<char>((v >> 8) & 0xFF);
  buf[2] = static_cast<char>((v >> 16) & 0xFF);
  buf[3] = static_cast<char>((v >> 24) & 0xFF);
  out->append(buf, 4);
}

inline void PutU64(std::string* out, uint64_t v) {
  PutU32(out, static_cast<uint32_t>(v & 0xFFFFFFFFu));
  PutU32(out, static_cast<uint32_t>(v >> 32));
}

inline void PutI64(std::string* out, int64_t v) {
  PutU64(out, static_cast<uint64_t>(v));
}

inline void PutI32(std::string* out, int32_t v) {
  PutU32(out, static_cast<uint32_t>(v));
}

inline void PutDouble(std::string* out, double v) {
  uint64_t bits = 0;
  std::memcpy(&bits, &v, sizeof(bits));
  PutU64(out, bits);
}

inline Status GetU8(std::string_view* in, uint8_t* v) {
  if (in->size() < 1) return Status::DataLoss("binary_io: short read (u8)");
  *v = static_cast<uint8_t>((*in)[0]);
  in->remove_prefix(1);
  return Status::OK();
}

inline Status GetU32(std::string_view* in, uint32_t* v) {
  if (in->size() < 4) return Status::DataLoss("binary_io: short read (u32)");
  const unsigned char* p = reinterpret_cast<const unsigned char*>(in->data());
  *v = static_cast<uint32_t>(p[0]) | (static_cast<uint32_t>(p[1]) << 8) |
       (static_cast<uint32_t>(p[2]) << 16) |
       (static_cast<uint32_t>(p[3]) << 24);
  in->remove_prefix(4);
  return Status::OK();
}

inline Status GetU64(std::string_view* in, uint64_t* v) {
  uint32_t lo = 0;
  uint32_t hi = 0;
  EASEML_RETURN_NOT_OK(GetU32(in, &lo));
  EASEML_RETURN_NOT_OK(GetU32(in, &hi));
  *v = static_cast<uint64_t>(lo) | (static_cast<uint64_t>(hi) << 32);
  return Status::OK();
}

inline Status GetI64(std::string_view* in, int64_t* v) {
  uint64_t u = 0;
  EASEML_RETURN_NOT_OK(GetU64(in, &u));
  *v = static_cast<int64_t>(u);
  return Status::OK();
}

inline Status GetI32(std::string_view* in, int32_t* v) {
  uint32_t u = 0;
  EASEML_RETURN_NOT_OK(GetU32(in, &u));
  *v = static_cast<int32_t>(u);
  return Status::OK();
}

inline Status GetDouble(std::string_view* in, double* v) {
  uint64_t bits = 0;
  EASEML_RETURN_NOT_OK(GetU64(in, &bits));
  std::memcpy(v, &bits, sizeof(*v));
  return Status::OK();
}

/// Length-prefixed byte string (u32 length + raw bytes).
inline void PutString(std::string* out, std::string_view s) {
  PutU32(out, static_cast<uint32_t>(s.size()));
  out->append(s.data(), s.size());
}

inline Status GetString(std::string_view* in, std::string* s) {
  uint32_t len = 0;
  EASEML_RETURN_NOT_OK(GetU32(in, &len));
  if (in->size() < len) {
    return Status::DataLoss("binary_io: short read (string body)");
  }
  s->assign(in->data(), len);
  in->remove_prefix(len);
  return Status::OK();
}

/// Length-prefixed homogeneous vectors.
inline void PutDoubleVec(std::string* out, const std::vector<double>& v) {
  PutU32(out, static_cast<uint32_t>(v.size()));
  for (double x : v) PutDouble(out, x);
}

inline Status GetDoubleVec(std::string_view* in, std::vector<double>* v) {
  uint32_t n = 0;
  EASEML_RETURN_NOT_OK(GetU32(in, &n));
  if (in->size() < static_cast<size_t>(n) * 8) {
    return Status::DataLoss("binary_io: short read (double vector)");
  }
  v->resize(n);
  for (uint32_t i = 0; i < n; ++i) EASEML_RETURN_NOT_OK(GetDouble(in, &(*v)[i]));
  return Status::OK();
}

inline void PutI32Vec(std::string* out, const std::vector<int>& v) {
  PutU32(out, static_cast<uint32_t>(v.size()));
  for (int x : v) PutI32(out, x);
}

inline Status GetI32Vec(std::string_view* in, std::vector<int>* v) {
  uint32_t n = 0;
  EASEML_RETURN_NOT_OK(GetU32(in, &n));
  if (in->size() < static_cast<size_t>(n) * 4) {
    return Status::DataLoss("binary_io: short read (int vector)");
  }
  v->resize(n);
  for (uint32_t i = 0; i < n; ++i) {
    int32_t x = 0;
    EASEML_RETURN_NOT_OK(GetI32(in, &x));
    (*v)[i] = x;
  }
  return Status::OK();
}

/// std::vector<bool> as one byte per bit (simple and size-irrelevant at
/// checkpoint granularity).
inline void PutBoolVec(std::string* out, const std::vector<bool>& v) {
  PutU32(out, static_cast<uint32_t>(v.size()));
  for (bool b : v) PutU8(out, b ? 1 : 0);
}

inline Status GetBoolVec(std::string_view* in, std::vector<bool>* v) {
  uint32_t n = 0;
  EASEML_RETURN_NOT_OK(GetU32(in, &n));
  if (in->size() < n) {
    return Status::DataLoss("binary_io: short read (bool vector)");
  }
  v->resize(n);
  for (uint32_t i = 0; i < n; ++i) {
    uint8_t b = 0;
    EASEML_RETURN_NOT_OK(GetU8(in, &b));
    if (b > 1) return Status::DataLoss("binary_io: bool byte out of range");
    (*v)[i] = (b != 0);
  }
  return Status::OK();
}

}  // namespace easeml

#endif  // EASEML_COMMON_BINARY_IO_H_
