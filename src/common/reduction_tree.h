#ifndef EASEML_COMMON_REDUCTION_TREE_H_
#define EASEML_COMMON_REDUCTION_TREE_H_

#include <utility>
#include <vector>

namespace easeml {

/// Deterministic binary reduction tree over per-shard summaries.
///
/// Folds `leaves` pairwise in rounds — (0,1), (2,3), ... with an odd
/// trailing element carried up unchanged — until one value remains. The
/// tree SHAPE is a pure function of the leaf count, never of thread timing,
/// so a reduction over summaries produced by concurrent shard scans is
/// reproducible run to run. When `merge` is additionally associative with a
/// total-order tie-break (min-index argmax, exact integer sums,
/// `ExactDoubleSum::Merge`), the result is independent of the partition
/// itself — the property the sharded selector's bit-identical-replay
/// guarantee rests on.
///
/// `merge` is invoked as `merge(left, right)` and must return the combined
/// summary. An empty `leaves` is the caller's error; a single leaf is
/// returned unchanged.
template <typename T, typename Merge>
T ReduceTree(std::vector<T> leaves, Merge merge) {
  while (leaves.size() > 1) {
    std::vector<T> next;
    next.reserve((leaves.size() + 1) / 2);
    for (size_t i = 0; i + 1 < leaves.size(); i += 2) {
      next.push_back(merge(std::move(leaves[i]), std::move(leaves[i + 1])));
    }
    if (leaves.size() % 2 == 1) next.push_back(std::move(leaves.back()));
    leaves = std::move(next);
  }
  return std::move(leaves.front());
}

}  // namespace easeml

#endif  // EASEML_COMMON_REDUCTION_TREE_H_
