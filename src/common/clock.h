#ifndef EASEML_COMMON_CLOCK_H_
#define EASEML_COMMON_CLOCK_H_

#include <ctime>

namespace easeml {

/// The one home for raw clock reads. Everything outside `common/` that needs
/// time goes through these two functions (enforced by the `raw-clock` lint
/// rule), so the choice of clock — and any future virtualization for
/// deterministic replay — lives in exactly one place.
///
/// Two clocks, two jobs:
///  - `MonotonicSeconds()` (CLOCK_MONOTONIC) measures wall time: makespans,
///    drain stalls, refresh intervals. Advances while a thread sleeps.
///  - `ThreadCpuSeconds()` (CLOCK_THREAD_CPUTIME_ID) measures CPU time
///    consumed by the *calling thread only*: per-phase engine costs and
///    bench latencies. Immune to scheduling noise on oversubscribed hosts
///    (the bench protocol runs on single-core containers), but meaningless
///    across threads — never difference readings taken on different threads.

/// Seconds on the monotonic wall clock. Only differences are meaningful.
inline double MonotonicSeconds() {
  timespec ts{};
  clock_gettime(CLOCK_MONOTONIC, &ts);
  return static_cast<double>(ts.tv_sec) + 1e-9 * static_cast<double>(ts.tv_nsec);
}

/// CPU seconds consumed by the calling thread. Only differences taken on
/// the same thread are meaningful.
inline double ThreadCpuSeconds() {
  timespec ts{};
  clock_gettime(CLOCK_THREAD_CPUTIME_ID, &ts);
  return static_cast<double>(ts.tv_sec) + 1e-9 * static_cast<double>(ts.tv_nsec);
}

}  // namespace easeml

#endif  // EASEML_COMMON_CLOCK_H_
