#include "common/exact_sum.h"

#include <cmath>

#include "common/logging.h"

namespace easeml {

namespace {
constexpr int64_t kChunkMask = 0xffffffffLL;  // low 32 bits
}  // namespace

void ExactDoubleSum::AddProduct(double x, int64_t scale) {
  EASEML_CHECK(std::isfinite(x)) << "ExactDoubleSum: non-finite input";
  EASEML_CHECK(scale <= (int64_t{1} << 31) && scale >= -(int64_t{1} << 31))
      << "ExactDoubleSum: |scale| must be <= 2^31";
  if (x == 0.0 || scale == 0) return;

  // x = M * 2^(e-53) with |M| in [2^52, 2^53); the product M*scale fits in
  // 85 bits, and shifting into 32-bit limb alignment adds at most 31 more.
  int e = 0;
  const double m = std::frexp(x, &e);
  const auto mantissa = static_cast<int64_t>(std::ldexp(m, 53));
  __int128 v = static_cast<__int128>(mantissa) * scale;
  const bool negative = v < 0;
  unsigned __int128 u =
      negative ? -static_cast<unsigned __int128>(v)
               : static_cast<unsigned __int128>(v);

  const int bit = e - 53 + kBias;  // offset of the product's LSB
  EASEML_CHECK(bit >= 0 && bit / 32 + 3 < kLimbs)
      << "ExactDoubleSum: exponent out of range";
  u <<= (bit & 31);
  for (int limb = bit / 32; u != 0; ++limb) {
    const auto chunk = static_cast<int64_t>(static_cast<uint64_t>(u) &
                                            kChunkMask);
    limb_[limb] += negative ? -chunk : chunk;
    u >>= 32;
  }
  // Each call deposits chunks < 2^32; an int64 limb absorbs 2^31 of them
  // before it could overflow. Normalize well before that.
  if (++unnormalized_adds_ >= (1 << 24)) Normalize();
}

void ExactDoubleSum::Normalize() {
  int64_t carry = 0;
  for (int limb = 0; limb < kLimbs - 1; ++limb) {
    const int64_t cur = limb_[limb] + carry;
    const int64_t low = cur & kChunkMask;  // == cur mod 2^32, non-negative
    carry = (cur - low) >> 32;             // exact: cur - low is a multiple
    limb_[limb] = low;
  }
  limb_[kLimbs - 1] += carry;
  unnormalized_adds_ = 0;
}

void ExactDoubleSum::Merge(const ExactDoubleSum& other) {
  ExactDoubleSum rhs = other;
  rhs.Normalize();
  Normalize();
  for (int limb = 0; limb < kLimbs; ++limb) limb_[limb] += rhs.limb_[limb];
  unnormalized_adds_ = 1;
}

int ExactDoubleSum::SignInPlace() {
  Normalize();
  // Normal form: limbs below the top are in [0, 2^32), the top limb holds
  // the (possibly negative) overflow. |top * 2^(32*top_pos)| dominates the
  // non-negative lower limbs, so the top limb's sign decides.
  if (limb_[kLimbs - 1] != 0) {
    return limb_[kLimbs - 1] > 0 ? 1 : -1;
  }
  for (int limb = kLimbs - 2; limb >= 0; --limb) {
    if (limb_[limb] != 0) return 1;
  }
  return 0;
}

int ExactDoubleSum::Sign() const {
  ExactDoubleSum tmp = *this;
  return tmp.SignInPlace();
}

int ExactDoubleSum::Compare(const ExactDoubleSum& other) const {
  ExactDoubleSum diff = *this;
  ExactDoubleSum rhs = other;
  diff.Normalize();
  rhs.Normalize();
  for (int limb = 0; limb < kLimbs; ++limb) diff.limb_[limb] -= rhs.limb_[limb];
  diff.unnormalized_adds_ = 1;
  return diff.SignInPlace();
}

int ExactDoubleSum::CompareScaled(double x, int64_t n) const {
  ExactDoubleSum diff = *this;  // one scratch copy; sign read in place
  diff.AddProduct(x, -n);       // diff = sum - x*n, exactly
  return -diff.SignInPlace();
}

double ExactDoubleSum::Value() const {
  ExactDoubleSum tmp = *this;
  tmp.Normalize();
  long double acc = 0.0L;
  for (int limb = kLimbs - 1; limb >= 0; --limb) {
    acc += std::ldexp(static_cast<long double>(tmp.limb_[limb]),
                      32 * limb - kBias);
  }
  return static_cast<double>(acc);
}

}  // namespace easeml
