#ifndef EASEML_COMMON_TABLE_H_
#define EASEML_COMMON_TABLE_H_

#include <ostream>
#include <string>
#include <vector>

namespace easeml {

/// Fixed-column ASCII table used by the benchmark harness to print the rows
/// the paper's figures/tables report.
///
/// Usage:
///   Table t({"dataset", "#users", "#models"});
///   t.AddRow({"DEEPLEARNING", "22", "8"});
///   t.Print(std::cout);
class Table {
 public:
  explicit Table(std::vector<std::string> headers);

  /// Appends a row; must have exactly as many cells as there are headers.
  void AddRow(std::vector<std::string> cells);

  /// Convenience: formats doubles with `precision` digits after the point.
  static std::string FormatDouble(double v, int precision = 4);

  /// Renders the table with aligned columns and a header separator.
  void Print(std::ostream& os) const;

  size_t num_rows() const { return rows_.size(); }

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace easeml

#endif  // EASEML_COMMON_TABLE_H_
