#include "common/crc32.h"

#include <array>

namespace easeml {

namespace {

/// Reflected IEEE polynomial 0xEDB88320, table generated at first use.
const std::array<uint32_t, 256>& Crc32Table() {
  static const std::array<uint32_t, 256> table = [] {
    std::array<uint32_t, 256> t{};
    for (uint32_t i = 0; i < 256; ++i) {
      uint32_t c = i;
      for (int k = 0; k < 8; ++k) {
        c = (c & 1u) ? 0xEDB88320u ^ (c >> 1) : c >> 1;
      }
      t[i] = c;
    }
    return t;
  }();
  return table;
}

constexpr uint32_t kMaskDelta = 0xa282ead8u;

}  // namespace

uint32_t Crc32(std::string_view data, uint32_t seed) {
  const std::array<uint32_t, 256>& table = Crc32Table();
  uint32_t c = seed ^ 0xFFFFFFFFu;
  for (unsigned char byte : data) {
    c = table[(c ^ byte) & 0xFFu] ^ (c >> 8);
  }
  return c ^ 0xFFFFFFFFu;
}

uint32_t MaskCrc32(uint32_t crc) {
  return ((crc >> 15) | (crc << 17)) + kMaskDelta;
}

uint32_t UnmaskCrc32(uint32_t masked) {
  const uint32_t rot = masked - kMaskDelta;
  return (rot << 15) | (rot >> 17);
}

}  // namespace easeml
