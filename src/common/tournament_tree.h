#ifndef EASEML_COMMON_TOURNAMENT_TREE_H_
#define EASEML_COMMON_TOURNAMENT_TREE_H_

#include <cstddef>
#include <utility>
#include <vector>

namespace easeml {

/// Monotone tournament tree: the incremental twin of `ReduceTree`.
///
/// Where `ReduceTree` folds a vector of per-shard summaries once per query,
/// a `TournamentTree` KEEPS the whole reduction materialized — a fixed-shape
/// perfect binary tree whose leaves are per-tenant summaries and whose
/// internal nodes each hold `Summary::Merge(left, right)` of their children.
/// Changing one leaf replays only the O(log n) internal nodes on its
/// root path (`Update`); the full reduction is read off the root in O(1).
/// That turns the selector's O(T) per-event scan into O(log T) per-event
/// index maintenance — the "no scan" serving path.
///
/// The tree SHAPE is a pure function of the leaf count (leaves padded to the
/// next power of two, missing slots holding the identity summary), never of
/// update order or thread timing. When `Merge` is additionally associative
/// with a total-order tie-break — the same contract `ReduceTree` documents —
/// the root is independent of how tenants are partitioned into leaves, which
/// is what lets the index replay the scan path bit-identically.
///
/// `Summary` requirements:
///   - default-constructible, and the default value is the merge identity
///     (an "empty slot": merging it in changes nothing);
///   - `static Summary Summary::Merge(const Summary& left,
///                                    const Summary& right)`.
///
/// Pruned descents (threshold argmax, leftmost-satisfying, rank queries)
/// walk the heap-ordered node array directly via `node()` / `kRoot` /
/// child index arithmetic; the policy-specific query logic lives with the
/// summary type, not here.
///
/// Not thread-safe; the owning engine serializes access (one writer per
/// shard tree, reads behind the selector's synchronization).
template <typename Summary>
class TournamentTree {
 public:
  /// Heap layout: root at index 1, children of `i` at `2i` and `2i+1`,
  /// leaf `slot` at `leaf_begin() + slot`.
  static constexpr int kRoot = 1;

  TournamentTree() { Assign({}); }

  /// Bulk build over `leaves` in O(n): replaces the whole tree. Leaf order
  /// is the caller's (the candidate index uses ascending tenant id).
  void Assign(std::vector<Summary> leaves) {
    num_leaves_ = static_cast<int>(leaves.size());
    cap_ = 1;
    while (cap_ < num_leaves_) cap_ *= 2;
    nodes_.assign(static_cast<size_t>(2 * cap_), Summary());
    for (int i = 0; i < num_leaves_; ++i) {
      nodes_[static_cast<size_t>(cap_ + i)] = std::move(leaves[i]);
    }
    for (int i = cap_ - 1; i >= 1; --i) {
      nodes_[static_cast<size_t>(i)] = Summary::Merge(
          nodes_[static_cast<size_t>(2 * i)],
          nodes_[static_cast<size_t>(2 * i + 1)]);
    }
  }

  /// Appends a new trailing leaf: O(log n) amortized (the leaf capacity
  /// doubles like a vector's, rebuilding only at powers of two). The
  /// tenant-add hot path — a full rebuild per add would be O(n).
  void Append(Summary leaf) {
    if (num_leaves_ == cap_) {
      std::vector<Summary> leaves(
          nodes_.begin() + cap_, nodes_.begin() + cap_ + num_leaves_);
      leaves.push_back(std::move(leaf));
      Assign(std::move(leaves));
      return;
    }
    const int slot = num_leaves_++;
    Update(slot, std::move(leaf));
  }

  /// Replaces leaf `slot` and replays its O(log n) ancestors.
  void Update(int slot, Summary leaf) {
    int i = cap_ + slot;
    nodes_[static_cast<size_t>(i)] = std::move(leaf);
    for (i /= 2; i >= 1; i /= 2) {
      nodes_[static_cast<size_t>(i)] = Summary::Merge(
          nodes_[static_cast<size_t>(2 * i)],
          nodes_[static_cast<size_t>(2 * i + 1)]);
    }
  }

  /// Number of occupied leaf slots (excluding power-of-two padding).
  int num_leaves() const { return num_leaves_; }

  /// Index of leaf slot 0 in the node array; leaves are contiguous.
  int leaf_begin() const { return cap_; }

  /// The full reduction over every leaf.
  const Summary& Root() const { return nodes_[kRoot]; }

  const Summary& Leaf(int slot) const {
    return nodes_[static_cast<size_t>(cap_ + slot)];
  }

  /// Raw heap-ordered node access for pruned descents. `index` in
  /// [1, 2 * leaf_begin()).
  const Summary& node(int index) const {
    return nodes_[static_cast<size_t>(index)];
  }

  bool is_leaf(int index) const { return index >= cap_; }

  /// Leaf slot of a node index at the leaf level.
  int slot_of(int index) const { return index - cap_; }

 private:
  int num_leaves_ = 0;
  int cap_ = 1;              // power-of-two leaf capacity
  std::vector<Summary> nodes_;  // 1-based heap; [0] unused identity
};

}  // namespace easeml

#endif  // EASEML_COMMON_TOURNAMENT_TREE_H_
