#ifndef EASEML_COMMON_EXACT_SUM_H_
#define EASEML_COMMON_EXACT_SUM_H_

#include <array>
#include <cstdint>

namespace easeml {

/// Exact, summation-order-invariant accumulation of IEEE-754 doubles.
///
/// Floating-point addition is not associative, so a sum computed per shard
/// and merged through a reduction tree generally differs (in the last ulps)
/// from the same sum computed sequentially — enough to flip threshold
/// comparisons such as GREEDY's candidate-set test and break bit-identical
/// replay of a sharded scan. `ExactDoubleSum` removes the problem at the
/// root: every finite double is an integer multiple of 2^-1074, so the sum
/// is held as a wide fixed-point integer (64-bit limbs of 32 value bits
/// each, covering the full double exponent range). Integer addition is
/// exact and commutative, hence `Add`/`Merge` yield the same accumulator
/// for ANY ordering or partition of the inputs — the invariant the
/// deterministic shard reduction relies on.
///
/// Thresholds are evaluated without ever rounding: `CompareScaled(x, n)`
/// returns the exact sign of (x * n - sum), i.e. "is x at least the mean of
/// the n accumulated values" when called with the accumulated count.
///
/// Capacity: at most 2^31 - 1 additions (enforced by EASEML_CHECK via the
/// scale bound) between which no overflow is possible; limb carries are
/// normalized lazily. This covers any tenant count the selector can hold.
class ExactDoubleSum {
 public:
  /// Adds `x` exactly. Precondition: `x` is finite.
  void Add(double x) { AddProduct(x, 1); }

  /// Adds the exact product x * scale (no intermediate rounding).
  /// Preconditions: `x` finite, |scale| <= 2^31.
  void AddProduct(double x, int64_t scale);

  /// Folds `other` into this accumulator. Exact; equivalent to replaying
  /// every `Add` that built `other`, in any order.
  void Merge(const ExactDoubleSum& other);

  /// Exact sign of (x * n - sum): -1, 0 or +1. Preconditions as AddProduct.
  /// `CompareScaled(b, count) >= 0` answers "b >= sum/count" with no
  /// floating-point rounding anywhere.
  int CompareScaled(double x, int64_t n) const;

  /// Exact sign of the accumulated sum.
  int Sign() const;

  /// Exact sign of (this - other): -1, 0 or +1. Lets an invariant check
  /// compare an incrementally maintained accumulator against a freshly
  /// rebuilt one without exposing the limb representation (two accumulators
  /// holding the same value may differ in normalization state).
  int Compare(const ExactDoubleSum& other) const;

  /// Nearest-double approximation of the sum (faithful within 1 ulp).
  /// Diagnostics/reporting only — comparisons must use CompareScaled.
  double Value() const;

 private:
  // value = sum_L limb_[L] * 2^(32*L - kBias). kBias places the least
  // subnormal bit (2^-1074) at a positive offset; kLimbs covers products
  // |M * scale| < 2^84 placed at the top of the double range.
  static constexpr int kBias = 1152;
  static constexpr int kLimbs = 70;

  /// Carry-propagates so limbs 0..kLimbs-2 lie in [0, 2^32) and the top
  /// limb absorbs the sign. Value-preserving.
  void Normalize();

  /// Sign(), but normalizing this accumulator in place (no copy) — the
  /// hot-path variant CompareScaled uses on its scratch accumulator.
  int SignInPlace();

  std::array<int64_t, kLimbs> limb_{};
  int unnormalized_adds_ = 0;
};

}  // namespace easeml

#endif  // EASEML_COMMON_EXACT_SUM_H_
