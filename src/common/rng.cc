#include "common/rng.h"

#include <sstream>

#include "common/logging.h"

namespace easeml {

double Rng::Uniform(double lo, double hi) {
  std::uniform_real_distribution<double> dist(lo, hi);
  return dist(engine_);
}

int Rng::UniformInt(int lo, int hi) {
  EASEML_DCHECK(lo <= hi) << "UniformInt: lo=" << lo << " hi=" << hi;
  std::uniform_int_distribution<int> dist(lo, hi);
  return dist(engine_);
}

double Rng::Normal(double mean, double stddev) {
  std::normal_distribution<double> dist(mean, stddev);
  return dist(engine_);
}

bool Rng::Bernoulli(double p) {
  std::bernoulli_distribution dist(p);
  return dist(engine_);
}

std::vector<double> Rng::MultivariateNormal(
    const std::vector<double>& mean, const std::vector<double>& chol_lower,
    int n) {
  EASEML_DCHECK(static_cast<int>(mean.size()) == n);
  EASEML_DCHECK(static_cast<int>(chol_lower.size()) == n * n);
  std::vector<double> z(n);
  for (int i = 0; i < n; ++i) z[i] = Normal();
  std::vector<double> out(n);
  for (int i = 0; i < n; ++i) {
    double acc = mean[i];
    for (int j = 0; j <= i; ++j) acc += chol_lower[i * n + j] * z[j];
    out[i] = acc;
  }
  return out;
}

std::vector<int> Rng::SampleWithoutReplacement(int n, int k) {
  EASEML_DCHECK(k >= 0 && k <= n);
  std::vector<int> idx(n);
  for (int i = 0; i < n; ++i) idx[i] = i;
  // Partial Fisher–Yates: the first k entries are the sample.
  for (int i = 0; i < k; ++i) {
    int j = UniformInt(i, n - 1);
    std::swap(idx[i], idx[j]);
  }
  idx.resize(k);
  return idx;
}

uint64_t Rng::NextSeed() {
  std::uniform_int_distribution<uint64_t> dist;
  return dist(engine_);
}

std::string Rng::SaveState() const {
  std::ostringstream os;
  os << engine_;
  return os.str();
}

Status Rng::LoadState(const std::string& state) {
  std::istringstream is(state);
  std::mt19937_64 restored;
  is >> restored;
  if (is.fail()) {
    return Status::DataLoss("Rng::LoadState: engine state does not parse");
  }
  engine_ = restored;
  return Status::OK();
}

uint64_t SplitMix64(uint64_t x) {
  x += kSplitMix64Gamma;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

}  // namespace easeml
