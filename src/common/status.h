#ifndef EASEML_COMMON_STATUS_H_
#define EASEML_COMMON_STATUS_H_

#include <optional>
#include <string>
#include <string_view>
#include <utility>

namespace easeml {

/// Error category attached to a `Status`.
///
/// Library code never throws: every fallible operation reports failure through
/// `Status` (or `Result<T>` when a value is produced). This mirrors the
/// convention used by Apache Arrow and RocksDB.
enum class StatusCode {
  kOk = 0,
  kInvalidArgument,
  kNotFound,
  kOutOfRange,
  kAlreadyExists,
  kFailedPrecondition,
  kUnimplemented,
  kInternal,
  kDataLoss,
  kUnavailable,
};

/// Returns a human-readable name for `code` (e.g. "InvalidArgument").
std::string_view StatusCodeToString(StatusCode code);

/// Success-or-error outcome of an operation.
///
/// A default-constructed `Status` is OK. Error statuses carry a code and a
/// message. The class is cheaply copyable and movable.
class Status {
 public:
  /// Constructs an OK status.
  Status() : code_(StatusCode::kOk) {}

  /// Constructs a status with an explicit code and message.
  Status(StatusCode code, std::string message)
      : code_(code), message_(std::move(message)) {}

  /// Factory helpers, one per error category.
  static Status OK() { return Status(); }
  static Status InvalidArgument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  static Status NotFound(std::string msg) {
    return Status(StatusCode::kNotFound, std::move(msg));
  }
  static Status OutOfRange(std::string msg) {
    return Status(StatusCode::kOutOfRange, std::move(msg));
  }
  static Status AlreadyExists(std::string msg) {
    return Status(StatusCode::kAlreadyExists, std::move(msg));
  }
  static Status FailedPrecondition(std::string msg) {
    return Status(StatusCode::kFailedPrecondition, std::move(msg));
  }
  static Status Unimplemented(std::string msg) {
    return Status(StatusCode::kUnimplemented, std::move(msg));
  }
  static Status Internal(std::string msg) {
    return Status(StatusCode::kInternal, std::move(msg));
  }
  /// Unrecoverable loss or corruption of durable state (a write-ahead log
  /// whose CRC-valid records contradict each other, a checkpoint whose
  /// serialized factor does not match its replayed history). Distinct from
  /// kInternal: the program is fine, the *data* is not, and the caller
  /// should surface it to an operator instead of retrying.
  static Status DataLoss(std::string msg) {
    return Status(StatusCode::kDataLoss, std::move(msg));
  }
  /// The service (or, in fault-injection tests, the simulated medium) is
  /// transiently gone; the operation may succeed if retried against a
  /// recovered instance. Distinct from kFailedPrecondition: nothing about
  /// the REQUEST is wrong.
  static Status Unavailable(std::string msg) {
    return Status(StatusCode::kUnavailable, std::move(msg));
  }

  /// True iff the status represents success.
  bool ok() const { return code_ == StatusCode::kOk; }

  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  /// "OK" or "<Code>: <message>".
  std::string ToString() const;

  bool operator==(const Status& other) const {
    return code_ == other.code_ && message_ == other.message_;
  }

 private:
  StatusCode code_;
  std::string message_;
};

/// Value-or-error union. Holds either a `T` or an error `Status`.
///
/// Accessing `value()` on an error result aborts the process (programming
/// error); call `ok()` first or use `value_or()`.
template <typename T>
class Result {
 public:
  /// Implicit construction from a value (success).
  Result(T value) : value_(std::move(value)) {}  // NOLINT(runtime/explicit)

  /// Implicit construction from an error status. Aborts if `status.ok()`,
  /// because an OK result must carry a value.
  Result(Status status) : status_(std::move(status)) {  // NOLINT
    if (status_.ok()) {
      status_ = Status::Internal("Result constructed from OK status");
    }
  }

  bool ok() const { return value_.has_value(); }

  /// The error status; `Status::OK()` when a value is held.
  const Status& status() const { return status_; }

  /// The held value. Precondition: `ok()`.
  const T& value() const& { return *value_; }
  T& value() & { return *value_; }
  T&& value() && { return *std::move(value_); }

  /// The held value, or `fallback` on error.
  T value_or(T fallback) const {
    return ok() ? *value_ : std::move(fallback);
  }

  const T& operator*() const& { return *value_; }
  T& operator*() & { return *value_; }
  const T* operator->() const { return &*value_; }
  T* operator->() { return &*value_; }

 private:
  std::optional<T> value_;
  Status status_;
};

/// Propagates an error status out of the current function.
#define EASEML_RETURN_NOT_OK(expr)                \
  do {                                            \
    ::easeml::Status _st = (expr);                \
    if (!_st.ok()) return _st;                    \
  } while (false)

/// Assigns the value of a `Result<T>` expression to `lhs`, or propagates
/// its error status.
#define EASEML_ASSIGN_OR_RETURN(lhs, expr)        \
  auto EASEML_CONCAT_(res_, __LINE__) = (expr);   \
  if (!EASEML_CONCAT_(res_, __LINE__).ok())       \
    return EASEML_CONCAT_(res_, __LINE__).status(); \
  lhs = std::move(EASEML_CONCAT_(res_, __LINE__)).value()

#define EASEML_CONCAT_IMPL_(a, b) a##b
#define EASEML_CONCAT_(a, b) EASEML_CONCAT_IMPL_(a, b)

}  // namespace easeml

#endif  // EASEML_COMMON_STATUS_H_
