#ifndef EASEML_COMMON_STATISTICS_H_
#define EASEML_COMMON_STATISTICS_H_

#include <cstddef>
#include <vector>

namespace easeml {

/// Arithmetic mean of `values`. Returns 0 for an empty vector.
double Mean(const std::vector<double>& values);

/// Unbiased sample variance (divisor n-1). Returns 0 for n < 2.
double Variance(const std::vector<double>& values);

/// Square root of `Variance`.
double StdDev(const std::vector<double>& values);

/// Minimum / maximum. Precondition: non-empty.
double Min(const std::vector<double>& values);
double Max(const std::vector<double>& values);

/// Linear-interpolated percentile, `p` in [0, 100]. Precondition: non-empty.
double Percentile(std::vector<double> values, double p);

/// Streaming mean/variance accumulator (Welford's algorithm).
///
/// Numerically stable for long streams; used by the metrics layer to
/// aggregate loss curves across experiment repetitions without storing
/// every sample.
class RunningStat {
 public:
  /// Adds one observation.
  void Add(double x);

  size_t count() const { return count_; }
  double mean() const { return count_ > 0 ? mean_ : 0.0; }
  /// Unbiased sample variance; 0 for fewer than two observations.
  double variance() const;
  double stddev() const;
  /// Extremes over the stream; 0 when empty.
  double min() const { return count_ > 0 ? min_ : 0.0; }
  double max() const { return count_ > 0 ? max_ : 0.0; }

 private:
  size_t count_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

}  // namespace easeml

#endif  // EASEML_COMMON_STATISTICS_H_
