#ifndef EASEML_COMMON_CSV_H_
#define EASEML_COMMON_CSV_H_

#include <ostream>
#include <string>
#include <vector>

#include "common/status.h"

namespace easeml {

/// Streams rows in RFC-4180-ish CSV to an `std::ostream`.
///
/// The benchmark binaries emit their figure series as CSV so downstream
/// plotting scripts can regenerate the paper's plots directly.
class CsvWriter {
 public:
  /// Writes the header row immediately.
  CsvWriter(std::ostream& os, std::vector<std::string> columns);

  /// Writes one row; must match the column count.
  Status WriteRow(const std::vector<std::string>& cells);

  /// Quotes a cell if it contains a comma, quote, or newline.
  static std::string Escape(const std::string& cell);

 private:
  std::ostream& os_;
  size_t num_columns_;
};

}  // namespace easeml

#endif  // EASEML_COMMON_CSV_H_
