#ifndef EASEML_COMMON_THREAD_ANNOTATIONS_H_
#define EASEML_COMMON_THREAD_ANNOTATIONS_H_

#include <atomic>
#include <condition_variable>
#include <mutex>
#include <thread>

/// Clang Thread Safety Analysis annotations + the annotated locking
/// vocabulary of this codebase.
///
/// Every mutex-bearing subsystem declares WHICH fields its mutex guards
/// (`EASEML_GUARDED_BY`) and WHICH private methods run with the capability
/// already held (`EASEML_REQUIRES`), so lock discipline is machine-checked
/// at compile time under Clang (`-Wthread-safety -Wthread-safety-beta
/// -Werror`; GCC compiles the macros away). The dynamic batteries (TSan,
/// fuzz conformance) remain the behavioral net; the static analysis is the
/// reviewer-independent proof that no code path touches guarded state
/// without its lock.
///
/// Conventions (enforced by tools/easeml_lint, rule `raw-sync` /
/// `unguarded-mutex`):
///   - Never declare `std::mutex` / `std::condition_variable` /
///     `std::lock_guard` / `std::unique_lock` outside this header; use
///     `easeml::Mutex`, `easeml::MutexLock`, `easeml::CondVar`.
///   - Every class declaring a `Mutex` member must carry at least one
///     `EASEML_GUARDED_BY` field annotation.
///   - `EASEML_NO_THREAD_SAFETY_ANALYSIS` escapes need a one-line
///     justification comment at the use site.
///   - Condition waits are explicit while-loops over guarded predicates
///     (`while (!pred) cv.Wait(lock);`), never predicate lambdas: the
///     analysis sees the guarded reads in the enclosing scope where the
///     capability is provably held.

#if defined(__clang__)
#define EASEML_THREAD_ANNOTATION_ATTRIBUTE__(x) __attribute__((x))
#else
#define EASEML_THREAD_ANNOTATION_ATTRIBUTE__(x)  // no-op outside Clang
#endif

/// Declares a class to be a capability ("mutex") the analysis tracks.
#define EASEML_CAPABILITY(x) \
  EASEML_THREAD_ANNOTATION_ATTRIBUTE__(capability(x))

/// Declares an RAII class that acquires a capability in its constructor
/// and releases it in its destructor.
#define EASEML_SCOPED_CAPABILITY \
  EASEML_THREAD_ANNOTATION_ATTRIBUTE__(scoped_lockable)

/// Field annotation: reads and writes require holding `x`.
#define EASEML_GUARDED_BY(x) \
  EASEML_THREAD_ANNOTATION_ATTRIBUTE__(guarded_by(x))

/// Pointer-field annotation: the pointed-to data requires holding `x`.
#define EASEML_PT_GUARDED_BY(x) \
  EASEML_THREAD_ANNOTATION_ATTRIBUTE__(pt_guarded_by(x))

/// Function annotation: callers must hold the given capabilities.
#define EASEML_REQUIRES(...) \
  EASEML_THREAD_ANNOTATION_ATTRIBUTE__(requires_capability(__VA_ARGS__))

/// Function annotation: acquires the given capabilities (held on return).
#define EASEML_ACQUIRE(...) \
  EASEML_THREAD_ANNOTATION_ATTRIBUTE__(acquire_capability(__VA_ARGS__))

/// Function annotation: releases the given capabilities.
#define EASEML_RELEASE(...) \
  EASEML_THREAD_ANNOTATION_ATTRIBUTE__(release_capability(__VA_ARGS__))

/// Function annotation: acquires the capability iff the return value
/// equals the first argument.
#define EASEML_TRY_ACQUIRE(...) \
  EASEML_THREAD_ANNOTATION_ATTRIBUTE__(try_acquire_capability(__VA_ARGS__))

/// Function annotation: callers must NOT hold the given capabilities
/// (documents non-reentrancy; catches self-deadlock at compile time).
#define EASEML_EXCLUDES(...) \
  EASEML_THREAD_ANNOTATION_ATTRIBUTE__(locks_excluded(__VA_ARGS__))

/// Function annotation: the function returns a reference to `x`'s
/// capability.
#define EASEML_RETURN_CAPABILITY(x) \
  EASEML_THREAD_ANNOTATION_ATTRIBUTE__(lock_returned(x))

/// Escape hatch. Every use MUST carry a one-line justification comment.
#define EASEML_NO_THREAD_SAFETY_ANALYSIS \
  EASEML_THREAD_ANNOTATION_ATTRIBUTE__(no_thread_safety_analysis)

namespace easeml {

/// `std::mutex` wrapper carrying the "mutex" capability, so the analysis
/// can track which fields it guards and which methods require it. Same
/// cost as the raw mutex (the wrapper is a single `std::mutex` member and
/// every method is a trivially inlined forwarder).
class EASEML_CAPABILITY("mutex") Mutex {
 public:
  Mutex() = default;
  Mutex(const Mutex&) = delete;
  Mutex& operator=(const Mutex&) = delete;

  void Lock() EASEML_ACQUIRE() { mu_.lock(); }
  void Unlock() EASEML_RELEASE() { mu_.unlock(); }
  bool TryLock() EASEML_TRY_ACQUIRE(true) { return mu_.try_lock(); }

 private:
  friend class CondVar;
  std::mutex mu_;
};

/// RAII lock over `Mutex` (the `std::lock_guard` of this codebase). The
/// scoped-capability annotation lets the analysis prove guarded accesses
/// inside the lock's scope.
class EASEML_SCOPED_CAPABILITY MutexLock {
 public:
  explicit MutexLock(Mutex& mu) EASEML_ACQUIRE(mu) : mu_(mu) { mu_.Lock(); }
  ~MutexLock() EASEML_RELEASE() { mu_.Unlock(); }

  MutexLock(const MutexLock&) = delete;
  MutexLock& operator=(const MutexLock&) = delete;

 private:
  friend class CondVar;
  Mutex& mu_;
};

/// Test-and-set spin lock carrying the same "mutex" capability as `Mutex`,
/// for NANOSECOND-scale critical sections on serving hot paths where the
/// pthread mutex dominates the cost: `std::mutex` lock/unlock are
/// out-of-line libpthread calls touching their own 40-byte cache line,
/// while this is one byte and two inlined atomic instructions — the byte
/// can sit on the same cache line as the data it guards, so a cold
/// acquisition warms the guarded fields for free (the WAL's per-ack slot
/// push is the motivating case). Contenders spin on a relaxed read and
/// yield, so a preempted holder on a saturated machine costs a scheduler
/// round-trip, not a burned quantum. NOT for sections that block, allocate
/// unboundedly, or run long — and there is no `CondVar` pairing; use
/// `Mutex` the moment anything waits.
class EASEML_CAPABILITY("mutex") SpinLock {
 public:
  SpinLock() = default;
  SpinLock(const SpinLock&) = delete;
  SpinLock& operator=(const SpinLock&) = delete;

  void Lock() EASEML_ACQUIRE() {
    while (locked_.exchange(true, std::memory_order_acquire)) {
      while (locked_.load(std::memory_order_relaxed)) {
        std::this_thread::yield();
      }
    }
  }
  void Unlock() EASEML_RELEASE() {
    locked_.store(false, std::memory_order_release);
  }
  bool TryLock() EASEML_TRY_ACQUIRE(true) {
    return !locked_.exchange(true, std::memory_order_acquire);
  }

 private:
  std::atomic<bool> locked_{false};
};

/// RAII lock over `SpinLock` (the spin twin of `MutexLock`).
class EASEML_SCOPED_CAPABILITY SpinLockGuard {
 public:
  explicit SpinLockGuard(SpinLock& mu) EASEML_ACQUIRE(mu) : mu_(mu) {
    mu_.Lock();
  }
  ~SpinLockGuard() EASEML_RELEASE() { mu_.Unlock(); }

  SpinLockGuard(const SpinLockGuard&) = delete;
  SpinLockGuard& operator=(const SpinLockGuard&) = delete;

 private:
  SpinLock& mu_;
};

/// Condition variable paired with `Mutex`/`MutexLock`. `Wait` atomically
/// releases the lock's mutex and reacquires it before returning, exactly
/// like `std::condition_variable::wait` (which it is: the wrapper adopts
/// the already-held `std::mutex` for the duration of the wait). Callers
/// loop explicitly over their guarded predicate:
///
///   MutexLock lock(mu_);
///   while (!ready_) cv_.Wait(lock);      // ready_ GUARDED_BY(mu_): the
///                                        // analysis sees the read under
///                                        // the held capability
class CondVar {
 public:
  CondVar() = default;
  CondVar(const CondVar&) = delete;
  CondVar& operator=(const CondVar&) = delete;

  /// Precondition: `lock` holds the mutex the caller's predicate state is
  /// guarded by. The capability is held again when Wait returns (the
  /// analysis treats the temporary release as internal to the wait, the
  /// same fiction `std::condition_variable` callers already live by).
  void Wait(MutexLock& lock) {
    std::unique_lock<std::mutex> native(lock.mu_.mu_, std::adopt_lock);
    cv_.wait(native);
    native.release();  // ownership returns to `lock`'s scope
  }

  void NotifyOne() { cv_.notify_one(); }
  void NotifyAll() { cv_.notify_all(); }

 private:
  std::condition_variable cv_;
};

}  // namespace easeml

#endif  // EASEML_COMMON_THREAD_ANNOTATIONS_H_
