#include "common/table.h"

#include <algorithm>
#include <iomanip>
#include <sstream>

#include "common/logging.h"

namespace easeml {

Table::Table(std::vector<std::string> headers)
    : headers_(std::move(headers)) {}

void Table::AddRow(std::vector<std::string> cells) {
  EASEML_CHECK(cells.size() == headers_.size())
      << "row has " << cells.size() << " cells, expected " << headers_.size();
  rows_.push_back(std::move(cells));
}

std::string Table::FormatDouble(double v, int precision) {
  std::ostringstream os;
  os << std::fixed << std::setprecision(precision) << v;
  return os.str();
}

void Table::Print(std::ostream& os) const {
  std::vector<size_t> widths(headers_.size());
  for (size_t c = 0; c < headers_.size(); ++c) widths[c] = headers_[c].size();
  for (const auto& row : rows_) {
    for (size_t c = 0; c < row.size(); ++c) {
      widths[c] = std::max(widths[c], row[c].size());
    }
  }
  auto print_row = [&](const std::vector<std::string>& row) {
    os << "|";
    for (size_t c = 0; c < row.size(); ++c) {
      os << " " << std::left << std::setw(static_cast<int>(widths[c]))
         << row[c] << " |";
    }
    os << "\n";
  };
  print_row(headers_);
  os << "|";
  for (size_t c = 0; c < headers_.size(); ++c) {
    os << std::string(widths[c] + 2, '-') << "|";
  }
  os << "\n";
  for (const auto& row : rows_) print_row(row);
}

}  // namespace easeml
