#ifndef EASEML_WAL_RECOVERY_H_
#define EASEML_WAL_RECOVERY_H_

#include <cstdint>
#include <memory>
#include <string>

#include "common/status.h"
#include "core/multi_tenant_selector.h"
#include "wal/checkpoint.h"
#include "wal/file.h"
#include "wal/selector_wal.h"

namespace easeml::wal {

/// What recovery did, for operators and the fault-injection battery.
struct RecoveryStats {
  /// True when a valid checkpoint was restored (replay started from its
  /// embedded log position instead of offset 0).
  bool used_checkpoint = false;
  /// Epoch the restored checkpoint covered (0 when none).
  int64_t checkpoint_epoch = 0;
  /// Non-pad records replayed through the engine on top of the starting
  /// state.
  int64_t replayed_records = 0;
  /// Bytes cut from the log's torn tail (0 for a clean log).
  int64_t truncated_bytes = 0;
  /// Why the tail was truncated (empty for a clean log).
  std::string truncate_reason;
  /// Last epoch in the recovered history — every operation with an epoch
  /// at or below this survived; everything after is cleanly absent.
  int64_t last_epoch = 0;
  /// Log size after tail repair.
  int64_t log_bytes = 0;
};

/// A recovered durable selector. The WAL member is declared before the
/// selector so it outlives it during destruction (the selector's hooks
/// hold a raw `DurabilityLog*` into it).
struct RecoveredSelector {
  std::unique_ptr<SelectorWal> wal;
  std::unique_ptr<core::MultiTenantSelector> selector;
  RecoveryStats stats;
};

/// Opens the durable selector living in directory `dir` (creating it on
/// first use): reads the checkpoint if one exists, restores it into a
/// fresh engine built from `options` (sequential or sharded per
/// `options.num_shards`), scans the log, repairs the torn tail by
/// truncation, deterministically replays the surviving suffix through the
/// engine's public API, and resumes the WAL at the recovered end so the
/// returned engine continues appending where history stops.
///
/// `options.wal` must be null on entry (the function wires the recovered
/// WAL in). Damage taxonomy: tail damage (short/garbled/CRC-failed last
/// records) is repaired by truncation; a CRC-VALID record whose epoch
/// skips ahead means records are missing in the MIDDLE and recovery
/// refuses with DataLoss rather than replay a divergent history. A
/// missing or corrupt checkpoint is never fatal — replay falls back to
/// the full log.
Result<RecoveredSelector> OpenOrRecover(FileSystem* fs,
                                        const std::string& dir,
                                        core::SelectorOptions options,
                                        SelectorWalOptions wal_options = {});

}  // namespace easeml::wal

#endif  // EASEML_WAL_RECOVERY_H_
