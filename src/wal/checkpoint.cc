#include "wal/checkpoint.h"

#include <utility>

#include "common/binary_io.h"
#include "common/crc32.h"
#include "wal/record.h"

namespace easeml::wal {

namespace {

constexpr std::string_view kMagic = "EZCKPT01";
constexpr uint32_t kFormatVersion = 1;

void EncodeDurableUser(std::string* out, const scheduler::DurableUserState& u) {
  PutI32(out, u.user_id);
  PutDoubleVec(out, u.costs);
  PutBoolVec(out, u.played);
  PutI32(out, u.num_played);
  PutI32(out, u.rounds_served);
  PutBoolVec(out, u.in_flight);
  PutDoubleVec(out, u.in_flight_ucb);
  PutI32(out, u.num_in_flight);
  PutI32(out, u.max_in_flight);
  PutU8(out, u.retired ? 1 : 0);
  PutDouble(out, u.best_reward);
  PutDouble(out, u.last_reward);
  PutDouble(out, u.empirical_bound);
  PutDouble(out, u.min_empirical_ucb);
  PutDouble(out, u.consumed_cost);
}

Status DecodeDurableUser(std::string_view* in, scheduler::DurableUserState* u) {
  EASEML_RETURN_NOT_OK(GetI32(in, &u->user_id));
  EASEML_RETURN_NOT_OK(GetDoubleVec(in, &u->costs));
  EASEML_RETURN_NOT_OK(GetBoolVec(in, &u->played));
  EASEML_RETURN_NOT_OK(GetI32(in, &u->num_played));
  EASEML_RETURN_NOT_OK(GetI32(in, &u->rounds_served));
  EASEML_RETURN_NOT_OK(GetBoolVec(in, &u->in_flight));
  EASEML_RETURN_NOT_OK(GetDoubleVec(in, &u->in_flight_ucb));
  EASEML_RETURN_NOT_OK(GetI32(in, &u->num_in_flight));
  EASEML_RETURN_NOT_OK(GetI32(in, &u->max_in_flight));
  uint8_t retired = 0;
  EASEML_RETURN_NOT_OK(GetU8(in, &retired));
  if (retired > 1) return Status::DataLoss("checkpoint: bad retired flag");
  u->retired = retired != 0;
  EASEML_RETURN_NOT_OK(GetDouble(in, &u->best_reward));
  EASEML_RETURN_NOT_OK(GetDouble(in, &u->last_reward));
  EASEML_RETURN_NOT_OK(GetDouble(in, &u->empirical_bound));
  EASEML_RETURN_NOT_OK(GetDouble(in, &u->min_empirical_ucb));
  EASEML_RETURN_NOT_OK(GetDouble(in, &u->consumed_cost));
  return Status::OK();
}

}  // namespace

std::string LogPath(const std::string& dir) { return dir + "/wal.log"; }

std::string CheckpointPath(const std::string& dir) {
  return dir + "/checkpoint";
}

void EncodeDurableSelectorState(std::string* out,
                                const core::DurableSelectorState& s) {
  PutU32(out, static_cast<uint32_t>(s.priors.size()));
  for (const core::DurablePrior& p : s.priors) EncodeDurablePrior(out, p);
  PutU32(out, static_cast<uint32_t>(s.tenants.size()));
  for (const core::DurableTenant& t : s.tenants) {
    EncodeDurableUser(out, t.user);
    PutI32(out, t.belief.prior_id);
    PutI32Vec(out, t.belief.arms);
    PutDoubleVec(out, t.belief.rewards);
    PutDoubleVec(out, t.belief.chol);
  }
  PutI32Vec(out, s.best_model);
  PutU32(out, static_cast<uint32_t>(s.in_flight.size()));
  for (const core::DurableSelectorState::Ticket& t : s.in_flight) {
    PutI64(out, t.id);
    PutI32(out, t.tenant);
    PutI32(out, t.model);
  }
  PutI64(out, s.next_ticket);
  PutI32(out, s.round);
  PutString(out, s.scheduler_state);
  PutI64(out, s.wal_epoch);
  PutI64(out, s.wal_offset);
}

Status DecodeDurableSelectorState(std::string_view* in,
                                  core::DurableSelectorState* s) {
  uint32_t n = 0;
  EASEML_RETURN_NOT_OK(GetU32(in, &n));
  s->priors.resize(n);
  for (uint32_t i = 0; i < n; ++i) {
    EASEML_RETURN_NOT_OK(DecodeDurablePrior(in, &s->priors[i]));
  }
  EASEML_RETURN_NOT_OK(GetU32(in, &n));
  s->tenants.resize(n);
  for (uint32_t i = 0; i < n; ++i) {
    core::DurableTenant& t = s->tenants[i];
    EASEML_RETURN_NOT_OK(DecodeDurableUser(in, &t.user));
    EASEML_RETURN_NOT_OK(GetI32(in, &t.belief.prior_id));
    EASEML_RETURN_NOT_OK(GetI32Vec(in, &t.belief.arms));
    EASEML_RETURN_NOT_OK(GetDoubleVec(in, &t.belief.rewards));
    EASEML_RETURN_NOT_OK(GetDoubleVec(in, &t.belief.chol));
  }
  EASEML_RETURN_NOT_OK(GetI32Vec(in, &s->best_model));
  EASEML_RETURN_NOT_OK(GetU32(in, &n));
  s->in_flight.resize(n);
  for (uint32_t i = 0; i < n; ++i) {
    core::DurableSelectorState::Ticket& t = s->in_flight[i];
    EASEML_RETURN_NOT_OK(GetI64(in, &t.id));
    EASEML_RETURN_NOT_OK(GetI32(in, &t.tenant));
    EASEML_RETURN_NOT_OK(GetI32(in, &t.model));
  }
  EASEML_RETURN_NOT_OK(GetI64(in, &s->next_ticket));
  EASEML_RETURN_NOT_OK(GetI32(in, &s->round));
  EASEML_RETURN_NOT_OK(GetString(in, &s->scheduler_state));
  EASEML_RETURN_NOT_OK(GetI64(in, &s->wal_epoch));
  EASEML_RETURN_NOT_OK(GetI64(in, &s->wal_offset));
  return Status::OK();
}

std::string EncodeCheckpoint(const Checkpoint& cp) {
  std::string body;
  EncodeDurableSelectorState(&body, cp.state);
  PutU32(&body, static_cast<uint32_t>(cp.wal_priors.size()));
  for (const core::DurablePrior& p : cp.wal_priors) {
    EncodeDurablePrior(&body, p);
  }
  PutU8(&body, cp.has_obs ? 1 : 0);
  if (cp.has_obs) {
    PutU64(&body, cp.obs.fleet_epoch);
    PutI64(&body, cp.obs.totals.tenants);
    PutI64(&body, cp.obs.totals.retired);
    PutI64(&body, cp.obs.totals.schedulable);
    PutI64(&body, cp.obs.totals.uninitialized);
    PutI64(&body, cp.obs.totals.in_flight);
    PutI64(&body, cp.obs.totals.rounds);
  }
  std::string out;
  out.reserve(kMagic.size() + 12 + body.size());
  out.append(kMagic);
  PutU32(&out, kFormatVersion);
  PutU32(&out, MaskCrc32(Crc32(body)));
  PutU32(&out, static_cast<uint32_t>(body.size()));
  out.append(body);
  return out;
}

Result<Checkpoint> DecodeCheckpoint(std::string_view bytes) {
  if (bytes.size() < kMagic.size() + 12 ||
      bytes.substr(0, kMagic.size()) != kMagic) {
    return Status::DataLoss("checkpoint: bad magic");
  }
  bytes.remove_prefix(kMagic.size());
  uint32_t version = 0;
  uint32_t masked_crc = 0;
  uint32_t len = 0;
  EASEML_RETURN_NOT_OK(GetU32(&bytes, &version));
  EASEML_RETURN_NOT_OK(GetU32(&bytes, &masked_crc));
  EASEML_RETURN_NOT_OK(GetU32(&bytes, &len));
  if (version != kFormatVersion) {
    return Status::DataLoss("checkpoint: unknown format version " +
                            std::to_string(version));
  }
  if (bytes.size() != len) {
    return Status::DataLoss("checkpoint: body length mismatch");
  }
  if (Crc32(bytes) != UnmaskCrc32(masked_crc)) {
    return Status::DataLoss("checkpoint: body CRC mismatch");
  }
  Checkpoint cp;
  EASEML_RETURN_NOT_OK(DecodeDurableSelectorState(&bytes, &cp.state));
  uint32_t n = 0;
  EASEML_RETURN_NOT_OK(GetU32(&bytes, &n));
  cp.wal_priors.resize(n);
  for (uint32_t i = 0; i < n; ++i) {
    EASEML_RETURN_NOT_OK(DecodeDurablePrior(&bytes, &cp.wal_priors[i]));
  }
  uint8_t has_obs = 0;
  EASEML_RETURN_NOT_OK(GetU8(&bytes, &has_obs));
  if (has_obs > 1) return Status::DataLoss("checkpoint: bad obs flag");
  cp.has_obs = has_obs != 0;
  if (cp.has_obs) {
    EASEML_RETURN_NOT_OK(GetU64(&bytes, &cp.obs.fleet_epoch));
    EASEML_RETURN_NOT_OK(GetI64(&bytes, &cp.obs.totals.tenants));
    EASEML_RETURN_NOT_OK(GetI64(&bytes, &cp.obs.totals.retired));
    EASEML_RETURN_NOT_OK(GetI64(&bytes, &cp.obs.totals.schedulable));
    EASEML_RETURN_NOT_OK(GetI64(&bytes, &cp.obs.totals.uninitialized));
    EASEML_RETURN_NOT_OK(GetI64(&bytes, &cp.obs.totals.in_flight));
    EASEML_RETURN_NOT_OK(GetI64(&bytes, &cp.obs.totals.rounds));
  }
  if (!bytes.empty()) {
    return Status::DataLoss("checkpoint: trailing bytes after body");
  }
  return cp;
}

Status WriteCheckpoint(FileSystem* fs, const std::string& dir,
                       const Checkpoint& cp) {
  const std::string tmp = CheckpointPath(dir) + ".tmp";
  {
    EASEML_ASSIGN_OR_RETURN(std::unique_ptr<WritableFile> file,
                            fs->OpenAppendable(tmp));
    // The tmp name may hold debris from a previous crashed cut; appending
    // to it would corrupt the frame, so start clean.
    EASEML_RETURN_NOT_OK(fs->Truncate(tmp, 0));
    EASEML_RETURN_NOT_OK(file->Append(EncodeCheckpoint(cp)));
    EASEML_RETURN_NOT_OK(file->Sync());
    EASEML_RETURN_NOT_OK(file->Close());
  }
  EASEML_RETURN_NOT_OK(fs->Rename(tmp, CheckpointPath(dir)));
  return fs->SyncDir(dir);
}

Result<std::optional<Checkpoint>> ReadCheckpoint(FileSystem* fs,
                                                 const std::string& dir) {
  const std::string path = CheckpointPath(dir);
  EASEML_ASSIGN_OR_RETURN(const bool exists, fs->Exists(path));
  if (!exists) return std::optional<Checkpoint>();
  EASEML_ASSIGN_OR_RETURN(const std::string bytes, fs->ReadFile(path));
  Result<Checkpoint> cp = DecodeCheckpoint(bytes);
  if (!cp.ok()) {
    // A checkpoint that fails validation is ignored, not fatal: the log is
    // never truncated past its torn tail, so a full replay from offset 0
    // reproduces everything the checkpoint summarized.
    return std::optional<Checkpoint>();
  }
  return std::optional<Checkpoint>(std::move(*cp));
}

Status CutCheckpoint(FileSystem* fs, const std::string& dir, SelectorWal* wal,
                     const core::MultiTenantSelector& selector,
                     const obs::SnapshotPlane* plane) {
  EASEML_RETURN_NOT_OK(wal->SealToBlockBoundary());
  Checkpoint cp;
  EASEML_ASSIGN_OR_RETURN(cp.state, selector.CaptureDurableState());
  // Everything the checkpoint references (records up to state.wal_offset)
  // must be durable BEFORE the checkpoint publishes, or a crash between
  // the two would leave a checkpoint pointing past the log's end. Hard
  // sync: kDeferred's per-ack Sync defers I/O, a checkpoint cannot.
  EASEML_RETURN_NOT_OK(wal->SyncHard());
  for (const auto& prior : wal->RegisteredPriors()) {
    core::DurablePrior p;
    p.num_arms = prior->num_arms();
    p.noise_variance = prior->noise_variance;
    p.mean = prior->mean;
    p.gram = prior->gram.data();
    cp.wal_priors.push_back(std::move(p));
  }
  if (plane != nullptr) {
    const obs::FleetSnapshot snapshot = plane->Snapshot();
    cp.has_obs = true;
    cp.obs.fleet_epoch = snapshot.epoch();
    cp.obs.totals = snapshot.Totals();
  }
  return WriteCheckpoint(fs, dir, cp);
}

}  // namespace easeml::wal
