#ifndef EASEML_WAL_RECORD_H_
#define EASEML_WAL_RECORD_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "common/status.h"
#include "core/durable_state.h"

namespace easeml::wal {

/// Record framing of the selector write-ahead log.
///
/// A record occupies
///
///   [u32 masked CRC32][u32 len][payload: u8 type, u64 epoch LE, body]
///
/// followed by zero padding to the next 8-byte boundary, so every record
/// starts aligned. `len` is the payload length; the CRC covers exactly the
/// payload and is stored masked (common/crc32.h) because payloads of later
/// formats may themselves embed CRCs. Epochs count non-pad records from 1
/// and must be contiguous: recovery scans until the first record whose CRC,
/// length, type or epoch is wrong — a bad CRC/length/short remainder is a
/// torn tail (truncate, keep everything before), while a CRC-VALID record
/// with a non-contiguous epoch means a hole in the middle of the log and is
/// unrecoverable DataLoss.
///
/// PAD records (type 0, epoch 0, zero body) carry no state and do not
/// advance the epoch; the writer uses them to seal the log to a 4 KiB block
/// boundary before a checkpoint cut, so a checkpoint's log offset is both
/// record- and block-aligned.

constexpr uint64_t kRecordHeaderSize = 8;  // masked CRC + payload length
constexpr uint64_t kRecordAlignment = 8;
constexpr uint64_t kWalBlockSize = 4096;
/// Smallest frame: header + (type, epoch) payload, aligned.
constexpr uint64_t kMinRecordSize = 24;

enum class RecordType : uint8_t {
  kPad = 0,
  kRegisterPrior = 1,
  kAddTenant = 2,
  kRemoveTenant = 3,
  kNext = 4,
  kReport = 5,
  kCancel = 6,
};

/// Human-readable type name ("pad", "add-tenant", ...; "invalid" when out
/// of range) — waldump and test diagnostics.
std::string RecordTypeName(RecordType type);

struct Record {
  RecordType type = RecordType::kPad;
  int64_t epoch = 0;
  std::string body;
  int64_t offset = 0;  // file offset the frame starts at (scanner output)
};

/// Appends the complete frame (header + payload + alignment padding) for
/// one record to `out`.
void AppendRecord(std::string* out, RecordType type, int64_t epoch,
                  std::string_view body);

/// Frame size `AppendRecord` emits for a `body_size`-byte body.
uint64_t FramedSize(uint64_t body_size);

/// Scan of a log image from a known-good position.
struct LogScan {
  std::vector<Record> records;  // every valid record, pads included
  int64_t valid_bytes = 0;      // offset of the first torn/corrupt byte
  int64_t last_epoch = 0;       // epoch of the last non-pad record
  bool truncated = false;       // a torn tail follows valid_bytes
  std::string truncate_reason;  // why the scan stopped (diagnostics)
};

/// Scans `log` from `start_offset`, whose preceding records are summarized
/// by `start_epoch` (0 when scanning from the beginning). Returns the
/// valid prefix; DataLoss only for holes that truncation cannot repair
/// (epoch gap under a valid CRC, start_offset beyond the log).
Result<LogScan> ScanLog(std::string_view log, int64_t start_offset,
                        int64_t start_epoch);

// --- Record bodies ----------------------------------------------------------
//
// Each Log* call of the durability seam maps to exactly one body below
// (plus kRegisterPrior once per distinct prior). Decoders consume the
// whole body and fail with DataLoss on trailing bytes — inside a CRC-valid
// record a length mismatch means a format bug, not medium corruption.

struct RegisterPriorBody {
  int prior_id = 0;  // dense registration order, 0-based
  core::DurablePrior prior;
};

struct AddTenantBody {
  int tenant = 0;
  int prior_id = 0;
  std::vector<double> costs;
};

struct RemoveTenantBody {
  int tenant = 0;
};

struct NextBody {
  int tenant = 0;
  int model = 0;
  int64_t ticket = 0;
};

struct ReportBody {
  int64_t ticket = 0;
  int tenant = 0;
  int model = 0;
  double accuracy = 0.0;
};

struct CancelBody {
  int64_t ticket = 0;
  int tenant = 0;
  int model = 0;
};

void EncodeRegisterPrior(std::string* out, const RegisterPriorBody& b);
Status DecodeRegisterPrior(std::string_view body, RegisterPriorBody* b);
void EncodeAddTenant(std::string* out, const AddTenantBody& b);
Status DecodeAddTenant(std::string_view body, AddTenantBody* b);
void EncodeRemoveTenant(std::string* out, const RemoveTenantBody& b);
Status DecodeRemoveTenant(std::string_view body, RemoveTenantBody* b);
void EncodeNext(std::string* out, const NextBody& b);
Status DecodeNext(std::string_view body, NextBody* b);
void EncodeReport(std::string* out, const ReportBody& b);
Status DecodeReport(std::string_view body, ReportBody* b);
void EncodeCancel(std::string* out, const CancelBody& b);
Status DecodeCancel(std::string_view body, CancelBody* b);

/// Shared with the checkpoint format: a prior's full payload.
void EncodeDurablePrior(std::string* out, const core::DurablePrior& p);
Status DecodeDurablePrior(std::string_view* in, core::DurablePrior* p);

}  // namespace easeml::wal

#endif  // EASEML_WAL_RECORD_H_
