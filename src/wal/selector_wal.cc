#include "wal/selector_wal.h"

#include <utility>

namespace easeml::wal {

SelectorWal::SelectorWal(FileSystem* fs, std::string path,
                         SelectorWalOptions options, bool suspended)
    : fs_(fs),
      path_(std::move(path)),
      options_(options),
      suspended_(suspended) {}

Result<std::unique_ptr<SelectorWal>> SelectorWal::Open(
    FileSystem* fs, const std::string& path, SelectorWalOptions options) {
  EASEML_ASSIGN_OR_RETURN(const bool exists, fs->Exists(path));
  if (exists) {
    EASEML_ASSIGN_OR_RETURN(const std::string contents, fs->ReadFile(path));
    if (!contents.empty()) {
      return Status::FailedPrecondition(
          "SelectorWal::Open: " + path +
          " already holds " + std::to_string(contents.size()) +
          " bytes of log; recover through wal::OpenOrRecover instead of "
          "overwriting history");
    }
  }
  std::unique_ptr<SelectorWal> wal(
      new SelectorWal(fs, path, options, /*suspended=*/false));
  EASEML_ASSIGN_OR_RETURN(wal->file_, fs->OpenAppendable(path));
  return wal;
}

std::unique_ptr<SelectorWal> SelectorWal::CreateSuspended(
    FileSystem* fs, const std::string& path, SelectorWalOptions options) {
  return std::unique_ptr<SelectorWal>(
      new SelectorWal(fs, path, options, /*suspended=*/true));
}

Status SelectorWal::FlushBuffer() {
  if (buffer_.empty()) return Status::OK();
  EASEML_RETURN_NOT_OK(file_->Append(buffer_));
  buffer_.clear();
  return Status::OK();
}

void SelectorWal::DrainPending() {
  for (const PendingOp& op : pending_) {
    body_scratch_.clear();
    switch (op.type) {
      case RecordType::kRemoveTenant: {
        RemoveTenantBody b;
        b.tenant = op.tenant;
        EncodeRemoveTenant(&body_scratch_, b);
        break;
      }
      case RecordType::kNext: {
        NextBody b;
        b.tenant = op.tenant;
        b.model = op.model;
        b.ticket = op.ticket;
        EncodeNext(&body_scratch_, b);
        break;
      }
      case RecordType::kReport: {
        ReportBody b;
        b.ticket = op.ticket;
        b.tenant = op.tenant;
        b.model = op.model;
        b.accuracy = op.accuracy;
        EncodeReport(&body_scratch_, b);
        break;
      }
      case RecordType::kCancel: {
        CancelBody b;
        b.ticket = op.ticket;
        b.tenant = op.tenant;
        b.model = op.model;
        EncodeCancel(&body_scratch_, b);
        break;
      }
      default:
        // QueueOp only ever queues the four hot-path types above.
        break;
    }
    // The epoch was assigned (and last_epoch_/offset_ advanced) at queue
    // time; framing here must not re-derive it.
    AppendRecord(&buffer_, op.type, op.epoch, body_scratch_);
  }
  pending_.clear();
  pending_bytes_ = 0;
}

Status SelectorWal::QueueOp(const PendingOp& op, uint64_t body_size) {
  const uint64_t framed = FramedSize(body_size);
  pending_.push_back(op);
  pending_bytes_ += framed;
  last_epoch_ = op.epoch;
  offset_ += static_cast<int64_t>(framed);
  // Drain in small batches: kDrainBatchOps slots are ~2.5 KiB, so the
  // pending array is reused circularly and stays L1-resident — the push
  // above lands on a warm line instead of walking a fresh one every other
  // call (the dominant serving-path cost at large fleets). The FILE still
  // sees one write per flush_threshold crossing; a small drain just moves
  // bytes into the process buffer.
  if (pending_.size() >= kDrainBatchOps ||
      buffer_.size() + pending_bytes_ >= options_.flush_threshold) {
    DrainPending();
    if (buffer_.size() >= options_.flush_threshold) return FlushBuffer();
  }
  return Status::OK();
}

Status SelectorWal::AppendFrame(RecordType type, std::string_view body) {
  DrainPending();
  const int64_t epoch = type == RecordType::kPad ? 0 : last_epoch_ + 1;
  AppendRecord(&buffer_, type, epoch, body);
  if (type != RecordType::kPad) last_epoch_ = epoch;
  offset_ += static_cast<int64_t>(FramedSize(body.size()));
  if (buffer_.size() >= options_.flush_threshold) {
    return FlushBuffer();
  }
  return Status::OK();
}

Status SelectorWal::LogAddTenant(
    int tenant, const std::shared_ptr<const gp::SharedGpPrior>& prior,
    const std::vector<double>& costs) {
  SpinLockGuard lock(mu_);
  if (suspended_) return Status::OK();
  if (prior == nullptr) {
    return Status::InvalidArgument("LogAddTenant: null prior");
  }
  auto it = prior_ids_.find(prior.get());
  if (it == prior_ids_.end()) {
    // First sighting: register the full prior under the next dense id (its
    // own record, its own epoch) and pin it so this address can never mean
    // a different prior later.
    RegisterPriorBody reg;
    reg.prior_id = static_cast<int>(priors_.size());
    reg.prior.num_arms = prior->num_arms();
    reg.prior.noise_variance = prior->noise_variance;
    reg.prior.mean = prior->mean;
    reg.prior.gram = prior->gram.data();
    std::string body;
    EncodeRegisterPrior(&body, reg);
    EASEML_RETURN_NOT_OK(AppendFrame(RecordType::kRegisterPrior, body));
    it = prior_ids_.emplace(prior.get(), reg.prior_id).first;
    priors_.push_back(prior);
  }
  AddTenantBody add;
  add.tenant = tenant;
  add.prior_id = it->second;
  add.costs = costs;
  std::string body;
  EncodeAddTenant(&body, add);
  return AppendFrame(RecordType::kAddTenant, body);
}

// Fixed encoded-body sizes of the hot-path records (see Encode* in
// wal/record.cc): QueueOp needs them to advance the logical offset without
// serializing anything on the serving path.
namespace {
constexpr uint64_t kRemoveTenantBodySize = 4;   // i32 tenant
constexpr uint64_t kNextBodySize = 16;          // i32 + i32 + i64
constexpr uint64_t kReportBodySize = 24;        // i64 + i32 + i32 + f64
constexpr uint64_t kCancelBodySize = 16;        // i64 + i32 + i32
}  // namespace

Status SelectorWal::LogRemoveTenant(int tenant) {
  SpinLockGuard lock(mu_);
  if (suspended_) return Status::OK();
  PendingOp op{};
  op.type = RecordType::kRemoveTenant;
  op.epoch = last_epoch_ + 1;
  op.tenant = tenant;
  return QueueOp(op, kRemoveTenantBodySize);
}

Status SelectorWal::LogNext(int tenant, int model, int64_t ticket) {
  SpinLockGuard lock(mu_);
  if (suspended_) return Status::OK();
  PendingOp op{};
  op.type = RecordType::kNext;
  op.epoch = last_epoch_ + 1;
  op.tenant = tenant;
  op.model = model;
  op.ticket = ticket;
  return QueueOp(op, kNextBodySize);
}

Status SelectorWal::LogReport(int64_t ticket, int tenant, int model,
                              double accuracy) {
  SpinLockGuard lock(mu_);
  if (suspended_) return Status::OK();
  PendingOp op{};
  op.type = RecordType::kReport;
  op.epoch = last_epoch_ + 1;
  op.tenant = tenant;
  op.model = model;
  op.ticket = ticket;
  op.accuracy = accuracy;
  return QueueOp(op, kReportBodySize);
}

Status SelectorWal::LogCancel(int64_t ticket, int tenant, int model) {
  SpinLockGuard lock(mu_);
  if (suspended_) return Status::OK();
  PendingOp op{};
  op.type = RecordType::kCancel;
  op.epoch = last_epoch_ + 1;
  op.tenant = tenant;
  op.model = model;
  op.ticket = ticket;
  return QueueOp(op, kCancelBodySize);
}

Status SelectorWal::Sync() {
  SpinLockGuard lock(mu_);
  if (suspended_) return Status::OK();
  if (options_.durability == SelectorWalOptions::Durability::kDeferred) {
    // Group-commit: the ack rides the threshold flush in AppendFrame.
    // The buffered tail is the (documented) exposure; nothing to do here.
    return Status::OK();
  }
  // Group-commit fast path: everything acknowledged already covers every
  // record appended so far AND nothing is buffered (pads carry no epoch
  // but still need to reach the file).
  if (buffer_.empty() && pending_.empty() && durable_epoch_ >= last_epoch_) {
    return Status::OK();
  }
  DrainPending();
  EASEML_RETURN_NOT_OK(FlushBuffer());
  if (options_.durability == SelectorWalOptions::Durability::kFsync) {
    EASEML_RETURN_NOT_OK(file_->Sync());
  }
  durable_epoch_ = last_epoch_;
  return Status::OK();
}

bool SelectorWal::SyncIsDeferred() const {
  // Immutable configuration — no lock needed, and the engines cache-free
  // branch on this before every would-be Sync call.
  return options_.durability == SelectorWalOptions::Durability::kDeferred;
}

Status SelectorWal::SyncHard() {
  SpinLockGuard lock(mu_);
  if (suspended_) return Status::OK();
  DrainPending();
  EASEML_RETURN_NOT_OK(FlushBuffer());
  EASEML_RETURN_NOT_OK(file_->Sync());
  durable_epoch_ = last_epoch_;
  return Status::OK();
}

core::DurabilityLog::Position SelectorWal::position() const {
  SpinLockGuard lock(mu_);
  Position pos;
  pos.epoch = last_epoch_;
  pos.offset = offset_;
  return pos;
}

Status SelectorWal::Resume(
    int64_t epoch, int64_t offset,
    std::vector<std::shared_ptr<const gp::SharedGpPrior>> priors) {
  SpinLockGuard lock(mu_);
  if (!suspended_) {
    return Status::FailedPrecondition("Resume: the log is not suspended");
  }
  if (epoch < 0 || offset < 0) {
    return Status::InvalidArgument("Resume: negative epoch or offset");
  }
  EASEML_ASSIGN_OR_RETURN(const bool exists, fs_->Exists(path_));
  if (exists) {
    EASEML_ASSIGN_OR_RETURN(const std::string contents, fs_->ReadFile(path_));
    if (static_cast<int64_t>(contents.size()) != offset) {
      return Status::FailedPrecondition(
          "Resume: " + path_ + " is " + std::to_string(contents.size()) +
          " bytes but the recovered position is " + std::to_string(offset) +
          " — truncate the torn tail before resuming");
    }
  } else if (offset != 0) {
    return Status::FailedPrecondition(
        "Resume: " + path_ + " is absent but the recovered position is " +
        std::to_string(offset));
  }
  EASEML_ASSIGN_OR_RETURN(file_, fs_->OpenAppendable(path_));
  last_epoch_ = epoch;
  durable_epoch_ = epoch;
  offset_ = offset;
  prior_ids_.clear();
  priors_.clear();
  for (auto& prior : priors) {
    if (prior == nullptr) {
      return Status::InvalidArgument("Resume: null prior in registry");
    }
    prior_ids_.emplace(prior.get(), static_cast<int>(priors_.size()));
    priors_.push_back(std::move(prior));
  }
  suspended_ = false;
  return Status::OK();
}

Status SelectorWal::SealToBlockBoundary() {
  SpinLockGuard lock(mu_);
  if (suspended_) return Status::OK();
  const int64_t gap =
      static_cast<int64_t>(kWalBlockSize) -
      offset_ % static_cast<int64_t>(kWalBlockSize);
  if (gap == static_cast<int64_t>(kWalBlockSize)) return Status::OK();
  // One PAD record of exactly the gap: total = align8(17 + b) = g when
  // b = g - 17 (g is 8-aligned because every record keeps the offset so).
  // Gaps too small for a record (< 24 bytes) pad through the NEXT
  // boundary instead.
  const int64_t total =
      gap >= static_cast<int64_t>(kMinRecordSize)
          ? gap
          : gap + static_cast<int64_t>(kWalBlockSize);
  const std::string body(static_cast<size_t>(total - 17), '\0');
  return AppendFrame(RecordType::kPad, body);
}

std::vector<std::shared_ptr<const gp::SharedGpPrior>>
SelectorWal::RegisteredPriors() const {
  SpinLockGuard lock(mu_);
  return priors_;
}

bool SelectorWal::suspended() const {
  SpinLockGuard lock(mu_);
  return suspended_;
}

}  // namespace easeml::wal
