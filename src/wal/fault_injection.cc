#include "wal/fault_injection.h"

#include <algorithm>
#include <utility>

namespace easeml::wal {

/// Handle into the fault-injecting filesystem: all state lives in the
/// filesystem map (so Crash/Flip scripts and reads observe the same
/// bytes), the handle only names the path. Namespace-scope (not
/// anonymous) so the filesystem's friend declaration matches.
class FaultInjectingFile final : public WritableFile {
 public:
  FaultInjectingFile(FaultInjectingFileSystem* fs, std::string path)
      : fs_(fs), path_(std::move(path)) {}

  Status Append(std::string_view data) override;
  Status Sync() override;
  Status Close() override { return Status::OK(); }

 private:
  FaultInjectingFileSystem* fs_;
  std::string path_;
};

Status FaultInjectingFileSystem::ChargeOp() {
  ++ops_;
  if (fail_after_ops_ >= 0) {
    if (fail_after_ops_ == 0) {
      return Status::Unavailable(
          "fault injection: scripted crash point reached — the process is "
          "considered dead from here");
    }
    --fail_after_ops_;
  }
  return Status::OK();
}

Status FaultInjectingFileSystem::AppendLocked(const std::string& path,
                                              std::string_view data) {
  EASEML_RETURN_NOT_OK(ChargeOp());
  FileState& f = files_[path];
  if (short_write_keep_ >= 0) {
    const uint64_t keep = std::min<uint64_t>(
        static_cast<uint64_t>(short_write_keep_), data.size());
    short_write_keep_ = -1;
    f.data.append(data.data(), keep);
    return Status::Unavailable(
        "fault injection: short write (" + std::to_string(keep) + " of " +
        std::to_string(data.size()) + " bytes persisted)");
  }
  f.data.append(data.data(), data.size());
  return Status::OK();
}

Status FaultInjectingFileSystem::SyncLocked(const std::string& path) {
  EASEML_RETURN_NOT_OK(ChargeOp());
  if (fail_syncs_) {
    return Status::Unavailable("fault injection: sync failure");
  }
  FileState& f = files_[path];
  f.durable_size = f.data.size();
  return Status::OK();
}

Status FaultInjectingFile::Append(std::string_view data) {
  MutexLock lock(fs_->mu_);
  return fs_->AppendLocked(path_, data);
}

Status FaultInjectingFile::Sync() {
  MutexLock lock(fs_->mu_);
  return fs_->SyncLocked(path_);
}

Result<std::unique_ptr<WritableFile>>
FaultInjectingFileSystem::OpenAppendable(const std::string& path) {
  {
    MutexLock lock(mu_);
    files_[path];  // create when absent, like O_CREAT
  }
  return std::unique_ptr<WritableFile>(new FaultInjectingFile(this, path));
}

Result<std::string> FaultInjectingFileSystem::ReadFile(
    const std::string& path) {
  MutexLock lock(mu_);
  const auto it = files_.find(path);
  if (it == files_.end()) return Status::NotFound("no such file: " + path);
  return it->second.data;
}

Result<bool> FaultInjectingFileSystem::Exists(const std::string& path) {
  MutexLock lock(mu_);
  return files_.count(path) > 0 || dirs_.count(path) > 0;
}

Status FaultInjectingFileSystem::Truncate(const std::string& path,
                                          uint64_t size) {
  MutexLock lock(mu_);
  const auto it = files_.find(path);
  if (it == files_.end()) return Status::NotFound("no such file: " + path);
  FileState& f = it->second;
  if (size > f.data.size()) {
    return Status::InvalidArgument("Truncate: size beyond end of " + path);
  }
  f.data.resize(size);
  f.durable_size = std::min<uint64_t>(f.durable_size, size);
  return Status::OK();
}

Status FaultInjectingFileSystem::Rename(const std::string& from,
                                        const std::string& to) {
  MutexLock lock(mu_);
  const auto it = files_.find(from);
  if (it == files_.end()) return Status::NotFound("no such file: " + from);
  FileState moved = std::move(it->second);
  files_.erase(it);
  // Modeled atomic and durable (see the class comment): the replaced
  // content is durable as one unit.
  moved.durable_size = moved.data.size();
  files_[to] = std::move(moved);
  return Status::OK();
}

Status FaultInjectingFileSystem::Delete(const std::string& path) {
  MutexLock lock(mu_);
  if (files_.erase(path) == 0) {
    return Status::NotFound("no such file: " + path);
  }
  return Status::OK();
}

Status FaultInjectingFileSystem::CreateDir(const std::string& path) {
  MutexLock lock(mu_);
  dirs_[path] = true;
  return Status::OK();
}

Status FaultInjectingFileSystem::SyncDir(const std::string& dir) {
  (void)dir;
  return Status::OK();
}

void FaultInjectingFileSystem::ArmFailAfterOps(int64_t n) {
  MutexLock lock(mu_);
  fail_after_ops_ = n;
}

int64_t FaultInjectingFileSystem::ops() const {
  MutexLock lock(mu_);
  return ops_;
}

void FaultInjectingFileSystem::CrashDropPending() {
  MutexLock lock(mu_);
  for (auto& [path, f] : files_) f.data.resize(f.durable_size);
}

void FaultInjectingFileSystem::CrashKeepPendingPrefix(const std::string& path,
                                                      uint64_t keep) {
  MutexLock lock(mu_);
  for (auto& [p, f] : files_) {
    if (p == path) {
      const uint64_t kept = std::min<uint64_t>(f.durable_size + keep,
                                               f.data.size());
      f.data.resize(kept);
      f.durable_size = kept;  // the torn bytes DID reach the medium
    } else {
      f.data.resize(f.durable_size);
    }
  }
}

Status FaultInjectingFileSystem::FlipDurableBit(const std::string& path,
                                                uint64_t byte_index,
                                                int bit) {
  MutexLock lock(mu_);
  const auto it = files_.find(path);
  if (it == files_.end()) return Status::NotFound("no such file: " + path);
  FileState& f = it->second;
  if (byte_index >= f.data.size() || bit < 0 || bit > 7) {
    return Status::InvalidArgument("FlipDurableBit: out of range");
  }
  f.data[byte_index] = static_cast<char>(
      static_cast<unsigned char>(f.data[byte_index]) ^ (1u << bit));
  f.durable_size = std::max<uint64_t>(f.durable_size, byte_index + 1);
  return Status::OK();
}

void FaultInjectingFileSystem::ShortWriteNextAppend(uint64_t keep) {
  MutexLock lock(mu_);
  short_write_keep_ = static_cast<int64_t>(keep);
}

void FaultInjectingFileSystem::FailSyncs(bool fail) {
  MutexLock lock(mu_);
  fail_syncs_ = fail;
}

void FaultInjectingFileSystem::ClearFaults() {
  MutexLock lock(mu_);
  fail_after_ops_ = -1;
  short_write_keep_ = -1;
  fail_syncs_ = false;
}

Result<uint64_t> FaultInjectingFileSystem::PendingBytes(
    const std::string& path) const {
  MutexLock lock(mu_);
  const auto it = files_.find(path);
  if (it == files_.end()) return Status::NotFound("no such file: " + path);
  return static_cast<uint64_t>(it->second.data.size()) -
         it->second.durable_size;
}

}  // namespace easeml::wal
