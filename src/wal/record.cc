#include "wal/record.h"

#include "common/binary_io.h"
#include "common/crc32.h"

namespace easeml::wal {

std::string RecordTypeName(RecordType type) {
  switch (type) {
    case RecordType::kPad:
      return "pad";
    case RecordType::kRegisterPrior:
      return "register-prior";
    case RecordType::kAddTenant:
      return "add-tenant";
    case RecordType::kRemoveTenant:
      return "remove-tenant";
    case RecordType::kNext:
      return "next";
    case RecordType::kReport:
      return "report";
    case RecordType::kCancel:
      return "cancel";
  }
  return "invalid";
}

uint64_t FramedSize(uint64_t body_size) {
  const uint64_t raw = kRecordHeaderSize + 1 + 8 + body_size;
  return (raw + kRecordAlignment - 1) / kRecordAlignment * kRecordAlignment;
}

void AppendRecord(std::string* out, RecordType type, int64_t epoch,
                  std::string_view body) {
  // Serving hot path (one call per logged Next/Report): the CRC streams
  // over the type/epoch prefix and the body instead of materializing the
  // payload in a temporary — no allocation happens here beyond `out`'s
  // own growth.
  char prefix[9];
  prefix[0] = static_cast<char>(type);
  const uint64_t e = static_cast<uint64_t>(epoch);
  for (int i = 0; i < 8; ++i) {
    prefix[1 + i] = static_cast<char>((e >> (8 * i)) & 0xFF);
  }
  const std::string_view prefix_view(prefix, sizeof(prefix));
  const uint32_t crc = Crc32(body, Crc32(prefix_view));
  PutU32(out, MaskCrc32(crc));
  PutU32(out, static_cast<uint32_t>(sizeof(prefix) + body.size()));
  out->append(prefix, sizeof(prefix));
  out->append(body.data(), body.size());
  const uint64_t raw = kRecordHeaderSize + sizeof(prefix) + body.size();
  out->append(FramedSize(body.size()) - raw, '\0');
}

Result<LogScan> ScanLog(std::string_view log, int64_t start_offset,
                        int64_t start_epoch) {
  if (start_offset < 0 ||
      static_cast<uint64_t>(start_offset) > log.size() ||
      start_offset % kRecordAlignment != 0) {
    return Status::DataLoss(
        "wal scan: start offset " + std::to_string(start_offset) +
        " is outside the log or unaligned (log is " +
        std::to_string(log.size()) + " bytes) — the checkpoint references a "
        "log this is not");
  }
  LogScan scan;
  scan.last_epoch = start_epoch;
  uint64_t offset = static_cast<uint64_t>(start_offset);
  const auto stop = [&](std::string reason) {
    scan.valid_bytes = static_cast<int64_t>(offset);
    scan.truncated = offset < log.size();
    scan.truncate_reason = std::move(reason);
    return scan;
  };
  while (offset < log.size()) {
    const uint64_t remaining = log.size() - offset;
    if (remaining < kRecordHeaderSize + 9) {
      return stop("short remainder (" + std::to_string(remaining) +
                  " bytes cannot hold a record)");
    }
    std::string_view cursor = log.substr(offset);
    uint32_t masked_crc = 0;
    uint32_t len = 0;
    EASEML_RETURN_NOT_OK(GetU32(&cursor, &masked_crc));
    EASEML_RETURN_NOT_OK(GetU32(&cursor, &len));
    if (len < 9 || len > remaining - kRecordHeaderSize) {
      return stop("implausible payload length " + std::to_string(len));
    }
    const std::string_view payload = cursor.substr(0, len);
    if (Crc32(payload) != UnmaskCrc32(masked_crc)) {
      return stop("payload CRC mismatch");
    }
    std::string_view body = payload;
    uint8_t type_byte = 0;
    uint64_t epoch_bits = 0;
    EASEML_RETURN_NOT_OK(GetU8(&body, &type_byte));
    EASEML_RETURN_NOT_OK(GetU64(&body, &epoch_bits));
    if (type_byte > static_cast<uint8_t>(RecordType::kCancel)) {
      return stop("unknown record type " + std::to_string(type_byte));
    }
    const RecordType type = static_cast<RecordType>(type_byte);
    const int64_t epoch = static_cast<int64_t>(epoch_bits);
    if (type == RecordType::kPad) {
      if (epoch != 0) return stop("pad record with nonzero epoch");
    } else if (epoch != scan.last_epoch + 1) {
      // The CRC proves the record is intact, so a wrong epoch is not a torn
      // tail: records are MISSING before this one. Truncation cannot repair
      // a hole in the middle — refuse rather than replay a divergent
      // history.
      return Status::DataLoss(
          "wal scan: epoch gap at offset " + std::to_string(offset) +
          " (record carries epoch " + std::to_string(epoch) +
          " after epoch " + std::to_string(scan.last_epoch) +
          ") — records are missing; the log cannot be replayed");
    } else {
      scan.last_epoch = epoch;
    }
    Record record;
    record.type = type;
    record.epoch = epoch;
    record.body = std::string(body);
    record.offset = static_cast<int64_t>(offset);
    scan.records.push_back(std::move(record));
    offset += FramedSize(len - 9);
  }
  scan.valid_bytes = static_cast<int64_t>(offset);
  return scan;
}

void EncodeDurablePrior(std::string* out, const core::DurablePrior& p) {
  PutI32(out, p.num_arms);
  PutDouble(out, p.noise_variance);
  PutDoubleVec(out, p.mean);
  PutDoubleVec(out, p.gram);
}

Status DecodeDurablePrior(std::string_view* in, core::DurablePrior* p) {
  EASEML_RETURN_NOT_OK(GetI32(in, &p->num_arms));
  EASEML_RETURN_NOT_OK(GetDouble(in, &p->noise_variance));
  EASEML_RETURN_NOT_OK(GetDoubleVec(in, &p->mean));
  EASEML_RETURN_NOT_OK(GetDoubleVec(in, &p->gram));
  return Status::OK();
}

namespace {

Status CheckDrained(std::string_view rest, const char* what) {
  if (!rest.empty()) {
    return Status::DataLoss(std::string("wal record: trailing bytes after ") +
                            what + " body");
  }
  return Status::OK();
}

}  // namespace

void EncodeRegisterPrior(std::string* out, const RegisterPriorBody& b) {
  PutI32(out, b.prior_id);
  EncodeDurablePrior(out, b.prior);
}

Status DecodeRegisterPrior(std::string_view body, RegisterPriorBody* b) {
  EASEML_RETURN_NOT_OK(GetI32(&body, &b->prior_id));
  EASEML_RETURN_NOT_OK(DecodeDurablePrior(&body, &b->prior));
  return CheckDrained(body, "register-prior");
}

void EncodeAddTenant(std::string* out, const AddTenantBody& b) {
  PutI32(out, b.tenant);
  PutI32(out, b.prior_id);
  PutDoubleVec(out, b.costs);
}

Status DecodeAddTenant(std::string_view body, AddTenantBody* b) {
  EASEML_RETURN_NOT_OK(GetI32(&body, &b->tenant));
  EASEML_RETURN_NOT_OK(GetI32(&body, &b->prior_id));
  EASEML_RETURN_NOT_OK(GetDoubleVec(&body, &b->costs));
  return CheckDrained(body, "add-tenant");
}

void EncodeRemoveTenant(std::string* out, const RemoveTenantBody& b) {
  PutI32(out, b.tenant);
}

Status DecodeRemoveTenant(std::string_view body, RemoveTenantBody* b) {
  EASEML_RETURN_NOT_OK(GetI32(&body, &b->tenant));
  return CheckDrained(body, "remove-tenant");
}

void EncodeNext(std::string* out, const NextBody& b) {
  PutI32(out, b.tenant);
  PutI32(out, b.model);
  PutI64(out, b.ticket);
}

Status DecodeNext(std::string_view body, NextBody* b) {
  EASEML_RETURN_NOT_OK(GetI32(&body, &b->tenant));
  EASEML_RETURN_NOT_OK(GetI32(&body, &b->model));
  EASEML_RETURN_NOT_OK(GetI64(&body, &b->ticket));
  return CheckDrained(body, "next");
}

void EncodeReport(std::string* out, const ReportBody& b) {
  PutI64(out, b.ticket);
  PutI32(out, b.tenant);
  PutI32(out, b.model);
  PutDouble(out, b.accuracy);
}

Status DecodeReport(std::string_view body, ReportBody* b) {
  EASEML_RETURN_NOT_OK(GetI64(&body, &b->ticket));
  EASEML_RETURN_NOT_OK(GetI32(&body, &b->tenant));
  EASEML_RETURN_NOT_OK(GetI32(&body, &b->model));
  EASEML_RETURN_NOT_OK(GetDouble(&body, &b->accuracy));
  return CheckDrained(body, "report");
}

void EncodeCancel(std::string* out, const CancelBody& b) {
  PutI64(out, b.ticket);
  PutI32(out, b.tenant);
  PutI32(out, b.model);
}

Status DecodeCancel(std::string_view body, CancelBody* b) {
  EASEML_RETURN_NOT_OK(GetI64(&body, &b->ticket));
  EASEML_RETURN_NOT_OK(GetI32(&body, &b->tenant));
  EASEML_RETURN_NOT_OK(GetI32(&body, &b->model));
  return CheckDrained(body, "cancel");
}

}  // namespace easeml::wal
