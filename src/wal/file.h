#ifndef EASEML_WAL_FILE_H_
#define EASEML_WAL_FILE_H_

#include <cstdint>
#include <memory>
#include <string>
#include <string_view>

#include "common/status.h"

namespace easeml::wal {

/// Append-only file handle of the durability layer. `Append` buffers in
/// the OS (or the test double's pending set); `Sync` makes everything
/// appended so far durable against the failure model the filesystem
/// implements (power loss for POSIX fsync, scripted crashes for the fault
/// injector).
class WritableFile {
 public:
  virtual ~WritableFile() = default;

  virtual Status Append(std::string_view data) = 0;
  virtual Status Sync() = 0;
  virtual Status Close() = 0;
};

/// Minimal filesystem seam of the durability layer. `PosixFileSystem` is
/// the production implementation and the ONLY raw-I/O site in the tree
/// (easeml_lint rule `raw-file-io` keeps it that way);
/// `FaultInjectingFileSystem` is the in-memory double the kill-and-recover
/// battery scripts torn writes, bit flips and crash points through.
class FileSystem {
 public:
  virtual ~FileSystem() = default;

  /// Opens `path` for appending, creating it when absent.
  virtual Result<std::unique_ptr<WritableFile>> OpenAppendable(
      const std::string& path) = 0;

  /// Reads the whole file. NotFound when absent.
  virtual Result<std::string> ReadFile(const std::string& path) = 0;

  virtual Result<bool> Exists(const std::string& path) = 0;

  /// Shrinks `path` to `size` bytes (recovery cutting a torn tail).
  virtual Status Truncate(const std::string& path, uint64_t size) = 0;

  /// Atomically replaces `to` with `from` — the checkpoint commit step: a
  /// crash leaves either the old checkpoint or the new one, never a
  /// partial file under the final name.
  virtual Status Rename(const std::string& from, const std::string& to) = 0;

  virtual Status Delete(const std::string& path) = 0;

  /// Creates `path` (OK when it already exists).
  virtual Status CreateDir(const std::string& path) = 0;

  /// Makes a completed Rename/Delete in `dir` durable (directory fsync).
  virtual Status SyncDir(const std::string& dir) = 0;
};

/// The production filesystem (thin POSIX wrappers). Process-wide,
/// stateless, never deleted.
FileSystem* GetPosixFileSystem();

}  // namespace easeml::wal

#endif  // EASEML_WAL_FILE_H_
