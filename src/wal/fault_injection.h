#ifndef EASEML_WAL_FAULT_INJECTION_H_
#define EASEML_WAL_FAULT_INJECTION_H_

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "common/thread_annotations.h"
#include "wal/file.h"

namespace easeml::wal {

/// In-memory filesystem with scripted faults — the crash harness the
/// kill-and-recover battery drives the durability stack through.
///
/// Failure model: every file tracks its VISIBLE bytes (what reads and the
/// running process observe — the page cache) and its DURABLE size (the
/// prefix guaranteed to survive a crash — what fsync has pinned). `Append`
/// extends the visible bytes; `WritableFile::Sync` advances the durable
/// size to the visible end; a scripted crash rolls every file back to its
/// durable prefix, exactly the contract POSIX fsync gives over power loss.
/// Appends are strictly sequential, so the unsynced region is always a
/// suffix.
///
/// Scripted faults (all methods are thread-safe):
///   - `ArmFailAfterOps(n)`: the next n mutating operations (Append/Sync)
///     succeed, every later one fails with Unavailable — a fail-stop crash
///     point. Sweeping n across a workload visits every op boundary.
///   - `CrashDropPending()`: power loss — visible state rolls back to the
///     durable prefix everywhere.
///   - `CrashKeepPendingPrefix(path, n)`: torn write — `path` keeps n bytes
///     of its unsynced suffix (they become durable mid-record), every other
///     file drops its pending bytes.
///   - `FlipDurableBit(path, byte, bit)`: silent medium corruption.
///   - `ShortWriteNextAppend(keep)`: the next Append persists only its
///     first `keep` bytes, then fails.
///   - `FailSyncs(true)`: syncs fail (device error) without losing data.
///
/// Renames are modeled atomic and immediately durable (the checkpoint
/// commit relies on atomicity; directory-entry durability is POSIX noise
/// the battery does not script).
class FaultInjectingFileSystem final : public FileSystem {
 public:
  FaultInjectingFileSystem() = default;

  // --- FileSystem -----------------------------------------------------------
  Result<std::unique_ptr<WritableFile>> OpenAppendable(
      const std::string& path) override;
  Result<std::string> ReadFile(const std::string& path) override;
  Result<bool> Exists(const std::string& path) override;
  Status Truncate(const std::string& path, uint64_t size) override;
  Status Rename(const std::string& from, const std::string& to) override;
  Status Delete(const std::string& path) override;
  Status CreateDir(const std::string& path) override;
  Status SyncDir(const std::string& dir) override;

  // --- Fault script ---------------------------------------------------------

  /// After `n` more successful mutating ops, every Append/Sync fails.
  /// Negative disarms.
  void ArmFailAfterOps(int64_t n);

  /// Count of mutating ops (Appends + Syncs) performed so far — the
  /// battery measures a workload once, then sweeps crash points over the
  /// observed count.
  int64_t ops() const;

  void CrashDropPending();
  void CrashKeepPendingPrefix(const std::string& path, uint64_t keep);
  Status FlipDurableBit(const std::string& path, uint64_t byte_index,
                        int bit);
  void ShortWriteNextAppend(uint64_t keep);
  void FailSyncs(bool fail);

  /// Clears every armed fault (crash effects already applied persist).
  void ClearFaults();

  /// Unsynced byte count of `path` (0 when absent) — test assertions.
  Result<uint64_t> PendingBytes(const std::string& path) const;

 private:
  friend class FaultInjectingFile;

  struct FileState {
    std::string data;           // visible bytes (page cache view)
    uint64_t durable_size = 0;  // crash-surviving prefix length
  };

  /// Charges one mutating op against the fail-after script. Returns the
  /// injected failure once the budget is spent.
  Status ChargeOp() EASEML_REQUIRES(mu_);

  Status AppendLocked(const std::string& path, std::string_view data)
      EASEML_REQUIRES(mu_);
  Status SyncLocked(const std::string& path) EASEML_REQUIRES(mu_);

  mutable Mutex mu_;
  std::map<std::string, FileState> files_ EASEML_GUARDED_BY(mu_);
  std::map<std::string, bool> dirs_ EASEML_GUARDED_BY(mu_);
  int64_t ops_ EASEML_GUARDED_BY(mu_) = 0;
  int64_t fail_after_ops_ EASEML_GUARDED_BY(mu_) = -1;  // -1 = disarmed
  int64_t short_write_keep_ EASEML_GUARDED_BY(mu_) = -1;
  bool fail_syncs_ EASEML_GUARDED_BY(mu_) = false;
};

}  // namespace easeml::wal

#endif  // EASEML_WAL_FAULT_INJECTION_H_
