#ifndef EASEML_WAL_SELECTOR_WAL_H_
#define EASEML_WAL_SELECTOR_WAL_H_

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "common/thread_annotations.h"
#include "core/durability_log.h"
#include "gp/shared_prior_gp.h"
#include "wal/file.h"
#include "wal/record.h"

namespace easeml::wal {

struct SelectorWalOptions {
  /// What a returned Sync() promises.
  enum class Durability {
    /// write + fsync: acknowledged mutations survive power loss. The
    /// default, and what the fault-injection battery runs against.
    kFsync,
    /// write only (no fsync): acknowledged mutations survive a process
    /// crash but not power loss — the classic relaxed mode
    /// (innodb_flush_log_at_trx_commit=2). Still one write() per ack.
    kBuffered,
    /// Group-commit: acks return from the process buffer and the buffer
    /// reaches the file only at the flush threshold (and at
    /// seal/checkpoint, which sync hard regardless of mode) — the
    /// innodb_flush_log_at_trx_commit=0 analog. The serving hot path
    /// never enters the kernel, so this is what the <10% Report-overhead
    /// bench gate measures. A crash loses at most flush_threshold bytes
    /// of acknowledged tail; recovery truncates cleanly at the tear (the
    /// kill-and-recover battery's drop-pending scenario).
    kDeferred,
  };

  Durability durability = Durability::kFsync;

  /// Appends accumulate in a process-local buffer and are written to the
  /// file in large chunks: whenever the buffer crosses this threshold, and
  /// at every Sync.
  uint64_t flush_threshold = 64 * 1024;
};

/// The selector's write-ahead log: a `core::DurabilityLog` over a
/// `FileSystem`.
///
/// Framing and epoch discipline live in wal/record.h. Group commit falls
/// out of the buffering: every Log* appends to the buffer and a Sync whose
/// records are already durable returns without touching the file, so one
/// write()+fsync() covers all records appended since the previous sync.
/// All engine-side calls arrive under the engine's synchronization (see
/// `SelectorOptions::wal`); the internal spin lock exists so `position()`
/// and checkpoint cutting can be called from other threads.
///
/// Prior registry: `LogAddTenant` deduplicates priors by pointer identity,
/// emitting one kRegisterPrior record (full Gram/mean/noise, its own
/// epoch) the first time each prior is seen. Registered priors are pinned
/// by shared_ptr so an address can never be reused for a different prior.
///
/// Lifecycle: `Open` starts a FRESH log (the file must be absent or
/// empty); `CreateSuspended` + `Resume` is the recovery path — while
/// suspended every Log*/Sync is a no-op, so replaying records through the
/// engine's public API (which calls back into this object) does not
/// double-log, and `Resume(epoch, offset, priors)` then opens the file and
/// continues appending where the recovered log ends.
class SelectorWal final : public core::DurabilityLog {
 public:
  /// Fresh log at `path`. Fails with FailedPrecondition when a non-empty
  /// file exists (recover through wal::OpenOrRecover instead).
  static Result<std::unique_ptr<SelectorWal>> Open(FileSystem* fs,
                                                   const std::string& path,
                                                   SelectorWalOptions options);

  /// Suspended log for recovery replay (no file handle yet; every
  /// operation is a no-op until `Resume`).
  static std::unique_ptr<SelectorWal> CreateSuspended(
      FileSystem* fs, const std::string& path, SelectorWalOptions options);

  // --- core::DurabilityLog --------------------------------------------------
  Status LogAddTenant(int tenant,
                      const std::shared_ptr<const gp::SharedGpPrior>& prior,
                      const std::vector<double>& costs) override;
  Status LogRemoveTenant(int tenant) override;
  Status LogNext(int tenant, int model, int64_t ticket) override;
  Status LogReport(int64_t ticket, int tenant, int model,
                   double accuracy) override;
  Status LogCancel(int64_t ticket, int tenant, int model) override;
  Status Sync() override;
  bool SyncIsDeferred() const override;
  Position position() const override;

  /// Flushes the in-process buffer and fsyncs the file regardless of the
  /// durability mode. The checkpoint path: every byte a published
  /// checkpoint references must be durable first, even under kDeferred,
  /// whose per-ack Sync defers all I/O.
  Status SyncHard();

  /// Ends suspended mode at the recovered log end: records resume at
  /// `epoch + 1` / byte `offset` (the file must be exactly `offset` bytes —
  /// recovery truncated the torn tail first), and `priors` re-seeds the
  /// registry with the already-registered priors in id order.
  Status Resume(int64_t epoch, int64_t offset,
                std::vector<std::shared_ptr<const gp::SharedGpPrior>> priors);

  /// Appends PAD records until the log offset is a 4 KiB multiple (no-op
  /// when it already is), so a checkpoint cut right after references a
  /// block-aligned record boundary. The pads are buffered like any append;
  /// the following Sync makes them real.
  Status SealToBlockBoundary();

  /// The registered priors, in id order — a checkpoint stores them so
  /// recovery can resolve prior ids in records replayed on top of it.
  std::vector<std::shared_ptr<const gp::SharedGpPrior>> RegisteredPriors()
      const;

  bool suspended() const;

 private:
  SelectorWal(FileSystem* fs, std::string path, SelectorWalOptions options,
              bool suspended);

  /// A hot-path record (Next/Report/Cancel/RemoveTenant) whose encoding is
  /// postponed until the next drain: Log* assigns the epoch and logical
  /// offset immediately (so `position()` never needs a drain) but only
  /// stores this POD slot — the framing, CRC, and buffer append all happen
  /// batched in `DrainPending`. One mutex pass and zero serialization per
  /// serving-path ack.
  struct PendingOp {
    RecordType type;
    int64_t epoch;
    int32_t tenant;
    int32_t model;
    int64_t ticket;
    double accuracy;
  };

  /// Encodes and frames every pending op into the buffer, in epoch order.
  /// Must run before anything else appends to the buffer (AppendFrame does
  /// it first thing) and before the buffer is flushed.
  void DrainPending() EASEML_REQUIRES(mu_);

  /// Drains pending ops, then frames and buffers one record at the next
  /// epoch; flushes the buffer through `file_` when it crosses the
  /// threshold.
  Status AppendFrame(RecordType type, std::string_view body)
      EASEML_REQUIRES(mu_);

  /// Pending ops drain into the encode buffer every this-many slots (64
  /// slots ≈ 2.5 KiB: small enough that the array stays L1-resident and
  /// its lines are reused warm, large enough that encode+CRC batch well).
  static constexpr size_t kDrainBatchOps = 64;

  /// Queues one hot-path record; drains at the batch size and flushes when
  /// the logical buffered size (encoded buffer + pending ops) crosses the
  /// threshold. `body_size` is the record's fixed encoded-body size, needed
  /// to advance `offset_` without encoding.
  Status QueueOp(const PendingOp& op, uint64_t body_size)
      EASEML_REQUIRES(mu_);

  /// Writes the buffer to the file (without syncing).
  Status FlushBuffer() EASEML_REQUIRES(mu_);

  FileSystem* const fs_;
  const std::string path_;
  const SelectorWalOptions options_;

  // Hot cluster: the lock byte is declared immediately before the fields
  // every QueueOp touches (epoch, offset, pending bytes, the pending
  // vector header), so the per-ack slot push dirties as few cache lines as
  // possible — at T=1e5 tenants the engine evicts this object between
  // calls and the misses, not the work, are the cost. A SpinLock (not a
  // Mutex) because the critical sections are nanosecond-scale slot pushes;
  // the occasional drain/flush holder is yield-spun on, never waited on.
  mutable SpinLock mu_;
  bool suspended_ EASEML_GUARDED_BY(mu_);
  int64_t last_epoch_ EASEML_GUARDED_BY(mu_) = 0;
  int64_t durable_epoch_ EASEML_GUARDED_BY(mu_) = 0;
  int64_t offset_ EASEML_GUARDED_BY(mu_) = 0;  // logical end (incl. buffer)
  uint64_t pending_bytes_ EASEML_GUARDED_BY(mu_) = 0;
  /// Hot-path records awaiting encoding (see PendingOp). Logically part of
  /// the buffer: every drain point encodes these ahead of any new append,
  /// and `pending_bytes_` counts their framed size toward the threshold.
  std::vector<PendingOp> pending_ EASEML_GUARDED_BY(mu_);
  std::string buffer_ EASEML_GUARDED_BY(mu_);
  /// Reusable body-encoding scratch for DrainPending: clear() keeps the
  /// capacity, so draining allocates nothing beyond the buffer's growth.
  std::string body_scratch_ EASEML_GUARDED_BY(mu_);
  std::unique_ptr<WritableFile> file_ EASEML_GUARDED_BY(mu_);
  std::map<const gp::SharedGpPrior*, int> prior_ids_ EASEML_GUARDED_BY(mu_);
  std::vector<std::shared_ptr<const gp::SharedGpPrior>> priors_
      EASEML_GUARDED_BY(mu_);
};

}  // namespace easeml::wal

#endif  // EASEML_WAL_SELECTOR_WAL_H_
