#include "wal/file.h"

// The one raw-I/O translation unit in the tree: everything below maps the
// FileSystem seam onto POSIX calls. easeml_lint's `raw-file-io` rule
// errors on these identifiers anywhere outside src/wal/.
#include <fcntl.h>
#include <sys/stat.h>
#include <sys/types.h>
#include <unistd.h>

#include <cerrno>
#include <cstdio>
#include <cstring>

namespace easeml::wal {

namespace {

Status PosixError(const std::string& context, int err) {
  return Status::Internal(context + ": " + std::strerror(err));
}

class PosixWritableFile final : public WritableFile {
 public:
  explicit PosixWritableFile(int fd, std::string path)
      : fd_(fd), path_(std::move(path)) {}

  ~PosixWritableFile() override {
    if (fd_ >= 0) ::close(fd_);
  }

  Status Append(std::string_view data) override {
    if (fd_ < 0) return Status::FailedPrecondition("Append: file is closed");
    const char* p = data.data();
    size_t left = data.size();
    while (left > 0) {
      const ssize_t n = ::write(fd_, p, left);
      if (n < 0) {
        if (errno == EINTR) continue;
        return PosixError("write " + path_, errno);
      }
      p += n;
      left -= static_cast<size_t>(n);
    }
    return Status::OK();
  }

  Status Sync() override {
    if (fd_ < 0) return Status::FailedPrecondition("Sync: file is closed");
    if (::fsync(fd_) != 0) return PosixError("fsync " + path_, errno);
    return Status::OK();
  }

  Status Close() override {
    if (fd_ < 0) return Status::OK();
    const int fd = fd_;
    fd_ = -1;
    if (::close(fd) != 0) return PosixError("close " + path_, errno);
    return Status::OK();
  }

 private:
  int fd_;
  std::string path_;
};

class PosixFileSystem final : public FileSystem {
 public:
  Result<std::unique_ptr<WritableFile>> OpenAppendable(
      const std::string& path) override {
    const int fd = ::open(path.c_str(), O_WRONLY | O_CREAT | O_APPEND, 0644);
    if (fd < 0) return PosixError("open " + path, errno);
    return std::unique_ptr<WritableFile>(new PosixWritableFile(fd, path));
  }

  Result<std::string> ReadFile(const std::string& path) override {
    const int fd = ::open(path.c_str(), O_RDONLY);
    if (fd < 0) {
      if (errno == ENOENT) return Status::NotFound("no such file: " + path);
      return PosixError("open " + path, errno);
    }
    std::string out;
    char buf[1 << 16];
    for (;;) {
      const ssize_t n = ::read(fd, buf, sizeof(buf));
      if (n < 0) {
        if (errno == EINTR) continue;
        const int err = errno;
        ::close(fd);
        return PosixError("read " + path, err);
      }
      if (n == 0) break;
      out.append(buf, static_cast<size_t>(n));
    }
    ::close(fd);
    return out;
  }

  Result<bool> Exists(const std::string& path) override {
    struct stat st;
    if (::stat(path.c_str(), &st) == 0) return true;
    if (errno == ENOENT) return false;
    return PosixError("stat " + path, errno);
  }

  Status Truncate(const std::string& path, uint64_t size) override {
    if (::truncate(path.c_str(), static_cast<off_t>(size)) != 0) {
      return PosixError("truncate " + path, errno);
    }
    return Status::OK();
  }

  Status Rename(const std::string& from, const std::string& to) override {
    if (::rename(from.c_str(), to.c_str()) != 0) {
      return PosixError("rename " + from + " -> " + to, errno);
    }
    return Status::OK();
  }

  Status Delete(const std::string& path) override {
    if (::unlink(path.c_str()) != 0) {
      if (errno == ENOENT) return Status::NotFound("no such file: " + path);
      return PosixError("unlink " + path, errno);
    }
    return Status::OK();
  }

  Status CreateDir(const std::string& path) override {
    if (::mkdir(path.c_str(), 0755) != 0 && errno != EEXIST) {
      return PosixError("mkdir " + path, errno);
    }
    return Status::OK();
  }

  Status SyncDir(const std::string& dir) override {
    const int fd = ::open(dir.c_str(), O_RDONLY | O_DIRECTORY);
    if (fd < 0) return PosixError("open dir " + dir, errno);
    Status status;
    if (::fsync(fd) != 0) status = PosixError("fsync dir " + dir, errno);
    ::close(fd);
    return status;
  }
};

}  // namespace

FileSystem* GetPosixFileSystem() {
  // Leaked intentionally: stateless, and callers may sync during static
  // destruction.
  static auto* fs = new PosixFileSystem;
  return fs;
}

}  // namespace easeml::wal
