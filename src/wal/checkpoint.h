#ifndef EASEML_WAL_CHECKPOINT_H_
#define EASEML_WAL_CHECKPOINT_H_

#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "common/status.h"
#include "core/durable_state.h"
#include "core/multi_tenant_selector.h"
#include "obs/snapshot.h"
#include "wal/selector_wal.h"

namespace easeml::wal {

/// File layout inside a durability directory.
std::string LogPath(const std::string& dir);
std::string CheckpointPath(const std::string& dir);

/// Advisory observability metadata cut from the snapshot plane's published
/// blocks at checkpoint time. Published blocks LAG the engine (shards
/// publish on an interval), so recovery can only cross-check inequalities:
/// the snapshot totals must not be AHEAD of the restored engine state —
/// if they are, the checkpoint mixes generations and is rejected.
struct CheckpointObsMetadata {
  uint64_t fleet_epoch = 0;
  obs::ShardAggregates totals;
};

/// A checkpoint: the complete quiesced engine state, the WAL's prior
/// registry at the cut (so records replayed ON TOP of the checkpoint can
/// resolve prior ids whose registration records lie before it), and the
/// optional obs metadata. `state.wal_epoch`/`state.wal_offset` name the
/// exact log suffix replay applies.
struct Checkpoint {
  core::DurableSelectorState state;
  std::vector<core::DurablePrior> wal_priors;  // index == WAL prior id
  bool has_obs = false;
  CheckpointObsMetadata obs;
};

/// Bit-exact encoding of the engine state (all doubles as IEEE-754 bit
/// patterns). Public because the recovery battery compares two engines by
/// encoding each one's CaptureDurableState and demanding equal bytes.
void EncodeDurableSelectorState(std::string* out,
                                const core::DurableSelectorState& s);
Status DecodeDurableSelectorState(std::string_view* in,
                                  core::DurableSelectorState* s);

/// Whole-file encoding: magic "EZCKPT01", format version, CRC-framed body.
std::string EncodeCheckpoint(const Checkpoint& cp);
Result<Checkpoint> DecodeCheckpoint(std::string_view bytes);

/// Durably publishes `cp` in `dir`: write to a temporary name, sync,
/// atomically rename over the final name, sync the directory. A crash at
/// any point leaves either the previous checkpoint or this one.
Status WriteCheckpoint(FileSystem* fs, const std::string& dir,
                       const Checkpoint& cp);

/// The current checkpoint, nullopt when none exists OR the file fails
/// validation (magic/version/CRC/decode) — a corrupt checkpoint is not
/// fatal, recovery falls back to replaying the log from the beginning.
Result<std::optional<Checkpoint>> ReadCheckpoint(FileSystem* fs,
                                                 const std::string& dir);

/// Cuts a checkpoint of the running engine: seals the log to a block
/// boundary, captures the quiesced engine state (the capture embeds the
/// sealed log position), syncs the log so every byte the checkpoint
/// references is durable first, and publishes atomically. `plane` (may be
/// null) contributes the advisory obs metadata from its published blocks.
Status CutCheckpoint(FileSystem* fs, const std::string& dir, SelectorWal* wal,
                     const core::MultiTenantSelector& selector,
                     const obs::SnapshotPlane* plane);

}  // namespace easeml::wal

#endif  // EASEML_WAL_CHECKPOINT_H_
