#include "wal/recovery.h"

#include <utility>
#include <vector>

#include "gp/shared_prior_gp.h"
#include "linalg/matrix.h"
#include "shard/sharded_selector.h"
#include "wal/record.h"

namespace easeml::wal {

namespace {

Result<std::shared_ptr<const gp::SharedGpPrior>> RebuildPrior(
    const core::DurablePrior& p) {
  EASEML_ASSIGN_OR_RETURN(
      linalg::Matrix gram,
      linalg::Matrix::FromRowMajor(p.num_arms, p.num_arms, p.gram));
  return gp::MakeSharedGpPrior(std::move(gram), p.noise_variance, p.mean);
}

bool SamePriorPayload(const gp::SharedGpPrior& have,
                      const core::DurablePrior& logged) {
  return have.num_arms() == logged.num_arms &&
         have.noise_variance == logged.noise_variance &&
         have.mean == logged.mean && have.gram.data() == logged.gram;
}

Status ReplayFailure(const Record& record, const Status& status) {
  return Status::DataLoss(
      "wal replay: " + RecordTypeName(record.type) + " record at offset " +
      std::to_string(record.offset) + " (epoch " +
      std::to_string(record.epoch) +
      ") was acknowledged but does not replay: " + status.ToString());
}

/// The obs metadata is cut from published snapshot blocks, which LAG the
/// engine — so its totals can run BEHIND the restored state but never
/// ahead of it. Ahead means the checkpoint mixes two generations of
/// state (e.g. a snapshot from a different run) and must be rejected.
Status CrossCheckObs(const Checkpoint& cp) {
  if (!cp.has_obs) return Status::OK();
  int64_t rounds = 0;
  for (const core::DurableTenant& t : cp.state.tenants) {
    rounds += t.user.rounds_served;
  }
  if (cp.obs.totals.rounds > rounds ||
      cp.obs.totals.tenants > static_cast<int64_t>(cp.state.tenants.size())) {
    return Status::DataLoss(
        "checkpoint: obs snapshot totals (tenants=" +
        std::to_string(cp.obs.totals.tenants) +
        ", rounds=" + std::to_string(cp.obs.totals.rounds) +
        ") are AHEAD of the engine state (tenants=" +
        std::to_string(cp.state.tenants.size()) +
        ", rounds=" + std::to_string(rounds) +
        ") — the checkpoint mixes generations");
  }
  return Status::OK();
}

}  // namespace

Result<RecoveredSelector> OpenOrRecover(FileSystem* fs, const std::string& dir,
                                        core::SelectorOptions options,
                                        SelectorWalOptions wal_options) {
  if (options.wal != nullptr) {
    return Status::InvalidArgument(
        "OpenOrRecover: options.wal must be null — the recovered WAL is "
        "wired in here");
  }
  EASEML_RETURN_NOT_OK(fs->CreateDir(dir));

  RecoveredSelector out;
  out.wal = SelectorWal::CreateSuspended(fs, LogPath(dir), wal_options);
  options.wal = out.wal.get();
  // Replay drives the engine's PUBLIC API, re-running the exact
  // validation the original run passed; the WAL is suspended, so the
  // hooks inside those calls do not double-log.
  EASEML_ASSIGN_OR_RETURN(out.selector, shard::MakeSelector(options));

  EASEML_ASSIGN_OR_RETURN(std::optional<Checkpoint> checkpoint,
                          ReadCheckpoint(fs, dir));

  std::string log;
  EASEML_ASSIGN_OR_RETURN(const bool log_exists, fs->Exists(LogPath(dir)));
  if (log_exists) {
    EASEML_ASSIGN_OR_RETURN(log, fs->ReadFile(LogPath(dir)));
  }

  // Prior registry for replay: WAL prior id -> shared prior. Seeded from
  // the checkpoint (whose wal_priors snapshot the registry at the cut, so
  // ADD_TENANT records after it resolve ids registered before it) and
  // extended by replayed REGISTER_PRIOR records.
  std::vector<std::shared_ptr<const gp::SharedGpPrior>> registry;
  int64_t start_epoch = 0;
  int64_t start_offset = 0;

  if (checkpoint.has_value() &&
      checkpoint->state.wal_offset > static_cast<int64_t>(log.size())) {
    // The checkpoint references log bytes that never became durable (a
    // crash between publishing it and syncing the log cannot happen —
    // CutCheckpoint syncs first — but a copied-around directory can get
    // here). The log is never truncated except at its torn tail, so full
    // replay from 0 reproduces everything; ignore the checkpoint.
    checkpoint.reset();
  }

  if (checkpoint.has_value()) {
    EASEML_RETURN_NOT_OK(CrossCheckObs(*checkpoint));
    EASEML_RETURN_NOT_OK(out.selector->RestoreDurableState(checkpoint->state));
    registry.reserve(checkpoint->wal_priors.size());
    for (const core::DurablePrior& p : checkpoint->wal_priors) {
      EASEML_ASSIGN_OR_RETURN(auto prior, RebuildPrior(p));
      registry.push_back(std::move(prior));
    }
    start_epoch = checkpoint->state.wal_epoch;
    start_offset = checkpoint->state.wal_offset;
    out.stats.used_checkpoint = true;
    out.stats.checkpoint_epoch = start_epoch;
  }

  EASEML_ASSIGN_OR_RETURN(const LogScan scan,
                          ScanLog(log, start_offset, start_epoch));

  for (const Record& record : scan.records) {
    switch (record.type) {
      case RecordType::kPad:
        continue;
      case RecordType::kRegisterPrior: {
        RegisterPriorBody b;
        EASEML_RETURN_NOT_OK(DecodeRegisterPrior(record.body, &b));
        if (b.prior_id == static_cast<int>(registry.size())) {
          EASEML_ASSIGN_OR_RETURN(auto prior, RebuildPrior(b.prior));
          registry.push_back(std::move(prior));
        } else if (b.prior_id >= 0 &&
                   b.prior_id < static_cast<int>(registry.size())) {
          // Benign: the checkpoint's registry snapshot ran AHEAD of its
          // log position (the prior registered between the seal and the
          // capture), so the record re-describes a seeded entry. Verify
          // it is really the same prior and keep the existing object.
          if (!SamePriorPayload(*registry[b.prior_id], b.prior)) {
            return Status::DataLoss(
                "wal replay: register-prior record at offset " +
                std::to_string(record.offset) + " re-registers id " +
                std::to_string(b.prior_id) + " with a DIFFERENT prior");
          }
        } else {
          return Status::DataLoss(
              "wal replay: register-prior record at offset " +
              std::to_string(record.offset) + " carries id " +
              std::to_string(b.prior_id) + " but the registry holds " +
              std::to_string(registry.size()) + " priors");
        }
        break;
      }
      case RecordType::kAddTenant: {
        AddTenantBody b;
        EASEML_RETURN_NOT_OK(DecodeAddTenant(record.body, &b));
        if (b.prior_id < 0 || b.prior_id >= static_cast<int>(registry.size())) {
          return Status::DataLoss(
              "wal replay: add-tenant record at offset " +
              std::to_string(record.offset) + " names unregistered prior id " +
              std::to_string(b.prior_id));
        }
        Result<int> tenant =
            out.selector->AddTenant(registry[b.prior_id], b.costs);
        if (!tenant.ok()) return ReplayFailure(record, tenant.status());
        if (*tenant != b.tenant) {
          return Status::DataLoss(
              "wal replay: add-tenant record at offset " +
              std::to_string(record.offset) + " logged tenant id " +
              std::to_string(b.tenant) + " but replay assigned " +
              std::to_string(*tenant) + " — determinism violation");
        }
        break;
      }
      case RecordType::kRemoveTenant: {
        RemoveTenantBody b;
        EASEML_RETURN_NOT_OK(DecodeRemoveTenant(record.body, &b));
        const Status status = out.selector->RemoveTenant(b.tenant);
        if (!status.ok()) return ReplayFailure(record, status);
        break;
      }
      case RecordType::kNext: {
        NextBody b;
        EASEML_RETURN_NOT_OK(DecodeNext(record.body, &b));
        Result<core::MultiTenantSelector::Assignment> a = out.selector->Next();
        if (!a.ok()) return ReplayFailure(record, a.status());
        if (a->tenant != b.tenant || a->model != b.model ||
            a->id != b.ticket) {
          return Status::DataLoss(
              "wal replay: next record at offset " +
              std::to_string(record.offset) + " logged (tenant " +
              std::to_string(b.tenant) + ", model " + std::to_string(b.model) +
              ", ticket " + std::to_string(b.ticket) +
              ") but replay picked (tenant " + std::to_string(a->tenant) +
              ", model " + std::to_string(a->model) + ", ticket " +
              std::to_string(a->id) + ") — determinism violation");
        }
        break;
      }
      case RecordType::kReport: {
        ReportBody b;
        EASEML_RETURN_NOT_OK(DecodeReport(record.body, &b));
        core::MultiTenantSelector::Assignment a;
        a.tenant = b.tenant;
        a.model = b.model;
        a.id = b.ticket;
        const Status status = out.selector->Report(a, b.accuracy);
        if (!status.ok()) return ReplayFailure(record, status);
        break;
      }
      case RecordType::kCancel: {
        CancelBody b;
        EASEML_RETURN_NOT_OK(DecodeCancel(record.body, &b));
        core::MultiTenantSelector::Assignment a;
        a.tenant = b.tenant;
        a.model = b.model;
        a.id = b.ticket;
        const Status status = out.selector->Cancel(a);
        if (!status.ok()) return ReplayFailure(record, status);
        break;
      }
    }
    ++out.stats.replayed_records;
  }

  if (scan.truncated) {
    // Tail repair: everything from valid_bytes on is a torn write that
    // was never acknowledged. Cut it so the resumed log appends from a
    // clean record boundary.
    EASEML_RETURN_NOT_OK(fs->Truncate(LogPath(dir), scan.valid_bytes));
    out.stats.truncated_bytes =
        static_cast<int64_t>(log.size()) - scan.valid_bytes;
    out.stats.truncate_reason = scan.truncate_reason;
  }

  EASEML_RETURN_NOT_OK(
      out.wal->Resume(scan.last_epoch, scan.valid_bytes, std::move(registry)));
  out.stats.last_epoch = scan.last_epoch;
  out.stats.log_bytes = scan.valid_bytes;
  return out;
}

}  // namespace easeml::wal
