#ifndef EASEML_DATA_MODEL_FEATURES_H_
#define EASEML_DATA_MODEL_FEATURES_H_

#include <vector>

#include "common/status.h"
#include "data/dataset.h"

namespace easeml::data {

/// Feature vectors for the GP kernel (paper, Appendix A): model j is
/// represented by its "quality vector" — its accuracy on each training user.
/// `features[j]` has one entry per element of `train_users`.
/// Fails on empty or out-of-range `train_users`.
Result<std::vector<std::vector<double>>> ComputeModelFeatures(
    const Dataset& ds, const std::vector<int>& train_users);

/// GP realizations for hyperparameter tuning: one length-K quality vector
/// per training user (user's accuracy across all models).
Result<std::vector<std::vector<double>>> ComputeRealizations(
    const Dataset& ds, const std::vector<int>& train_users);

/// Empirical-Bayes prior mean per model: its average quality over the
/// training users. Exposed for analysis; note that the paper's algorithm
/// does NOT use a per-model prior mean — transfer happens through the
/// kernel only (mu_0 = 0 convention, Appendix A).
Result<std::vector<double>> ComputePriorMean(
    const Dataset& ds, const std::vector<int>& train_users);

/// Scalar centering constant: the global mean quality over the training
/// users and all models. The experiment runner uses mu_0 = c * 1 (a
/// constant vector), which is equivalent to centering rewards as
/// scikit-learn's normalize_y does, while keeping all per-model knowledge
/// in the kernel as the paper prescribes.
Result<double> ComputeGlobalMeanQuality(const Dataset& ds,
                                        const std::vector<int>& train_users);

}  // namespace easeml::data

#endif  // EASEML_DATA_MODEL_FEATURES_H_
