#ifndef EASEML_DATA_DATASET_H_
#define EASEML_DATA_DATASET_H_

#include <string>
#include <vector>

#include "common/rng.h"
#include "common/status.h"
#include "linalg/matrix.h"

namespace easeml::data {

/// A multi-tenant model-selection benchmark dataset (paper, Figure 8).
///
/// Rows are users (tenants), columns are candidate models. `quality(i, j)` is
/// the accuracy model j achieves on user i's task, in [0, 1]; `cost(i, j)` is
/// the execution time of training model j for user i, strictly positive.
/// Model metadata (citation counts, publication year) feeds the MOSTCITED and
/// MOSTRECENT heuristics of Section 5.2.
struct Dataset {
  std::string name;
  std::vector<std::string> user_names;
  std::vector<std::string> model_names;
  linalg::Matrix quality;  // num_users x num_models
  linalg::Matrix cost;     // num_users x num_models

  /// Per-model metadata; empty when not applicable.
  std::vector<int> citations;
  std::vector<int> publication_year;

  int num_users() const { return quality.rows(); }
  int num_models() const { return quality.cols(); }

  /// Best achievable accuracy for user i: max_j quality(i, j).
  double BestQuality(int user) const;

  /// Index of the best model for user i (lowest index on ties).
  int BestModel(int user) const;

  /// Sum of all training costs (the denominator of "% of total cost").
  double TotalCost() const;

  /// Structural validation: consistent dimensions, qualities in [0, 1],
  /// strictly positive costs.
  Status Validate() const;

  /// Returns a new dataset restricted to `user_indices` (in the given
  /// order). Fails on out-of-range indices.
  Result<Dataset> SelectUsers(const std::vector<int>& user_indices) const;
};

/// Fills `ds.cost` with i.i.d. uniform costs in [lo, hi); the synthetic-cost
/// recipe used for 179CLASSIFIER and the SYN datasets (Section 5.1). A small
/// positive floor keeps the cost-aware index sqrt(beta/c) finite.
void AssignUniformCosts(Dataset& ds, Rng& rng, double lo = 0.01,
                        double hi = 1.0);

}  // namespace easeml::data

#endif  // EASEML_DATA_DATASET_H_
