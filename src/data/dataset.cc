#include "data/dataset.h"

#include <algorithm>

#include "common/logging.h"

namespace easeml::data {

double Dataset::BestQuality(int user) const {
  EASEML_CHECK(user >= 0 && user < num_users());
  double best = 0.0;
  for (int j = 0; j < num_models(); ++j) {
    best = std::max(best, quality(user, j));
  }
  return best;
}

int Dataset::BestModel(int user) const {
  EASEML_CHECK(user >= 0 && user < num_users());
  int best = 0;
  for (int j = 1; j < num_models(); ++j) {
    if (quality(user, j) > quality(user, best)) best = j;
  }
  return best;
}

double Dataset::TotalCost() const {
  double acc = 0.0;
  for (int i = 0; i < num_users(); ++i) {
    for (int j = 0; j < num_models(); ++j) acc += cost(i, j);
  }
  return acc;
}

Status Dataset::Validate() const {
  const int n = quality.rows();
  const int k = quality.cols();
  if (n == 0 || k == 0) {
    return Status::InvalidArgument(name + ": empty quality matrix");
  }
  if (cost.rows() != n || cost.cols() != k) {
    return Status::InvalidArgument(name + ": cost/quality shape mismatch");
  }
  if (static_cast<int>(user_names.size()) != n) {
    return Status::InvalidArgument(name + ": user_names size mismatch");
  }
  if (static_cast<int>(model_names.size()) != k) {
    return Status::InvalidArgument(name + ": model_names size mismatch");
  }
  if (!citations.empty() && static_cast<int>(citations.size()) != k) {
    return Status::InvalidArgument(name + ": citations size mismatch");
  }
  if (!publication_year.empty() &&
      static_cast<int>(publication_year.size()) != k) {
    return Status::InvalidArgument(name + ": publication_year size mismatch");
  }
  for (int i = 0; i < n; ++i) {
    for (int j = 0; j < k; ++j) {
      const double q = quality(i, j);
      if (q < 0.0 || q > 1.0) {
        return Status::OutOfRange(name + ": quality out of [0,1] at (" +
                                  std::to_string(i) + "," +
                                  std::to_string(j) + ")");
      }
      if (cost(i, j) <= 0.0) {
        return Status::OutOfRange(name + ": non-positive cost at (" +
                                  std::to_string(i) + "," +
                                  std::to_string(j) + ")");
      }
    }
  }
  return Status::OK();
}

Result<Dataset> Dataset::SelectUsers(
    const std::vector<int>& user_indices) const {
  if (user_indices.empty()) {
    return Status::InvalidArgument("SelectUsers: empty index list");
  }
  for (int u : user_indices) {
    if (u < 0 || u >= num_users()) {
      return Status::OutOfRange("SelectUsers: user index out of range");
    }
  }
  Dataset out;
  out.name = name;
  out.model_names = model_names;
  out.citations = citations;
  out.publication_year = publication_year;
  const int n = static_cast<int>(user_indices.size());
  const int k = num_models();
  out.quality = linalg::Matrix(n, k);
  out.cost = linalg::Matrix(n, k);
  out.user_names.reserve(n);
  for (int r = 0; r < n; ++r) {
    const int u = user_indices[r];
    out.user_names.push_back(user_names[u]);
    for (int j = 0; j < k; ++j) {
      out.quality(r, j) = quality(u, j);
      out.cost(r, j) = cost(u, j);
    }
  }
  return out;
}

void AssignUniformCosts(Dataset& ds, Rng& rng, double lo, double hi) {
  for (int i = 0; i < ds.num_users(); ++i) {
    for (int j = 0; j < ds.num_models(); ++j) {
      ds.cost(i, j) = rng.Uniform(lo, hi);
    }
  }
}

}  // namespace easeml::data
