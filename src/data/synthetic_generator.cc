#include "data/synthetic_generator.h"

#include <algorithm>
#include <cmath>
#include <sstream>

#include "common/logging.h"
#include "linalg/cholesky.h"

namespace easeml::data {

namespace {

double Clip01(double x) { return std::clamp(x, 0.0, 1.0); }

/// Cholesky factor of `cov` with enough jitter to handle the nearly-singular
/// covariances produced by large sigma (strong correlation). Returns a
/// row-major dense lower factor.
Result<std::vector<double>> DenseCholLower(const linalg::Matrix& cov) {
  const int n = cov.rows();
  double jitter = 1e-10;
  for (int attempt = 0; attempt < 8; ++attempt) {
    auto chol = linalg::Cholesky::Compute(cov, jitter);
    if (chol.ok()) {
      std::vector<double> lower(static_cast<size_t>(n) * n, 0.0);
      for (int i = 0; i < n; ++i) {
        for (int j = 0; j <= i; ++j) lower[i * n + j] = chol->At(i, j);
      }
      return lower;
    }
    jitter *= 100.0;
  }
  return Status::Internal("DenseCholLower: covariance not factorizable");
}

}  // namespace

linalg::Matrix HiddenFeatureCovariance(const std::vector<double>& f,
                                       double sigma) {
  EASEML_CHECK(sigma > 0.0);
  const int n = static_cast<int>(f.size());
  linalg::Matrix cov(n, n);
  for (int i = 0; i < n; ++i) {
    for (int j = 0; j < n; ++j) {
      const double d = f[i] - f[j];
      cov(i, j) = std::exp(-d * d / (sigma * sigma));
    }
  }
  return cov;
}

Result<Dataset> GenerateSimpleSyn(const SimpleSynOptions& options) {
  if (options.num_users <= 0 || options.num_models <= 0) {
    return Status::InvalidArgument("GenerateSimpleSyn: non-positive sizes");
  }
  if (options.sigma_m <= 0.0) {
    return Status::InvalidArgument("GenerateSimpleSyn: sigma_m must be > 0");
  }
  Rng rng(options.seed);
  const int n = options.num_users;
  const int k = options.num_models;

  // Hidden model features and their covariance (shared across users).
  std::vector<double> f(k);
  for (int j = 0; j < k; ++j) f[j] = rng.Uniform();
  const linalg::Matrix cov = HiddenFeatureCovariance(f, options.sigma_m);
  EASEML_ASSIGN_OR_RETURN(std::vector<double> chol_lower,
                          DenseCholLower(cov));

  Dataset ds;
  {
    std::ostringstream name;
    name << "SYN(" << options.sigma_m << "," << options.alpha << ")";
    ds.name = name.str();
  }
  ds.quality = linalg::Matrix(n, k);
  ds.cost = linalg::Matrix(n, k);
  for (int i = 0; i < n; ++i) ds.user_names.push_back("user_" +
                                                      std::to_string(i));
  for (int j = 0; j < k; ++j) ds.model_names.push_back("model_" +
                                                       std::to_string(j));

  const std::vector<double> zero_mean(k, 0.0);
  for (int i = 0; i < n; ++i) {
    const double b = rng.Normal(options.mu_b, options.sigma_b);
    // Per-user correlated model fluctuation (Section 5.1: "we sample for
    // each user i: [m_1, ..., m_K] ~ N(0, Sigma_M)").
    const std::vector<double> m =
        rng.MultivariateNormal(zero_mean, chol_lower, k);
    for (int j = 0; j < k; ++j) {
      ds.quality(i, j) = Clip01(b + options.alpha * m[j]);
    }
  }
  AssignUniformCosts(ds, rng);
  EASEML_RETURN_NOT_OK(ds.Validate());
  return ds;
}

Result<Dataset> GenerateAppendixB(const AppendixBOptions& options) {
  if (options.baseline_groups.empty()) {
    return Status::InvalidArgument("GenerateAppendixB: no baseline groups");
  }
  if (options.users_per_combination <= 0 || options.num_models <= 0) {
    return Status::InvalidArgument("GenerateAppendixB: non-positive sizes");
  }
  Rng rng(options.seed);
  const int k = options.num_models;
  const int n = static_cast<int>(options.baseline_groups.size()) *
                options.users_per_combination;

  // Model-group fluctuation: one global draw m over the model covariance.
  std::vector<double> fm(k);
  for (int j = 0; j < k; ++j) fm[j] = rng.Uniform();
  EASEML_ASSIGN_OR_RETURN(
      std::vector<double> chol_m,
      DenseCholLower(HiddenFeatureCovariance(fm, options.sigma_m)));
  const std::vector<double> m =
      rng.MultivariateNormal(std::vector<double>(k, 0.0), chol_m, k);

  // User-group fluctuation: one global draw u over the user covariance.
  std::vector<double> fu(n);
  for (int i = 0; i < n; ++i) fu[i] = rng.Uniform();
  EASEML_ASSIGN_OR_RETURN(
      std::vector<double> chol_u,
      DenseCholLower(HiddenFeatureCovariance(fu, options.sigma_u)));
  const std::vector<double> u =
      rng.MultivariateNormal(std::vector<double>(n, 0.0), chol_u, n);

  Dataset ds;
  ds.name = options.name;
  ds.quality = linalg::Matrix(n, k);
  ds.cost = linalg::Matrix(n, k);
  for (int j = 0; j < k; ++j) ds.model_names.push_back("model_" +
                                                       std::to_string(j));

  int user = 0;
  for (size_t g = 0; g < options.baseline_groups.size(); ++g) {
    const BaselineGroup& group = options.baseline_groups[g];
    for (int r = 0; r < options.users_per_combination; ++r, ++user) {
      ds.user_names.push_back("g" + std::to_string(g) + "_user_" +
                              std::to_string(r));
      const double b = rng.Normal(group.mu_b, group.sigma_b);
      for (int j = 0; j < k; ++j) {
        const double eps = rng.Normal(0.0, options.sigma_w);
        // Appendix B, Eq. (4): x = b_i + m_j + u_i + eps, clipped.
        ds.quality(user, j) =
            Clip01(b + options.model_amplitude * m[j] +
                   options.user_amplitude * u[user] + eps);
      }
    }
  }
  AssignUniformCosts(ds, rng);
  EASEML_RETURN_NOT_OK(ds.Validate());
  return ds;
}

}  // namespace easeml::data
