#include "data/classifier179.h"

#include <algorithm>
#include <cmath>

#include "common/logging.h"

namespace easeml::data {

const std::vector<ClassifierFamily>& Classifier179Families() {
  // Counts sum to 179. Offsets follow the ranking reported by Delgado et
  // al.: random forests and Gaussian SVMs lead; naive Bayes and PLSR trail.
  static const auto* kFamilies = new std::vector<ClassifierFamily>{
      {"rf", 8, 0.060, 0.015},      {"svm", 10, 0.050, 0.020},
      {"nnet", 21, 0.020, 0.025},   {"boosting", 20, 0.030, 0.020},
      {"bagging", 24, 0.020, 0.020}, {"trees", 14, -0.020, 0.020},
      {"rules", 12, -0.030, 0.020}, {"knn", 5, 0.000, 0.015},
      {"discriminant", 20, -0.010, 0.020}, {"bayes", 6, -0.060, 0.015},
      {"glm", 5, -0.020, 0.010},    {"plsr", 6, -0.040, 0.015},
      {"logistic", 3, -0.010, 0.010}, {"stacking", 2, 0.010, 0.010},
      {"mars", 4, -0.020, 0.010},   {"gpc", 4, 0.000, 0.010},
      {"elm", 15, 0.000, 0.025},
  };
  return *kFamilies;
}

Result<Dataset> GenerateClassifier179(const Classifier179Options& options) {
  if (options.num_users <= 0) {
    return Status::InvalidArgument("GenerateClassifier179: num_users <= 0");
  }
  const auto& families = Classifier179Families();
  int k = 0;
  for (const auto& f : families) k += f.count;
  EASEML_CHECK(k == 179) << "family counts must sum to 179, got " << k;

  Rng rng(options.seed);
  const int n = options.num_users;

  Dataset ds;
  ds.name = "179CLASSIFIER";
  ds.quality = linalg::Matrix(n, k);
  ds.cost = linalg::Matrix(n, k);

  // Per-model fixed structure: family index and deterministic jitter.
  std::vector<int> family_of(k);
  std::vector<double> model_jitter(k);
  {
    int j = 0;
    for (size_t f = 0; f < families.size(); ++f) {
      for (int m = 0; m < families[f].count; ++m, ++j) {
        ds.model_names.push_back(families[f].name + "_" + std::to_string(m));
        family_of[j] = static_cast<int>(f);
        model_jitter[j] = rng.Normal(0.0, families[f].member_spread);
      }
    }
  }

  for (int i = 0; i < n; ++i) {
    ds.user_names.push_back("uci_" + std::to_string(i));
    const double baseline = std::clamp(
        rng.Normal(options.baseline_mean, options.baseline_stddev), 0.2,
        0.98);
    const double family_scale =
        std::max(0.0, rng.Normal(1.0, options.family_scale_stddev));
    for (int j = 0; j < k; ++j) {
      const auto& fam = families[family_of[j]];
      double q = baseline + family_scale * (fam.mean_offset + model_jitter[j]);
      q += rng.Normal(0.0, options.interaction_noise);
      ds.quality(i, j) = std::clamp(q, 0.0, 1.0);
    }
  }
  AssignUniformCosts(ds, rng);  // synthetic costs, as in the paper
  EASEML_RETURN_NOT_OK(ds.Validate());
  return ds;
}

}  // namespace easeml::data
