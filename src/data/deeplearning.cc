#include "data/deeplearning.h"

#include <algorithm>
#include <cmath>

#include "common/logging.h"

namespace easeml::data {

const std::vector<ArchitectureInfo>& DeepLearningArchitectures() {
  // Offsets/costs reflect the well-known accuracy-vs-FLOPs ordering of these
  // architectures circa 2017; citations are approximate Google-Scholar
  // counts at the paper's submission time. Function-local static to comply
  // with the static-initialization rules (no global with dynamic init).
  static const auto* kArchitectures = new std::vector<ArchitectureInfo>{
      {"NIN", -0.040, 1.0, 1300, 2013, 0.30},
      {"GoogLeNet", 0.020, 2.5, 5600, 2014, 0.60},
      {"ResNet-50", 0.050, 5.0, 8200, 2015, 0.90},
      {"AlexNet", -0.060, 0.8, 16000, 2012, 0.20},
      {"BN-AlexNet", -0.030, 1.0, 4100, 2015, 0.25},
      {"ResNet-18", 0.030, 2.0, 8200, 2015, 0.55},
      {"VGG-16", 0.010, 6.0, 9300, 2014, 0.80},
      {"SqueezeNet", -0.050, 0.5, 620, 2016, 0.15},
  };
  return *kArchitectures;
}

Result<Dataset> GenerateDeepLearning(const DeepLearningOptions& options) {
  if (options.num_users <= 0) {
    return Status::InvalidArgument("GenerateDeepLearning: num_users <= 0");
  }
  const auto& archs = DeepLearningArchitectures();
  const int k = static_cast<int>(archs.size());
  const int n = options.num_users;
  Rng rng(options.seed);

  Dataset ds;
  ds.name = "DEEPLEARNING";
  ds.quality = linalg::Matrix(n, k);
  ds.cost = linalg::Matrix(n, k);
  for (const auto& a : archs) {
    ds.model_names.push_back(a.name);
    ds.citations.push_back(a.citations_2017);
    ds.publication_year.push_back(a.publication_year);
  }

  for (int i = 0; i < n; ++i) {
    ds.user_names.push_back("tenant_" + std::to_string(i));
    const double baseline =
        std::clamp(rng.Normal(options.baseline_mean, options.baseline_stddev),
                   0.30, 0.97);
    // How strongly the canonical architecture ranking holds for this user.
    const double offset_scale =
        std::max(0.0, rng.Normal(1.0, options.offset_scale_stddev));
    // Dataset size (log scale): negative log-size means a small dataset on
    // which deep architectures overfit.
    const double log_size = rng.Normal(0.0, options.size_log_stddev);
    const double small_data_penalty = std::max(0.0, -log_size);
    for (int j = 0; j < k; ++j) {
      const auto& a = archs[j];
      double q = baseline + offset_scale * a.quality_offset;
      q -= options.overfit_penalty * small_data_penalty * a.depth_factor;
      q += rng.Normal(0.0, options.quality_noise);
      ds.quality(i, j) = std::clamp(q, 0.0, 1.0);
      // Cost scales with dataset size and the architecture's relative cost.
      const double size_scale = std::exp(log_size);
      const double jitter =
          std::exp(rng.Normal(0.0, options.cost_noise_log_stddev));
      ds.cost(i, j) = std::max(1e-3, a.relative_cost * size_scale * jitter);
    }
  }
  EASEML_RETURN_NOT_OK(ds.Validate());
  return ds;
}

}  // namespace easeml::data
