#ifndef EASEML_DATA_DEEPLEARNING_H_
#define EASEML_DATA_DEEPLEARNING_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/status.h"
#include "data/dataset.h"

namespace easeml::data {

/// Static metadata of the eight image-classification architectures ease.ml
/// matches to the Tensor[A,B,C] -> Tensor[D] template (Sections 2 and 5.1).
struct ArchitectureInfo {
  std::string name;
  double quality_offset;  // typical accuracy delta vs. the user baseline
  double relative_cost;   // training time relative to AlexNet == 1
  int citations_2017;     // approximate Google-Scholar count (MOSTCITED)
  int publication_year;   // (MOSTRECENT)
  double depth_factor;    // 0..1, how much the model overfits small data
};

/// The eight-architecture registry used by the DEEPLEARNING workload.
const std::vector<ArchitectureInfo>& DeepLearningArchitectures();

/// Parameters of the DEEPLEARNING surrogate.
///
/// SUBSTITUTION (see DESIGN.md): the paper's DEEPLEARNING dataset is the real
/// ease.ml production log of 22 users x 8 models. We do not have that log, so
/// we generate a calibrated surrogate: each user has a task difficulty
/// (baseline accuracy) and a dataset-size scale; each architecture
/// contributes its published quality offset and relative training cost; small
/// datasets penalize deep architectures (the paper's "simpler networks
/// already overfit" anecdote). Quality and cost heterogeneity — the
/// structural properties the scheduling results depend on — are preserved.
struct DeepLearningOptions {
  int num_users = 22;
  double baseline_mean = 0.72;
  double baseline_stddev = 0.12;
  double offset_scale_stddev = 0.50;  // per-user spread of the arch ranking
  double quality_noise = 0.03;        // residual (user, model) noise
  double size_log_stddev = 0.8;       // lognormal dataset-size spread
  double cost_noise_log_stddev = 0.25;
  double overfit_penalty = 0.08;      // depth penalty on small datasets
  uint64_t seed = 13;
};

/// Generates the DEEPLEARNING surrogate (22 users x 8 models, "real"
/// quality and cost in the paper's terms).
Result<Dataset> GenerateDeepLearning(const DeepLearningOptions& options);

}  // namespace easeml::data

#endif  // EASEML_DATA_DEEPLEARNING_H_
