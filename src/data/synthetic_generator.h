#ifndef EASEML_DATA_SYNTHETIC_GENERATOR_H_
#define EASEML_DATA_SYNTHETIC_GENERATOR_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/status.h"
#include "data/dataset.h"

namespace easeml::data {

/// Parameters of the SYN(sigma_M, alpha) family of Section 5.1.
///
/// Quality model: x_{i,j} = b_i + alpha * m_{i,j}, clipped to [0, 1], where
///   b_i          ~ N(mu_b, sigma_b^2)  (user baseline difficulty)
///   [m_1..m_K]_i ~ N(0, Sigma_M)       (one correlated draw per user)
///   Sigma_M[j,j'] = exp(-(f(j)-f(j'))^2 / sigma_M^2),  f(j) ~ U(0, 1).
/// Costs are i.i.d. uniform (synthetic, as in the paper).
struct SimpleSynOptions {
  int num_users = 200;
  int num_models = 100;
  double mu_b = 0.5;
  double sigma_b = 0.15;
  double sigma_m = 0.01;  // model-correlation strength (paper: 0.01 or 0.5)
  double alpha = 0.1;     // weight of the model-correlation term
  uint64_t seed = 7;
};

/// Generates a SYN(sigma_M, alpha) dataset. The name encodes the two
/// hyperparameters, matching Figure 8 (e.g. "SYN(0.01,0.1)").
Result<Dataset> GenerateSimpleSyn(const SimpleSynOptions& options);

/// Full generative model of Appendix B:
///   x_{i,j} = b_i + m_j + u_i + eps_{i,j}, clipped to [0, 1].
///
/// Users belong to a baseline group (mu_b, sigma_b) and a user group with
/// correlation strength sigma_U; models belong to a model group with
/// correlation strength sigma_M. Group fluctuations m and u are single
/// correlated draws over the RBF covariance of hidden features f ~ U(0,1);
/// eps is i.i.d. N(0, sigma_W^2) white noise.
struct BaselineGroup {
  double mu_b;
  double sigma_b;
};

struct AppendixBOptions {
  std::vector<BaselineGroup> baseline_groups = {{0.75, 0.1}, {0.25, 0.1}};
  double sigma_m = 0.5;   // model-group correlation strength
  double sigma_u = 0.5;   // user-group correlation strength
  double sigma_w = 0.02;  // white-noise stddev
  /// Marginal standard deviations of the m and u fluctuations. The
  /// appendix samples from unit-variance covariances; amplitudes keep
  /// x = b + m + u + eps inside [0, 1] without pervasive clipping.
  double model_amplitude = 0.1;
  double user_amplitude = 0.05;
  int users_per_combination = 50;  // pU(*): users per baseline x user group
  int num_models = 100;            // pM(*)
  uint64_t seed = 11;
  std::string name = "APPENDIX-B";
};

/// Generates a dataset with the Appendix-B instantiation (default options
/// reproduce the 100-user / 100-model configuration of B.2).
Result<Dataset> GenerateAppendixB(const AppendixBOptions& options);

/// Builds the RBF covariance over hidden features:
///   Sigma[i,j] = exp(-(f_i - f_j)^2 / sigma^2).
/// Exposed for tests. Precondition: sigma > 0.
linalg::Matrix HiddenFeatureCovariance(const std::vector<double>& f,
                                       double sigma);

}  // namespace easeml::data

#endif  // EASEML_DATA_SYNTHETIC_GENERATOR_H_
