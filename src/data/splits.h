#ifndef EASEML_DATA_SPLITS_H_
#define EASEML_DATA_SPLITS_H_

#include <vector>

#include "common/rng.h"
#include "common/status.h"

namespace easeml::data {

/// A random partition of users into a kernel-training set and a test set
/// (paper, Section 5.2 / Appendix A: "we randomly sample ten users as a
/// testing set and the rest of the users as a training set").
struct TrainTestSplit {
  std::vector<int> train_users;
  std::vector<int> test_users;
};

/// Samples `num_test` distinct test users out of `num_users`; the remainder
/// becomes the training set. Both halves are sorted ascending for
/// reproducible downstream iteration. Fails unless 0 < num_test < num_users.
Result<TrainTestSplit> SplitUsers(int num_users, int num_test, Rng& rng);

/// Selects `ceil(fraction * items.size())` items uniformly without
/// replacement (used by the Figure-14 training-set-size experiment).
/// Fails unless fraction is in (0, 1].
Result<std::vector<int>> SubsampleIndices(const std::vector<int>& items,
                                          double fraction, Rng& rng);

}  // namespace easeml::data

#endif  // EASEML_DATA_SPLITS_H_
