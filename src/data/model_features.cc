#include "data/model_features.h"

namespace easeml::data {

namespace {
Status ValidateTrainUsers(const Dataset& ds,
                          const std::vector<int>& train_users) {
  if (train_users.empty()) {
    return Status::InvalidArgument("model_features: empty training set");
  }
  for (int u : train_users) {
    if (u < 0 || u >= ds.num_users()) {
      return Status::OutOfRange("model_features: train user out of range");
    }
  }
  return Status::OK();
}
}  // namespace

Result<std::vector<std::vector<double>>> ComputeModelFeatures(
    const Dataset& ds, const std::vector<int>& train_users) {
  EASEML_RETURN_NOT_OK(ValidateTrainUsers(ds, train_users));
  std::vector<std::vector<double>> features(ds.num_models());
  for (int j = 0; j < ds.num_models(); ++j) {
    features[j].reserve(train_users.size());
    for (int u : train_users) features[j].push_back(ds.quality(u, j));
  }
  return features;
}

Result<std::vector<std::vector<double>>> ComputeRealizations(
    const Dataset& ds, const std::vector<int>& train_users) {
  EASEML_RETURN_NOT_OK(ValidateTrainUsers(ds, train_users));
  std::vector<std::vector<double>> realizations;
  realizations.reserve(train_users.size());
  for (int u : train_users) realizations.push_back(ds.quality.Row(u));
  return realizations;
}

Result<std::vector<double>> ComputePriorMean(
    const Dataset& ds, const std::vector<int>& train_users) {
  EASEML_RETURN_NOT_OK(ValidateTrainUsers(ds, train_users));
  std::vector<double> mean(ds.num_models(), 0.0);
  for (int j = 0; j < ds.num_models(); ++j) {
    double acc = 0.0;
    for (int u : train_users) acc += ds.quality(u, j);
    mean[j] = acc / static_cast<double>(train_users.size());
  }
  return mean;
}

Result<double> ComputeGlobalMeanQuality(const Dataset& ds,
                                        const std::vector<int>& train_users) {
  EASEML_RETURN_NOT_OK(ValidateTrainUsers(ds, train_users));
  double acc = 0.0;
  for (int u : train_users) {
    for (int j = 0; j < ds.num_models(); ++j) acc += ds.quality(u, j);
  }
  return acc / (static_cast<double>(train_users.size()) * ds.num_models());
}

}  // namespace easeml::data
