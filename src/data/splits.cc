#include "data/splits.h"

#include <algorithm>
#include <cmath>

namespace easeml::data {

Result<TrainTestSplit> SplitUsers(int num_users, int num_test, Rng& rng) {
  if (num_test <= 0 || num_test >= num_users) {
    return Status::InvalidArgument(
        "SplitUsers: need 0 < num_test < num_users");
  }
  std::vector<int> test = rng.SampleWithoutReplacement(num_users, num_test);
  std::sort(test.begin(), test.end());
  std::vector<bool> is_test(num_users, false);
  for (int u : test) is_test[u] = true;
  TrainTestSplit split;
  split.test_users = std::move(test);
  split.train_users.reserve(num_users - num_test);
  for (int u = 0; u < num_users; ++u) {
    if (!is_test[u]) split.train_users.push_back(u);
  }
  return split;
}

Result<std::vector<int>> SubsampleIndices(const std::vector<int>& items,
                                          double fraction, Rng& rng) {
  if (fraction <= 0.0 || fraction > 1.0) {
    return Status::InvalidArgument("SubsampleIndices: fraction not in (0,1]");
  }
  const int n = static_cast<int>(items.size());
  const int keep = std::max(
      1, static_cast<int>(std::ceil(fraction * static_cast<double>(n))));
  if (keep >= n) return items;
  std::vector<int> picked = rng.SampleWithoutReplacement(n, keep);
  std::sort(picked.begin(), picked.end());
  std::vector<int> out;
  out.reserve(keep);
  for (int p : picked) out.push_back(items[p]);
  return out;
}

}  // namespace easeml::data
