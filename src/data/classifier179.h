#ifndef EASEML_DATA_CLASSIFIER179_H_
#define EASEML_DATA_CLASSIFIER179_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/status.h"
#include "data/dataset.h"

namespace easeml::data {

/// A family of classifiers in the Delgado et al. benchmark (e.g. "rf",
/// "svm"): `count` members sharing a mean quality offset, with a per-model
/// deterministic jitter.
struct ClassifierFamily {
  std::string name;
  int count;
  double mean_offset;
  double member_spread;
};

/// The 17-family, 179-model layout mirroring Delgado et al. (2014).
const std::vector<ClassifierFamily>& Classifier179Families();

/// Parameters of the 179CLASSIFIER surrogate.
///
/// SUBSTITUTION (see DESIGN.md): the paper uses real accuracies from Delgado
/// et al. ("Do we need hundreds of classifiers...?") over 121 UCI data sets.
/// We generate a surrogate with the same shape — 121 users x 179 models,
/// strong within-family correlation (random forests consistently near the
/// top, naive Bayes near the bottom), wide per-user difficulty spread — and
/// synthetic U(0,1) costs exactly as the paper does.
struct Classifier179Options {
  int num_users = 121;
  double baseline_mean = 0.65;
  double baseline_stddev = 0.18;
  double family_scale_stddev = 0.40;  // per-user spread of family ranking
  double interaction_noise = 0.05;
  uint64_t seed = 17;
};

/// Generates the 179CLASSIFIER surrogate.
Result<Dataset> GenerateClassifier179(const Classifier179Options& options);

}  // namespace easeml::data

#endif  // EASEML_DATA_CLASSIFIER179_H_
