#include "sim/multi_device.h"

#include <algorithm>
#include <cmath>
#include <queue>

namespace easeml::sim {

namespace {

/// A training job in flight.
struct InFlightJob {
  double finish_time;
  int device;
  int user;
  int arm;

  bool operator>(const InFlightJob& other) const {
    return finish_time > other.finish_time;
  }
};

double AverageLoss(const Environment& env,
                   const std::vector<scheduler::UserState>& users) {
  double acc = 0.0;
  for (size_t i = 0; i < users.size(); ++i) {
    acc += env.BestQuality(static_cast<int>(i)) - users[i].best_reward();
  }
  return acc / static_cast<double>(users.size());
}

}  // namespace

Result<MultiDeviceResult> RunMultiDeviceSimulation(
    Environment& env, std::vector<scheduler::UserState>& users,
    scheduler::SchedulerPolicy& scheduler,
    const MultiDeviceOptions& options) {
  const int n = env.num_users();
  if (static_cast<int>(users.size()) != n) {
    return Status::InvalidArgument("MultiDevice: users/env size mismatch");
  }
  if (options.num_devices < 1) {
    return Status::InvalidArgument("MultiDevice: need >= 1 device");
  }
  if (options.total_capacity <= 0.0) {
    return Status::InvalidArgument("MultiDevice: capacity must be > 0");
  }
  if (options.budget_fraction <= 0.0 || options.budget_fraction > 1.0) {
    return Status::InvalidArgument(
        "MultiDevice: budget_fraction must be in (0, 1]");
  }
  if (options.grid_points < 2) {
    return Status::InvalidArgument("MultiDevice: grid_points < 2");
  }

  if (options.scaling_exponent <= 0.0 || options.scaling_exponent > 1.0) {
    return Status::InvalidArgument(
        "MultiDevice: scaling_exponent must be in (0, 1]");
  }
  const double units_per_device =
      options.total_capacity / static_cast<double>(options.num_devices);
  const double device_speed =
      std::pow(units_per_device, options.scaling_exponent);

  MultiDeviceResult result;
  result.budget =
      options.budget_fraction * env.TotalCost() / options.total_capacity;

  const int g = options.grid_points;
  result.curve.grid.resize(g);
  for (int i = 0; i < g; ++i) {
    result.curve.grid[i] = static_cast<double>(i) / (g - 1);
  }
  result.curve.avg_loss.assign(g, 0.0);
  int next_grid = 0;
  auto record_progress = [&](double now) {
    const double frac = result.budget > 0.0 ? now / result.budget : 1.0;
    const double loss = AverageLoss(env, users);
    while (next_grid < g && result.curve.grid[next_grid] <= frac + 1e-12) {
      result.curve.avg_loss[next_grid] = loss;
      ++next_grid;
    }
  };
  record_progress(0.0);

  std::priority_queue<InFlightJob, std::vector<InFlightJob>,
                      std::greater<InFlightJob>>
      in_flight;
  std::vector<int> free_devices;
  for (int d = 0; d < options.num_devices; ++d) free_devices.push_back(d);

  double now = 0.0;
  int round = 1;
  int sweep_cursor = options.initial_sweep ? 0 : n;

  // Tries to start jobs on all free devices; returns the number launched.
  auto launch_jobs = [&]() -> Result<int> {
    int launched = 0;
    while (!free_devices.empty()) {
      // Pick a user: finish the initialization sweep first (serve every
      // user exactly once), then delegate to the scheduler. The cursor
      // advances past users that already got their first run or have one
      // in flight — it must NOT re-serve a user whose job completed, or
      // the sweep degenerates into FCFS.
      int user = -1;
      while (sweep_cursor < n && (users[sweep_cursor].has_observations() ||
                                  users[sweep_cursor].has_pending() ||
                                  users[sweep_cursor].Exhausted())) {
        ++sweep_cursor;
      }
      if (sweep_cursor < n) {
        user = sweep_cursor;
      } else {
        bool any = false;
        for (const auto& u : users) {
          if (u.Schedulable()) {
            any = true;
            break;
          }
        }
        if (!any) break;  // nothing schedulable right now
        EASEML_ASSIGN_OR_RETURN(user, scheduler.PickUser(users, round));
        ++round;
      }
      EASEML_ASSIGN_OR_RETURN(int arm, users[user].SelectArm());
      const double duration = env.Cost(user, arm) / device_speed;
      if (now + duration > result.budget + 1e-9) {
        // Would overrun the wall-clock budget. The selection stays pending,
        // which also removes the user from the schedulable set — the
        // device idles for the rest of the campaign.
        break;
      }
      const int device = free_devices.back();
      free_devices.pop_back();
      in_flight.push(InFlightJob{now + duration, device, user, arm});
      result.busy_time += duration;
      ++launched;
    }
    return launched;
  };

  EASEML_RETURN_NOT_OK(launch_jobs().status());
  while (!in_flight.empty()) {
    const InFlightJob job = in_flight.top();
    in_flight.pop();
    now = job.finish_time;
    const double reward = env.Reward(job.user, job.arm);
    EASEML_RETURN_NOT_OK(users[job.user].RecordOutcome(job.arm, reward));
    scheduler.OnOutcome(users, job.user);
    if (result.steps == 0) result.first_completion_time = now;
    ++result.steps;
    result.makespan = now;
    record_progress(now);
    free_devices.push_back(job.device);
    EASEML_RETURN_NOT_OK(launch_jobs().status());
  }

  const double final_loss = AverageLoss(env, users);
  for (; next_grid < g; ++next_grid) {
    result.curve.avg_loss[next_grid] = final_loss;
  }
  return result;
}

}  // namespace easeml::sim
