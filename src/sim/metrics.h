#ifndef EASEML_SIM_METRICS_H_
#define EASEML_SIM_METRICS_H_

#include <optional>
#include <vector>

#include "common/status.h"

namespace easeml::sim {

/// One repetition's loss curve: `avg_loss[g]` is the mean accuracy loss over
/// users when `grid[g]` (a fraction in [0, 1]) of the budget is consumed.
struct LossCurve {
  std::vector<double> grid;
  std::vector<double> avg_loss;
};

/// Mean and worst-case curves over repetitions (the two columns the paper
/// plots in Figures 9-11: "Average Accuracy Loss" and "Worse Accuracy
/// Loss" across the 50 runs of each experiment).
struct AggregatedCurves {
  std::vector<double> grid;
  std::vector<double> mean;
  std::vector<double> worst;
};

/// Aggregates repetitions pointwise. Fails if curves are empty or have
/// mismatched grids.
Result<AggregatedCurves> Aggregate(const std::vector<LossCurve>& reps);

/// First grid fraction at which `curve` drops to <= target; nullopt if the
/// target is never reached.
std::optional<double> FractionToReach(const std::vector<double>& grid,
                                      const std::vector<double>& curve,
                                      double target);

/// Speedup of strategy `fast` over `slow` in reaching `target` loss:
/// (fraction needed by slow) / (fraction needed by fast). This is the
/// paper's headline metric ("up to 9.8x faster in achieving the same global
/// quality"). Fails if either curve never reaches the target.
Result<double> SpeedupToReach(const AggregatedCurves& fast,
                              const AggregatedCurves& slow, double target);

/// Trapezoidal area under the loss curve; lower is better. A scalar summary
/// used by tests to compare strategies robustly.
double AreaUnderCurve(const std::vector<double>& grid,
                      const std::vector<double>& curve);

}  // namespace easeml::sim

#endif  // EASEML_SIM_METRICS_H_
