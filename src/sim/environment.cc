#include "sim/environment.h"

#include <algorithm>

namespace easeml::sim {

Result<Environment> Environment::Create(data::Dataset dataset,
                                        double observation_noise,
                                        uint64_t seed) {
  EASEML_RETURN_NOT_OK(dataset.Validate());
  if (observation_noise < 0.0) {
    return Status::InvalidArgument("Environment: negative noise");
  }
  return Environment(std::move(dataset), observation_noise, seed);
}

double Environment::Reward(int user, int model) {
  double q = dataset_.quality(user, model);
  if (observation_noise_ > 0.0) {
    q += rng_.Normal(0.0, observation_noise_);
  }
  return std::clamp(q, 0.0, 1.0);
}

std::vector<double> Environment::CostsForUser(int user) const {
  std::vector<double> costs(num_models());
  for (int j = 0; j < num_models(); ++j) costs[j] = dataset_.cost(user, j);
  return costs;
}

}  // namespace easeml::sim
