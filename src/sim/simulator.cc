#include "sim/simulator.h"

#include <algorithm>

namespace easeml::sim {

namespace {

/// Current average accuracy loss over all users (Appendix A, Eq. 3).
double AverageLoss(const Environment& env,
                   const std::vector<scheduler::UserState>& users) {
  double acc = 0.0;
  for (size_t i = 0; i < users.size(); ++i) {
    acc += env.BestQuality(static_cast<int>(i)) - users[i].best_reward();
  }
  return acc / static_cast<double>(users.size());
}

}  // namespace

Result<SimulationResult> RunSimulation(
    Environment& env, std::vector<scheduler::UserState>& users,
    scheduler::SchedulerPolicy& scheduler, const SimulationOptions& options) {
  const int n = env.num_users();
  if (static_cast<int>(users.size()) != n) {
    return Status::InvalidArgument("RunSimulation: users/env size mismatch");
  }
  for (int i = 0; i < n; ++i) {
    if (users[i].num_models() != env.num_models()) {
      return Status::InvalidArgument(
          "RunSimulation: user arm count mismatch");
    }
  }
  if (options.budget_fraction <= 0.0 || options.budget_fraction > 1.0) {
    return Status::InvalidArgument(
        "RunSimulation: budget_fraction must be in (0, 1]");
  }
  if (options.grid_points < 2) {
    return Status::InvalidArgument("RunSimulation: grid_points < 2");
  }

  SimulationResult result;
  result.budget = options.cost_aware_budget
                      ? options.budget_fraction * env.TotalCost()
                      : options.budget_fraction *
                            static_cast<double>(n) * env.num_models();

  const int g = options.grid_points;
  result.curve.grid.resize(g);
  for (int i = 0; i < g; ++i) {
    result.curve.grid[i] = static_cast<double>(i) / (g - 1);
  }
  result.curve.avg_loss.assign(g, 0.0);

  int next_grid = 0;
  auto record_progress = [&]() {
    const double frac =
        result.budget > 0.0 ? result.consumed / result.budget : 1.0;
    const double loss = AverageLoss(env, users);
    while (next_grid < g && result.curve.grid[next_grid] <= frac + 1e-12) {
      result.curve.avg_loss[next_grid] = loss;
      ++next_grid;
    }
  };
  record_progress();  // grid point 0: no model trained yet

  // One (select, train, observe) step for `user`. Returns false when the
  // budget would be exceeded (the step is then not taken).
  auto serve_user = [&](int user) -> Result<bool> {
    EASEML_ASSIGN_OR_RETURN(int arm, users[user].SelectArm());
    const double step_cost =
        options.cost_aware_budget ? env.Cost(user, arm) : 1.0;
    if (result.consumed + step_cost > result.budget + 1e-9) {
      // Cannot afford this training run; leave the selection pending —
      // the campaign is over.
      return false;
    }
    const double reward = env.Reward(user, arm);
    EASEML_RETURN_NOT_OK(users[user].RecordOutcome(arm, reward));
    scheduler.OnOutcome(users, user);
    result.consumed += step_cost;
    ++result.steps;
    // Regret accounting (Section 4.1): C_t is always the true cost of the
    // trained model, independent of the budget mode.
    const double c_t = env.Cost(user, arm);
    double regret_last = 0.0, regret_best = 0.0;
    for (int i = 0; i < n; ++i) {
      const double best_possible = env.BestQuality(i);
      regret_last += best_possible - (users[i].has_observations()
                                          ? users[i].last_reward()
                                          : 0.0);
      regret_best += best_possible - users[i].best_reward();
    }
    result.cumulative_regret += c_t * regret_last;
    result.easeml_regret += c_t * regret_best;
    record_progress();
    return true;
  };

  bool out_of_budget = false;
  if (options.initial_sweep) {
    for (int i = 0; i < n && !out_of_budget; ++i) {
      if (users[i].Exhausted()) continue;
      EASEML_ASSIGN_OR_RETURN(bool ok, serve_user(i));
      out_of_budget = !ok;
    }
  }

  int round = 1;
  while (!out_of_budget) {
    bool any_active = false;
    for (const auto& u : users) {
      if (!u.Exhausted()) {
        any_active = true;
        break;
      }
    }
    if (!any_active) break;
    EASEML_ASSIGN_OR_RETURN(int user, scheduler.PickUser(users, round));
    EASEML_ASSIGN_OR_RETURN(bool ok, serve_user(user));
    out_of_budget = !ok;
    ++round;
  }

  // Fill the tail of the curve with the final loss.
  const double final_loss = AverageLoss(env, users);
  for (; next_grid < g; ++next_grid) {
    result.curve.avg_loss[next_grid] = final_loss;
  }
  result.final_per_user_loss.resize(n);
  for (int i = 0; i < n; ++i) {
    result.final_per_user_loss[i] =
        env.BestQuality(i) - users[i].best_reward();
  }
  return result;
}

}  // namespace easeml::sim
