#ifndef EASEML_SIM_SIMULATOR_H_
#define EASEML_SIM_SIMULATOR_H_

#include <memory>
#include <vector>

#include "common/status.h"
#include "scheduler/scheduler_policy.h"
#include "sim/environment.h"
#include "sim/metrics.h"

namespace easeml::sim {

/// Budget and sampling configuration of one simulated campaign.
struct SimulationOptions {
  /// If true, the budget is `budget_fraction` of the total training cost of
  /// all (user, model) pairs and the x-axis is "% of total cost"
  /// (Figures 9, 11, 13, 14). Otherwise the budget is a fraction of the
  /// total number of runs and the x-axis is "% of runs" (Figures 10, 15).
  bool cost_aware_budget = false;

  /// Fraction of the total (runs or cost) the campaign may consume.
  double budget_fraction = 0.5;

  /// Number of samples of the loss curve over [0, 1].
  int grid_points = 101;

  /// Serve every user once (in index order) before regular scheduling —
  /// the initialization sweep of Algorithm 2 lines 1-4. Applied uniformly
  /// to all schedulers for comparability; the sweep consumes budget.
  bool initial_sweep = true;
};

/// Outcome of one simulated campaign.
struct SimulationResult {
  LossCurve curve;
  int steps = 0;              // (user, model) trainings executed
  double consumed = 0.0;      // runs or cost consumed
  double budget = 0.0;        // runs or cost allowed
  std::vector<double> final_per_user_loss;

  /// Cumulative multi-tenant, cost-aware regret (Section 4.1):
  ///   R_T = sum_t C_t * sum_i (mu*_i - X^i_t)
  /// where C_t is the cost of the model trained at step t and X^i_t is the
  /// reward of the model user i chose the last time it was served (0 if
  /// never served).
  double cumulative_regret = 0.0;

  /// The ease.ml regret variant R'_T, which replaces X^i_t by the best
  /// reward user i has seen so far (the model `infer` actually serves).
  /// Always <= cumulative_regret.
  double easeml_regret = 0.0;
};

/// Runs one multi-tenant model-selection campaign: repeatedly asks
/// `scheduler` for a user, lets that user's policy pick a model, charges the
/// cost, reveals the reward, and samples the average accuracy loss
///   l_T = (1/n) sum_i (a*_i - best observed accuracy of user i)
/// on a uniform budget grid (Appendix A, Equations 2-3).
///
/// `users` must have one UserState per environment user, aligned by index
/// and with costs matching the environment. The campaign stops when the
/// budget is exhausted or every user has trained every model.
Result<SimulationResult> RunSimulation(Environment& env,
                                       std::vector<scheduler::UserState>& users,
                                       scheduler::SchedulerPolicy& scheduler,
                                       const SimulationOptions& options);

}  // namespace easeml::sim

#endif  // EASEML_SIM_SIMULATOR_H_
