#include "sim/metrics.h"

#include <algorithm>
#include <cmath>

namespace easeml::sim {

Result<AggregatedCurves> Aggregate(const std::vector<LossCurve>& reps) {
  if (reps.empty()) {
    return Status::InvalidArgument("Aggregate: no repetitions");
  }
  const size_t g = reps[0].grid.size();
  if (g == 0) return Status::InvalidArgument("Aggregate: empty grid");
  for (const auto& rep : reps) {
    if (rep.grid != reps[0].grid || rep.avg_loss.size() != g) {
      return Status::InvalidArgument("Aggregate: grid mismatch across reps");
    }
  }
  AggregatedCurves out;
  out.grid = reps[0].grid;
  out.mean.assign(g, 0.0);
  out.worst.assign(g, 0.0);
  for (size_t i = 0; i < g; ++i) {
    double sum = 0.0;
    double worst = 0.0;
    for (const auto& rep : reps) {
      sum += rep.avg_loss[i];
      worst = std::max(worst, rep.avg_loss[i]);
    }
    out.mean[i] = sum / static_cast<double>(reps.size());
    out.worst[i] = worst;
  }
  return out;
}

std::optional<double> FractionToReach(const std::vector<double>& grid,
                                      const std::vector<double>& curve,
                                      double target) {
  for (size_t i = 0; i < grid.size(); ++i) {
    if (curve[i] <= target) return grid[i];
  }
  return std::nullopt;
}

Result<double> SpeedupToReach(const AggregatedCurves& fast,
                              const AggregatedCurves& slow, double target) {
  const auto f = FractionToReach(fast.grid, fast.mean, target);
  const auto s = FractionToReach(slow.grid, slow.mean, target);
  if (!f.has_value() || !s.has_value()) {
    return Status::FailedPrecondition(
        "SpeedupToReach: target loss never reached");
  }
  if (*f <= 0.0) {
    // Both reached the target instantly; report parity.
    return *s <= 0.0 ? 1.0 : std::numeric_limits<double>::infinity();
  }
  return *s / *f;
}

double AreaUnderCurve(const std::vector<double>& grid,
                      const std::vector<double>& curve) {
  double area = 0.0;
  for (size_t i = 1; i < grid.size(); ++i) {
    area += 0.5 * (curve[i] + curve[i - 1]) * (grid[i] - grid[i - 1]);
  }
  return area;
}

}  // namespace easeml::sim
