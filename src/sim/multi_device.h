#ifndef EASEML_SIM_MULTI_DEVICE_H_
#define EASEML_SIM_MULTI_DEVICE_H_

#include <vector>

#include "common/status.h"
#include "scheduler/scheduler_policy.h"
#include "sim/environment.h"
#include "sim/metrics.h"

namespace easeml::sim {

/// Configuration of an event-driven multi-device campaign.
///
/// EXTENSION of the paper (Sections 4.5 / 5.3.2 "Single- vs
/// Multi-Devices"): the cluster has `total_capacity` GPU-units split evenly
/// across `num_devices` devices. A model whose cost is c occupies one device
/// for c / (total_capacity / num_devices) wall-clock time — one big device
/// finishes each model fastest (the paper's production choice), many small
/// devices overlap more jobs. Total throughput is identical under linear
/// scaling, so the comparison isolates the scheduling effect the paper
/// discusses: "the single-device strategy returns a model faster for some
/// users ... the single-device option achieves lower accumulated regret".
struct MultiDeviceOptions {
  int num_devices = 1;
  double total_capacity = 8.0;  // GPU-units (the paper's 8-GPU machines)

  /// Multi-GPU scaling of a single training job: a device with g GPU-units
  /// trains at speed g^scaling_exponent. 1.0 = perfect linear scaling (the
  /// paper's InfiniBand + low-precision setup "still achieves significant
  /// speed up"); < 1.0 models communication overhead, which penalizes the
  /// one-big-device configuration.
  double scaling_exponent = 1.0;

  /// Wall-clock budget as a fraction of (total model cost / total capacity)
  /// — the time needed to train everything at full utilization.
  double budget_fraction = 0.5;

  int grid_points = 101;

  /// Serve every user once before regular scheduling (Algorithm 2 init).
  bool initial_sweep = true;
};

/// Outcome of a multi-device campaign.
struct MultiDeviceResult {
  LossCurve curve;        // avg loss vs fraction of the wall-clock budget
  int steps = 0;          // completed training runs
  double makespan = 0.0;  // wall-clock time of the last completion
  double busy_time = 0.0; // summed device-seconds of useful work
  double budget = 0.0;    // wall-clock budget

  /// Wall-clock time at which the first model of the campaign finished —
  /// the quantity behind the paper's "the single-device strategy returns a
  /// model faster for some users" argument (one fast device always wins
  /// this metric under linear scaling).
  double first_completion_time = 0.0;
};

/// Runs an event-driven campaign: whenever a device is free, the scheduler
/// picks a schedulable user (no job in flight, models remaining), that
/// user's policy picks a model, and the job occupies the device for
/// cost / device_speed wall-clock time. Jobs are only started if they finish
/// within the budget. Loss is sampled at completion events.
Result<MultiDeviceResult> RunMultiDeviceSimulation(
    Environment& env, std::vector<scheduler::UserState>& users,
    scheduler::SchedulerPolicy& scheduler, const MultiDeviceOptions& options);

}  // namespace easeml::sim

#endif  // EASEML_SIM_MULTI_DEVICE_H_
