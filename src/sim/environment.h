#ifndef EASEML_SIM_ENVIRONMENT_H_
#define EASEML_SIM_ENVIRONMENT_H_

#include <cstdint>

#include "common/rng.h"
#include "common/status.h"
#include "data/dataset.h"

namespace easeml::sim {

/// The "ground truth" a simulation runs against: the (quality, cost) matrix
/// of the tenants being served (Figure 7's canonical view).
///
/// SUBSTITUTION (see DESIGN.md): this stands in for the paper's GPU cluster.
/// Training model j for user i consumes Cost(i, j) simulated time and
/// reveals Reward(i, j). Optional observation noise models run-to-run
/// training variance; the schedulers under study consume exactly the same
/// interface either way.
class Environment {
 public:
  /// Validates the dataset. `observation_noise` is the stddev of additive
  /// Gaussian noise on revealed rewards (0 = deterministic).
  static Result<Environment> Create(data::Dataset dataset,
                                    double observation_noise = 0.0,
                                    uint64_t seed = 0);

  int num_users() const { return dataset_.num_users(); }
  int num_models() const { return dataset_.num_models(); }

  /// Reveals the training outcome for (user, model); clipped to [0, 1].
  double Reward(int user, int model);

  /// True expected quality (used by metrics, not by algorithms).
  double TrueQuality(int user, int model) const {
    return dataset_.quality(user, model);
  }

  double Cost(int user, int model) const { return dataset_.cost(user, model); }

  /// Per-user cost vector (the c_ik of the cost-aware index).
  std::vector<double> CostsForUser(int user) const;

  double BestQuality(int user) const { return dataset_.BestQuality(user); }

  double TotalCost() const { return dataset_.TotalCost(); }

  const data::Dataset& dataset() const { return dataset_; }

 private:
  Environment(data::Dataset dataset, double observation_noise, uint64_t seed)
      : dataset_(std::move(dataset)),
        observation_noise_(observation_noise),
        rng_(seed) {}

  data::Dataset dataset_;
  double observation_noise_;
  Rng rng_;
};

}  // namespace easeml::sim

#endif  // EASEML_SIM_ENVIRONMENT_H_
