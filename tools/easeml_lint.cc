// easeml_lint: the project determinism & concurrency-discipline linter.
//
// A token-level checker (no compiler front end required — it must run under
// the stock GCC toolchain) that enforces the repo conventions which keep the
// selection traces bit-identical across shard counts and device counts:
//
//   unordered-container  no std::unordered_{map,set,multimap,multiset} in the
//                        engine/scheduler/shard result paths (src/core,
//                        src/scheduler, src/shard, src/bandit) — iteration
//                        order is implementation-defined and any fold over it
//                        breaks trace parity.
//   raw-rng              no rand/srand/std::random_device/std::mt19937 etc.
//                        outside src/common/rng.{h,cc} — every random draw
//                        must come from the seeded easeml::Rng stream.
//   chrono-seed          no seeding from <chrono> clocks — a time-derived
//                        seed is nondeterminism smuggled past raw-rng.
//   raw-double-accum     no raw `double +=` accumulation inside merge/reduce
//                        seams (functions named *Merge*/*Reduce*/*Combine*
//                        and lambdas passed to ReduceTree) outside
//                        common/exact_sum — floating addition is not
//                        associative, so a raw running sum depends on the
//                        shard partition; use ExactDoubleSum.
//   raw-sync             no std::mutex/condition_variable/lock_guard/...
//                        outside common/thread_annotations.h — all locking
//                        goes through the annotated easeml::Mutex wrapper so
//                        Clang Thread Safety Analysis sees every acquisition.
//   unguarded-mutex      a class that declares a Mutex/SpinLock member must
//                        annotate at least one field with EASEML_GUARDED_BY /
//                        EASEML_PT_GUARDED_BY — a lock that guards nothing
//                        the analysis can check is a lock the analysis
//                        cannot help with.
//   raw-clock            no raw clock reads (clock_gettime/gettimeofday or
//                        the <chrono> clocks) outside common/ — all timing
//                        goes through the common/clock.h seam
//                        (easeml::MonotonicSeconds/ThreadCpuSeconds) so the
//                        clock choice, and any future virtualization for
//                        deterministic replay, lives in one place.
//   raw-file-io          no direct fopen/open/write/fsync/... calls outside
//                        src/wal/ — durable state goes through the
//                        wal::FileSystem seam so the fault-injection harness
//                        can interpose on every byte that claims to be
//                        durable.
//
// Suppression (machine-readable, reason required):
//   code;  // easeml-lint: allow(rule-id) why this one is safe
// or on its own line, suppressing the next line:
//   // easeml-lint: allow(rule-id) why this one is safe
//   code;
// A directive with no reason (or an unknown rule id) is itself reported as
// [bad-suppression] and is not suppressible.
//
// Output: one `file:line: [rule-id] message` per finding, sorted by file
// then line. Exit status: 0 clean, 1 findings, 2 usage/IO error.

#include <algorithm>
#include <cctype>
#include <fstream>
#include <iostream>
#include <set>
#include <sstream>
#include <string>
#include <vector>

#if defined(__has_include)
#if __has_include(<filesystem>)
#include <filesystem>
#define EASEML_LINT_HAS_FS 1
#endif
#endif

namespace easeml::lint {

struct Token {
  std::string text;
  int line = 0;
  bool is_ident = false;
};

struct Suppression {
  int line = 0;
  std::string rule;
  bool own_line = false;  // directive-only line: applies to the next line
  bool has_reason = false;
};

struct Finding {
  std::string file;
  int line = 0;
  std::string rule;
  std::string message;

  bool operator<(const Finding& o) const {
    if (file != o.file) return file < o.file;
    if (line != o.line) return line < o.line;
    return rule < o.rule;
  }
};

struct RuleInfo {
  const char* id;
  const char* summary;
};

constexpr RuleInfo kRules[] = {
    {"unordered-container",
     "unordered containers in engine/scheduler/shard/bandit paths "
     "(iteration order breaks trace parity)"},
    {"raw-rng",
     "raw RNG primitives outside common/rng (every draw must come from the "
     "seeded easeml::Rng stream)"},
    {"chrono-seed",
     "seeding from <chrono> clocks (time-derived seeds are hidden "
     "nondeterminism)"},
    {"raw-double-accum",
     "raw double += in merge/reduce seams outside common/exact_sum "
     "(non-associative; use ExactDoubleSum)"},
    {"raw-sync",
     "std sync primitives outside common/thread_annotations.h (locking must "
     "go through the annotated easeml::Mutex)"},
    {"unguarded-mutex",
     "class declares a Mutex/SpinLock member but annotates no field with "
     "EASEML_GUARDED_BY"},
    {"raw-clock",
     "raw clock reads outside common/ (read time through the "
     "common/clock.h seam: easeml::MonotonicSeconds/ThreadCpuSeconds)"},
    {"raw-file-io",
     "direct file I/O calls (fopen/open/write/fsync/...) outside src/wal/ "
     "(durable bytes must flow through the wal::FileSystem seam)"},
    {"bad-suppression",
     "easeml-lint:allow directive without a reason or with an unknown rule "
     "id"},
};

bool IsKnownRule(const std::string& id) {
  for (const RuleInfo& r : kRules) {
    if (id == r.id) return true;
  }
  return false;
}

// ---------------------------------------------------------------------------
// Source preparation: comment/string/char-literal stripping (preserving line
// structure), suppression-directive collection, preprocessor-line removal.
// ---------------------------------------------------------------------------

// Scans one physical line's comment text for a suppression directive.
void CollectDirective(const std::string& comment, int line, bool own_line,
                      std::vector<Suppression>& out) {
  const std::string marker = "easeml-lint:";
  size_t at = comment.find(marker);
  if (at == std::string::npos) return;
  size_t p = at + marker.size();
  while (p < comment.size() && std::isspace(static_cast<unsigned char>(comment[p]))) ++p;
  const std::string allow = "allow(";
  if (comment.compare(p, allow.size(), allow) != 0) return;
  p += allow.size();
  size_t close = comment.find(')', p);
  if (close == std::string::npos) return;
  Suppression s;
  s.line = line;
  s.rule = comment.substr(p, close - p);
  s.own_line = own_line;
  std::string reason = comment.substr(close + 1);
  for (char c : reason) {
    if (!std::isspace(static_cast<unsigned char>(c))) {
      s.has_reason = true;
      break;
    }
  }
  out.push_back(s);
}

// Replaces comments, string literals, and char literals with spaces (line
// breaks preserved) so tokenization never sees their contents; collects
// suppression directives from // comments along the way.
std::string StripAndCollect(const std::string& src,
                            std::vector<Suppression>& directives) {
  std::string out;
  out.reserve(src.size());
  int line = 1;
  size_t i = 0;
  const size_t n = src.size();
  // Tracks whether any real code appeared on the current line (for own-line
  // directive detection).
  bool code_on_line = false;
  while (i < n) {
    char c = src[i];
    if (c == '\n') {
      out.push_back('\n');
      ++line;
      ++i;
      code_on_line = false;
      continue;
    }
    if (c == '/' && i + 1 < n && src[i + 1] == '/') {
      size_t end = src.find('\n', i);
      if (end == std::string::npos) end = n;
      CollectDirective(src.substr(i + 2, end - i - 2), line, !code_on_line,
                       directives);
      for (size_t k = i; k < end; ++k) out.push_back(' ');
      i = end;
      continue;
    }
    if (c == '/' && i + 1 < n && src[i + 1] == '*') {
      size_t end = src.find("*/", i + 2);
      if (end == std::string::npos) end = n; else end += 2;
      for (size_t k = i; k < end; ++k) {
        if (src[k] == '\n') {
          out.push_back('\n');
          ++line;
        } else {
          out.push_back(' ');
        }
      }
      i = end;
      continue;
    }
    if (c == '"' || c == '\'') {
      const char quote = c;
      out.push_back(' ');
      ++i;
      while (i < n && src[i] != quote) {
        if (src[i] == '\\' && i + 1 < n) {
          out.push_back(' ');
          out.push_back(' ');
          i += 2;
          continue;
        }
        if (src[i] == '\n') {  // unterminated; bail at line end
          break;
        }
        out.push_back(' ');
        ++i;
      }
      if (i < n && src[i] == quote) {
        out.push_back(' ');
        ++i;
      }
      code_on_line = true;
      continue;
    }
    if (!std::isspace(static_cast<unsigned char>(c))) code_on_line = true;
    out.push_back(c);
    ++i;
  }
  return out;
}

// Blanks preprocessor lines (directive text is not subject to the token
// rules; the identifiers reappear at every use site anyway).
void BlankPreprocessorLines(std::string& code) {
  size_t i = 0;
  const size_t n = code.size();
  while (i < n) {
    size_t bol = i;
    while (i < n && code[i] != '\n') ++i;
    size_t first = bol;
    while (first < i && std::isspace(static_cast<unsigned char>(code[first])))
      ++first;
    if (first < i && code[first] == '#') {
      for (size_t k = bol; k < i; ++k) code[k] = ' ';
    }
    if (i < n) ++i;  // skip newline
  }
}

std::vector<Token> Tokenize(const std::string& code) {
  std::vector<Token> tokens;
  int line = 1;
  size_t i = 0;
  const size_t n = code.size();
  while (i < n) {
    char c = code[i];
    if (c == '\n') {
      ++line;
      ++i;
      continue;
    }
    if (std::isspace(static_cast<unsigned char>(c))) {
      ++i;
      continue;
    }
    Token t;
    t.line = line;
    if (std::isalpha(static_cast<unsigned char>(c)) || c == '_') {
      size_t start = i;
      while (i < n && (std::isalnum(static_cast<unsigned char>(code[i])) ||
                       code[i] == '_'))
        ++i;
      t.text = code.substr(start, i - start);
      t.is_ident = true;
    } else if (std::isdigit(static_cast<unsigned char>(c))) {
      size_t start = i;
      while (i < n && (std::isalnum(static_cast<unsigned char>(code[i])) ||
                       code[i] == '.' || code[i] == '\''))
        ++i;
      t.text = code.substr(start, i - start);
    } else {
      // Multi-char punctuators the rules care about; everything else is
      // emitted one char at a time.
      if (i + 1 < n) {
        const std::string two = code.substr(i, 2);
        if (two == "::" || two == "+=" || two == "-=" || two == "->" ||
            two == "==" || two == "<=" || two == ">=" || two == "&&" ||
            two == "||" || two == "<<" || two == ">>") {
          t.text = two;
          i += 2;
          tokens.push_back(t);
          continue;
        }
      }
      t.text = std::string(1, c);
      ++i;
    }
    tokens.push_back(t);
  }
  return tokens;
}

// ---------------------------------------------------------------------------
// Path helpers (lexical; the tool never needs to resolve symlinks).
// ---------------------------------------------------------------------------

std::string Normalize(std::string path) {
  std::replace(path.begin(), path.end(), '\\', '/');
  return path;
}

bool PathContains(const std::string& path, const std::string& piece) {
  return Normalize(path).find(piece) != std::string::npos;
}

bool InEngineDirs(const std::string& path) {
  return PathContains(path, "src/core/") || PathContains(path, "src/scheduler/") ||
         PathContains(path, "src/shard/") || PathContains(path, "src/bandit/");
}

bool IsRngHome(const std::string& path) {
  return PathContains(path, "common/rng.h") || PathContains(path, "common/rng.cc");
}

bool IsExactSumHome(const std::string& path) {
  return PathContains(path, "common/exact_sum.h") ||
         PathContains(path, "common/exact_sum.cc");
}

bool IsAnnotationsHome(const std::string& path) {
  return PathContains(path, "common/thread_annotations.h");
}

// The raw-clock rule exempts all of common/ (clock.h is the seam itself, and
// the wrapper layer is the one place allowed to talk to the OS clocks).
bool InCommonDir(const std::string& path) {
  return PathContains(path, "common/");
}

// The raw-file-io rule exempts all of src/wal/ (file.cc IS the seam — the
// one translation unit allowed to issue POSIX file calls).
bool InWalDir(const std::string& path) {
  return PathContains(path, "wal/");
}

// ---------------------------------------------------------------------------
// The checker.
// ---------------------------------------------------------------------------

const std::set<std::string>& UnorderedContainers() {
  static const std::set<std::string> kSet = {
      "unordered_map", "unordered_set", "unordered_multimap",
      "unordered_multiset"};
  return kSet;
}

const std::set<std::string>& RawRngIdents() {
  static const std::set<std::string> kSet = {
      "rand",         "srand",          "random_device",
      "mt19937",      "mt19937_64",     "minstd_rand",
      "minstd_rand0", "default_random_engine"};
  return kSet;
}

const std::set<std::string>& RawClockIdents() {
  static const std::set<std::string> kSet = {
      "clock_gettime", "gettimeofday", "steady_clock", "system_clock",
      "high_resolution_clock"};
  return kSet;
}

const std::set<std::string>& RawFileIoIdents() {
  static const std::set<std::string> kSet = {
      "fopen",  "fdopen", "freopen",   "open",  "openat",
      "creat",  "write",  "pwrite",    "writev", "fwrite",
      "fsync",  "fdatasync", "ftruncate"};
  return kSet;
}

const std::set<std::string>& RawSyncIdents() {
  static const std::set<std::string> kSet = {
      "mutex",         "timed_mutex",       "recursive_mutex",
      "shared_mutex",  "condition_variable", "condition_variable_any",
      "lock_guard",    "unique_lock",       "scoped_lock",
      "shared_lock"};
  return kSet;
}

bool LooksLikeMergeName(const std::string& ident) {
  return ident.find("Merge") != std::string::npos ||
         ident.find("Reduce") != std::string::npos ||
         ident.find("Combine") != std::string::npos;
}

// Pass 1 over every file: names ever declared with a floating-point type.
// The table is global (and name-based) on purpose: a merge seam usually
// receives its accumulator as a parameter or struct field declared
// elsewhere, and a rare same-name integer costs at most one suppression.
void CollectDoubleIdents(const std::vector<Token>& tokens,
                         std::set<std::string>& out) {
  for (size_t i = 0; i < tokens.size(); ++i) {
    const std::string& t = tokens[i].text;
    if (t != "double" && t != "float") continue;
    size_t j = i + 1;
    while (j < tokens.size() &&
           (tokens[j].text == "*" || tokens[j].text == "&" ||
            tokens[j].text == "const"))
      ++j;
    if (j < tokens.size() && tokens[j].is_ident) out.insert(tokens[j].text);
  }
}

struct ClassScope {
  int brace_depth = 0;  // depth of the scope's opening brace
  int line = 0;
  std::string name;
  bool has_mutex_member = false;
  bool has_guard = false;
};

void CheckFile(const std::string& path, const std::vector<Token>& tokens,
               const std::set<std::string>& double_idents,
               std::vector<Finding>& findings) {
  const bool engine_dir = InEngineDirs(path);
  const bool rng_home = IsRngHome(path);
  const bool exact_sum_home = IsExactSumHome(path);
  const bool annotations_home = IsAnnotationsHome(path);
  const bool common_dir = InCommonDir(path);

  int brace_depth = 0;
  int paren_depth = 0;

  // raw-double-accum context tracking.
  std::vector<int> merge_brace_starts;    // merge-named function/lambda bodies
  std::vector<int> reduce_paren_starts;   // inside ReduceTree(...) arguments
  bool pending_merge = false;             // saw a merge-named ident; waiting
                                          // for its body's opening brace

  // unguarded-mutex scope tracking.
  std::vector<ClassScope> class_stack;
  bool pending_class = false;
  std::string pending_class_name;
  int pending_class_line = 0;

  auto add = [&](int line, const std::string& rule, const std::string& msg) {
    findings.push_back(Finding{path, line, rule, msg});
  };

  for (size_t i = 0; i < tokens.size(); ++i) {
    const Token& tok = tokens[i];
    const std::string& t = tok.text;

    // --- structural bookkeeping -----------------------------------------
    if (t == "(") {
      ++paren_depth;
    } else if (t == ")") {
      --paren_depth;
      while (!reduce_paren_starts.empty() &&
             paren_depth < reduce_paren_starts.back()) {
        reduce_paren_starts.pop_back();
      }
    } else if (t == "{") {
      ++brace_depth;
      if (pending_merge) {
        merge_brace_starts.push_back(brace_depth);
        pending_merge = false;
      }
      if (pending_class) {
        ClassScope scope;
        scope.brace_depth = brace_depth;
        scope.line = pending_class_line;
        scope.name = pending_class_name;
        class_stack.push_back(scope);
        pending_class = false;
      }
    } else if (t == "}") {
      if (!merge_brace_starts.empty() &&
          merge_brace_starts.back() == brace_depth) {
        merge_brace_starts.pop_back();
      }
      if (!class_stack.empty() && class_stack.back().brace_depth == brace_depth) {
        const ClassScope& scope = class_stack.back();
        if (scope.has_mutex_member && !scope.has_guard && !annotations_home) {
          add(scope.line, "unguarded-mutex",
              "class '" + scope.name +
                  "' declares a Mutex/SpinLock member but annotates no "
                  "field with "
                  "EASEML_GUARDED_BY / EASEML_PT_GUARDED_BY");
        }
        class_stack.pop_back();
      }
      --brace_depth;
    } else if (t == ";" && paren_depth == 0) {
      pending_merge = false;   // was a declaration, not a definition
      pending_class = false;   // forward declaration
    }

    if (!tok.is_ident) continue;

    // --- scope openers ---------------------------------------------------
    if (t == "class" || t == "struct") {
      const bool is_enum_class =
          i > 0 && tokens[i - 1].is_ident && tokens[i - 1].text == "enum";
      if (!is_enum_class && i + 1 < tokens.size() && tokens[i + 1].is_ident) {
        pending_class = true;
        pending_class_name = tokens[i + 1].text;
        pending_class_line = tok.line;
      }
      continue;
    }
    if (LooksLikeMergeName(t)) {
      if (t == "ReduceTree") {
        if (i + 1 < tokens.size() && tokens[i + 1].text == "(") {
          reduce_paren_starts.push_back(paren_depth + 1);
        }
      } else {
        pending_merge = true;
      }
    }

    // --- unordered-container --------------------------------------------
    if (engine_dir && UnorderedContainers().count(t) != 0) {
      add(tok.line, "unordered-container",
          "'" + t +
              "' in an engine result path: iteration order is "
              "implementation-defined and breaks cross-shard trace parity; "
              "use std::map/std::set or a sorted vector");
    }

    // --- raw-rng ----------------------------------------------------------
    if (!rng_home && RawRngIdents().count(t) != 0) {
      add(tok.line, "raw-rng",
          "'" + t +
              "' outside common/rng: every random draw must come from the "
              "seeded easeml::Rng stream");
    }

    // --- chrono-seed ------------------------------------------------------
    if (t == "chrono") {
      // Nondeterministic seeding pairs a clock read with a seed sink on the
      // same statement/line; flag the pairing, not every clock read. Scan
      // the whole line (the sink usually precedes the clock read, as in
      // `rng.Seed(std::chrono::...)`), firing once per line.
      size_t first = i;
      while (first > 0 && tokens[first - 1].line == tok.line) --first;
      bool first_chrono_on_line = true;
      for (size_t j = first; j < i; ++j) {
        if (tokens[j].is_ident && tokens[j].text == "chrono") {
          first_chrono_on_line = false;
          break;
        }
      }
      for (size_t j = first;
           first_chrono_on_line && j < tokens.size() &&
           tokens[j].line == tok.line;
           ++j) {
        if (!tokens[j].is_ident) continue;
        std::string lower = tokens[j].text;
        std::transform(lower.begin(), lower.end(), lower.begin(),
                       [](unsigned char ch) { return std::tolower(ch); });
        if (lower.find("seed") != std::string::npos) {
          add(tok.line, "chrono-seed",
              "seeding from a <chrono> clock: time-derived seeds make runs "
              "unreproducible; thread the campaign seed through "
              "easeml::Rng");
          break;
        }
      }
    }

    // --- raw-double-accum -------------------------------------------------
    if (!exact_sum_home && i + 1 < tokens.size() &&
        tokens[i + 1].text == "+=" && double_idents.count(t) != 0) {
      const bool in_merge_fn = !merge_brace_starts.empty();
      const bool in_reduce_call = !reduce_paren_starts.empty();
      if (in_merge_fn || in_reduce_call) {
        add(tok.line, "raw-double-accum",
            "raw 'double " + t +
                " +=' in a merge/reduce seam: floating addition is not "
                "associative, so the result depends on the shard partition; "
                "accumulate through ExactDoubleSum");
      }
    }

    // --- raw-clock --------------------------------------------------------
    if (!common_dir && RawClockIdents().count(t) != 0) {
      add(tok.line, "raw-clock",
          "'" + t +
              "' outside common/: read time through "
              "easeml::MonotonicSeconds()/ThreadCpuSeconds() (common/clock.h) "
              "so every clock read shares one virtualizable seam");
    }

    // --- raw-file-io ------------------------------------------------------
    // Call shape only: `ident(` neither preceded by `.`/`->` (member
    // functions that happen to share a libc name — an fstream's .open() —
    // are a different seam question) nor by a type token (a declaration
    // like `void write(...)` moves no bytes). `return`, though an
    // identifier token, introduces a call.
    if (RawFileIoIdents().count(t) != 0 && !InWalDir(path) &&
        i + 1 < tokens.size() && tokens[i + 1].text == "(") {
      const bool decl_or_member =
          i > 0 && ((tokens[i - 1].is_ident && tokens[i - 1].text != "return") ||
                    tokens[i - 1].text == "*" || tokens[i - 1].text == "&" ||
                    tokens[i - 1].text == "." || tokens[i - 1].text == "->");
      if (!decl_or_member) {
        add(tok.line, "raw-file-io",
            "'" + t +
                "' outside src/wal/: durable bytes must flow through the "
                "wal::FileSystem seam (src/wal/file.h) so fault injection "
                "can interpose on every write and fsync");
      }
    }

    // --- raw-sync ---------------------------------------------------------
    if (!annotations_home && t == "std" && i + 2 < tokens.size() &&
        tokens[i + 1].text == "::" && RawSyncIdents().count(tokens[i + 2].text) != 0) {
      add(tok.line, "raw-sync",
          "'std::" + tokens[i + 2].text +
              "' outside common/thread_annotations.h: use the annotated "
              "easeml::Mutex/MutexLock/CondVar so Clang Thread Safety "
              "Analysis sees the acquisition");
    }

    // --- unguarded-mutex member / guard detection ------------------------
    if (!class_stack.empty()) {
      if (t == "EASEML_GUARDED_BY" || t == "EASEML_PT_GUARDED_BY") {
        class_stack.back().has_guard = true;
      } else if (t == "Mutex" || t == "SpinLock") {
        // SpinLock carries the same capability as Mutex and must follow
        // the same guarded-field discipline.
        size_t j = i + 1;
        while (j < tokens.size() &&
               (tokens[j].text == "*" || tokens[j].text == "&"))
          ++j;
        if (j < tokens.size() && tokens[j].is_ident && tokens[j].text != t) {
          class_stack.back().has_mutex_member = true;
        }
      }
    }
  }
}

// ---------------------------------------------------------------------------
// Suppression application.
// ---------------------------------------------------------------------------

void ApplySuppressions(const std::string& path,
                       const std::vector<Suppression>& directives,
                       std::vector<Finding>& findings,
                       std::vector<Finding>& out) {
  for (const Suppression& s : directives) {
    if (!s.has_reason || !IsKnownRule(s.rule)) {
      std::string why = !s.has_reason
                            ? "suppression without a reason"
                            : "suppression names unknown rule '" + s.rule + "'";
      out.push_back(Finding{
          path, s.line, "bad-suppression",
          why + "; write `// easeml-lint: allow(<rule-id>) <reason>`"});
    }
  }
  for (Finding& f : findings) {
    bool suppressed = false;
    for (const Suppression& s : directives) {
      if (s.rule != f.rule || !s.has_reason) continue;
      if (s.line == f.line || (s.own_line && s.line + 1 == f.line)) {
        suppressed = true;
        break;
      }
    }
    if (!suppressed) out.push_back(std::move(f));
  }
}

// ---------------------------------------------------------------------------
// Driver.
// ---------------------------------------------------------------------------

bool HasLintableExtension(const std::string& path) {
  for (const char* ext : {".h", ".hpp", ".cc", ".cpp"}) {
    const std::string e = ext;
    if (path.size() > e.size() &&
        path.compare(path.size() - e.size(), e.size(), e) == 0) {
      return true;
    }
  }
  return false;
}

int CollectFiles(const std::string& root, std::vector<std::string>& files) {
#ifdef EASEML_LINT_HAS_FS
  namespace fs = std::filesystem;
  std::error_code ec;
  if (fs::is_directory(root, ec)) {
    for (fs::recursive_directory_iterator it(root, ec), end;
         it != end && !ec; it.increment(ec)) {
      if (it->is_regular_file(ec) &&
          HasLintableExtension(it->path().string())) {
        files.push_back(Normalize(it->path().string()));
      }
    }
    return 0;
  }
  if (fs::is_regular_file(root, ec)) {
    files.push_back(Normalize(root));
    return 0;
  }
  std::cerr << "easeml_lint: no such file or directory: " << root << "\n";
  return 2;
#else
  files.push_back(Normalize(root));
  return 0;
#endif
}

void PrintHelp() {
  std::cout << "usage: easeml_lint [--help] <file-or-dir>...\n\n"
            << "Token-level determinism & concurrency-discipline linter for "
               "the easeml tree.\n\n"
            << "Rules:\n";
  for (const RuleInfo& r : kRules) {
    std::cout << "  " << r.id << "\n      " << r.summary << "\n";
  }
  std::cout
      << "\nSuppression (reason required):\n"
      << "  code;  // easeml-lint: allow(rule-id) reason\n"
      << "  // easeml-lint: allow(rule-id) reason   <- suppresses next line\n"
      << "\nExit status: 0 clean, 1 findings, 2 usage/IO error.\n";
}

int Run(int argc, char** argv) {
  std::vector<std::string> roots;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--help" || arg == "-h") {
      PrintHelp();
      return 0;
    }
    if (!arg.empty() && arg[0] == '-') {
      std::cerr << "easeml_lint: unknown option: " << arg << "\n";
      return 2;
    }
    roots.push_back(arg);
  }
  if (roots.empty()) {
    std::cerr << "easeml_lint: no inputs (try --help)\n";
    return 2;
  }

  std::vector<std::string> files;
  for (const std::string& root : roots) {
    const int rc = CollectFiles(root, files);
    if (rc != 0) return rc;
  }
  std::sort(files.begin(), files.end());
  files.erase(std::unique(files.begin(), files.end()), files.end());

  // Pass 1: read + tokenize every file, build the global double-name table.
  struct Prepared {
    std::string path;
    std::vector<Token> tokens;
    std::vector<Suppression> directives;
  };
  std::vector<Prepared> prepared;
  std::set<std::string> double_idents;
  for (const std::string& path : files) {
    std::ifstream in(path, std::ios::binary);
    if (!in) {
      std::cerr << "easeml_lint: cannot read: " << path << "\n";
      return 2;
    }
    std::ostringstream buf;
    buf << in.rdbuf();
    Prepared p;
    p.path = path;
    std::string code = StripAndCollect(buf.str(), p.directives);
    BlankPreprocessorLines(code);
    p.tokens = Tokenize(code);
    CollectDoubleIdents(p.tokens, double_idents);
    prepared.push_back(std::move(p));
  }

  // Pass 2: rule checks + suppression application.
  std::vector<Finding> findings;
  for (const Prepared& p : prepared) {
    std::vector<Finding> raw;
    CheckFile(p.path, p.tokens, double_idents, raw);
    ApplySuppressions(p.path, p.directives, raw, findings);
  }

  std::sort(findings.begin(), findings.end());
  for (const Finding& f : findings) {
    std::cout << f.file << ":" << f.line << ": [" << f.rule << "] "
              << f.message << "\n";
  }
  if (!findings.empty()) {
    std::cerr << "easeml_lint: " << findings.size() << " finding(s) in "
              << files.size() << " file(s)\n";
    return 1;
  }
  return 0;
}

}  // namespace easeml::lint

int main(int argc, char** argv) { return easeml::lint::Run(argc, argv); }
