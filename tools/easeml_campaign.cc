/// easeml_campaign — command-line runner for multi-tenant model-selection
/// experiments, for users who want the paper's protocol on the built-in
/// workloads without writing C++.
///
/// Usage:
///   easeml_campaign [--dataset=NAME] [--strategy=NAME]... [--reps=N]
///                   [--test-users=N] [--budget=F] [--cost-aware]
///                   [--seed=N] [--csv]
///
///   --dataset     deeplearning | 179classifier | syn:SIGMA_M,ALPHA
///                 (default deeplearning)
///   --strategy    easeml | greedy | round-robin | random | fcfs |
///                 most-cited | most-recent (repeatable;
///                 default: easeml round-robin random)
///   --reps        repetitions (default 20)
///   --test-users  test users per repetition (default 10)
///   --budget      budget fraction in (0, 1] (default 0.5)
///   --cost-aware  cost-aware algorithms + cost budget (default off)
///   --seed        master seed (default 42)
///   --csv         emit full loss curves as CSV instead of the summary
#include <cstdio>
#include <cstring>
#include <iostream>
#include <string>
#include <vector>

#include "common/csv.h"
#include "common/table.h"
#include "core/experiment_runner.h"
#include "data/classifier179.h"
#include "data/deeplearning.h"
#include "data/synthetic_generator.h"

namespace {

using easeml::Result;
using easeml::Status;
using easeml::core::ProtocolOptions;
using easeml::core::StrategyKind;

Result<easeml::data::Dataset> MakeDataset(const std::string& name) {
  if (name == "deeplearning") {
    return easeml::data::GenerateDeepLearning({});
  }
  if (name == "179classifier") {
    return easeml::data::GenerateClassifier179({});
  }
  if (name.rfind("syn:", 0) == 0) {
    easeml::data::SimpleSynOptions opts;
    const std::string params = name.substr(4);
    const size_t comma = params.find(',');
    if (comma == std::string::npos) {
      return Status::InvalidArgument(
          "syn dataset needs syn:SIGMA_M,ALPHA (e.g. syn:0.5,1.0)");
    }
    opts.sigma_m = std::atof(params.substr(0, comma).c_str());
    opts.alpha = std::atof(params.substr(comma + 1).c_str());
    if (opts.sigma_m <= 0.0) {
      return Status::InvalidArgument("syn: sigma_m must be > 0");
    }
    return easeml::data::GenerateSimpleSyn(opts);
  }
  return Status::InvalidArgument("unknown dataset: " + name);
}

Result<StrategyKind> ParseStrategy(const std::string& name) {
  if (name == "easeml") return StrategyKind::kEaseMl;
  if (name == "greedy") return StrategyKind::kGreedy;
  if (name == "round-robin") return StrategyKind::kRoundRobin;
  if (name == "random") return StrategyKind::kRandom;
  if (name == "fcfs") return StrategyKind::kFcfs;
  if (name == "most-cited") return StrategyKind::kMostCited;
  if (name == "most-recent") return StrategyKind::kMostRecent;
  return Status::InvalidArgument("unknown strategy: " + name);
}

struct Args {
  std::string dataset = "deeplearning";
  std::vector<StrategyKind> strategies;
  ProtocolOptions protocol;
  bool csv = false;
};

Result<Args> ParseArgs(int argc, char** argv) {
  Args args;
  args.protocol.num_reps = 20;
  auto value_of = [](const char* arg, const char* flag) -> const char* {
    const size_t n = std::strlen(flag);
    if (std::strncmp(arg, flag, n) == 0 && arg[n] == '=') return arg + n + 1;
    return nullptr;
  };
  for (int i = 1; i < argc; ++i) {
    const char* a = argv[i];
    if (const char* v = value_of(a, "--dataset")) {
      args.dataset = v;
    } else if (const char* v2 = value_of(a, "--strategy")) {
      EASEML_ASSIGN_OR_RETURN(StrategyKind kind, ParseStrategy(v2));
      args.strategies.push_back(kind);
    } else if (const char* v3 = value_of(a, "--reps")) {
      args.protocol.num_reps = std::atoi(v3);
    } else if (const char* v4 = value_of(a, "--test-users")) {
      args.protocol.num_test_users = std::atoi(v4);
    } else if (const char* v5 = value_of(a, "--budget")) {
      args.protocol.budget_fraction = std::atof(v5);
    } else if (std::strcmp(a, "--cost-aware") == 0) {
      args.protocol.cost_aware_budget = true;
      args.protocol.cost_aware_policy = true;
    } else if (const char* v6 = value_of(a, "--seed")) {
      args.protocol.seed = std::strtoull(v6, nullptr, 10);
    } else if (std::strcmp(a, "--csv") == 0) {
      args.csv = true;
    } else if (std::strcmp(a, "--help") == 0) {
      return Status::InvalidArgument("help requested");
    } else {
      return Status::InvalidArgument(std::string("unknown flag: ") + a);
    }
  }
  if (args.strategies.empty()) {
    args.strategies = {StrategyKind::kEaseMl, StrategyKind::kRoundRobin,
                       StrategyKind::kRandom};
  }
  return args;
}

void PrintUsage() {
  std::fprintf(
      stderr,
      "usage: easeml_campaign [--dataset=deeplearning|179classifier|"
      "syn:SIGMA_M,ALPHA]\n"
      "                       [--strategy=easeml|greedy|round-robin|random|"
      "fcfs|most-cited|most-recent]...\n"
      "                       [--reps=N] [--test-users=N] [--budget=F]\n"
      "                       [--cost-aware] [--seed=N] [--csv]\n");
}

}  // namespace

int main(int argc, char** argv) {
  auto args = ParseArgs(argc, argv);
  if (!args.ok()) {
    std::fprintf(stderr, "%s\n", args.status().ToString().c_str());
    PrintUsage();
    return 2;
  }
  auto dataset = MakeDataset(args->dataset);
  if (!dataset.ok()) {
    std::fprintf(stderr, "%s\n", dataset.status().ToString().c_str());
    return 1;
  }
  std::fprintf(stderr, "dataset %s: %d users x %d models, %d reps, "
               "budget %.0f%%%s\n",
               dataset->name.c_str(), dataset->num_users(),
               dataset->num_models(), args->protocol.num_reps,
               args->protocol.budget_fraction * 100.0,
               args->protocol.cost_aware_budget ? ", cost-aware" : "");

  auto results = easeml::core::RunStrategies(*dataset, args->strategies,
                                             args->protocol);
  if (!results.ok()) {
    std::fprintf(stderr, "%s\n", results.status().ToString().c_str());
    return 1;
  }
  if (args->csv) {
    easeml::CsvWriter csv(std::cout,
                          {"x", "strategy", "avg_loss", "worst_loss"});
    for (const auto& r : *results) {
      for (size_t i = 0; i < r.curves.grid.size(); ++i) {
        (void)csv.WriteRow({easeml::Table::FormatDouble(r.curves.grid[i], 3),
                            r.strategy_name,
                            easeml::Table::FormatDouble(r.curves.mean[i], 6),
                            easeml::Table::FormatDouble(r.curves.worst[i],
                                                        6)});
      }
    }
    return 0;
  }
  easeml::Table table({"strategy", "final_avg_loss", "final_worst_loss",
                       "auc", "mean_regret", "mean_easeml_regret"});
  for (const auto& r : *results) {
    table.AddRow({r.strategy_name,
                  easeml::Table::FormatDouble(r.curves.mean.back(), 5),
                  easeml::Table::FormatDouble(r.curves.worst.back(), 5),
                  easeml::Table::FormatDouble(r.mean_auc, 5),
                  easeml::Table::FormatDouble(r.mean_cumulative_regret, 3),
                  easeml::Table::FormatDouble(r.mean_easeml_regret, 3)});
  }
  table.Print(std::cout);
  return 0;
}
