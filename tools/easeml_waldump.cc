// easeml_waldump: prints a selector WAL as a record table (offset, epoch,
// type, decoded body) plus an optional hexdump — the operator's view of
// what recovery will replay, and the CI artifact attached to the recovery
// smoke leg. All file access goes through the wal::FileSystem seam.
//
// usage: easeml_waldump [--hex] [--max-records=N] <wal.log>
//
// Exit status: 0 on a clean scan (including a truncated-but-repairable
// tail, which is reported), 1 on an unreplayable log (epoch gap), 2 on
// usage/IO errors.

#include <cinttypes>
#include <cstdio>
#include <string>

#include "wal/file.h"
#include "wal/record.h"

namespace {

using easeml::Result;
using easeml::wal::LogScan;
using easeml::wal::Record;
using easeml::wal::RecordType;

std::string Summarize(const Record& r) {
  char buf[160];
  switch (r.type) {
    case RecordType::kPad:
      snprintf(buf, sizeof(buf), "%zu pad bytes", r.body.size());
      break;
    case RecordType::kRegisterPrior: {
      easeml::wal::RegisterPriorBody b;
      if (!easeml::wal::DecodeRegisterPrior(r.body, &b).ok()) return "<bad body>";
      snprintf(buf, sizeof(buf), "prior_id=%d num_arms=%d noise=%g",
               b.prior_id, b.prior.num_arms, b.prior.noise_variance);
      break;
    }
    case RecordType::kAddTenant: {
      easeml::wal::AddTenantBody b;
      if (!easeml::wal::DecodeAddTenant(r.body, &b).ok()) return "<bad body>";
      snprintf(buf, sizeof(buf), "tenant=%d prior_id=%d models=%zu", b.tenant,
               b.prior_id, b.costs.size());
      break;
    }
    case RecordType::kRemoveTenant: {
      easeml::wal::RemoveTenantBody b;
      if (!easeml::wal::DecodeRemoveTenant(r.body, &b).ok())
        return "<bad body>";
      snprintf(buf, sizeof(buf), "tenant=%d", b.tenant);
      break;
    }
    case RecordType::kNext: {
      easeml::wal::NextBody b;
      if (!easeml::wal::DecodeNext(r.body, &b).ok()) return "<bad body>";
      snprintf(buf, sizeof(buf), "tenant=%d model=%d ticket=%" PRId64,
               b.tenant, b.model, b.ticket);
      break;
    }
    case RecordType::kReport: {
      easeml::wal::ReportBody b;
      if (!easeml::wal::DecodeReport(r.body, &b).ok()) return "<bad body>";
      snprintf(buf, sizeof(buf),
               "ticket=%" PRId64 " tenant=%d model=%d accuracy=%.17g",
               b.ticket, b.tenant, b.model, b.accuracy);
      break;
    }
    case RecordType::kCancel: {
      easeml::wal::CancelBody b;
      if (!easeml::wal::DecodeCancel(r.body, &b).ok()) return "<bad body>";
      snprintf(buf, sizeof(buf), "ticket=%" PRId64 " tenant=%d model=%d",
               b.ticket, b.tenant, b.model);
      break;
    }
    default:
      return "<unknown>";
  }
  return buf;
}

void HexDump(const std::string& bytes) {
  for (size_t off = 0; off < bytes.size(); off += 16) {
    printf("%08zx  ", off);
    for (size_t i = 0; i < 16; ++i) {
      if (off + i < bytes.size()) {
        printf("%02x ", static_cast<unsigned char>(bytes[off + i]));
      } else {
        printf("   ");
      }
      if (i == 7) printf(" ");
    }
    printf(" |");
    for (size_t i = 0; i < 16 && off + i < bytes.size(); ++i) {
      const unsigned char c = static_cast<unsigned char>(bytes[off + i]);
      printf("%c", c >= 0x20 && c < 0x7f ? c : '.');
    }
    printf("|\n");
  }
}

}  // namespace

int main(int argc, char** argv) {
  bool hex = false;
  long max_records = -1;
  std::string path;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--hex") {
      hex = true;
    } else if (arg.rfind("--max-records=", 0) == 0) {
      max_records = atol(arg.c_str() + 14);
    } else if (arg == "--help") {
      printf("usage: easeml_waldump [--hex] [--max-records=N] <wal.log>\n");
      return 0;
    } else if (!arg.empty() && arg[0] == '-') {
      fprintf(stderr, "easeml_waldump: unknown flag %s\n", arg.c_str());
      return 2;
    } else {
      path = arg;
    }
  }
  if (path.empty()) {
    fprintf(stderr, "usage: easeml_waldump [--hex] [--max-records=N] <wal.log>\n");
    return 2;
  }

  easeml::wal::FileSystem* fs = easeml::wal::GetPosixFileSystem();
  Result<std::string> bytes = fs->ReadFile(path);
  if (!bytes.ok()) {
    fprintf(stderr, "easeml_waldump: %s\n", bytes.status().ToString().c_str());
    return 2;
  }
  printf("# %s: %zu bytes\n", path.c_str(), bytes->size());

  Result<LogScan> scan = easeml::wal::ScanLog(*bytes, 0, 0);
  if (!scan.ok()) {
    // An epoch gap: the log is readable but not replayable. Still dump the
    // raw bytes (that is what an operator needs) before failing.
    fprintf(stderr, "easeml_waldump: %s\n", scan.status().ToString().c_str());
    if (hex) HexDump(*bytes);
    return 1;
  }

  printf("%-10s %-8s %-15s %-6s %s\n", "OFFSET", "EPOCH", "TYPE", "BODY",
         "SUMMARY");
  long shown = 0;
  for (const Record& r : scan->records) {
    if (max_records >= 0 && shown >= max_records) {
      printf("... (%zu records not shown)\n", scan->records.size() - shown);
      break;
    }
    printf("%-10" PRId64 " %-8" PRId64 " %-15s %-6zu %s\n", r.offset, r.epoch,
           easeml::wal::RecordTypeName(r.type).c_str(), r.body.size(),
           Summarize(r).c_str());
    ++shown;
  }
  printf("# %zu records, last epoch %" PRId64 ", %" PRId64 " valid bytes\n",
         scan->records.size(), scan->last_epoch, scan->valid_bytes);
  if (scan->truncated) {
    printf("# TORN TAIL at offset %" PRId64 ": %s (%zu bytes would be "
           "truncated by recovery)\n",
           scan->valid_bytes, scan->truncate_reason.c_str(),
           bytes->size() - static_cast<size_t>(scan->valid_bytes));
  }
  if (hex) HexDump(*bytes);
  return 0;
}
