// easeml_top: live terminal monitor for an ease.ml fleet, driven entirely
// through the observability plane — it proves (and demos) that a dashboard
// needs neither the selector lock nor any engine accessor.
//
// The tool runs a synthetic selection campaign in-process: a driver thread
// owns the selector (Next/Report with deterministic SplitMix64 accuracies)
// while the display thread consumes ONLY `obs::SnapshotPlane::Snapshot()`
// and the `obs::Registry` exporters — the exact interference-free read path
// bench/analytics_interference measures.
//
// Usage:
//   easeml_top [--tenants=96] [--models=8] [--shards=4] [--devices=4]
//              [--scheduler=GREEDY] [--interval-ms=500]
//              [--publish-interval=32] [--once] [--export=text|json]
//
// --once renders a single frame after the campaign finishes (for scripts
// and the ctest smoke gate); --export selects the metrics block's format.
// Exit status: 0 on success, 1 on any setup/campaign error.

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <thread>
#include <vector>

#include "common/rng.h"
#include "obs/fleet_observer.h"
#include "obs/metrics.h"
#include "obs/snapshot.h"

namespace {

using easeml::core::TenantObservation;

struct TopOptions {
  int tenants = 96;
  int models = 8;
  int shards = 4;
  int devices = 4;
  std::string scheduler = "GREEDY";
  int interval_ms = 500;
  int publish_interval = 32;
  bool once = false;
  std::string export_format = "text";
};

bool ParseFlag(const std::string& arg, const std::string& name,
               std::string* value) {
  const std::string prefix = "--" + name + "=";
  if (arg.rfind(prefix, 0) != 0) return false;
  *value = arg.substr(prefix.size());
  return true;
}

bool ParseArgs(int argc, char** argv, TopOptions* opts) {
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    std::string value;
    if (arg == "--once") {
      opts->once = true;
    } else if (ParseFlag(arg, "tenants", &value)) {
      opts->tenants = std::atoi(value.c_str());
    } else if (ParseFlag(arg, "models", &value)) {
      opts->models = std::atoi(value.c_str());
    } else if (ParseFlag(arg, "shards", &value)) {
      opts->shards = std::atoi(value.c_str());
    } else if (ParseFlag(arg, "devices", &value)) {
      opts->devices = std::atoi(value.c_str());
    } else if (ParseFlag(arg, "scheduler", &value)) {
      opts->scheduler = value;
    } else if (ParseFlag(arg, "interval-ms", &value)) {
      opts->interval_ms = std::atoi(value.c_str());
    } else if (ParseFlag(arg, "publish-interval", &value)) {
      opts->publish_interval = std::atoi(value.c_str());
    } else if (ParseFlag(arg, "export", &value)) {
      if (value != "text" && value != "json") return false;
      opts->export_format = value;
    } else {
      return false;
    }
  }
  return opts->tenants > 0 && opts->models > 0 && opts->shards > 0 &&
         opts->devices > 0 && opts->interval_ms > 0 &&
         opts->publish_interval > 0;
}

bool ParseScheduler(const std::string& name, easeml::core::SchedulerKind* kind) {
  if (name == "HYBRID") *kind = easeml::core::SchedulerKind::kHybrid;
  else if (name == "GREEDY") *kind = easeml::core::SchedulerKind::kGreedy;
  else if (name == "RR") *kind = easeml::core::SchedulerKind::kRoundRobin;
  else if (name == "RANDOM") *kind = easeml::core::SchedulerKind::kRandom;
  else if (name == "FCFS") *kind = easeml::core::SchedulerKind::kFcfs;
  else return false;
  return true;
}

/// Deterministic synthetic training outcome in (0.05, 0.95).
double Accuracy(int tenant, int model) {
  const uint64_t h = easeml::SplitMix64(
      static_cast<uint64_t>(tenant) * 1000003u + static_cast<uint64_t>(model));
  return 0.05 + 0.9 * (static_cast<double>(h >> 11) * 0x1.0p-53);
}

/// The selection campaign: keeps up to `devices` tickets in flight, reports
/// them FIFO with synthetic accuracies. Runs until exhaustion or `stop`.
void DriveCampaign(easeml::core::MultiTenantSelector* selector, int devices,
                   const std::atomic<bool>* stop, std::atomic<bool>* failed) {
  using Assignment = easeml::core::MultiTenantSelector::Assignment;
  std::vector<Assignment> in_flight;
  while (!stop->load(std::memory_order_relaxed)) {
    while (static_cast<int>(in_flight.size()) < devices &&
           selector->HasDispatchableWork()) {
      easeml::Result<Assignment> next = selector->Next();
      if (!next.ok()) break;
      in_flight.push_back(*next);
    }
    if (in_flight.empty()) break;  // exhausted
    const Assignment a = in_flight.front();
    in_flight.erase(in_flight.begin());
    const easeml::Status reported =
        selector->Report(a, Accuracy(a.tenant, a.model));
    if (!reported.ok()) {
      std::fprintf(stderr, "easeml_top: report failed: %s\n",
                   reported.ToString().c_str());
      failed->store(true, std::memory_order_relaxed);
      return;
    }
  }
  // Unwind anything still in flight so the engine ends quiescent.
  for (const Assignment& a : in_flight) (void)selector->Cancel(a);
}

void RenderFrame(const easeml::obs::FleetObserver& observer,
                 const easeml::obs::Registry& registry,
                 const TopOptions& opts, bool clear_screen) {
  const easeml::obs::FleetSnapshot snap = observer.plane().Snapshot();
  if (clear_screen) std::fputs("\x1b[2J\x1b[H", stdout);
  std::printf("easeml_top — fleet epoch %llu, %d shard(s)\n",
              static_cast<unsigned long long>(snap.epoch()),
              static_cast<int>(snap.shards.size()));
  std::printf("%5s %8s %8s %8s %8s %9s %8s %10s\n", "SHARD", "TENANTS",
              "RETIRED", "SCHED", "UNINIT", "INFLIGHT", "ROUNDS", "EPOCH");
  for (size_t s = 0; s < snap.shards.size(); ++s) {
    const easeml::obs::ShardBlock& b = *snap.shards[s];
    std::printf("%5zu %8lld %8lld %8lld %8lld %9lld %8lld %10llu\n", s,
                static_cast<long long>(b.agg.tenants),
                static_cast<long long>(b.agg.retired),
                static_cast<long long>(b.agg.schedulable),
                static_cast<long long>(b.agg.uninitialized),
                static_cast<long long>(b.agg.in_flight),
                static_cast<long long>(b.agg.rounds),
                static_cast<unsigned long long>(b.epoch));
  }
  const easeml::obs::ShardAggregates total = snap.Totals();
  std::printf("%5s %8lld %8lld %8lld %8lld %9lld %8lld\n", "TOTAL",
              static_cast<long long>(total.tenants),
              static_cast<long long>(total.retired),
              static_cast<long long>(total.schedulable),
              static_cast<long long>(total.uninitialized),
              static_cast<long long>(total.in_flight),
              static_cast<long long>(total.rounds));

  // Top schedulable tenants by line-8 gap — the "who trains next" view.
  std::vector<TenantObservation> top;
  snap.ForEachTenant([&top](int shard, const TenantObservation& o) {
    (void)shard;
    if (o.schedulable && !o.retired) top.push_back(o);
  });
  std::sort(top.begin(), top.end(),
            [](const TenantObservation& a, const TenantObservation& b) {
              if (a.gap != b.gap) return a.gap > b.gap;
              return a.tenant < b.tenant;
            });
  if (top.size() > 10) top.resize(10);
  std::printf("\n%7s %7s %6s %9s %9s %9s %9s\n", "TENANT", "ROUNDS", "BEST",
              "BEST_ACC", "BOUND", "GAP", "MAX_UCB");
  for (const TenantObservation& o : top) {
    std::printf("%7d %7d %6d %9.4f %9.4f %9.4f %9.4f\n", o.tenant,
                o.rounds_served, o.best_model, o.best_reward, o.bound, o.gap,
                o.max_ucb);
  }

  std::printf("\nMETRICS (%s)\n", opts.export_format.c_str());
  const std::string exported = opts.export_format == "json"
                                   ? registry.ExportJson()
                                   : registry.ExportText();
  std::fputs(exported.c_str(), stdout);
  if (!exported.empty() && exported.back() != '\n') std::fputc('\n', stdout);
  std::fflush(stdout);
}

}  // namespace

int main(int argc, char** argv) {
  TopOptions opts;
  if (!ParseArgs(argc, argv, &opts)) {
    std::fprintf(
        stderr,
        "usage: easeml_top [--tenants=N] [--models=K] [--shards=N] "
        "[--devices=D] [--scheduler=HYBRID|GREEDY|RR|RANDOM|FCFS] "
        "[--interval-ms=MS] [--publish-interval=N] [--once] "
        "[--export=text|json]\n");
    return 1;
  }

  easeml::core::SelectorOptions selector_options;
  if (!ParseScheduler(opts.scheduler, &selector_options.scheduler)) {
    std::fprintf(stderr, "easeml_top: unknown scheduler '%s'\n",
                 opts.scheduler.c_str());
    return 1;
  }
  selector_options.num_shards = opts.shards;
  selector_options.num_devices = opts.devices;
  selector_options.use_candidate_index = true;

  easeml::obs::Registry registry;
  easeml::obs::FleetObserverOptions obs_options;
  obs_options.publish_interval = opts.publish_interval;
  obs_options.registry = &registry;
  easeml::Result<easeml::obs::ObservedSelector> observed =
      easeml::obs::MakeObservedSelector(selector_options, obs_options);
  if (!observed.ok()) {
    std::fprintf(stderr, "easeml_top: %s\n",
                 observed.status().ToString().c_str());
    return 1;
  }
  easeml::core::MultiTenantSelector* selector = observed->selector.get();
  for (int t = 0; t < opts.tenants; ++t) {
    std::vector<double> costs;
    costs.reserve(static_cast<size_t>(opts.models));
    for (int m = 0; m < opts.models; ++m) {
      costs.push_back(1.0 + 0.25 * static_cast<double>((t + m) % opts.models));
    }
    easeml::Result<int> added =
        selector->AddTenantWithDefaultPrior(opts.models, std::move(costs));
    if (!added.ok()) {
      std::fprintf(stderr, "easeml_top: %s\n",
                   added.status().ToString().c_str());
      return 1;
    }
  }

  std::atomic<bool> stop{false};
  std::atomic<bool> failed{false};
  std::thread driver([&] {
    DriveCampaign(selector, opts.devices, &stop, &failed);
  });

  if (opts.once) {
    driver.join();
    // Quiesce before flushing: the sharded engine's folds can outlive the
    // driver's last Report, and ValidateIndex drains them under the lock.
    (void)selector->ValidateIndex();
    observed->observer->plane().FlushAll();
    RenderFrame(*observed->observer, registry, opts, /*clear_screen=*/false);
    return failed.load() ? 1 : 0;
  }

  std::atomic<bool> driver_done{false};
  std::thread waiter([&] {
    driver.join();
    driver_done.store(true, std::memory_order_relaxed);
  });
  while (!driver_done.load(std::memory_order_relaxed)) {
    RenderFrame(*observed->observer, registry, opts, /*clear_screen=*/true);
    std::this_thread::sleep_for(std::chrono::milliseconds(opts.interval_ms));
  }
  waiter.join();
  (void)selector->ValidateIndex();  // drain outstanding folds (see --once)
  observed->observer->plane().FlushAll();
  RenderFrame(*observed->observer, registry, opts, /*clear_screen=*/true);
  return failed.load() ? 1 : 0;
}
