#include "bandit/gp_ucb.h"

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "common/rng.h"
#include "gp/shared_prior_gp.h"
#include "linalg/matrix.h"

namespace easeml::bandit {
namespace {

gp::DiscreteArmGp MakeBelief(int k, double noise = 0.01,
                             std::vector<double> mean = {}) {
  auto gp = gp::DiscreteArmGp::Create(linalg::Matrix::Identity(k), noise,
                                      std::move(mean));
  EXPECT_TRUE(gp.ok());
  return std::move(gp).value();
}

TEST(GpUcbTest, CreateValidatesOptions) {
  GpUcbOptions bad_delta;
  bad_delta.delta = 1.5;
  EXPECT_FALSE(GpUcbPolicy::Create(MakeBelief(3), bad_delta).ok());

  GpUcbOptions missing_costs;
  missing_costs.cost_aware = true;
  EXPECT_FALSE(GpUcbPolicy::Create(MakeBelief(3), missing_costs).ok());

  GpUcbOptions bad_costs;
  bad_costs.cost_aware = true;
  bad_costs.costs = {1.0, 0.0, 1.0};
  EXPECT_FALSE(GpUcbPolicy::Create(MakeBelief(3), bad_costs).ok());

  EXPECT_TRUE(GpUcbPolicy::Create(MakeBelief(3), GpUcbOptions()).ok());
}

TEST(GpUcbTest, BetaSchedulePractical) {
  auto policy = GpUcbPolicy::Create(MakeBelief(4), GpUcbOptions());
  ASSERT_TRUE(policy.ok());
  // beta_t = log(K t^2 / delta) with K = 4, delta = 0.1.
  EXPECT_NEAR(policy->Beta(1), std::log(4.0 / 0.1), 1e-12);
  EXPECT_NEAR(policy->Beta(5), std::log(4.0 * 25.0 / 0.1), 1e-12);
  EXPECT_GT(policy->Beta(10), policy->Beta(2));  // increasing in t
}

TEST(GpUcbTest, BetaClampedAtZero) {
  // K = 1, delta close to 1: log(K t^2/delta) < 0 at t = 1 would make
  // sqrt(beta) undefined; the policy clamps at 0.
  GpUcbOptions opts;
  opts.delta = 0.999;
  auto policy = GpUcbPolicy::Create(MakeBelief(1), opts);
  ASSERT_TRUE(policy.ok());
  EXPECT_GE(policy->Beta(1), 0.0);
}

TEST(GpUcbTest, TheoreticalBetaLargerThanPractical) {
  GpUcbOptions practical;
  GpUcbOptions theoretical;
  theoretical.theoretical_beta = true;
  auto p = GpUcbPolicy::Create(MakeBelief(4), practical);
  auto t = GpUcbPolicy::Create(MakeBelief(4), theoretical);
  ASSERT_TRUE(p.ok());
  ASSERT_TRUE(t.ok());
  for (int step : {1, 2, 10, 100}) {
    EXPECT_GT(t->Beta(step), p->Beta(step));
  }
}

TEST(GpUcbTest, UcbCombinesMeanAndStdDev) {
  auto policy =
      GpUcbPolicy::Create(MakeBelief(2, 0.01, {0.3, 0.8}), GpUcbOptions());
  ASSERT_TRUE(policy.ok());
  const double beta = policy->Beta(1);
  EXPECT_NEAR(policy->Ucb(0, 1), 0.3 + std::sqrt(beta) * 1.0, 1e-12);
  EXPECT_NEAR(policy->Ucb(1, 1), 0.8 + std::sqrt(beta) * 1.0, 1e-12);
}

TEST(GpUcbTest, SelectsHighestPriorMeanWhenVariancesEqual) {
  auto policy = GpUcbPolicy::Create(MakeBelief(3, 0.01, {0.1, 0.9, 0.5}),
                                    GpUcbOptions());
  ASSERT_TRUE(policy.ok());
  auto arm = policy->SelectArm({0, 1, 2}, 1);
  ASSERT_TRUE(arm.ok());
  EXPECT_EQ(*arm, 1);
}

TEST(GpUcbTest, RespectsAvailableSet) {
  auto policy = GpUcbPolicy::Create(MakeBelief(3, 0.01, {0.1, 0.9, 0.5}),
                                    GpUcbOptions());
  ASSERT_TRUE(policy.ok());
  auto arm = policy->SelectArm({0, 2}, 1);
  ASSERT_TRUE(arm.ok());
  EXPECT_EQ(*arm, 2);
  EXPECT_FALSE(policy->SelectArm({}, 1).ok());
  EXPECT_FALSE(policy->SelectArm({7}, 1).ok());
  EXPECT_FALSE(policy->SelectArm({0}, 0).ok());
}

TEST(GpUcbTest, CostAwareIndexPenalizesExpensiveArms) {
  // Equal means and variances; arm 1 is 100x more expensive.
  GpUcbOptions opts;
  opts.cost_aware = true;
  opts.costs = {1.0, 100.0};
  auto policy = GpUcbPolicy::Create(MakeBelief(2), opts);
  ASSERT_TRUE(policy.ok());
  EXPECT_GT(policy->Ucb(0, 1), policy->Ucb(1, 1));
  auto arm = policy->SelectArm({0, 1}, 1);
  ASSERT_TRUE(arm.ok());
  EXPECT_EQ(*arm, 0);
}

TEST(GpUcbTest, ExpensiveArmStillWinsWithEnoughPotential) {
  // Arm 1 is costly but its mean advantage dominates once the posterior is
  // tight (small prior variance), so even sqrt(beta/c) cannot flip it —
  // "if it has very large potential reward, even an expensive arm is worth
  // a bet" (Section 3.2).
  auto cov = linalg::Matrix::Identity(2).Scale(0.01);
  auto belief = gp::DiscreteArmGp::Create(cov, 0.001, {0.1, 0.95});
  ASSERT_TRUE(belief.ok());
  GpUcbOptions opts;
  opts.cost_aware = true;
  opts.costs = {1.0, 50.0};
  auto policy = GpUcbPolicy::Create(std::move(belief).value(), opts);
  ASSERT_TRUE(policy.ok());
  auto arm = policy->SelectArm({0, 1}, 1);
  ASSERT_TRUE(arm.ok());
  EXPECT_EQ(*arm, 1);
}

TEST(GpUcbTest, UpdateShiftsSelectionAway) {
  // After observing a low reward on the best-prior arm, selection moves on.
  auto policy = GpUcbPolicy::Create(MakeBelief(2, 0.0001, {0.5, 0.5}),
                                    GpUcbOptions());
  ASSERT_TRUE(policy.ok());
  ASSERT_TRUE(policy->Update(0, 0.05).ok());
  auto arm = policy->SelectArm({0, 1}, 2);
  ASSERT_TRUE(arm.ok());
  EXPECT_EQ(*arm, 1);
}

TEST(GpUcbTest, NoRegretOnIndependentArms) {
  // Playing greedily with exclusion, GP-UCB must find the best arm within
  // K pulls and identify it exactly (deterministic rewards).
  const int k = 6;
  Rng rng(3);
  std::vector<double> truth(k);
  for (double& v : truth) v = rng.Uniform(0.2, 0.95);
  auto policy = GpUcbPolicy::Create(MakeBelief(k, 1e-4), GpUcbOptions());
  ASSERT_TRUE(policy.ok());
  std::vector<int> available;
  for (int a = 0; a < k; ++a) available.push_back(a);
  double best_seen = 0.0;
  for (int t = 1; !available.empty(); ++t) {
    auto arm = policy->SelectArm(available, t);
    ASSERT_TRUE(arm.ok());
    best_seen = std::max(best_seen, truth[*arm]);
    ASSERT_TRUE(policy->Update(*arm, truth[*arm]).ok());
    available.erase(std::find(available.begin(), available.end(), *arm));
  }
  double truth_best = *std::max_element(truth.begin(), truth.end());
  EXPECT_DOUBLE_EQ(best_seen, truth_best);
}

TEST(GpUcbTest, NameReflectsCostAwareness) {
  auto plain = GpUcbPolicy::Create(MakeBelief(2), GpUcbOptions());
  GpUcbOptions opts;
  opts.cost_aware = true;
  opts.costs = {1.0, 2.0};
  auto aware = GpUcbPolicy::Create(MakeBelief(2), opts);
  EXPECT_EQ(plain->name(), "gp-ucb");
  EXPECT_EQ(aware->name(), "gp-ucb-cost-aware");
}

/// The policy is representation-agnostic: over identical priors, a
/// GP-UCB on `SharedPriorGp` must select the same arms and report the same
/// diagnostics as one on the dense `DiscreteArmGp`, round for round.
TEST(GpUcbTest, SharedPriorBeliefMatchesDenseBelief) {
  const int k = 7;
  Rng rng(17);
  // Correlated prior with distinct diagonals.
  linalg::Matrix cov(k, k);
  for (int i = 0; i < k; ++i) {
    for (int j = 0; j < k; ++j) {
      cov(i, j) = 0.4 * std::exp(-0.5 * (i - j) * (i - j));
    }
    cov(i, i) += 0.1 + 0.01 * i;
  }
  std::vector<double> mean(k);
  for (double& m : mean) m = rng.Uniform(0.3, 0.7);

  GpUcbOptions opts;
  opts.cost_aware = true;
  opts.costs.resize(k);
  for (double& c : opts.costs) c = rng.Uniform(0.5, 4.0);

  auto dense_belief = gp::DiscreteArmGp::Create(cov, 1e-3, mean);
  ASSERT_TRUE(dense_belief.ok());
  auto prior = gp::MakeSharedGpPrior(cov, 1e-3, mean);
  ASSERT_TRUE(prior.ok());
  auto shared_belief = gp::SharedPriorGp::CreateUnique(*prior);
  ASSERT_TRUE(shared_belief.ok());

  auto dense = GpUcbPolicy::Create(std::move(dense_belief).value(), opts);
  auto shared =
      GpUcbPolicy::Create(std::move(shared_belief).value(), opts);
  ASSERT_TRUE(dense.ok());
  ASSERT_TRUE(shared.ok());

  std::vector<int> available;
  for (int a = 0; a < k; ++a) available.push_back(a);
  for (int t = 1; !available.empty(); ++t) {
    auto arm_dense = dense->SelectArm(available, t);
    auto arm_shared = shared->SelectArm(available, t);
    ASSERT_TRUE(arm_dense.ok());
    ASSERT_TRUE(arm_shared.ok());
    // The two representations agree to round-off, so the chosen arms'
    // indices may differ only on an exact UCB tie — compare the achieved
    // UCB values instead of the indices to keep the test tie-robust.
    EXPECT_NEAR(dense->Ucb(*arm_dense, t), shared->Ucb(*arm_shared, t),
                1e-9)
        << "t=" << t;
    for (int a : available) {
      EXPECT_NEAR(dense->Mean(a), shared->Mean(a), 1e-9);
      EXPECT_NEAR(dense->StdDev(a), shared->StdDev(a), 1e-9);
      EXPECT_NEAR(dense->Ucb(a, t), shared->Ucb(a, t), 1e-9);
    }
    // Feed both policies the dense-chosen arm so the campaigns stay in
    // lockstep regardless of tie-breaking.
    const double y = rng.Uniform(0.1, 0.9);
    ASSERT_TRUE(dense->Update(*arm_dense, y).ok());
    ASSERT_TRUE(shared->Update(*arm_dense, y).ok());
    available.erase(
        std::find(available.begin(), available.end(), *arm_dense));
  }
}

/// Correlated prior lets GP-UCB skip arms: after observing one arm of a
/// highly correlated pair, the twin's posterior variance collapses, so a
/// third independent arm is preferred — the Section 3.1 motivation for
/// GP-UCB over plain UCB.
TEST(GpUcbTest, CorrelationTransfersInformation) {
  auto cov = *linalg::Matrix::FromRowMajor(3, 3,
                                           {1.0, 0.99, 0.0,   //
                                            0.99, 1.0, 0.0,   //
                                            0.0, 0.0, 1.0});
  auto belief = gp::DiscreteArmGp::Create(cov, 1e-4);
  ASSERT_TRUE(belief.ok());
  auto policy = GpUcbPolicy::Create(std::move(belief).value(),
                                    GpUcbOptions());
  ASSERT_TRUE(policy.ok());
  ASSERT_TRUE(policy->Update(0, 0.1).ok());  // arm 0 (and its twin 1) is bad
  auto arm = policy->SelectArm({1, 2}, 2);
  ASSERT_TRUE(arm.ok());
  EXPECT_EQ(*arm, 2);
}

}  // namespace
}  // namespace easeml::bandit
