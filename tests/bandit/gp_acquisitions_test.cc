#include "bandit/gp_acquisitions.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>

#include "common/rng.h"
#include "linalg/matrix.h"

namespace easeml::bandit {
namespace {

gp::DiscreteArmGp MakeBelief(int k, double noise = 0.01,
                             std::vector<double> mean = {}) {
  auto gp = gp::DiscreteArmGp::Create(linalg::Matrix::Identity(k), noise,
                                      std::move(mean));
  EXPECT_TRUE(gp.ok());
  return std::move(gp).value();
}

TEST(NormalCdfTest, KnownValues) {
  EXPECT_NEAR(NormalCdf(0.0), 0.5, 1e-12);
  EXPECT_NEAR(NormalCdf(1.96), 0.975, 1e-3);
  EXPECT_NEAR(NormalCdf(-1.96), 0.025, 1e-3);
  EXPECT_NEAR(NormalPdf(0.0), 0.3989422804, 1e-9);
  // pdf is the derivative of cdf (finite-difference check).
  const double h = 1e-6;
  for (double z : {-1.5, -0.3, 0.0, 0.8, 2.1}) {
    EXPECT_NEAR((NormalCdf(z + h) - NormalCdf(z - h)) / (2 * h),
                NormalPdf(z), 1e-6);
  }
}

TEST(GpEiTest, ValidatesOptions) {
  GpAcquisitionOptions bad;
  bad.xi = -0.1;
  EXPECT_FALSE(GpEiPolicy::Create(MakeBelief(2), bad).ok());
  bad = GpAcquisitionOptions();
  bad.cost_aware = true;  // costs missing
  EXPECT_FALSE(GpEiPolicy::Create(MakeBelief(2), bad).ok());
  EXPECT_TRUE(GpEiPolicy::Create(MakeBelief(2), {}).ok());
}

TEST(GpEiTest, PrefersHigherMeanAtEqualVariance) {
  auto policy =
      GpEiPolicy::Create(MakeBelief(3, 0.01, {0.2, 0.8, 0.5}), {});
  ASSERT_TRUE(policy.ok());
  auto arm = policy->SelectArm({0, 1, 2}, 1);
  ASSERT_TRUE(arm.ok());
  EXPECT_EQ(*arm, 1);
}

TEST(GpEiTest, AcquisitionIsNonNegativeAndShrinksWithIncumbent) {
  auto policy = GpEiPolicy::Create(MakeBelief(2, 0.0001, {0.5, 0.5}), {});
  ASSERT_TRUE(policy.ok());
  const double before = policy->Acquisition(1);
  EXPECT_GE(before, 0.0);
  // Observing an excellent reward on arm 0 raises the incumbent, so arm 1's
  // expected improvement over it shrinks.
  ASSERT_TRUE(policy->Update(0, 0.95).ok());
  EXPECT_LT(policy->Acquisition(1), before);
  EXPECT_DOUBLE_EQ(policy->best_observed(), 0.95);
}

TEST(GpEiTest, CostAwareDividesByCost) {
  GpAcquisitionOptions opts;
  opts.cost_aware = true;
  opts.costs = {1.0, 10.0};
  auto policy = GpEiPolicy::Create(MakeBelief(2, 0.01, {0.5, 0.5}), opts);
  ASSERT_TRUE(policy.ok());
  EXPECT_NEAR(policy->Acquisition(0) / policy->Acquisition(1), 10.0, 1e-9);
  auto arm = policy->SelectArm({0, 1}, 1);
  ASSERT_TRUE(arm.ok());
  EXPECT_EQ(*arm, 0);
}

TEST(GpEiTest, FindsBestArmOnDeterministicRewards) {
  Rng rng(4);
  const int k = 8;
  std::vector<double> truth(k);
  for (double& v : truth) v = rng.Uniform(0.2, 0.95);
  auto policy = GpEiPolicy::Create(MakeBelief(k, 1e-4), {});
  ASSERT_TRUE(policy.ok());
  std::vector<int> available;
  for (int a = 0; a < k; ++a) available.push_back(a);
  double best_seen = 0.0;
  for (int t = 1; !available.empty(); ++t) {
    auto arm = policy->SelectArm(available, t);
    ASSERT_TRUE(arm.ok());
    best_seen = std::max(best_seen, truth[*arm]);
    ASSERT_TRUE(policy->Update(*arm, truth[*arm]).ok());
    available.erase(std::find(available.begin(), available.end(), *arm));
  }
  EXPECT_DOUBLE_EQ(best_seen,
                   *std::max_element(truth.begin(), truth.end()));
}

TEST(GpPiTest, ProbabilityBoundedByOne) {
  auto policy = GpPiPolicy::Create(MakeBelief(3, 0.01, {0.2, 0.9, 0.5}), {});
  ASSERT_TRUE(policy.ok());
  for (int a = 0; a < 3; ++a) {
    EXPECT_GE(policy->Acquisition(a), 0.0);
    EXPECT_LE(policy->Acquisition(a), 1.0);
  }
  auto arm = policy->SelectArm({0, 1, 2}, 1);
  ASSERT_TRUE(arm.ok());
  EXPECT_EQ(*arm, 1);
}

TEST(GpPiTest, NearCertainImprovementApproachesOne) {
  auto policy = GpPiPolicy::Create(MakeBelief(2, 0.0001, {0.0, 0.9}), {});
  ASSERT_TRUE(policy.ok());
  ASSERT_TRUE(policy->Update(0, 0.1).ok());  // incumbent 0.1
  EXPECT_GT(policy->Acquisition(1), 0.7);
}

TEST(GpThompsonTest, SamplesRespectAvailableSet) {
  auto policy = GpThompsonPolicy::Create(MakeBelief(4), {}, 3);
  ASSERT_TRUE(policy.ok());
  for (int t = 1; t <= 30; ++t) {
    auto arm = policy->SelectArm({1, 3}, t);
    ASSERT_TRUE(arm.ok());
    EXPECT_TRUE(*arm == 1 || *arm == 3);
  }
}

TEST(GpThompsonTest, ExploresAllArmsUnderFlatPrior) {
  auto policy = GpThompsonPolicy::Create(MakeBelief(4), {}, 7);
  ASSERT_TRUE(policy.ok());
  std::set<int> seen;
  for (int t = 1; t <= 200; ++t) {
    auto arm = policy->SelectArm({0, 1, 2, 3}, t);
    ASSERT_TRUE(arm.ok());
    seen.insert(*arm);
  }
  EXPECT_EQ(seen.size(), 4u);
}

TEST(GpThompsonTest, ConcentratesAfterStrongEvidence) {
  auto policy =
      GpThompsonPolicy::Create(MakeBelief(2, 1e-6, {0.0, 0.0}), {}, 11);
  ASSERT_TRUE(policy.ok());
  // Pin both arms with near-noiseless observations: 0 bad, 1 good.
  ASSERT_TRUE(policy->Update(0, 0.1).ok());
  ASSERT_TRUE(policy->Update(1, 0.9).ok());
  int picks_of_one = 0;
  for (int t = 3; t < 103; ++t) {
    auto arm = policy->SelectArm({0, 1}, t);
    ASSERT_TRUE(arm.ok());
    picks_of_one += (*arm == 1);
  }
  EXPECT_GT(picks_of_one, 95);
}

class AcquisitionSweepTest : public ::testing::TestWithParam<int> {};

/// Property: every acquisition policy, run to exhaustion on deterministic
/// rewards, recovers the true best arm (the no-regret property the paper
/// wants from any practical policy).
TEST_P(AcquisitionSweepTest, AllPoliciesRecoverTheBestArm) {
  const int seed = GetParam();
  Rng rng(seed);
  const int k = 10;
  std::vector<double> truth(k);
  for (double& v : truth) v = rng.Uniform(0.1, 0.95);
  const double best = *std::max_element(truth.begin(), truth.end());

  std::vector<std::unique_ptr<BanditPolicy>> policies;
  policies.push_back(std::make_unique<GpEiPolicy>(
      std::move(GpEiPolicy::Create(MakeBelief(k, 1e-4), {}).value())));
  policies.push_back(std::make_unique<GpPiPolicy>(
      std::move(GpPiPolicy::Create(MakeBelief(k, 1e-4), {}).value())));
  policies.push_back(std::make_unique<GpThompsonPolicy>(std::move(
      GpThompsonPolicy::Create(MakeBelief(k, 1e-4), {}, seed).value())));

  for (auto& policy : policies) {
    std::vector<int> available;
    for (int a = 0; a < k; ++a) available.push_back(a);
    double best_seen = 0.0;
    for (int t = 1; !available.empty(); ++t) {
      auto arm = policy->SelectArm(available, t);
      ASSERT_TRUE(arm.ok()) << policy->name();
      best_seen = std::max(best_seen, truth[*arm]);
      ASSERT_TRUE(policy->Update(*arm, truth[*arm]).ok());
      available.erase(std::find(available.begin(), available.end(), *arm));
    }
    EXPECT_DOUBLE_EQ(best_seen, best) << policy->name();
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, AcquisitionSweepTest,
                         ::testing::Range(1, 7));

}  // namespace
}  // namespace easeml::bandit
