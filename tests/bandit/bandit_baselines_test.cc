#include <gtest/gtest.h>

#include <algorithm>
#include <set>
#include <vector>

#include "bandit/epsilon_greedy.h"
#include "bandit/fixed_order.h"
#include "bandit/random_policy.h"
#include "bandit/ucb1.h"

namespace easeml::bandit {
namespace {

TEST(Ucb1Test, SweepsUnplayedArmsFirst) {
  Ucb1Policy policy(4);
  std::set<int> seen;
  std::vector<int> available = {0, 1, 2, 3};
  for (int t = 1; t <= 4; ++t) {
    auto arm = policy.SelectArm(available, t);
    ASSERT_TRUE(arm.ok());
    seen.insert(*arm);
    ASSERT_TRUE(policy.Update(*arm, 0.5).ok());
    available.erase(std::find(available.begin(), available.end(), *arm));
  }
  EXPECT_EQ(seen.size(), 4u);
}

TEST(Ucb1Test, ExploitsBestEmpiricalMean) {
  Ucb1Policy policy(2);
  // Lots of evidence: arm 1 is clearly better.
  for (int i = 0; i < 50; ++i) {
    ASSERT_TRUE(policy.Update(0, 0.2).ok());
    ASSERT_TRUE(policy.Update(1, 0.9).ok());
  }
  auto arm = policy.SelectArm({0, 1}, 101);
  ASSERT_TRUE(arm.ok());
  EXPECT_EQ(*arm, 1);
  EXPECT_NEAR(policy.EmpiricalMean(1), 0.9, 1e-12);
  EXPECT_EQ(policy.Count(0), 50);
}

TEST(Ucb1Test, UpdateValidatesArm) {
  Ucb1Policy policy(2);
  EXPECT_FALSE(policy.Update(2, 0.5).ok());
  EXPECT_FALSE(policy.Update(-1, 0.5).ok());
}

TEST(EpsilonGreedyTest, ZeroEpsilonIsPureExploitation) {
  EpsilonGreedyPolicy policy(3, 0.0, 1);
  ASSERT_TRUE(policy.Update(0, 0.3).ok());
  ASSERT_TRUE(policy.Update(1, 0.8).ok());
  ASSERT_TRUE(policy.Update(2, 0.5).ok());
  for (int t = 0; t < 20; ++t) {
    auto arm = policy.SelectArm({0, 1, 2}, t + 4);
    ASSERT_TRUE(arm.ok());
    EXPECT_EQ(*arm, 1);
  }
}

TEST(EpsilonGreedyTest, FullEpsilonExploresUniformly) {
  EpsilonGreedyPolicy policy(3, 1.0, 2);
  for (int a = 0; a < 3; ++a) ASSERT_TRUE(policy.Update(a, 0.5).ok());
  std::set<int> seen;
  for (int t = 0; t < 100; ++t) {
    auto arm = policy.SelectArm({0, 1, 2}, t + 4);
    ASSERT_TRUE(arm.ok());
    seen.insert(*arm);
  }
  EXPECT_EQ(seen.size(), 3u);
}

TEST(RandomPolicyTest, OnlyPicksAvailableArms) {
  RandomPolicy policy(5, 3);
  for (int t = 0; t < 50; ++t) {
    auto arm = policy.SelectArm({1, 3}, t + 1);
    ASSERT_TRUE(arm.ok());
    EXPECT_TRUE(*arm == 1 || *arm == 3);
  }
  EXPECT_FALSE(policy.SelectArm({}, 1).ok());
  EXPECT_TRUE(policy.Update(0, 0.5).ok());
  EXPECT_FALSE(policy.Update(9, 0.5).ok());
}

TEST(FixedOrderTest, CreateValidatesPermutation) {
  EXPECT_FALSE(FixedOrderPolicy::Create({}, "x").ok());
  EXPECT_FALSE(FixedOrderPolicy::Create({0, 0, 1}, "x").ok());
  EXPECT_FALSE(FixedOrderPolicy::Create({0, 3}, "x").ok());
  EXPECT_TRUE(FixedOrderPolicy::Create({2, 0, 1}, "x").ok());
}

TEST(FixedOrderTest, PlaysInPreferenceOrderSkippingPlayed) {
  auto policy = FixedOrderPolicy::Create({2, 0, 1}, "most-cited");
  ASSERT_TRUE(policy.ok());
  std::vector<int> available = {0, 1, 2};
  std::vector<int> played;
  for (int t = 1; t <= 3; ++t) {
    auto arm = policy->SelectArm(available, t);
    ASSERT_TRUE(arm.ok());
    played.push_back(*arm);
    ASSERT_TRUE(policy->Update(*arm, 0.5).ok());
    available.erase(std::find(available.begin(), available.end(), *arm));
  }
  EXPECT_EQ(played, (std::vector<int>{2, 0, 1}));
  EXPECT_EQ(policy->name(), "most-cited");
}

TEST(OrderByScoreTest, DescendingWithStableTies) {
  // Scores: citations. Ties keep lower index first.
  const std::vector<double> scores = {100, 500, 500, 50};
  EXPECT_EQ(OrderByScoreDescending(scores), (std::vector<int>{1, 2, 0, 3}));
}

TEST(OrderByScoreTest, EmptyInput) {
  EXPECT_TRUE(OrderByScoreDescending({}).empty());
}

}  // namespace
}  // namespace easeml::bandit
