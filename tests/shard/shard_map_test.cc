/// ShardMap invariants: hash placement with rebalancing keeps shard sizes
/// within one of each other (the scan critical path), locals stay sorted,
/// the tenant->shard index stays consistent, and the whole layout is a
/// deterministic function of the operation sequence.
#include "shard/shard_map.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <set>
#include <vector>

namespace easeml::shard {
namespace {

void CheckInvariants(const ShardMap& map) {
  int total = 0;
  std::set<int> seen;
  int min_size = -1;
  int max_size = -1;
  for (int s = 0; s < map.num_shards(); ++s) {
    const std::vector<int>& local = map.local(s);
    EXPECT_TRUE(std::is_sorted(local.begin(), local.end()));
    for (int t : local) {
      EXPECT_EQ(map.shard_of(t), s);
      EXPECT_TRUE(seen.insert(t).second) << "tenant mapped twice: " << t;
    }
    const int size = static_cast<int>(local.size());
    total += size;
    min_size = min_size < 0 ? size : std::min(min_size, size);
    max_size = std::max(max_size, size);
  }
  EXPECT_EQ(total, map.size());
  EXPECT_EQ(map.max_shard_size(), max_size);
  if (map.size() > 0) {
    EXPECT_LE(max_size - min_size, 1)
        << "rebalancing must keep shard sizes within 1";
  }
}

TEST(ShardMapTest, BalancedAfterSequentialAdds) {
  ShardMap map(4);
  for (int t = 0; t < 37; ++t) {
    map.Add(t);
    CheckInvariants(map);
  }
  EXPECT_EQ(map.size(), 37);
  EXPECT_EQ(map.max_shard_size(), 10);  // ceil(37 / 4)
}

TEST(ShardMapTest, SingleShardOwnsEverything) {
  ShardMap map(1);
  for (int t = 0; t < 5; ++t) map.Add(t);
  EXPECT_EQ(map.local(0), (std::vector<int>{0, 1, 2, 3, 4}));
  EXPECT_EQ(map.shard_of(3), 0);
}

TEST(ShardMapTest, MoreShardsThanTenants) {
  ShardMap map(7);
  map.Add(0);
  map.Add(1);
  CheckInvariants(map);
  EXPECT_EQ(map.max_shard_size(), 1);  // spread, never stacked
}

TEST(ShardMapTest, RemovalRebalances) {
  ShardMap map(3);
  for (int t = 0; t < 30; ++t) map.Add(t);
  // Remove every tenant of shard 0 — rebalancing must backfill it.
  std::vector<int> victims = map.local(0);
  for (int t : victims) {
    map.Remove(t);
    CheckInvariants(map);
    EXPECT_EQ(map.shard_of(t), -1);
  }
  EXPECT_EQ(map.size(), 30 - static_cast<int>(victims.size()));
}

TEST(ShardMapTest, UnknownTenantsReportNoShard) {
  ShardMap map(2);
  map.Add(5);
  EXPECT_EQ(map.shard_of(4), -1);
  EXPECT_EQ(map.shard_of(-1), -1);
  EXPECT_EQ(map.shard_of(1000), -1);
}

TEST(ShardMapTest, LayoutIsDeterministic) {
  ShardMap a(5);
  ShardMap b(5);
  for (int t = 0; t < 40; ++t) {
    a.Add(t);
    b.Add(t);
  }
  for (int t = 0; t < 40; t += 3) {
    a.Remove(t);
    b.Remove(t);
  }
  for (int s = 0; s < 5; ++s) EXPECT_EQ(a.local(s), b.local(s));
}

}  // namespace
}  // namespace easeml::shard
