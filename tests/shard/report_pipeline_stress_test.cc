/// Stress and parity battery for the shard-parallel report pipeline.
///
/// Three angles on the coordinator/shard split of `Report`/`Cancel`:
///
///  1. TSan-raced batteries: D concurrent reporters across N in {1,2,4,7}
///     shards with interleaved Cancel/RemoveTenant churn and raced
///     ValidateIndex()/ShardCpuSeconds() sweeps — once on GREEDY (the
///     fully asynchronous path: Report returns with the fold still
///     queued) and once on HYBRID (the draining path: OnOutcome waits for
///     quiescence).
///  2. Run-to-exhaustion parity: a raced campaign must land on exactly the
///     sequential engine's final per-tenant state (bit-equal BestAccuracy,
///     same BestModel/RoundsServed) — the completion set is
///     interleaving-invariant at exhaustion.
///  3. Deterministic lockstep parity: a single-threaded driver replays the
///     SAME out-of-order completion schedule (D=8 permuted reports,
///     cancels, tenant churn) against the sharded and the sequential
///     engine and compares every event — picks, tickets, refusal Status
///     text, periodic per-tenant state. Picks depend on belief BITS, so
///     this pins the per-tenant fold order of the queued pipeline to the
///     sequential engine's.
#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "common/rng.h"
#include "core/multi_tenant_selector.h"
#include "shard/sharded_selector.h"

namespace easeml::shard {
namespace {

using core::MultiTenantSelector;
using core::SchedulerKind;
using core::SelectorOptions;
using Assignment = MultiTenantSelector::Assignment;

/// Deterministic ground-truth accuracy in (0, 1): an integer hash, NOT
/// libm transcendentals, so every thread and engine computes identical
/// bits (same helper as the conformance suite).
double Accuracy(int tenant, int model) {
  const uint64_t x = SplitMix64(static_cast<uint64_t>(tenant) * 1000003u +
                                static_cast<uint64_t>(model));
  return 0.05 + 0.9 * (static_cast<double>(x >> 11) * 0x1.0p-53);
}

std::vector<double> Costs(int tenant, int models) {
  std::vector<double> costs;
  for (int m = 0; m < models; ++m) {
    costs.push_back(1.0 + 0.25 * ((tenant + m) % models));
  }
  return costs;
}

Result<std::unique_ptr<ShardedMultiTenantSelector>> MakeSharded(
    SchedulerKind kind, int shards, int devices, int tenants, int models) {
  SelectorOptions options;
  options.scheduler = kind;
  options.hybrid_patience = 3;
  options.num_devices = devices;
  options.num_shards = shards;
  options.use_candidate_index = true;
  auto created = ShardedMultiTenantSelector::Create(options);
  if (!created.ok()) return created.status();
  for (int t = 0; t < tenants; ++t) {
    auto id = (*created)->AddTenantWithDefaultPrior(models, Costs(t, models));
    if (!id.ok()) return id.status();
  }
  return created;
}

/// Angle 1: the raced battery. Reporters keep their own outstanding lists
/// and fire Report/Cancel (plus duplicate-report probes and raced reads of
/// the draining accessors) while a churn thread removes/adds tenants and
/// sweeps ValidateIndex against live traffic.
void RunRacedReportBattery(SchedulerKind kind, int shards) {
  constexpr int kTenants = 20;
  constexpr int kModels = 6;
  constexpr int kDevices = 8;
  constexpr int kReporters = 3;
  constexpr int kOpsPerReporter = 250;

  auto created = MakeSharded(kind, shards, kDevices, kTenants, kModels);
  ASSERT_TRUE(created.ok()) << created.status().ToString();
  ShardedMultiTenantSelector* selector = created->get();

  std::atomic<int> reported{0};
  std::atomic<bool> failed{false};

  auto reporter = [&](int thread_id) {
    Rng rng(7000 + static_cast<uint64_t>(thread_id));
    std::vector<Assignment> mine;
    for (int op = 0; op < kOpsPerReporter && !failed.load(); ++op) {
      const int dice = rng.UniformInt(0, 9);
      if (mine.empty() || dice < 4) {
        auto a = selector->Next();
        if (a.ok()) {
          mine.push_back(*a);
        } else if (a.status().code() != StatusCode::kFailedPrecondition) {
          ADD_FAILURE() << "Next: " << a.status().ToString();
          failed = true;
        }
      } else {
        const int pick = rng.UniformInt(0, static_cast<int>(mine.size()) - 1);
        const Assignment a = mine[pick];
        mine.erase(mine.begin() + pick);
        const Status st = dice == 9
                              ? selector->Cancel(a)
                              : selector->Report(a, Accuracy(a.tenant, a.model));
        if (st.ok()) {
          if (dice != 9) ++reported;
        } else {
          ADD_FAILURE() << "Report/Cancel: " << st.ToString();
          failed = true;
        }
        // The ticket is retired in the coordinator phase, so the duplicate
        // taxonomy must hold IMMEDIATELY — even while the fold of the
        // first report is still queued on the owning shard.
        const Status dup = selector->Report(a, 0.5);
        if (dup.ok() || (dup.code() != StatusCode::kFailedPrecondition &&
                         dup.code() != StatusCode::kInvalidArgument)) {
          ADD_FAILURE() << "duplicate report accepted: " << dup.ToString();
          failed = true;
        }
      }
      if (dice == 5) {
        // Raced draining reads: BestAccuracy and the (formerly unlocked)
        // ShardCpuSeconds quiesce the pipeline mid-traffic.
        const int t = rng.UniformInt(0, selector->num_tenants() - 1);
        auto acc = selector->BestAccuracy(t);
        if (acc.ok() && (*acc < 0.0 || *acc >= 1.0)) {
          ADD_FAILURE() << "BestAccuracy out of range: " << *acc;
          failed = true;
        }
        if (selector->ShardCpuSeconds().size() !=
            static_cast<size_t>(shards)) {
          ADD_FAILURE() << "ShardCpuSeconds: wrong arity";
          failed = true;
        }
      }
    }
    for (const Assignment& a : mine) selector->Cancel(a);
  };

  std::atomic<bool> stop_churn{false};
  auto churn = [&]() {
    Rng rng(999);
    int added = 0;
    while (!stop_churn.load()) {
      const int tenant = rng.UniformInt(0, selector->num_tenants() - 1);
      const Status st = selector->RemoveTenant(tenant);
      if (!st.ok() && st.code() != StatusCode::kFailedPrecondition &&
          st.code() != StatusCode::kOutOfRange) {
        ADD_FAILURE() << "RemoveTenant: " << st.ToString();
        failed = true;
      }
      if (rng.UniformInt(0, 15) == 0) {
        const Status valid = selector->ValidateIndex();
        if (!valid.ok()) {
          ADD_FAILURE() << "ValidateIndex: " << valid.ToString();
          failed = true;
        }
      }
      if (added < 6 && rng.UniformInt(0, 2) == 0) {
        auto id = selector->AddTenantWithDefaultPrior(
            kModels, std::vector<double>(kModels, 1.0));
        if (id.ok()) {
          ++added;
        } else {
          ADD_FAILURE() << "AddTenant: " << id.status().ToString();
          failed = true;
        }
      }
      std::this_thread::yield();
    }
  };

  std::vector<std::thread> threads;
  threads.emplace_back(churn);
  for (int c = 0; c < kReporters; ++c) threads.emplace_back(reporter, c);
  for (size_t i = 1; i < threads.size(); ++i) threads[i].join();
  stop_churn = true;
  threads[0].join();

  EXPECT_FALSE(failed.load());
  EXPECT_EQ(selector->num_in_flight(), 0);
  EXPECT_GT(reported.load(), 0);
  // Conservation: every reported completion folded into exactly one
  // tenant's round count (RoundsServed drains the queues first).
  int rounds = 0;
  for (int t = 0; t < selector->num_tenants(); ++t) {
    auto served = selector->RoundsServed(t);
    ASSERT_TRUE(served.ok());
    rounds += *served;
  }
  EXPECT_EQ(rounds, reported.load());
  const Status valid = selector->ValidateIndex();
  EXPECT_TRUE(valid.ok()) << valid.ToString();
}

TEST(ReportPipelineStressTest, RacedReportersAsyncGreedy) {
  for (int shards : {1, 2, 4, 7}) {
    SCOPED_TRACE("shards=" + std::to_string(shards));
    RunRacedReportBattery(SchedulerKind::kGreedy, shards);
  }
}

TEST(ReportPipelineStressTest, RacedReportersDrainingHybrid) {
  for (int shards : {1, 2, 4, 7}) {
    SCOPED_TRACE("shards=" + std::to_string(shards));
    RunRacedReportBattery(SchedulerKind::kHybrid, shards);
  }
}

/// Angle 2: whatever the thread interleaving, a raced campaign driven to
/// exhaustion folds the SAME completion set as the sequential engine —
/// final per-tenant state must match it bit for bit.
TEST(ReportPipelineStressTest, RacedExhaustionMatchesSequentialEngine) {
  constexpr int kTenants = 12;
  constexpr int kModels = 5;
  constexpr int kDevices = 8;
  constexpr int kReporters = 4;

  for (int shards : {2, 7}) {
    SCOPED_TRACE("shards=" + std::to_string(shards));
    auto created =
        MakeSharded(SchedulerKind::kGreedy, shards, kDevices, kTenants, kModels);
    ASSERT_TRUE(created.ok()) << created.status().ToString();
    ShardedMultiTenantSelector* sharded = created->get();

    std::atomic<bool> failed{false};
    std::vector<std::thread> threads;
    for (int r = 0; r < kReporters; ++r) {
      threads.emplace_back([&] {
        while (!sharded->Exhausted() && !failed.load()) {
          auto a = sharded->Next();
          if (!a.ok()) {
            if (a.status().code() != StatusCode::kFailedPrecondition) {
              ADD_FAILURE() << "Next: " << a.status().ToString();
              failed = true;
            }
            std::this_thread::yield();
            continue;
          }
          const Status st = sharded->Report(*a, Accuracy(a->tenant, a->model));
          if (!st.ok()) {
            ADD_FAILURE() << "Report: " << st.ToString();
            failed = true;
          }
        }
      });
    }
    for (auto& t : threads) t.join();
    ASSERT_FALSE(failed.load());
    EXPECT_EQ(sharded->num_in_flight(), 0);

    // Sequential reference: same tenants, same ground truth, D=1.
    SelectorOptions ref_options;
    ref_options.scheduler = SchedulerKind::kGreedy;
    ref_options.use_candidate_index = true;
    auto ref = MultiTenantSelector::Create(ref_options);
    ASSERT_TRUE(ref.ok());
    for (int t = 0; t < kTenants; ++t) {
      ASSERT_TRUE(
          ref->AddTenantWithDefaultPrior(kModels, Costs(t, kModels)).ok());
    }
    while (!ref->Exhausted()) {
      auto a = ref->Next();
      ASSERT_TRUE(a.ok()) << a.status().ToString();
      ASSERT_TRUE(ref->Report(*a, Accuracy(a->tenant, a->model)).ok());
    }

    for (int t = 0; t < kTenants; ++t) {
      SCOPED_TRACE("tenant=" + std::to_string(t));
      EXPECT_EQ(sharded->RoundsServed(t).value(), ref->RoundsServed(t).value());
      EXPECT_EQ(sharded->BestModel(t).value(), ref->BestModel(t).value());
      // Bit-equal doubles: the best reward is a comparison over the same
      // hash-accuracy set, no arithmetic.
      EXPECT_EQ(sharded->BestAccuracy(t).value(), ref->BestAccuracy(t).value());
    }
    EXPECT_TRUE(sharded->ValidateIndex().ok());
  }
}

/// Angle 3: deterministic lockstep driver. Both engines see the identical
/// op schedule — slot-filling Next bursts, then completions handed back in
/// a seeded PERMUTED order (with cancels and tenant churn) — and must
/// agree on every event. Sharded picks read post-fold belief bits, so any
/// deviation in per-tenant fold order shows up as a diverging pick.
void RunOutOfOrderLockstep(SchedulerKind kind, int shards, bool use_index) {
  constexpr int kTenants = 9;
  constexpr int kModels = 5;
  constexpr int kDevices = 8;
  constexpr int kOps = 700;

  SelectorOptions options;
  options.scheduler = kind;
  options.hybrid_patience = 3;
  options.num_devices = kDevices;
  options.use_candidate_index = use_index;
  auto ref = MultiTenantSelector::Create(options);
  ASSERT_TRUE(ref.ok());
  options.num_shards = shards;
  auto sharded = ShardedMultiTenantSelector::Create(options);
  ASSERT_TRUE(sharded.ok());
  for (int t = 0; t < kTenants; ++t) {
    ASSERT_TRUE(
        ref->AddTenantWithDefaultPrior(kModels, Costs(t, kModels)).ok());
    ASSERT_TRUE((*sharded)
                    ->AddTenantWithDefaultPrior(kModels, Costs(t, kModels))
                    .ok());
  }

  Rng rng(4242);
  std::vector<Assignment> open_ref;
  std::vector<Assignment> open_sharded;
  int added = 0;
  for (int op = 0; op < kOps; ++op) {
    const int dice = rng.UniformInt(0, 19);
    if (open_ref.empty() || dice < 8) {
      auto a = ref->Next();
      auto b = (*sharded)->Next();
      ASSERT_EQ(a.ok(), b.ok()) << "op " << op << ": "
                                << a.status().ToString() << " vs "
                                << b.status().ToString();
      if (a.ok()) {
        ASSERT_EQ(a->tenant, b->tenant) << "op " << op;
        ASSERT_EQ(a->model, b->model) << "op " << op;
        ASSERT_EQ(a->id, b->id) << "op " << op;
        open_ref.push_back(*a);
        open_sharded.push_back(*b);
      } else {
        // Refusals must match by TEXT, not just code.
        ASSERT_EQ(a.status().ToString(), b.status().ToString());
      }
    } else if (dice < 17) {
      // Out-of-order completion: hand back a seeded-random outstanding
      // ticket — the same index in both engines' (identical) lists.
      const int pick =
          rng.UniformInt(0, static_cast<int>(open_ref.size()) - 1);
      const Assignment a = open_ref[pick];
      const Assignment b = open_sharded[pick];
      open_ref.erase(open_ref.begin() + pick);
      open_sharded.erase(open_sharded.begin() + pick);
      if (dice == 16) {
        ASSERT_EQ(ref->Cancel(a).ToString(),
                  (*sharded)->Cancel(b).ToString());
      } else {
        const double acc = Accuracy(a.tenant, a.model);
        ASSERT_EQ(ref->Report(a, acc).ToString(),
                  (*sharded)->Report(b, acc).ToString());
      }
    } else {
      const int tenant = rng.UniformInt(0, ref->num_tenants() - 1);
      ASSERT_EQ(ref->RemoveTenant(tenant).ToString(),
                (*sharded)->RemoveTenant(tenant).ToString());
      if (added < 4 && rng.UniformInt(0, 1) == 0) {
        const int t = kTenants + added++;
        auto ida =
            ref->AddTenantWithDefaultPrior(kModels, Costs(t, kModels));
        auto idb =
            (*sharded)->AddTenantWithDefaultPrior(kModels, Costs(t, kModels));
        ASSERT_TRUE(ida.ok() && idb.ok());
        ASSERT_EQ(*ida, *idb);
      }
    }
    if (op % 97 == 0) {
      for (int t = 0; t < ref->num_tenants(); ++t) {
        ASSERT_EQ(ref->RoundsServed(t).value(),
                  (*sharded)->RoundsServed(t).value());
        ASSERT_EQ(ref->BestAccuracy(t).value(),
                  (*sharded)->BestAccuracy(t).value());
      }
    }
  }
  // Drain every outstanding ticket in a final permuted order.
  while (!open_ref.empty()) {
    const int pick = rng.UniformInt(0, static_cast<int>(open_ref.size()) - 1);
    const Assignment a = open_ref[pick];
    const Assignment b = open_sharded[pick];
    open_ref.erase(open_ref.begin() + pick);
    open_sharded.erase(open_sharded.begin() + pick);
    const double acc = Accuracy(a.tenant, a.model);
    ASSERT_EQ(ref->Report(a, acc).ToString(),
              (*sharded)->Report(b, acc).ToString());
  }
  for (int t = 0; t < ref->num_tenants(); ++t) {
    SCOPED_TRACE("tenant=" + std::to_string(t));
    EXPECT_EQ(ref->RoundsServed(t).value(),
              (*sharded)->RoundsServed(t).value());
    EXPECT_EQ(ref->BestModel(t).status().ToString(),
              (*sharded)->BestModel(t).status().ToString());
    if (ref->BestModel(t).ok()) {
      EXPECT_EQ(ref->BestModel(t).value(), (*sharded)->BestModel(t).value());
    }
    EXPECT_EQ(ref->BestAccuracy(t).value(),
              (*sharded)->BestAccuracy(t).value());
  }
  EXPECT_TRUE((*sharded)->ValidateIndex().ok());
}

TEST(ReportPipelineStressTest, OutOfOrderLockstepParityGreedyIndexed) {
  for (int shards : {1, 2, 4, 7}) {
    SCOPED_TRACE("shards=" + std::to_string(shards));
    RunOutOfOrderLockstep(SchedulerKind::kGreedy, shards, /*use_index=*/true);
  }
}

TEST(ReportPipelineStressTest, OutOfOrderLockstepParityHybridIndexed) {
  for (int shards : {1, 2, 4, 7}) {
    SCOPED_TRACE("shards=" + std::to_string(shards));
    RunOutOfOrderLockstep(SchedulerKind::kHybrid, shards, /*use_index=*/true);
  }
}

TEST(ReportPipelineStressTest, OutOfOrderLockstepParityGreedyScan) {
  for (int shards : {2, 7}) {
    SCOPED_TRACE("shards=" + std::to_string(shards));
    RunOutOfOrderLockstep(SchedulerKind::kGreedy, shards, /*use_index=*/false);
  }
}

}  // namespace
}  // namespace easeml::shard
