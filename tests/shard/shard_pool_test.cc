/// ShardPool semantics: FIFO report queues (`Enqueue`/`DrainQueues`),
/// run-to-completion Shutdown, and the RunOn/Enqueue decline protocol —
/// including the regression for the routed-call shutdown race, where
/// `RunOn` used to silently skip the closure and leak the caller's
/// pre-seeded "routed call did not execute" sentinel Status.
#include "shard/shard_pool.h"

#include <gtest/gtest.h>

#include <atomic>
#include <thread>
#include <vector>

namespace easeml::shard {
namespace {

TEST(ShardPoolTest, EnqueueRunsTasksInFifoOrderPerWorker) {
  constexpr int kWorkers = 3;
  constexpr int kTasksPerWorker = 50;
  ShardPool pool(kWorkers);
  std::vector<std::vector<int>> order(kWorkers);
  for (int i = 0; i < kTasksPerWorker; ++i) {
    for (int w = 0; w < kWorkers; ++w) {
      // `order` rows are written only by their owning worker; DrainQueues
      // publishes the writes before the reads below.
      EXPECT_TRUE(pool.Enqueue(w, [&order, w, i] { order[w].push_back(i); }));
    }
  }
  pool.DrainQueues();
  for (int w = 0; w < kWorkers; ++w) {
    ASSERT_EQ(order[w].size(), static_cast<size_t>(kTasksPerWorker));
    for (int i = 0; i < kTasksPerWorker; ++i) EXPECT_EQ(order[w][i], i);
  }
}

TEST(ShardPoolTest, DrainQueuesIsANoOpWhenIdle) {
  ShardPool pool(2);
  pool.DrainQueues();  // must not block
  std::atomic<int> ran{0};
  EXPECT_TRUE(pool.Enqueue(1, [&] { ++ran; }));
  pool.DrainQueues();
  EXPECT_EQ(ran.load(), 1);
  pool.DrainQueues();  // idempotent after the drain
  EXPECT_EQ(ran.load(), 1);
}

TEST(ShardPoolTest, QueuedWorkCoexistsWithBarriersAndSolos) {
  constexpr int kWorkers = 4;
  ShardPool pool(kWorkers);
  std::atomic<int> queued_runs{0};
  for (int w = 0; w < kWorkers; ++w) {
    EXPECT_TRUE(pool.Enqueue(w, [&] { ++queued_runs; }));
  }
  std::atomic<int> barrier_runs{0};
  pool.RunAll([&](int) { ++barrier_runs; });
  bool solo_ran = false;
  EXPECT_TRUE(pool.RunOn(2, [&] { solo_ran = true; }));
  pool.DrainQueues();
  EXPECT_EQ(queued_runs.load(), kWorkers);
  EXPECT_EQ(barrier_runs.load(), kWorkers);
  EXPECT_TRUE(solo_ran);
  // All three kinds of closure feed the same CPU accounting.
  const std::vector<double> cpu = pool.WorkerCpuSeconds();
  EXPECT_EQ(cpu.size(), static_cast<size_t>(kWorkers));
}

TEST(ShardPoolTest, ShutdownRunsEveryAcceptedTask) {
  ShardPool pool(2);
  std::atomic<int> ran{0};
  for (int i = 0; i < 200; ++i) {
    ASSERT_TRUE(pool.Enqueue(i % 2, [&] { ++ran; }));
  }
  // Accepted work must run-to-completion even when Shutdown lands while
  // the queues are still full.
  pool.Shutdown();
  EXPECT_EQ(ran.load(), 200);
}

TEST(ShardPoolTest, ShutdownDeclinesNewWorkWithoutRunningIt) {
  ShardPool pool(2);
  pool.Shutdown();
  pool.Shutdown();  // idempotent
  bool ran = false;
  EXPECT_FALSE(pool.RunOn(0, [&] { ran = true; }));
  EXPECT_FALSE(pool.Enqueue(1, [&] { ran = true; }));
  EXPECT_FALSE(ran);     // a declined closure must never execute
  pool.DrainQueues();    // and an empty drain must not hang
}

/// Regression for the routed-call shutdown race: a caller racing RunOn
/// against Shutdown must get an exact answer — `true` iff the closure ran
/// — never a silent skip. Every accepted closure's side effect must be
/// visible to the caller when RunOn returns true.
TEST(ShardPoolTest, RunOnVersusShutdownRaceReportsExactExecution) {
  for (int round = 0; round < 20; ++round) {
    auto pool = std::make_unique<ShardPool>(2);
    std::atomic<int> executed{0};
    std::atomic<int> accepted{0};
    std::thread caller([&] {
      for (int i = 0; i < 1000; ++i) {
        if (pool->RunOn(i % 2, [&] { ++executed; })) {
          ++accepted;
        } else {
          break;  // pool shut down; later calls would also be declined
        }
      }
    });
    pool->Shutdown();
    caller.join();
    EXPECT_EQ(executed.load(), accepted.load());
  }
}

TEST(ShardPoolTest, ConcurrentEnqueuersAllLandBeforeDrainReturns) {
  constexpr int kThreads = 4;
  constexpr int kPerThread = 100;
  ShardPool pool(3);
  std::atomic<int> ran{0};
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      for (int i = 0; i < kPerThread; ++i) {
        ASSERT_TRUE(pool.Enqueue((t + i) % 3, [&] { ++ran; }));
      }
    });
  }
  for (auto& t : threads) t.join();
  pool.DrainQueues();
  EXPECT_EQ(ran.load(), kThreads * kPerThread);
}

}  // namespace
}  // namespace easeml::shard
