/// Raced churn/stress battery for the sharded selector: concurrent
/// Next/Report/Cancel from several client threads while a churn thread
/// removes and adds tenants — the workload tier1.sh's tsan preset races
/// under ThreadSanitizer. The assertions are structural (status codes from
/// the documented taxonomy, in-flight accounting, conservation of issued
/// tickets); the bit-identical scheduling guarantees live in the
/// single-threaded conformance suite.
#include "shard/sharded_selector.h"

#include <gtest/gtest.h>

#include <atomic>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

#include "common/rng.h"
#include "core/multi_tenant_selector.h"

namespace easeml::shard {
namespace {

using core::MultiTenantSelector;
using core::SchedulerKind;
using core::SelectorOptions;
using Assignment = MultiTenantSelector::Assignment;

/// Shared battery body; `use_index` flips the selector onto the
/// index-backed pick path so the same races cover the tournament trees,
/// with the churn thread interleaving debug ValidateIndex() sweeps (the
/// rebalance-consistency invariant of the churn satellite).
void RunConcurrentChurnBattery(bool use_index) {
  constexpr int kShards = 4;
  constexpr int kInitialTenants = 24;
  constexpr int kModels = 6;
  constexpr int kDevices = 8;
  constexpr int kClientThreads = 3;
  constexpr int kOpsPerClient = 400;

  SelectorOptions options;
  options.scheduler = SchedulerKind::kHybrid;
  options.hybrid_patience = 3;
  options.num_devices = kDevices;
  options.num_shards = kShards;
  options.use_candidate_index = use_index;
  auto created = ShardedMultiTenantSelector::Create(options);
  ASSERT_TRUE(created.ok());
  ShardedMultiTenantSelector* selector = created->get();
  for (int t = 0; t < kInitialTenants; ++t) {
    ASSERT_TRUE(selector
                    ->AddTenantWithDefaultPrior(
                        kModels, std::vector<double>(kModels, 1.0))
                    .ok());
  }

  std::atomic<int> reported{0};
  std::atomic<int> cancelled{0};
  std::atomic<bool> failed{false};

  auto client = [&](int thread_id) {
    Rng rng(1000 + static_cast<uint64_t>(thread_id));
    std::vector<Assignment> mine;
    for (int op = 0; op < kOpsPerClient && !failed.load(); ++op) {
      const int dice = rng.UniformInt(0, 9);
      if (mine.empty() || dice < 4) {
        auto a = selector->Next();
        if (a.ok()) {
          mine.push_back(*a);
        } else if (a.status().code() != StatusCode::kFailedPrecondition) {
          // The only legal refusal for a live selector under contention.
          ADD_FAILURE() << "Next: " << a.status().ToString();
          failed = true;
        }
      } else {
        const int pick = rng.UniformInt(0, static_cast<int>(mine.size()) - 1);
        const Assignment a = mine[pick];
        mine.erase(mine.begin() + pick);
        if (dice == 9) {
          const Status st = selector->Cancel(a);
          if (st.ok()) {
            ++cancelled;
          } else {
            ADD_FAILURE() << "Cancel: " << st.ToString();
            failed = true;
          }
        } else {
          const Status st =
              selector->Report(a, 0.1 + 0.8 * rng.Uniform());
          if (st.ok()) {
            ++reported;
          } else {
            ADD_FAILURE() << "Report: " << st.ToString();
            failed = true;
          }
        }
        // Forged duplicates must be rejected with the precise taxonomy and
        // must never corrupt state.
        const Status dup = selector->Report(a, 0.5);
        if (dup.ok() ||
            (dup.code() != StatusCode::kFailedPrecondition &&
             dup.code() != StatusCode::kInvalidArgument)) {
          ADD_FAILURE() << "duplicate report accepted: " << dup.ToString();
          failed = true;
        }
      }
    }
    // Drain what this thread still holds so the final accounting closes.
    for (const Assignment& a : mine) {
      selector->Cancel(a);
    }
  };

  std::atomic<bool> stop_churn{false};
  auto churn = [&]() {
    Rng rng(999);
    int added = 0;
    while (!stop_churn.load()) {
      const int tenant = rng.UniformInt(0, selector->num_tenants() - 1);
      const Status st = selector->RemoveTenant(tenant);
      if (!st.ok() && st.code() != StatusCode::kFailedPrecondition &&
          st.code() != StatusCode::kOutOfRange) {
        ADD_FAILURE() << "RemoveTenant: " << st.ToString();
        failed = true;
      }
      if (use_index && rng.UniformInt(0, 15) == 0) {
        // Raced against live Next/Report/Cancel traffic: the invariant
        // check locks the engine, so it sees a quiescent, fresh index.
        const Status valid = selector->ValidateIndex();
        if (!valid.ok()) {
          ADD_FAILURE() << "ValidateIndex: " << valid.ToString();
          failed = true;
        }
      }
      if (added < 8 && rng.UniformInt(0, 2) == 0) {
        // Also hammers the process-wide default-prior cache concurrently.
        auto id = selector->AddTenantWithDefaultPrior(
            kModels, std::vector<double>(kModels, 1.0));
        if (id.ok()) {
          ++added;
        } else {
          ADD_FAILURE() << "AddTenant: " << id.status().ToString();
          failed = true;
        }
      }
      std::this_thread::yield();
    }
  };

  std::vector<std::thread> threads;
  threads.emplace_back(churn);
  for (int c = 0; c < kClientThreads; ++c) threads.emplace_back(client, c);
  for (size_t i = 1; i < threads.size(); ++i) threads[i].join();
  stop_churn = true;
  threads[0].join();

  EXPECT_FALSE(failed.load());
  EXPECT_EQ(selector->num_in_flight(), 0);  // every client drained
  EXPECT_GT(reported.load(), 0);
  // Conservation: every reported completion is a served round of some
  // still-queryable tenant (removal keeps history readable).
  int rounds = 0;
  for (int t = 0; t < selector->num_tenants(); ++t) {
    auto served = selector->RoundsServed(t);
    ASSERT_TRUE(served.ok());
    rounds += *served;
    auto acc = selector->BestAccuracy(t);
    ASSERT_TRUE(acc.ok());
    EXPECT_GE(*acc, 0.0);
    EXPECT_LT(*acc, 1.0);
  }
  EXPECT_EQ(rounds, reported.load());
  const Status valid = selector->ValidateIndex();
  EXPECT_TRUE(valid.ok()) << valid.ToString();
}

TEST(ShardedStressTest, ConcurrentNextReportCancelRemove) {
  RunConcurrentChurnBattery(/*use_index=*/false);
}

TEST(ShardedStressTest, ConcurrentNextReportCancelRemoveIndexed) {
  RunConcurrentChurnBattery(/*use_index=*/true);
}

/// Concurrent selector CONSTRUCTION against the process-wide default-prior
/// cache (the satellite fix: one prior per (K, noise), now mutex-guarded).
TEST(ShardedStressTest, ConcurrentDefaultPriorCacheSetup) {
  constexpr int kThreads = 4;
  std::atomic<bool> failed{false};
  std::vector<std::thread> threads;
  for (int i = 0; i < kThreads; ++i) {
    threads.emplace_back([&, i] {
      SelectorOptions options;
      options.scheduler = SchedulerKind::kFcfs;
      options.num_shards = 1 + i % 3;
      auto engine = MakeSelector(options);
      if (!engine.ok()) {
        failed = true;
        return;
      }
      for (int t = 0; t < 40; ++t) {
        // Overlapping (K, noise) keys across all threads.
        const int k = 2 + (t + i) % 3;
        const double noise = (t % 2 == 0) ? 1e-2 : 5e-3;
        auto id = (*engine)->AddTenantWithDefaultPrior(
            k, std::vector<double>(k, 1.0), noise);
        if (!id.ok()) failed = true;
      }
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_FALSE(failed.load());
}

}  // namespace
}  // namespace easeml::shard
