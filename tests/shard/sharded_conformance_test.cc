/// Conformance suite for the sharded selector engine: for every scheduler
/// policy, shard count N in {1, 2, 4, 7} and candidate-index mode (scan vs
/// index-backed picks), a full campaign driven through
/// `ShardedMultiTenantSelector` must replay the UNSHARDED, scan-backed
/// `MultiTenantSelector` bit-identically — same (tenant, model, ticket)
/// trace from `Next()`, same refusal statuses, same final per-tenant state —
/// including under multi-device operation and tenant churn
/// (RemoveTenant/AddTenant mid-campaign). A pinned golden trace guards the
/// whole stack against silent drift.
#include "shard/sharded_selector.h"

#include <gtest/gtest.h>

#include <cstdint>
#include <memory>
#include <string>
#include <tuple>
#include <vector>

#include "common/rng.h"
#include "core/multi_tenant_selector.h"

namespace easeml::shard {
namespace {

using core::MultiTenantSelector;
using core::SchedulerKind;
using core::SelectorOptions;
using Assignment = MultiTenantSelector::Assignment;

constexpr SchedulerKind kAllKinds[] = {
    SchedulerKind::kHybrid, SchedulerKind::kGreedy, SchedulerKind::kRoundRobin,
    SchedulerKind::kRandom, SchedulerKind::kFcfs};

/// Deterministic ground-truth accuracy in (0, 1): an integer hash, NOT libm
/// transcendentals, so every platform and thread computes identical bits.
double Accuracy(int tenant, int model) {
  const uint64_t x = SplitMix64(static_cast<uint64_t>(tenant) * 1000003u +
                                static_cast<uint64_t>(model));
  return 0.05 + 0.9 * (static_cast<double>(x >> 11) * 0x1.0p-53);
}

std::vector<double> Costs(int tenant, int models) {
  std::vector<double> costs;
  for (int m = 0; m < models; ++m) {
    costs.push_back(1.0 + 0.25 * ((tenant + m) % models));
  }
  return costs;
}

/// One event of a campaign trace. `op` is 'N' (Next), 'R' (Report),
/// 'C' (Cancel), '-' (RemoveTenant), '+' (AddTenant); `code` records the
/// Status code so refusals must match across engines too.
struct Event {
  char op;
  int tenant;
  int model;
  int64_t id;
  int code;

  bool operator==(const Event& other) const {
    return op == other.op && tenant == other.tenant && model == other.model &&
           id == other.id && code == other.code;
  }
};

std::string ToString(const Event& e) {
  return std::string(1, e.op) + "(" + std::to_string(e.tenant) + "," +
         std::to_string(e.model) + "," + std::to_string(e.id) + ")s" +
         std::to_string(e.code);
}

/// Drives one full campaign: keep every device slot filled, then hand back
/// a pseudo-randomly chosen outstanding completion (the same seeded choice
/// sequence for every engine), optionally cancelling some completions and
/// churning tenants. Returns the full event trace.
std::vector<Event> Drive(MultiTenantSelector* selector, int tenants,
                         int models, bool churn) {
  Rng rng(2026);
  std::vector<Event> trace;
  std::vector<Assignment> outstanding;
  for (int t = 0; t < tenants; ++t) {
    EXPECT_TRUE(
        selector->AddTenantWithDefaultPrior(models, Costs(t, models)).ok());
  }
  int reports = 0;
  int added = 0;
  while (true) {
    while (selector->HasDispatchableWork()) {
      auto a = selector->Next();
      if (!a.ok()) {
        ADD_FAILURE() << a.status().ToString();
        return trace;
      }
      trace.push_back({'N', a->tenant, a->model, a->id, 0});
      outstanding.push_back(*a);
    }
    if (outstanding.empty()) break;
    const int pick =
        rng.UniformInt(0, static_cast<int>(outstanding.size()) - 1);
    const Assignment a = outstanding[pick];
    outstanding.erase(outstanding.begin() + pick);
    if (rng.UniformInt(0, 9) == 0) {
      // Occasional device failure: the ticket is returned via Cancel and
      // the (tenant, model) becomes dispatchable again.
      const Status st = selector->Cancel(a);
      trace.push_back(
          {'C', a.tenant, a.model, a.id, static_cast<int>(st.code())});
    } else {
      const Status st = selector->Report(a, Accuracy(a.tenant, a.model));
      trace.push_back(
          {'R', a.tenant, a.model, a.id, static_cast<int>(st.code())});
      ++reports;
    }
    if (churn) {
      if (reports % 7 == 3) {
        // May be refused (in-flight tickets) — the refusal must replay too.
        const int victim = reports % selector->num_tenants();
        const Status st = selector->RemoveTenant(victim);
        trace.push_back({'-', victim, -1, -1, static_cast<int>(st.code())});
      }
      if (reports % 11 == 5 && added < 3) {
        auto id = selector->AddTenantWithDefaultPrior(
            models, Costs(selector->num_tenants(), models));
        EXPECT_TRUE(id.ok());
        trace.push_back({'+', id.ok() ? *id : -1, -1, -1, 0});
        ++added;
      }
    }
  }
  // Final per-tenant state must agree as well; fold it into the trace.
  for (int t = 0; t < selector->num_tenants(); ++t) {
    auto best = selector->BestModel(t);
    auto rounds = selector->RoundsServed(t);
    trace.push_back({'B', t, best.ok() ? *best : -1,
                     rounds.ok() ? static_cast<int64_t>(*rounds) : -1,
                     static_cast<int>(best.status().code())});
  }
  return trace;
}

SelectorOptions MakeOptions(SchedulerKind kind, int devices, int shards,
                            bool use_index = false) {
  SelectorOptions options;
  options.scheduler = kind;
  options.hybrid_patience = 3;  // small enough to exercise the freeze switch
  options.seed = 7;
  options.num_devices = devices;
  options.num_shards = shards;
  options.use_candidate_index = use_index;
  return options;
}

void ExpectSameTrace(const std::vector<Event>& expected,
                     const std::vector<Event>& actual,
                     const std::string& label) {
  ASSERT_EQ(expected.size(), actual.size()) << label;
  for (size_t i = 0; i < expected.size(); ++i) {
    ASSERT_TRUE(expected[i] == actual[i])
        << label << ": divergence at event " << i << ": expected "
        << ToString(expected[i]) << ", got " << ToString(actual[i]);
  }
}

class ShardedConformanceTest
    : public ::testing::TestWithParam<std::tuple<SchedulerKind, int>> {};

TEST_P(ShardedConformanceTest, ReplaysUnshardedBitIdentically) {
  const SchedulerKind kind = std::get<0>(GetParam());
  const int devices = std::get<1>(GetParam());
  constexpr int kTenants = 13;
  constexpr int kModels = 5;

  auto sequential =
      MultiTenantSelector::Create(MakeOptions(kind, devices, 1));
  ASSERT_TRUE(sequential.ok());
  const std::vector<Event> reference =
      Drive(&sequential.value(), kTenants, kModels, /*churn=*/false);

  for (int shards : {1, 2, 4, 7}) {
    for (bool use_index : {false, true}) {
      auto engine =
          MakeSelector(MakeOptions(kind, devices, shards, use_index));
      ASSERT_TRUE(engine.ok()) << engine.status().ToString();
      const std::vector<Event> trace =
          Drive(engine->get(), kTenants, kModels, /*churn=*/false);
      ExpectSameTrace(reference, trace,
                      core::SchedulerKindName(kind) + "/D=" +
                          std::to_string(devices) + "/N=" +
                          std::to_string(shards) +
                          (use_index ? "/index" : "/scan"));
      EXPECT_TRUE((*engine)->ValidateIndex().ok());
    }
  }
}

TEST_P(ShardedConformanceTest, ReplaysUnshardedUnderTenantChurn) {
  const SchedulerKind kind = std::get<0>(GetParam());
  const int devices = std::get<1>(GetParam());
  constexpr int kTenants = 11;
  constexpr int kModels = 4;

  auto sequential =
      MultiTenantSelector::Create(MakeOptions(kind, devices, 1));
  ASSERT_TRUE(sequential.ok());
  const std::vector<Event> reference =
      Drive(&sequential.value(), kTenants, kModels, /*churn=*/true);

  for (int shards : {1, 2, 4, 7}) {
    for (bool use_index : {false, true}) {
      if (shards == 1 && !use_index) continue;  // that IS the reference
      auto engine =
          MakeSelector(MakeOptions(kind, devices, shards, use_index));
      ASSERT_TRUE(engine.ok()) << engine.status().ToString();
      const std::vector<Event> trace =
          Drive(engine->get(), kTenants, kModels, /*churn=*/true);
      ExpectSameTrace(reference, trace,
                      core::SchedulerKindName(kind) + "/churn/D=" +
                          std::to_string(devices) + "/N=" +
                          std::to_string(shards) +
                          (use_index ? "/index" : "/scan"));
      // Churn is where placement and leaves could desynchronize: the
      // rebuilt index must replay every aggregate from scratch cleanly.
      const Status valid = (*engine)->ValidateIndex();
      EXPECT_TRUE(valid.ok()) << valid.ToString();
    }
  }
}

std::string ParamName(
    const ::testing::TestParamInfo<std::tuple<SchedulerKind, int>>& info) {
  std::string name = core::SchedulerKindName(std::get<0>(info.param));
  for (auto& c : name) {
    if (c == '-') c = '_';
  }
  return name + "_D" + std::to_string(std::get<1>(info.param));
}

INSTANTIATE_TEST_SUITE_P(
    AllSchedulers, ShardedConformanceTest,
    ::testing::Combine(::testing::ValuesIn(kAllKinds),
                       ::testing::Values(1, 3)),
    ParamName);

/// The factory must return the plain engine at 1 shard and the sharded one
/// above, both accepting the full ticketed protocol.
TEST(MakeSelectorTest, SelectsEngineByShardCount) {
  auto plain = MakeSelector(MakeOptions(SchedulerKind::kGreedy, 1, 1));
  ASSERT_TRUE(plain.ok());
  EXPECT_EQ(dynamic_cast<ShardedMultiTenantSelector*>(plain->get()), nullptr);

  auto sharded = MakeSelector(MakeOptions(SchedulerKind::kGreedy, 1, 4));
  ASSERT_TRUE(sharded.ok());
  auto* engine = dynamic_cast<ShardedMultiTenantSelector*>(sharded->get());
  ASSERT_NE(engine, nullptr);
  EXPECT_EQ(engine->num_shards(), 4);

  auto bad = MakeSelector(MakeOptions(SchedulerKind::kGreedy, 1, 0));
  EXPECT_FALSE(bad.ok());
  EXPECT_EQ(bad.status().code(), StatusCode::kInvalidArgument);
}

/// Golden trace: the full HYBRID campaign (T=6, K=3, D=2) on the 4-shard
/// engine, pinned event by event. Guards the whole stack — shard map, scan
/// fan-out, exact candidate threshold, reduction tie-breaks, ticket
/// accounting — against silent drift; by the conformance tests above the
/// same trace is what the sequential engine and every other shard count
/// produce.
TEST(ShardedGoldenTraceTest, PinnedHybridCampaign) {
  static const char* const kGolden[] = {
      "N 0 0 0",   "N 1 2 1",   "R 0 0 0",   "N 2 1 2",   "R 2 1 2",
      "N 3 0 3",   "R 1 2 1",   "N 4 2 4",   "R 4 2 4",   "N 5 1 5",
      "R 3 0 3",   "N 3 1 6",   "R 3 1 6",   "N 5 2 7",   "R 5 1 5",
      "N 2 2 8",   "R 2 2 8",   "N 2 0 9",   "R 2 0 9",   "N 3 2 10",
      "R 5 2 7",   "N 1 0 11",  "R 3 2 10",  "N 4 0 12",  "R 1 0 11",
      "N 1 1 13",  "R 4 0 12",  "N 4 1 14",  "R 1 1 13",  "N 5 0 15",
      "R 4 1 14",  "N 0 1 16",  "R 0 1 16",  "N 0 2 17",  "R 0 2 17",
      "R 5 0 15",  "B 0 0",     "B 1 2",     "B 2 1",     "B 3 2",
      "B 4 2",     "B 5 2",
  };
  auto engine = MakeSelector(MakeOptions(SchedulerKind::kHybrid, 2, 4));
  ASSERT_TRUE(engine.ok());
  MultiTenantSelector* selector = engine->get();
  constexpr int kTenants = 6;
  constexpr int kModels = 3;
  for (int t = 0; t < kTenants; ++t) {
    ASSERT_TRUE(
        selector->AddTenantWithDefaultPrior(kModels, Costs(t, kModels)).ok());
  }
  Rng rng(2026);
  std::vector<Assignment> outstanding;
  std::vector<std::string> trace;
  while (true) {
    while (selector->HasDispatchableWork()) {
      auto a = selector->Next();
      ASSERT_TRUE(a.ok());
      trace.push_back("N " + std::to_string(a->tenant) + " " +
                      std::to_string(a->model) + " " + std::to_string(a->id));
      outstanding.push_back(*a);
    }
    if (outstanding.empty()) break;
    const int pick =
        rng.UniformInt(0, static_cast<int>(outstanding.size()) - 1);
    const Assignment a = outstanding[pick];
    outstanding.erase(outstanding.begin() + pick);
    ASSERT_TRUE(selector->Report(a, Accuracy(a.tenant, a.model)).ok());
    trace.push_back("R " + std::to_string(a.tenant) + " " +
                    std::to_string(a.model) + " " + std::to_string(a.id));
  }
  for (int t = 0; t < kTenants; ++t) {
    trace.push_back("B " + std::to_string(t) + " " +
                    std::to_string(selector->BestModel(t).value_or(-1)));
  }
  ASSERT_EQ(trace.size(), sizeof(kGolden) / sizeof(kGolden[0]));
  for (size_t i = 0; i < trace.size(); ++i) {
    EXPECT_EQ(trace[i], kGolden[i]) << "golden-trace drift at event " << i;
  }
}

TEST(MakeSelectorTest, ShardSizesStayBalancedUnderChurn) {
  auto engine = MakeSelector(MakeOptions(SchedulerKind::kFcfs, 1, 4));
  ASSERT_TRUE(engine.ok());
  auto* sharded = dynamic_cast<ShardedMultiTenantSelector*>(engine->get());
  ASSERT_NE(sharded, nullptr);
  for (int t = 0; t < 18; ++t) {
    ASSERT_TRUE(
        sharded->AddTenantWithDefaultPrior(3, {1.0, 1.0, 1.0}).ok());
  }
  std::vector<int> sizes = sharded->ShardSizes();
  EXPECT_EQ(sizes.size(), 4u);
  int total = 0;
  for (int s : sizes) {
    total += s;
    EXPECT_GE(s, 4);
    EXPECT_LE(s, 5);
  }
  EXPECT_EQ(total, 18);
  ASSERT_TRUE(sharded->RemoveTenant(2).ok());
  ASSERT_TRUE(sharded->RemoveTenant(9).ok());
  total = 0;
  for (int s : sharded->ShardSizes()) {
    total += s;
    EXPECT_EQ(s, 4);
  }
  EXPECT_EQ(total, 16);
}

}  // namespace
}  // namespace easeml::shard
