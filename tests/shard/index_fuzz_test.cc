/// Randomized fuzz-conformance suite for the incremental candidate index:
/// for every scheduler policy, >= 10k pseudo-random mixed events —
/// Next / Report (in- and out-of-order) / Cancel / stale-ticket replays /
/// AddTenant / RemoveTenant (valid, in-flight-refused, out-of-range) — are
/// applied in lockstep to a scan-backed reference selector and to
/// index-backed engines (unsharded and sharded), asserting event-for-event
/// that every assignment, tenant id and Status code is identical. Periodic
/// ValidateIndex() sweeps re-derive every key and aggregate from scratch,
/// so a stale leaf or drifted exact sum fails even if it never changed a
/// pick within the horizon.
#include "shard/sharded_selector.h"

#include <gtest/gtest.h>

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "common/rng.h"
#include "core/multi_tenant_selector.h"

namespace easeml::shard {
namespace {

using core::MultiTenantSelector;
using core::SchedulerKind;
using core::SelectorOptions;
using Assignment = MultiTenantSelector::Assignment;

constexpr int kEvents = 10000;
constexpr int kModels = 4;
constexpr int kInitialTenants = 12;
constexpr int kDevices = 3;

constexpr SchedulerKind kAllKinds[] = {
    SchedulerKind::kHybrid, SchedulerKind::kGreedy, SchedulerKind::kRoundRobin,
    SchedulerKind::kRandom, SchedulerKind::kFcfs};

double Accuracy(int tenant, int model) {
  const uint64_t x = SplitMix64(static_cast<uint64_t>(tenant) * 99991u +
                                static_cast<uint64_t>(model) + 17u);
  return 0.05 + 0.9 * (static_cast<double>(x >> 11) * 0x1.0p-53);
}

std::vector<double> Costs(int tenant, int models) {
  std::vector<double> costs;
  for (int m = 0; m < models; ++m) {
    costs.push_back(1.0 + 0.25 * ((tenant + m) % models));
  }
  return costs;
}

SelectorOptions MakeOptions(SchedulerKind kind, int shards, bool use_index) {
  SelectorOptions options;
  options.scheduler = kind;
  options.hybrid_patience = 3;
  options.seed = 11;
  options.num_devices = kDevices;
  options.num_shards = shards;
  options.use_candidate_index = use_index;
  return options;
}

struct Engine {
  std::string label;
  std::unique_ptr<MultiTenantSelector> selector;
};

class IndexFuzzConformanceTest
    : public ::testing::TestWithParam<SchedulerKind> {};

TEST_P(IndexFuzzConformanceTest, IndexedPicksEqualScanPicksEventForEvent) {
  const SchedulerKind kind = GetParam();

  // The reference is the scan-backed sequential engine; the subjects run
  // the index-backed pick path, unsharded and sharded.
  std::vector<Engine> engines;
  for (auto [shards, use_index, label] :
       {std::tuple<int, bool, const char*>{1, false, "scan/N=1"},
        std::tuple<int, bool, const char*>{1, true, "index/N=1"},
        std::tuple<int, bool, const char*>{3, true, "index/N=3"}}) {
    auto engine = MakeSelector(MakeOptions(kind, shards, use_index));
    ASSERT_TRUE(engine.ok()) << engine.status().ToString();
    engines.push_back(Engine{label, std::move(*engine)});
  }

  for (int t = 0; t < kInitialTenants; ++t) {
    for (Engine& e : engines) {
      auto id = e.selector->AddTenantWithDefaultPrior(kModels,
                                                      Costs(t, kModels));
      ASSERT_TRUE(id.ok());
      ASSERT_EQ(*id, t) << e.label;
    }
  }

  // Outstanding and closed tickets are tracked once: the conformance
  // assertions below guarantee every engine issued identical assignments.
  Rng rng(20260730u + static_cast<uint64_t>(kind));
  std::vector<Assignment> outstanding;
  std::vector<Assignment> closed;
  int added = kInitialTenants;

  auto check_same_status = [&](const char* op, int event, const Status& ref,
                               const Status& got, const Engine& e) {
    ASSERT_EQ(static_cast<int>(ref.code()), static_cast<int>(got.code()))
        << e.label << ": " << op << " status diverged at event " << event
        << ": reference " << ref.ToString() << " vs " << got.ToString();
  };

  for (int event = 0; event < kEvents; ++event) {
    int dice = rng.UniformInt(0, 99);
    // Completion-shaped events degrade to Next when nothing is in flight
    // (keeps the event budget honest instead of skipping).
    if (outstanding.empty() && dice >= 40 && dice < 80) dice = 0;
    if (closed.empty() && dice >= 80 && dice < 86) dice = 0;

    if (dice < 40) {  // Next on every engine; identical assignment or code
      auto ref = engines[0].selector->Next();
      for (size_t i = 1; i < engines.size(); ++i) {
        auto got = engines[i].selector->Next();
        ASSERT_EQ(ref.ok(), got.ok())
            << engines[i].label << ": Next ok-ness diverged at event "
            << event << " ("
            << (ref.ok() ? "issued" : ref.status().ToString()) << " vs "
            << (got.ok() ? "issued" : got.status().ToString()) << ")";
        if (ref.ok()) {
          ASSERT_EQ(ref->tenant, got->tenant)
              << engines[i].label << " at event " << event;
          ASSERT_EQ(ref->model, got->model)
              << engines[i].label << " at event " << event;
          ASSERT_EQ(ref->id, got->id)
              << engines[i].label << " at event " << event;
        } else {
          check_same_status("Next", event, ref.status(), got.status(),
                            engines[i]);
        }
      }
      if (ref.ok()) outstanding.push_back(*ref);
    } else if (dice < 70) {  // Report a random outstanding completion
      const int pick =
          rng.UniformInt(0, static_cast<int>(outstanding.size()) - 1);
      const Assignment a = outstanding[pick];
      outstanding.erase(outstanding.begin() + pick);
      const double accuracy = Accuracy(a.tenant, a.model);
      const Status ref = engines[0].selector->Report(a, accuracy);
      for (size_t i = 1; i < engines.size(); ++i) {
        check_same_status("Report", event, ref,
                          engines[i].selector->Report(a, accuracy),
                          engines[i]);
      }
      closed.push_back(a);
    } else if (dice < 80) {  // Cancel a random outstanding ticket
      const int pick =
          rng.UniformInt(0, static_cast<int>(outstanding.size()) - 1);
      const Assignment a = outstanding[pick];
      outstanding.erase(outstanding.begin() + pick);
      const Status ref = engines[0].selector->Cancel(a);
      for (size_t i = 1; i < engines.size(); ++i) {
        check_same_status("Cancel", event, ref,
                          engines[i].selector->Cancel(a), engines[i]);
      }
      closed.push_back(a);
    } else if (dice < 86) {  // Stale/forged replays: refusal taxonomy
      const int pick = rng.UniformInt(0, static_cast<int>(closed.size()) - 1);
      Assignment a = closed[pick];
      if (rng.UniformInt(0, 2) == 0) a.id += 1000000;  // never issued
      const Status ref = engines[0].selector->Report(a, 0.5);
      for (size_t i = 1; i < engines.size(); ++i) {
        check_same_status("stale Report", event, ref,
                          engines[i].selector->Report(a, 0.5), engines[i]);
      }
    } else if (dice < 94) {  // AddTenant (same shape everywhere)
      const std::vector<double> costs = Costs(added, kModels);
      Result<int> ref = engines[0].selector->AddTenantWithDefaultPrior(
          kModels, costs);
      ASSERT_TRUE(ref.ok());
      for (size_t i = 1; i < engines.size(); ++i) {
        auto id = engines[i].selector->AddTenantWithDefaultPrior(kModels,
                                                                 costs);
        ASSERT_TRUE(id.ok()) << engines[i].label;
        ASSERT_EQ(*ref, *id) << engines[i].label << " at event " << event;
      }
      ++added;
    } else {  // RemoveTenant: valid ids, in-flight refusals, out-of-range
      const int victim = rng.UniformInt(0, added + 1);
      const Status ref = engines[0].selector->RemoveTenant(victim);
      for (size_t i = 1; i < engines.size(); ++i) {
        check_same_status("RemoveTenant", event, ref,
                          engines[i].selector->RemoveTenant(victim),
                          engines[i]);
      }
    }

    if (event % 512 == 511) {
      for (const Engine& e : engines) {
        const Status valid = e.selector->ValidateIndex();
        ASSERT_TRUE(valid.ok()) << e.label << " at event " << event << ": "
                                << valid.ToString();
      }
    }
  }

  // Final cross-engine state audit over every tenant ever registered.
  const int tenants = engines[0].selector->num_tenants();
  for (const Engine& e : engines) {
    ASSERT_EQ(e.selector->num_tenants(), tenants) << e.label;
    const Status valid = e.selector->ValidateIndex();
    EXPECT_TRUE(valid.ok()) << e.label << ": " << valid.ToString();
  }
  for (int t = 0; t < tenants; ++t) {
    const auto best = engines[0].selector->BestModel(t);
    const auto rounds = engines[0].selector->RoundsServed(t);
    for (size_t i = 1; i < engines.size(); ++i) {
      const auto got_best = engines[i].selector->BestModel(t);
      const auto got_rounds = engines[i].selector->RoundsServed(t);
      ASSERT_EQ(best.ok(), got_best.ok()) << engines[i].label;
      if (best.ok()) {
        EXPECT_EQ(*best, *got_best) << engines[i].label << " tenant " << t;
      }
      ASSERT_TRUE(got_rounds.ok());
      EXPECT_EQ(*rounds, *got_rounds) << engines[i].label << " tenant " << t;
    }
  }
}

std::string ParamName(const ::testing::TestParamInfo<SchedulerKind>& info) {
  std::string name = core::SchedulerKindName(info.param);
  for (auto& c : name) {
    if (c == '-') c = '_';
  }
  return name;
}

INSTANTIATE_TEST_SUITE_P(AllSchedulers, IndexFuzzConformanceTest,
                         ::testing::ValuesIn(kAllKinds), ParamName);

}  // namespace
}  // namespace easeml::shard
