#include "gp/shared_prior_gp.h"

#include <gtest/gtest.h>

#include <cmath>
#include <memory>
#include <vector>

#include "common/rng.h"
#include "gp/gaussian_process.h"
#include "linalg/matrix.h"

namespace easeml::gp {
namespace {

constexpr double kTol = 1e-9;

/// Random SPD Gram matrix: an RBF kernel over random 3-d model features
/// (high off-diagonal correlation when `length_scale` is large) plus a
/// small diagonal jitter, mirroring the experiment runner's prior.
linalg::Matrix RandomGram(int k, easeml::Rng& rng,
                          double length_scale = 0.5,
                          double signal_variance = 0.5,
                          double jitter = 1e-8) {
  std::vector<std::vector<double>> x(k, std::vector<double>(3));
  for (auto& row : x) {
    for (double& v : row) v = rng.Uniform();
  }
  linalg::Matrix gram(k, k);
  for (int i = 0; i < k; ++i) {
    for (int j = 0; j < k; ++j) {
      double d2 = 0.0;
      for (int c = 0; c < 3; ++c) {
        const double d = x[i][c] - x[j][c];
        d2 += d * d;
      }
      gram(i, j) =
          signal_variance * std::exp(-d2 / (2.0 * length_scale * length_scale));
    }
  }
  gram.AddToDiagonal(jitter);
  return gram;
}

std::vector<double> RandomMean(int k, easeml::Rng& rng) {
  std::vector<double> m(k);
  for (double& v : m) v = rng.Uniform(0.2, 0.8);
  return m;
}

std::shared_ptr<const SharedGpPrior> MakePrior(linalg::Matrix gram,
                                               double noise,
                                               std::vector<double> mean = {}) {
  auto prior = MakeSharedGpPrior(std::move(gram), noise, std::move(mean));
  EXPECT_TRUE(prior.ok()) << prior.status().ToString();
  return std::move(prior).value();
}

TEST(SharedGpPriorTest, MakeValidates) {
  EXPECT_FALSE(MakeSharedGpPrior(linalg::Matrix(2, 3), 0.1).ok());
  EXPECT_FALSE(MakeSharedGpPrior(linalg::Matrix(), 0.1).ok());
  EXPECT_FALSE(
      MakeSharedGpPrior(linalg::Matrix::Identity(2), 0.0).ok());
  EXPECT_FALSE(
      MakeSharedGpPrior(linalg::Matrix::Identity(2), -1.0).ok());
  EXPECT_FALSE(
      MakeSharedGpPrior(linalg::Matrix::Identity(2), 0.1, {1.0}).ok());
  auto asym = *linalg::Matrix::FromRowMajor(2, 2, {1.0, 0.5, -0.5, 1.0});
  EXPECT_FALSE(MakeSharedGpPrior(asym, 0.1).ok());
  EXPECT_FALSE(MakeSharedGpPrior(linalg::Matrix(2, 2), 0.1).ok());  // 0 diag
  EXPECT_TRUE(MakeSharedGpPrior(linalg::Matrix::Identity(2), 0.1).ok());
  EXPECT_FALSE(SharedPriorGp::Create(nullptr).ok());
}

TEST(SharedPriorGpTest, PriorMarginalsBeforeObservations) {
  easeml::Rng rng(1);
  auto gram = RandomGram(4, rng);
  const auto mean = RandomMean(4, rng);
  auto gp = SharedPriorGp::Create(MakePrior(gram, 0.01, mean));
  ASSERT_TRUE(gp.ok());
  EXPECT_EQ(gp->num_arms(), 4);
  EXPECT_EQ(gp->num_observations(), 0);
  for (int k = 0; k < 4; ++k) {
    EXPECT_NEAR(gp->Mean(k), mean[k], kTol);
    EXPECT_NEAR(gp->Variance(k), gram(k, k), kTol);
  }
  const PosteriorSummary s = gp->AllMarginals();
  EXPECT_EQ(s.mean, mean);
}

TEST(SharedPriorGpTest, ObserveRejectsBadArm) {
  auto gp = SharedPriorGp::Create(
      MakePrior(linalg::Matrix::Identity(3), 0.01));
  ASSERT_TRUE(gp.ok());
  EXPECT_FALSE(gp->Observe(-1, 0.5).ok());
  EXPECT_FALSE(gp->Observe(3, 0.5).ok());
  EXPECT_TRUE(gp->Observe(2, 0.5).ok());
}

/// The tentpole property: on randomized campaigns the shared-prior
/// marginals match the dense incremental updates AND the Algorithm-1 batch
/// posterior to 1e-9 after every observation, for every arm.
TEST(SharedPriorGpTest, MarginalsMatchDenseAndBatchOnRandomCampaigns) {
  for (uint64_t seed : {2u, 3u, 4u, 5u}) {
    easeml::Rng rng(seed);
    const int k = 3 + static_cast<int>(seed) * 2;
    const double noise = seed % 2 == 0 ? 1e-2 : 1e-3;
    auto gram = RandomGram(k, rng);
    const auto mean = RandomMean(k, rng);
    auto prior = MakePrior(gram, noise, mean);
    auto shared = SharedPriorGp::Create(prior);
    ASSERT_TRUE(shared.ok());
    auto dense = DiscreteArmGp::Create(gram, noise, mean);
    ASSERT_TRUE(dense.ok());

    std::vector<int> order = rng.SampleWithoutReplacement(k, k);
    std::vector<int> arms;
    std::vector<double> ys;
    for (int arm : order) {
      const double y = rng.Uniform(0.0, 1.0);
      ASSERT_TRUE(shared->Observe(arm, y).ok());
      ASSERT_TRUE(dense->Observe(arm, y).ok());
      arms.push_back(arm);
      ys.push_back(y);

      // Batch reference conditions on the *centered* observations, then the
      // prior mean is added back per arm.
      std::vector<double> centered(ys.size());
      for (size_t i = 0; i < ys.size(); ++i) {
        centered[i] = ys[i] - mean[arms[i]];
      }
      auto batch = DiscreteArmGp::BatchPosterior(gram, noise, arms, centered);
      ASSERT_TRUE(batch.ok());

      const PosteriorSummary s = shared->AllMarginals();
      for (int a = 0; a < k; ++a) {
        EXPECT_NEAR(s.mean[a], dense->Mean(a), kTol)
            << "seed=" << seed << " t=" << arms.size() << " arm=" << a;
        EXPECT_NEAR(s.variance[a], dense->Variance(a), kTol)
            << "seed=" << seed << " t=" << arms.size() << " arm=" << a;
        EXPECT_NEAR(s.mean[a], batch->mean[a] + mean[a], kTol);
        EXPECT_NEAR(s.variance[a], batch->variance[a], kTol);
        EXPECT_NEAR(shared->Mean(a), s.mean[a], 0.0);
        EXPECT_NEAR(shared->StdDev(a), std::sqrt(s.variance[a]), kTol);
      }
    }
  }
}

/// Deferred reads must agree with read-after-every-step: the lazy catch-up
/// path (several pending rows) and the from-scratch batched multi-RHS path
/// are both pinned against the incremental one.
TEST(SharedPriorGpTest, LazyCatchUpAndScratchRebuildAgree) {
  easeml::Rng rng(6);
  const int k = 9;
  auto gram = RandomGram(k, rng);
  auto prior = MakePrior(gram, 1e-3);
  auto eager = SharedPriorGp::Create(prior);   // reads after every observe
  auto lazy = SharedPriorGp::Create(prior);    // reads only at the end
  ASSERT_TRUE(eager.ok());
  ASSERT_TRUE(lazy.ok());
  auto scratch = SharedPriorGp::Create(prior);  // fresh, never read early
  ASSERT_TRUE(scratch.ok());

  std::vector<int> order = rng.SampleWithoutReplacement(k, k);
  int step = 0;
  for (int arm : order) {
    const double y = rng.Uniform();
    ASSERT_TRUE(eager->Observe(arm, y).ok());
    ASSERT_TRUE(lazy->Observe(arm, y).ok());
    ASSERT_TRUE(scratch->Observe(arm, y).ok());
    (void)eager->AllMarginals();  // materialize each step
    // `lazy` materializes once mid-stream, so its final read exercises the
    // multi-row catch-up path; `scratch` reads only at the end (batched
    // multi-RHS rebuild).
    if (++step == 3) (void)lazy->AllMarginals();
  }
  const PosteriorSummary a = eager->AllMarginals();
  const PosteriorSummary b = lazy->AllMarginals();
  const PosteriorSummary c = scratch->AllMarginals();
  for (int i = 0; i < k; ++i) {
    EXPECT_NEAR(a.mean[i], b.mean[i], kTol);
    EXPECT_NEAR(a.variance[i], b.variance[i], kTol);
    EXPECT_NEAR(a.mean[i], c.mean[i], kTol);
    EXPECT_NEAR(a.variance[i], c.variance[i], kTol);
  }
}

/// Nearly redundant arms with tiny noise: posterior variances collapse to
/// ~0 and must be clamped non-negative on both representations, still
/// agreeing to 1e-9 (the jitter/clamping edge of gaussian_process.cc).
TEST(SharedPriorGpTest, ClampedVarianceOnNearSingularPrior) {
  const int k = 4;
  linalg::Matrix gram(k, k, 1.0);  // rank one: all arms identical
  gram.AddToDiagonal(1e-6);
  const double noise = 1e-3;
  auto shared = SharedPriorGp::Create(MakePrior(gram, noise));
  ASSERT_TRUE(shared.ok());
  auto dense = DiscreteArmGp::Create(gram, noise);
  ASSERT_TRUE(dense.ok());
  std::vector<int> arms;
  std::vector<double> ys;
  for (int arm = 0; arm < k; ++arm) {
    const double y = 0.7;
    ASSERT_TRUE(shared->Observe(arm, y).ok());
    ASSERT_TRUE(dense->Observe(arm, y).ok());
    arms.push_back(arm);
    ys.push_back(y);
    auto batch = DiscreteArmGp::BatchPosterior(gram, noise, arms, ys);
    ASSERT_TRUE(batch.ok());
    for (int a = 0; a < k; ++a) {
      EXPECT_GE(shared->Variance(a), 0.0);
      EXPECT_NEAR(shared->Variance(a), dense->Variance(a), kTol);
      EXPECT_NEAR(shared->Variance(a), batch->variance[a], kTol);
      EXPECT_NEAR(shared->Mean(a), batch->mean[a], kTol);
    }
  }
}

/// Observing the same arm repeatedly (multiplicity in S_t) stays exact.
TEST(SharedPriorGpTest, RepeatedObservationsOfOneArm) {
  easeml::Rng rng(8);
  const int k = 5;
  auto gram = RandomGram(k, rng);
  const double noise = 1e-2;
  auto shared = SharedPriorGp::Create(MakePrior(gram, noise));
  ASSERT_TRUE(shared.ok());
  std::vector<int> arms;
  std::vector<double> ys;
  for (int i = 0; i < 6; ++i) {
    const int arm = i % 2;  // hammer arms 0 and 1
    const double y = rng.Uniform();
    ASSERT_TRUE(shared->Observe(arm, y).ok());
    arms.push_back(arm);
    ys.push_back(y);
  }
  auto batch = DiscreteArmGp::BatchPosterior(gram, noise, arms, ys);
  ASSERT_TRUE(batch.ok());
  for (int a = 0; a < k; ++a) {
    EXPECT_NEAR(shared->Mean(a), batch->mean[a], kTol);
    EXPECT_NEAR(shared->Variance(a), batch->variance[a], kTol);
  }
}

TEST(SharedPriorGpTest, ResetRestoresPriorAndSupportsReuse) {
  easeml::Rng rng(9);
  const int k = 6;
  auto gram = RandomGram(k, rng);
  const auto mean = RandomMean(k, rng);
  auto prior = MakePrior(gram, 1e-2, mean);
  auto gp = SharedPriorGp::Create(prior);
  ASSERT_TRUE(gp.ok());
  ASSERT_TRUE(gp->Observe(0, 0.9).ok());
  ASSERT_TRUE(gp->Observe(3, 0.1).ok());
  EXPECT_EQ(gp->num_observations(), 2);
  gp->Reset();
  EXPECT_EQ(gp->num_observations(), 0);
  for (int a = 0; a < k; ++a) {
    EXPECT_NEAR(gp->Mean(a), mean[a], kTol);
    EXPECT_NEAR(gp->Variance(a), gram(a, a), kTol);
  }
  // Still usable after reset.
  ASSERT_TRUE(gp->Observe(1, 0.4).ok());
  EXPECT_LT(gp->Variance(1), gram(1, 1));
}

TEST(SharedPriorGpTest, TenantsShareOnePriorButDivergeIndependently) {
  easeml::Rng rng(10);
  auto prior = MakePrior(RandomGram(5, rng), 1e-2);
  auto a = SharedPriorGp::Create(prior);
  auto b = SharedPriorGp::Create(prior);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  // Both tenants plus the local handle reference one allocation.
  EXPECT_EQ(prior.use_count(), 3);
  ASSERT_TRUE(a->Observe(0, 0.95).ok());
  EXPECT_NE(a->Mean(0), b->Mean(0));
  EXPECT_NEAR(b->Variance(0), prior->gram(0, 0), kTol);
}

TEST(SharedPriorGpTest, MemoryFootprintBeatsDenseAtFewObservations) {
  easeml::Rng rng(12);
  const int k = 64;
  auto gram = RandomGram(k, rng);
  auto shared = SharedPriorGp::Create(MakePrior(gram, 1e-2));
  ASSERT_TRUE(shared.ok());
  auto dense = DiscreteArmGp::Create(gram, 1e-2);
  ASSERT_TRUE(dense.ok());
  for (int t = 0; t < 4; ++t) {
    ASSERT_TRUE(shared->Observe(t, 0.5).ok());
    ASSERT_TRUE(dense->Observe(t, 0.5).ok());
  }
  (void)shared->AllMarginals();  // include fully materialized caches
  // t = 4, K = 64: O(K + tK) vs two dense K x K matrices.
  EXPECT_LT(shared->ApproxMemoryBytes() * 10, dense->ApproxMemoryBytes());
}

}  // namespace
}  // namespace easeml::gp
