#include "gp/kernel.h"

#include <gtest/gtest.h>

#include <cmath>
#include <memory>
#include <vector>

#include "common/rng.h"
#include "linalg/cholesky.h"

namespace easeml::gp {
namespace {

TEST(LinearKernelTest, EvaluatesDotPlusBias) {
  LinearKernel k(2.0, 0.5);
  EXPECT_DOUBLE_EQ(k.Evaluate({1, 2}, {3, 4}), 2.0 * 11 + 0.5);
  EXPECT_NE(k.ToString().find("linear"), std::string::npos);
}

TEST(RbfKernelTest, UnitAtZeroDistance) {
  RbfKernel k(0.7, 2.5);
  EXPECT_DOUBLE_EQ(k.Evaluate({1, 2, 3}, {1, 2, 3}), 2.5);
}

TEST(RbfKernelTest, KnownValue) {
  RbfKernel k(1.0, 1.0);
  // ||a-b||^2 = 4 -> exp(-2).
  EXPECT_NEAR(k.Evaluate({0, 0}, {2, 0}), std::exp(-2.0), 1e-15);
}

TEST(RbfKernelTest, DecreasesWithDistance) {
  RbfKernel k(0.5, 1.0);
  double prev = k.Evaluate({0.0}, {0.0});
  for (double d = 0.1; d < 2.0; d += 0.1) {
    const double v = k.Evaluate({0.0}, {d});
    EXPECT_LT(v, prev);
    prev = v;
  }
}

TEST(Matern52KernelTest, UnitAtZeroDistanceAndMonotone) {
  Matern52Kernel k(1.0, 3.0);
  EXPECT_DOUBLE_EQ(k.Evaluate({0.0}, {0.0}), 3.0);
  double prev = 3.0;
  for (double d = 0.25; d < 3.0; d += 0.25) {
    const double v = k.Evaluate({0.0}, {d});
    EXPECT_LT(v, prev);
    prev = v;
  }
}

TEST(Matern52KernelTest, KnownFormula) {
  Matern52Kernel k(2.0, 1.0);
  const double r = 1.5;
  const double z = std::sqrt(5.0) * r / 2.0;
  const double expected = (1.0 + z + z * z / 3.0) * std::exp(-z);
  EXPECT_NEAR(k.Evaluate({0.0}, {r}), expected, 1e-15);
}

TEST(BuildGramTest, SymmetricWithSignalVarianceDiagonal) {
  RbfKernel k(0.5, 1.7);
  std::vector<std::vector<double>> features = {{0, 0}, {1, 0}, {0.3, 0.4}};
  auto gram = k.BuildGram(features);
  ASSERT_TRUE(gram.ok());
  EXPECT_TRUE(gram->IsSymmetric());
  for (int i = 0; i < 3; ++i) EXPECT_DOUBLE_EQ((*gram)(i, i), 1.7);
}

TEST(BuildGramTest, RejectsEmptyAndRagged) {
  RbfKernel k(1.0);
  EXPECT_FALSE(k.BuildGram({}).ok());
  EXPECT_FALSE(k.BuildGram({{1.0, 2.0}, {1.0}}).ok());
}

/// Property: Gram matrices of all three kernels are positive semi-definite
/// on random features (checked via Cholesky with small jitter).
class KernelPsdTest : public ::testing::TestWithParam<int> {};

TEST_P(KernelPsdTest, GramIsPositiveSemiDefinite) {
  const int seed = GetParam();
  Rng rng(seed);
  const int n = 12, dim = 5;
  std::vector<std::vector<double>> features(n, std::vector<double>(dim));
  for (auto& f : features) {
    for (double& v : f) v = rng.Uniform();
  }
  std::vector<std::unique_ptr<Kernel>> kernels;
  kernels.push_back(std::make_unique<LinearKernel>(1.0, 0.1));
  kernels.push_back(std::make_unique<RbfKernel>(0.5, 1.0));
  kernels.push_back(std::make_unique<Matern52Kernel>(0.5, 1.0));
  for (const auto& k : kernels) {
    auto gram = k->BuildGram(features);
    ASSERT_TRUE(gram.ok());
    EXPECT_TRUE(linalg::Cholesky::Compute(*gram, 1e-8).ok())
        << k->ToString() << " seed=" << seed;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, KernelPsdTest,
                         ::testing::Values(1, 2, 3, 4, 5, 6, 7, 8));

}  // namespace
}  // namespace easeml::gp
