#include "gp/gaussian_process.h"

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "common/rng.h"
#include "gp/kernel.h"
#include "linalg/matrix.h"

namespace easeml::gp {
namespace {

linalg::Matrix SimpleCov() {
  // Two moderately correlated arms plus one independent arm.
  return *linalg::Matrix::FromRowMajor(3, 3,
                                       {1.0, 0.8, 0.0,   //
                                        0.8, 1.0, 0.0,   //
                                        0.0, 0.0, 1.0});
}

TEST(DiscreteArmGpTest, CreateValidation) {
  EXPECT_FALSE(DiscreteArmGp::Create(linalg::Matrix(2, 3), 0.1).ok());
  EXPECT_FALSE(DiscreteArmGp::Create(SimpleCov(), 0.0).ok());
  EXPECT_FALSE(DiscreteArmGp::Create(SimpleCov(), -1.0).ok());
  auto bad_mean = DiscreteArmGp::Create(SimpleCov(), 0.1, {1.0});
  EXPECT_FALSE(bad_mean.ok());
  auto asym =
      linalg::Matrix::FromRowMajor(2, 2, {1.0, 0.5, 0.2, 1.0});
  EXPECT_FALSE(DiscreteArmGp::Create(*asym, 0.1).ok());
  EXPECT_TRUE(DiscreteArmGp::Create(SimpleCov(), 0.1).ok());
}

TEST(DiscreteArmGpTest, PriorMarginals) {
  auto gp = DiscreteArmGp::Create(SimpleCov(), 0.1, {0.5, 0.6, 0.7});
  ASSERT_TRUE(gp.ok());
  EXPECT_DOUBLE_EQ(gp->Mean(0), 0.5);
  EXPECT_DOUBLE_EQ(gp->Mean(2), 0.7);
  EXPECT_DOUBLE_EQ(gp->Variance(1), 1.0);
  EXPECT_EQ(gp->num_observations(), 0);
}

TEST(DiscreteArmGpTest, ObserveShrinksVarianceOfObservedArm) {
  auto gp = DiscreteArmGp::Create(SimpleCov(), 0.01);
  ASSERT_TRUE(gp.ok());
  ASSERT_TRUE(gp->Observe(0, 0.9).ok());
  // Posterior variance of arm 0: 1 - 1/(1.01) ~ 0.0099.
  EXPECT_NEAR(gp->Variance(0), 1.0 - 1.0 / 1.01, 1e-12);
  // Correlated arm 1 also shrinks; independent arm 2 does not.
  EXPECT_LT(gp->Variance(1), 1.0);
  EXPECT_NEAR(gp->Variance(2), 1.0, 1e-12);
}

TEST(DiscreteArmGpTest, ObservationPullsCorrelatedMeans) {
  auto gp = DiscreteArmGp::Create(SimpleCov(), 0.01);
  ASSERT_TRUE(gp.ok());
  ASSERT_TRUE(gp->Observe(0, 1.0).ok());
  EXPECT_GT(gp->Mean(0), 0.9);
  EXPECT_GT(gp->Mean(1), 0.5);               // pulled up via correlation
  EXPECT_NEAR(gp->Mean(2), 0.0, 1e-12);      // independent arm unaffected
}

TEST(DiscreteArmGpTest, ObserveRejectsBadArm) {
  auto gp = DiscreteArmGp::Create(SimpleCov(), 0.1);
  ASSERT_TRUE(gp.ok());
  EXPECT_FALSE(gp->Observe(-1, 0.5).ok());
  EXPECT_FALSE(gp->Observe(3, 0.5).ok());
}

TEST(DiscreteArmGpTest, ResetRestoresPrior) {
  auto gp = DiscreteArmGp::Create(SimpleCov(), 0.1, {0.2, 0.2, 0.2});
  ASSERT_TRUE(gp.ok());
  ASSERT_TRUE(gp->Observe(1, 0.95).ok());
  EXPECT_NE(gp->Mean(1), 0.2);
  gp->Reset();
  EXPECT_DOUBLE_EQ(gp->Mean(1), 0.2);
  EXPECT_DOUBLE_EQ(gp->Variance(1), 1.0);
  EXPECT_EQ(gp->num_observations(), 0);
}

TEST(BatchPosteriorTest, NoObservationsReturnsPrior) {
  auto post = DiscreteArmGp::BatchPosterior(SimpleCov(), 0.1, {}, {});
  ASSERT_TRUE(post.ok());
  EXPECT_DOUBLE_EQ(post->mean[0], 0.0);
  EXPECT_DOUBLE_EQ(post->variance[2], 1.0);
}

TEST(BatchPosteriorTest, RejectsMismatchedInputs) {
  EXPECT_FALSE(
      DiscreteArmGp::BatchPosterior(SimpleCov(), 0.1, {0}, {}).ok());
  EXPECT_FALSE(
      DiscreteArmGp::BatchPosterior(SimpleCov(), 0.1, {5}, {0.1}).ok());
}

/// The central property: the O(K^2) incremental update is algebraically
/// identical to the Algorithm-1 batch posterior, for random covariances and
/// observation sequences.
class IncrementalVsBatchTest : public ::testing::TestWithParam<int> {};

TEST_P(IncrementalVsBatchTest, SequentialConditioningMatchesBatch) {
  const int seed = GetParam();
  Rng rng(seed);
  const int k = 8;
  // Random PSD covariance via an RBF kernel on random features.
  std::vector<std::vector<double>> features(k, std::vector<double>(3));
  for (auto& f : features) {
    for (double& v : f) v = rng.Uniform();
  }
  RbfKernel kernel(0.6, 1.0);
  auto gram = kernel.BuildGram(features);
  ASSERT_TRUE(gram.ok());
  gram->AddToDiagonal(1e-8);
  const double noise = 0.05;

  auto gp = DiscreteArmGp::Create(*gram, noise);
  ASSERT_TRUE(gp.ok());
  std::vector<int> arms;
  std::vector<double> ys;
  const int t_max = 12;  // includes repeated observations of the same arm
  for (int t = 0; t < t_max; ++t) {
    const int arm = rng.UniformInt(0, k - 1);
    const double y = rng.Uniform();
    ASSERT_TRUE(gp->Observe(arm, y).ok());
    arms.push_back(arm);
    ys.push_back(y);

    auto batch = DiscreteArmGp::BatchPosterior(*gram, noise, arms, ys);
    ASSERT_TRUE(batch.ok());
    for (int a = 0; a < k; ++a) {
      EXPECT_NEAR(gp->Mean(a), batch->mean[a], 1e-8)
          << "seed=" << seed << " t=" << t << " arm=" << a;
      EXPECT_NEAR(gp->Variance(a), batch->variance[a], 1e-8)
          << "seed=" << seed << " t=" << t << " arm=" << a;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, IncrementalVsBatchTest,
                         ::testing::Range(1, 11));

TEST(DiscreteArmGpTest, VarianceMonotonicallyNonIncreasing) {
  Rng rng(77);
  auto gp = DiscreteArmGp::Create(SimpleCov(), 0.1);
  ASSERT_TRUE(gp.ok());
  std::vector<double> prev = {gp->Variance(0), gp->Variance(1),
                              gp->Variance(2)};
  for (int t = 0; t < 20; ++t) {
    ASSERT_TRUE(gp->Observe(rng.UniformInt(0, 2), rng.Uniform()).ok());
    for (int a = 0; a < 3; ++a) {
      const double v = gp->Variance(a);
      EXPECT_LE(v, prev[a] + 1e-12);
      EXPECT_GE(v, 0.0);
      prev[a] = v;
    }
  }
}

TEST(LogMarginalLikelihoodTest, HigherForConsistentObservations) {
  // Strongly correlated prior: consistent observations on correlated arms
  // should be more likely than contradictory ones.
  auto cov = *linalg::Matrix::FromRowMajor(2, 2, {1.0, 0.95, 0.95, 1.0});
  auto consistent =
      DiscreteArmGp::LogMarginalLikelihood(cov, 0.05, {0, 1}, {0.5, 0.5});
  auto contradictory =
      DiscreteArmGp::LogMarginalLikelihood(cov, 0.05, {0, 1}, {0.9, -0.9});
  ASSERT_TRUE(consistent.ok());
  ASSERT_TRUE(contradictory.ok());
  EXPECT_GT(*consistent, *contradictory);
}

TEST(LogMarginalLikelihoodTest, EmptyObservationsGiveZero) {
  auto lml = DiscreteArmGp::LogMarginalLikelihood(SimpleCov(), 0.1, {}, {});
  ASSERT_TRUE(lml.ok());
  EXPECT_DOUBLE_EQ(*lml, 0.0);
}

TEST(LogMarginalLikelihoodTest, MatchesHandComputedUnivariate) {
  // Single arm, prior var 1, noise 0.25, y = 0.5:
  // lml = -0.5*y^2/(1.25) - 0.5*log(1.25) - 0.5*log(2*pi).
  auto cov = *linalg::Matrix::FromRowMajor(1, 1, {1.0});
  auto lml = DiscreteArmGp::LogMarginalLikelihood(cov, 0.25, {0}, {0.5});
  ASSERT_TRUE(lml.ok());
  const double expected = -0.5 * 0.25 / 1.25 - 0.5 * std::log(1.25) -
                          0.5 * std::log(2.0 * M_PI);
  EXPECT_NEAR(*lml, expected, 1e-12);
}

}  // namespace
}  // namespace easeml::gp
