#include "gp/hyperparameter_tuner.h"

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "common/rng.h"

namespace easeml::gp {
namespace {

/// Builds realizations from a ground-truth RBF GP over 1-D features so the
/// tuner has a recoverable signal.
struct SyntheticGpData {
  std::vector<std::vector<double>> features;
  std::vector<std::vector<double>> realizations;
};

SyntheticGpData MakeData(double true_length_scale, int num_models,
                         int num_realizations, uint64_t seed) {
  Rng rng(seed);
  SyntheticGpData data;
  data.features.resize(num_models);
  for (int j = 0; j < num_models; ++j) {
    data.features[j] = {static_cast<double>(j) / num_models};
  }
  // Smooth realizations: y_j = sin(x / l) * amplitude + small noise.
  for (int r = 0; r < num_realizations; ++r) {
    const double phase = rng.Uniform(0.0, 6.28);
    std::vector<double> y(num_models);
    for (int j = 0; j < num_models; ++j) {
      y[j] = 0.3 * std::sin(data.features[j][0] / true_length_scale + phase) +
             rng.Normal(0.0, 0.01);
    }
    data.realizations.push_back(std::move(y));
  }
  return data;
}

TEST(TunerTest, RejectsEmptyInputs) {
  EXPECT_FALSE(TuneByMarginalLikelihood(KernelFamily::kRbf, {}, {{}}).ok());
  EXPECT_FALSE(
      TuneByMarginalLikelihood(KernelFamily::kRbf, {{1.0}}, {}).ok());
}

TEST(TunerTest, RejectsLengthMismatch) {
  std::vector<std::vector<double>> features = {{0.0}, {1.0}};
  std::vector<std::vector<double>> realizations = {{0.5}};  // wrong length
  EXPECT_FALSE(
      TuneByMarginalLikelihood(KernelFamily::kRbf, features, realizations)
          .ok());
}

TEST(TunerTest, FindsFiniteOptimum) {
  auto data = MakeData(0.3, 20, 8, 5);
  auto hp = TuneByMarginalLikelihood(KernelFamily::kRbf, data.features,
                                     data.realizations);
  ASSERT_TRUE(hp.ok());
  EXPECT_TRUE(std::isfinite(hp->log_marginal_likelihood));
  EXPECT_GT(hp->length_scale, 0.0);
  EXPECT_GT(hp->signal_variance, 0.0);
  EXPECT_GT(hp->noise_variance, 0.0);
}

TEST(TunerTest, RoughDataIsExplainedWithMoreNoise) {
  // Data oscillating far below the sample spacing is indistinguishable
  // from white noise: the tuner must absorb it into the noise term, while
  // smooth data is explained by the kernel with minimal noise.
  auto smooth = MakeData(1.0, 24, 10, 7);
  auto rough = MakeData(0.02, 24, 10, 7);
  auto hp_smooth = TuneByMarginalLikelihood(KernelFamily::kRbf,
                                            smooth.features,
                                            smooth.realizations);
  auto hp_rough = TuneByMarginalLikelihood(KernelFamily::kRbf,
                                           rough.features,
                                           rough.realizations);
  ASSERT_TRUE(hp_smooth.ok());
  ASSERT_TRUE(hp_rough.ok());
  EXPECT_GT(hp_rough->noise_variance, hp_smooth->noise_variance);
}

TEST(TunerTest, TunedBeatsWorstGridPoint) {
  auto data = MakeData(0.3, 16, 6, 11);
  TunerGrid grid;
  auto hp = TuneByMarginalLikelihood(KernelFamily::kRbf, data.features,
                                     data.realizations, grid);
  ASSERT_TRUE(hp.ok());
  // The optimum must be at least as good as an arbitrary grid point
  // evaluated directly.
  TunerGrid single;
  single.length_scales = {grid.length_scales.front()};
  single.signal_variances = {grid.signal_variances.front()};
  single.noise_variances = {grid.noise_variances.back()};
  auto fixed = TuneByMarginalLikelihood(KernelFamily::kRbf, data.features,
                                        data.realizations, single);
  ASSERT_TRUE(fixed.ok());
  EXPECT_GE(hp->log_marginal_likelihood, fixed->log_marginal_likelihood);
}

class TunerFamilyTest : public ::testing::TestWithParam<KernelFamily> {};

TEST_P(TunerFamilyTest, MakeKernelMatchesFamily) {
  auto data = MakeData(0.3, 12, 5, 3);
  auto hp = TuneByMarginalLikelihood(GetParam(), data.features,
                                     data.realizations);
  ASSERT_TRUE(hp.ok());
  EXPECT_EQ(hp->family, GetParam());
  auto kernel = hp->MakeKernel();
  ASSERT_NE(kernel, nullptr);
  // Self-covariance equals the tuned signal variance for the stationary
  // kernels; linear kernel evaluates s2 * <x, x>.
  if (GetParam() != KernelFamily::kLinear) {
    EXPECT_NEAR(kernel->Evaluate({0.5}, {0.5}), hp->signal_variance, 1e-12);
  }
}

INSTANTIATE_TEST_SUITE_P(Families, TunerFamilyTest,
                         ::testing::Values(KernelFamily::kRbf,
                                           KernelFamily::kMatern52,
                                           KernelFamily::kLinear));

}  // namespace
}  // namespace easeml::gp
