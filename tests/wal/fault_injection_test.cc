// The fault-injection FileSystem's failure model: the visible/durable byte
// split reproduces write-vs-fsync semantics, and every scripted fault
// (crash points, short writes, torn tails, bit flips, failed syncs)
// behaves as the kill-and-recover battery assumes.

#include "wal/fault_injection.h"

#include <memory>
#include <string>

#include "gtest/gtest.h"
#include "wal_test_util.h"

namespace easeml::wal {
namespace {

TEST(FaultInjectionFs, AppendIsVisibleButNotDurableUntilSync) {
  FaultInjectingFileSystem fs;
  WAL_ASSERT_OK_AND_ASSIGN(std::unique_ptr<WritableFile> f,
                           fs.OpenAppendable("/d/log"));
  WAL_ASSERT_OK(f->Append("hello "));
  WAL_ASSERT_OK(f->Append("world"));
  // Reads see the page-cache view...
  WAL_ASSERT_OK_AND_ASSIGN(std::string visible, fs.ReadFile("/d/log"));
  EXPECT_EQ(visible, "hello world");
  EXPECT_EQ(fs.PendingBytes("/d/log").value(), 11u);
  // ...but a crash before sync drops everything.
  fs.CrashDropPending();
  WAL_ASSERT_OK_AND_ASSIGN(std::string after, fs.ReadFile("/d/log"));
  EXPECT_EQ(after, "");
}

TEST(FaultInjectionFs, SyncMakesBytesDurable) {
  FaultInjectingFileSystem fs;
  WAL_ASSERT_OK_AND_ASSIGN(std::unique_ptr<WritableFile> f,
                           fs.OpenAppendable("/d/log"));
  WAL_ASSERT_OK(f->Append("durable"));
  WAL_ASSERT_OK(f->Sync());
  WAL_ASSERT_OK(f->Append("pending"));
  EXPECT_EQ(fs.PendingBytes("/d/log").value(), 7u);
  fs.CrashDropPending();
  WAL_ASSERT_OK_AND_ASSIGN(std::string after, fs.ReadFile("/d/log"));
  EXPECT_EQ(after, "durable");
  EXPECT_EQ(fs.PendingBytes("/d/log").value(), 0u);
}

TEST(FaultInjectionFs, CrashKeepPendingPrefixModelsTornWrite) {
  FaultInjectingFileSystem fs;
  WAL_ASSERT_OK_AND_ASSIGN(std::unique_ptr<WritableFile> f,
                           fs.OpenAppendable("/d/log"));
  WAL_ASSERT_OK(f->Append("base"));
  WAL_ASSERT_OK(f->Sync());
  WAL_ASSERT_OK(f->Append("tornrecord"));
  // 4 of the 10 pending bytes reached the medium before the crash.
  fs.CrashKeepPendingPrefix("/d/log", 4);
  WAL_ASSERT_OK_AND_ASSIGN(std::string after, fs.ReadFile("/d/log"));
  EXPECT_EQ(after, "basetorn");
  // The torn bytes ARE durable now: a second crash keeps them.
  fs.CrashDropPending();
  WAL_ASSERT_OK_AND_ASSIGN(std::string again, fs.ReadFile("/d/log"));
  EXPECT_EQ(again, "basetorn");
}

TEST(FaultInjectionFs, FlipDurableBitCorruptsTheMedium) {
  FaultInjectingFileSystem fs;
  WAL_ASSERT_OK_AND_ASSIGN(std::unique_ptr<WritableFile> f,
                           fs.OpenAppendable("/d/log"));
  WAL_ASSERT_OK(f->Append("abc"));
  WAL_ASSERT_OK(f->Sync());
  WAL_ASSERT_OK(fs.FlipDurableBit("/d/log", 1, 0));
  WAL_ASSERT_OK_AND_ASSIGN(std::string after, fs.ReadFile("/d/log"));
  EXPECT_EQ(after, "acc");  // 'b' ^ 0x01 == 'c'
  EXPECT_FALSE(fs.FlipDurableBit("/d/log", 99, 0).ok());
}

TEST(FaultInjectionFs, ShortWriteKeepsPrefixAndFails) {
  FaultInjectingFileSystem fs;
  WAL_ASSERT_OK_AND_ASSIGN(std::unique_ptr<WritableFile> f,
                           fs.OpenAppendable("/d/log"));
  fs.ShortWriteNextAppend(3);
  const Status st = f->Append("longpayload");
  EXPECT_FALSE(st.ok());
  EXPECT_EQ(st.code(), StatusCode::kUnavailable);
  WAL_ASSERT_OK_AND_ASSIGN(std::string after, fs.ReadFile("/d/log"));
  EXPECT_EQ(after, "lon");
  // One-shot: the next append succeeds in full.
  WAL_ASSERT_OK(f->Append("X"));
  WAL_ASSERT_OK_AND_ASSIGN(std::string again, fs.ReadFile("/d/log"));
  EXPECT_EQ(again, "lonX");
}

TEST(FaultInjectionFs, ArmFailAfterOpsIsAScriptedCrashPoint) {
  FaultInjectingFileSystem fs;
  WAL_ASSERT_OK_AND_ASSIGN(std::unique_ptr<WritableFile> f,
                           fs.OpenAppendable("/d/log"));
  fs.ArmFailAfterOps(2);
  WAL_ASSERT_OK(f->Append("1"));
  WAL_ASSERT_OK(f->Sync());
  const Status st = f->Append("2");
  EXPECT_FALSE(st.ok());
  EXPECT_EQ(st.code(), StatusCode::kUnavailable);
  // Every op after the crash point keeps failing (the process is dead).
  EXPECT_FALSE(f->Sync().ok());
  fs.ClearFaults();
  WAL_ASSERT_OK(f->Append("3"));
}

TEST(FaultInjectionFs, FailSyncsLeavesBytesPending) {
  FaultInjectingFileSystem fs;
  WAL_ASSERT_OK_AND_ASSIGN(std::unique_ptr<WritableFile> f,
                           fs.OpenAppendable("/d/log"));
  WAL_ASSERT_OK(f->Append("x"));
  fs.FailSyncs(true);
  EXPECT_FALSE(f->Sync().ok());
  EXPECT_EQ(fs.PendingBytes("/d/log").value(), 1u);
  fs.FailSyncs(false);
  WAL_ASSERT_OK(f->Sync());
  EXPECT_EQ(fs.PendingBytes("/d/log").value(), 0u);
}

TEST(FaultInjectionFs, RenameIsAtomicAndDurable) {
  FaultInjectingFileSystem fs;
  WAL_ASSERT_OK_AND_ASSIGN(std::unique_ptr<WritableFile> f,
                           fs.OpenAppendable("/d/ckpt.tmp"));
  WAL_ASSERT_OK(f->Append("checkpoint-bytes"));
  WAL_ASSERT_OK(f->Sync());
  WAL_ASSERT_OK(f->Close());
  WAL_ASSERT_OK(fs.Rename("/d/ckpt.tmp", "/d/ckpt"));
  WAL_ASSERT_OK_AND_ASSIGN(const bool tmp_exists, fs.Exists("/d/ckpt.tmp"));
  EXPECT_FALSE(tmp_exists);
  fs.CrashDropPending();
  WAL_ASSERT_OK_AND_ASSIGN(std::string after, fs.ReadFile("/d/ckpt"));
  EXPECT_EQ(after, "checkpoint-bytes");
}

TEST(FaultInjectionFs, TruncateClampsDurableSize) {
  FaultInjectingFileSystem fs;
  WAL_ASSERT_OK_AND_ASSIGN(std::unique_ptr<WritableFile> f,
                           fs.OpenAppendable("/d/log"));
  WAL_ASSERT_OK(f->Append("0123456789"));
  WAL_ASSERT_OK(f->Sync());
  WAL_ASSERT_OK(fs.Truncate("/d/log", 4));
  WAL_ASSERT_OK_AND_ASSIGN(std::string after, fs.ReadFile("/d/log"));
  EXPECT_EQ(after, "0123");
  fs.CrashDropPending();
  WAL_ASSERT_OK_AND_ASSIGN(std::string again, fs.ReadFile("/d/log"));
  EXPECT_EQ(again, "0123");
}

TEST(FaultInjectionFs, MissingFilesAreNotFound) {
  FaultInjectingFileSystem fs;
  EXPECT_EQ(fs.ReadFile("/nope").status().code(), StatusCode::kNotFound);
  EXPECT_EQ(fs.Delete("/nope").code(), StatusCode::kNotFound);
  WAL_ASSERT_OK_AND_ASSIGN(const bool exists, fs.Exists("/nope"));
  EXPECT_FALSE(exists);
}

}  // namespace
}  // namespace easeml::wal
