// WAL record framing: alignment arithmetic, roundtrip, and the damage
// taxonomy — tail damage (short/garbled/CRC-failed) truncates, while a
// CRC-valid record with a skipped epoch is a hole and must refuse replay.

#include "wal/record.h"

#include <string>

#include "gtest/gtest.h"
#include "wal_test_util.h"

namespace easeml::wal {
namespace {

TEST(FramedSize, AlwaysAlignedAndMinimal) {
  for (uint64_t body = 0; body < 64; ++body) {
    const uint64_t framed = FramedSize(body);
    EXPECT_EQ(framed % kRecordAlignment, 0u) << body;
    EXPECT_GE(framed, kRecordHeaderSize + 1 + 8 + body) << body;
    EXPECT_LT(framed, kRecordHeaderSize + 1 + 8 + body + kRecordAlignment)
        << body;
  }
  EXPECT_EQ(FramedSize(0), kMinRecordSize);
}

TEST(ScanLog, EmptyLogIsCleanAndEmpty) {
  WAL_ASSERT_OK_AND_ASSIGN(const LogScan scan, ScanLog("", 0, 0));
  EXPECT_TRUE(scan.records.empty());
  EXPECT_EQ(scan.valid_bytes, 0);
  EXPECT_EQ(scan.last_epoch, 0);
  EXPECT_FALSE(scan.truncated);
}

TEST(ScanLog, RoundTripsRecordsInOrder) {
  std::string log;
  ReportBody report;
  report.ticket = 7;
  report.tenant = 1;
  report.model = 2;
  report.accuracy = 0.875;
  std::string body;
  EncodeReport(&body, report);
  AppendRecord(&log, RecordType::kReport, 1, body);

  NextBody next;
  next.tenant = 3;
  next.model = 0;
  next.ticket = 8;
  std::string next_body;
  EncodeNext(&next_body, next);
  AppendRecord(&log, RecordType::kNext, 2, next_body);

  WAL_ASSERT_OK_AND_ASSIGN(const LogScan scan, ScanLog(log, 0, 0));
  ASSERT_EQ(scan.records.size(), 2u);
  EXPECT_FALSE(scan.truncated);
  EXPECT_EQ(scan.valid_bytes, static_cast<int64_t>(log.size()));
  EXPECT_EQ(scan.last_epoch, 2);

  EXPECT_EQ(scan.records[0].type, RecordType::kReport);
  EXPECT_EQ(scan.records[0].epoch, 1);
  EXPECT_EQ(scan.records[0].offset, 0);
  ReportBody round;
  WAL_ASSERT_OK(DecodeReport(scan.records[0].body, &round));
  EXPECT_EQ(round.ticket, 7);
  EXPECT_EQ(round.tenant, 1);
  EXPECT_EQ(round.model, 2);
  EXPECT_EQ(round.accuracy, 0.875);

  EXPECT_EQ(scan.records[1].type, RecordType::kNext);
  EXPECT_EQ(scan.records[1].epoch, 2);
  EXPECT_EQ(scan.records[1].offset,
            static_cast<int64_t>(FramedSize(body.size())));
}

std::string TwoRecordLog(std::string* first_body_out = nullptr) {
  std::string log;
  RemoveTenantBody rm;
  rm.tenant = 4;
  std::string body;
  EncodeRemoveTenant(&body, rm);
  AppendRecord(&log, RecordType::kRemoveTenant, 1, body);
  if (first_body_out != nullptr) *first_body_out = body;
  CancelBody cancel;
  cancel.ticket = 9;
  cancel.tenant = 4;
  cancel.model = 1;
  std::string cancel_body;
  EncodeCancel(&cancel_body, cancel);
  AppendRecord(&log, RecordType::kCancel, 2, cancel_body);
  return log;
}

TEST(ScanLog, ShortTailTruncates) {
  std::string body;
  const std::string log = TwoRecordLog(&body);
  const int64_t first = static_cast<int64_t>(FramedSize(body.size()));
  // Keep the first record plus a sliver of the second: torn tail.
  const std::string torn = log.substr(0, first + 5);
  WAL_ASSERT_OK_AND_ASSIGN(const LogScan scan, ScanLog(torn, 0, 0));
  ASSERT_EQ(scan.records.size(), 1u);
  EXPECT_TRUE(scan.truncated);
  EXPECT_EQ(scan.valid_bytes, first);
  EXPECT_EQ(scan.last_epoch, 1);
  EXPECT_NE(scan.truncate_reason.find("short remainder"), std::string::npos)
      << scan.truncate_reason;
}

TEST(ScanLog, CorruptTailCrcTruncates) {
  std::string body;
  std::string log = TwoRecordLog(&body);
  // Flip one bit inside the LAST record's CRC-covered payload (its epoch
  // field — the frame's trailing alignment padding is NOT covered):
  // CRC mismatch, truncate.
  log[FramedSize(body.size()) + 12] ^= 0x40;
  WAL_ASSERT_OK_AND_ASSIGN(const LogScan scan, ScanLog(log, 0, 0));
  ASSERT_EQ(scan.records.size(), 1u);
  EXPECT_TRUE(scan.truncated);
  EXPECT_EQ(scan.valid_bytes, static_cast<int64_t>(FramedSize(body.size())));
  EXPECT_NE(scan.truncate_reason.find("CRC"), std::string::npos)
      << scan.truncate_reason;
}

TEST(ScanLog, ImplausibleLengthTruncates) {
  std::string body;
  std::string log = TwoRecordLog(&body);
  const size_t second = FramedSize(body.size());
  // Overwrite the second record's length field with garbage much larger
  // than the remainder.
  log[second + 4] = '\xff';
  log[second + 5] = '\xff';
  log[second + 6] = '\xff';
  log[second + 7] = '\x7f';
  WAL_ASSERT_OK_AND_ASSIGN(const LogScan scan, ScanLog(log, 0, 0));
  ASSERT_EQ(scan.records.size(), 1u);
  EXPECT_TRUE(scan.truncated);
  EXPECT_NE(scan.truncate_reason.find("implausible"), std::string::npos)
      << scan.truncate_reason;
}

TEST(ScanLog, EpochGapIsDataLossNotTruncation) {
  std::string log;
  RemoveTenantBody rm;
  rm.tenant = 1;
  std::string body;
  EncodeRemoveTenant(&body, rm);
  AppendRecord(&log, RecordType::kRemoveTenant, 1, body);
  // Valid CRC, but epoch 3 after epoch 1: a record is MISSING in between.
  AppendRecord(&log, RecordType::kRemoveTenant, 3, body);
  const Result<LogScan> scan = ScanLog(log, 0, 0);
  ASSERT_FALSE(scan.ok());
  EXPECT_EQ(scan.status().code(), StatusCode::kDataLoss);
  EXPECT_NE(scan.status().message().find("epoch gap"), std::string::npos);
}

TEST(ScanLog, PadRecordsCarryNoEpoch) {
  std::string log;
  RemoveTenantBody rm;
  rm.tenant = 1;
  std::string body;
  EncodeRemoveTenant(&body, rm);
  AppendRecord(&log, RecordType::kRemoveTenant, 1, body);
  AppendRecord(&log, RecordType::kPad, 0, std::string(31, '\0'));
  AppendRecord(&log, RecordType::kRemoveTenant, 2, body);
  WAL_ASSERT_OK_AND_ASSIGN(const LogScan scan, ScanLog(log, 0, 0));
  ASSERT_EQ(scan.records.size(), 3u);
  EXPECT_EQ(scan.records[1].type, RecordType::kPad);
  EXPECT_EQ(scan.last_epoch, 2);
  EXPECT_FALSE(scan.truncated);
}

TEST(ScanLog, PadWithNonzeroEpochTruncates) {
  std::string log;
  AppendRecord(&log, RecordType::kPad, 5, std::string(8, '\0'));
  WAL_ASSERT_OK_AND_ASSIGN(const LogScan scan, ScanLog(log, 0, 0));
  EXPECT_TRUE(scan.records.empty());
  EXPECT_TRUE(scan.truncated);
  EXPECT_EQ(scan.valid_bytes, 0);
}

TEST(ScanLog, BadStartOffsetIsDataLoss) {
  std::string log;
  RemoveTenantBody rm;
  rm.tenant = 1;
  std::string body;
  EncodeRemoveTenant(&body, rm);
  AppendRecord(&log, RecordType::kRemoveTenant, 1, body);
  EXPECT_EQ(ScanLog(log, 4, 0).status().code(), StatusCode::kDataLoss);
  EXPECT_EQ(ScanLog(log, static_cast<int64_t>(log.size()) + 8, 0)
                .status()
                .code(),
            StatusCode::kDataLoss);
}

TEST(ScanLog, ResumesMidLogFromAlignedOffsetAndEpoch) {
  std::string body;
  const std::string log = TwoRecordLog(&body);
  const int64_t first = static_cast<int64_t>(FramedSize(body.size()));
  WAL_ASSERT_OK_AND_ASSIGN(const LogScan scan, ScanLog(log, first, 1));
  ASSERT_EQ(scan.records.size(), 1u);
  EXPECT_EQ(scan.records[0].type, RecordType::kCancel);
  EXPECT_EQ(scan.last_epoch, 2);
}

}  // namespace
}  // namespace easeml::wal
