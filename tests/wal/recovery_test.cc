// OpenOrRecover end to end: fresh start, clean-shutdown replay, torn-tail
// repair, the lost-ticket/duplicate-report taxonomy after a crash, WAL
// on/off trace parity for every policy, checkpoint-based restart, and the
// fail-stop poisoning of an engine whose log went away.

#include "wal/recovery.h"

#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "common/rng.h"
#include "core/durable_state.h"
#include "core/multi_tenant_selector.h"
#include "gtest/gtest.h"
#include "shard/sharded_selector.h"
#include "wal/checkpoint.h"
#include "wal/fault_injection.h"
#include "wal/record.h"
#include "wal/selector_wal.h"
#include "wal_test_util.h"

namespace easeml::wal {
namespace {

using core::MultiTenantSelector;
using core::SelectorOptions;

// Encoded engine state with the log position masked out, so a recovered
// engine (whose position is the recovered log end) compares equal to the
// pre-crash engine (whose position was the live end) when and only when
// the USER-VISIBLE state matches.
std::string StateFingerprint(const MultiTenantSelector& s) {
  auto state = s.CaptureDurableState();
  EXPECT_TRUE(state.ok()) << state.status().ToString();
  if (!state.ok()) return "<capture failed>";
  state->wal_epoch = 0;
  state->wal_offset = 0;
  std::string bytes;
  EncodeDurableSelectorState(&bytes, *state);
  return bytes;
}

Status DriveReported(MultiTenantSelector& s, int steps, Rng& rng) {
  for (int i = 0; i < steps && !s.Exhausted(); ++i) {
    auto assignment = s.Next();
    if (!assignment.ok()) return assignment.status();
    EASEML_RETURN_NOT_OK(s.Report(*assignment, rng.Uniform(0.0, 1.0)));
  }
  return Status::OK();
}

Status AddTwoTenants(MultiTenantSelector& s) {
  EASEML_RETURN_NOT_OK(
      s.AddTenant(MakeTestPrior(3), {1.0, 2.0, 3.0}).status());
  EASEML_RETURN_NOT_OK(
      s.AddTenant(MakeTestPrior(4, 0.3), {1.0, 1.0, 2.0, 2.0}).status());
  return Status::OK();
}

TEST(OpenOrRecover, FreshDirectoryStartsEmpty) {
  FaultInjectingFileSystem fs;
  WAL_ASSERT_OK_AND_ASSIGN(RecoveredSelector r,
                           OpenOrRecover(&fs, "/d", SelectorOptions{}));
  ASSERT_NE(r.wal, nullptr);
  ASSERT_NE(r.selector, nullptr);
  EXPECT_EQ(r.selector->num_tenants(), 0);
  EXPECT_FALSE(r.stats.used_checkpoint);
  EXPECT_EQ(r.stats.replayed_records, 0);
  EXPECT_EQ(r.stats.truncated_bytes, 0);
  EXPECT_EQ(r.stats.last_epoch, 0);
  // The returned engine is live and logging.
  WAL_ASSERT_OK(AddTwoTenants(*r.selector));
  WAL_ASSERT_OK_AND_ASSIGN(const std::string log, fs.ReadFile(LogPath("/d")));
  EXPECT_GT(log.size(), 0u);
}

TEST(OpenOrRecover, RefusesOptionsWithAWalAlreadyWired) {
  FaultInjectingFileSystem fs;
  auto wal = SelectorWal::CreateSuspended(&fs, LogPath("/x"), {});
  SelectorOptions options;
  options.wal = wal.get();
  EXPECT_EQ(OpenOrRecover(&fs, "/d", options).status().code(),
            StatusCode::kInvalidArgument);
}

TEST(OpenOrRecover, ReplaysACleanShutdownExactly) {
  FaultInjectingFileSystem fs;
  std::string fingerprint;
  {
    WAL_ASSERT_OK_AND_ASSIGN(RecoveredSelector r,
                             OpenOrRecover(&fs, "/d", SelectorOptions{}));
    WAL_ASSERT_OK(AddTwoTenants(*r.selector));
    Rng rng(3);
    WAL_ASSERT_OK(DriveReported(*r.selector, 25, rng));
    fingerprint = StateFingerprint(*r.selector);
  }  // process exits; unsynced buffered bytes (if any) are lost with it

  WAL_ASSERT_OK_AND_ASSIGN(RecoveredSelector r,
                           OpenOrRecover(&fs, "/d", SelectorOptions{}));
  EXPECT_FALSE(r.stats.used_checkpoint);
  EXPECT_GT(r.stats.replayed_records, 0);
  EXPECT_EQ(r.stats.truncated_bytes, 0);
  EXPECT_EQ(r.selector->num_tenants(), 2);
  EXPECT_EQ(StateFingerprint(*r.selector), fingerprint);
  WAL_ASSERT_OK(r.selector->ValidateIndex());

  // History continues where it stopped: a fresh tenant (the originals are
  // exhausted by now) appends with the next epoch and keeps replaying.
  WAL_ASSERT_OK(
      r.selector->AddTenant(MakeTestPrior(3), {1.0, 1.0, 1.0}).status());
  Rng rng(4);
  WAL_ASSERT_OK(DriveReported(*r.selector, 3, rng));
}

TEST(OpenOrRecover, TruncatesATornTailAndReports) {
  FaultInjectingFileSystem fs;
  std::string fingerprint;
  {
    WAL_ASSERT_OK_AND_ASSIGN(RecoveredSelector r,
                             OpenOrRecover(&fs, "/d", SelectorOptions{}));
    WAL_ASSERT_OK(AddTwoTenants(*r.selector));
    Rng rng(5);
    WAL_ASSERT_OK(DriveReported(*r.selector, 10, rng));
    fingerprint = StateFingerprint(*r.selector);
  }
  // A torn append: garbage bytes reached the medium past the last synced
  // record before the power went out.
  {
    WAL_ASSERT_OK_AND_ASSIGN(std::unique_ptr<WritableFile> f,
                             fs.OpenAppendable(LogPath("/d")));
    WAL_ASSERT_OK(f->Append(std::string(13, '\xee')));
    WAL_ASSERT_OK(f->Sync());
  }

  WAL_ASSERT_OK_AND_ASSIGN(RecoveredSelector r,
                           OpenOrRecover(&fs, "/d", SelectorOptions{}));
  EXPECT_EQ(r.stats.truncated_bytes, 13);
  EXPECT_FALSE(r.stats.truncate_reason.empty());
  EXPECT_EQ(StateFingerprint(*r.selector), fingerprint);
  // The repair is durable: the file itself was truncated back to the
  // valid prefix.
  WAL_ASSERT_OK_AND_ASSIGN(const std::string log, fs.ReadFile(LogPath("/d")));
  EXPECT_EQ(static_cast<int64_t>(log.size()), r.stats.log_bytes);
}

// Satellite: the crash taxonomy clients see. A ticket issued before the
// crash whose NEXT record never became durable is gone — reporting it
// answers NotFound (never issued), NOT FailedPrecondition (duplicate).
TEST(OpenOrRecover, LostTicketAnswersNotFoundAfterRecovery) {
  FaultInjectingFileSystem fs;
  MultiTenantSelector::Assignment lost;
  {
    WAL_ASSERT_OK_AND_ASSIGN(RecoveredSelector r,
                             OpenOrRecover(&fs, "/d", SelectorOptions{}));
    WAL_ASSERT_OK(AddTwoTenants(*r.selector));
    Rng rng(6);
    WAL_ASSERT_OK(DriveReported(*r.selector, 6, rng));
    // Next appends WITHOUT syncing: the ticket promise is not durable.
    WAL_ASSERT_OK_AND_ASSIGN(lost, r.selector->Next());
  }
  fs.CrashDropPending();

  WAL_ASSERT_OK_AND_ASSIGN(RecoveredSelector r,
                           OpenOrRecover(&fs, "/d", SelectorOptions{}));
  EXPECT_EQ(r.selector->InFlightAssignment(lost.id).status().code(),
            StatusCode::kNotFound);
  const Status report = r.selector->Report(lost, 0.75);
  EXPECT_EQ(report.code(), StatusCode::kNotFound) << report.ToString();
  // And the failed report changed nothing: the ticket counter re-issues
  // the same id, whose report now succeeds.
  WAL_ASSERT_OK_AND_ASSIGN(const MultiTenantSelector::Assignment reissued,
                           r.selector->Next());
  EXPECT_EQ(reissued.id, lost.id);
  WAL_ASSERT_OK(r.selector->Report(reissued, 0.5));
}

// Satellite: a Report that WAS acknowledged is durable, and a client retry
// of the same ticket after recovery is the duplicate case.
TEST(OpenOrRecover, ReplayedDuplicateReportIsIdempotent) {
  FaultInjectingFileSystem fs;
  MultiTenantSelector::Assignment acked;
  {
    WAL_ASSERT_OK_AND_ASSIGN(RecoveredSelector r,
                             OpenOrRecover(&fs, "/d", SelectorOptions{}));
    WAL_ASSERT_OK(AddTwoTenants(*r.selector));
    Rng rng(8);
    WAL_ASSERT_OK(DriveReported(*r.selector, 6, rng));
    WAL_ASSERT_OK_AND_ASSIGN(acked, r.selector->Next());
    WAL_ASSERT_OK(r.selector->Report(acked, 0.9));  // synced before ack
  }
  fs.CrashDropPending();

  WAL_ASSERT_OK_AND_ASSIGN(RecoveredSelector r,
                           OpenOrRecover(&fs, "/d", SelectorOptions{}));
  const std::string before = StateFingerprint(*r.selector);
  const Status dup = r.selector->Report(acked, 0.9);
  EXPECT_EQ(dup.code(), StatusCode::kFailedPrecondition) << dup.ToString();
  // Idempotent: the duplicate left the recovered state untouched.
  EXPECT_EQ(StateFingerprint(*r.selector), before);
}

// fig09 bit-identity at the engine level: with the WAL enabled the
// selection trace and final posteriors are bit-for-bit those of the plain
// engine, for every policy.
TEST(OpenOrRecover, WalOnOffTracesAreBitIdentical) {
  const core::SchedulerKind kinds[] = {
      core::SchedulerKind::kHybrid, core::SchedulerKind::kGreedy,
      core::SchedulerKind::kRoundRobin, core::SchedulerKind::kRandom,
      core::SchedulerKind::kFcfs};
  for (const core::SchedulerKind kind : kinds) {
    SelectorOptions options;
    options.scheduler = kind;
    options.seed = 123;

    FaultInjectingFileSystem fs;
    WAL_ASSERT_OK_AND_ASSIGN(RecoveredSelector durable,
                             OpenOrRecover(&fs, "/d", options));
    WAL_ASSERT_OK_AND_ASSIGN(std::unique_ptr<MultiTenantSelector> plain,
                             shard::MakeSelector(options));
    WAL_ASSERT_OK(AddTwoTenants(*durable.selector));
    WAL_ASSERT_OK(AddTwoTenants(*plain));

    Rng rng(11);
    for (int i = 0; i < 40 && !plain->Exhausted(); ++i) {
      WAL_ASSERT_OK_AND_ASSIGN(const MultiTenantSelector::Assignment a,
                               durable.selector->Next());
      WAL_ASSERT_OK_AND_ASSIGN(const MultiTenantSelector::Assignment b,
                               plain->Next());
      ASSERT_EQ(a.tenant, b.tenant) << "policy " << static_cast<int>(kind);
      ASSERT_EQ(a.model, b.model);
      ASSERT_EQ(a.id, b.id);
      const double accuracy = rng.Uniform(0.0, 1.0);
      WAL_ASSERT_OK(durable.selector->Report(a, accuracy));
      WAL_ASSERT_OK(plain->Report(b, accuracy));
    }
    EXPECT_EQ(StateFingerprint(*durable.selector), StateFingerprint(*plain));
  }
}

TEST(OpenOrRecover, CheckpointRestartMatchesFullReplay) {
  FaultInjectingFileSystem fs;
  std::string fingerprint;
  {
    WAL_ASSERT_OK_AND_ASSIGN(RecoveredSelector r,
                             OpenOrRecover(&fs, "/d", SelectorOptions{}));
    WAL_ASSERT_OK(AddTwoTenants(*r.selector));
    Rng rng(13);
    WAL_ASSERT_OK(DriveReported(*r.selector, 20, rng));
    WAL_ASSERT_OK(
        CutCheckpoint(&fs, "/d", r.wal.get(), *r.selector, nullptr));
    // Post-checkpoint history: a new tenant (with a new prior shape, so a
    // REGISTER_PRIOR lands after the cut too) plus its campaign.
    WAL_ASSERT_OK(r.selector
                      ->AddTenant(MakeTestPrior(5, 0.4),
                                  {1.0, 1.0, 1.0, 2.0, 2.0})
                      .status());
    WAL_ASSERT_OK(DriveReported(*r.selector, 15, rng));
    fingerprint = StateFingerprint(*r.selector);
  }
  fs.CrashDropPending();

  WAL_ASSERT_OK_AND_ASSIGN(RecoveredSelector r,
                           OpenOrRecover(&fs, "/d", SelectorOptions{}));
  EXPECT_TRUE(r.stats.used_checkpoint);
  EXPECT_GT(r.stats.checkpoint_epoch, 0);
  // Replay covered only the post-checkpoint suffix (15 Next/Report pairs),
  // not the 20 pairs plus registrations the checkpoint absorbed.
  EXPECT_GT(r.stats.replayed_records, 0);
  EXPECT_LE(r.stats.replayed_records, 30);
  EXPECT_EQ(StateFingerprint(*r.selector), fingerprint);
  WAL_ASSERT_OK(r.selector->ValidateIndex());
}

TEST(OpenOrRecover, CorruptCheckpointFallsBackToFullReplay) {
  FaultInjectingFileSystem fs;
  std::string fingerprint;
  {
    WAL_ASSERT_OK_AND_ASSIGN(RecoveredSelector r,
                             OpenOrRecover(&fs, "/d", SelectorOptions{}));
    WAL_ASSERT_OK(AddTwoTenants(*r.selector));
    Rng rng(14);
    WAL_ASSERT_OK(DriveReported(*r.selector, 12, rng));
    WAL_ASSERT_OK(
        CutCheckpoint(&fs, "/d", r.wal.get(), *r.selector, nullptr));
    WAL_ASSERT_OK(DriveReported(*r.selector, 8, rng));
    fingerprint = StateFingerprint(*r.selector);
  }
  WAL_ASSERT_OK(fs.FlipDurableBit(CheckpointPath("/d"), 40, 3));

  WAL_ASSERT_OK_AND_ASSIGN(RecoveredSelector r,
                           OpenOrRecover(&fs, "/d", SelectorOptions{}));
  EXPECT_FALSE(r.stats.used_checkpoint);
  EXPECT_EQ(StateFingerprint(*r.selector), fingerprint);
}

TEST(OpenOrRecover, EpochGapRefusesReplay) {
  FaultInjectingFileSystem fs;
  WAL_ASSERT_OK(fs.CreateDir("/d"));
  std::string log;
  RemoveTenantBody rm;
  rm.tenant = 0;
  std::string body;
  EncodeRemoveTenant(&body, rm);
  AppendRecord(&log, RecordType::kRemoveTenant, 1, body);
  AppendRecord(&log, RecordType::kRemoveTenant, 3, body);  // epoch 2 missing
  {
    WAL_ASSERT_OK_AND_ASSIGN(std::unique_ptr<WritableFile> f,
                             fs.OpenAppendable(LogPath("/d")));
    WAL_ASSERT_OK(f->Append(log));
    WAL_ASSERT_OK(f->Sync());
  }
  const Status st = OpenOrRecover(&fs, "/d", SelectorOptions{}).status();
  EXPECT_EQ(st.code(), StatusCode::kDataLoss) << st.ToString();
}

TEST(OpenOrRecover, DeferredModeLosesAtMostTheUnflushedTail) {
  // Group-commit durability: acks return from the process buffer, the
  // file only sees whole buffer flushes at the threshold. A process kill
  // loses the buffered tail; what WAS flushed ends on a record boundary,
  // so recovery replays a clean prefix with no tear to truncate.
  FaultInjectingFileSystem fs;
  SelectorOptions options;
  SelectorWalOptions wal_options;
  wal_options.durability = SelectorWalOptions::Durability::kDeferred;
  wal_options.flush_threshold = 128;  // a couple of records per flush
  int64_t live_epoch = 0;
  {
    WAL_ASSERT_OK_AND_ASSIGN(
        std::unique_ptr<SelectorWal> wal,
        SelectorWal::Open(&fs, LogPath("/d"), wal_options));
    SelectorOptions wired = options;
    wired.wal = wal.get();
    WAL_ASSERT_OK_AND_ASSIGN(std::unique_ptr<MultiTenantSelector> selector,
                             shard::MakeSelector(wired));
    WAL_ASSERT_OK(AddTwoTenants(*selector));
    Rng rng(11);
    WAL_ASSERT_OK(DriveReported(*selector, 6, rng));
    live_epoch = wal->position().epoch;
    // Destructors drop the in-process buffer: a kill. The page cache
    // (visible bytes) survives a process crash, so no CrashDropPending.
  }
  WAL_ASSERT_OK_AND_ASSIGN(RecoveredSelector r,
                           OpenOrRecover(&fs, "/d", options));
  // Flushes cover whole records, so nothing is torn...
  EXPECT_EQ(r.stats.truncated_bytes, 0);
  // ...the flushed prefix is there...
  EXPECT_GT(r.stats.replayed_records, 0);
  // ...and only the tail behind the last threshold crossing is gone.
  EXPECT_LT(r.stats.last_epoch, live_epoch);
  WAL_EXPECT_OK(r.selector->ValidateIndex());
}

TEST(OpenOrRecover, CheckpointSyncsHardInDeferredMode) {
  // CutCheckpoint must not trust kDeferred's no-op Sync: every byte the
  // checkpoint references gets flushed AND fsynced before it publishes,
  // so the checkpoint survives even a power loss that eats the page
  // cache.
  FaultInjectingFileSystem fs;
  SelectorOptions options;
  SelectorWalOptions wal_options;
  wal_options.durability = SelectorWalOptions::Durability::kDeferred;
  std::string live_fingerprint;
  {
    WAL_ASSERT_OK_AND_ASSIGN(
        std::unique_ptr<SelectorWal> wal,
        SelectorWal::Open(&fs, LogPath("/d"), wal_options));
    SelectorOptions wired = options;
    wired.wal = wal.get();
    WAL_ASSERT_OK_AND_ASSIGN(std::unique_ptr<MultiTenantSelector> selector,
                             shard::MakeSelector(wired));
    WAL_ASSERT_OK(AddTwoTenants(*selector));
    Rng rng(12);
    WAL_ASSERT_OK(DriveReported(*selector, 5, rng));
    WAL_ASSERT_OK(CutCheckpoint(&fs, "/d", wal.get(), *selector, nullptr));
    live_fingerprint = StateFingerprint(*selector);
  }
  fs.CrashDropPending();  // power loss: unsynced bytes are gone
  WAL_ASSERT_OK_AND_ASSIGN(RecoveredSelector r,
                           OpenOrRecover(&fs, "/d", options));
  EXPECT_TRUE(r.stats.used_checkpoint);
  EXPECT_EQ(r.stats.replayed_records, 0);
  EXPECT_EQ(StateFingerprint(*r.selector), live_fingerprint);
}

TEST(OpenOrRecover, WalFailurePoisonsTheEngineFailStop) {
  FaultInjectingFileSystem fs;
  WAL_ASSERT_OK_AND_ASSIGN(RecoveredSelector r,
                           OpenOrRecover(&fs, "/d", SelectorOptions{}));
  WAL_ASSERT_OK(AddTwoTenants(*r.selector));
  Rng rng(15);
  WAL_ASSERT_OK(DriveReported(*r.selector, 4, rng));

  fs.ArmFailAfterOps(0);  // the very next filesystem op fails
  WAL_ASSERT_OK_AND_ASSIGN(const MultiTenantSelector::Assignment a,
                           r.selector->Next());  // buffered, no fs op yet
  const Status report = r.selector->Report(a, 0.5);  // sync hits the fault
  EXPECT_EQ(report.code(), StatusCode::kUnavailable) << report.ToString();

  // Fail-stop: even after the medium "heals", the engine refuses to run
  // ahead of its log.
  fs.ClearFaults();
  const Status next = r.selector->Next().status();
  EXPECT_EQ(next.code(), StatusCode::kFailedPrecondition) << next.ToString();
  const Status add =
      r.selector->AddTenant(MakeTestPrior(3), {1.0, 1.0, 1.0}).status();
  EXPECT_EQ(add.code(), StatusCode::kFailedPrecondition) << add.ToString();
}

}  // namespace
}  // namespace easeml::wal
