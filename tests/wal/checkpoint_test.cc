// Checkpoint encode/decode bit-exactness, the atomic publish protocol
// (tmp + sync + rename survives a crash at any point), and CutCheckpoint
// on a live WAL-attached engine (seal to a block boundary, embed the log
// position, carry the prior registry and obs metadata).

#include "wal/checkpoint.h"

#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "common/logging.h"
#include "common/rng.h"
#include "core/durable_state.h"
#include "core/multi_tenant_selector.h"
#include "gtest/gtest.h"
#include "obs/fleet_observer.h"
#include "shard/sharded_selector.h"
#include "wal/fault_injection.h"
#include "wal/record.h"
#include "wal/selector_wal.h"
#include "wal_test_util.h"

namespace easeml::wal {
namespace {

using core::MultiTenantSelector;
using core::SelectorOptions;

Status Drive(MultiTenantSelector& s, int steps, Rng& rng) {
  for (int i = 0; i < steps && !s.Exhausted(); ++i) {
    auto assignment = s.Next();
    if (!assignment.ok()) return assignment.status();
    EASEML_RETURN_NOT_OK(s.Report(*assignment, rng.Uniform(0.0, 1.0)));
  }
  return Status::OK();
}

Result<std::unique_ptr<MultiTenantSelector>> SmallCampaignEngine(
    const SelectorOptions& options, int steps) {
  EASEML_ASSIGN_OR_RETURN(std::unique_ptr<MultiTenantSelector> s,
                          shard::MakeSelector(options));
  EASEML_RETURN_NOT_OK(
      s->AddTenant(MakeTestPrior(3), {1.0, 2.0, 3.0}).status());
  EASEML_RETURN_NOT_OK(
      s->AddTenant(MakeTestPrior(4, 0.3), {1.0, 1.0, 2.0, 2.0}).status());
  Rng rng(41);
  EASEML_RETURN_NOT_OK(Drive(*s, steps, rng));
  return s;
}

TEST(CheckpointState, EncodeDecodeRoundTripsBitExactly) {
  SelectorOptions options;
  WAL_ASSERT_OK_AND_ASSIGN(std::unique_ptr<MultiTenantSelector> s,
                           SmallCampaignEngine(options, 12));
  WAL_ASSERT_OK_AND_ASSIGN(const core::DurableSelectorState state,
                           s->CaptureDurableState());

  std::string bytes;
  EncodeDurableSelectorState(&bytes, state);
  std::string_view cursor = bytes;
  core::DurableSelectorState decoded;
  WAL_ASSERT_OK(DecodeDurableSelectorState(&cursor, &decoded));
  EXPECT_TRUE(cursor.empty());

  std::string bytes2;
  EncodeDurableSelectorState(&bytes2, decoded);
  EXPECT_EQ(bytes, bytes2);
}

TEST(CheckpointState, RestoredEngineCapturesIdenticalBytes) {
  SelectorOptions options;
  options.num_shards = 2;
  WAL_ASSERT_OK_AND_ASSIGN(std::unique_ptr<MultiTenantSelector> s,
                           SmallCampaignEngine(options, 12));
  WAL_ASSERT_OK_AND_ASSIGN(const core::DurableSelectorState state,
                           s->CaptureDurableState());

  WAL_ASSERT_OK_AND_ASSIGN(std::unique_ptr<MultiTenantSelector> fresh,
                           shard::MakeSelector(options));
  WAL_ASSERT_OK(fresh->RestoreDurableState(state));
  WAL_ASSERT_OK_AND_ASSIGN(const core::DurableSelectorState state2,
                           fresh->CaptureDurableState());

  std::string a, b;
  EncodeDurableSelectorState(&a, state);
  EncodeDurableSelectorState(&b, state2);
  EXPECT_EQ(a, b);
}

Checkpoint SampleCheckpoint() {
  SelectorOptions options;
  auto engine = SmallCampaignEngine(options, 8);
  EASEML_CHECK(engine.ok()) << engine.status().ToString();
  auto state = (*engine)->CaptureDurableState();
  EASEML_CHECK(state.ok()) << state.status().ToString();
  Checkpoint cp;
  cp.state = std::move(state).value();
  core::DurablePrior prior;
  prior.num_arms = 2;
  prior.noise_variance = 0.25;
  prior.mean = {0.5, -0.5};
  prior.gram = {1.0, 0.5, 0.5, 1.0};
  cp.wal_priors.push_back(std::move(prior));
  cp.has_obs = true;
  cp.obs.fleet_epoch = 17;
  cp.obs.totals.tenants = 2;
  cp.obs.totals.rounds = 8;
  return cp;
}

TEST(CheckpointFile, EncodeDecodeRoundTrips) {
  const Checkpoint cp = SampleCheckpoint();
  const std::string bytes = EncodeCheckpoint(cp);
  WAL_ASSERT_OK_AND_ASSIGN(const Checkpoint round, DecodeCheckpoint(bytes));
  EXPECT_EQ(EncodeCheckpoint(round), bytes);
  ASSERT_EQ(round.wal_priors.size(), 1u);
  EXPECT_EQ(round.wal_priors[0].gram, cp.wal_priors[0].gram);
  EXPECT_TRUE(round.has_obs);
  EXPECT_EQ(round.obs.fleet_epoch, 17u);
  EXPECT_EQ(round.obs.totals.rounds, 8);
}

TEST(CheckpointFile, DecodeRejectsDamage) {
  const std::string bytes = EncodeCheckpoint(SampleCheckpoint());

  std::string bad_magic = bytes;
  bad_magic[0] = 'X';
  EXPECT_EQ(DecodeCheckpoint(bad_magic).status().code(),
            StatusCode::kDataLoss);

  std::string bad_body = bytes;
  bad_body[bytes.size() - 3] ^= 0x10;
  EXPECT_EQ(DecodeCheckpoint(bad_body).status().code(), StatusCode::kDataLoss);

  EXPECT_EQ(DecodeCheckpoint(std::string_view(bytes).substr(0, 10))
                .status()
                .code(),
            StatusCode::kDataLoss);
  EXPECT_EQ(
      DecodeCheckpoint(std::string_view(bytes).substr(0, bytes.size() - 1))
          .status()
          .code(),
      StatusCode::kDataLoss);
}

TEST(CheckpointFile, ReadAbsentIsNulloptNotError) {
  FaultInjectingFileSystem fs;
  WAL_ASSERT_OK(fs.CreateDir("/d"));
  WAL_ASSERT_OK_AND_ASSIGN(const std::optional<Checkpoint> cp,
                           ReadCheckpoint(&fs, "/d"));
  EXPECT_FALSE(cp.has_value());
}

TEST(CheckpointFile, ReadCorruptFallsBackToNullopt) {
  FaultInjectingFileSystem fs;
  WAL_ASSERT_OK(fs.CreateDir("/d"));
  WAL_ASSERT_OK_AND_ASSIGN(std::unique_ptr<WritableFile> f,
                           fs.OpenAppendable(CheckpointPath("/d")));
  WAL_ASSERT_OK(f->Append("not a checkpoint at all"));
  WAL_ASSERT_OK(f->Sync());
  WAL_ASSERT_OK(f->Close());
  // Corrupt checkpoint -> recovery falls back to full log replay, so the
  // read reports "no checkpoint" rather than an error.
  WAL_ASSERT_OK_AND_ASSIGN(const std::optional<Checkpoint> cp,
                           ReadCheckpoint(&fs, "/d"));
  EXPECT_FALSE(cp.has_value());
}

TEST(CheckpointFile, WriteReadRoundTripsThroughTheFilesystem) {
  FaultInjectingFileSystem fs;
  WAL_ASSERT_OK(fs.CreateDir("/d"));
  const Checkpoint cp = SampleCheckpoint();
  WAL_ASSERT_OK(WriteCheckpoint(&fs, "/d", cp));
  WAL_ASSERT_OK_AND_ASSIGN(const std::optional<Checkpoint> round,
                           ReadCheckpoint(&fs, "/d"));
  ASSERT_TRUE(round.has_value());
  EXPECT_EQ(EncodeCheckpoint(*round), EncodeCheckpoint(cp));
  // The tmp staging file must not linger after the atomic rename.
  WAL_ASSERT_OK_AND_ASSIGN(const bool tmp_exists,
                           fs.Exists(CheckpointPath("/d") + ".tmp"));
  EXPECT_FALSE(tmp_exists);
}

TEST(CheckpointFile, CrashedRewriteKeepsThePreviousCheckpoint) {
  FaultInjectingFileSystem fs;
  WAL_ASSERT_OK(fs.CreateDir("/d"));
  Checkpoint first = SampleCheckpoint();
  first.obs.fleet_epoch = 1;
  WAL_ASSERT_OK(WriteCheckpoint(&fs, "/d", first));

  Checkpoint second = SampleCheckpoint();
  second.obs.fleet_epoch = 2;
  // WriteCheckpoint charges exactly two ops (one append, one sync); fail
  // each in turn and prove the previous checkpoint survives, even across
  // a power loss.
  for (int64_t crash_after : {0, 1}) {
    fs.ArmFailAfterOps(crash_after);
    EXPECT_FALSE(WriteCheckpoint(&fs, "/d", second).ok());
    fs.ClearFaults();
    fs.CrashDropPending();
    WAL_ASSERT_OK_AND_ASSIGN(const std::optional<Checkpoint> read,
                             ReadCheckpoint(&fs, "/d"));
    ASSERT_TRUE(read.has_value());
    EXPECT_EQ(read->obs.fleet_epoch, 1u);
  }

  // And with faults cleared, the rewrite goes through and replaces it.
  WAL_ASSERT_OK(WriteCheckpoint(&fs, "/d", second));
  WAL_ASSERT_OK_AND_ASSIGN(const std::optional<Checkpoint> read,
                           ReadCheckpoint(&fs, "/d"));
  ASSERT_TRUE(read.has_value());
  EXPECT_EQ(read->obs.fleet_epoch, 2u);
}

TEST(CutCheckpoint, SealsLogAndEmbedsPositionAndPriors) {
  FaultInjectingFileSystem fs;
  WAL_ASSERT_OK(fs.CreateDir("/d"));
  WAL_ASSERT_OK_AND_ASSIGN(std::unique_ptr<SelectorWal> wal,
                           SelectorWal::Open(&fs, LogPath("/d"), {}));

  SelectorOptions options;
  options.wal = wal.get();
  WAL_ASSERT_OK_AND_ASSIGN(std::unique_ptr<MultiTenantSelector> s,
                           shard::MakeSelector(options));
  WAL_ASSERT_OK(s->AddTenant(MakeTestPrior(3), {1.0, 2.0, 3.0}).status());
  WAL_ASSERT_OK(
      s->AddTenant(MakeTestPrior(4, 0.3), {1.0, 1.0, 2.0, 2.0}).status());
  Rng rng(7);
  WAL_ASSERT_OK(Drive(*s, 10, rng));

  WAL_ASSERT_OK(CutCheckpoint(&fs, "/d", wal.get(), *s, nullptr));

  WAL_ASSERT_OK_AND_ASSIGN(const std::optional<Checkpoint> cp,
                           ReadCheckpoint(&fs, "/d"));
  ASSERT_TRUE(cp.has_value());
  EXPECT_FALSE(cp->has_obs);
  EXPECT_EQ(cp->wal_priors.size(), 2u);
  EXPECT_EQ(cp->state.tenants.size(), 2u);

  // The embedded position is the sealed (block-aligned) log end, and every
  // byte it references is already durable.
  EXPECT_GT(cp->state.wal_offset, 0);
  EXPECT_EQ(cp->state.wal_offset % static_cast<int64_t>(kWalBlockSize), 0);
  WAL_ASSERT_OK_AND_ASSIGN(const std::string log, fs.ReadFile(LogPath("/d")));
  EXPECT_EQ(static_cast<int64_t>(log.size()), cp->state.wal_offset);
  EXPECT_EQ(fs.PendingBytes(LogPath("/d")).value(), 0u);
}

TEST(CutCheckpoint, CarriesObsMetadataFromThePlane) {
  FaultInjectingFileSystem fs;
  WAL_ASSERT_OK(fs.CreateDir("/d"));
  WAL_ASSERT_OK_AND_ASSIGN(std::unique_ptr<SelectorWal> wal,
                           SelectorWal::Open(&fs, LogPath("/d"), {}));

  SelectorOptions options;
  options.wal = wal.get();
  obs::FleetObserverOptions obs_options;
  obs_options.num_shards = 1;
  obs_options.publish_interval = 1;
  WAL_ASSERT_OK_AND_ASSIGN(obs::ObservedSelector observed,
                           obs::MakeObservedSelector(options, obs_options));
  WAL_ASSERT_OK(observed.selector->AddTenant(MakeTestPrior(3), {1.0, 2.0, 3.0})
                    .status());
  Rng rng(9);
  WAL_ASSERT_OK(Drive(*observed.selector, 6, rng));

  WAL_ASSERT_OK(CutCheckpoint(&fs, "/d", wal.get(), *observed.selector,
                              &observed.observer->plane()));

  WAL_ASSERT_OK_AND_ASSIGN(const std::optional<Checkpoint> cp,
                           ReadCheckpoint(&fs, "/d"));
  ASSERT_TRUE(cp.has_value());
  EXPECT_TRUE(cp->has_obs);
  EXPECT_GT(cp->obs.fleet_epoch, 0u);
  // Published blocks lag the engine; the totals must never be AHEAD of it.
  EXPECT_LE(cp->obs.totals.tenants, 1);
  EXPECT_LE(cp->obs.totals.rounds, 6);
}

}  // namespace
}  // namespace easeml::wal
