#ifndef EASEML_TESTS_WAL_WAL_TEST_UTIL_H_
#define EASEML_TESTS_WAL_WAL_TEST_UTIL_H_

#include <cmath>
#include <cstdlib>
#include <memory>
#include <utility>
#include <vector>

#include "common/status.h"
#include "gp/shared_prior_gp.h"
#include "gtest/gtest.h"
#include "linalg/matrix.h"

// Assertion helpers shared by the WAL suites (the repo's tests otherwise
// unwrap Results by hand; the durability tests check enough statuses that
// the shorthand pays for itself).

#define WAL_ASSERT_OK(expr)                                  \
  do {                                                       \
    const ::easeml::Status _wal_st = (expr);                 \
    ASSERT_TRUE(_wal_st.ok()) << _wal_st.ToString();         \
  } while (0)

#define WAL_EXPECT_OK(expr)                                  \
  do {                                                       \
    const ::easeml::Status _wal_st = (expr);                 \
    EXPECT_TRUE(_wal_st.ok()) << _wal_st.ToString();         \
  } while (0)

#define WAL_CONCAT_INNER(a, b) a##b
#define WAL_CONCAT(a, b) WAL_CONCAT_INNER(a, b)

// Unwraps a Result into a fresh variable, failing the test on error.
//   WAL_ASSERT_OK_AND_ASSIGN(const LogScan scan, ScanLog(log, 0, 0));
#define WAL_ASSERT_OK_AND_ASSIGN(decl, expr)                         \
  WAL_ASSERT_OK_AND_ASSIGN_IMPL(WAL_CONCAT(_wal_r_, __LINE__), decl, expr)

#define WAL_ASSERT_OK_AND_ASSIGN_IMPL(tmp, decl, expr)               \
  auto tmp = (expr);                                                 \
  ASSERT_TRUE(tmp.ok()) << tmp.status().ToString();                  \
  decl = std::move(tmp).value()

namespace easeml::wal {

/// A small valid shared prior: Kac-Murdock-Szego Gram S(i,j) = corr^|i-j|
/// (positive definite for |corr| < 1). Two calls with the same shape
/// produce equal-content but DISTINCT objects, which is exactly what the
/// recovery tests need to model a restarted process rebuilding its priors.
inline std::shared_ptr<const gp::SharedGpPrior> MakeTestPrior(
    int num_arms, double corr = 0.5, double noise = 1e-2,
    std::vector<double> mean = {}) {
  std::vector<double> gram(static_cast<size_t>(num_arms) * num_arms);
  for (int i = 0; i < num_arms; ++i) {
    for (int j = 0; j < num_arms; ++j) {
      gram[static_cast<size_t>(i) * num_arms + j] =
          std::pow(corr, std::abs(i - j));
    }
  }
  auto matrix = linalg::Matrix::FromRowMajor(num_arms, num_arms, gram);
  if (!matrix.ok()) std::abort();
  auto prior =
      gp::MakeSharedGpPrior(std::move(matrix).value(), noise, std::move(mean));
  if (!prior.ok()) std::abort();
  return std::move(prior).value();
}

}  // namespace easeml::wal

#endif  // EASEML_TESTS_WAL_WAL_TEST_UTIL_H_
