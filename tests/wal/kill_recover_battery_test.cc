// The randomized kill-and-recover battery: drive a durable selector
// through a churny workload, crash it at scripted points under four fault
// models (process kill, power loss, torn write, bit flip), recover, and
// prove the recovered engine is BIT-FOR-BIT the engine that never crashed:
//
//   1. Every acknowledged Add/Remove/Report/Cancel survives recovery
//      (its epoch is <= the recovered last_epoch); tickets (Next) are
//      explicitly not in the guarantee.
//   2. A reference engine replaying exactly the durable journal prefix
//      captures an identical DurableSelectorState encoding (posterior
//      sums, Cholesky bits, schedulers, tickets — everything).
//   3. Operations the crash swallowed are cleanly absent (implied by 2).
//   4. Both engines continue in lockstep after recovery and still agree.
//
// The matrix covers all five policies, 1 and 4 shards, candidate index on
// and off, with and without a mid-run checkpoint.

#include <algorithm>
#include <array>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "common/rng.h"
#include "core/durable_state.h"
#include "core/multi_tenant_selector.h"
#include "gtest/gtest.h"
#include "shard/sharded_selector.h"
#include "wal/checkpoint.h"
#include "wal/fault_injection.h"
#include "wal/recovery.h"
#include "wal_test_util.h"

namespace easeml::wal {
namespace {

using core::MultiTenantSelector;
using core::SelectorOptions;

enum class Scenario {
  kKillKeepPending,      // process dies; the page cache survives
  kPowerLossDropPending, // everything unsynced is gone
  kTornTail,             // a prefix of the unsynced suffix hit the medium
  kBitFlipTail,          // silent corruption near the durable tail
};

const char* ScenarioName(Scenario s) {
  switch (s) {
    case Scenario::kKillKeepPending: return "kill-keep-pending";
    case Scenario::kPowerLossDropPending: return "power-loss";
    case Scenario::kTornTail: return "torn-tail";
    case Scenario::kBitFlipTail: return "bit-flip";
  }
  return "?";
}

// One journaled operation. Every ATTEMPT is journaled — including the op a
// scripted crash interrupts, whose WAL records may still (partially)
// survive; `epoch` is the epoch its LAST record would carry, so "op.epoch
// <= recovered last_epoch" selects exactly the ops recovery replayed.
struct Op {
  enum Kind { kAdd, kRemove, kNext, kReport, kCancel };
  Kind kind = kNext;
  int shape = 0;              // kAdd: which shared-prior shape
  std::vector<double> costs;  // kAdd
  int tenant = -1;            // kAdd (predicted id) / kRemove
  MultiTenantSelector::Assignment assignment;  // kNext/kReport/kCancel
  double accuracy = 0.0;      // kReport
  int64_t epoch = 0;
  bool acked = false;  // returned OK from a synced-before-ack operation
};

using PriorSet = std::array<std::shared_ptr<const gp::SharedGpPrior>, 2>;

PriorSet MakePriorSet() {
  return {MakeTestPrior(3, 0.5), MakeTestPrior(3, 0.2)};
}

std::string StateFingerprint(const MultiTenantSelector& s) {
  auto state = s.CaptureDurableState();
  EXPECT_TRUE(state.ok()) << state.status().ToString();
  if (!state.ok()) return "<capture failed>";
  state->wal_epoch = 0;
  state->wal_offset = 0;
  std::string bytes;
  EncodeDurableSelectorState(&bytes, *state);
  return bytes;
}

// Drives up to `budget` randomized ops. Returns false when an op failed
// (the scripted crash point fired, or the engine refused benignly) — the
// caller crashes and recovers from there either way.
bool RunWorkload(MultiTenantSelector& s, const PriorSet& priors, Rng& rng,
                 int budget, bool registered[2], int64_t* epoch,
                 std::vector<int>* live, std::vector<Op>* journal) {
  for (int i = 0; i < budget; ++i) {
    const int dice = rng.UniformInt(0, 99);
    // Tenants exhaust after each model is played once, so churn is the
    // normal state of this workload: when the whole fleet is exhausted,
    // admit a new tenant instead of idling.
    const bool must_add = s.Exhausted() && live->size() < 6;
    if ((dice < 10 || must_add) && live->size() < 6) {
      Op op;
      op.kind = Op::kAdd;
      op.shape = rng.UniformInt(0, 1);
      op.costs = {1.0, 1.0 + rng.UniformInt(0, 3), 1.0 + rng.UniformInt(0, 5)};
      // First use of a prior shape also appends its REGISTER_PRIOR record.
      op.epoch = *epoch + (registered[op.shape] ? 1 : 2);
      // Tenant slots are append-only (removal retires, never reuses), so
      // the next id is the number of adds that reached the engine.
      int adds = 0;
      for (const Op& o : *journal) {
        if (o.kind == Op::kAdd) ++adds;
      }
      op.tenant = adds;
      journal->push_back(op);
      auto id = s.AddTenant(priors[op.shape], op.costs);
      if (!id.ok()) return false;
      EXPECT_EQ(*id, op.tenant);
      *epoch = op.epoch;
      registered[op.shape] = true;
      journal->back().acked = true;
      live->push_back(*id);
    } else if (dice < 16 && live->size() > 1) {
      Op op;
      op.kind = Op::kRemove;
      op.tenant =
          (*live)[rng.UniformInt(0, static_cast<int>(live->size()) - 1)];
      op.epoch = *epoch + 1;
      journal->push_back(op);
      if (!s.RemoveTenant(op.tenant).ok()) return false;
      *epoch = op.epoch;
      journal->back().acked = true;
      live->erase(std::find(live->begin(), live->end(), op.tenant));
    } else {
      if (s.Exhausted()) break;
      Op next;
      next.kind = Op::kNext;
      next.epoch = *epoch + 1;
      auto a = s.Next();
      if (!a.ok()) {
        journal->push_back(next);
        return false;
      }
      next.assignment = *a;
      journal->push_back(next);
      *epoch = next.epoch;  // acked stays false: a ticket is not durable

      Op close;
      close.assignment = *a;
      close.epoch = *epoch + 1;
      if (rng.Bernoulli(0.15)) {
        close.kind = Op::kCancel;
        journal->push_back(close);
        if (!s.Cancel(*a).ok()) return false;
      } else {
        close.kind = Op::kReport;
        close.accuracy = rng.Uniform(0.0, 1.0);
        journal->push_back(close);
        if (!s.Report(*a, close.accuracy).ok()) return false;
      }
      *epoch = close.epoch;
      journal->back().acked = true;
    }
  }
  return true;
}

void ApplyCrash(FaultInjectingFileSystem& fs, Scenario sc, Rng& rng,
                const std::string& log) {
  switch (sc) {
    case Scenario::kKillKeepPending:
      break;
    case Scenario::kPowerLossDropPending:
      fs.CrashDropPending();
      break;
    case Scenario::kTornTail: {
      const auto pending = fs.PendingBytes(log);
      const uint64_t p = pending.ok() ? *pending : 0;
      if (p == 0) {
        fs.CrashDropPending();
        break;
      }
      fs.CrashKeepPendingPrefix(
          log, static_cast<uint64_t>(
                   rng.UniformInt(0, static_cast<int>(p) - 1)));
      break;
    }
    case Scenario::kBitFlipTail: {
      fs.CrashDropPending();
      const auto bytes = fs.ReadFile(log);
      if (!bytes.ok() || bytes->empty()) break;
      const int span = std::min<int>(64, static_cast<int>(bytes->size()));
      const uint64_t byte_index =
          bytes->size() - 1 -
          static_cast<uint64_t>(rng.UniformInt(0, span - 1));
      ASSERT_TRUE(fs.FlipDurableBit(log, byte_index, rng.UniformInt(0, 7))
                      .ok());
      break;
    }
  }
}

// Replays the durable journal prefix (ops whose last record's epoch is at
// or below `last_epoch`) into the reference engine, asserting the engine
// reproduces the journaled decisions exactly.
void ReplayPrefix(MultiTenantSelector& ref, const PriorSet& priors,
                  const std::vector<Op>& journal, int64_t last_epoch) {
  for (const Op& op : journal) {
    if (op.epoch > last_epoch) break;
    switch (op.kind) {
      case Op::kAdd: {
        auto id = ref.AddTenant(priors[op.shape], op.costs);
        ASSERT_TRUE(id.ok()) << id.status().ToString();
        ASSERT_EQ(*id, op.tenant);
        break;
      }
      case Op::kRemove:
        WAL_ASSERT_OK(ref.RemoveTenant(op.tenant));
        break;
      case Op::kNext: {
        WAL_ASSERT_OK_AND_ASSIGN(const MultiTenantSelector::Assignment a,
                                 ref.Next());
        ASSERT_EQ(a.tenant, op.assignment.tenant);
        ASSERT_EQ(a.model, op.assignment.model);
        ASSERT_EQ(a.id, op.assignment.id);
        break;
      }
      case Op::kReport:
        WAL_ASSERT_OK(ref.Report(op.assignment, op.accuracy));
        break;
      case Op::kCancel:
        WAL_ASSERT_OK(ref.Cancel(op.assignment));
        break;
    }
  }
}

void RunOne(core::SchedulerKind kind, int shards, bool index, Scenario sc,
            int64_t fail_after, bool with_checkpoint, uint64_t seed) {
  SelectorOptions options;
  options.scheduler = kind;
  options.num_shards = shards;
  options.use_candidate_index = index;
  options.seed = 77;

  FaultInjectingFileSystem fs;
  std::vector<Op> journal;
  std::vector<int> live;
  bool registered[2] = {false, false};
  int64_t epoch = 0;
  Rng rng(seed);
  {
    auto opened = OpenOrRecover(&fs, "/d", options);
    ASSERT_TRUE(opened.ok()) << opened.status().ToString();
    RecoveredSelector r = std::move(opened).value();
    const PriorSet priors = MakePriorSet();
    const bool alive = RunWorkload(*r.selector, priors, rng, 14, registered,
                                   &epoch, &live, &journal);
    if (::testing::Test::HasFatalFailure()) return;
    if (alive && with_checkpoint) {
      WAL_ASSERT_OK(
          CutCheckpoint(&fs, "/d", r.wal.get(), *r.selector, nullptr));
    }
    if (alive) {
      if (fail_after >= 0) fs.ArmFailAfterOps(fail_after);
      RunWorkload(*r.selector, priors, rng, 22, registered, &epoch, &live,
                  &journal);
      if (::testing::Test::HasFatalFailure()) return;
    }
  }  // the process dies: engine and WAL buffer are gone

  fs.ClearFaults();
  ApplyCrash(fs, sc, rng, LogPath("/d"));
  if (::testing::Test::HasFatalFailure()) return;

  auto reopened = OpenOrRecover(&fs, "/d", options);
  ASSERT_TRUE(reopened.ok()) << reopened.status().ToString();
  RecoveredSelector r = std::move(reopened).value();

  // 1. Acked ops survive. (Bit flips are MEDIA corruption: the ack
  //    guarantee covers crashes, not a disk that lies; the deterministic
  //    truncate-and-match checks below still apply.)
  if (sc != Scenario::kBitFlipTail) {
    for (const Op& op : journal) {
      if (op.acked) {
        EXPECT_LE(op.epoch, r.stats.last_epoch)
            << "acknowledged " << static_cast<int>(op.kind)
            << " lost by recovery";
      }
    }
  }

  // 2. Recovered state is bit-identical to a never-crashed reference
  //    engine that ran exactly the durable prefix.
  auto ref_or = shard::MakeSelector(options);
  ASSERT_TRUE(ref_or.ok()) << ref_or.status().ToString();
  std::unique_ptr<MultiTenantSelector> ref = std::move(ref_or).value();
  const PriorSet ref_priors = MakePriorSet();  // a restarted process's priors
  ReplayPrefix(*ref, ref_priors, journal, r.stats.last_epoch);
  if (::testing::Test::HasFatalFailure()) return;

  EXPECT_EQ(StateFingerprint(*r.selector), StateFingerprint(*ref));
  WAL_ASSERT_OK(r.selector->ValidateIndex());
  WAL_ASSERT_OK(ref->ValidateIndex());

  // 4. Close any ticket the crash left in flight, then continue both
  //    engines in lockstep — the recovered WAL is live again.
  auto st = r.selector->CaptureDurableState();
  ASSERT_TRUE(st.ok()) << st.status().ToString();
  for (const auto& t : st->in_flight) {
    MultiTenantSelector::Assignment a;
    a.tenant = t.tenant;
    a.model = t.model;
    a.id = t.id;
    WAL_ASSERT_OK(r.selector->Cancel(a));
    WAL_ASSERT_OK(ref->Cancel(a));
  }
  for (int i = 0; i < 10 && !ref->Exhausted() && !r.selector->Exhausted();
       ++i) {
    auto a = r.selector->Next();
    auto b = ref->Next();
    ASSERT_EQ(a.ok(), b.ok()) << a.status().ToString() << " vs "
                              << b.status().ToString();
    if (!a.ok()) break;
    ASSERT_EQ(a->tenant, b->tenant);
    ASSERT_EQ(a->model, b->model);
    ASSERT_EQ(a->id, b->id);
    const double accuracy = rng.Uniform(0.0, 1.0);
    WAL_ASSERT_OK(r.selector->Report(*a, accuracy));
    WAL_ASSERT_OK(ref->Report(*b, accuracy));
  }
  EXPECT_EQ(StateFingerprint(*r.selector), StateFingerprint(*ref));
}

TEST(KillRecoverBattery, RecoveredStateIsBitIdenticalAcrossTheMatrix) {
  const core::SchedulerKind kinds[] = {
      core::SchedulerKind::kHybrid, core::SchedulerKind::kGreedy,
      core::SchedulerKind::kRoundRobin, core::SchedulerKind::kRandom,
      core::SchedulerKind::kFcfs};
  int run = 0;
  for (const core::SchedulerKind kind : kinds) {
    for (const int shards : {1, 4}) {
      for (const bool index : {false, true}) {
        for (int rep = 0; rep < 2; ++rep, ++run) {
          const Scenario sc = static_cast<Scenario>(run % 4);
          // rep 0 crashes wherever the workload budget ends; rep 1 arms a
          // scripted mid-operation crash point.
          const int64_t fail_after = rep == 0 ? -1 : 6 + run % 9;
          const bool with_checkpoint = run % 3 == 0;
          SCOPED_TRACE(std::string("policy=") +
                       core::SchedulerKindName(kind) +
                       " shards=" + std::to_string(shards) +
                       " index=" + std::to_string(index) +
                       " scenario=" + ScenarioName(sc) +
                       " fail_after=" + std::to_string(fail_after) +
                       " checkpoint=" + std::to_string(with_checkpoint));
          RunOne(kind, shards, index, sc, fail_after, with_checkpoint,
                 1000 + static_cast<uint64_t>(run) * 7);
          if (::testing::Test::HasFatalFailure()) return;
        }
      }
    }
  }
}

}  // namespace
}  // namespace easeml::wal
