#include "sim/metrics.h"

#include <gtest/gtest.h>

namespace easeml::sim {
namespace {

LossCurve MakeCurve(std::vector<double> loss) {
  LossCurve c;
  const int n = static_cast<int>(loss.size());
  for (int i = 0; i < n; ++i) {
    c.grid.push_back(static_cast<double>(i) / (n - 1));
  }
  c.avg_loss = std::move(loss);
  return c;
}

TEST(AggregateTest, MeanAndWorstPointwise) {
  std::vector<LossCurve> reps = {MakeCurve({0.4, 0.2, 0.0}),
                                 MakeCurve({0.6, 0.4, 0.2})};
  auto agg = Aggregate(reps);
  ASSERT_TRUE(agg.ok());
  EXPECT_DOUBLE_EQ(agg->mean[0], 0.5);
  EXPECT_DOUBLE_EQ(agg->mean[1], 0.3);
  EXPECT_DOUBLE_EQ(agg->mean[2], 0.1);
  EXPECT_DOUBLE_EQ(agg->worst[0], 0.6);
  EXPECT_DOUBLE_EQ(agg->worst[2], 0.2);
}

TEST(AggregateTest, RejectsEmptyAndMismatched) {
  EXPECT_FALSE(Aggregate({}).ok());
  std::vector<LossCurve> mismatched = {MakeCurve({0.5, 0.1}),
                                       MakeCurve({0.5, 0.1, 0.0})};
  EXPECT_FALSE(Aggregate(mismatched).ok());
  LossCurve empty;
  EXPECT_FALSE(Aggregate({empty}).ok());
}

TEST(FractionToReachTest, FindsFirstCrossing) {
  LossCurve c = MakeCurve({0.5, 0.3, 0.1, 0.1, 0.05});
  auto f = FractionToReach(c.grid, c.avg_loss, 0.1);
  ASSERT_TRUE(f.has_value());
  EXPECT_DOUBLE_EQ(*f, 0.5);
  EXPECT_FALSE(FractionToReach(c.grid, c.avg_loss, 0.01).has_value());
  // Already below the target at x = 0.
  EXPECT_DOUBLE_EQ(*FractionToReach(c.grid, c.avg_loss, 0.9), 0.0);
}

TEST(SpeedupToReachTest, RatioOfCrossings) {
  // fast reaches 0.1 at x=0.25, slow at x=0.75 -> 3x.
  AggregatedCurves fast, slow;
  fast.grid = slow.grid = {0.0, 0.25, 0.5, 0.75, 1.0};
  fast.mean = {0.5, 0.1, 0.1, 0.1, 0.1};
  slow.mean = {0.5, 0.4, 0.3, 0.1, 0.1};
  auto s = SpeedupToReach(fast, slow, 0.1);
  ASSERT_TRUE(s.ok());
  EXPECT_DOUBLE_EQ(*s, 3.0);
}

TEST(SpeedupToReachTest, FailsWhenTargetUnreached) {
  AggregatedCurves a, b;
  a.grid = b.grid = {0.0, 1.0};
  a.mean = {0.5, 0.4};
  b.mean = {0.5, 0.01};
  EXPECT_FALSE(SpeedupToReach(a, b, 0.1).ok());
  EXPECT_FALSE(SpeedupToReach(b, a, 0.1).ok());
}

TEST(AreaUnderCurveTest, TrapezoidalRule) {
  // Constant 0.5 over [0,1] -> area 0.5; linear 1 -> 0 gives 0.5 too.
  EXPECT_DOUBLE_EQ(AreaUnderCurve({0.0, 1.0}, {0.5, 0.5}), 0.5);
  EXPECT_DOUBLE_EQ(AreaUnderCurve({0.0, 1.0}, {1.0, 0.0}), 0.5);
  EXPECT_DOUBLE_EQ(AreaUnderCurve({0.0, 0.5, 1.0}, {1.0, 0.0, 0.0}), 0.25);
}

TEST(AreaUnderCurveTest, LowerCurveHasSmallerArea) {
  const std::vector<double> grid = {0.0, 0.5, 1.0};
  EXPECT_LT(AreaUnderCurve(grid, {0.2, 0.1, 0.0}),
            AreaUnderCurve(grid, {0.5, 0.4, 0.3}));
}

}  // namespace
}  // namespace easeml::sim
