#include "sim/multi_device.h"

#include <gtest/gtest.h>

#include "bandit/gp_ucb.h"
#include "common/rng.h"
#include "scheduler/round_robin.h"

namespace easeml::sim {
namespace {

data::Dataset RandomDataset(int n, int k, uint64_t seed) {
  Rng rng(seed);
  data::Dataset ds;
  ds.name = "rand";
  ds.quality = linalg::Matrix(n, k);
  ds.cost = linalg::Matrix(n, k);
  for (int i = 0; i < n; ++i) {
    ds.user_names.push_back("u" + std::to_string(i));
    for (int j = 0; j < k; ++j) {
      ds.quality(i, j) = rng.Uniform(0.1, 0.95);
      ds.cost(i, j) = rng.Uniform(0.5, 4.0);
    }
  }
  for (int j = 0; j < k; ++j) {
    ds.model_names.push_back("m" + std::to_string(j));
  }
  return ds;
}

std::vector<scheduler::UserState> MakeGpUsers(const Environment& env) {
  std::vector<scheduler::UserState> users;
  for (int i = 0; i < env.num_users(); ++i) {
    auto belief = gp::DiscreteArmGp::Create(
        linalg::Matrix::Identity(env.num_models()), 0.01);
    EXPECT_TRUE(belief.ok());
    auto policy = bandit::GpUcbPolicy::CreateUnique(
        std::move(belief).value(), bandit::GpUcbOptions());
    EXPECT_TRUE(policy.ok());
    auto state = scheduler::UserState::Create(i, std::move(policy).value(),
                                              env.CostsForUser(i));
    EXPECT_TRUE(state.ok());
    users.push_back(std::move(state).value());
  }
  return users;
}

MultiDeviceOptions FullBudget(int devices) {
  MultiDeviceOptions opts;
  opts.num_devices = devices;
  opts.total_capacity = 8.0;
  opts.budget_fraction = 1.0;
  return opts;
}

TEST(MultiDeviceTest, ValidatesOptions) {
  auto env = Environment::Create(RandomDataset(3, 4, 1));
  ASSERT_TRUE(env.ok());
  auto users = MakeGpUsers(*env);
  scheduler::RoundRobinScheduler rr;
  MultiDeviceOptions opts;
  opts.num_devices = 0;
  EXPECT_FALSE(RunMultiDeviceSimulation(*env, users, rr, opts).ok());
  opts = MultiDeviceOptions();
  opts.total_capacity = 0.0;
  EXPECT_FALSE(RunMultiDeviceSimulation(*env, users, rr, opts).ok());
  opts = MultiDeviceOptions();
  opts.budget_fraction = 0.0;
  EXPECT_FALSE(RunMultiDeviceSimulation(*env, users, rr, opts).ok());
  opts = MultiDeviceOptions();
  opts.grid_points = 1;
  EXPECT_FALSE(RunMultiDeviceSimulation(*env, users, rr, opts).ok());
}

TEST(MultiDeviceTest, SingleDeviceMatchesModelCount) {
  auto env = Environment::Create(RandomDataset(4, 5, 2));
  ASSERT_TRUE(env.ok());
  auto users = MakeGpUsers(*env);
  scheduler::RoundRobinScheduler rr;
  auto result = RunMultiDeviceSimulation(*env, users, rr, FullBudget(1));
  ASSERT_TRUE(result.ok());
  // Full wall-clock budget at full capacity trains everything.
  EXPECT_EQ(result->steps, 20);
  EXPECT_NEAR(result->curve.avg_loss.back(), 0.0, 1e-12);
  EXPECT_LE(result->makespan, result->budget + 1e-9);
}

TEST(MultiDeviceTest, BusyTimeEqualsScaledCostOfCompletedJobs) {
  auto env = Environment::Create(RandomDataset(3, 4, 3));
  ASSERT_TRUE(env.ok());
  auto users = MakeGpUsers(*env);
  scheduler::RoundRobinScheduler rr;
  auto result = RunMultiDeviceSimulation(*env, users, rr, FullBudget(4));
  ASSERT_TRUE(result.ok());
  // Every launched job completes; its duration is cost / (capacity /
  // devices) = cost / 2. Jobs that would overrun the wall-clock budget are
  // never launched (multi-device packing is imperfect, so some may be cut
  // even at budget_fraction 1).
  double completed_cost = 0.0;
  for (const auto& u : users) completed_cost += u.consumed_cost();
  EXPECT_NEAR(result->busy_time, completed_cost / 2.0, 1e-9);
  EXPECT_GT(result->steps, 0);
}

TEST(MultiDeviceTest, MoreDevicesOverlapJobs) {
  for (int devices : {1, 4}) {
    auto env = Environment::Create(RandomDataset(6, 4, 4));
    ASSERT_TRUE(env.ok());
    auto users = MakeGpUsers(*env);
    scheduler::RoundRobinScheduler rr;
    auto result =
        RunMultiDeviceSimulation(*env, users, rr, FullBudget(devices));
    ASSERT_TRUE(result.ok());
    EXPECT_GE(result->steps, 20);  // near-complete campaign
    if (devices == 1) {
      // Sequential: busy time equals makespan (no overlap possible).
      EXPECT_NEAR(result->busy_time, result->makespan, 1e-9);
    } else {
      // Devices genuinely overlap: device-seconds exceed wall-clock.
      EXPECT_GT(result->busy_time, result->makespan * 1.5);
    }
  }
}

TEST(MultiDeviceTest, SingleFastDeviceReturnsTheFirstModelSooner) {
  // The verifiable core of the paper's Section-5.3.2 argument: one big
  // device running a model at 8x speed finishes the campaign's first model
  // strictly earlier than eight slow devices starting in parallel.
  for (uint64_t seed = 10; seed < 16; ++seed) {
    double first_single = 0.0, first_multi = 0.0;
    for (int devices : {1, 8}) {
      auto env = Environment::Create(RandomDataset(8, 6, seed));
      ASSERT_TRUE(env.ok());
      auto users = MakeGpUsers(*env);
      scheduler::RoundRobinScheduler rr;
      auto result =
          RunMultiDeviceSimulation(*env, users, rr, FullBudget(devices));
      ASSERT_TRUE(result.ok());
      (devices == 1 ? first_single : first_multi) =
          result->first_completion_time;
    }
    EXPECT_LT(first_single, first_multi) << "seed=" << seed;
  }
}

TEST(MultiDeviceTest, SingleFastDeviceWinsAccumulatedLoss) {
  // The paper's Section-5.3.2 conclusion: with near-linear scaling, the
  // single-device configuration achieves lower accumulated loss than
  // one-device-per-user, because each model returns sooner. Averaged over
  // seeds for robustness.
  double auc_single = 0.0, auc_multi = 0.0;
  for (uint64_t seed = 10; seed < 20; ++seed) {
    for (int devices : {1, 8}) {
      auto env = Environment::Create(RandomDataset(8, 6, seed));
      ASSERT_TRUE(env.ok());
      auto users = MakeGpUsers(*env);
      scheduler::RoundRobinScheduler rr;
      auto result =
          RunMultiDeviceSimulation(*env, users, rr, FullBudget(devices));
      ASSERT_TRUE(result.ok());
      const double auc =
          AreaUnderCurve(result->curve.grid, result->curve.avg_loss);
      (devices == 1 ? auc_single : auc_multi) += auc;
    }
  }
  EXPECT_LT(auc_single, auc_multi);
}

TEST(MultiDeviceTest, SublinearScalingPenalizesTheBigDevice) {
  // With scaling exponent < 1 the 8-unit device no longer runs 8x faster:
  // within the same wall-clock budget it completes fewer training runs.
  int steps_linear = 0, steps_sublinear = 0;
  for (double alpha : {1.0, 0.7}) {
    auto env = Environment::Create(RandomDataset(6, 6, 9));
    ASSERT_TRUE(env.ok());
    auto users = MakeGpUsers(*env);
    scheduler::RoundRobinScheduler rr;
    MultiDeviceOptions opts = FullBudget(1);
    opts.budget_fraction = 0.5;
    opts.scaling_exponent = alpha;
    auto result = RunMultiDeviceSimulation(*env, users, rr, opts);
    ASSERT_TRUE(result.ok());
    (alpha == 1.0 ? steps_linear : steps_sublinear) = result->steps;
  }
  EXPECT_GT(steps_linear, steps_sublinear);
}

TEST(MultiDeviceTest, ValidatesScalingExponent) {
  auto env = Environment::Create(RandomDataset(3, 4, 1));
  ASSERT_TRUE(env.ok());
  auto users = MakeGpUsers(*env);
  scheduler::RoundRobinScheduler rr;
  MultiDeviceOptions opts = FullBudget(2);
  opts.scaling_exponent = 0.0;
  EXPECT_FALSE(RunMultiDeviceSimulation(*env, users, rr, opts).ok());
  opts.scaling_exponent = 1.5;
  EXPECT_FALSE(RunMultiDeviceSimulation(*env, users, rr, opts).ok());
}

TEST(MultiDeviceTest, LossCurveIsNonIncreasing) {
  auto env = Environment::Create(RandomDataset(5, 5, 6));
  ASSERT_TRUE(env.ok());
  auto users = MakeGpUsers(*env);
  scheduler::RoundRobinScheduler rr;
  MultiDeviceOptions opts = FullBudget(3);
  opts.budget_fraction = 0.6;
  auto result = RunMultiDeviceSimulation(*env, users, rr, opts);
  ASSERT_TRUE(result.ok());
  for (size_t i = 1; i < result->curve.avg_loss.size(); ++i) {
    EXPECT_LE(result->curve.avg_loss[i],
              result->curve.avg_loss[i - 1] + 1e-12);
  }
}

TEST(MultiDeviceTest, RespectsWallClockBudget) {
  auto env = Environment::Create(RandomDataset(5, 5, 7));
  ASSERT_TRUE(env.ok());
  auto users = MakeGpUsers(*env);
  scheduler::RoundRobinScheduler rr;
  MultiDeviceOptions opts = FullBudget(2);
  opts.budget_fraction = 0.3;
  auto result = RunMultiDeviceSimulation(*env, users, rr, opts);
  ASSERT_TRUE(result.ok());
  EXPECT_LE(result->makespan, result->budget + 1e-9);
  EXPECT_LT(result->steps, 25);
}

}  // namespace
}  // namespace easeml::sim
