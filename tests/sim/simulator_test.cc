#include "sim/simulator.h"

#include <gtest/gtest.h>

#include <memory>

#include "bandit/fixed_order.h"
#include "bandit/gp_ucb.h"
#include "common/rng.h"
#include "scheduler/fcfs.h"
#include "scheduler/round_robin.h"

namespace easeml::sim {
namespace {

data::Dataset RandomDataset(int n, int k, uint64_t seed) {
  Rng rng(seed);
  data::Dataset ds;
  ds.name = "rand";
  ds.quality = linalg::Matrix(n, k);
  ds.cost = linalg::Matrix(n, k);
  for (int i = 0; i < n; ++i) {
    ds.user_names.push_back("u" + std::to_string(i));
    for (int j = 0; j < k; ++j) {
      ds.quality(i, j) = rng.Uniform(0.1, 0.95);
      ds.cost(i, j) = rng.Uniform(0.5, 2.0);
    }
  }
  for (int j = 0; j < k; ++j) ds.model_names.push_back("m" + std::to_string(j));
  return ds;
}

std::vector<scheduler::UserState> MakeGpUsers(const Environment& env) {
  std::vector<scheduler::UserState> users;
  for (int i = 0; i < env.num_users(); ++i) {
    auto belief = gp::DiscreteArmGp::Create(
        linalg::Matrix::Identity(env.num_models()), 0.01);
    EXPECT_TRUE(belief.ok());
    auto policy = bandit::GpUcbPolicy::CreateUnique(
        std::move(belief).value(), bandit::GpUcbOptions());
    EXPECT_TRUE(policy.ok());
    auto state = scheduler::UserState::Create(i, std::move(policy).value(),
                                              env.CostsForUser(i));
    EXPECT_TRUE(state.ok());
    users.push_back(std::move(state).value());
  }
  return users;
}

TEST(SimulatorTest, RunsToFullBudgetAndFindsOptimaAtFullFraction) {
  auto env = Environment::Create(RandomDataset(4, 5, 1));
  ASSERT_TRUE(env.ok());
  auto users = MakeGpUsers(*env);
  scheduler::RoundRobinScheduler rr;
  SimulationOptions opts;
  opts.budget_fraction = 1.0;  // train everything
  auto result = RunSimulation(*env, users, rr, opts);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->steps, 20);  // 4 users x 5 models
  // With the full budget every user finds its best model: final loss 0.
  EXPECT_NEAR(result->curve.avg_loss.back(), 0.0, 1e-12);
  for (double l : result->final_per_user_loss) EXPECT_NEAR(l, 0.0, 1e-12);
}

TEST(SimulatorTest, LossCurveIsNonIncreasing) {
  auto env = Environment::Create(RandomDataset(5, 6, 2));
  ASSERT_TRUE(env.ok());
  auto users = MakeGpUsers(*env);
  scheduler::RoundRobinScheduler rr;
  SimulationOptions opts;
  opts.budget_fraction = 0.8;
  auto result = RunSimulation(*env, users, rr, opts);
  ASSERT_TRUE(result.ok());
  for (size_t i = 1; i < result->curve.avg_loss.size(); ++i) {
    EXPECT_LE(result->curve.avg_loss[i], result->curve.avg_loss[i - 1] + 1e-12);
  }
  // Grid spans [0, 1].
  EXPECT_DOUBLE_EQ(result->curve.grid.front(), 0.0);
  EXPECT_DOUBLE_EQ(result->curve.grid.back(), 1.0);
}

TEST(SimulatorTest, RunsBudgetLimitsSteps) {
  auto env = Environment::Create(RandomDataset(4, 5, 3));
  ASSERT_TRUE(env.ok());
  auto users = MakeGpUsers(*env);
  scheduler::RoundRobinScheduler rr;
  SimulationOptions opts;
  opts.budget_fraction = 0.5;  // 10 of 20 runs
  auto result = RunSimulation(*env, users, rr, opts);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->steps, 10);
  EXPECT_DOUBLE_EQ(result->consumed, 10.0);
}

TEST(SimulatorTest, CostBudgetNeverExceeded) {
  auto env = Environment::Create(RandomDataset(4, 5, 4));
  ASSERT_TRUE(env.ok());
  auto users = MakeGpUsers(*env);
  scheduler::RoundRobinScheduler rr;
  SimulationOptions opts;
  opts.cost_aware_budget = true;
  opts.budget_fraction = 0.3;
  auto result = RunSimulation(*env, users, rr, opts);
  ASSERT_TRUE(result.ok());
  EXPECT_LE(result->consumed, result->budget + 1e-9);
  EXPECT_GT(result->steps, 0);
}

TEST(SimulatorTest, InitialSweepServesEveryUserFirst) {
  auto env = Environment::Create(RandomDataset(6, 4, 5));
  ASSERT_TRUE(env.ok());
  auto users = MakeGpUsers(*env);
  scheduler::RoundRobinScheduler rr;
  SimulationOptions opts;
  opts.budget_fraction = 0.25;  // exactly 6 runs = one sweep
  auto result = RunSimulation(*env, users, rr, opts);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->steps, 6);
  for (const auto& u : users) EXPECT_EQ(u.rounds_served(), 1);
}

TEST(SimulatorTest, NoSweepWhenDisabled) {
  auto env = Environment::Create(RandomDataset(6, 4, 6));
  ASSERT_TRUE(env.ok());
  auto users = MakeGpUsers(*env);
  // FCFS-style: without a sweep, all early budget goes to user 0.
  scheduler::RoundRobinScheduler rr;  // scheduler irrelevant for 1 step
  SimulationOptions opts;
  opts.initial_sweep = false;
  opts.budget_fraction = 0.25;
  auto result = RunSimulation(*env, users, rr, opts);
  ASSERT_TRUE(result.ok());
  // Round-robin without sweep still rotates, so each user got one round.
  EXPECT_EQ(result->steps, 6);
}

TEST(SimulatorTest, ValidatesArguments) {
  auto env = Environment::Create(RandomDataset(3, 4, 7));
  ASSERT_TRUE(env.ok());
  auto users = MakeGpUsers(*env);
  scheduler::RoundRobinScheduler rr;
  SimulationOptions opts;
  opts.budget_fraction = 0.0;
  EXPECT_FALSE(RunSimulation(*env, users, rr, opts).ok());
  opts = SimulationOptions();
  opts.grid_points = 1;
  EXPECT_FALSE(RunSimulation(*env, users, rr, opts).ok());
  // User count mismatch.
  opts = SimulationOptions();
  users.pop_back();
  EXPECT_FALSE(RunSimulation(*env, users, rr, opts).ok());
}

TEST(SimulatorTest, DeterministicForDeterministicComponents) {
  for (int trial = 0; trial < 2; ++trial) {
    auto env = Environment::Create(RandomDataset(4, 5, 8));
    ASSERT_TRUE(env.ok());
    auto users = MakeGpUsers(*env);
    scheduler::RoundRobinScheduler rr;
    SimulationOptions opts;
    static std::vector<double> first_curve;
    auto result = RunSimulation(*env, users, rr, opts);
    ASSERT_TRUE(result.ok());
    if (trial == 0) {
      first_curve = result->curve.avg_loss;
    } else {
      EXPECT_EQ(result->curve.avg_loss, first_curve);
    }
  }
}

}  // namespace
}  // namespace easeml::sim

namespace easeml::sim {
namespace {

TEST(RegretTest, EaseMlRegretBoundedByCumulativeRegret) {
  // R'_T <= R_T (Section 4.1): best-so-far rewards dominate last rewards.
  auto env = Environment::Create(RandomDataset(5, 6, 21));
  ASSERT_TRUE(env.ok());
  auto users = MakeGpUsers(*env);
  scheduler::RoundRobinScheduler rr;
  SimulationOptions opts;
  opts.budget_fraction = 1.0;
  auto result = RunSimulation(*env, users, rr, opts);
  ASSERT_TRUE(result.ok());
  EXPECT_GT(result->cumulative_regret, 0.0);
  EXPECT_LE(result->easeml_regret, result->cumulative_regret + 1e-9);
}

TEST(RegretTest, FcfsAccumulatesMoreRegretThanRoundRobin) {
  // The Section-4.1 example: FCFS leaves unserved users at full regret.
  for (uint64_t seed : {31u, 32u, 33u}) {
    auto env_a = Environment::Create(RandomDataset(6, 5, seed));
    auto env_b = Environment::Create(RandomDataset(6, 5, seed));
    ASSERT_TRUE(env_a.ok());
    ASSERT_TRUE(env_b.ok());
    auto users_a = MakeGpUsers(*env_a);
    auto users_b = MakeGpUsers(*env_b);
    scheduler::FcfsScheduler fcfs;
    scheduler::RoundRobinScheduler rr;
    SimulationOptions opts;
    opts.budget_fraction = 0.5;
    opts.initial_sweep = false;  // let FCFS behave pathologically
    auto a = RunSimulation(*env_a, users_a, fcfs, opts);
    auto b = RunSimulation(*env_b, users_b, rr, opts);
    ASSERT_TRUE(a.ok());
    ASSERT_TRUE(b.ok());
    EXPECT_GT(a->cumulative_regret, b->cumulative_regret) << "seed=" << seed;
  }
}

TEST(RegretTest, RegretZeroWhenEveryModelIsOptimalFromStart) {
  // Single-model environment: the only model is optimal, so after each
  // user's first (and only) run the regret contribution is zero for served
  // users; total regret counts only the not-yet-served tail.
  data::Dataset ds;
  ds.name = "one-model";
  ds.user_names = {"u0"};
  ds.model_names = {"m0"};
  ds.quality = *linalg::Matrix::FromRowMajor(1, 1, {0.8});
  ds.cost = *linalg::Matrix::FromRowMajor(1, 1, {2.0});
  auto env = Environment::Create(std::move(ds));
  ASSERT_TRUE(env.ok());
  auto users = MakeGpUsers(*env);
  scheduler::RoundRobinScheduler rr;
  SimulationOptions opts;
  opts.budget_fraction = 1.0;
  auto result = RunSimulation(*env, users, rr, opts);
  ASSERT_TRUE(result.ok());
  // One step; after it the user holds the optimal model: regret 0.
  EXPECT_EQ(result->steps, 1);
  EXPECT_NEAR(result->cumulative_regret, 0.0, 1e-12);
  EXPECT_NEAR(result->easeml_regret, 0.0, 1e-12);
}

}  // namespace
}  // namespace easeml::sim

namespace easeml::sim {
namespace {

/// Direct reproduction of the worked example in Section 4.1: two users,
/// three models each with qualities {90, 95, 100} and {70, 95, 100} (in
/// percent), unit costs. Serving U1 twice (FCFS) accumulates regret 215;
/// alternating U1 then U2 accumulates 150.
TEST(RegretTest, PaperSection41WorkedExample) {
  auto make_env = [] {
    data::Dataset ds;
    ds.name = "sec4.1";
    ds.user_names = {"U1", "U2"};
    ds.model_names = {"M1", "M2", "M3"};
    ds.quality = *linalg::Matrix::FromRowMajor(2, 3,
                                               {0.90, 0.95, 1.00,   //
                                                0.70, 0.95, 1.00});
    ds.cost = linalg::Matrix(2, 3, 1.0);
    auto env = Environment::Create(std::move(ds));
    EXPECT_TRUE(env.ok());
    return std::move(env).value();
  };
  auto make_users = [] {
    std::vector<scheduler::UserState> users;
    for (int i = 0; i < 2; ++i) {
      // Fixed order M1 -> M2 -> M3 to mirror the example's exploration.
      auto policy = bandit::FixedOrderPolicy::Create({0, 1, 2}, "fixed");
      EXPECT_TRUE(policy.ok());
      auto state = scheduler::UserState::Create(
          i,
          std::make_unique<bandit::FixedOrderPolicy>(
              std::move(policy).value()),
          {1.0, 1.0, 1.0});
      EXPECT_TRUE(state.ok());
      users.push_back(std::move(state).value());
    }
    return users;
  };

  SimulationOptions opts;
  opts.budget_fraction = 2.0 / 6.0;  // exactly two rounds
  opts.initial_sweep = false;

  // FCFS: both rounds go to U1.
  {
    auto env = make_env();
    auto users = make_users();
    scheduler::FcfsScheduler fcfs;
    auto result = RunSimulation(env, users, fcfs, opts);
    ASSERT_TRUE(result.ok());
    ASSERT_EQ(result->steps, 2);
    // Round 1: (100-90) + (100-0) = 110; round 2: (100-95) + 100 = 105.
    EXPECT_NEAR(result->cumulative_regret, 2.15, 1e-12);
  }
  // Alternating: U1 then U2.
  {
    auto env = make_env();
    auto users = make_users();
    scheduler::RoundRobinScheduler rr;
    auto result = RunSimulation(env, users, rr, opts);
    ASSERT_TRUE(result.ok());
    ASSERT_EQ(result->steps, 2);
    // Round 1: 110; round 2: (100-90) + (100-70) = 40. Total 150.
    EXPECT_NEAR(result->cumulative_regret, 1.50, 1e-12);
  }
}

}  // namespace
}  // namespace easeml::sim
