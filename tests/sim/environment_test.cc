#include "sim/environment.h"

#include <gtest/gtest.h>

namespace easeml::sim {
namespace {

data::Dataset ToyDataset() {
  data::Dataset ds;
  ds.name = "toy";
  ds.user_names = {"u0", "u1"};
  ds.model_names = {"m0", "m1"};
  ds.quality = *linalg::Matrix::FromRowMajor(2, 2, {0.5, 0.9, 0.7, 0.3});
  ds.cost = *linalg::Matrix::FromRowMajor(2, 2, {1.0, 4.0, 2.0, 2.0});
  return ds;
}

TEST(EnvironmentTest, CreateValidatesDataset) {
  data::Dataset bad = ToyDataset();
  bad.quality(0, 0) = 2.0;
  EXPECT_FALSE(Environment::Create(bad).ok());
  EXPECT_FALSE(Environment::Create(ToyDataset(), -0.1).ok());
  EXPECT_TRUE(Environment::Create(ToyDataset()).ok());
}

TEST(EnvironmentTest, DeterministicRewardWithoutNoise) {
  auto env = Environment::Create(ToyDataset());
  ASSERT_TRUE(env.ok());
  for (int trial = 0; trial < 5; ++trial) {
    EXPECT_DOUBLE_EQ(env->Reward(0, 1), 0.9);
    EXPECT_DOUBLE_EQ(env->Reward(1, 0), 0.7);
  }
  EXPECT_DOUBLE_EQ(env->TrueQuality(0, 0), 0.5);
}

TEST(EnvironmentTest, NoisyRewardsClippedAndCentered) {
  auto env = Environment::Create(ToyDataset(), 0.05, 3);
  ASSERT_TRUE(env.ok());
  double sum = 0.0;
  const int n = 5000;
  for (int i = 0; i < n; ++i) {
    const double r = env->Reward(0, 1);
    EXPECT_GE(r, 0.0);
    EXPECT_LE(r, 1.0);
    sum += r;
  }
  EXPECT_NEAR(sum / n, 0.9, 0.01);
}

TEST(EnvironmentTest, CostAccessors) {
  auto env = Environment::Create(ToyDataset());
  ASSERT_TRUE(env.ok());
  EXPECT_DOUBLE_EQ(env->Cost(0, 1), 4.0);
  EXPECT_EQ(env->CostsForUser(1), (std::vector<double>{2.0, 2.0}));
  EXPECT_DOUBLE_EQ(env->TotalCost(), 9.0);
}

TEST(EnvironmentTest, BestQuality) {
  auto env = Environment::Create(ToyDataset());
  ASSERT_TRUE(env.ok());
  EXPECT_DOUBLE_EQ(env->BestQuality(0), 0.9);
  EXPECT_DOUBLE_EQ(env->BestQuality(1), 0.7);
}

}  // namespace
}  // namespace easeml::sim
