/// End-to-end "shape" tests: the qualitative findings of the paper's
/// evaluation section must hold on the surrogate workloads. These are the
/// claims the benchmark harness quantifies; here we assert their direction
/// with enough repetitions to be robust.
#include <gtest/gtest.h>

#include "core/experiment_runner.h"
#include "data/deeplearning.h"
#include "data/synthetic_generator.h"
#include "sim/metrics.h"

namespace easeml::core {
namespace {

data::Dataset Syn(double sigma_m, double alpha, uint64_t seed = 5) {
  data::SimpleSynOptions opts;
  opts.num_users = 40;
  opts.num_models = 16;
  opts.sigma_m = sigma_m;
  opts.alpha = alpha;
  opts.seed = seed;
  auto ds = data::GenerateSimpleSyn(opts);
  EXPECT_TRUE(ds.ok());
  return std::move(ds).value();
}

ProtocolOptions BaseOptions(int reps = 10) {
  ProtocolOptions opts;
  opts.num_test_users = 8;
  opts.num_reps = reps;
  opts.budget_fraction = 0.5;
  opts.tune_hyperparameters = false;
  opts.grid_points = 41;
  opts.seed = 17;
  return opts;
}

double Auc(const StrategyResult& r) {
  return sim::AreaUnderCurve(r.curves.grid, r.curves.mean);
}

TEST(IntegrationTest, FcfsIsPathologicallyBad) {
  // Section 4.1: FCFS incurs regret of order T. With half the budget it
  // leaves a fraction of the users entirely unserved.
  const data::Dataset ds = Syn(0.5, 0.5);
  auto fcfs = RunProtocol(ds, StrategyKind::kFcfs, BaseOptions());
  auto rr = RunProtocol(ds, StrategyKind::kRoundRobin, BaseOptions());
  ASSERT_TRUE(fcfs.ok());
  ASSERT_TRUE(rr.ok());
  EXPECT_GT(Auc(*fcfs), 2.0 * Auc(*rr));
}

TEST(IntegrationTest, EaseMlNoWorseThanRandomScheduling) {
  // Figure 10: the ease.ml scheduler dominates RANDOM user picking.
  const data::Dataset ds = Syn(0.5, 0.5);
  auto easeml = RunProtocol(ds, StrategyKind::kEaseMl, BaseOptions());
  auto random = RunProtocol(ds, StrategyKind::kRandom, BaseOptions());
  ASSERT_TRUE(easeml.ok());
  ASSERT_TRUE(random.ok());
  EXPECT_LE(Auc(*easeml), Auc(*random) * 1.05);
}

TEST(IntegrationTest, RoundRobinBeatsFcfsOnWorstCaseToo) {
  const data::Dataset ds = Syn(0.5, 0.5);
  auto fcfs = RunProtocol(ds, StrategyKind::kFcfs, BaseOptions());
  auto rr = RunProtocol(ds, StrategyKind::kRoundRobin, BaseOptions());
  ASSERT_TRUE(fcfs.ok());
  ASSERT_TRUE(rr.ok());
  EXPECT_GT(sim::AreaUnderCurve(fcfs->curves.grid, fcfs->curves.worst),
            sim::AreaUnderCurve(rr->curves.grid, rr->curves.worst));
}

TEST(IntegrationTest, CostAwarenessHelpsOnHeterogeneousCosts) {
  // Figure 13: disabling the cost-aware index on DEEPLEARNING (real
  // heterogeneous costs) hurts end-to-end performance.
  auto ds = data::GenerateDeepLearning(data::DeepLearningOptions());
  ASSERT_TRUE(ds.ok());
  ProtocolOptions opts = BaseOptions(/*reps=*/20);
  opts.num_test_users = 8;
  opts.cost_aware_budget = true;
  opts.budget_fraction = 0.3;
  opts.cost_aware_policy = true;
  auto aware = RunProtocol(*ds, StrategyKind::kEaseMl, opts);
  opts.cost_aware_policy = false;
  auto oblivious = RunProtocol(*ds, StrategyKind::kEaseMl, opts);
  ASSERT_TRUE(aware.ok());
  ASSERT_TRUE(oblivious.ok());
  EXPECT_LT(Auc(*aware), Auc(*oblivious));
}

TEST(IntegrationTest, EaseMlBeatsUserHeuristicsEndToEnd) {
  // Figure 9: ease.ml vs MOSTCITED / MOSTRECENT on DEEPLEARNING with a
  // cost budget.
  auto ds = data::GenerateDeepLearning(data::DeepLearningOptions());
  ASSERT_TRUE(ds.ok());
  ProtocolOptions opts = BaseOptions(/*reps=*/20);
  opts.cost_aware_budget = true;
  opts.cost_aware_policy = true;
  opts.budget_fraction = 0.3;
  auto easeml = RunProtocol(*ds, StrategyKind::kEaseMl, opts);
  auto cited = RunProtocol(*ds, StrategyKind::kMostCited, opts);
  auto recent = RunProtocol(*ds, StrategyKind::kMostRecent, opts);
  ASSERT_TRUE(easeml.ok());
  ASSERT_TRUE(cited.ok());
  ASSERT_TRUE(recent.ok());
  EXPECT_LT(Auc(*easeml), Auc(*cited));
  EXPECT_LT(Auc(*easeml), Auc(*recent));
}

TEST(IntegrationTest, StrongerModelCorrelationHelps) {
  // Figure 12: with a fixed amount of model-irrelevant variation, stronger
  // correlation makes the GP estimator more useful.
  ProtocolOptions opts = BaseOptions();
  auto weak = RunProtocol(Syn(0.01, 1.0), StrategyKind::kEaseMl, opts);
  auto strong = RunProtocol(Syn(0.5, 1.0), StrategyKind::kEaseMl, opts);
  ASSERT_TRUE(weak.ok());
  ASSERT_TRUE(strong.ok());
  // Compare normalized by the dataset's own difficulty: loss should decay
  // faster relative to its initial value under strong correlation.
  const double weak_ratio = weak->curves.mean.back() /
                            (weak->curves.mean.front() + 1e-9);
  const double strong_ratio = strong->curves.mean.back() /
                              (strong->curves.mean.front() + 1e-9);
  EXPECT_LE(strong_ratio, weak_ratio + 0.05);
}

TEST(IntegrationTest, MoreKernelTrainingDataHelps) {
  // Figure 14: more training logs -> better prior -> no worse performance.
  auto ds = data::GenerateDeepLearning(data::DeepLearningOptions());
  ASSERT_TRUE(ds.ok());
  ProtocolOptions opts = BaseOptions(/*reps=*/20);
  opts.cost_aware_budget = true;
  opts.cost_aware_policy = true;
  opts.budget_fraction = 0.3;
  opts.kernel_train_fraction = 0.1;
  auto small = RunProtocol(*ds, StrategyKind::kEaseMl, opts);
  opts.kernel_train_fraction = 1.0;
  auto full = RunProtocol(*ds, StrategyKind::kEaseMl, opts);
  ASSERT_TRUE(small.ok());
  ASSERT_TRUE(full.ok());
  EXPECT_LE(Auc(*full), Auc(*small) + 0.01);
}

TEST(IntegrationTest, AllGpStrategiesAreRegretFree) {
  // The regret-free property (R_T / T -> 0): with the full budget every
  // GP-driven strategy finds every user's best model.
  const data::Dataset ds = Syn(0.5, 0.5);
  ProtocolOptions opts = BaseOptions(/*reps=*/5);
  opts.budget_fraction = 1.0;
  for (StrategyKind kind :
       {StrategyKind::kEaseMl, StrategyKind::kGreedy,
        StrategyKind::kRoundRobin, StrategyKind::kRandom}) {
    auto result = RunProtocol(ds, kind, opts);
    ASSERT_TRUE(result.ok()) << StrategyName(kind);
    EXPECT_NEAR(result->curves.worst.back(), 0.0, 1e-9)
        << StrategyName(kind);
  }
}

}  // namespace
}  // namespace easeml::core
