/// Determinism regression for the async selection pipeline (PR 3).
///
/// With D=1 the async path must reproduce the seed sequential path
/// bit-identically. The golden constants below were dumped from the seed
/// tree (single pending slot, before the in-flight table existed) on the
/// fig09-flavored workload: DEEPLEARNING surrogate, HYBRID scheduling,
/// cost-aware GP-UCB, default shared prior, 6 test users x 8 models, full
/// campaign. Any drift in the assignment sequence or the
/// BestModel/BestAccuracy trajectory is a behavioral regression of the
/// selector refactor.
#include <gtest/gtest.h>

#include <iterator>
#include <utility>
#include <vector>

#include "core/multi_tenant_selector.h"
#include "data/deeplearning.h"

namespace easeml::core {
namespace {

constexpr int kUsers = 6;
constexpr int kModels = 8;

/// (tenant, model) hand-out order of the seed sequential selector.
constexpr std::pair<int, int> kGoldenAssignments[] = {
    {0, 7}, {1, 7}, {2, 7}, {3, 7}, {4, 7}, {5, 7}, {2, 0}, {5, 0}, {5, 3},
    {5, 4}, {2, 3}, {2, 4}, {5, 5}, {5, 1}, {2, 5}, {0, 3}, {0, 4}, {0, 0},
    {3, 3}, {1, 3}, {2, 1}, {4, 4}, {3, 0}, {3, 5}, {0, 1}, {5, 2}, {3, 4},
    {1, 0}, {0, 5}, {1, 4}, {2, 2}, {1, 5}, {4, 3}, {4, 0}, {4, 5}, {3, 1},
    {1, 1}, {2, 6}, {0, 6}, {5, 6}, {4, 1}, {0, 2}, {3, 6}, {3, 2}, {1, 6},
    {4, 2}, {1, 2}, {4, 6}};

/// BestAccuracy(served tenant) after each report, all 17 printed digits.
constexpr double kGoldenBestAccTrajectory[] = {
    0.49510283106872049, 0.77384353767188596, 0.69836735739158085,
    0.54073766089912378, 0.6311940988580208,  0.90352382147831722,
    0.69836735739158085, 1,                   1,
    1,                   0.69836735739158085, 0.69921794457743369,
    1,                   1,                   0.77862534376324755,
    0.49510283106872049, 0.49510283106872049, 0.54867430026161756,
    0.54073766089912378, 0.77384353767188596, 0.77862534376324755,
    0.74256407735557273, 0.54073766089912378, 0.6065083548620942,
    0.6128416878493147,  1,                   0.6065083548620942,
    0.77384353767188596, 0.6128416878493147,  0.77384353767188596,
    0.77862534376324755, 0.77384353767188596, 0.74256407735557273,
    0.74256407735557273, 0.74256407735557273, 0.67451810850559413,
    0.77384353767188596, 0.77862534376324755, 0.6128416878493147,
    1,                   0.74256407735557273, 0.6128416878493147,
    0.67451810850559413, 0.67451810850559413, 0.77384353767188596,
    0.74266818661280787, 0.77384353767188596, 0.74266818661280787};

constexpr int kGoldenBestModel[kUsers] = {1, 7, 5, 1, 2, 0};
constexpr double kGoldenBestAcc[kUsers] = {
    0.6128416878493147,  0.77384353767188596, 0.77862534376324755,
    0.67451810850559413, 0.74266818661280787, 1};

MultiTenantSelector MakeFig09Selector(const data::Dataset& ds) {
  SelectorOptions opts;
  opts.scheduler = SchedulerKind::kHybrid;
  opts.cost_aware = true;
  opts.num_devices = 1;
  auto s = MultiTenantSelector::Create(opts);
  EXPECT_TRUE(s.ok());
  MultiTenantSelector selector = std::move(s).value();
  for (int u = 0; u < kUsers; ++u) {
    std::vector<double> costs(kModels);
    for (int m = 0; m < kModels; ++m) costs[m] = ds.cost(u, m);
    EXPECT_TRUE(selector.AddTenantWithDefaultPrior(kModels, costs).ok());
  }
  return selector;
}

/// Drives the campaign through the in-flight API: Next, then Report with
/// the full issued assignment (ticket included), in completion order —
/// with D=1 that IS the sequential order.
void CheckGoldenTrace(MultiTenantSelector& selector,
                      const data::Dataset& ds) {
  const int total = kUsers * kModels;
  ASSERT_EQ(static_cast<int>(std::size(kGoldenAssignments)), total);
  ASSERT_EQ(static_cast<int>(std::size(kGoldenBestAccTrajectory)), total);
  int step = 0;
  while (!selector.Exhausted()) {
    ASSERT_LT(step, total);
    auto a = selector.Next();
    ASSERT_TRUE(a.ok()) << a.status().ToString();
    EXPECT_EQ(a->tenant, kGoldenAssignments[step].first) << "step " << step;
    EXPECT_EQ(a->model, kGoldenAssignments[step].second) << "step " << step;
    EXPECT_EQ(a->id, step);  // tickets issue densely from 0
    ASSERT_TRUE(
        selector.Report(*a, ds.quality(a->tenant, a->model)).ok());
    auto best = selector.BestAccuracy(a->tenant);
    ASSERT_TRUE(best.ok());
    // Bit-identical to the seed trajectory: == on doubles, no tolerance.
    EXPECT_EQ(*best, kGoldenBestAccTrajectory[step]) << "step " << step;
    ++step;
  }
  EXPECT_EQ(step, total);
  for (int u = 0; u < kUsers; ++u) {
    auto best_model = selector.BestModel(u);
    auto best_acc = selector.BestAccuracy(u);
    ASSERT_TRUE(best_model.ok());
    ASSERT_TRUE(best_acc.ok());
    EXPECT_EQ(*best_model, kGoldenBestModel[u]);
    EXPECT_EQ(*best_acc, kGoldenBestAcc[u]);
  }
}

TEST(AsyncDeterminismTest, SingleDeviceReproducesSeedSequentialTrace) {
  auto ds = data::GenerateDeepLearning(data::DeepLearningOptions());
  ASSERT_TRUE(ds.ok());
  MultiTenantSelector selector = MakeFig09Selector(*ds);
  CheckGoldenTrace(selector, *ds);
}

TEST(AsyncDeterminismTest, GoldenTraceIsStableAcrossRepeatedRuns) {
  // The selector owns no hidden global state: a second campaign from a
  // fresh selector must replay the identical trace.
  auto ds = data::GenerateDeepLearning(data::DeepLearningOptions());
  ASSERT_TRUE(ds.ok());
  for (int rep = 0; rep < 2; ++rep) {
    MultiTenantSelector selector = MakeFig09Selector(*ds);
    CheckGoldenTrace(selector, *ds);
    if (::testing::Test::HasFatalFailure()) return;
  }
}

}  // namespace
}  // namespace easeml::core
