/// TSan-raced snapshot-consistency battery: scanner threads walk
/// `SnapshotPlane::Snapshot()` continuously while client threads drive
/// Next/Report/Cancel and a churn thread adds and removes tenants, at
/// N in {1, 2, 4, 7} shards. Every observed block must be internally
/// consistent no matter when the scan lands:
///   - per-shard epochs never move backwards between scans,
///   - aggregates equal an exact integer recount of the block's entries,
///   - tenant ids ascend and each entry carries its own id,
/// and after the fleet quiesces, a flushed snapshot agrees with the
/// engine's accessors. tier1.sh's tsan preset runs this file under
/// ThreadSanitizer — the racy half of the plane's correctness argument.
#include <gtest/gtest.h>

#include <atomic>
#include <memory>
#include <thread>
#include <vector>

#include "common/rng.h"
#include "core/multi_tenant_selector.h"
#include "obs/fleet_observer.h"
#include "obs/metrics.h"
#include "obs/snapshot.h"
#include "shard/sharded_selector.h"

namespace easeml::obs {
namespace {

using core::MultiTenantSelector;
using core::TenantObservation;
using Assignment = MultiTenantSelector::Assignment;

ShardAggregates Recount(const ShardBlock& block) {
  ShardAggregates agg;
  for (int pos = 0; pos < block.size(); ++pos) {
    const TenantObservation& o = block.at(pos);
    agg.tenants += 1;
    agg.retired += o.retired ? 1 : 0;
    agg.schedulable += o.schedulable ? 1 : 0;
    agg.uninitialized += o.uninitialized ? 1 : 0;
    agg.in_flight += o.in_flight;
    agg.rounds += o.rounds_served;
  }
  return agg;
}

/// One full-fleet scan with every internal-consistency check applied;
/// returns false (and records a gtest failure) on the first violation so
/// the battery aborts instead of flooding the log.
bool CheckedScan(const SnapshotPlane& plane,
                 std::vector<uint64_t>* last_epochs) {
  const FleetSnapshot snap = plane.Snapshot();
  if (snap.shards.size() != last_epochs->size()) {
    ADD_FAILURE() << "snapshot shard count changed";
    return false;
  }
  for (size_t s = 0; s < snap.shards.size(); ++s) {
    const ShardBlock* block = snap.shards[s].get();
    if (block == nullptr) {
      ADD_FAILURE() << "null block for shard " << s;
      return false;
    }
    if (block->epoch < (*last_epochs)[s]) {
      ADD_FAILURE() << "shard " << s << " epoch moved backwards: "
                    << (*last_epochs)[s] << " -> " << block->epoch;
      return false;
    }
    (*last_epochs)[s] = block->epoch;
    if (!(block->agg == Recount(*block))) {
      ADD_FAILURE() << "shard " << s << " aggregates disagree with a "
                    << "recount of the published entries at epoch "
                    << block->epoch;
      return false;
    }
    const std::vector<int>& ids = *block->ids;
    for (size_t i = 0; i < ids.size(); ++i) {
      if (i > 0 && ids[i - 1] >= ids[i]) {
        ADD_FAILURE() << "shard " << s << " ids not ascending";
        return false;
      }
      if (block->at(static_cast<int>(i)).tenant != ids[i]) {
        ADD_FAILURE() << "shard " << s << " entry " << i
                      << " carries tenant "
                      << block->at(static_cast<int>(i)).tenant
                      << ", ids say " << ids[i];
        return false;
      }
    }
  }
  return true;
}

void RunRacedScanBattery(int num_shards) {
  constexpr int kInitialTenants = 24;
  constexpr int kModels = 5;
  constexpr int kClientThreads = 2;
  constexpr int kScannerThreads = 2;
  constexpr int kOpsPerClient = 300;

  core::SelectorOptions options;
  options.scheduler = core::SchedulerKind::kGreedy;
  options.num_devices = 6;
  options.num_shards = num_shards;
  options.use_candidate_index = true;

  Registry registry;
  FleetObserverOptions obs_options;
  obs_options.num_shards = num_shards;
  obs_options.publish_interval = 3;  // publish often: more racing windows
  obs_options.registry = &registry;
  FleetObserver observer(obs_options);
  options.observer = &observer;
  // Build the sharded engine directly (not via MakeSelector, which returns
  // the base engine at N=1): its API is internally synchronized, so the
  // client/churn threads below may race it. The base engine's contract is
  // external synchronization — racing it would be a test bug, not a
  // finding.
  auto created = shard::ShardedMultiTenantSelector::Create(options);
  ASSERT_TRUE(created.ok()) << created.status().ToString();
  MultiTenantSelector* selector = created->get();
  const SnapshotPlane& plane = observer.plane();
  for (int t = 0; t < kInitialTenants; ++t) {
    ASSERT_TRUE(selector
                    ->AddTenantWithDefaultPrior(
                        kModels, std::vector<double>(kModels, 1.0))
                    .ok());
  }

  std::atomic<bool> stop{false};
  std::atomic<bool> failed{false};
  std::atomic<int64_t> scans{0};

  auto scanner = [&] {
    std::vector<uint64_t> last_epochs(
        static_cast<size_t>(plane.num_shards()), 0);
    while (!stop.load(std::memory_order_relaxed)) {
      if (!CheckedScan(plane, &last_epochs)) {
        failed = true;
        return;
      }
      scans.fetch_add(1, std::memory_order_relaxed);
      std::this_thread::yield();  // be fair on the one-core container
    }
  };

  auto client = [&](int thread_id) {
    Rng rng(500 + static_cast<uint64_t>(thread_id));
    std::vector<Assignment> mine;
    for (int op = 0; op < kOpsPerClient && !failed.load(); ++op) {
      const int dice = rng.UniformInt(0, 9);
      if (mine.empty() || dice < 5) {
        auto a = selector->Next();
        if (a.ok()) {
          mine.push_back(*a);
        } else if (a.status().code() != StatusCode::kFailedPrecondition) {
          ADD_FAILURE() << "Next: " << a.status().ToString();
          failed = true;
        }
      } else {
        const int pick = rng.UniformInt(0, static_cast<int>(mine.size()) - 1);
        const Assignment a = mine[pick];
        mine.erase(mine.begin() + pick);
        const Status st = dice == 9
                              ? selector->Cancel(a)
                              : selector->Report(a, 0.1 + 0.8 * rng.Uniform());
        if (!st.ok()) {
          ADD_FAILURE() << (dice == 9 ? "Cancel: " : "Report: ")
                        << st.ToString();
          failed = true;
        }
      }
    }
    for (const Assignment& a : mine) selector->Cancel(a);
  };

  std::atomic<bool> stop_churn{false};
  auto churn = [&] {
    Rng rng(77);
    int added = 0;
    while (!stop_churn.load()) {
      const Status st =
          selector->RemoveTenant(rng.UniformInt(0, selector->num_tenants() - 1));
      if (!st.ok() && st.code() != StatusCode::kFailedPrecondition &&
          st.code() != StatusCode::kOutOfRange) {
        ADD_FAILURE() << "RemoveTenant: " << st.ToString();
        failed = true;
      }
      if (added < 6 && rng.UniformInt(0, 2) == 0) {
        auto id = selector->AddTenantWithDefaultPrior(
            kModels, std::vector<double>(kModels, 1.0));
        if (id.ok()) {
          ++added;
        } else {
          ADD_FAILURE() << "AddTenant: " << id.status().ToString();
          failed = true;
        }
      }
      std::this_thread::yield();
    }
  };

  std::vector<std::thread> threads;
  for (int s = 0; s < kScannerThreads; ++s) threads.emplace_back(scanner);
  threads.emplace_back(churn);
  for (int c = 0; c < kClientThreads; ++c) threads.emplace_back(client, c);
  for (size_t i = threads.size() - kClientThreads; i < threads.size(); ++i) {
    threads[i].join();
  }
  stop_churn = true;
  threads[kScannerThreads].join();  // churn
  stop = true;
  for (int s = 0; s < kScannerThreads; ++s) threads[static_cast<size_t>(s)].join();

  EXPECT_FALSE(failed.load());
  EXPECT_GT(scans.load(), 0);
  EXPECT_EQ(selector->num_in_flight(), 0);

  // Quiesced epilogue: flush, then the published world must match the
  // engine's — the raced scans above plus this anchor give the snapshot
  // plane's full correctness story.
  // ValidateIndex takes the selector lock and drains the fold queues, so
  // after it returns no shard worker can still be applying events — the
  // quiesced precondition FlushAll requires.
  ASSERT_TRUE(selector->ValidateIndex().ok());
  observer.plane().FlushAll();
  const FleetSnapshot snap = plane.Snapshot();
  const ShardAggregates totals = snap.Totals();
  EXPECT_EQ(totals.in_flight, 0);
  snap.ForEachTenant([&](int shard, const TenantObservation& o) {
    (void)shard;
    auto served = selector->RoundsServed(o.tenant);
    ASSERT_TRUE(served.ok()) << "tenant " << o.tenant;
    EXPECT_EQ(o.rounds_served, *served) << "tenant " << o.tenant;
  });
}

TEST(SnapshotStressTest, RacedScansOneShard) { RunRacedScanBattery(1); }
TEST(SnapshotStressTest, RacedScansTwoShards) { RunRacedScanBattery(2); }
TEST(SnapshotStressTest, RacedScansFourShards) { RunRacedScanBattery(4); }
TEST(SnapshotStressTest, RacedScansSevenShards) { RunRacedScanBattery(7); }

}  // namespace
}  // namespace easeml::obs
