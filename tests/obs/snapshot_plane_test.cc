/// Property tests for the snapshot plane: epoch monotonicity, COW chunk
/// sharing across publishes, integer-aggregate == recount equality, and —
/// the headline invariant — a quiesced published snapshot agrees exactly
/// with the engine's own accessors and a `ValidateIndex()` read at the
/// same epoch.
#include "obs/snapshot.h"

#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "common/rng.h"
#include "obs/fleet_observer.h"
#include "obs/metrics.h"

namespace easeml::obs {
namespace {

using core::TenantObservation;

TenantObservation MakeObs(int tenant, int rounds, bool schedulable) {
  TenantObservation o;
  o.tenant = tenant;
  o.schedulable = schedulable;
  o.rounds_served = rounds;
  o.best_reward = 0.5;
  return o;
}

/// Recomputes a block's aggregates from its published entries; the plane's
/// running integer diffs must match this exactly (never approximately —
/// that is why `ShardAggregates` holds no double).
ShardAggregates Recount(const ShardBlock& block) {
  ShardAggregates agg;
  for (int pos = 0; pos < block.size(); ++pos) {
    const TenantObservation& o = block.at(pos);
    agg.tenants += 1;
    agg.retired += o.retired ? 1 : 0;
    agg.schedulable += o.schedulable ? 1 : 0;
    agg.uninitialized += o.uninitialized ? 1 : 0;
    agg.in_flight += o.in_flight;
    agg.rounds += o.rounds_served;
  }
  return agg;
}

TEST(SnapshotPlaneTest, SeedsAnEmptyBlockPerShard) {
  SnapshotPlane plane(/*num_shards=*/3);
  const FleetSnapshot snap = plane.Snapshot();
  ASSERT_EQ(snap.shards.size(), 3u);
  for (const auto& block : snap.shards) {
    ASSERT_NE(block, nullptr);
    EXPECT_EQ(block->epoch, 0u);
    EXPECT_EQ(block->size(), 0);
  }
  EXPECT_EQ(snap.epoch(), 0u);
}

TEST(SnapshotPlaneTest, PublishesAfterIntervalAndOnFlush) {
  SnapshotPlane plane(/*num_shards=*/1, /*publish_interval=*/4);
  for (int t = 0; t < 2; ++t) plane.Place(t, 0);
  // Two placement events are below the interval and Place never publishes
  // on its own: readers still see the seed block.
  EXPECT_EQ(plane.Snapshot().epoch(), 0u);
  plane.Apply(MakeObs(0, 1, true));
  plane.Apply(MakeObs(1, 1, true));  // 4th event >= interval -> publish
  const FleetSnapshot snap = plane.Snapshot();
  EXPECT_EQ(snap.epoch(), 4u);
  EXPECT_EQ(snap.shards[0]->size(), 2);
  EXPECT_EQ(snap.shards[0]->at(0).rounds_served, 1);
  // One more event sits unpublished until FlushAll.
  plane.Apply(MakeObs(0, 2, true));
  EXPECT_EQ(plane.Snapshot().epoch(), 4u);
  plane.FlushAll();
  const FleetSnapshot flushed = plane.Snapshot();
  EXPECT_EQ(flushed.epoch(), 5u);
  EXPECT_EQ(flushed.shards[0]->at(0).rounds_served, 2);
}

TEST(SnapshotPlaneTest, EpochsAreMonotonePerShardAndFleetwide) {
  SnapshotPlane plane(/*num_shards=*/2, /*publish_interval=*/1);
  for (int t = 0; t < 8; ++t) plane.Place(t, t % 2);
  uint64_t last_fleet = 0;
  std::vector<uint64_t> last_shard(2, 0);
  Rng rng(7);
  for (int i = 0; i < 200; ++i) {
    plane.Apply(MakeObs(rng.UniformInt(0, 7), i, true));
    const FleetSnapshot snap = plane.Snapshot();
    EXPECT_GE(snap.epoch(), last_fleet);
    last_fleet = snap.epoch();
    for (int s = 0; s < 2; ++s) {
      EXPECT_GE(snap.shards[s]->epoch, last_shard[s]);
      last_shard[s] = snap.shards[s]->epoch;
    }
  }
}

TEST(SnapshotPlaneTest, CowSharesCleanChunksAcrossPublishes) {
  // 128 tenants on one shard = exactly two kChunk=64 chunks.
  ASSERT_EQ(kChunk, 64);
  SnapshotPlane plane(/*num_shards=*/1, /*publish_interval=*/1);
  for (int t = 0; t < 128; ++t) plane.Place(t, 0);
  plane.Apply(MakeObs(3, 1, true));
  plane.FlushAll();
  const FleetSnapshot before = plane.Snapshot();
  ASSERT_EQ(before.shards[0]->chunks.size(), 2u);

  // Dirty only chunk 0: the republished block must share chunk 1's storage
  // (same shared_ptr) and the id vector with its predecessor.
  plane.Apply(MakeObs(5, 2, true));
  plane.FlushAll();
  const FleetSnapshot after = plane.Snapshot();
  EXPECT_NE(after.shards[0], before.shards[0]);
  EXPECT_EQ(after.shards[0]->ids, before.shards[0]->ids);
  EXPECT_NE(after.shards[0]->chunks[0], before.shards[0]->chunks[0]);
  EXPECT_EQ(after.shards[0]->chunks[1], before.shards[0]->chunks[1]);
  EXPECT_EQ(after.shards[0]->at(5).rounds_served, 2);
  // The predecessor block is immutable: the old snapshot still reads the
  // pre-update value.
  EXPECT_EQ(before.shards[0]->at(5).rounds_served, 0);
}

TEST(SnapshotPlaneTest, AggregatesEqualRecountUnderRandomApplies) {
  SnapshotPlane plane(/*num_shards=*/3, /*publish_interval=*/5);
  for (int t = 0; t < 100; ++t) plane.Place(t, t % 3);
  Rng rng(42);
  for (int i = 0; i < 500; ++i) {
    const int tenant = rng.UniformInt(0, 99);
    TenantObservation o = MakeObs(tenant, rng.UniformInt(0, 20),
                                  rng.UniformInt(0, 1) == 1);
    o.retired = rng.UniformInt(0, 9) == 0;
    o.uninitialized = rng.UniformInt(0, 9) == 0;
    o.in_flight = rng.UniformInt(0, 3);
    plane.Apply(o);
  }
  plane.FlushAll();
  const FleetSnapshot snap = plane.Snapshot();
  for (int s = 0; s < 3; ++s) {
    const ShardBlock& block = *snap.shards[s];
    EXPECT_TRUE(block.agg == Recount(block)) << "shard " << s;
    const std::vector<int>& ids = *block.ids;
    for (size_t i = 1; i < ids.size(); ++i) EXPECT_LT(ids[i - 1], ids[i]);
    for (int pos = 0; pos < block.size(); ++pos) {
      EXPECT_EQ(block.at(pos).tenant, ids[static_cast<size_t>(pos)]);
    }
  }
}

TEST(SnapshotPlaneTest, SetPlacementRepublishesImmediately) {
  SnapshotPlane plane(/*num_shards=*/2, /*publish_interval=*/1000);
  for (int t = 0; t < 6; ++t) plane.Place(t, 0);
  for (int t = 0; t < 6; ++t) plane.Apply(MakeObs(t, t, true));
  // Rebalance 3 tenants onto shard 1; no FlushAll — SetPlacement itself
  // must publish so no reader ever sees the stale partition.
  plane.SetPlacement({{0, 2, 4}, {1, 3, 5}});
  const FleetSnapshot snap = plane.Snapshot();
  ASSERT_EQ(snap.shards[0]->size(), 3);
  ASSERT_EQ(snap.shards[1]->size(), 3);
  EXPECT_EQ(*snap.shards[0]->ids, (std::vector<int>{0, 2, 4}));
  EXPECT_EQ(*snap.shards[1]->ids, (std::vector<int>{1, 3, 5}));
  // Observations moved with their tenants, aggregates recounted.
  EXPECT_EQ(snap.shards[1]->at(1).rounds_served, 3);
  EXPECT_TRUE(snap.shards[0]->agg == Recount(*snap.shards[0]));
  EXPECT_TRUE(snap.shards[1]->agg == Recount(*snap.shards[1]));
}

/// The headline property: drive a real campaign through an observed engine,
/// quiesce, flush — the published snapshot must agree EXACTLY with the
/// engine's own accessors, and the candidate index must validate at the
/// same epoch.
void RunQuiescedConsistency(int num_shards) {
  core::SelectorOptions options;
  options.scheduler = core::SchedulerKind::kGreedy;
  options.num_devices = 3;
  options.num_shards = num_shards;
  options.use_candidate_index = true;

  Registry registry;
  FleetObserverOptions obs_options;
  obs_options.publish_interval = 7;  // deliberately off-cadence
  obs_options.registry = &registry;
  auto observed = MakeObservedSelector(options, obs_options);
  ASSERT_TRUE(observed.ok()) << observed.status().ToString();
  core::MultiTenantSelector* selector = observed->selector.get();

  constexpr int kTenants = 30;
  constexpr int kModels = 4;
  for (int t = 0; t < kTenants; ++t) {
    ASSERT_TRUE(selector
                    ->AddTenantWithDefaultPrior(
                        kModels, std::vector<double>(kModels, 1.0))
                    .ok());
  }
  Rng rng(11);
  for (int step = 0; step < 300 && selector->HasDispatchableWork(); ++step) {
    auto a = selector->Next();
    ASSERT_TRUE(a.ok()) << a.status().ToString();
    ASSERT_TRUE(selector->Report(*a, 0.1 + 0.8 * rng.Uniform()).ok());
  }

  // Quiesce: ValidateIndex locks the engine and drains the fold queues
  // (the sharded engine's folds outlive Report), then flush the plane and
  // compare world views.
  ASSERT_TRUE(selector->ValidateIndex().ok());
  observed->observer->plane().FlushAll();
  const FleetSnapshot snap = observed->observer->plane().Snapshot();
  ASSERT_EQ(static_cast<int>(snap.shards.size()),
            num_shards < 1 ? 1 : num_shards);

  const ShardAggregates totals = snap.Totals();
  EXPECT_EQ(totals.tenants, kTenants);
  EXPECT_EQ(totals.in_flight, selector->num_in_flight());
  int expected_rounds = 0;
  for (int t = 0; t < kTenants; ++t) {
    auto served = selector->RoundsServed(t);
    ASSERT_TRUE(served.ok());
    expected_rounds += *served;
  }
  EXPECT_EQ(totals.rounds, expected_rounds);

  int seen = 0;
  snap.ForEachTenant([&](int shard, const TenantObservation& o) {
    (void)shard;
    ++seen;
    auto served = selector->RoundsServed(o.tenant);
    ASSERT_TRUE(served.ok());
    EXPECT_EQ(o.rounds_served, *served) << "tenant " << o.tenant;
    auto best = selector->BestAccuracy(o.tenant);
    ASSERT_TRUE(best.ok());
    EXPECT_DOUBLE_EQ(o.best_reward, *best) << "tenant " << o.tenant;
    EXPECT_EQ(o.in_flight, 0) << "tenant " << o.tenant;
  });
  EXPECT_EQ(seen, kTenants);
  for (const auto& block : snap.shards) {
    EXPECT_TRUE(block->agg == Recount(*block));
  }
  // The flush published every event: another flush changes nothing.
  observed->observer->plane().FlushAll();
  EXPECT_EQ(observed->observer->plane().Snapshot().epoch(), snap.epoch());
  // Every snapshot apply showed up in the metrics layer too.
  EXPECT_GT(registry.GetCounter("easeml_tenant_events")->Value(), 0u);
}

TEST(SnapshotPlaneTest, QuiescedSnapshotMatchesEngineSequential) {
  RunQuiescedConsistency(/*num_shards=*/1);
}

TEST(SnapshotPlaneTest, QuiescedSnapshotMatchesEngineSharded) {
  RunQuiescedConsistency(/*num_shards=*/4);
}

}  // namespace
}  // namespace easeml::obs
