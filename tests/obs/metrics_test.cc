/// Unit tests for the hot-path instruments: counter/histogram recording
/// semantics, bucket placement on the compiled-in bounds ladder, registry
/// pointer stability, exporter formats, and a concurrent-recording smoke
/// (count/sum exactness under racing relaxed increments — the TSan leg
/// races this file too).
#include "obs/metrics.h"

#include <gtest/gtest.h>

#include <cmath>
#include <string>
#include <thread>
#include <vector>

namespace easeml::obs {
namespace {

TEST(CounterTest, IncrementAndValue) {
  Counter c;
  EXPECT_EQ(c.Value(), 0u);
  c.Increment();
  EXPECT_EQ(c.Value(), 1u);
  c.Increment(41);
  EXPECT_EQ(c.Value(), 42u);
}

TEST(HistogramTest, EmptyStats) {
  Histogram h;
  EXPECT_EQ(h.Count(), 0u);
  EXPECT_EQ(h.SumUs(), 0.0);
  EXPECT_EQ(h.MeanUs(), 0.0);
  EXPECT_EQ(h.QuantileUs(0.5), 0.0);
}

TEST(HistogramTest, BucketPlacementOnBoundsLadder) {
  Histogram h;
  h.Record(0.3);      // <= 0.5 -> bucket 0
  h.Record(0.5);      // == bound -> bucket 0 (bounds are inclusive tops)
  h.Record(0.7);      // <= 1.0 -> bucket 1
  h.Record(30000.0);  // <= 50000 -> bucket 15
  h.Record(1e9);      // above the top bound -> +inf bucket
  EXPECT_EQ(h.BucketCount(0), 2u);
  EXPECT_EQ(h.BucketCount(1), 1u);
  EXPECT_EQ(h.BucketCount(Histogram::kNumBounds - 1), 1u);
  EXPECT_EQ(h.BucketCount(Histogram::kNumBounds), 1u);  // +inf
  EXPECT_EQ(h.Count(), 5u);
}

TEST(HistogramTest, SumIsExactToNanosecondQuantization) {
  Histogram h;
  h.Record(1.0);
  h.Record(2.5);
  h.Record(0.125);  // 125ns exactly
  EXPECT_EQ(h.Count(), 3u);
  EXPECT_DOUBLE_EQ(h.SumUs(), 3.625);
  EXPECT_DOUBLE_EQ(h.MeanUs(), 3.625 / 3.0);
}

TEST(HistogramTest, NegativeAndNanSamplesClampToZero) {
  Histogram h;
  h.Record(-5.0);
  h.Record(std::nan(""));
  EXPECT_EQ(h.Count(), 2u);
  EXPECT_EQ(h.SumUs(), 0.0);
  EXPECT_EQ(h.BucketCount(0), 2u);
}

TEST(HistogramTest, QuantileInterpolatesInsideOwningBucket) {
  Histogram h;
  // 100 samples uniform in (1, 2]: all land in the (1, 2] bucket.
  for (int i = 1; i <= 100; ++i) h.Record(1.0 + i * 0.01);
  const double p50 = h.QuantileUs(0.5);
  EXPECT_GT(p50, 1.0);
  EXPECT_LE(p50, 2.0);
  // p0 pins to the bucket's lower edge, p100 to its upper bound.
  EXPECT_LE(h.QuantileUs(0.0), p50);
  EXPECT_LE(p50, h.QuantileUs(1.0));
}

TEST(RegistryTest, StablePointersPerName) {
  Registry r;
  Counter* a = r.GetCounter("easeml_next_total");
  Counter* b = r.GetCounter("easeml_next_total");
  Counter* c = r.GetCounter("easeml_report_total");
  EXPECT_EQ(a, b);
  EXPECT_NE(a, c);
  Histogram* h1 = r.GetHistogram("easeml_next_pick_us");
  Histogram* h2 = r.GetHistogram("easeml_next_pick_us");
  EXPECT_EQ(h1, h2);
}

TEST(RegistryTest, ExportTextFormat) {
  Registry r;
  r.GetCounter("easeml_b_counter")->Increment(7);
  r.GetCounter("easeml_a_counter")->Increment(3);
  r.GetHistogram("easeml_lat_us")->Record(1.5);
  const std::string text = r.ExportText();
  EXPECT_NE(text.find("easeml_a_counter 3\n"), std::string::npos);
  EXPECT_NE(text.find("easeml_b_counter 7\n"), std::string::npos);
  EXPECT_NE(text.find("easeml_lat_us_count 1\n"), std::string::npos);
  EXPECT_NE(text.find("easeml_lat_us_sum_us"), std::string::npos);
  EXPECT_NE(text.find("easeml_lat_us_mean_us"), std::string::npos);
  EXPECT_NE(text.find("easeml_lat_us_p50_us"), std::string::npos);
  EXPECT_NE(text.find("easeml_lat_us_p99_us"), std::string::npos);
  // std::map ordering: counters export sorted by name.
  EXPECT_LT(text.find("easeml_a_counter"), text.find("easeml_b_counter"));
}

TEST(RegistryTest, ExportJsonShape) {
  Registry r;
  r.GetCounter("easeml_x")->Increment();
  r.GetHistogram("easeml_y_us")->Record(2.0);
  const std::string json = r.ExportJson();
  EXPECT_EQ(json.find("{\"counters\":"), 0u);
  EXPECT_NE(json.find("\"easeml_x\":1"), std::string::npos);
  EXPECT_NE(json.find("\"histograms\":"), std::string::npos);
  EXPECT_NE(json.find("\"easeml_y_us\":{"), std::string::npos);
  EXPECT_NE(json.find("\"count\":1"), std::string::npos);
  EXPECT_NE(json.find("\"buckets\":["), std::string::npos);
  // Crude structural sanity: braces balance.
  int depth = 0;
  for (char ch : json) {
    if (ch == '{') ++depth;
    if (ch == '}') --depth;
    ASSERT_GE(depth, 0);
  }
  EXPECT_EQ(depth, 0);
}

TEST(RegistryTest, ConcurrentRecordingIsExact) {
  Registry r;
  Counter* counter = r.GetCounter("easeml_hits");
  Histogram* hist = r.GetHistogram("easeml_lat_us");
  constexpr int kThreads = 4;
  constexpr int kOps = 10000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&] {
      for (int i = 0; i < kOps; ++i) {
        counter->Increment();
        hist->Record(1.0);  // 1000ns exactly: the sum must close
      }
    });
  }
  // Concurrent scrapes must be safe (values racy, structure not).
  for (int i = 0; i < 10; ++i) {
    (void)r.ExportText();
    (void)r.ExportJson();
  }
  for (auto& th : threads) th.join();
  EXPECT_EQ(counter->Value(), static_cast<uint64_t>(kThreads) * kOps);
  EXPECT_EQ(hist->Count(), static_cast<uint64_t>(kThreads) * kOps);
  EXPECT_DOUBLE_EQ(hist->SumUs(), static_cast<double>(kThreads) * kOps);
}

}  // namespace
}  // namespace easeml::obs
