#include <gtest/gtest.h>

#include <algorithm>
#include <string>
#include <vector>

#include "common/statistics.h"
#include "data/classifier179.h"
#include "data/deeplearning.h"

namespace easeml::data {
namespace {

TEST(DeepLearningTest, MatchesPaperShape) {
  auto ds = GenerateDeepLearning(DeepLearningOptions());
  ASSERT_TRUE(ds.ok());
  EXPECT_EQ(ds->num_users(), 22);  // Figure 8: 22 users x 8 models
  EXPECT_EQ(ds->num_models(), 8);
  EXPECT_TRUE(ds->Validate().ok());
  EXPECT_EQ(ds->name, "DEEPLEARNING");
}

TEST(DeepLearningTest, CarriesAllEightArchitectures) {
  auto ds = GenerateDeepLearning(DeepLearningOptions());
  ASSERT_TRUE(ds.ok());
  const std::vector<std::string> expected = {
      "NIN",     "GoogLeNet", "ResNet-50", "AlexNet",
      "BN-AlexNet", "ResNet-18", "VGG-16",    "SqueezeNet"};
  for (const auto& name : expected) {
    EXPECT_NE(std::find(ds->model_names.begin(), ds->model_names.end(), name),
              ds->model_names.end())
        << name;
  }
  EXPECT_EQ(ds->citations.size(), 8u);
  EXPECT_EQ(ds->publication_year.size(), 8u);
}

TEST(DeepLearningTest, MetadataOrderingsAreSensible) {
  const auto& archs = DeepLearningArchitectures();
  auto find = [&](const std::string& name) {
    for (const auto& a : archs) {
      if (a.name == name) return a;
    }
    ADD_FAILURE() << "missing " << name;
    return archs[0];
  };
  // AlexNet is the most cited; SqueezeNet the most recent.
  for (const auto& a : archs) {
    EXPECT_LE(a.citations_2017, find("AlexNet").citations_2017);
    EXPECT_LE(a.publication_year, find("SqueezeNet").publication_year);
  }
  // ResNet-50 is the slowest-but-best family member vs SqueezeNet.
  EXPECT_GT(find("ResNet-50").relative_cost, find("SqueezeNet").relative_cost);
  EXPECT_GT(find("ResNet-50").quality_offset,
            find("SqueezeNet").quality_offset);
}

TEST(DeepLearningTest, CostsAreHeterogeneous) {
  auto ds = GenerateDeepLearning(DeepLearningOptions());
  ASSERT_TRUE(ds.ok());
  // Heterogeneous costs are what make the cost-aware scheduler matter
  // (Section 5.3.2); require at least 5x spread on every user.
  for (int i = 0; i < ds->num_users(); ++i) {
    double lo = ds->cost(i, 0), hi = ds->cost(i, 0);
    for (int j = 1; j < ds->num_models(); ++j) {
      lo = std::min(lo, ds->cost(i, j));
      hi = std::max(hi, ds->cost(i, j));
    }
    EXPECT_GT(hi / lo, 5.0) << "user " << i;
  }
}

TEST(DeepLearningTest, ResNetBeatsAlexNetOnAverage) {
  auto ds = GenerateDeepLearning(DeepLearningOptions());
  ASSERT_TRUE(ds.ok());
  int resnet = -1, alexnet = -1;
  for (int j = 0; j < ds->num_models(); ++j) {
    if (ds->model_names[j] == "ResNet-50") resnet = j;
    if (ds->model_names[j] == "AlexNet") alexnet = j;
  }
  ASSERT_GE(resnet, 0);
  ASSERT_GE(alexnet, 0);
  EXPECT_GT(Mean(ds->quality.Col(resnet)), Mean(ds->quality.Col(alexnet)));
}

TEST(DeepLearningTest, DeterministicAndSeedSensitive) {
  DeepLearningOptions opts;
  auto a = GenerateDeepLearning(opts);
  auto b = GenerateDeepLearning(opts);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  EXPECT_LT(a->quality.MaxAbsDiff(b->quality), 1e-15);
  opts.seed = 1234;
  auto c = GenerateDeepLearning(opts);
  ASSERT_TRUE(c.ok());
  EXPECT_GT(a->quality.MaxAbsDiff(c->quality), 0.0);
}

TEST(DeepLearningTest, RejectsBadOptions) {
  DeepLearningOptions opts;
  opts.num_users = 0;
  EXPECT_FALSE(GenerateDeepLearning(opts).ok());
}

TEST(Classifier179Test, MatchesPaperShape) {
  auto ds = GenerateClassifier179(Classifier179Options());
  ASSERT_TRUE(ds.ok());
  EXPECT_EQ(ds->num_users(), 121);  // Figure 8: 121 users x 179 models
  EXPECT_EQ(ds->num_models(), 179);
  EXPECT_TRUE(ds->Validate().ok());
}

TEST(Classifier179Test, FamilyCountsSumTo179) {
  int total = 0;
  for (const auto& f : Classifier179Families()) total += f.count;
  EXPECT_EQ(total, 179);
}

TEST(Classifier179Test, RandomForestFamilyNearTheTop) {
  auto ds = GenerateClassifier179(Classifier179Options());
  ASSERT_TRUE(ds.ok());
  // Average quality of rf_* models must exceed the bayes_* family —
  // the headline finding of Delgado et al. this surrogate mirrors.
  double rf = 0.0, bayes = 0.0;
  int rf_n = 0, bayes_n = 0;
  for (int j = 0; j < ds->num_models(); ++j) {
    const bool is_rf = ds->model_names[j].rfind("rf_", 0) == 0;
    const bool is_bayes = ds->model_names[j].rfind("bayes_", 0) == 0;
    const double m = Mean(ds->quality.Col(j));
    if (is_rf) {
      rf += m;
      ++rf_n;
    } else if (is_bayes) {
      bayes += m;
      ++bayes_n;
    }
  }
  ASSERT_GT(rf_n, 0);
  ASSERT_GT(bayes_n, 0);
  EXPECT_GT(rf / rf_n, bayes / bayes_n + 0.05);
}

TEST(Classifier179Test, CostsAreSyntheticUniform) {
  auto ds = GenerateClassifier179(Classifier179Options());
  ASSERT_TRUE(ds.ok());
  for (int i = 0; i < ds->num_users(); ++i) {
    for (int j = 0; j < ds->num_models(); ++j) {
      EXPECT_GT(ds->cost(i, j), 0.0);
      EXPECT_LE(ds->cost(i, j), 1.0);
    }
  }
}

TEST(Classifier179Test, Deterministic) {
  auto a = GenerateClassifier179(Classifier179Options());
  auto b = GenerateClassifier179(Classifier179Options());
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  EXPECT_LT(a->quality.MaxAbsDiff(b->quality), 1e-15);
}

}  // namespace
}  // namespace easeml::data
