#include "data/dataset.h"

#include <gtest/gtest.h>

namespace easeml::data {
namespace {

Dataset SmallDataset() {
  Dataset ds;
  ds.name = "toy";
  ds.user_names = {"u0", "u1"};
  ds.model_names = {"m0", "m1", "m2"};
  ds.quality = *linalg::Matrix::FromRowMajor(2, 3,
                                             {0.5, 0.9, 0.7,   //
                                              0.6, 0.4, 0.8});
  ds.cost = *linalg::Matrix::FromRowMajor(2, 3,
                                          {1.0, 2.0, 3.0,   //
                                           0.5, 0.5, 0.5});
  return ds;
}

TEST(DatasetTest, ValidatesCleanDataset) {
  EXPECT_TRUE(SmallDataset().Validate().ok());
}

TEST(DatasetTest, BestQualityAndModel) {
  Dataset ds = SmallDataset();
  EXPECT_DOUBLE_EQ(ds.BestQuality(0), 0.9);
  EXPECT_EQ(ds.BestModel(0), 1);
  EXPECT_DOUBLE_EQ(ds.BestQuality(1), 0.8);
  EXPECT_EQ(ds.BestModel(1), 2);
}

TEST(DatasetTest, TotalCost) {
  EXPECT_DOUBLE_EQ(SmallDataset().TotalCost(), 7.5);
}

TEST(DatasetTest, ValidateCatchesShapeMismatch) {
  Dataset ds = SmallDataset();
  ds.cost = linalg::Matrix(2, 2, 1.0);
  EXPECT_FALSE(ds.Validate().ok());
}

TEST(DatasetTest, ValidateCatchesNameMismatches) {
  Dataset ds = SmallDataset();
  ds.user_names.pop_back();
  EXPECT_FALSE(ds.Validate().ok());

  ds = SmallDataset();
  ds.model_names.push_back("extra");
  EXPECT_FALSE(ds.Validate().ok());

  ds = SmallDataset();
  ds.citations = {1, 2};  // 3 models
  EXPECT_FALSE(ds.Validate().ok());

  ds = SmallDataset();
  ds.publication_year = {2012};
  EXPECT_FALSE(ds.Validate().ok());
}

TEST(DatasetTest, ValidateCatchesOutOfRangeValues) {
  Dataset ds = SmallDataset();
  ds.quality(0, 0) = 1.5;
  EXPECT_FALSE(ds.Validate().ok());

  ds = SmallDataset();
  ds.quality(1, 2) = -0.1;
  EXPECT_FALSE(ds.Validate().ok());

  ds = SmallDataset();
  ds.cost(0, 1) = 0.0;
  EXPECT_FALSE(ds.Validate().ok());
}

TEST(DatasetTest, ValidateCatchesEmpty) {
  Dataset ds;
  EXPECT_FALSE(ds.Validate().ok());
}

TEST(DatasetTest, SelectUsersSubsets) {
  Dataset ds = SmallDataset();
  auto sub = ds.SelectUsers({1});
  ASSERT_TRUE(sub.ok());
  EXPECT_EQ(sub->num_users(), 1);
  EXPECT_EQ(sub->num_models(), 3);
  EXPECT_EQ(sub->user_names[0], "u1");
  EXPECT_DOUBLE_EQ(sub->quality(0, 2), 0.8);
  EXPECT_DOUBLE_EQ(sub->cost(0, 0), 0.5);
  EXPECT_TRUE(sub->Validate().ok());
}

TEST(DatasetTest, SelectUsersPreservesOrderAndDuplicates) {
  Dataset ds = SmallDataset();
  auto sub = ds.SelectUsers({1, 0, 1});
  ASSERT_TRUE(sub.ok());
  EXPECT_EQ(sub->num_users(), 3);
  EXPECT_EQ(sub->user_names[1], "u0");
  EXPECT_DOUBLE_EQ(sub->quality(2, 1), 0.4);
}

TEST(DatasetTest, SelectUsersValidatesIndices) {
  Dataset ds = SmallDataset();
  EXPECT_FALSE(ds.SelectUsers({}).ok());
  EXPECT_FALSE(ds.SelectUsers({2}).ok());
  EXPECT_FALSE(ds.SelectUsers({-1}).ok());
}

TEST(DatasetTest, AssignUniformCostsInRange) {
  Dataset ds = SmallDataset();
  Rng rng(5);
  AssignUniformCosts(ds, rng, 0.25, 0.75);
  for (int i = 0; i < ds.num_users(); ++i) {
    for (int j = 0; j < ds.num_models(); ++j) {
      EXPECT_GE(ds.cost(i, j), 0.25);
      EXPECT_LT(ds.cost(i, j), 0.75);
    }
  }
}

}  // namespace
}  // namespace easeml::data
