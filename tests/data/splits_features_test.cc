#include <gtest/gtest.h>

#include <algorithm>
#include <set>

#include "data/model_features.h"
#include "data/splits.h"

namespace easeml::data {
namespace {

Dataset TinyDataset() {
  Dataset ds;
  ds.name = "tiny";
  ds.user_names = {"a", "b", "c", "d"};
  ds.model_names = {"m0", "m1"};
  ds.quality = *linalg::Matrix::FromRowMajor(4, 2,
                                             {0.1, 0.2,   //
                                              0.3, 0.4,   //
                                              0.5, 0.6,   //
                                              0.7, 0.8});
  ds.cost = linalg::Matrix(4, 2, 1.0);
  return ds;
}

TEST(SplitUsersTest, PartitionIsCompleteAndDisjoint) {
  Rng rng(5);
  auto split = SplitUsers(10, 3, rng);
  ASSERT_TRUE(split.ok());
  EXPECT_EQ(split->test_users.size(), 3u);
  EXPECT_EQ(split->train_users.size(), 7u);
  std::set<int> all;
  all.insert(split->test_users.begin(), split->test_users.end());
  all.insert(split->train_users.begin(), split->train_users.end());
  EXPECT_EQ(all.size(), 10u);
  EXPECT_TRUE(std::is_sorted(split->test_users.begin(),
                             split->test_users.end()));
  EXPECT_TRUE(std::is_sorted(split->train_users.begin(),
                             split->train_users.end()));
}

TEST(SplitUsersTest, ValidatesArguments) {
  Rng rng(1);
  EXPECT_FALSE(SplitUsers(10, 0, rng).ok());
  EXPECT_FALSE(SplitUsers(10, 10, rng).ok());
  EXPECT_FALSE(SplitUsers(10, 11, rng).ok());
}

TEST(SplitUsersTest, DifferentSeedsGiveDifferentSplits) {
  Rng a(1), b(2);
  auto sa = SplitUsers(50, 10, a);
  auto sb = SplitUsers(50, 10, b);
  ASSERT_TRUE(sa.ok());
  ASSERT_TRUE(sb.ok());
  EXPECT_NE(sa->test_users, sb->test_users);
}

TEST(SubsampleIndicesTest, FullFractionReturnsAll) {
  Rng rng(3);
  const std::vector<int> items = {5, 7, 9};
  auto out = SubsampleIndices(items, 1.0, rng);
  ASSERT_TRUE(out.ok());
  EXPECT_EQ(*out, items);
}

TEST(SubsampleIndicesTest, HalfFractionRoundsUp) {
  Rng rng(3);
  const std::vector<int> items = {1, 2, 3, 4, 5};
  auto out = SubsampleIndices(items, 0.5, rng);
  ASSERT_TRUE(out.ok());
  EXPECT_EQ(out->size(), 3u);  // ceil(2.5)
  for (int v : *out) {
    EXPECT_NE(std::find(items.begin(), items.end(), v), items.end());
  }
}

TEST(SubsampleIndicesTest, AtLeastOneItemKept) {
  Rng rng(3);
  auto out = SubsampleIndices({42, 43, 44}, 0.01, rng);
  ASSERT_TRUE(out.ok());
  EXPECT_EQ(out->size(), 1u);
}

TEST(SubsampleIndicesTest, ValidatesFraction) {
  Rng rng(3);
  EXPECT_FALSE(SubsampleIndices({1}, 0.0, rng).ok());
  EXPECT_FALSE(SubsampleIndices({1}, 1.5, rng).ok());
}

TEST(ModelFeaturesTest, ColumnsOverTrainUsers) {
  Dataset ds = TinyDataset();
  auto features = ComputeModelFeatures(ds, {0, 2});
  ASSERT_TRUE(features.ok());
  ASSERT_EQ(features->size(), 2u);          // one per model
  EXPECT_EQ((*features)[0], (std::vector<double>{0.1, 0.5}));
  EXPECT_EQ((*features)[1], (std::vector<double>{0.2, 0.6}));
}

TEST(ModelFeaturesTest, RealizationsAreUserRows) {
  Dataset ds = TinyDataset();
  auto r = ComputeRealizations(ds, {1, 3});
  ASSERT_TRUE(r.ok());
  ASSERT_EQ(r->size(), 2u);
  EXPECT_EQ((*r)[0], (std::vector<double>{0.3, 0.4}));
  EXPECT_EQ((*r)[1], (std::vector<double>{0.7, 0.8}));
}

TEST(ModelFeaturesTest, PriorMeanAveragesTrainUsers) {
  Dataset ds = TinyDataset();
  auto mean = ComputePriorMean(ds, {0, 1});
  ASSERT_TRUE(mean.ok());
  EXPECT_DOUBLE_EQ((*mean)[0], 0.2);
  EXPECT_DOUBLE_EQ((*mean)[1], 0.3);
}

TEST(ModelFeaturesTest, ValidatesTrainUsers) {
  Dataset ds = TinyDataset();
  EXPECT_FALSE(ComputeModelFeatures(ds, {}).ok());
  EXPECT_FALSE(ComputeModelFeatures(ds, {4}).ok());
  EXPECT_FALSE(ComputeRealizations(ds, {-1}).ok());
  EXPECT_FALSE(ComputePriorMean(ds, {9}).ok());
}

}  // namespace
}  // namespace easeml::data
