#include "data/synthetic_generator.h"

#include <gtest/gtest.h>

#include <cmath>

#include "common/statistics.h"

namespace easeml::data {
namespace {

TEST(HiddenFeatureCovarianceTest, UnitDiagonalAndSymmetry) {
  linalg::Matrix cov = HiddenFeatureCovariance({0.1, 0.5, 0.9}, 0.5);
  EXPECT_TRUE(cov.IsSymmetric());
  for (int i = 0; i < 3; ++i) EXPECT_DOUBLE_EQ(cov(i, i), 1.0);
  // Closer hidden features -> larger covariance.
  EXPECT_GT(cov(0, 1), cov(0, 2));
}

TEST(HiddenFeatureCovarianceTest, SigmaControlsCorrelationStrength) {
  const std::vector<double> f = {0.2, 0.8};
  const double weak = HiddenFeatureCovariance(f, 0.01)(0, 1);
  const double strong = HiddenFeatureCovariance(f, 2.0)(0, 1);
  EXPECT_LT(weak, 1e-6);
  EXPECT_GT(strong, 0.9);
}

TEST(SimpleSynTest, GeneratesValidDatasetWithRequestedShape) {
  SimpleSynOptions opts;
  opts.num_users = 30;
  opts.num_models = 20;
  auto ds = GenerateSimpleSyn(opts);
  ASSERT_TRUE(ds.ok());
  EXPECT_EQ(ds->num_users(), 30);
  EXPECT_EQ(ds->num_models(), 20);
  EXPECT_TRUE(ds->Validate().ok());
  EXPECT_EQ(ds->name, "SYN(0.01,0.1)");
}

TEST(SimpleSynTest, DeterministicUnderSeed) {
  SimpleSynOptions opts;
  opts.num_users = 10;
  opts.num_models = 8;
  auto a = GenerateSimpleSyn(opts);
  auto b = GenerateSimpleSyn(opts);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  EXPECT_LT(a->quality.MaxAbsDiff(b->quality), 1e-15);
  EXPECT_LT(a->cost.MaxAbsDiff(b->cost), 1e-15);
  opts.seed = 99;
  auto c = GenerateSimpleSyn(opts);
  ASSERT_TRUE(c.ok());
  EXPECT_GT(a->quality.MaxAbsDiff(c->quality), 0.0);
}

TEST(SimpleSynTest, RejectsBadOptions) {
  SimpleSynOptions opts;
  opts.num_users = 0;
  EXPECT_FALSE(GenerateSimpleSyn(opts).ok());
  opts = SimpleSynOptions();
  opts.sigma_m = 0.0;
  EXPECT_FALSE(GenerateSimpleSyn(opts).ok());
}

TEST(SimpleSynTest, AlphaZeroRemovesModelVariation) {
  SimpleSynOptions opts;
  opts.num_users = 5;
  opts.num_models = 10;
  opts.alpha = 0.0;
  auto ds = GenerateSimpleSyn(opts);
  ASSERT_TRUE(ds.ok());
  // With alpha = 0, each user's row is constant (x = b_i).
  for (int i = 0; i < ds->num_users(); ++i) {
    for (int j = 1; j < ds->num_models(); ++j) {
      EXPECT_DOUBLE_EQ(ds->quality(i, j), ds->quality(i, 0));
    }
  }
}

/// Stronger model correlation (larger sigma_M) must yield smoother quality
/// across models with nearby hidden features — measured via the average
/// within-user variance relative to the lag-correlation structure.
TEST(SimpleSynTest, LargerSigmaMYieldsStrongerNeighborCorrelation) {
  auto correlation_proxy = [](double sigma_m) {
    SimpleSynOptions opts;
    opts.num_users = 60;
    opts.num_models = 40;
    opts.sigma_m = sigma_m;
    opts.alpha = 1.0;
    opts.sigma_b = 1e-6;  // isolate the model term
    opts.seed = 123;
    auto ds = GenerateSimpleSyn(opts);
    EXPECT_TRUE(ds.ok());
    // Average covariance between distinct models across users.
    double acc = 0.0;
    int count = 0;
    for (int j = 0; j < 10; ++j) {
      for (int j2 = j + 1; j2 < 10; ++j2) {
        std::vector<double> a = ds->quality.Col(j);
        std::vector<double> b = ds->quality.Col(j2);
        const double ma = Mean(a), mb = Mean(b);
        double cov = 0.0;
        for (size_t i = 0; i < a.size(); ++i) {
          cov += (a[i] - ma) * (b[i] - mb);
        }
        acc += cov / static_cast<double>(a.size());
        ++count;
      }
    }
    return acc / count;
  };
  EXPECT_GT(correlation_proxy(2.0), correlation_proxy(0.01) + 0.001);
}

TEST(AppendixBTest, DefaultInstantiationShape) {
  AppendixBOptions opts;
  opts.users_per_combination = 10;  // keep the test fast
  opts.num_models = 25;
  auto ds = GenerateAppendixB(opts);
  ASSERT_TRUE(ds.ok());
  EXPECT_EQ(ds->num_users(), 20);  // 2 baseline groups x 10
  EXPECT_EQ(ds->num_models(), 25);
  EXPECT_TRUE(ds->Validate().ok());
}

TEST(AppendixBTest, BaselineGroupsSeparateDifficulties) {
  AppendixBOptions opts;
  opts.baseline_groups = {{0.9, 0.01}, {0.1, 0.01}};
  opts.sigma_w = 0.001;
  opts.users_per_combination = 20;
  opts.num_models = 10;
  // Tiny fluctuations so group structure dominates.
  opts.sigma_m = 0.01;
  opts.sigma_u = 0.01;
  opts.model_amplitude = 0.02;
  opts.user_amplitude = 0.02;
  auto ds = GenerateAppendixB(opts);
  ASSERT_TRUE(ds.ok());
  // First 20 users belong to the easy group, next 20 to the hard group.
  double easy = 0.0, hard = 0.0;
  for (int i = 0; i < 20; ++i) {
    for (int j = 0; j < 10; ++j) {
      easy += ds->quality(i, j);
      hard += ds->quality(20 + i, j);
    }
  }
  EXPECT_GT(easy / 200.0, hard / 200.0 + 0.3);
}

TEST(AppendixBTest, RejectsBadOptions) {
  AppendixBOptions opts;
  opts.baseline_groups.clear();
  EXPECT_FALSE(GenerateAppendixB(opts).ok());
  opts = AppendixBOptions();
  opts.users_per_combination = 0;
  EXPECT_FALSE(GenerateAppendixB(opts).ok());
}

}  // namespace
}  // namespace easeml::data
