#include "linalg/cholesky.h"

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "common/rng.h"
#include "linalg/matrix.h"

namespace easeml::linalg {
namespace {

/// Random SPD matrix A = B B^T + n*I.
Matrix RandomSpd(int n, easeml::Rng& rng) {
  Matrix b(n, n);
  for (int i = 0; i < n; ++i) {
    for (int j = 0; j < n; ++j) b(i, j) = rng.Normal();
  }
  Matrix a = b.MatMul(b.Transpose());
  a.AddToDiagonal(static_cast<double>(n));
  return a;
}

TEST(CholeskyTest, FactorizesKnownMatrix) {
  // A = [[4, 2], [2, 3]] has L = [[2, 0], [1, sqrt(2)]].
  Matrix a = *Matrix::FromRowMajor(2, 2, {4, 2, 2, 3});
  auto chol = Cholesky::Compute(a);
  ASSERT_TRUE(chol.ok());
  EXPECT_DOUBLE_EQ(chol->At(0, 0), 2.0);
  EXPECT_DOUBLE_EQ(chol->At(1, 0), 1.0);
  EXPECT_NEAR(chol->At(1, 1), std::sqrt(2.0), 1e-15);
}

TEST(CholeskyTest, ReconstructRoundTrips) {
  easeml::Rng rng(42);
  for (int n : {1, 2, 5, 20}) {
    Matrix a = RandomSpd(n, rng);
    auto chol = Cholesky::Compute(a);
    ASSERT_TRUE(chol.ok()) << "n=" << n;
    EXPECT_LT(chol->Reconstruct().MaxAbsDiff(a), 1e-9) << "n=" << n;
  }
}

TEST(CholeskyTest, MultiRhsSolveLowerMatchesColumnwise) {
  easeml::Rng rng(7);
  for (int n : {1, 3, 8}) {
    Matrix a = RandomSpd(n, rng);
    auto chol = Cholesky::Compute(a);
    ASSERT_TRUE(chol.ok());
    const int m = 5;
    Matrix rhs(n, m);
    for (int i = 0; i < n; ++i) {
      for (int j = 0; j < m; ++j) rhs(i, j) = rng.Normal();
    }
    const Matrix y = chol->SolveLower(rhs);
    const Matrix x = chol->SolveLowerTranspose(rhs);
    for (int j = 0; j < m; ++j) {
      const std::vector<double> y_col = chol->SolveLower(rhs.Col(j));
      const std::vector<double> x_col = chol->SolveUpper(rhs.Col(j));
      for (int i = 0; i < n; ++i) {
        EXPECT_NEAR(y(i, j), y_col[i], 1e-12) << "n=" << n;
        EXPECT_NEAR(x(i, j), x_col[i], 1e-12) << "n=" << n;
      }
    }
  }
}

TEST(CholeskyTest, MultiRhsFullSolveInvertsMatrix) {
  easeml::Rng rng(11);
  const int n = 6;
  Matrix a = RandomSpd(n, rng);
  auto chol = Cholesky::Compute(a);
  ASSERT_TRUE(chol.ok());
  // Solving A X = A must give the identity.
  const Matrix x = chol->Solve(a);
  EXPECT_LT(x.MaxAbsDiff(Matrix::Identity(n)), 1e-9);
}

TEST(CholeskyTest, RejectsNonSquare) {
  EXPECT_FALSE(Cholesky::Compute(Matrix(2, 3)).ok());
}

TEST(CholeskyTest, RejectsNonPositiveDefinite) {
  Matrix a = *Matrix::FromRowMajor(2, 2, {1, 2, 2, 1});  // eigenvalue -1
  EXPECT_FALSE(Cholesky::Compute(a).ok());
  EXPECT_FALSE(Cholesky::Compute(Matrix(3, 3)).ok());  // all zeros
}

TEST(CholeskyTest, JitterRescuesSingularMatrix) {
  Matrix a(3, 3, 1.0);  // rank 1, PSD but singular
  EXPECT_FALSE(Cholesky::Compute(a).ok());
  EXPECT_TRUE(Cholesky::Compute(a, 1e-6).ok());
}

TEST(CholeskyTest, SolveMatchesDirectComputation) {
  easeml::Rng rng(7);
  Matrix a = RandomSpd(6, rng);
  std::vector<double> x_true(6);
  for (auto& v : x_true) v = rng.Normal();
  const std::vector<double> b = a.MatVec(x_true);
  auto chol = Cholesky::Compute(a);
  ASSERT_TRUE(chol.ok());
  const std::vector<double> x = chol->Solve(b);
  for (int i = 0; i < 6; ++i) EXPECT_NEAR(x[i], x_true[i], 1e-8);
}

TEST(CholeskyTest, SolveLowerAndUpperAreConsistent) {
  easeml::Rng rng(8);
  Matrix a = RandomSpd(5, rng);
  auto chol = Cholesky::Compute(a);
  ASSERT_TRUE(chol.ok());
  std::vector<double> rhs(5);
  for (auto& v : rhs) v = rng.Normal();
  // L (L^T x) = rhs  ==> Solve == SolveUpper(SolveLower(rhs)).
  const auto via_parts = chol->SolveUpper(chol->SolveLower(rhs));
  const auto direct = chol->Solve(rhs);
  for (int i = 0; i < 5; ++i) EXPECT_DOUBLE_EQ(via_parts[i], direct[i]);
}

TEST(CholeskyTest, LogDetMatchesKnownValue) {
  // det([[4,2],[2,3]]) = 8.
  Matrix a = *Matrix::FromRowMajor(2, 2, {4, 2, 2, 3});
  auto chol = Cholesky::Compute(a);
  ASSERT_TRUE(chol.ok());
  EXPECT_NEAR(chol->LogDet(), std::log(8.0), 1e-12);
}

TEST(CholeskyTest, AppendMatchesBatchFactorization) {
  easeml::Rng rng(9);
  const int n = 8;
  Matrix a = RandomSpd(n, rng);
  // Incremental: factorize the leading 1x1 and append rows one by one.
  auto inc = Cholesky::Compute(*Matrix::FromRowMajor(1, 1, {a(0, 0)}));
  ASSERT_TRUE(inc.ok());
  for (int t = 1; t < n; ++t) {
    std::vector<double> b(t);
    for (int i = 0; i < t; ++i) b[i] = a(t, i);
    ASSERT_TRUE(inc->Append(b, a(t, t)).ok()) << "t=" << t;
  }
  auto batch = Cholesky::Compute(a);
  ASSERT_TRUE(batch.ok());
  for (int i = 0; i < n; ++i) {
    for (int j = 0; j <= i; ++j) {
      EXPECT_NEAR(inc->At(i, j), batch->At(i, j), 1e-10);
    }
  }
}

TEST(CholeskyTest, AppendRejectsBadExtension) {
  auto chol = Cholesky::Compute(*Matrix::FromRowMajor(1, 1, {1.0}));
  ASSERT_TRUE(chol.ok());
  // Extension [[1, 2], [2, 1]] is indefinite.
  EXPECT_FALSE(chol->Append({2.0}, 1.0).ok());
  // Wrong vector length.
  EXPECT_FALSE(chol->Append({1.0, 2.0}, 5.0).ok());
}

TEST(SolveSpdTest, SolvesAndValidates) {
  Matrix a = *Matrix::FromRowMajor(2, 2, {4, 2, 2, 3});
  auto x = SolveSpd(a, {10, 8});
  ASSERT_TRUE(x.ok());
  // 4x + 2y = 10, 2x + 3y = 8 -> x = 1.75, y = 1.5.
  EXPECT_NEAR((*x)[0], 1.75, 1e-12);
  EXPECT_NEAR((*x)[1], 1.5, 1e-12);
  EXPECT_FALSE(SolveSpd(a, {1.0}).ok());  // wrong rhs length
}

}  // namespace
}  // namespace easeml::linalg
