#include "linalg/matrix.h"

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

namespace easeml::linalg {
namespace {

TEST(MatrixTest, ZeroInitialized) {
  Matrix m(2, 3);
  EXPECT_EQ(m.rows(), 2);
  EXPECT_EQ(m.cols(), 3);
  for (int i = 0; i < 2; ++i) {
    for (int j = 0; j < 3; ++j) EXPECT_DOUBLE_EQ(m(i, j), 0.0);
  }
}

TEST(MatrixTest, FillConstructor) {
  Matrix m(2, 2, 7.5);
  EXPECT_DOUBLE_EQ(m(0, 0), 7.5);
  EXPECT_DOUBLE_EQ(m(1, 1), 7.5);
}

TEST(MatrixTest, EmptyMatrix) {
  Matrix m;
  EXPECT_TRUE(m.empty());
  EXPECT_EQ(m.rows(), 0);
}

TEST(MatrixTest, FromRowMajorValid) {
  auto m = Matrix::FromRowMajor(2, 2, {1, 2, 3, 4});
  ASSERT_TRUE(m.ok());
  EXPECT_DOUBLE_EQ((*m)(0, 1), 2);
  EXPECT_DOUBLE_EQ((*m)(1, 0), 3);
}

TEST(MatrixTest, FromRowMajorRejectsSizeMismatch) {
  EXPECT_FALSE(Matrix::FromRowMajor(2, 2, {1, 2, 3}).ok());
}

TEST(MatrixTest, Identity) {
  Matrix eye = Matrix::Identity(3);
  for (int i = 0; i < 3; ++i) {
    for (int j = 0; j < 3; ++j) {
      EXPECT_DOUBLE_EQ(eye(i, j), i == j ? 1.0 : 0.0);
    }
  }
}

TEST(MatrixTest, RowAndCol) {
  Matrix m = *Matrix::FromRowMajor(2, 3, {1, 2, 3, 4, 5, 6});
  EXPECT_EQ(m.Row(1), (std::vector<double>{4, 5, 6}));
  EXPECT_EQ(m.Col(2), (std::vector<double>{3, 6}));
}

TEST(MatrixTest, GatherRowsWithRepeatsAndReorder) {
  Matrix m = *Matrix::FromRowMajor(3, 2, {1, 2, 3, 4, 5, 6});
  const Matrix g = m.GatherRows({2, 0, 2});
  EXPECT_EQ(g.rows(), 3);
  EXPECT_EQ(g.cols(), 2);
  EXPECT_EQ(g.Row(0), (std::vector<double>{5, 6}));
  EXPECT_EQ(g.Row(1), (std::vector<double>{1, 2}));
  EXPECT_EQ(g.Row(2), (std::vector<double>{5, 6}));
  EXPECT_TRUE(m.GatherRows({}).empty());
}

TEST(MatrixTest, GatherColsWithRepeatsAndReorder) {
  Matrix m = *Matrix::FromRowMajor(2, 3, {1, 2, 3, 4, 5, 6});
  const Matrix g = m.GatherCols({1, 1, 0});
  EXPECT_EQ(g.rows(), 2);
  EXPECT_EQ(g.cols(), 3);
  EXPECT_EQ(g.Row(0), (std::vector<double>{2, 2, 1}));
  EXPECT_EQ(g.Row(1), (std::vector<double>{5, 5, 4}));
}

TEST(MatrixTest, AddSubScale) {
  Matrix a = *Matrix::FromRowMajor(2, 2, {1, 2, 3, 4});
  Matrix b = *Matrix::FromRowMajor(2, 2, {4, 3, 2, 1});
  EXPECT_DOUBLE_EQ(a.Add(b)(0, 0), 5);
  EXPECT_DOUBLE_EQ(a.Sub(b)(1, 1), 3);
  EXPECT_DOUBLE_EQ(a.Scale(2.0)(1, 0), 6);
}

TEST(MatrixTest, MatMulKnownProduct) {
  Matrix a = *Matrix::FromRowMajor(2, 3, {1, 2, 3, 4, 5, 6});
  Matrix b = *Matrix::FromRowMajor(3, 2, {7, 8, 9, 10, 11, 12});
  Matrix c = a.MatMul(b);
  EXPECT_DOUBLE_EQ(c(0, 0), 58);
  EXPECT_DOUBLE_EQ(c(0, 1), 64);
  EXPECT_DOUBLE_EQ(c(1, 0), 139);
  EXPECT_DOUBLE_EQ(c(1, 1), 154);
}

TEST(MatrixTest, MatMulWithIdentityIsNoOp) {
  Matrix a = *Matrix::FromRowMajor(2, 2, {1.5, -2, 0.25, 4});
  Matrix c = a.MatMul(Matrix::Identity(2));
  EXPECT_LT(a.MaxAbsDiff(c), 1e-15);
}

TEST(MatrixTest, MatVec) {
  Matrix a = *Matrix::FromRowMajor(2, 3, {1, 0, 2, 0, 1, -1});
  std::vector<double> v = {3, 4, 5};
  std::vector<double> out = a.MatVec(v);
  EXPECT_DOUBLE_EQ(out[0], 13);
  EXPECT_DOUBLE_EQ(out[1], -1);
}

TEST(MatrixTest, TransposeTwiceIsIdentity) {
  Matrix a = *Matrix::FromRowMajor(2, 3, {1, 2, 3, 4, 5, 6});
  EXPECT_LT(a.MaxAbsDiff(a.Transpose().Transpose()), 1e-15);
  EXPECT_DOUBLE_EQ(a.Transpose()(2, 1), 6);
}

TEST(MatrixTest, AddToDiagonal) {
  Matrix a(3, 3, 1.0);
  a.AddToDiagonal(0.5);
  EXPECT_DOUBLE_EQ(a(0, 0), 1.5);
  EXPECT_DOUBLE_EQ(a(0, 1), 1.0);
}

TEST(MatrixTest, IsSymmetric) {
  Matrix s = *Matrix::FromRowMajor(2, 2, {1, 2, 2, 5});
  EXPECT_TRUE(s.IsSymmetric());
  Matrix ns = *Matrix::FromRowMajor(2, 2, {1, 2, 3, 5});
  EXPECT_FALSE(ns.IsSymmetric());
  Matrix rect(2, 3);
  EXPECT_FALSE(rect.IsSymmetric());
}

TEST(MatrixTest, MaxAbsDiffShapeMismatchIsInfinite) {
  Matrix a(2, 2);
  Matrix b(3, 3);
  EXPECT_TRUE(std::isinf(a.MaxAbsDiff(b)));
}

TEST(MatrixTest, ToStringTruncates) {
  Matrix big(20, 20, 1.0);
  const std::string s = big.ToString(4, 4);
  EXPECT_NE(s.find("Matrix 20x20"), std::string::npos);
  EXPECT_NE(s.find("..."), std::string::npos);
}

}  // namespace
}  // namespace easeml::linalg
