#include "linalg/vector_ops.h"

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

namespace easeml::linalg {
namespace {

TEST(VectorOpsTest, Dot) {
  EXPECT_DOUBLE_EQ(Dot({1, 2, 3}, {4, 5, 6}), 32.0);
  EXPECT_DOUBLE_EQ(Dot({}, {}), 0.0);
}

TEST(VectorOpsTest, Norm2) {
  EXPECT_DOUBLE_EQ(Norm2({3, 4}), 5.0);
  EXPECT_DOUBLE_EQ(Norm2({}), 0.0);
}

TEST(VectorOpsTest, SquaredDistance) {
  EXPECT_DOUBLE_EQ(SquaredDistance({1, 1}, {4, 5}), 25.0);
  EXPECT_DOUBLE_EQ(SquaredDistance({2, 2}, {2, 2}), 0.0);
}

TEST(VectorOpsTest, AddSubScale) {
  EXPECT_EQ(AddVec({1, 2}, {3, 4}), (std::vector<double>{4, 6}));
  EXPECT_EQ(SubVec({1, 2}, {3, 4}), (std::vector<double>{-2, -2}));
  EXPECT_EQ(ScaleVec({1, -2}, -2.0), (std::vector<double>{-2, 4}));
}

TEST(VectorOpsTest, Axpy) {
  std::vector<double> a = {1, 2, 3};
  Axpy(2.0, {1, 1, 1}, a);
  EXPECT_EQ(a, (std::vector<double>{3, 4, 5}));
}

TEST(VectorOpsTest, ArgMaxBasics) {
  EXPECT_EQ(ArgMax({1, 5, 3}), 1);
  EXPECT_EQ(ArgMax({}), -1);
  // Ties break to the lowest index (deterministic arm selection).
  EXPECT_EQ(ArgMax({2, 7, 7, 1}), 1);
}

TEST(VectorOpsTest, ArgMinBasics) {
  EXPECT_EQ(ArgMin({1, -5, 3}), 1);
  EXPECT_EQ(ArgMin({}), -1);
  EXPECT_EQ(ArgMin({2, 0, 0}), 1);
}

}  // namespace
}  // namespace easeml::linalg
