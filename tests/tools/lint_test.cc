// Golden-fixture tests for tools/easeml_lint: every rule must be proven
// non-vacuous (its fixture trips it at the expected file:line), suppressions
// must silence exactly what they name, and the exit-code contract (0 clean,
// 1 findings, 2 usage error) must hold. The binary path and fixture root
// arrive as compile definitions from tests/CMakeLists.txt.

#include <sys/wait.h>

#include <cstdio>
#include <cstdlib>
#include <string>

#include "gtest/gtest.h"

namespace {

struct LintRun {
  int exit_code = -1;
  std::string output;  // stdout + stderr, interleaved
};

LintRun RunLint(const std::string& args) {
  const std::string cmd = std::string(EASEML_LINT_BINARY) + " " + args + " 2>&1";
  LintRun run;
  FILE* pipe = popen(cmd.c_str(), "r");
  EXPECT_NE(pipe, nullptr) << "failed to launch: " << cmd;
  if (pipe == nullptr) return run;
  char buf[4096];
  while (fgets(buf, sizeof(buf), pipe) != nullptr) run.output += buf;
  const int status = pclose(pipe);
  run.exit_code = WIFEXITED(status) ? WEXITSTATUS(status) : -1;
  return run;
}

std::string Fixture(const std::string& rel) {
  return std::string(EASEML_LINT_FIXTURES) + "/" + rel;
}

// `file:line: [rule-id]` — the machine-readable prefix of one finding.
std::string Anchor(const std::string& rel, int line, const std::string& rule) {
  return Fixture(rel) + ":" + std::to_string(line) + ": [" + rule + "]";
}

TEST(LintCli, NoArgumentsIsUsageError) {
  LintRun run = RunLint("");
  EXPECT_EQ(run.exit_code, 2);
}

TEST(LintCli, MissingPathIsUsageError) {
  LintRun run = RunLint(Fixture("no_such_file.cc"));
  EXPECT_EQ(run.exit_code, 2);
}

TEST(LintCli, HelpListsEveryRule) {
  LintRun run = RunLint("--help");
  EXPECT_EQ(run.exit_code, 0);
  for (const char* rule :
       {"unordered-container", "raw-rng", "chrono-seed", "raw-double-accum",
        "raw-sync", "unguarded-mutex", "raw-clock", "raw-file-io",
        "bad-suppression"}) {
    EXPECT_NE(run.output.find(rule), std::string::npos)
        << "--help does not document rule: " << rule;
  }
}

TEST(LintRules, UnorderedContainerInEnginePath) {
  const std::string rel = "src/core/unordered_violation.cc";
  LintRun run = RunLint(Fixture(rel));
  EXPECT_EQ(run.exit_code, 1);
  EXPECT_NE(run.output.find(Anchor(rel, 6, "unordered-container")),
            std::string::npos)
      << run.output;
}

TEST(LintRules, UnorderedContainerIgnoredOutsideEngineDirs) {
  // The same tokens outside src/{core,scheduler,shard,bandit} are fine —
  // clean.cc lives at the fixture root and uses std::map anyway, so pair it
  // with the raw_sync fixture to prove path scoping on a file that WOULD
  // trip other rules.
  LintRun run = RunLint(Fixture("clean.cc"));
  EXPECT_EQ(run.exit_code, 0) << run.output;
  EXPECT_EQ(run.output.find("unordered-container"), std::string::npos);
}

TEST(LintRules, RawRngOutsideRngHome) {
  const std::string rel = "bad_rng.cc";
  LintRun run = RunLint(Fixture(rel));
  EXPECT_EQ(run.exit_code, 1);
  EXPECT_NE(run.output.find(Anchor(rel, 5, "raw-rng")), std::string::npos)
      << run.output;  // mt19937 / random_device
  EXPECT_NE(run.output.find(Anchor(rel, 9, "raw-rng")), std::string::npos)
      << run.output;  // libc rand()
}

TEST(LintRules, ChronoSeededRng) {
  const std::string rel = "chrono_seed.cc";
  LintRun run = RunLint(Fixture(rel));
  EXPECT_EQ(run.exit_code, 1);
  EXPECT_NE(run.output.find(Anchor(rel, 10, "chrono-seed")), std::string::npos)
      << run.output;
}

TEST(LintRules, RawDoubleAccumInMergeSeam) {
  const std::string rel = "src/shard/double_accum.cc";
  LintRun run = RunLint(Fixture(rel));
  EXPECT_EQ(run.exit_code, 1);
  EXPECT_NE(run.output.find(Anchor(rel, 9, "raw-double-accum")),
            std::string::npos)
      << run.output;
  // Integer accumulation in the same seam and double accumulation outside
  // any seam must both stay silent.
  EXPECT_EQ(run.output.find(":12:"), std::string::npos) << run.output;
  EXPECT_EQ(run.output.find(":17:"), std::string::npos) << run.output;
}

TEST(LintRules, RawSyncPrimitives) {
  const std::string rel = "raw_sync.cc";
  LintRun run = RunLint(Fixture(rel));
  EXPECT_EQ(run.exit_code, 1);
  EXPECT_NE(run.output.find(Anchor(rel, 5, "raw-sync")), std::string::npos)
      << run.output;  // std::mutex global
  EXPECT_NE(run.output.find(Anchor(rel, 8, "raw-sync")), std::string::npos)
      << run.output;  // std::lock_guard
}

TEST(LintRules, UnguardedMutexMember) {
  const std::string rel = "unguarded.h";
  LintRun run = RunLint(Fixture(rel));
  EXPECT_EQ(run.exit_code, 1);
  // Counter (line 7) has a Mutex member and no annotated field.
  EXPECT_NE(run.output.find(Anchor(rel, 7, "unguarded-mutex")),
            std::string::npos)
      << run.output;
  // GuardedCounter annotates a field: exactly one unguarded-mutex finding.
  size_t first = run.output.find("[unguarded-mutex]");
  ASSERT_NE(first, std::string::npos);
  EXPECT_EQ(run.output.find("[unguarded-mutex]", first + 1),
            std::string::npos)
      << run.output;
}

TEST(LintRules, RawClockOutsideCommon) {
  const std::string rel = "raw_clock.cc";
  LintRun run = RunLint(Fixture(rel));
  EXPECT_EQ(run.exit_code, 1);
  EXPECT_NE(run.output.find(Anchor(rel, 8, "raw-clock")), std::string::npos)
      << run.output;  // clock_gettime
  EXPECT_NE(run.output.find(Anchor(rel, 13, "raw-clock")), std::string::npos)
      << run.output;  // std::chrono::steady_clock
  // The reasoned suppression on line 19 must silence the read on line 20.
  EXPECT_EQ(run.output.find(":20:"), std::string::npos) << run.output;
}

TEST(LintRules, RawClockAllowedInCommon) {
  // common/ is the seam's home: the identical tokens there stay silent.
  LintRun run = RunLint(Fixture("common/clock_ok.cc"));
  EXPECT_EQ(run.exit_code, 0) << run.output;
  EXPECT_EQ(run.output.find("raw-clock"), std::string::npos) << run.output;
}

TEST(LintRules, RawFileIoOutsideWal) {
  const std::string rel = "raw_file_io.cc";
  LintRun run = RunLint(Fixture(rel));
  EXPECT_EQ(run.exit_code, 1);
  EXPECT_NE(run.output.find(Anchor(rel, 6, "raw-file-io")), std::string::npos)
      << run.output;  // fopen
  EXPECT_NE(run.output.find(Anchor(rel, 8, "raw-file-io")), std::string::npos)
      << run.output;  // ::write
  EXPECT_NE(run.output.find(Anchor(rel, 9, "raw-file-io")), std::string::npos)
      << run.output;  // fsync
  // The member-function declaration (line 13) and calls (lines 18-19)
  // share libc names but move no raw bytes: silent.
  EXPECT_EQ(run.output.find(":13:"), std::string::npos) << run.output;
  EXPECT_EQ(run.output.find(":18:"), std::string::npos) << run.output;
  EXPECT_EQ(run.output.find(":19:"), std::string::npos) << run.output;
}

TEST(LintRules, RawFileIoAllowedInWal) {
  // src/wal/ is the seam's home: the identical tokens there stay silent.
  LintRun run = RunLint(Fixture("src/wal/wal_io_ok.cc"));
  EXPECT_EQ(run.exit_code, 0) << run.output;
  EXPECT_EQ(run.output.find("raw-file-io"), std::string::npos) << run.output;
}

TEST(LintSuppression, ValidSuppressionsSilenceFindings) {
  LintRun run = RunLint(Fixture("suppressed.cc"));
  EXPECT_EQ(run.exit_code, 0) << run.output;
}

TEST(LintSuppression, MissingReasonAndUnknownRuleAreFindings) {
  const std::string rel = "bad_suppression.cc";
  LintRun run = RunLint(Fixture(rel));
  EXPECT_EQ(run.exit_code, 1);
  // The reason-less directive is reported AND fails to suppress its line.
  EXPECT_NE(run.output.find(Anchor(rel, 3, "bad-suppression")),
            std::string::npos)
      << run.output;
  EXPECT_NE(run.output.find(Anchor(rel, 3, "raw-rng")), std::string::npos)
      << run.output;
  EXPECT_NE(run.output.find(Anchor(rel, 7, "bad-suppression")),
            std::string::npos)
      << run.output;
}

TEST(LintCorpus, CleanFileIsClean) {
  LintRun run = RunLint(Fixture("clean.cc"));
  EXPECT_EQ(run.exit_code, 0) << run.output;
  EXPECT_EQ(run.output, "");
}

// The gate the tier-1 `lint` leg enforces: the real tree stays clean.
TEST(LintCorpus, RepositorySourceTreeIsClean) {
  LintRun run = RunLint(EASEML_SOURCE_DIR);
  EXPECT_EQ(run.exit_code, 0) << run.output;
}

}  // namespace
