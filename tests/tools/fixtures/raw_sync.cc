// Fixture: raw standard-library synchronization primitives.
#include <mutex>

int g_value = 0;
std::mutex g_mu;

void Bump() {
  std::lock_guard<std::mutex> lock(g_mu);
  ++g_value;
}
