// Fixture: suppressions that are themselves findings.
int WithoutReason() {
  return rand();  // easeml-lint: allow(raw-rng)
}

int UnknownRule() {
  return 0;  // easeml-lint: allow(made-up-rule) this rule id does not exist
}
